// Mailbox conversation: an endpoint-less client (think: an applet behind
// a NAT) holds a long-running asynchronous conversation with a slow Web
// Service through the MSG-Dispatcher and a WS-MsgBox mailbox.
//
// The service takes 45 (virtual) seconds per answer — longer than any
// RPC/TCP timeout — yet the conversation completes, because nothing holds
// a connection open: the reply parks in the mailbox until the client
// polls it. This is the paper's Table 1 quadrant (4), "Unlimited".
//
// Run with:
//
//	go run ./examples/mailbox-conversation
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dispatch/msgdisp"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/xmlsoap"
)

func main() {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 2)

	// The client is private (no routable address at all) and behind an
	// outbound-only firewall.
	cli := nw.AddHost("applet", netsim.ProfileLAN(),
		netsim.WithFirewall(netsim.OutboundOnly()), netsim.WithPrivateAddress())
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN(),
		netsim.WithFirewall(netsim.OutboundOnlyExcept("wsd")))

	// A *slow* asynchronous echo service: 45s per reply.
	wsHTTP := httpx.NewClient(ws, httpx.ClientConfig{Clock: clk})
	echo := echoservice.NewAsync(clk, wsHTTP, 45*time.Second)
	echo.OwnAddress = "http://ws:81/msg"
	ln, err := ws.Listen(81)
	if err != nil {
		log.Fatal(err)
	}
	srv := httpx.NewServer(echo, httpx.ServerConfig{Clock: clk})
	srv.Start(ln)
	defer srv.Close()

	// Dispatcher + co-located mailbox service.
	server, err := core.New(core.Config{
		Clock:      clk,
		HostName:   "wsd",
		Listen:     func(port int) (net.Listener, error) { return wsd.Listen(port) },
		Dialer:     wsd,
		MsgPort:    9100,
		MsgBoxPort: 9200,
		Policy:     registry.PolicyFirst,
	})
	if err != nil {
		log.Fatal(err)
	}
	server.Registry.Register("slow-echo", "http://ws:81/msg")
	if err := server.Start(); err != nil {
		log.Fatal(err)
	}
	defer server.Stop()

	// Client stack: RPC for mailbox management, Messenger for sends.
	httpCli := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk})
	rpc := client.NewRPC(httpCli)
	mboxCli := client.NewMailboxClient(rpc, server.MsgBoxURL(), clk)

	box, err := mboxCli.Create()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created mailbox %s\n", box.Address)

	conv := &client.Conversation{
		Messenger:     client.NewMessenger(httpCli),
		Mailbox:       mboxCli,
		Box:           box,
		DispatcherURL: server.MsgURL(),
		PollEvery:     5 * time.Second,
	}

	start := clk.Now()
	reply, err := conv.Call(msgdisp.LogicalScheme+"slow-echo", "urn:example:ask",
		xmlsoap.NewText(echoservice.EchoNS, "echo", "what is the answer?"),
		5*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reply after %v (virtual): %q\n", clk.Since(start), reply.BodyElement().Text)
	fmt.Println("no inbound connection to the client was ever needed")

	if err := mboxCli.Destroy(box); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mailbox destroyed")
}
