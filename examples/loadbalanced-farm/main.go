// Load-balanced farm: the paper's future-work item — "integrate a
// load-balancing system into the Registry service" — in action. One
// logical name maps to a farm of three echo services; the dispatcher
// spreads calls round-robin, detects a crashed replica via its liveness
// check, and routes around it.
//
// Run with:
//
//	go run ./examples/loadbalanced-farm
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
)

func main() {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 4)
	cli := nw.AddHost("cli", netsim.ProfileLAN())
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())

	// Three replicas of the echo service.
	type replica struct {
		echo *echoservice.RPC
		srv  *httpx.Server
	}
	replicas := make([]replica, 3)
	urls := make([]string, 3)
	for i := range replicas {
		name := fmt.Sprintf("ws%d", i+1)
		host := nw.AddHost(name, netsim.ProfileLAN(),
			netsim.WithFirewall(netsim.OutboundOnlyExcept("wsd")))
		echo := echoservice.NewRPC(clk, time.Millisecond)
		ln, err := host.Listen(80)
		if err != nil {
			log.Fatal(err)
		}
		srv := httpx.NewServer(echo, httpx.ServerConfig{Clock: clk})
		srv.Start(ln)
		replicas[i] = replica{echo: echo, srv: srv}
		urls[i] = fmt.Sprintf("http://%s:80/", name)
	}
	defer func() {
		for _, r := range replicas {
			r.srv.Close()
		}
	}()

	// Dispatcher with round-robin balancing across the farm.
	server, err := core.New(core.Config{
		Clock:    clk,
		HostName: "wsd",
		Listen:   func(port int) (net.Listener, error) { return wsd.Listen(port) },
		Dialer:   wsd,
		RPCPort:  9000,
		Policy:   registry.PolicyRoundRobin,
	})
	if err != nil {
		log.Fatal(err)
	}
	server.Registry.Register("echo", urls...)
	if err := server.Start(); err != nil {
		log.Fatal(err)
	}
	defer server.Stop()

	rpc := client.NewRPC(httpx.NewClient(cli, httpx.ClientConfig{Clock: clk}))
	call := func() error {
		_, err := rpc.CallTimeout(server.RPCURL()+"/rpc/echo",
			echoservice.EchoNS, echoservice.EchoOp, 5*time.Second,
			soap.Param{Name: "message", Value: "farm"})
		return err
	}

	// Phase 1: nine calls spread evenly.
	for i := 0; i < 9; i++ {
		if err := call(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print("phase 1 (round robin): ")
	for i, r := range replicas {
		fmt.Printf("ws%d=%d ", i+1, r.echo.Handled.Value())
	}
	fmt.Println()

	// Phase 2: crash replica 2, run the dispatcher's liveness check
	// (the future-work "checking if service is alive"), keep calling.
	replicas[1].srv.Close()
	probe := httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk})
	dead := server.Registry.CheckAlive(probe, 2*time.Second)
	fmt.Printf("phase 2: liveness check found %d dead endpoint(s)\n", dead)

	failures := 0
	for i := 0; i < 8; i++ {
		if err := call(); err != nil {
			failures++
		}
	}
	fmt.Print("phase 2 (after failover): ")
	for i, r := range replicas {
		fmt.Printf("ws%d=%d ", i+1, r.echo.Handled.Value())
	}
	fmt.Printf("failures=%d\n", failures)
	if failures > 0 {
		log.Fatal("calls failed despite failover")
	}
	fmt.Println("all calls survived the replica crash")
}
