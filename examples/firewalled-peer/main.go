// Firewalled peer: demonstrates the MSG-Dispatcher's WS-Addressing
// rewriting. A peer with a real (reachable) endpoint converses with a
// firewalled service; the dispatcher rewrites ReplyTo so the service's
// answer travels back through it, and the peer receives the reply as an
// inbound message on its own endpoint — no mailbox needed.
//
// Run with:
//
//	go run ./examples/firewalled-peer
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dispatch/msgdisp"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

func main() {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 3)
	peer := nw.AddHost("peer", netsim.ProfileLAN())
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN(),
		netsim.WithFirewall(netsim.OutboundOnlyExcept("wsd")))

	// The firewalled asynchronous echo service.
	wsHTTP := httpx.NewClient(ws, httpx.ClientConfig{Clock: clk})
	echo := echoservice.NewAsync(clk, wsHTTP, 10*time.Millisecond)
	echo.OwnAddress = "http://ws:81/msg"
	lnWS, err := ws.Listen(81)
	if err != nil {
		log.Fatal(err)
	}
	srvWS := httpx.NewServer(echo, httpx.ServerConfig{Clock: clk})
	srvWS.Start(lnWS)
	defer srvWS.Close()

	// The MSG-Dispatcher.
	server, err := core.New(core.Config{
		Clock:    clk,
		HostName: "wsd",
		Listen:   func(port int) (net.Listener, error) { return wsd.Listen(port) },
		Dialer:   wsd,
		MsgPort:  9100,
		Policy:   registry.PolicyFirst,
	})
	if err != nil {
		log.Fatal(err)
	}
	server.Registry.Register("echo", "http://ws:81/msg")
	if err := server.Start(); err != nil {
		log.Fatal(err)
	}
	defer server.Stop()

	// The peer runs its own message endpoint and correlates replies by
	// RelatesTo.
	replies := make(chan *soap.Envelope, 8)
	lnPeer, err := peer.Listen(7000)
	if err != nil {
		log.Fatal(err)
	}
	srvPeer := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		env, perr := soap.Parse(ex.Req.Body)
		if perr != nil {
			ex.ReplyBytes(httpx.StatusBadRequest, nil)
			return
		}
		// Detached: the channel consumer reads the envelope after this
		// exchange's pooled request body is released.
		replies <- env.Detach()
		ex.ReplyBytes(httpx.StatusAccepted, nil)
	}), httpx.ServerConfig{Clock: clk})
	srvPeer.Start(lnPeer)
	defer srvPeer.Close()

	// Send three messages of one conversation through the dispatcher.
	messenger := client.NewMessenger(httpx.NewClient(peer, httpx.ClientConfig{Clock: clk}))
	messenger.From = "http://peer:7000/msg"
	sent := map[string]string{}
	for i := 1; i <= 3; i++ {
		text := fmt.Sprintf("message %d of the conversation", i)
		id, err := messenger.Send(server.MsgURL(), &wsa.Headers{
			To:      msgdisp.LogicalScheme + "echo",
			Action:  echoservice.EchoNS + ":echo",
			ReplyTo: &wsa.EPR{Address: "http://peer:7000/msg"},
		}, xmlsoap.NewText(echoservice.EchoNS, "echo", text))
		if err != nil {
			log.Fatal(err)
		}
		sent[id] = text
		fmt.Printf("sent %s\n", id)
	}

	// Collect the three replies, whatever order they arrive in.
	for range sent {
		select {
		case env := <-replies:
			h, err := wsa.FromEnvelope(env)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("reply to %s: %q\n", h.RelatesTo, env.BodyElement().Text)
			if env.BodyElement().Text != sent[h.RelatesTo] {
				log.Fatalf("reply does not match request %s", h.RelatesTo)
			}
		case <-time.After(30 * time.Second):
			log.Fatal("timed out waiting for replies")
		}
	}
	fmt.Printf("dispatcher routed %d replies back through itself\n",
		server.Msg.RepliesDelivered.Value())
}
