// Quickstart: bring up an echo Web Service, a WS-Dispatcher in front of
// it, and a client — all in one process on the simulated network — and
// make one SOAP-RPC call through the dispatcher.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
)

func main() {
	// A virtual clock and a three-host network: the client, the
	// dispatcher, and a service hidden behind a firewall that admits
	// only the dispatcher.
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 1)
	cli := nw.AddHost("cli", netsim.ProfileLAN())
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN(),
		netsim.WithFirewall(netsim.OutboundOnlyExcept("wsd")))

	// The echo Web Service on ws:80.
	echo := echoservice.NewRPC(clk, time.Millisecond)
	ln, err := ws.Listen(80)
	if err != nil {
		log.Fatal(err)
	}
	srv := httpx.NewServer(echo, httpx.ServerConfig{Clock: clk})
	srv.Start(ln)
	defer srv.Close()

	// The WS-Dispatcher, with "echo" registered as a logical name.
	server, err := core.New(core.Config{
		Clock:    clk,
		HostName: "wsd",
		Listen:   func(port int) (net.Listener, error) { return wsd.Listen(port) },
		Dialer:   wsd,
		RPCPort:  9000,
		Policy:   registry.PolicyFirst,
	})
	if err != nil {
		log.Fatal(err)
	}
	server.Registry.Register("echo", "http://ws:80/")
	if err := server.Start(); err != nil {
		log.Fatal(err)
	}
	defer server.Stop()

	// A client that only knows the dispatcher and the logical name.
	httpCli := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk})
	rpc := client.NewRPC(httpCli)

	// Direct access is blocked by the firewall...
	if _, err := rpc.CallTimeout("http://ws:80/", echoservice.EchoNS,
		echoservice.EchoOp, 2*time.Second,
		soap.Param{Name: "message", Value: "direct?"}); err != nil {
		fmt.Printf("direct call blocked as expected: %v\n", err)
	}

	// ...but the logical address through the WSD works.
	results, err := rpc.Call(server.RPCURL()+"/rpc/echo",
		echoservice.EchoNS, echoservice.EchoOp,
		soap.Param{Name: "message", Value: "hello through the dispatcher"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("echo replied: %q\n", results[0].Value)
	fmt.Printf("dispatcher forwarded %d call(s)\n", server.RPC.Forwarded.Value())

	// Under the hood every service is an httpx.Handler working in
	// connection-scoped Exchanges: the connection owns one reusable
	// request struct, the handler reads ex.Req and answers through the
	// exchange (ex.ReplyBytes here; ex.Reply renders into a pooled
	// buffer, ex.Hijack/ex.TakeBody serve async repliers), and the
	// reply's head and body leave in a single write. A minimal raw
	// handler, called directly:
	ops := nw.AddHost("ops", netsim.ProfileLAN())
	lnOps, err := ops.Listen(8080)
	if err != nil {
		log.Fatal(err)
	}
	srvOps := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		ex.Header().Set("Content-Type", "text/plain")
		ex.ReplyBytes(httpx.StatusOK, append([]byte("pong: "), ex.Req.Body...))
	}), httpx.ServerConfig{Clock: clk})
	srvOps.Start(lnOps)
	defer srvOps.Close()

	resp, err := httpCli.Do("ops:8080", httpx.NewRequest("POST", "/ping", []byte("raw")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw httpx exchange: HTTP %d %q\n", resp.Status, resp.Body)
	// Releasing the response frees its pooled buffer AND returns the
	// kept-alive connection to the client's idle pool.
	resp.Release()
}
