// Command experiments regenerates every table and figure from the paper's
// evaluation (§4.3) on the simulated trans-Atlantic testbed and prints the
// same rows/series the paper plots.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig4 -duration 1m
//	experiments -run table1
//
// Output is gnuplot-style columns, one block per experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: table1|fig4|fig5|fig6|fig6bug|all")
	duration := flag.Duration("duration", time.Minute, "virtual duration of each measured run (paper: 1m)")
	flag.Parse()

	any := false
	want := func(name string) bool {
		return *run == "all" || *run == name
	}

	if want("table1") {
		any = true
		fmt.Println(experiments.FormatTable1(experiments.RunTable1(experiments.Table1Options{})))
	}
	if want("fig4") {
		any = true
		fmt.Println(experiments.FormatFig4(experiments.RunFig4(experiments.Fig4Options{Duration: *duration})))
	}
	if want("fig5") {
		any = true
		fmt.Println(experiments.FormatFig5(experiments.RunFig5(experiments.Fig5Options{Duration: *duration})))
	}
	if want("fig6") {
		any = true
		fmt.Println(experiments.FormatFig6(experiments.RunFig6(experiments.Fig6Options{Duration: *duration})))
	}
	if want("fig6bug") {
		any = true
		fmt.Println(experiments.FormatFig6Bug(experiments.RunFig6Bug(experiments.Fig6BugOptions{Duration: *duration})))
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want table1|fig4|fig5|fig6|fig6bug|all)\n", *run)
		os.Exit(2)
	}
}
