// Command registryctl manages WS-Dispatcher registry files and inspects a
// running dispatcher's browseable directory.
//
// Examples:
//
//	registryctl -file registry.txt add echo http://10.0.0.5:8080/echo
//	registryctl -file registry.txt remove echo
//	registryctl -file registry.txt list
//	registryctl browse http://localhost:9000
//	registryctl check -file registry.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/httpx"
	"repro/internal/registry"
)

func main() {
	file := flag.String("file", "registry.txt", "registry file to manage")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	switch args[0] {
	case "add":
		if len(args) < 3 {
			usage()
		}
		reg := load(*file, true)
		reg.Register(args[1], args[2:]...)
		save(reg, *file)
		fmt.Printf("registered %s -> %s\n", args[1], strings.Join(args[2:], ", "))

	case "remove":
		if len(args) != 2 {
			usage()
		}
		reg := load(*file, false)
		if !reg.Unregister(args[1]) {
			log.Fatalf("no such service %q", args[1])
		}
		save(reg, *file)
		fmt.Printf("removed %s\n", args[1])

	case "list":
		reg := load(*file, false)
		for _, name := range reg.Services() {
			entry, ok := reg.Lookup(name)
			if !ok {
				continue
			}
			eps := entry.Endpoints()
			urls := make([]string, 0, len(eps))
			for _, ep := range eps {
				urls = append(urls, ep.URL)
			}
			fmt.Printf("%-24s %s\n", name, strings.Join(urls, ", "))
		}

	case "check":
		reg := load(*file, false)
		client := httpx.NewClient(httpx.NetDialer{}, httpx.ClientConfig{Clock: clock.Wall})
		dead := reg.CheckAlive(client, 5*time.Second)
		for _, name := range reg.Services() {
			entry, ok := reg.Lookup(name)
			if !ok {
				continue
			}
			for _, ep := range entry.Endpoints() {
				status := "alive"
				if !ep.Alive() {
					status = "DEAD"
				}
				fmt.Printf("%-24s %-40s %s\n", name, ep.URL, status)
			}
		}
		if dead > 0 {
			os.Exit(1)
		}

	case "browse":
		if len(args) != 2 {
			usage()
		}
		addr, _, err := httpx.SplitURL(args[1])
		if err != nil {
			log.Fatal(err)
		}
		client := httpx.NewClient(httpx.NetDialer{}, httpx.ClientConfig{Clock: clock.Wall})
		resp, err := client.Do(addr, httpx.NewRequest("GET", "/registry", nil))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(resp.Body))
		resp.Release()

	default:
		usage()
	}
}

func load(path string, createOK bool) *registry.Registry {
	reg := registry.New(registry.PolicyFirst, clock.Wall)
	if err := reg.LoadFile(path); err != nil {
		if createOK && os.IsNotExist(err) {
			return reg
		}
		if !os.IsNotExist(err) {
			log.Fatal(err)
		}
	}
	return reg
}

func save(reg *registry.Registry, path string) {
	if err := reg.SaveFile(path); err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  registryctl [-file F] add <logical> <url> [url...]
  registryctl [-file F] remove <logical>
  registryctl [-file F] list
  registryctl [-file F] check
  registryctl browse <dispatcher-rpc-url>`)
	os.Exit(2)
}
