// Command wsmsgbox runs a standalone WS-MsgBox ("P.O. Mailbox") service
// over real TCP — the paper notes the mailbox "can be co-located with
// MSG-Dispatcher or run as a separate service"; this is the separate one.
//
// Example:
//
//	wsmsgbox -host postoffice.example.org -port 9200
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"

	"repro/internal/clock"
	"repro/internal/httpx"
	"repro/internal/msgbox"
	"repro/internal/store"
)

func main() {
	host := flag.String("host", "localhost", "externally visible host name for mailbox addresses")
	port := flag.Int("port", 9200, "service port")
	boxCap := flag.Int("box-cap", 4096, "messages retained per mailbox")
	workers := flag.Int("workers", 8, "store worker pool size")
	storeDir := flag.String("store", "", "durable mailbox directory (WAL-backed; empty keeps mailboxes in memory)")
	buggy := flag.Bool("buggy", false, "run the §4.3.2 thread-per-message design (for demonstrations)")
	flag.Parse()

	mode := msgbox.ModeFixed
	if *buggy {
		mode = msgbox.ModeBuggy
		log.Print("WARNING: running the historically buggy thread-per-message design")
	}
	cfg := msgbox.Config{
		Clock:        clock.Wall,
		BaseURL:      fmt.Sprintf("http://%s:%d", *host, *port),
		Mode:         mode,
		BoxCap:       *boxCap,
		StoreWorkers: *workers,
	}
	if *storeDir != "" {
		if err := os.MkdirAll(*storeDir, 0o755); err != nil {
			log.Fatal(err)
		}
		st, err := store.Open(clock.Wall, filepath.Join(*storeDir, "msgbox"), store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		cfg.Store = st
	}
	svc := msgbox.New(cfg)
	if err := svc.Start(); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", fmt.Sprintf(":%d", *port))
	if err != nil {
		log.Fatal(err)
	}
	srv := httpx.NewServer(svc, httpx.ServerConfig{Clock: clock.Wall})
	srv.Start(ln)
	log.Printf("WS-MsgBox up at http://%s:%d/mbox", *host, *port)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
	srv.Close()
	svc.Stop()
}
