// Command wsd runs the WS-Dispatcher over real TCP: the RPC-Dispatcher,
// the MSG-Dispatcher, and (optionally) a co-located WS-MsgBox, sharing one
// registry seeded from a text file.
//
// Example:
//
//	wsd -host localhost -rpc 9000 -msg 9100 -mbox 9200 \
//	    -registry registry.txt -policy round-robin -store /var/lib/wsd
//
// The registry file format is one service per line:
//
//	echo http://10.0.0.5:8080/echo,http://10.0.0.6:8080/echo
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/registry"
)

func main() {
	host := flag.String("host", "localhost", "externally visible host name for minted URLs")
	rpcPort := flag.Int("rpc", 9000, "RPC-Dispatcher port (0 disables)")
	msgPort := flag.Int("msg", 9100, "MSG-Dispatcher port (0 disables)")
	mboxPort := flag.Int("mbox", 9200, "co-located WS-MsgBox port (0 disables)")
	registryFile := flag.String("registry", "", "registry seed file (logical url[,url...] per line)")
	storeDir := flag.String("store", "", "durable state directory: WAL-backed courier hold/retry and persistent mailboxes (empty disables)")
	policy := flag.String("policy", "first", "balancing policy: first|round-robin|least-pending")
	ssoKey := flag.String("sso-key", "", "enable single sign-on with this signing key")
	ssoUsers := flag.String("sso-users", "", "comma-separated principal:secret pairs")
	flag.Parse()

	var pol registry.Policy
	switch *policy {
	case "first":
		pol = registry.PolicyFirst
	case "round-robin":
		pol = registry.PolicyRoundRobin
	case "least-pending":
		pol = registry.PolicyLeastPending
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	cfg := core.Config{
		Clock:        clock.Wall,
		HostName:     *host,
		Listen:       listenTCP,
		Dialer:       httpx.NetDialer{},
		RPCPort:      *rpcPort,
		MsgPort:      *msgPort,
		MsgBoxPort:   *mboxPort,
		Policy:       pol,
		RegistryFile: *registryFile,
		StoreDir:     *storeDir,
	}
	if *ssoKey != "" {
		authority := auth.New([]byte(*ssoKey), 0, clock.Wall)
		if err := addPrincipals(authority, *ssoUsers); err != nil {
			log.Fatal(err)
		}
		cfg.Authority = authority
	}

	server, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := server.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("WS-Dispatcher up: rpc=%s msg=%s mbox=%s (%d services registered)",
		orDash(server.RPCURL()), orDash(server.MsgURL()), orDash(server.MsgBoxURL()),
		server.Registry.Len())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
	server.Stop()
}

func listenTCP(port int) (net.Listener, error) {
	return net.Listen("tcp", fmt.Sprintf(":%d", port))
}

func addPrincipals(a *auth.Authority, users string) error {
	if users == "" {
		return fmt.Errorf("wsd: -sso-key set but -sso-users empty")
	}
	for _, pair := range splitComma(users) {
		i := indexByte(pair, ':')
		if i <= 0 {
			return fmt.Errorf("wsd: bad -sso-users entry %q (want principal:secret)", pair)
		}
		a.AddPrincipal(pair[:i], pair[i+1:])
	}
	return nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
