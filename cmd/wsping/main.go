// Command wsping is the paper's test client over real TCP: it ramps up a
// number of concurrent clients, sends echo messages for a fixed duration,
// and reports transmitted / not-sent counts and rates — "essentially it is
// very similar to the ping command" (§4.3).
//
// Examples:
//
//	wsping -target http://localhost:9000/rpc/echo -clients 50 -duration 1m
//	wsping -target http://localhost:9100/msg -mode msg -to logical:echo -clients 20
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/loadgen"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

func main() {
	target := flag.String("target", "http://localhost:9000/rpc/echo", "endpoint to ping")
	mode := flag.String("mode", "rpc", "rpc (request/response) or msg (one-way WS-Addressing)")
	to := flag.String("to", "", "WS-Addressing To header for -mode msg (e.g. logical:echo)")
	replyTo := flag.String("reply-to", "", "WS-Addressing ReplyTo for -mode msg (e.g. a mailbox address)")
	clients := flag.Int("clients", 10, "concurrent clients")
	duration := flag.Duration("duration", time.Minute, "run length")
	think := flag.Duration("think", 0, "per-client pause between calls")
	timeout := flag.Duration("timeout", 30*time.Second, "per-call budget")
	flag.Parse()

	addr, path, err := httpx.SplitURL(*target)
	if err != nil {
		log.Fatal(err)
	}

	pool := make([]*httpx.Client, *clients)
	for i := range pool {
		pool[i] = httpx.NewClient(httpx.NetDialer{}, httpx.ClientConfig{
			Clock:          clock.Wall,
			RequestTimeout: *timeout,
			MaxIdlePerHost: 1,
		})
	}

	var op loadgen.Op
	switch *mode {
	case "rpc":
		body, merr := soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
			soap.Param{Name: "message", Value: "wsping"}).Marshal()
		if merr != nil {
			log.Fatal(merr)
		}
		op = func(clientID, seq int) error {
			req := httpx.NewRequest("POST", path, body)
			req.Header.Set("Content-Type", soap.V11.ContentType())
			resp, err := pool[clientID].Do(addr, req)
			if err != nil {
				return err
			}
			status := resp.Status
			resp.Release()
			if status != httpx.StatusOK {
				return fmt.Errorf("HTTP %d", status)
			}
			return nil
		}
	case "msg":
		if *to == "" {
			log.Fatal("-mode msg requires -to")
		}
		op = func(clientID, seq int) error {
			env := soap.New(soap.V11).SetBody(
				xmlsoap.NewText(echoservice.EchoNS, "echo", fmt.Sprintf("wsping-%d-%d", clientID, seq)))
			h := &wsa.Headers{
				To:        *to,
				Action:    echoservice.EchoNS + ":echo",
				MessageID: wsa.NewMessageID(),
			}
			if *replyTo != "" {
				h.ReplyTo = &wsa.EPR{Address: *replyTo}
			}
			h.Apply(env)
			raw, err := env.Marshal()
			if err != nil {
				return err
			}
			req := httpx.NewRequest("POST", path, raw)
			req.Header.Set("Content-Type", soap.V11.ContentType())
			resp, err := pool[clientID].Do(addr, req)
			if err != nil {
				return err
			}
			status := resp.Status
			resp.Release()
			if status != httpx.StatusAccepted && status != httpx.StatusOK {
				return fmt.Errorf("HTTP %d", status)
			}
			return nil
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	report := loadgen.Run(loadgen.Config{
		Clock:     clock.Wall,
		Clients:   *clients,
		Duration:  *duration,
		ThinkTime: *think,
		Series:    fmt.Sprintf("%s %s", *mode, *target),
	}, op)
	fmt.Println(report.String())
}
