#!/usr/bin/env sh
# bench_snapshot.sh — capture the batching benchmarks as a
# machine-readable JSON snapshot (BENCH_pr6.json at the repo root).
#
# The snapshot records the cross-message batching tentpole's headline
# numbers: the per-message cost of the full dispatcher path driven one
# message at a time (BenchmarkDispatchExchange, ns/op == ns/msg) versus
# driven in 16-message bursts (BenchmarkDispatchBatch, whose ns/msg
# metric divides the burst), plus the codec-level pipelined-server and
# pinned-stream baselines they build on.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_pr6.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'DispatchExchange|DispatchBatch' -benchmem -count=1 \
    ./internal/dispatch/msgdisp/ >>"$tmp"
go test -run '^$' -bench 'ServeConnPipelined|ClientStream' -benchmem -count=1 \
    . >>"$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    nsop = ""; nsmsg = ""; bop = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op")     nsop   = $i
        if ($(i + 1) == "ns/msg")    nsmsg  = $i
        if ($(i + 1) == "B/op")      bop    = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    row = sprintf("    \"%s\": {\"ns_per_op\": %s", name, nsop)
    if (nsmsg != "")  row = row sprintf(", \"ns_per_msg\": %s", nsmsg)
    if (bop != "")    row = row sprintf(", \"bytes_per_op\": %s", bop)
    if (allocs != "") row = row sprintf(", \"allocs_per_op\": %s", allocs)
    row = row "}"
    rows[++n] = row
}
END {
    printf "{\n"
    printf "  \"snapshot\": \"pr6-cross-message-batching\",\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"burst_size\": 16,\n"
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
    printf "  }\n"
    printf "}\n"
}' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
