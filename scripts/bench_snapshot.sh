#!/usr/bin/env sh
# bench_snapshot.sh — capture the dispatcher and codec benchmarks as a
# machine-readable JSON snapshot (BENCH_pr10.json at the repo root).
#
# The snapshot records the skim tentpole's headline numbers: the full
# dispatcher exchange (BenchmarkDispatchExchange — the ≤7 allocs/op
# gate reads against this), the burst path (BenchmarkDispatchBatch),
# the wall-clock shard ablation (BenchmarkDispatchSharded), the skim
# codec trio (BenchmarkSkim / BenchmarkSkimRewrite — the zero-alloc
# scan and splice — against BenchmarkParseRewrite, the parse-path
# equivalent; their ratio is emitted as its own derived row), and the
# loadgen saturation ramp over netsim (BenchmarkSaturationRamp,
# reporting virtual msg/min and real wall-ms per point).
#
# PR 10 adds the durability rows: WAL append ns/op under each sync
# policy (BenchmarkWALAppend/nosync|group|always — the zero-alloc gate
# reads against the nosync row), recovery replay throughput
# (BenchmarkWALRecovery, rec/s), and the store's put+delete round-trip
# over the WAL (BenchmarkStorePutDelete).
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_pr10.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'DispatchExchange|DispatchBatch|DispatchSharded' -benchmem -count=1 \
    ./internal/dispatch/msgdisp/ >>"$tmp"
go test -run '^$' -bench 'Skim$|SkimRewrite$|ParseRewrite$' -benchmem -count=1 \
    ./internal/wsa/ >>"$tmp"
go test -run '^$' -bench 'SaturationRamp' -benchtime 1x -count=1 \
    . >>"$tmp"
go test -run '^$' -bench 'TimerWheel' -benchmem -count=1 \
    ./internal/clock/ >>"$tmp"
go test -run '^$' -bench 'WALAppend|WALRecovery' -benchmem -count=1 \
    ./internal/wal/ >>"$tmp"
go test -run '^$' -bench 'StorePutDelete' -benchmem -count=1 \
    ./internal/store/ >>"$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    nsop = ""; nsmsg = ""; bop = ""; allocs = ""
    msgmin = ""; notsent = ""; wallms = ""; recs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op")     nsop    = $i
        if ($(i + 1) == "ns/msg")    nsmsg   = $i
        if ($(i + 1) == "B/op")      bop     = $i
        if ($(i + 1) == "allocs/op") allocs  = $i
        if ($(i + 1) == "msg/min")   msgmin  = $i
        if ($(i + 1) == "not-sent")  notsent = $i
        if ($(i + 1) == "wall-ms")   wallms  = $i
        if ($(i + 1) == "rec/s")     recs    = $i
    }
    row = sprintf("    \"%s\": {\"ns_per_op\": %s", name, nsop)
    if (nsmsg != "")   row = row sprintf(", \"ns_per_msg\": %s", nsmsg)
    if (bop != "")     row = row sprintf(", \"bytes_per_op\": %s", bop)
    if (allocs != "")  row = row sprintf(", \"allocs_per_op\": %s", allocs)
    if (msgmin != "")  row = row sprintf(", \"msg_per_min\": %s", msgmin)
    if (notsent != "") row = row sprintf(", \"not_sent\": %s", notsent)
    if (wallms != "")  row = row sprintf(", \"wall_ms\": %s", wallms)
    if (recs != "")    row = row sprintf(", \"records_per_s\": %s", recs)
    row = row "}"
    rows[++n] = row
    nsByName[name] = nsop
}
END {
    # Derived row: the skim-vs-parse hot-leg ratio (scan+splice over
    # parse+rewrite, same envelope). Below 1.0 the skim is winning.
    if (nsByName["SkimRewrite"] != "" && nsByName["ParseRewrite"] != "")
        rows[++n] = sprintf("    \"SkimVsParseRatio\": {\"ratio\": %.3f}",
            nsByName["SkimRewrite"] / nsByName["ParseRewrite"])
    printf "{\n"
    printf "  \"snapshot\": \"pr10-durable-wal\",\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
    printf "  }\n"
    printf "}\n"
}' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
