#!/usr/bin/env sh
# bench_snapshot.sh — capture the timer-wheel and pooling benchmarks
# as a machine-readable JSON snapshot (BENCH_pr7.json at the repo root).
#
# The snapshot records the timer-wheel tentpole's headline numbers: the
# full dispatcher exchange with pooled timers/waiters/admission tasks
# (BenchmarkDispatchExchange — the ≤15 allocs/op gate reads against
# this), the burst path it coexists with (BenchmarkDispatchBatch), the
# allocation-free wheel hot paths on both clocks (BenchmarkTimerWheel),
# and the codec-level server/client baselines underneath.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_pr7.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'DispatchExchange|DispatchBatch' -benchmem -count=1 \
    ./internal/dispatch/msgdisp/ >>"$tmp"
go test -run '^$' -bench 'ServeConnPipelined|ClientStream' -benchmem -count=1 \
    . >>"$tmp"
go test -run '^$' -bench 'TimerWheel' -benchmem -count=1 \
    ./internal/clock/ >>"$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    nsop = ""; nsmsg = ""; bop = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op")     nsop   = $i
        if ($(i + 1) == "ns/msg")    nsmsg  = $i
        if ($(i + 1) == "B/op")      bop    = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    row = sprintf("    \"%s\": {\"ns_per_op\": %s", name, nsop)
    if (nsmsg != "")  row = row sprintf(", \"ns_per_msg\": %s", nsmsg)
    if (bop != "")    row = row sprintf(", \"bytes_per_op\": %s", bop)
    if (allocs != "") row = row sprintf(", \"allocs_per_op\": %s", allocs)
    row = row "}"
    rows[++n] = row
}
END {
    printf "{\n"
    printf "  \"snapshot\": \"pr7-timer-wheel-and-pooling\",\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"burst_size\": 16,\n"
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
    printf "  }\n"
    printf "}\n"
}' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
