// Package repro_test is the benchmark harness: one benchmark per table
// and figure in the paper's evaluation (§4.3), plus ablations for the
// design choices DESIGN.md calls out.
//
// Each benchmark iteration replays a scaled-down (shorter virtual
// duration) version of the corresponding experiment on the simulated
// trans-Atlantic testbed and reports the figure's headline metrics via
// b.ReportMetric. Full-length runs — the paper's one-minute points — are
// produced by cmd/experiments.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dispatch/msgdisp"
	"repro/internal/echoservice"
	"repro/internal/experiments"
	"repro/internal/httpx"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// benchDuration is the virtual run length per data point: long enough for
// steady state, short enough to keep the full bench suite fast.
const benchDuration = 10 * time.Second

// BenchmarkTable1 exercises all four interaction quadrants (fast and slow
// service variants) and reports how many of the eight cells behave as the
// paper's Table 1 says they should.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.RunTable1(experiments.Table1Options{})
		asPaper := 0
		for _, c := range cells {
			switch c.Quadrant {
			case 1, 2, 3:
				if c.FastOK && !c.SlowOK {
					asPaper++
				}
			case 4:
				if c.FastOK && c.SlowOK {
					asPaper++
				}
			}
		}
		b.ReportMetric(float64(asPaper), "quadrants-as-paper")
	}
}

// BenchmarkFig4 replays Figure 4 (RPC over the cable modem) at selected
// client counts and reports transmitted / not-sent per minute.
func BenchmarkFig4(b *testing.B) {
	for _, clients := range []int{10, 200, 1000} {
		for _, series := range []string{"direct", "dispatcher"} {
			b.Run(fmt.Sprintf("clients=%d/%s", clients, series), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows := experiments.RunFig4(experiments.Fig4Options{
						Clients:  []int{clients},
						Duration: benchDuration,
					})
					r := rows[0].Direct
					if series == "dispatcher" {
						r = rows[0].Dispatcher
					}
					b.ReportMetric(r.PerMinute(), "transmitted/min")
					b.ReportMetric(float64(r.NotSent)/r.Elapsed.Minutes(), "not-sent/min")
				}
			})
		}
	}
}

// BenchmarkFig5 replays Figure 5 (RPC in good conditions).
func BenchmarkFig5(b *testing.B) {
	for _, clients := range []int{25, 200, 300} {
		for _, series := range []string{"direct", "dispatcher"} {
			b.Run(fmt.Sprintf("clients=%d/%s", clients, series), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows := experiments.RunFig5(experiments.Fig5Options{
						Clients:  []int{clients},
						Duration: benchDuration,
					})
					r := rows[0].Direct
					if series == "dispatcher" {
						r = rows[0].Dispatcher
					}
					b.ReportMetric(r.PerMinute(), "msg/min")
					b.ReportMetric(float64(r.NotSent), "lost")
				}
			})
		}
	}
}

// BenchmarkFig6 replays Figure 6 (asynchronous messaging, firewalled
// clients) for each of the paper's three configurations.
func BenchmarkFig6(b *testing.B) {
	series := map[string]experiments.Fig6Series{
		"oneway":  experiments.SeriesOneWay,
		"msgdisp": experiments.SeriesMsgDispatcher,
		"msgbox":  experiments.SeriesMsgBox,
	}
	for _, clients := range []int{5, 25, 50} {
		for name, s := range series {
			b.Run(fmt.Sprintf("clients=%d/%s", clients, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := experiments.RunFig6Point(experiments.Fig6Options{
						Duration: benchDuration,
					}, clients, s)
					b.ReportMetric(r.PerMinute(), "msg/min")
				}
			})
		}
	}
}

// BenchmarkFig6Bug replays the §4.3.2 WS-MsgBox thread explosion on both
// sides of the cliff.
func BenchmarkFig6Bug(b *testing.B) {
	for _, clients := range []int{20, 80} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := experiments.RunFig6Bug(experiments.Fig6BugOptions{
					Clients:  []int{clients},
					Duration: benchDuration,
				})
				b.ReportMetric(float64(rows[0].BuggyOOMs), "buggy-ooms")
				b.ReportMetric(float64(rows[0].BuggyPeakThreads), "buggy-peak-threads")
				b.ReportMetric(float64(rows[0].FixedStored), "fixed-stored")
			}
		})
	}
}

// --- ablations ---

// msgBenchRig is a small MSG-Dispatcher topology for ablation studies: an
// open client, the dispatcher (built directly so the delivery transport is
// controllable), and several async echo sinks on hosts with enough latency
// that connection setup and per-destination serialization are visible.
type msgBenchRig struct {
	clk  *clock.Virtual
	disp *msgdisp.Dispatcher
	send func(dest, seq int) error
	stop func()
}

type msgBenchOptions struct {
	holdOpen    time.Duration
	wsWorkers   int
	keepAlive   bool // false = new connection per delivery
	numDests    int
	destLatency time.Duration
}

func newMsgBenchRig(b *testing.B, opt msgBenchOptions) *msgBenchRig {
	b.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	clk.SetCoalesce(200 * time.Microsecond)
	nw := netsim.New(clk, 9)
	cli := nw.AddHost("cli", netsim.ProfileLAN())
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())

	var stops []func()
	reg := registry.New(registry.PolicyFirst, clk)
	for i := 0; i < opt.numDests; i++ {
		name := fmt.Sprintf("ws%d", i)
		host := nw.AddHost(name, netsim.Profile{
			DownKbps: 50_000, UpKbps: 50_000, Latency: opt.destLatency,
		})
		wsHTTP := httpx.NewClient(host, httpx.ClientConfig{Clock: clk})
		echo := echoservice.NewAsync(clk, wsHTTP, time.Millisecond)
		ln, err := host.Listen(81)
		if err != nil {
			b.Fatal(err)
		}
		srv := httpx.NewServer(echo, httpx.ServerConfig{Clock: clk})
		srv.Start(ln)
		stops = append(stops, func() { srv.Close() })
		reg.Register(fmt.Sprintf("echo%d", i), fmt.Sprintf("http://%s:81/msg", name))
	}

	deliveryClient := httpx.NewClient(wsd, httpx.ClientConfig{
		Clock:            clk,
		DisableKeepAlive: !opt.keepAlive,
	})
	disp := msgdisp.New(reg, deliveryClient, msgdisp.Config{
		Clock:         clk,
		ReturnAddress: "http://wsd:9100/msg",
		HoldOpen:      opt.holdOpen,
		WsWorkers:     opt.wsWorkers,
	})
	if err := disp.Start(); err != nil {
		b.Fatal(err)
	}
	lnD, err := wsd.Listen(9100)
	if err != nil {
		b.Fatal(err)
	}
	srvD := httpx.NewServer(disp, httpx.ServerConfig{Clock: clk})
	srvD.Start(lnD)

	httpCli := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 60 * time.Second})
	send := func(dest, seq int) error {
		env := soap.New(soap.V11).SetBody(xmlsoap.NewText(echoservice.EchoNS, "echo", "ablate"))
		(&wsa.Headers{
			To:        fmt.Sprintf("%secho%d", msgdisp.LogicalScheme, dest),
			MessageID: fmt.Sprintf("urn:bench:%d:%d", dest, seq),
		}).Apply(env)
		raw, err := env.Marshal()
		if err != nil {
			return err
		}
		req := httpx.NewRequest("POST", "/msg", raw)
		req.Header.Set("Content-Type", soap.V11.ContentType())
		resp, err := httpCli.Do("wsd:9100", req)
		if err != nil {
			return err
		}
		status := resp.Status
		resp.Release()
		if status != httpx.StatusAccepted {
			return fmt.Errorf("HTTP %d", status)
		}
		return nil
	}
	return &msgBenchRig{
		clk:  clk,
		disp: disp,
		send: send,
		stop: func() {
			srvD.Close()
			disp.Stop()
			for _, s := range stops {
				s()
			}
			clk.Stop()
		},
	}
}

// runBurst pushes count messages (round-robin across destinations) into
// the dispatcher and returns the virtual time until all are delivered.
func (rig *msgBenchRig) runBurst(b *testing.B, count, dests int) time.Duration {
	b.Helper()
	start := rig.clk.Now()
	for seq := 0; seq < count; seq++ {
		if err := rig.send(seq%dests, seq); err != nil {
			b.Fatal(err)
		}
	}
	for rig.disp.ForwardedToWS.Value() < int64(count) {
		rig.clk.Sleep(5 * time.Millisecond)
	}
	return rig.clk.Since(start)
}

// runSaturationPoint replays one loadgen point against a fresh topology:
// clients anonymous-RPC callers ramping through the MSG-Dispatcher at a
// farm of backends registered under one logical name. With kill set, the
// first backend's server is closed a third of the way in; MarkDeadOnError
// lets delivery failures fail the endpoint over to the survivors.
func runSaturationPoint(b *testing.B, clients, shards, backends int, kill bool) (loadReport, time.Duration) {
	b.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	clk.SetCoalesce(200 * time.Microsecond)
	nw := netsim.New(clk, 17)
	cli := nw.AddHost("cli", netsim.ProfileLAN())
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())

	var urls []string
	var backendSrvs []*httpx.Server
	for i := 0; i < backends; i++ {
		name := fmt.Sprintf("ws%d", i)
		host := nw.AddHost(name, netsim.ProfileLAN())
		ln, err := host.Listen(80)
		if err != nil {
			b.Fatal(err)
		}
		srv := httpx.NewServer(echoservice.NewRPC(clk, time.Millisecond), httpx.ServerConfig{Clock: clk})
		srv.Start(ln)
		backendSrvs = append(backendSrvs, srv)
		urls = append(urls, fmt.Sprintf("http://%s:80/", name))
	}
	reg := registry.New(registry.PolicyRoundRobin, clk)
	reg.Register("echo", urls...)

	disp := msgdisp.New(reg, httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk}), msgdisp.Config{
		Clock:           clk,
		ReturnAddress:   "http://wsd:9100/msg",
		AnonymousWait:   2 * time.Second,
		DeliveryTimeout: 2 * time.Second,
		HoldOpen:        time.Second,
		CxWorkers:       128,
		WsWorkers:       64,
		StateShards:     shards,
		MarkDeadOnError: true,
	})
	if err := disp.Start(); err != nil {
		b.Fatal(err)
	}
	defer disp.Stop()
	lnD, err := wsd.Listen(9100)
	if err != nil {
		b.Fatal(err)
	}
	srvD := httpx.NewServer(disp, httpx.ServerConfig{Clock: clk})
	srvD.Start(lnD)
	defer srvD.Close()
	for _, s := range backendSrvs {
		defer s.Close()
	}

	httpCli := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
	defer httpCli.Close()
	op := func(id, seq int) error {
		env := soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
			soap.Param{Name: "message", Value: "ramp"})
		(&wsa.Headers{
			To:        msgdisp.LogicalScheme + "echo",
			Action:    echoservice.EchoNS + ":" + echoservice.EchoOp,
			MessageID: fmt.Sprintf("urn:ramp:%d:%d", id, seq),
			ReplyTo:   &wsa.EPR{Address: wsa.Anonymous},
		}).Apply(env)
		raw, err := env.Marshal()
		if err != nil {
			return err
		}
		req := httpx.NewRequest("POST", "/msg", raw)
		req.Header.Set("Content-Type", soap.V11.ContentType())
		resp, err := httpCli.Do("wsd:9100", req)
		if err != nil {
			return err
		}
		status := resp.Status
		resp.Release()
		if status != httpx.StatusOK {
			return fmt.Errorf("HTTP %d", status)
		}
		return nil
	}

	if kill {
		go func() {
			clk.Sleep(benchDuration / 3)
			backendSrvs[0].Close()
		}()
	}
	wallStart := time.Now()
	rep := loadgen.Run(loadgen.Config{
		Clock:     clk,
		Clients:   clients,
		Duration:  benchDuration,
		ThinkTime: 50 * time.Millisecond,
		Series:    "ramp",
	}, op)
	return loadReport{perMinute: rep.PerMinute(), notSent: rep.NotSent}, time.Since(wallStart)
}

// loadReport is the slice of stats.RunReport the ramp reports on.
type loadReport struct {
	perMinute float64
	notSent   int64
}

// BenchmarkSaturationRamp ramps loadgen client counts through the
// MSG-Dispatcher to the saturation knee in three configurations: the
// single-lock keyed-state baseline (shards=1), the sharded default, and
// the sharded dispatcher absorbing a mid-run backend kill on a
// two-backend farm. Virtual-clock msg/min measures modeled capacity
// (identical network, so the configurations separate only at the knee);
// wall-ms is the real time the dispatcher needed to push the same
// virtual minute, where shard-lock contention actually shows.
func BenchmarkSaturationRamp(b *testing.B) {
	cases := []struct {
		name     string
		shards   int
		backends int
		kill     bool
	}{
		{"single-shard/one-backend", 1, 1, false},
		{"sharded/one-backend", 64, 1, false},
		{"sharded/two-backends-kill", 64, 2, true},
	}
	for _, tc := range cases {
		for _, clients := range []int{25, 100, 300} {
			b.Run(fmt.Sprintf("%s/clients=%d", tc.name, clients), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rep, wall := runSaturationPoint(b, clients, tc.shards, tc.backends, tc.kill)
					b.ReportMetric(rep.perMinute, "msg/min")
					b.ReportMetric(float64(rep.notSent), "not-sent")
					b.ReportMetric(float64(wall.Milliseconds()), "wall-ms")
				}
			})
		}
	}
}

// BenchmarkAblationHoldOpen compares held-open delivery connections
// (paper's design: "multiple messages can be delivered to a destination
// over one connection which is more efficient than opening multiple short
// lived connections") against a fresh connection per delivery. The metric
// is virtual milliseconds to deliver a 200-message burst to one
// destination 10ms away.
func BenchmarkAblationHoldOpen(b *testing.B) {
	cases := []struct {
		name      string
		keepAlive bool
	}{
		{"held-connection", true},
		{"connection-per-message", false},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rig := newMsgBenchRig(b, msgBenchOptions{
					holdOpen:    5 * time.Second,
					wsWorkers:   16,
					keepAlive:   tc.keepAlive,
					numDests:    1,
					destLatency: 5 * time.Millisecond,
				})
				elapsed := rig.runBurst(b, 200, 1)
				b.ReportMetric(float64(elapsed.Milliseconds()), "virtual-ms")
				rig.stop()
			}
		})
	}
}

// BenchmarkAblationPoolSizes sweeps the WsThread pool bound with traffic
// fanned across 8 destinations: a single shared worker serializes all
// queues, a bigger pool lets destinations progress in parallel.
func BenchmarkAblationPoolSizes(b *testing.B) {
	for _, wst := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("ws-workers=%d", wst), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rig := newMsgBenchRig(b, msgBenchOptions{
					holdOpen:    5 * time.Second,
					wsWorkers:   wst,
					keepAlive:   true,
					numDests:    8,
					destLatency: 5 * time.Millisecond,
				})
				elapsed := rig.runBurst(b, 160, 8)
				b.ReportMetric(float64(elapsed.Milliseconds()), "virtual-ms")
				rig.stop()
			}
		})
	}
}

// BenchmarkAblationRegistry measures the registry's hot-path Resolve under
// each balancing policy (the dispatcher consults it once per message).
func BenchmarkAblationRegistry(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy registry.Policy
	}{
		{"first", registry.PolicyFirst},
		{"round-robin", registry.PolicyRoundRobin},
		{"least-pending", registry.PolicyLeastPending},
	} {
		b.Run(tc.name, func(b *testing.B) {
			reg := registry.New(tc.policy, clock.Wall)
			for s := 0; s < 64; s++ {
				reg.Register(fmt.Sprintf("svc%d", s),
					fmt.Sprintf("http://a%d:80/", s), fmt.Sprintf("http://b%d:80/", s))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reg.Resolve(fmt.Sprintf("svc%d", i%64)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBinaryXML compares the text SOAP wire format against the
// binary XML extension the paper proposes as future work (§2), on a
// fully addressed echo envelope: bytes on the wire and codec speed.
func BenchmarkBinaryXML(b *testing.B) {
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText(echoservice.EchoNS, "echo", "payload"))
	(&wsa.Headers{
		To:        "logical:echo",
		Action:    "urn:echo",
		MessageID: wsa.NewMessageID(),
		ReplyTo:   &wsa.EPR{Address: "http://client:90/msg"},
	}).Apply(env)
	tree := env.Tree()
	text, err := xmlsoap.Marshal(tree)
	if err != nil {
		b.Fatal(err)
	}
	bin, err := xmlsoap.MarshalBinary(tree)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("text-encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmlsoap.Marshal(tree); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(text)), "wire-bytes")
	})
	b.Run("binary-encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmlsoap.MarshalBinary(tree); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(bin)), "wire-bytes")
	})
	b.Run("text-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmlsoap.Parse(text); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmlsoap.UnmarshalBinary(bin); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSOAPCodec measures envelope marshal/parse — the per-message
// XML cost every hop pays (XSUL's wrapping/unwrapping).
func BenchmarkSOAPCodec(b *testing.B) {
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText(echoservice.EchoNS, "echo", "payload"))
	(&wsa.Headers{
		To:        "logical:echo",
		Action:    "urn:echo",
		MessageID: wsa.NewMessageID(),
		ReplyTo:   &wsa.EPR{Address: "http://client:90/msg"},
	}).Apply(env)
	raw, err := env.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := env.Marshal(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := soap.Parse(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(len(raw)), "envelope-bytes")
}
