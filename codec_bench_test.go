// Wire-codec micro-benchmarks: the per-message marshal/parse cost every
// hop of the dispatch path pays, isolated from the simulated network.
// Run with:
//
//	go test -bench 'Marshal|Parse|RoundTrip' -benchmem
//
// The allocation budgets these benchmarks exercise are enforced by
// regression tests (internal/xmlsoap TestAppendToZeroAlloc,
// internal/wsa TestSkeletonZeroAlloc), so a future PR cannot silently
// regress them.
package repro_test

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/httpx/refhead"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
	"repro/internal/xmlsoap/refparser"
)

// benchEnvelope is a fully addressed echo message: the exact shape the
// MSG-Dispatcher renders per forwarded message.
func benchEnvelope() *soap.Envelope {
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText(echoservice.EchoNS, "echo", "payload"))
	(&wsa.Headers{
		To:        "logical:echo",
		Action:    echoservice.EchoNS + ":echo",
		MessageID: "urn:uuid:00000000-0000-4000-8000-000000000000",
		ReplyTo:   &wsa.EPR{Address: "http://client:90/msg"},
	}).Apply(env)
	return env
}

// BenchmarkMarshal measures envelope serialization three ways: the
// skeleton-cached streaming path the dispatchers use (steady state:
// 0 allocs/op), the general streaming path, and the compat Marshal that
// still materializes a fresh slice.
func BenchmarkMarshal(b *testing.B) {
	env := benchEnvelope()
	b.Run("skeleton-append", func(b *testing.B) {
		dst := make([]byte, 0, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wsa.AppendEnvelope(dst, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("general-append", func(b *testing.B) {
		dst := make([]byte, 0, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := env.AppendTo(dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compat-marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := env.Marshal(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParse measures the receive half of the codec: the full
// soap.Parse path the dispatchers pay per message, the xmlsoap tree
// parse alone (pooled and dedicated-decoder), and the frozen
// encoding/xml-based refparser as the seed baseline.
func BenchmarkParse(b *testing.B) {
	raw, err := wsa.MarshalEnvelope(benchEnvelope())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("envelope", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(len(raw)), "envelope-bytes")
		for i := 0; i < b.N; i++ {
			if _, err := soap.Parse(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree-pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xmlsoap.Parse(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree-decoder", func(b *testing.B) {
		dec := xmlsoap.NewDecoder()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dec.Parse(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("refparser-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := refparser.Parse(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRoundTrip measures one full hop as a dispatcher sees it:
// parse the incoming envelope, extract and rewrite the WS-Addressing
// headers, and re-serialize for the next hop. Two variants:
//
//   - clone-apply is the pre-PR-3 sequence (deep header clone, Apply
//     materializing fresh header elements, skeleton render);
//   - fused-rewrite is what msgdisp now runs: a shallow Headers copy
//     with shared constant EPRs spliced straight into the skeleton via
//     wsa.AppendRewritten, no header elements built at all.
func BenchmarkRoundTrip(b *testing.B) {
	raw, err := wsa.MarshalEnvelope(benchEnvelope())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("clone-apply", func(b *testing.B) {
		dst := make([]byte, 0, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			env, err := soap.Parse(raw)
			if err != nil {
				b.Fatal(err)
			}
			h, err := wsa.FromEnvelope(env)
			if err != nil {
				b.Fatal(err)
			}
			rewritten := h.Clone()
			rewritten.To = "http://ws1:81/msg"
			rewritten.ReplyTo = &wsa.EPR{Address: "http://wsd:9100/msg"}
			rewritten.Apply(env)
			if _, err := wsa.AppendEnvelope(dst, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fused-rewrite", func(b *testing.B) {
		dst := make([]byte, 0, 4096)
		selfEPR := &wsa.EPR{Address: "http://wsd:9100/msg"}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			env, err := soap.Parse(raw)
			if err != nil {
				b.Fatal(err)
			}
			h, err := wsa.FromEnvelope(env)
			if err != nil {
				b.Fatal(err)
			}
			rewritten := *h
			rewritten.To = "http://ws1:81/msg"
			rewritten.ReplyTo = selfEPR
			if _, err := wsa.AppendRewritten(dst, env, &rewritten); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReadHead measures one HTTP request read — head parse plus
// body framing — end to end over an in-memory reader: the unit every
// dispatch hop pays on both sides of a connection. "pooled" is the
// in-place parser reading into a pooled head+body buffer (steady state:
// one allocation, the *Request itself); "refhead" is the frozen
// map-based seed parser kept as the FuzzHead oracle. Run without the
// poolcheck tag for representative numbers — poison scans dominate
// otherwise.
func BenchmarkReadHead(b *testing.B) {
	raw := []byte("POST /msg HTTP/1.1\r\nContent-Type: text/xml; charset=utf-8\r\nContent-Length: 7\r\nHost: wsd:9100\r\n\r\n<soap/>")
	src := bytes.NewReader(raw)
	br := bufio.NewReader(src)
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src.Reset(raw)
			br.Reset(src)
			req, err := httpx.ReadRequestPooled(br)
			if err != nil {
				b.Fatal(err)
			}
			req.Release()
		}
	})
	b.Run("refhead", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src.Reset(raw)
			br.Reset(src)
			if _, err := refhead.ReadRequest(br); err != nil {
				b.Fatal(err)
			}
		}
	})
}
