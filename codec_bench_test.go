// Wire-codec micro-benchmarks: the per-message marshal/parse cost every
// hop of the dispatch path pays, isolated from the simulated network.
// Run with:
//
//	go test -bench 'Marshal|Parse|RoundTrip' -benchmem
//
// The allocation budgets these benchmarks exercise are enforced by
// regression tests (internal/xmlsoap TestAppendToZeroAlloc,
// internal/wsa TestSkeletonZeroAlloc), so a future PR cannot silently
// regress them.
package repro_test

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/httpx/refhead"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
	"repro/internal/xmlsoap/refparser"
)

// benchEnvelope is a fully addressed echo message: the exact shape the
// MSG-Dispatcher renders per forwarded message.
func benchEnvelope() *soap.Envelope {
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText(echoservice.EchoNS, "echo", "payload"))
	(&wsa.Headers{
		To:        "logical:echo",
		Action:    echoservice.EchoNS + ":echo",
		MessageID: "urn:uuid:00000000-0000-4000-8000-000000000000",
		ReplyTo:   &wsa.EPR{Address: "http://client:90/msg"},
	}).Apply(env)
	return env
}

// BenchmarkMarshal measures envelope serialization three ways: the
// skeleton-cached streaming path the dispatchers use (steady state:
// 0 allocs/op), the general streaming path, and the compat Marshal that
// still materializes a fresh slice.
func BenchmarkMarshal(b *testing.B) {
	env := benchEnvelope()
	b.Run("skeleton-append", func(b *testing.B) {
		dst := make([]byte, 0, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wsa.AppendEnvelope(dst, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("general-append", func(b *testing.B) {
		dst := make([]byte, 0, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := env.AppendTo(dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compat-marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := env.Marshal(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParse measures the receive half of the codec: the full
// soap.Parse path the dispatchers pay per message, the xmlsoap tree
// parse alone (pooled and dedicated-decoder), and the frozen
// encoding/xml-based refparser as the seed baseline.
func BenchmarkParse(b *testing.B) {
	raw, err := wsa.MarshalEnvelope(benchEnvelope())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("envelope", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(len(raw)), "envelope-bytes")
		for i := 0; i < b.N; i++ {
			if _, err := soap.Parse(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree-pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xmlsoap.Parse(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree-decoder", func(b *testing.B) {
		dec := xmlsoap.NewDecoder()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dec.Parse(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("refparser-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := refparser.Parse(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRoundTrip measures one full hop as a dispatcher sees it:
// parse the incoming envelope, extract and rewrite the WS-Addressing
// headers, and re-serialize for the next hop. Two variants:
//
//   - clone-apply is the pre-PR-3 sequence (deep header clone, Apply
//     materializing fresh header elements, skeleton render);
//   - fused-rewrite is what msgdisp now runs: a shallow Headers copy
//     with shared constant EPRs spliced straight into the skeleton via
//     wsa.AppendRewritten, no header elements built at all.
func BenchmarkRoundTrip(b *testing.B) {
	raw, err := wsa.MarshalEnvelope(benchEnvelope())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("clone-apply", func(b *testing.B) {
		dst := make([]byte, 0, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			env, err := soap.Parse(raw)
			if err != nil {
				b.Fatal(err)
			}
			h, err := wsa.FromEnvelope(env)
			if err != nil {
				b.Fatal(err)
			}
			rewritten := h.Clone()
			rewritten.To = "http://ws1:81/msg"
			rewritten.ReplyTo = &wsa.EPR{Address: "http://wsd:9100/msg"}
			rewritten.Apply(env)
			if _, err := wsa.AppendEnvelope(dst, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fused-rewrite", func(b *testing.B) {
		dst := make([]byte, 0, 4096)
		selfEPR := &wsa.EPR{Address: "http://wsd:9100/msg"}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			env, err := soap.Parse(raw)
			if err != nil {
				b.Fatal(err)
			}
			h, err := wsa.FromEnvelope(env)
			if err != nil {
				b.Fatal(err)
			}
			rewritten := *h
			rewritten.To = "http://ws1:81/msg"
			rewritten.ReplyTo = selfEPR
			if _, err := wsa.AppendRewritten(dst, env, &rewritten); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReadHead measures one HTTP request read — head parse plus
// body framing — end to end over an in-memory reader: the unit every
// dispatch hop pays on both sides of a connection. "pooled" is the
// in-place parser reading into a pooled head+body buffer (steady state:
// one allocation, the *Request itself); "refhead" is the frozen
// map-based seed parser kept as the FuzzHead oracle. Run without the
// poolcheck tag for representative numbers — poison scans dominate
// otherwise.
func BenchmarkReadHead(b *testing.B) {
	raw := []byte("POST /msg HTTP/1.1\r\nContent-Type: text/xml; charset=utf-8\r\nContent-Length: 7\r\nHost: wsd:9100\r\n\r\n<soap/>")
	src := bytes.NewReader(raw)
	br := bufio.NewReader(src)
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src.Reset(raw)
			br.Reset(src)
			req, err := httpx.ReadRequestPooled(br)
			if err != nil {
				b.Fatal(err)
			}
			req.Release()
		}
	})
	b.Run("refhead", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src.Reset(raw)
			br.Reset(src)
			if _, err := refhead.ReadRequest(br); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchListener is a one-shot in-memory net.Listener fed net.Pipe conns
// by benchDialer — the same no-sockets rig the msgdisp allocation gate
// uses, duplicated here because these root benchmarks run without the
// poolcheck TestMain (poison scans would dominate sub-µs paths).
type benchListener struct {
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newBenchListener() *benchListener {
	return &benchListener{ch: make(chan net.Conn, 4), closed: make(chan struct{})}
}

func (l *benchListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, errors.New("benchListener: closed")
	}
}

func (l *benchListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *benchListener) Addr() net.Addr { return benchAddr("mem") }

type benchAddr string

func (a benchAddr) Network() string { return "mem" }
func (a benchAddr) String() string  { return string(a) }

type benchDialer map[string]*benchListener

func (d benchDialer) DialTimeout(addr string, _ time.Duration) (net.Conn, error) {
	ln, ok := d[addr]
	if !ok {
		return nil, errors.New("benchDialer: no listener at " + addr)
	}
	local, remote := net.Pipe()
	ln.ch <- remote
	return local, nil
}

// benchEchoHandler is the minimal Exchange handler: echo the body, no
// parsing — so the benchmarks below isolate the HTTP layer itself.
func benchEchoHandler(ex *httpx.Exchange) {
	ex.Header().Set("Content-Type", ex.Req.Header.Get("Content-Type"))
	ex.ReplyBytes(httpx.StatusOK, ex.Req.Body)
}

// BenchmarkServeConnPipelined measures the server side of the Exchange
// redesign in isolation: one keep-alive connection carrying batches of
// back-to-back (pipelined) requests, served by serveConn's reused
// Exchange with single-write replies. The per-op unit is ONE request.
// Steady state allocates nothing per request in the httpx layer; what
// remains is net.Pipe deadline machinery.
func BenchmarkServeConnPipelined(b *testing.B) {
	ln := newBenchListener()
	srv := httpx.NewServer(httpx.HandlerFunc(benchEchoHandler), httpx.ServerConfig{})
	srv.Start(ln)
	defer srv.Close()

	local, remote := net.Pipe()
	ln.ch <- remote
	defer local.Close()

	const batch = 16
	var reqBytes bytes.Buffer
	req := httpx.NewRequest("POST", "/echo", []byte("<soap:Envelope>ping</soap:Envelope>"))
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	for i := 0; i < batch; i++ {
		if err := req.Encode(&reqBytes); err != nil {
			b.Fatal(err)
		}
	}
	blob := reqBytes.Bytes()
	br := bufio.NewReader(local)
	writeErr := make(chan error, 1)

	var resp httpx.Response // the bench side reuses its struct too
	runBatch := func() {
		go func() {
			_, err := local.Write(blob)
			writeErr <- err
		}()
		for i := 0; i < batch; i++ {
			if err := httpx.ReadResponseInto(br, &resp); err != nil {
				b.Fatal(err)
			}
			if resp.Status != httpx.StatusOK {
				b.Fatalf("HTTP %d", resp.Status)
			}
			resp.Release()
		}
		if err := <-writeErr; err != nil {
			b.Fatal(err)
		}
	}
	runBatch() // warm pools and the connection's Exchange
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		runBatch()
	}
}

// BenchmarkClientStream measures the client side: Stream.Do pipelining
// consecutive exchanges over one pinned connection with the
// per-connection Response reuse, vs Client.Do taking the idle-pool path
// on every exchange.
func BenchmarkClientStream(b *testing.B) {
	nets := benchDialer{"echo:80": newBenchListener()}
	srv := httpx.NewServer(httpx.HandlerFunc(benchEchoHandler), httpx.ServerConfig{})
	srv.Start(nets["echo:80"])
	defer srv.Close()

	req := httpx.NewRequest("POST", "/echo", []byte("<soap:Envelope>ping</soap:Envelope>"))
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")

	b.Run("stream", func(b *testing.B) {
		cli := httpx.NewClient(nets, httpx.ClientConfig{})
		defer cli.Close()
		s := cli.Stream("echo:80")
		defer s.Close()
		exchange := func() {
			resp, err := s.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			resp.Release()
		}
		exchange()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			exchange()
		}
	})
	b.Run("do", func(b *testing.B) {
		cli := httpx.NewClient(nets, httpx.ClientConfig{})
		defer cli.Close()
		exchange := func() {
			resp, err := cli.Do("echo:80", req)
			if err != nil {
				b.Fatal(err)
			}
			resp.Release()
		}
		exchange()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			exchange()
		}
	})
}
