package msgdisp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// rig: client (optionally firewalled) → MSG-Dispatcher (wsd) → async echo
// service (ws, firewalled except from wsd). The client runs its own
// message endpoint on cli:90.
type rig struct {
	clk    *clock.Virtual
	nw     *netsim.Network
	disp   *Dispatcher
	echo   *echoservice.Async
	client *httpx.Client
	inbox  chan *soap.Envelope
}

func newRig(t *testing.T, clientFirewalled bool, cfg Config) *rig {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	nw := netsim.New(clk, 21)

	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN(), netsim.WithFirewall(netsim.OutboundOnlyExcept("wsd")))
	var cliOpts []netsim.HostOption
	if clientFirewalled {
		cliOpts = append(cliOpts, netsim.WithFirewall(netsim.OutboundOnly()))
	}
	cli := nw.AddHost("cli", netsim.ProfileLAN(), cliOpts...)

	r := &rig{clk: clk, nw: nw, inbox: make(chan *soap.Envelope, 256)}

	// Async echo service on ws:81; its replies go to the rewritten
	// ReplyTo, i.e. back through the dispatcher.
	wsClient := httpx.NewClient(ws, httpx.ClientConfig{Clock: clk})
	r.echo = echoservice.NewAsync(clk, wsClient, 0)
	r.echo.OwnAddress = "http://ws:81/msg"
	r.echo.ReplyTimeout = 5 * time.Second
	lnWS, _ := ws.Listen(81)
	srvWS := httpx.NewServer(r.echo, httpx.ServerConfig{Clock: clk})
	srvWS.Start(lnWS)
	t.Cleanup(func() { srvWS.Close() })

	// Registry + dispatcher on wsd:9100.
	reg := registry.New(registry.PolicyFirst, clk)
	reg.Register("echo", "http://ws:81/msg")
	cfg.Clock = clk
	if cfg.ReturnAddress == "" {
		cfg.ReturnAddress = "http://wsd:9100/msg"
	}
	dispClient := httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk})
	r.disp = New(reg, dispClient, cfg)
	if err := r.disp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.disp.Stop)
	lnD, _ := wsd.Listen(9100)
	srvD := httpx.NewServer(r.disp, httpx.ServerConfig{Clock: clk})
	srvD.Start(lnD)
	t.Cleanup(func() { srvD.Close() })

	// Client message endpoint on cli:90.
	lnCli, _ := cli.Listen(90)
	srvCli := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		if env, err := soap.Parse(ex.Req.Body); err == nil {
			r.inbox <- env.Detach()
		}
		ex.ReplyBytes(httpx.StatusAccepted, nil)
	}), httpx.ServerConfig{Clock: clk})
	srvCli.Start(lnCli)
	t.Cleanup(func() { srvCli.Close() })

	r.client = httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
	t.Cleanup(r.client.Close)
	return r
}

// send posts one WSA message to the dispatcher and returns its MessageID
// and HTTP status.
func (r *rig) send(t *testing.T, to, replyTo string) (string, int) {
	t.Helper()
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText(echoservice.EchoNS, "echo", "m"))
	h := &wsa.Headers{To: to, Action: "urn:echo", MessageID: wsa.NewMessageID()}
	if replyTo != "" {
		h.ReplyTo = &wsa.EPR{Address: replyTo}
	}
	h.Apply(env)
	raw, _ := env.Marshal()
	resp, err := r.client.Do("wsd:9100", httpx.NewRequest("POST", "/msg", raw))
	if err != nil {
		t.Fatal(err)
	}
	return h.MessageID, resp.Status
}

func TestEndToEndAsyncEchoThroughDispatcher(t *testing.T) {
	r := newRig(t, false, Config{})
	msgID, status := r.send(t, LogicalScheme+"echo", "http://cli:90/msg")
	if status != httpx.StatusAccepted {
		t.Fatalf("send status = %d", status)
	}
	select {
	case env := <-r.inbox:
		h, err := wsa.FromEnvelope(env)
		if err != nil {
			t.Fatal(err)
		}
		if h.RelatesTo != msgID {
			t.Fatalf("RelatesTo = %q, want %q", h.RelatesTo, msgID)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("reply never arrived at client")
	}
	waitFor(t, func() bool { return r.disp.ForwardedToWS.Value() == 1 })
	waitFor(t, func() bool { return r.disp.RepliesDelivered.Value() == 1 })
	if r.disp.PendingLen() != 0 {
		t.Fatalf("pending state leaked: %d", r.disp.PendingLen())
	}
}

func TestPhysicalToAddressBypassesRegistry(t *testing.T) {
	r := newRig(t, false, Config{})
	_, status := r.send(t, "http://ws:81/msg", "http://cli:90/msg")
	if status != httpx.StatusAccepted {
		t.Fatalf("status = %d", status)
	}
	waitFor(t, func() bool { return r.echo.Accepted.Value() == 1 })
}

func TestUnknownLogicalNameFaults(t *testing.T) {
	r := newRig(t, false, Config{})
	_, status := r.send(t, LogicalScheme+"ghost", "http://cli:90/msg")
	if status != httpx.StatusNotFound {
		t.Fatalf("status = %d", status)
	}
	if r.disp.Rejected.Value() == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestMalformedEnvelopeRejected(t *testing.T) {
	r := newRig(t, false, Config{})
	resp, err := r.client.Do("wsd:9100", httpx.NewRequest("POST", "/msg", []byte("garbage")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusBadRequest {
		t.Fatalf("status = %d", resp.Status)
	}
	env, _ := soap.Parse(resp.Body)
	if f, ok := soap.AsFault(env); !ok || !strings.Contains(f.Reason, "invalid SOAP") {
		t.Fatalf("fault = %+v", f)
	}
}

func TestMissingAddressingRejected(t *testing.T) {
	r := newRig(t, false, Config{})
	env := soap.New(soap.V11).SetBody(xmlsoap.New("urn:x", "op"))
	raw, _ := env.Marshal()
	resp, _ := r.client.Do("wsd:9100", httpx.NewRequest("POST", "/msg", raw))
	if resp.Status != httpx.StatusBadRequest {
		t.Fatalf("status = %d", resp.Status)
	}
}

func TestReplyToFirewalledClientFailsButForwardSucceeds(t *testing.T) {
	r := newRig(t, true, Config{DeliveryTimeout: 2 * time.Second})
	_, status := r.send(t, LogicalScheme+"echo", "http://cli:90/msg")
	if status != httpx.StatusAccepted {
		t.Fatalf("status = %d", status)
	}
	// Forward leg reaches the service; reply leg dies at the firewall.
	waitFor(t, func() bool { return r.disp.ForwardedToWS.Value() == 1 })
	waitFor(t, func() bool { return r.disp.DeliveryFailures.Value() == 1 })
	if r.disp.RepliesDelivered.Value() != 0 {
		t.Fatal("reply crossed the firewall")
	}
}

func TestBatchingOverOneConnection(t *testing.T) {
	r := newRig(t, false, Config{HoldOpen: 10 * time.Second})
	const n = 10
	for i := 0; i < n; i++ {
		if _, status := r.send(t, LogicalScheme+"echo", ""); status != httpx.StatusAccepted {
			t.Fatalf("send %d status = %d", i, status)
		}
	}
	waitFor(t, func() bool { return r.disp.ForwardedToWS.Value() >= n })
	if got := r.disp.ForwardedToWS.Value(); got != n {
		t.Fatalf("ForwardedToWS = %d, want exactly %d (self-forwarding loop?)", got, n)
	}
	// All deliveries should share very few connections to the service
	// host thanks to the hold-open + keep-alive pool.
	ws := r.nw.Host("ws")
	if peak := ws.PeakConns(); peak > 3 {
		t.Fatalf("service saw %d concurrent conns, want few (batched)", peak)
	}
}

func TestQueueFullGives503(t *testing.T) {
	r := newRig(t, false, Config{
		QueueCap:        2,
		WsWorkers:       1,
		DeliveryTimeout: 2 * time.Second,
		HoldOpen:        100 * time.Millisecond,
	})
	// Stall the lone WsThread on a firewalled destination (the dial
	// consumes the full DeliveryTimeout), then overflow a second queue.
	r.nw.AddHost("blackhole", netsim.ProfileLAN(), netsim.WithFirewall(netsim.OutboundOnly()))
	if _, status := r.send(t, "http://blackhole:1/x", ""); status != httpx.StatusAccepted {
		t.Fatalf("stall send status = %d", status)
	}
	got503 := false
	for i := 0; i < 8; i++ {
		_, status := r.send(t, LogicalScheme+"echo", "")
		if status == httpx.StatusServiceUnavailable {
			got503 = true
			break
		}
	}
	if !got503 {
		t.Fatal("no 503 despite full queue")
	}
	if r.disp.QueueDrops.Value() == 0 {
		t.Fatal("drop not counted")
	}
}

func TestSweepPendingExpires(t *testing.T) {
	r := newRig(t, false, Config{PendingTTL: time.Minute})
	r.send(t, LogicalScheme+"echo", "http://cli:90/msg")
	// Consume the reply so this test controls remaining state.
	select {
	case <-r.inbox:
	case <-time.After(15 * time.Second):
		t.Fatal("no reply")
	}
	// Seed an entry that will never get a reply.
	r.disp.pending.Put("urn:uuid:orphan", pendingReply{
		replyTo: &wsa.EPR{Address: "http://cli:90/msg"},
		expires: r.clk.Now().Add(time.Minute),
	})
	if n := r.disp.SweepPending(); n != 0 {
		t.Fatalf("premature sweep = %d", n)
	}
	r.clk.Sleep(2 * time.Minute)
	if n := r.disp.SweepPending(); n != 1 {
		t.Fatalf("sweep = %d, want 1", n)
	}
}

func TestUnmatchedReplyCounted(t *testing.T) {
	r := newRig(t, false, Config{})
	env := soap.New(soap.V11).SetBody(xmlsoap.New("urn:x", "late"))
	h := &wsa.Headers{
		To:        "http://cli:90/msg",
		MessageID: wsa.NewMessageID(),
		RelatesTo: "urn:uuid:never-seen",
	}
	h.Apply(env)
	raw, _ := env.Marshal()
	resp, _ := r.client.Do("wsd:9100", httpx.NewRequest("POST", "/msg", raw))
	// It still routes by To (physical), but the unmatched counter ticks.
	if resp.Status != httpx.StatusAccepted {
		t.Fatalf("status = %d", resp.Status)
	}
	if r.disp.UnmatchedReplies.Value() != 1 {
		t.Fatalf("UnmatchedReplies = %d", r.disp.UnmatchedReplies.Value())
	}
}

func TestStopRejectsNewWork(t *testing.T) {
	r := newRig(t, false, Config{})
	r.disp.Stop()
	_, status := r.send(t, LogicalScheme+"echo", "")
	if status != httpx.StatusServiceUnavailable {
		t.Fatalf("status after Stop = %d", status)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
