//go:build !race

package msgdisp

const raceEnabled = false
