package msgdisp

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// memListener is an in-memory net.Listener fed by memNet.DialTimeout
// with net.Pipe connections: the full httpx server/client stack runs
// over it with no sockets and no simulated-network bookkeeping, which
// is what an allocation gate wants under the measurement loop.
type memListener struct {
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newMemListener() *memListener {
	return &memListener{ch: make(chan net.Conn, 16), closed: make(chan struct{})}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, errors.New("memListener: closed")
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr("mem") }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

// memNet routes httpx dials to in-memory listeners by address.
type memNet map[string]*memListener

func (n memNet) DialTimeout(addr string, _ time.Duration) (net.Conn, error) {
	ln, ok := n[addr]
	if !ok {
		return nil, errors.New("memNet: no listener at " + addr)
	}
	local, remote := net.Pipe()
	select {
	case ln.ch <- remote:
		return local, nil
	case <-ln.closed:
		local.Close()
		return nil, errors.New("memNet: listener closed")
	}
}

// TestRoundTripSteadyStateAllocs is the end-to-end allocation gate for
// the pooled-buffer message pipeline: one full MSG-Dispatcher exchange
// over httpx — client POST, CxThread parse+rewrite, queued pooled
// render, WsThread delivery to an RPC echo service, synchronous-answer
// bridge, anonymous-reply hand-back — measured bytes-in to bytes-out.
//
// The bound it enforces is the tentpole claim, ratcheted four times:
// zero GC-owned message-body allocations (PR 3), zero httpx-layer head
// allocations (PR 4 — heads parse in place inside each message's pooled
// buffer, so no header maps, no per-line strings, no release closures),
// zero per-request message-struct allocations (PR 5 — the Exchange API
// reuses one Request per server connection and one Response per client
// connection, handlers reply on the exchange instead of building
// Response structs, and the dispatcher's verdict channel is gone), and
// zero per-exchange timer/rendezvous allocations (PR 7: wait timers,
// waiter slots, and CxThread admission closures are pooled; client
// connection deadlines are armed lazily; the echo response splices the
// parsed request's children instead of rebuilding a Call), and zero
// parse allocations on the forward legs (PR 9: canonical traffic routes
// through the wsa skim scanner — spans, no trees — in both the CxThread
// and the WsThread bridge, which retired the per-exchange parse arenas).
// What remains is budgeted by maxAllocs below — the detached MessageID,
// the bridge's fresh reply ID, channel ops — and what may not reappear
// is the ~5 KiB of body-sized buffers the seed path allocated per
// message, the per-head cluster (~10 allocations per HTTP hop), the
// per-message struct cluster (~6 structs per exchange), the
// timer/closure cluster (~8 allocations per exchange across
// SetDeadline, NewTimer, and func literals), or the parse-arena cluster
// (~6 allocations per exchange across the two routed parses) — maxBytes
// is set under one envelope-per-hop of regression and maxAllocs under
// one cluster of any kind.
func TestRoundTripSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool caching is randomized under the race detector")
	}
	const (
		maxAllocs = 7    // measured ~5 on linux/amd64 go1.24; headroom for GC-emptied pools
		maxBytes  = 2000 // measured ~1.3 KiB (IDs, channel ops); a parse-arena regression adds ~1.8 KiB
	)

	nets := memNet{}
	nets["echo:80"] = newMemListener()
	nets["wsd:9100"] = newMemListener()

	echo := echoservice.NewRPC(nil, 0)
	srvEcho := httpx.NewServer(echo, httpx.ServerConfig{})
	srvEcho.Start(nets["echo:80"])
	defer srvEcho.Close()

	reg := registry.New(registry.PolicyFirst, nil)
	reg.Register("echo-rpc", "http://echo:80/")
	disp := New(reg, httpx.NewClient(nets, httpx.ClientConfig{}), Config{
		ReturnAddress: "http://wsd:9100/msg",
		AnonymousWait: 20 * time.Second,
	})
	if err := disp.Start(); err != nil {
		t.Fatal(err)
	}
	defer disp.Stop()
	srvDisp := httpx.NewServer(disp, httpx.ServerConfig{})
	srvDisp.Start(nets["wsd:9100"])
	defer srvDisp.Close()

	cli := httpx.NewClient(nets, httpx.ClientConfig{})
	defer cli.Close()

	// One fully addressed RPC-over-messaging request, rendered once;
	// the dispatcher deletes the pending entry on every reply, so the
	// MessageID can repeat across sequential exchanges.
	env := soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
		soap.Param{Name: "message", Value: "steady"})
	(&wsa.Headers{
		To:        LogicalScheme + "echo-rpc",
		Action:    echoservice.EchoNS + ":" + echoservice.EchoOp,
		MessageID: "urn:uuid:00000000-0000-4000-8000-00000000a110c",
		ReplyTo:   &wsa.EPR{Address: wsa.Anonymous},
	}).Apply(env)
	raw, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// One request, reused for every exchange: Do never mutates it, and
	// connection-scoped reuse is exactly what the Exchange API is for.
	req := httpx.NewRequest("POST", "/msg", raw)
	req.Header.Set("Content-Type", soap.V11.ContentType())
	roundTrip := func() {
		resp, err := cli.Do("wsd:9100", req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != httpx.StatusOK || len(resp.Body) == 0 {
			t.Fatalf("round trip: HTTP %d body=%q", resp.Status, resp.Body)
		}
		resp.Release()
	}

	// Warm up connections, skeleton caches, pools, and the WsThread
	// destination binding.
	for i := 0; i < 25; i++ {
		roundTrip()
	}

	allocs := testing.AllocsPerRun(100, roundTrip)
	if allocs > maxAllocs {
		t.Errorf("round trip allocated %.1f times per op, want <= %d", allocs, maxAllocs)
	}

	// Bytes per op via the monotonic allocation counter (TotalAlloc is
	// unaffected by GC), over a fresh run of exchanges.
	const n = 100
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		roundTrip()
	}
	runtime.ReadMemStats(&after)
	bytesPerOp := (after.TotalAlloc - before.TotalAlloc) / n
	t.Logf("steady state: %.1f allocs/op, %d B/op (envelope %d B)", allocs, bytesPerOp, len(raw))
	if bytesPerOp > maxBytes {
		t.Errorf("round trip allocated %d B/op, want <= %d (message bodies back on the GC heap?)", bytesPerOp, maxBytes)
	}

	// The pooled buffers this exchange drew must all have been
	// released: with the lifecycle checker on (TestMain), PoolLive
	// drifting upward across exchanges means a leak on the hot path.
	live0 := xmlsoap.PoolLive()
	for i := 0; i < 50; i++ {
		roundTrip()
	}
	waitFor(t, func() bool { return xmlsoap.PoolLive() <= live0 })
}

// BenchmarkDispatchExchange reports the same full exchange the gate
// above fences, for CHANGES.md bookkeeping: client POST → CxThread →
// WsThread → RPC echo → bridge → anonymous reply, over in-memory pipes.
func BenchmarkDispatchExchange(b *testing.B) {
	nets := memNet{}
	nets["echo:80"] = newMemListener()
	nets["wsd:9100"] = newMemListener()
	srvEcho := httpx.NewServer(echoservice.NewRPC(nil, 0), httpx.ServerConfig{})
	srvEcho.Start(nets["echo:80"])
	defer srvEcho.Close()
	reg := registry.New(registry.PolicyFirst, nil)
	reg.Register("echo-rpc", "http://echo:80/")
	disp := New(reg, httpx.NewClient(nets, httpx.ClientConfig{}), Config{
		ReturnAddress: "http://wsd:9100/msg",
		AnonymousWait: 20 * time.Second,
	})
	if err := disp.Start(); err != nil {
		b.Fatal(err)
	}
	defer disp.Stop()
	srvDisp := httpx.NewServer(disp, httpx.ServerConfig{})
	srvDisp.Start(nets["wsd:9100"])
	defer srvDisp.Close()
	cli := httpx.NewClient(nets, httpx.ClientConfig{})
	defer cli.Close()

	env := soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
		soap.Param{Name: "message", Value: "steady"})
	(&wsa.Headers{
		To:        LogicalScheme + "echo-rpc",
		Action:    echoservice.EchoNS + ":" + echoservice.EchoOp,
		MessageID: "urn:uuid:00000000-0000-4000-8000-00000000b33c4",
		ReplyTo:   &wsa.EPR{Address: wsa.Anonymous},
	}).Apply(env)
	raw, err := env.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	req := httpx.NewRequest("POST", "/msg", raw)
	req.Header.Set("Content-Type", soap.V11.ContentType())
	exchange := func() {
		resp, err := cli.Do("wsd:9100", req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Status != httpx.StatusOK {
			b.Fatalf("HTTP %d", resp.Status)
		}
		resp.Release()
	}
	for i := 0; i < 25; i++ {
		exchange()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exchange()
	}
}
