package msgdisp

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/reliable"
	"repro/internal/soap"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// TestKillAndRecoverRedelivery is the durability acceptance scenario for
// the WAL-backed courier store: messages are enqueued through the
// MSG-Dispatcher while the destination is down, the whole dispatcher
// generation is hard-stopped mid-retry (the store is abandoned without
// Close, like a crash — SyncAlways means every accepted message is
// already on disk), a second generation reopens the same WAL directory,
// and every unacked message is redelivered exactly once. Pooled buffers
// return to baseline after the surviving generation shuts down.
func TestKillAndRecoverRedelivery(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	// SyncAlways fsyncs on the courier's goroutines; a real fsync can
	// outlast the Virtual pump's default 50µs quiescence window, which
	// would make disk I/O look like idleness and jump virtual time.
	clk.SetGrace(2 * time.Millisecond)
	nw := netsim.New(clk, 52)
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN())
	cli := nw.AddHost("cli", netsim.ProfileLAN())
	dir := filepath.Join(t.TempDir(), "courier.wal")
	baseline := xmlsoap.PoolLive()

	// boot brings up one dispatcher+courier generation over the shared
	// WAL directory. The teardown closes everything except, optionally,
	// the store — a crash never gets to flush.
	boot := func() (*Dispatcher, *reliable.Courier, *store.Store, func(closeStore bool)) {
		st, err := store.Open(clk, dir, store.Options{WAL: wal.Config{Sync: wal.SyncAlways}})
		if err != nil {
			t.Fatal(err)
		}
		courierClient := httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk})
		courier := reliable.New(st, courierClient, reliable.Config{
			Clock:          clk,
			InitialBackoff: 2 * time.Second,
			MaxBackoff:     5 * time.Second,
			AttemptTimeout: 2 * time.Second,
			DefaultTTL:     5 * time.Minute,
		})
		courier.Start()
		reg := registry.New(registry.PolicyFirst, clk)
		reg.Register("echo", "http://ws:81/msg")
		dispClient := httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk})
		disp := New(reg, dispClient, Config{
			Clock:           clk,
			ReturnAddress:   "http://wsd:9100/msg",
			DeliveryTimeout: 2 * time.Second,
			Courier:         courier,
		})
		if err := disp.Start(); err != nil {
			t.Fatal(err)
		}
		lnD, err := wsd.Listen(9100)
		if err != nil {
			t.Fatal(err)
		}
		srvD := httpx.NewServer(disp, httpx.ServerConfig{Clock: clk})
		srvD.Start(lnD)
		return disp, courier, st, func(closeStore bool) {
			srvD.Close()
			disp.Stop()
			courier.Stop()
			courierClient.Close()
			dispClient.Close()
			if closeStore {
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	send := func(client *httpx.Client, text string) {
		t.Helper()
		env := soap.New(soap.V11).SetBody(xmlsoap.NewText(echoservice.EchoNS, "echo", text))
		(&wsa.Headers{
			To:        LogicalScheme + "echo",
			Action:    echoservice.EchoNS + ":echo",
			MessageID: wsa.NewMessageID(),
		}).Apply(env)
		raw, err := env.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		req := httpx.NewRequest("POST", "/msg", raw)
		req.Header.Set("Content-Type", soap.V11.ContentType())
		resp, err := client.Do("wsd:9100", req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != httpx.StatusAccepted {
			t.Fatalf("send status = %d", resp.Status)
		}
		resp.Release()
	}

	// Generation 1: the destination is DOWN (no listener on ws:81), so
	// every forward fails over to the courier and persists.
	disp1, courier1, _, stop1 := boot()
	client := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
	const n = 3
	for i := 0; i < n; i++ {
		send(client, fmt.Sprintf("survivor-%d", i))
	}
	waitFor(t, func() bool { return disp1.HandedToCourier.Value() == n })
	waitFor(t, func() bool { return courier1.Pending() == n })
	client.Close()
	// Hard stop mid-retry: the store is NOT closed — recovery must come
	// from the WAL bytes alone.
	stop1(false)

	// Bring the destination up, then boot generation 2 from the same WAL.
	wsClient := httpx.NewClient(ws, httpx.ClientConfig{Clock: clk})
	echo := echoservice.NewAsync(clk, wsClient, 0)
	lnWS, err := ws.Listen(81)
	if err != nil {
		t.Fatal(err)
	}
	srvWS := httpx.NewServer(echo, httpx.ServerConfig{Clock: clk})
	srvWS.Start(lnWS)

	_, courier2, st2, stop2 := boot()
	waitFor(t, func() bool { return courier2.Delivered.Value() == n })
	// Exactly once: one attempt per recovered message, each landing on
	// the service once, and nothing left pending or persisted.
	if got := echo.Accepted.Value(); got != n {
		t.Fatalf("service accepted %d messages, want exactly %d", got, n)
	}
	if got := courier2.Attempts.Value(); got != n {
		t.Fatalf("recovery took %d attempts, want %d", got, n)
	}
	if courier2.Pending() != 0 {
		t.Fatalf("courier still holds %d messages", courier2.Pending())
	}
	if got := st2.Len(); got != 0 {
		t.Fatalf("store still holds %d records after redelivery", got)
	}
	stop2(true)
	srvWS.Close()
	wsClient.Close()

	waitFor(t, func() bool { return xmlsoap.PoolLive() <= baseline })
}
