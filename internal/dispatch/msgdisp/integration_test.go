package msgdisp

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/msgbox"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// TestFirewalledPeerMailboxConversation is the paper's headline scenario
// (§3, Figure 2 + Table 1 quadrant 4) end-to-end over netsim: a peer
// behind an outbound-only firewall converses with an asynchronous echo
// service through the MSG-Dispatcher, receiving every reply via a
// WS-MsgBox mailbox it polls over RPC. On top of the functional checks
// it verifies the two properties this PR's pipeline must preserve:
//
//   - ordering: messages queued to one destination (the mailbox) are
//     delivered and stored FIFO, so a batched Take returns them in send
//     order;
//   - buffer hygiene: with the pool lifecycle checker on (TestMain),
//     the number of outstanding pooled buffers returns to its baseline
//     once the conversation ends — no pooled bytes leak past any
//     exchange in the client, dispatcher, echo service, or mailbox.
func TestFirewalledPeerMailboxConversation(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	nw := netsim.New(clk, 77)

	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN(), netsim.WithFirewall(netsim.OutboundOnlyExcept("wsd")))
	peer := nw.AddHost("peer", netsim.ProfileLAN(), netsim.WithFirewall(netsim.OutboundOnly()))

	live0 := xmlsoap.PoolLive()

	// Asynchronous echo service on ws:81, replying through the
	// dispatcher (its ReplyTo is rewritten there).
	echo := echoservice.NewAsync(clk, httpx.NewClient(ws, httpx.ClientConfig{Clock: clk}), 10*time.Millisecond)
	echo.OwnAddress = "http://ws:81/msg"
	echo.ReplyTimeout = 5 * time.Second
	lnWS, _ := ws.Listen(81)
	srvWS := httpx.NewServer(echo, httpx.ServerConfig{Clock: clk})
	srvWS.Start(lnWS)
	t.Cleanup(func() { srvWS.Close() })

	// WS-MsgBox on wsd:9200 (co-located with the dispatcher host, as in
	// the paper's deployment).
	mbox := msgbox.New(msgbox.Config{Clock: clk, BaseURL: "http://wsd:9200"})
	if err := mbox.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mbox.Stop)
	lnMB, _ := wsd.Listen(9200)
	srvMB := httpx.NewServer(mbox, httpx.ServerConfig{Clock: clk})
	srvMB.Start(lnMB)
	t.Cleanup(func() { srvMB.Close() })

	// MSG-Dispatcher on wsd:9100.
	reg := registry.New(registry.PolicyFirst, clk)
	reg.Register("echo", "http://ws:81/msg")
	disp := New(reg, httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk}), Config{
		Clock:         clk,
		ReturnAddress: "http://wsd:9100/msg",
	})
	if err := disp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(disp.Stop)
	lnD, _ := wsd.Listen(9100)
	srvD := httpx.NewServer(disp, httpx.ServerConfig{Clock: clk})
	srvD.Start(lnD)
	t.Cleanup(func() { srvD.Close() })

	// Peer stack: everything outbound — mailbox management over RPC,
	// sends through the dispatcher, replies via mailbox polling.
	httpPeer := httpx.NewClient(peer, httpx.ClientConfig{Clock: clk})
	t.Cleanup(httpPeer.Close)
	rpc := client.NewRPC(httpPeer)
	mboxCli := client.NewMailboxClient(rpc, "http://wsd:9200/mbox", clk)
	box, err := mboxCli.Create()
	if err != nil {
		t.Fatal(err)
	}

	conv := &client.Conversation{
		Messenger:     client.NewMessenger(httpPeer),
		Mailbox:       mboxCli,
		Box:           box,
		DispatcherURL: "http://wsd:9100/msg",
		PollEvery:     100 * time.Millisecond,
	}

	// A multi-message conversation: each call round-trips peer →
	// dispatcher → echo → dispatcher → mailbox → peer.
	for i := 1; i <= 4; i++ {
		text := fmt.Sprintf("conversation message %d", i)
		reply, err := conv.Call(LogicalScheme+"echo", echoservice.EchoNS+":echo",
			xmlsoap.NewText(echoservice.EchoNS, "echo", text), time.Minute)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := reply.BodyElement().Text; got != text {
			t.Fatalf("call %d echoed %q, want %q", i, got, text)
		}
	}

	// Ordering: queue a burst of one-way messages addressed straight to
	// the mailbox's physical address. They ride one destination FIFO
	// and one kept-alive connection, so the mailbox must store — and a
	// batched take must return — them in send order.
	const burst = 6
	for i := 0; i < burst; i++ {
		_, err := conv.Messenger.Send("http://wsd:9100/msg", &wsa.Headers{
			To:     box.Address,
			Action: "urn:test:ordered",
		}, xmlsoap.NewText("urn:test", "seq", strconv.Itoa(i)))
		if err != nil {
			t.Fatalf("burst send %d: %v", i, err)
		}
	}
	waitFor(t, func() bool {
		n, err := mboxCli.Peek(box)
		return err == nil && n >= burst
	})
	stored, err := mboxCli.Take(box, burst+4)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != burst {
		t.Fatalf("took %d messages, want %d", len(stored), burst)
	}
	for i, env := range stored {
		if got := env.BodyElement().Text; got != strconv.Itoa(i) {
			t.Fatalf("message %d out of order: body %q", i, got)
		}
	}

	// Tear down the conversation state and verify no pooled bytes
	// leaked past any exchange: outstanding pooled buffers must return
	// to the pre-traffic baseline (stored mailbox payloads were all
	// taken; Destroy releases anything left).
	if err := mboxCli.Destroy(box); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return xmlsoap.PoolLive() <= live0 })
	if n := disp.PendingLen(); n != 0 {
		t.Fatalf("dispatcher retained %d pending entries", n)
	}
}
