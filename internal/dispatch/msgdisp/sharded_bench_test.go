package msgdisp

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/wsa"
)

// BenchmarkDispatchSharded measures the dispatcher's keyed-state striping
// under real parallelism: concurrent clients drive full exchanges (each
// one a pending Put, a destination lookup, and an atomic GetAndDelete
// reply claim) over in-memory pipes on the wall clock, with the shard
// count as the variable. shards=1 collapses every map transaction onto
// one lock — the ablation baseline; shards=64 is the default striping.
// Unlike the virtual-clock netsim benchmarks, wall-clock ns/op here
// directly reflects lock contention.
func BenchmarkDispatchSharded(b *testing.B) {
	const numDests = 8
	for _, shards := range []int{1, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			nets := memNet{}
			nets["wsd:9100"] = newMemListener()
			reg := registry.New(registry.PolicyFirst, nil)
			var srvs []*httpx.Server
			for i := 0; i < numDests; i++ {
				addr := fmt.Sprintf("echo%d:80", i)
				nets[addr] = newMemListener()
				srv := httpx.NewServer(echoservice.NewRPC(nil, 0), httpx.ServerConfig{})
				srv.Start(nets[addr])
				srvs = append(srvs, srv)
				reg.Register(fmt.Sprintf("echo-rpc%d", i), "http://"+addr+"/")
			}
			defer func() {
				for _, s := range srvs {
					s.Close()
				}
			}()
			disp := New(reg, httpx.NewClient(nets, httpx.ClientConfig{}), Config{
				ReturnAddress: "http://wsd:9100/msg",
				AnonymousWait: 20 * time.Second,
				CxWorkers:     32,
				WsWorkers:     32,
				StateShards:   shards,
			})
			if err := disp.Start(); err != nil {
				b.Fatal(err)
			}
			defer disp.Stop()
			srvDisp := httpx.NewServer(disp, httpx.ServerConfig{})
			srvDisp.Start(nets["wsd:9100"])
			defer srvDisp.Close()

			var workerID atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each worker gets its own connection, destination, and
				// MessageID: workers run their exchanges sequentially, so
				// a per-worker constant ID never has two pending entries
				// alive at once.
				id := workerID.Add(1)
				cli := httpx.NewClient(nets, httpx.ClientConfig{})
				defer cli.Close()
				env := soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
					soap.Param{Name: "message", Value: "sharded"})
				(&wsa.Headers{
					To:        fmt.Sprintf("%secho-rpc%d", LogicalScheme, id%numDests),
					Action:    echoservice.EchoNS + ":" + echoservice.EchoOp,
					MessageID: fmt.Sprintf("urn:bench:sharded:%d", id),
					ReplyTo:   &wsa.EPR{Address: wsa.Anonymous},
				}).Apply(env)
				raw, err := env.Marshal()
				if err != nil {
					b.Error(err)
					return
				}
				req := httpx.NewRequest("POST", "/msg", raw)
				req.Header.Set("Content-Type", soap.V11.ContentType())
				for pb.Next() {
					resp, err := cli.Do("wsd:9100", req)
					if err != nil {
						b.Error(err)
						return
					}
					if resp.Status != httpx.StatusOK {
						b.Errorf("HTTP %d", resp.Status)
						resp.Release()
						return
					}
					resp.Release()
				}
			})
		})
	}
}
