package msgdisp

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/xmlsoap"
)

// TestRecycledWaiterRefusesStaleReply pins the generation guard on pooled
// waiter slots: a reply addressed to a previous registration of a recycled
// slot (the router claimed the old pending entry, then lost the race with
// the waiter's timeout and the slot's reuse) must be refused by the slot's
// current owner — buffer returned to the pool, failure counted — and must
// never be delivered as the current exchange's answer. Runs under -race
// and -tags poolcheck in CI; the poolcheck lifecycle checker additionally
// catches the refused buffer being dropped instead of returned.
func TestRecycledWaiterRefusesStaleReply(t *testing.T) {
	d := New(registry.New(registry.PolicyFirst, nil), nil, Config{
		ReturnAddress: "http://wsd/msg",
		AnonymousWait: 5 * time.Second,
	})
	live0 := xmlsoap.PoolLive()

	// A slot's first life: registered by some exchange at this gen...
	waiter := &waiterSlot{ch: make(chan anonReply, 1)}
	staleGen := waiter.gen
	// ...whose wait timed out: the slot is recycled (generation bump) and
	// handed to the next exchange, which registers at the new gen.
	d.recycleWaiter(waiter)
	curGen := waiter.gen
	if curGen == staleGen {
		t.Fatalf("recycleWaiter did not advance the generation: %d", curGen)
	}

	// The old entry's claimant finally sends, stamped with the generation
	// it observed at registration — exactly routeReply's hand-off, one
	// slot lifetime too late.
	staleBuf := xmlsoap.GetBuffer()
	staleBuf.B = append(staleBuf.B, "stale reply from a previous exchange"...)
	waiter.ch <- anonReply{buf: staleBuf, version: soap.V11, gen: staleGen}

	done := make(chan struct{})
	go func() {
		defer close(done)
		d.awaitAnonymous(nil, "urn:test:recycled-waiter", waiter)
	}()

	// The genuine reply for the current registration. The blocking send
	// parks until the waiter has drained (refused) the stale delivery
	// occupying the 1-slot channel, which forces the interleaving the
	// guard exists for.
	genuine := xmlsoap.GetBuffer()
	genuine.B = append(genuine.B, "genuine reply"...)
	waiter.ch <- anonReply{buf: genuine, version: soap.V11, gen: curGen}
	<-done

	// One failure: the refused stale delivery. A second would mean the
	// genuine reply was also refused and the wait ran into its timeout.
	if got := d.DeliveryFailures.Value(); got != 1 {
		t.Fatalf("DeliveryFailures = %d, want 1 (stale refused, genuine delivered)", got)
	}
	if waiter.gen != curGen+1 {
		t.Fatalf("slot not recycled after delivery: gen = %d, want %d", waiter.gen, curGen+1)
	}
	// Both buffers — refused and delivered (no exchange to hand it to) —
	// must be back in the pool. PoolLive is a package-global gauge, so
	// only upward drift is a leak (stragglers from earlier tests may
	// still be releasing).
	waitFor(t, func() bool { return xmlsoap.PoolLive() <= live0 })
}

// TestAwaitAnonymousStaleTimerFire pins the deadline filter on pooled wait
// timers: a timer drawn from the pool can carry an undelivered fire from
// its previous life (a Virtual-clock fire lands in C asynchronously, so it
// can slip in after putTimer's stop-and-drain). awaitAnonymous must treat
// such a fire as noise — re-arming the remainder of its window — rather
// than timing the wait out immediately.
func TestAwaitAnonymousStaleTimerFire(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	const wait = 5 * time.Second
	d := New(registry.New(registry.PolicyFirst, clk), nil, Config{
		Clock:         clk,
		ReturnAddress: "http://wsd/msg",
		AnonymousWait: wait,
	})

	// Seed the timer pool with a fired, undrained timer — the state
	// putTimer's drain can miss. (If sync.Pool drops the seed the test
	// degenerates to a plain timeout check; the interesting path is still
	// exercised on every normal run.)
	t0 := clk.NewTimer(time.Millisecond)
	clk.Sleep(2 * time.Millisecond)
	waitFor(t, func() bool { return len(t0.C) == 1 })
	d.timers.Put(t0)

	waiter := &waiterSlot{ch: make(chan anonReply, 1)}
	before := clk.Now()
	d.awaitAnonymous(nil, "urn:test:stale-timer", waiter)
	elapsed := clk.Now().Sub(before)

	// Without the filter the inherited fire ends the wait at ~0 elapsed;
	// with it, the wait runs its full window and times out once.
	if elapsed < wait {
		t.Fatalf("wait ended after %v, want the full %v window", elapsed, wait)
	}
	if got := d.DeliveryFailures.Value(); got != 1 {
		t.Fatalf("DeliveryFailures = %d, want 1 (the genuine timeout)", got)
	}
}
