package msgdisp

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/reliable"
	"repro/internal/soap"
	"repro/internal/store"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// TestCourierRedeliversAfterServiceOutage wires the reliable Courier into
// the MSG-Dispatcher (the paper's WS-ReliableMessaging future work): a
// message forwarded while the service is down is held, retried, and
// delivered once the service comes back.
func TestCourierRedeliversAfterServiceOutage(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 51)
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN())
	cli := nw.AddHost("cli", netsim.ProfileLAN())

	// The courier shares the dispatcher's host for outbound deliveries.
	st := store.New(clk)
	courierClient := httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk})
	courier := reliable.New(st, courierClient, reliable.Config{
		Clock:          clk,
		InitialBackoff: 2 * time.Second,
		MaxBackoff:     5 * time.Second,
		AttemptTimeout: 2 * time.Second,
		DefaultTTL:     5 * time.Minute,
	})
	courier.Start()
	defer courier.Stop()

	reg := registry.New(registry.PolicyFirst, clk)
	reg.Register("echo", "http://ws:81/msg")
	dispClient := httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk})
	disp := New(reg, dispClient, Config{
		Clock:           clk,
		ReturnAddress:   "http://wsd:9100/msg",
		DeliveryTimeout: 2 * time.Second,
		Courier:         courier,
	})
	if err := disp.Start(); err != nil {
		t.Fatal(err)
	}
	defer disp.Stop()
	lnD, _ := wsd.Listen(9100)
	srvD := httpx.NewServer(disp, httpx.ServerConfig{Clock: clk})
	srvD.Start(lnD)
	defer srvD.Close()

	// Send while the service is DOWN (no listener on ws:81).
	client := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText(echoservice.EchoNS, "echo", "survivor"))
	(&wsa.Headers{
		To:        LogicalScheme + "echo",
		Action:    echoservice.EchoNS + ":echo",
		MessageID: wsa.NewMessageID(),
	}).Apply(env)
	raw, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	req := httpx.NewRequest("POST", "/msg", raw)
	req.Header.Set("Content-Type", soap.V11.ContentType())
	resp, err := client.Do("wsd:9100", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusAccepted {
		t.Fatalf("send status = %d", resp.Status)
	}

	// The immediate delivery fails and lands in the courier's store.
	waitFor(t, func() bool { return disp.HandedToCourier.Value() == 1 })
	if courier.Pending() != 1 {
		t.Fatalf("courier pending = %d", courier.Pending())
	}

	// Bring the service up; the retry must land.
	wsClient := httpx.NewClient(ws, httpx.ClientConfig{Clock: clk})
	echo := echoservice.NewAsync(clk, wsClient, 0)
	ln, _ := ws.Listen(81)
	srvWS := httpx.NewServer(echo, httpx.ServerConfig{Clock: clk})
	srvWS.Start(ln)
	defer srvWS.Close()

	waitFor(t, func() bool { return courier.Delivered.Value() == 1 })
	if echo.Accepted.Value() != 1 {
		t.Fatalf("service accepted = %d", echo.Accepted.Value())
	}
	if courier.Pending() != 0 {
		t.Fatalf("courier still holds %d messages", courier.Pending())
	}
}
