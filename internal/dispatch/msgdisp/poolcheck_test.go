package msgdisp

import (
	"os"
	"strings"
	"testing"

	"repro/internal/xmlsoap"
)

// TestMain turns on the pooled-buffer lifecycle checker for this suite:
// every PutBuffer poisons the released bytes, and a double release or a
// write through a stale alias panics instead of corrupting another
// exchange's message. See xmlsoap.EnablePoolCheck.
//
// Benchmark runs are the exception: poison/verify is O(buffer capacity)
// per Get/Put by design, which taxes batched large-buffer paths orders
// of magnitude harder than per-message ones (a 16 KiB burst buffer
// circulating through the shared pool costs every subsequent small
// message a 16 KiB verify), so checked numbers invert every batching
// comparison. Benchmarks therefore measure the production configuration;
// the `poolcheck` build tag still forces checking everywhere when a
// checked benchmark is explicitly wanted.
func TestMain(m *testing.M) {
	bench := false
	for _, arg := range os.Args {
		if strings.HasPrefix(arg, "-test.bench=") && !strings.HasSuffix(arg, "=") {
			bench = true
		}
	}
	if !bench {
		xmlsoap.EnablePoolCheck()
	}
	os.Exit(m.Run())
}
