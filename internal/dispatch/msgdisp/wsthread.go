package msgdisp

import (
	"strings"
	"sync"

	"repro/internal/httpx"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// outbound is one message scheduled for delivery. payload is a pooled
// buffer owned by the message from enqueue until the delivery attempt
// completes; deliver releases it (the courier copies on handoff). A
// message dropped by Stop leaves its buffer to the garbage collector,
// which is safe — pool entries are ordinary heap objects.
type outbound struct {
	payload   *xmlsoap.Buffer
	version   soap.Version
	toService bool // true when heading to a WS, false for reply legs
	// origMessageID, for service-bound messages, is the request's
	// MessageID: when an RPC-style service answers synchronously on
	// the delivery connection (Table 1 quadrant 3 — "translation of
	// semantics from messaging to RPC"), the response body is wrapped
	// as a reply relating to this ID and routed back. It is a detached
	// copy — the queued message outlives the exchange whose pooled
	// body the parsed header aliased.
	origMessageID string
}

// destQueue is the per-destination FIFO of Figure 3. A WsThread binds to
// the queue while it has work (and for HoldOpen afterwards), sending
// messages over one kept-alive connection.
type destQueue struct {
	url string

	mu     sync.Mutex
	ch     chan outbound
	queued int
	active bool
	closed bool
}

// enqueue adds a message to the destination's queue, spinning up a
// WsThread if none is bound. It reports false when the queue is full or
// closed.
func (d *Dispatcher) enqueue(msg outbound, destURL string) bool {
	dq, ok := d.dests.Get(destURL)
	if !ok {
		// The map key and the queue's binding outlive this exchange,
		// while destURL may alias the pooled request body (it is the
		// parsed To header whenever the address is physical). Detach
		// once at queue creation; the steady-state lookup above stays
		// allocation-free.
		url := strings.Clone(destURL)
		dq = d.dests.GetOrCompute(url, func() *destQueue {
			return &destQueue{url: url, ch: make(chan outbound, d.cfg.QueueCap)}
		})
	}
	dq.mu.Lock()
	if dq.closed || dq.queued >= d.cfg.QueueCap {
		dq.mu.Unlock()
		return false
	}
	dq.queued++
	spawn := !dq.active
	if spawn {
		dq.active = true
	}
	dq.mu.Unlock()

	// Space is guaranteed: queued is incremented under the same lock
	// that bounds it by QueueCap == cap(ch).
	dq.ch <- msg
	if spawn {
		go d.wsThread(dq)
	}
	return true
}

func (dq *destQueue) close() {
	dq.mu.Lock()
	dq.closed = true
	dq.mu.Unlock()
}

// wsThread drains one destination's queue. The destination binding (and
// the kept-alive connection the httpx client pools) lasts until the queue
// stays empty for HoldOpen, but each individual delivery must hold one of
// the WsWorkers pool slots while it is on the wire.
//
// The per-delivery slot is the paper's bounded second thread pool: a
// delivery stalled against a firewalled destination occupies its slot for
// the full connect timeout, starving every other destination — including
// forwards toward services. That contention is exactly why the paper
// measures plain MSG-Dispatcher as the slowest Figure 6 configuration
// while MSG-Dispatcher + WS-MsgBox (whose reply deliveries are fast) is
// the fastest.
func (d *Dispatcher) wsThread(dq *destQueue) {
	// The destination binding IS the paper's held connection: one
	// httpx.Stream pins a connection to this destination for the
	// binding's life, so consecutive queued messages pipeline over it
	// without a round trip through the client's idle pool, and one
	// request struct is reused across every delivery. Closing the
	// stream on unbind parks a healthy connection back in the shared
	// pool for the next binding.
	var (
		stream *httpx.Stream
		path   string
		req    httpx.Request
	)
	if addr, p, err := httpx.SplitURL(dq.url); err == nil {
		stream = d.client.Stream(addr)
		path = p
		defer stream.Close()
	}

	// One reusable hold-open timer for the binding's whole life: After
	// would allocate a timer and channel on every loop iteration, i.e.
	// per delivered message. Stale fires are filtered by deadline, not
	// just by Stop-and-drain: a Virtual-clock fire runs asynchronously
	// after its waiter is popped, so it can land in C after the drain
	// below came up empty — the deadline check keeps such a late fire
	// from cutting the freshly re-armed window short.
	clk := d.cfg.Clock
	idle := clk.NewTimer(d.cfg.HoldOpen)
	deadline := clk.Now().Add(d.cfg.HoldOpen)
	defer idle.Stop()
	for {
		select {
		case msg := <-dq.ch:
			dq.mu.Lock()
			dq.queued--
			dq.mu.Unlock()
			d.wsSlots <- struct{}{}
			d.deliver(dq.url, stream, path, &req, msg)
			<-d.wsSlots
			// Re-arm the full hold-open window, draining a stale fire
			// first so it cannot satisfy the next wait immediately.
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(d.cfg.HoldOpen)
			deadline = clk.Now().Add(d.cfg.HoldOpen)
		case <-idle.C:
			if now := clk.Now(); now.Before(deadline) {
				// Stale fire from an arm preceding the last Reset;
				// wait out the remainder of the current window.
				idle.Reset(deadline.Sub(now))
				continue
			}
			// Idle: release the destination binding if the queue
			// is (still) empty; otherwise keep draining.
			dq.mu.Lock()
			if dq.queued == 0 || dq.closed {
				dq.active = false
				dq.mu.Unlock()
				return
			}
			dq.mu.Unlock()
			idle.Reset(d.cfg.HoldOpen)
			deadline = clk.Now().Add(d.cfg.HoldOpen)
		}
	}
}

// deliver posts one message to its destination over the binding's
// stream and records the outcome. A synchronous SOAP response from an
// RPC-style destination is bridged back into the message flow. req is
// the binding's reusable request struct (deliver fully re-initializes
// it); a nil stream means the destination URL never parsed.
func (d *Dispatcher) deliver(destURL string, stream *httpx.Stream, path string, req *httpx.Request, msg outbound) {
	defer xmlsoap.PutBuffer(msg.payload)
	if stream == nil {
		d.DeliveryFailures.Inc()
		return
	}
	start := d.cfg.Clock.Now()
	req.Reset()
	req.Method, req.Path, req.Proto = "POST", path, "HTTP/1.1"
	req.Body = msg.payload.B
	req.Header.Set("Content-Type", msg.version.ContentType())
	resp, err := stream.DoTimeout(req, d.cfg.DeliveryTimeout)
	// The response body (when any) is a pooled buffer owned by this
	// delivery; it is released once the bridge — which parses it in
	// place and detaches or re-renders everything it keeps — is done.
	if resp != nil {
		defer resp.Release()
	}
	if err != nil || resp.Status >= 300 {
		d.DeliveryFailures.Inc()
		if d.cfg.Courier != nil {
			// SendPayload copies the payload (and detaches the ID and
			// destination) into the store, so the pooled buffer can
			// still be released on return; msg.origMessageID was
			// already detached at enqueue.
			if _, cerr := d.cfg.Courier.SendPayload(destURL, msg.origMessageID, msg.payload.B); cerr == nil {
				d.HandedToCourier.Inc()
			}
		}
		return
	}
	d.DeliveryLatency.Observe(d.cfg.Clock.Since(start))
	if msg.toService {
		d.ForwardedToWS.Inc()
		if resp.Status == httpx.StatusOK && len(resp.Body) > 0 {
			d.bridgeRPCResponse(msg, resp.Body)
		}
	} else {
		d.RepliesDelivered.Inc()
	}
}

// bridgeRPCResponse handles a destination that answered on the delivery
// connection instead of posting a separate reply message: an RPC-based
// service behind the MSG-Dispatcher (Table 1 quadrant 3). The response
// envelope is stamped with RelatesTo = the original MessageID and pushed
// back through normal routing so it reaches the requester's ReplyTo or a
// blocked anonymous waiter.
//
// body is the delivery response's pooled buffer, valid only until
// deliver releases it on return; everything routed onward is rendered
// into its own buffer or detached, exactly as for an inbound request.
func (d *Dispatcher) bridgeRPCResponse(msg outbound, body []byte) {
	if msg.origMessageID == "" {
		return
	}
	if _, waiting := d.pending.Get(msg.origMessageID); !waiting {
		return // nobody expects a reply; discard like any one-way ack
	}
	env, err := soap.Parse(body)
	if err != nil {
		return // not a SOAP payload; plain 200 ack
	}
	h, err := wsa.FromEnvelope(env)
	if err == nil && h.RelatesTo != "" {
		// Already a fully addressed reply: route it as if it had been
		// posted to us (with no exchange — the delivery connection
		// already has its answer).
		d.route(nil, body)
		return
	}
	// Plain RPC response without addressing: synthesize reply headers
	// around its body and hand it straight to reply routing — the
	// steady-state bridge path, so no marshal/re-parse round trip.
	entry, ok := d.pending.Get(msg.origMessageID)
	if !ok {
		d.UnmatchedReplies.Inc()
		return
	}
	d.pending.Delete(msg.origMessageID)
	if entry.expires.Before(d.cfg.Clock.Now()) {
		d.Rejected.Inc()
		return
	}
	reply := soap.New(env.Version).SetBody(env.Body...)
	h2 := &wsa.Headers{
		To:        d.cfg.ReturnAddress,
		MessageID: wsa.NewMessageID(),
		RelatesTo: msg.origMessageID,
	}
	// No Apply: both routeReply legs render through wsa.AppendRewritten,
	// which splices h2 into the output in place of whatever WS-Addressing
	// headers the envelope carries, so the wire reply the blocked caller
	// correlates on carries h2's RelatesTo without building header
	// elements that would be rendered once and thrown away.
	d.routeReply(nil, reply, h2, entry)
}
