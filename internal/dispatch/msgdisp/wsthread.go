package msgdisp

import (
	"strings"
	"sync"

	"repro/internal/httpx"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// outbound is one message scheduled for delivery. payload is a pooled
// buffer owned by the message from enqueue until the delivery attempt
// completes; deliver releases it (the courier copies on handoff). A
// message dropped by Stop leaves its buffer to the garbage collector,
// which is safe — pool entries are ordinary heap objects.
type outbound struct {
	payload   *xmlsoap.Buffer
	version   soap.Version
	toService bool // true when heading to a WS, false for reply legs
	// origMessageID, for service-bound messages, is the request's
	// MessageID: when an RPC-style service answers synchronously on
	// the delivery connection (Table 1 quadrant 3 — "translation of
	// semantics from messaging to RPC"), the response body is wrapped
	// as a reply relating to this ID and routed back.
	origMessageID string
}

// destQueue is the per-destination FIFO of Figure 3. A WsThread binds to
// the queue while it has work (and for HoldOpen afterwards), sending
// messages over one kept-alive connection.
type destQueue struct {
	url string

	mu     sync.Mutex
	ch     chan outbound
	queued int
	active bool
	closed bool
}

// enqueue adds a message to the destination's queue, spinning up a
// WsThread if none is bound. It reports false when the queue is full or
// closed.
func (d *Dispatcher) enqueue(msg outbound, destURL string) bool {
	dq := d.dests.GetOrCompute(destURL, func() *destQueue {
		return &destQueue{url: destURL, ch: make(chan outbound, d.cfg.QueueCap)}
	})
	dq.mu.Lock()
	if dq.closed || dq.queued >= d.cfg.QueueCap {
		dq.mu.Unlock()
		return false
	}
	dq.queued++
	spawn := !dq.active
	if spawn {
		dq.active = true
	}
	dq.mu.Unlock()

	// Space is guaranteed: queued is incremented under the same lock
	// that bounds it by QueueCap == cap(ch).
	dq.ch <- msg
	if spawn {
		go d.wsThread(dq)
	}
	return true
}

func (dq *destQueue) close() {
	dq.mu.Lock()
	dq.closed = true
	dq.mu.Unlock()
}

// wsThread drains one destination's queue. The destination binding (and
// the kept-alive connection the httpx client pools) lasts until the queue
// stays empty for HoldOpen, but each individual delivery must hold one of
// the WsWorkers pool slots while it is on the wire.
//
// The per-delivery slot is the paper's bounded second thread pool: a
// delivery stalled against a firewalled destination occupies its slot for
// the full connect timeout, starving every other destination — including
// forwards toward services. That contention is exactly why the paper
// measures plain MSG-Dispatcher as the slowest Figure 6 configuration
// while MSG-Dispatcher + WS-MsgBox (whose reply deliveries are fast) is
// the fastest.
func (d *Dispatcher) wsThread(dq *destQueue) {
	for {
		select {
		case msg := <-dq.ch:
			dq.mu.Lock()
			dq.queued--
			dq.mu.Unlock()
			d.wsSlots <- struct{}{}
			d.deliver(dq.url, msg)
			<-d.wsSlots
		case <-d.cfg.Clock.After(d.cfg.HoldOpen):
			// Idle: release the destination binding if the queue
			// is (still) empty; otherwise keep draining.
			dq.mu.Lock()
			if dq.queued == 0 || dq.closed {
				dq.active = false
				dq.mu.Unlock()
				return
			}
			dq.mu.Unlock()
		}
	}
}

// deliver posts one message to its destination and records the outcome.
// A synchronous SOAP response from an RPC-style destination is bridged
// back into the message flow.
func (d *Dispatcher) deliver(destURL string, msg outbound) {
	defer xmlsoap.PutBuffer(msg.payload)
	start := d.cfg.Clock.Now()
	addr, path, err := httpx.SplitURL(destURL)
	if err != nil {
		d.DeliveryFailures.Inc()
		return
	}
	req := httpx.NewRequest("POST", path, msg.payload.B)
	req.Header.Set("Content-Type", msg.version.ContentType())
	resp, err := d.client.DoTimeout(addr, req, d.cfg.DeliveryTimeout)
	if err != nil || resp.Status >= 300 {
		d.DeliveryFailures.Inc()
		if d.cfg.Courier != nil {
			// SendPayload copies the payload into the store, so the
			// pooled buffer can still be released on return. The message
			// ID is cloned for the same reason: it aliases the inbound
			// request body (the xmlsoap aliasing contract) while the
			// store holds it until redelivery or TTL expiry.
			if _, cerr := d.cfg.Courier.SendPayload(destURL, strings.Clone(msg.origMessageID), msg.payload.B); cerr == nil {
				d.HandedToCourier.Inc()
			}
		}
		return
	}
	d.DeliveryLatency.Observe(d.cfg.Clock.Since(start))
	if msg.toService {
		d.ForwardedToWS.Inc()
		if resp.Status == httpx.StatusOK && len(resp.Body) > 0 {
			d.bridgeRPCResponse(msg, resp.Body)
		}
	} else {
		d.RepliesDelivered.Inc()
	}
}

// bridgeRPCResponse handles a destination that answered on the delivery
// connection instead of posting a separate reply message: an RPC-based
// service behind the MSG-Dispatcher (Table 1 quadrant 3). The response
// envelope is stamped with RelatesTo = the original MessageID and pushed
// back through normal routing so it reaches the requester's ReplyTo or a
// blocked anonymous waiter.
func (d *Dispatcher) bridgeRPCResponse(msg outbound, body []byte) {
	if msg.origMessageID == "" {
		return
	}
	if _, waiting := d.pending.Get(msg.origMessageID); !waiting {
		return // nobody expects a reply; discard like any one-way ack
	}
	env, err := soap.Parse(body)
	if err != nil {
		return // not a SOAP payload; plain 200 ack
	}
	h, err := wsa.FromEnvelope(env)
	if err != nil || h.RelatesTo == "" {
		// Plain RPC response without addressing: synthesize reply
		// headers around its body.
		reply := soap.New(env.Version).SetBody(env.Body...)
		(&wsa.Headers{
			To:        d.cfg.ReturnAddress,
			MessageID: wsa.NewMessageID(),
			RelatesTo: msg.origMessageID,
		}).Apply(reply)
		raw, merr := wsa.MarshalEnvelope(reply)
		if merr != nil {
			return
		}
		d.route(raw)
		return
	}
	// Already a fully addressed reply: route it as if it had been
	// posted to us.
	d.route(body)
}
