package msgdisp

import (
	"strings"
	"sync"
	"time"

	"repro/internal/httpx"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// outbound is one message scheduled for delivery. payload is a pooled
// buffer owned by the message from enqueue until the delivery attempt
// completes; the settle path releases it (the courier copies on
// handoff). A message dropped by Stop leaves its buffer to the garbage
// collector, which is safe — pool entries are ordinary heap objects.
type outbound struct {
	payload   *xmlsoap.Buffer
	version   soap.Version
	toService bool // true when heading to a WS, false for reply legs
	// origMessageID, for service-bound messages, is the request's
	// MessageID: when an RPC-style service answers synchronously on
	// the delivery connection (Table 1 quadrant 3 — "translation of
	// semantics from messaging to RPC"), the response body is wrapped
	// as a reply relating to this ID and routed back. It is a detached
	// copy — the queued message outlives the exchange whose pooled
	// body the parsed header aliased.
	origMessageID string
}

// destQueue is the per-destination FIFO of Figure 3. A WsThread binds to
// the queue while it has work (and for HoldOpen afterwards), sending
// messages over one kept-alive connection.
type destQueue struct {
	url string

	mu     sync.Mutex
	ch     chan outbound
	queued int
	active bool
	closed bool
}

func (dq *destQueue) close() {
	dq.mu.Lock()
	dq.closed = true
	dq.mu.Unlock()
}

// destFor returns (creating on first use) the destination's queue.
func (d *Dispatcher) destFor(destURL string) *destQueue {
	dq, ok := d.dests.Get(destURL)
	if !ok {
		// The map key and the queue's binding outlive this exchange,
		// while destURL may alias the pooled request body (it is the
		// parsed To header whenever the address is physical). Detach
		// once at queue creation; the steady-state lookup above stays
		// allocation-free.
		url := strings.Clone(destURL)
		dq = d.dests.GetOrCompute(url, func() *destQueue {
			return &destQueue{url: url, ch: make(chan outbound, d.cfg.QueueCap)}
		})
	}
	return dq
}

// enqueue adds a message to the destination's queue, spinning up a
// WsThread if none is bound. It reports false when the queue is full or
// closed.
func (d *Dispatcher) enqueue(msg outbound, destURL string) bool {
	dq := d.destFor(destURL)
	dq.mu.Lock()
	if dq.closed || dq.queued >= d.cfg.QueueCap {
		dq.mu.Unlock()
		return false
	}
	dq.queued++
	spawn := !dq.active
	if spawn {
		dq.active = true
	}
	dq.mu.Unlock()

	// Space is guaranteed: queued is incremented under the same lock
	// that bounds it by QueueCap == cap(ch).
	dq.ch <- msg
	if spawn {
		go d.wsThread(dq)
	}
	return true
}

// enqueueBatch admits a burst of messages for one destination in a
// single queue transaction: one lock acquisition bumps queued by the
// whole admitted count, and at most one WsThread spawns for the burst
// (so its HoldOpen timer arms once, not once per message). The longest
// FIFO prefix with room is admitted; the return value reports how many
// messages were taken, and the caller keeps ownership of the tail.
// Accepted/drop accounting stays with the caller, as with enqueue.
func (d *Dispatcher) enqueueBatch(msgs []outbound, destURL string) int {
	if len(msgs) == 0 {
		return 0
	}
	dq := d.destFor(destURL)
	dq.mu.Lock()
	if dq.closed {
		dq.mu.Unlock()
		return 0
	}
	n := len(msgs)
	if room := d.cfg.QueueCap - dq.queued; n > room {
		n = room
	}
	if n <= 0 {
		dq.mu.Unlock()
		return 0
	}
	dq.queued += n
	spawn := !dq.active
	if spawn {
		dq.active = true
	}
	dq.mu.Unlock()
	for i := 0; i < n; i++ {
		dq.ch <- msgs[i]
	}
	if spawn {
		go d.wsThread(dq)
	}
	return n
}

// replySink batches the admission of replies bridged while a delivery
// burst's responses are processed: instead of each bridged reply paying
// its own queue transaction inside the response loop, they collect here
// and admit per-destination through enqueueBatch when the burst settles.
// The sink is WsThread-local scratch, reused across bursts.
type replySink struct {
	dests []string
	msgs  []outbound
}

func (s *replySink) add(dest string, msg outbound) {
	s.dests = append(s.dests, dest)
	s.msgs = append(s.msgs, msg)
}

// flushSink admits everything the sink collected, grouping consecutive
// same-destination runs into one batch admission each, with the
// Accepted/drop accounting the inline enqueue path would have done.
func (d *Dispatcher) flushSink(sink *replySink) {
	for i := 0; i < len(sink.msgs); {
		j := i + 1
		for j < len(sink.msgs) && sink.dests[j] == sink.dests[i] {
			j++
		}
		group := sink.msgs[i:j]
		admitted := d.enqueueBatch(group, sink.dests[i])
		d.Accepted.Add(int64(admitted))
		for _, m := range group[admitted:] {
			xmlsoap.PutBuffer(m.payload)
			d.QueueDrops.Inc()
			d.Rejected.Inc()
		}
		i = j
	}
	sink.dests = sink.dests[:0]
	sink.msgs = sink.msgs[:0]
}

// wsThread drains one destination's queue. The destination binding (and
// the kept-alive connection the httpx client pools) lasts until the queue
// stays empty for HoldOpen, but each individual delivery must hold one of
// the WsWorkers pool slots while it is on the wire.
//
// The per-delivery slot is the paper's bounded second thread pool: a
// delivery stalled against a firewalled destination occupies its slot for
// the full connect timeout, starving every other destination — including
// forwards toward services. That contention is exactly why the paper
// measures plain MSG-Dispatcher as the slowest Figure 6 configuration
// while MSG-Dispatcher + WS-MsgBox (whose reply deliveries are fast) is
// the fastest.
//
// When the thread wakes to more than one queued message it drains a
// bounded burst (BatchMax) in one pass: one queued-count update, one
// WsWorkers slot, one pipelined vectored delivery over the held
// connection, and one HoldOpen re-arm for the whole burst — the
// amortization ROADMAP item 1 asked for.
func (d *Dispatcher) wsThread(dq *destQueue) {
	// The destination binding IS the paper's held connection: one
	// httpx.Stream pins a connection to this destination for the
	// binding's life, so consecutive queued messages pipeline over it
	// without a round trip through the client's idle pool, and one
	// request struct is reused across every delivery. Closing the
	// stream on unbind parks a healthy connection back in the shared
	// pool for the next binding.
	var (
		stream *httpx.Stream
		path   string
		req    httpx.Request
		// Burst scratch, allocated once per binding on first use: the
		// drained messages, the reusable request structs they are
		// rendered through, and the bridged-reply sink.
		batch []outbound
		reqs  []httpx.Request
		refs  []*httpx.Request
		sink  replySink
	)
	if addr, p, err := httpx.SplitURL(dq.url); err == nil {
		stream = d.client.Stream(addr)
		path = p
		defer stream.Close()
	}

	// One reusable hold-open timer for the binding's whole life: After
	// would allocate a timer and channel on every loop iteration, i.e.
	// per delivered message. Stale fires are filtered by deadline, not
	// just by Stop-and-drain: a Virtual-clock fire runs asynchronously
	// after its waiter is popped, so it can land in C after the drain
	// below came up empty — the deadline check keeps such a late fire
	// from cutting the freshly re-armed window short.
	clk := d.cfg.Clock
	idle := clk.NewTimer(d.cfg.HoldOpen)
	deadline := clk.Now().Add(d.cfg.HoldOpen)
	defer idle.Stop()
	for {
		select {
		case msg := <-dq.ch:
			// Drain whatever else is already queued, up to BatchMax,
			// without blocking: the burst settles under one queue
			// transaction instead of one per message.
			if batch == nil {
				batch = make([]outbound, 0, d.cfg.BatchMax)
			}
			batch = append(batch[:0], msg)
		drain:
			for len(batch) < d.cfg.BatchMax {
				select {
				case m := <-dq.ch:
					batch = append(batch, m)
				default:
					break drain
				}
			}
			dq.mu.Lock()
			dq.queued -= len(batch)
			dq.mu.Unlock()
			d.wsSlots <- struct{}{}
			if len(batch) == 1 {
				d.deliver(dq.url, stream, path, &req, batch[0])
			} else {
				if reqs == nil {
					reqs = make([]httpx.Request, d.cfg.BatchMax)
					refs = make([]*httpx.Request, d.cfg.BatchMax)
					for i := range reqs {
						refs[i] = &reqs[i]
					}
				}
				d.deliverBatch(dq, stream, path, refs[:len(batch)], batch, &sink)
			}
			<-d.wsSlots
			// Re-arm the full hold-open window — once per burst, not per
			// message — draining a stale fire first so it cannot satisfy
			// the next wait immediately.
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(d.cfg.HoldOpen)
			deadline = clk.Now().Add(d.cfg.HoldOpen)
			d.HoldOpenRearms.Inc()
		case <-idle.C:
			if now := clk.Now(); now.Before(deadline) {
				// Stale fire from an arm preceding the last Reset;
				// wait out the remainder of the current window.
				idle.Reset(deadline.Sub(now))
				continue
			}
			// Idle: release the destination binding if the queue
			// is (still) empty; otherwise keep draining.
			dq.mu.Lock()
			if dq.queued == 0 || dq.closed {
				dq.active = false
				dq.mu.Unlock()
				return
			}
			dq.mu.Unlock()
			idle.Reset(d.cfg.HoldOpen)
			deadline = clk.Now().Add(d.cfg.HoldOpen)
		}
	}
}

// deliver posts one message to its destination over the binding's
// stream and records the outcome. A synchronous SOAP response from an
// RPC-style destination is bridged back into the message flow. req is
// the binding's reusable request struct (deliver fully re-initializes
// it); a nil stream means the destination URL never parsed.
func (d *Dispatcher) deliver(destURL string, stream *httpx.Stream, path string, req *httpx.Request, msg outbound) {
	if stream == nil {
		d.DeliveryFailures.Inc()
		xmlsoap.PutBuffer(msg.payload)
		return
	}
	start := d.cfg.Clock.Now()
	req.Reset()
	req.Method, req.Path, req.Proto = "POST", path, "HTTP/1.1"
	req.Body = msg.payload.B
	req.Header.Set("Content-Type", msg.version.ContentType())
	resp, err := stream.DoTimeout(req, d.cfg.DeliveryTimeout)
	if err != nil {
		d.failDelivery(destURL, msg)
		return
	}
	// The response body (when any) is a pooled buffer owned by this
	// delivery; it is released once settleDelivery — whose bridge parses
	// it in place and detaches or re-renders everything it keeps — is
	// done.
	d.settleDelivery(destURL, msg, resp, start, nil)
	resp.Release()
}

// deliverBatch posts a burst of same-destination messages over the
// binding's stream as one pipelined, vectored write (Stream.DoBatch) and
// settles the responses in pipeline order. Error isolation: messages
// whose responses arrived are fully settled; on a mid-batch failure the
// unanswered tail is requeued in FIFO order for a fresh attempt rather
// than dropped, and a batch that failed whole (nothing answered) takes
// the same per-message failure path — courier fallback included — that
// deliver would. Bridged replies produced while settling collect in sink
// and admit in batched queue transactions once the burst is done.
func (d *Dispatcher) deliverBatch(dq *destQueue, stream *httpx.Stream, path string, reqs []*httpx.Request, msgs []outbound, sink *replySink) {
	if stream == nil {
		for i := range msgs {
			d.DeliveryFailures.Inc()
			xmlsoap.PutBuffer(msgs[i].payload)
		}
		return
	}
	start := d.cfg.Clock.Now()
	for i := range msgs {
		r := reqs[i]
		r.Reset()
		r.Method, r.Path, r.Proto = "POST", path, "HTTP/1.1"
		r.Body = msgs[i].payload.B
		r.Header.Set("Content-Type", msgs[i].version.ContentType())
	}
	done, err := stream.DoBatch(reqs, d.cfg.DeliveryTimeout, func(i int, resp *httpx.Response) {
		d.settleDelivery(dq.url, msgs[i], resp, start, sink)
	})
	d.flushSink(sink)
	if err == nil {
		return
	}
	if done == 0 {
		// Nothing was answered (and, after DoBatch's one retry, nothing
		// will be): the whole burst failed the way a single delivery
		// fails — count, hand to the courier, release.
		for i := range msgs {
			d.failDelivery(dq.url, msgs[i])
		}
		return
	}
	// Mid-batch failure: the tail went out with the batch write but its
	// responses never came. Requeue it — FIFO order preserved — for a
	// fresh delivery attempt; whatever no longer fits (the queue
	// refilled meanwhile) fails over to the courier.
	tail := msgs[done:]
	requeued := d.enqueueBatch(tail, dq.url)
	for i := requeued; i < len(tail); i++ {
		d.failDelivery(dq.url, tail[i])
	}
}

// settleDelivery records the outcome of one answered delivery and
// releases the message's payload. Shared by the single-message and burst
// paths; sink, when non-nil, defers bridged-reply admission to the
// burst's batched flush.
func (d *Dispatcher) settleDelivery(destURL string, msg outbound, resp *httpx.Response, start time.Time, sink *replySink) {
	defer xmlsoap.PutBuffer(msg.payload)
	if resp.Status >= 300 {
		d.DeliveryFailures.Inc()
		if d.cfg.Courier != nil {
			// SendPayload copies the payload (and detaches the ID and
			// destination) into the store, so the pooled buffer can
			// still be released on return; msg.origMessageID was
			// already detached at enqueue.
			if _, cerr := d.cfg.Courier.SendPayload(destURL, msg.origMessageID, msg.payload.B); cerr == nil {
				d.HandedToCourier.Inc()
			}
		}
		return
	}
	d.DeliveryLatency.Observe(d.cfg.Clock.Since(start))
	if msg.toService {
		d.ForwardedToWS.Inc()
		if resp.Status == httpx.StatusOK && len(resp.Body) > 0 {
			d.bridgeRPCResponse(msg, resp.Body, sink)
		}
	} else {
		d.RepliesDelivered.Inc()
	}
}

// failDelivery settles a message whose delivery attempt failed outright
// (transport error, batch never answered): failure accounting, courier
// fallback, payload release.
func (d *Dispatcher) failDelivery(destURL string, msg outbound) {
	defer xmlsoap.PutBuffer(msg.payload)
	d.DeliveryFailures.Inc()
	// The delivery thread knows only the physical URL, not which logical
	// name resolved to it, so the dead mark scans by URL; subsequent
	// logical resolutions then fail over to the remaining live backends.
	if d.cfg.MarkDeadOnError {
		d.registry.MarkDeadURL(destURL)
	}
	if d.cfg.Courier != nil {
		if _, cerr := d.cfg.Courier.SendPayload(destURL, msg.origMessageID, msg.payload.B); cerr == nil {
			d.HandedToCourier.Inc()
		}
	}
}

// bridgeRPCResponse handles a destination that answered on the delivery
// connection instead of posting a separate reply message: an RPC-based
// service behind the MSG-Dispatcher (Table 1 quadrant 3). The response
// envelope is stamped with RelatesTo = the original MessageID and pushed
// back through normal routing so it reaches the requester's ReplyTo or a
// blocked anonymous waiter.
//
// body is the delivery response's pooled buffer, valid only until the
// settle path releases it on return; everything routed onward is
// rendered into its own buffer or detached, exactly as for an inbound
// request. sink, when non-nil, batches the admission of routed replies
// (see replySink).
func (d *Dispatcher) bridgeRPCResponse(msg outbound, body []byte, sink *replySink) {
	if msg.origMessageID == "" {
		return
	}
	if _, waiting := d.pending.Get(msg.origMessageID); !waiting {
		return // nobody expects a reply; discard like any one-way ack
	}
	// Skim-first, like the inbound leg: an RPC service fronted by this
	// stack answers in canonical form, so the steady-state bridge never
	// parses either — the response body span is spliced under the
	// synthesized correlation headers with zero parse allocations.
	var sk wsa.Skim
	if wsa.SkimEnvelope(body, &sk) {
		d.bridgeSkim(msg, &sk, sink)
		return
	}
	env, err := soap.Parse(body)
	if err != nil {
		return // not a SOAP payload; plain 200 ack
	}
	// Already a fully addressed reply (To and a non-empty RelatesTo):
	// route it as if it had been posted to us (with no exchange — the
	// delivery connection already has its answer). The header probe is
	// direct rather than through wsa.FromEnvelope: the steady-state
	// bridge response is a plain RPC body with no addressing at all, and
	// FromEnvelope would allocate a Headers just to report that.
	if rel := env.HeaderBlock(wsa.NS, "RelatesTo"); rel != nil && rel.Text != "" {
		if to := env.HeaderBlock(wsa.NS, "To"); to != nil && to.Text != "" {
			d.route(nil, body, sink)
			return
		}
	}
	// Plain RPC response without addressing: synthesize reply headers
	// around its body and hand it straight to reply routing — the
	// steady-state bridge path. GetAndDelete claims the entry atomically,
	// so a concurrent router of the same correlation ID cannot also win.
	entry, ok := d.pending.GetAndDelete(msg.origMessageID)
	if !ok {
		d.UnmatchedReplies.Inc()
		return
	}
	if entry.expires.Before(d.cfg.Clock.Now()) {
		d.Rejected.Inc()
		return
	}
	// The synthesized reply envelope and headers are per-bridge scratch
	// (everything routeReply does with them — the AppendRewritten
	// render — completes before it returns, so nothing retains them);
	// only the fresh MessageID string is allocated per bridged reply.
	sc, _ := d.bridgeScratch.Get().(*bridgeState)
	if sc == nil {
		sc = &bridgeState{}
	}
	sc.env = soap.Envelope{Version: env.Version, Body: env.Body}
	sc.h = wsa.Headers{
		To:        d.cfg.ReturnAddress,
		MessageID: wsa.NewMessageID(),
		RelatesTo: msg.origMessageID,
	}
	// No Apply: both routeReply legs render through wsa.AppendRewritten,
	// which splices the headers into the output in place of whatever
	// WS-Addressing headers the envelope carries, so the wire reply the
	// blocked caller correlates on carries this RelatesTo without
	// building header elements that would be rendered once and thrown
	// away.
	d.routeReply(nil, &sc.env, &sc.h, entry, sink)
	sc.env = soap.Envelope{}
	sc.h = wsa.Headers{}
	d.bridgeScratch.Put(sc)
}

// bridgeSkim is bridgeRPCResponse's skim leg: the same
// already-addressed probe and synthesized-correlation fallback, driven
// by spans. A skimmed header block always carries a non-empty value, so
// span presence is exactly the parse path's "block present with
// non-empty text" probe.
func (d *Dispatcher) bridgeSkim(msg outbound, sk *wsa.Skim, sink *replySink) {
	// Already a fully addressed reply (To and RelatesTo): route it as if
	// it had been posted to us, with no exchange — the delivery
	// connection already has its answer.
	if len(sk.RelatesTo) > 0 && len(sk.To) > 0 {
		d.routeSkim(nil, sk, sink)
		return
	}
	// Plain RPC response without (full) addressing: synthesize reply
	// correlation around its body span and hand it to reply routing.
	// GetAndDelete claims the entry atomically, so a concurrent router
	// of the same correlation ID cannot also win.
	entry, ok := d.pending.GetAndDelete(msg.origMessageID)
	if !ok {
		d.UnmatchedReplies.Inc()
		return
	}
	if entry.expires.Before(d.cfg.Clock.Now()) {
		d.Rejected.Inc()
		return
	}
	// Only To, MessageID, and RelatesTo, matching the parse bridge: the
	// response's own headers (if any) are dropped from the routed reply.
	var fields [wsa.SkimFieldCount]string
	fields[0] = d.cfg.ReturnAddress
	fields[2] = wsa.NewMessageID()
	fields[3] = msg.origMessageID
	d.routeReplyFields(nil, sk.Version, sk.Body, &fields, entry, sink)
}

// bridgeState is the reusable scratch of one synthesized bridge reply:
// the envelope wrapped around the RPC response body and the addressing
// headers routeReply renders from. Both are dead once routeReply
// returns, so the scratch recycles through a pool keyed to nothing
// longer than the call.
type bridgeState struct {
	env soap.Envelope
	h   wsa.Headers
}
