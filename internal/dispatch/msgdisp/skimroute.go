package msgdisp

import (
	"strings"

	"repro/internal/httpx"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// The skim routing leg: the same classify/resolve/rewrite pipeline as
// route's parse path, driven by the wsa.Skim span scanner instead of a
// parse tree. A skim-accepted message is by contract byte-equivalent to
// its parsed form, so every verdict, counter, fault string, and wire
// byte below must match the tree path exactly — the only difference is
// that the steady-state forward costs zero parse allocations. Spans in
// the Skim alias the exchange's pooled request body; anything that
// outlives the routing pass (pending keys, detached reply addresses,
// rendered payloads) is copied out, exactly as the tree path detaches.

// routeSkim classifies a skimmed message as reply or request and
// dispatches it, mirroring route's parse leg.
func (d *Dispatcher) routeSkim(ex *httpx.Exchange, sk *wsa.Skim, sink *replySink) {
	// FromEnvelope's one validation: a message without To is not
	// routable, reply or not.
	if len(sk.To) == 0 {
		d.Rejected.Inc()
		d.fault(ex, httpx.StatusBadRequest, soap.FaultClient,
			"invalid WS-Addressing: "+wsa.ErrMissingTo.Error())
		return
	}
	if len(sk.RelatesTo) > 0 {
		// The transient view is safe for the atomic claim: cmap reads
		// the key during the call and retains nothing.
		if entry, ok := d.pending.GetAndDelete(xmlsoap.ZeroCopyString(sk.RelatesTo)); ok {
			if entry.expires.Before(d.cfg.Clock.Now()) {
				d.Rejected.Inc()
				d.fault(ex, httpx.StatusBadRequest, soap.FaultClient,
					"reply arrived after pending state expired")
				return
			}
			var fields [wsa.SkimFieldCount]string
			sk.Fields(&fields)
			d.routeReplyFields(ex, sk.Version, sk.Body, &fields, entry, sink)
			return
		}
		d.UnmatchedReplies.Inc()
		// Fall through: a RelatesTo we never saw may still carry a
		// routable To (peer-managed conversation state).
	}
	d.routeRequestSkim(ex, sk)
}

// routeRequestSkim forwards a skimmed client message toward the
// destination service: routeRequest with span views in place of parsed
// headers, rendered through the splice path.
func (d *Dispatcher) routeRequestSkim(ex *httpx.Exchange, sk *wsa.Skim) {
	to := xmlsoap.ZeroCopyString(sk.To)
	destURL := to
	if logical, ok := strings.CutPrefix(to, LogicalScheme); ok {
		ep, err := d.registry.Resolve(logical)
		if err != nil {
			d.Rejected.Inc()
			d.fault(ex, httpx.StatusNotFound, soap.FaultClient, err.Error())
			return
		}
		destURL = ep.URL
	}
	// A message addressed to the dispatcher itself with no matching
	// pending state would loop through the forwarder forever; refuse it.
	if destURL == d.cfg.ReturnAddress {
		d.Rejected.Inc()
		d.fault(ex, httpx.StatusBadRequest, soap.FaultClient,
			"message addressed to the dispatcher itself has no routable correlation")
		return
	}

	// Classification mirrors routeRequest; a skimmed ReplyTo span is the
	// EPR's Address text and is non-empty whenever the block is present.
	replyAddr := xmlsoap.ZeroCopyString(sk.ReplyTo)
	expectReply := len(sk.MessageID) > 0 && replyAddr != "" && replyAddr != wsa.None
	anonymous := expectReply && replyAddr == wsa.Anonymous
	// The MessageID outlives this exchange twice over — as the
	// pending-reply key (up to PendingTTL) and riding the queued
	// outbound into the WsThread's bridge — while the span aliases the
	// pooled request body. One detached copy serves both.
	msgID := string(sk.MessageID)
	var waiter *waiterSlot
	var fields [wsa.SkimFieldCount]string
	sk.Fields(&fields)
	fields[0] = destURL
	if expectReply {
		entry := pendingReply{expires: d.cfg.Clock.Now().Add(d.cfg.PendingTTL)}
		if anonymous {
			// Anonymous replies rendezvous on a recycled slot; the
			// original ReplyTo is never read on that path, so the
			// detach is skipped. Drain any stale delivery from the
			// slot's previous life (see routeRequest).
			waiter, _ = d.waiters.Get().(*waiterSlot)
			if waiter == nil {
				waiter = &waiterSlot{ch: make(chan anonReply, 1)}
			}
			select {
			case r := <-waiter.ch:
				xmlsoap.PutBuffer(r.buf)
			default:
			}
			entry.waiter = waiter
			entry.wgen = waiter.gen
		} else {
			// Detach: the pending entry holds this address for up to
			// PendingTTL, long past the pooled body's life.
			entry.replyTo = &wsa.EPR{Address: string(sk.ReplyTo)}
		}
		d.pending.Put(msgID, entry)
		fields[5] = d.cfg.ReturnAddress
	} else {
		fields[5] = wsa.None
	}

	// Fused rewrite+splice through the envelope-skeleton cache into a
	// pooled buffer: constant framing from the skeleton, header values
	// from the (rewritten) spans, the body span copied verbatim.
	buf := xmlsoap.GetBuffer()
	b, err := wsa.AppendSkimRewritten(buf.B, sk.Version, sk.Body, &fields)
	if err != nil {
		xmlsoap.PutBuffer(buf)
		if expectReply {
			d.pending.Delete(msgID)
			if waiter != nil {
				d.recycleWaiter(waiter)
			}
		}
		d.Rejected.Inc()
		d.fault(ex, httpx.StatusInternalServerError, soap.FaultServer, err.Error())
		return
	}
	buf.B = b
	d.admitForward(ex, buf, sk.Version, destURL, msgID, expectReply, anonymous, waiter)
}

// routeReplyFields is routeReply with the reply's addressing as a
// fields array and its payload as a canonical body span: the skim
// renders through the splice path, then converges on the shared
// delivery tails. Callers are routeSkim (identity fields from the wire)
// and the WsThread bridge (synthesized correlation fields).
func (d *Dispatcher) routeReplyFields(ex *httpx.Exchange, version soap.Version, body []byte,
	fields *[wsa.SkimFieldCount]string, entry pendingReply, sink *replySink) {
	d.RepliesRouted.Inc()
	if entry.waiter == nil {
		// Forwarded leg: redirect To at the original sender's ReplyTo.
		fields[0] = entry.replyTo.Address
	}
	buf := xmlsoap.GetBuffer()
	b, err := wsa.AppendSkimRewritten(buf.B, version, body, fields)
	if err != nil {
		xmlsoap.PutBuffer(buf)
		d.Rejected.Inc()
		d.fault(ex, httpx.StatusInternalServerError, soap.FaultServer, err.Error())
		return
	}
	buf.B = b
	if entry.waiter != nil {
		d.deliverToWaiter(ex, buf, version, entry)
		return
	}
	d.forwardReply(ex, buf, version, entry.replyTo.Address, sink)
}
