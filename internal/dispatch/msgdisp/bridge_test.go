package msgdisp

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// bridgeRig wires the dispatcher to an RPC echo service (not a messaging
// one), exercising the messaging→RPC translation and the anonymous-reply
// connection hold.
type bridgeRig struct {
	clk    *clock.Virtual
	disp   *Dispatcher
	client *httpx.Client
	echo   *echoservice.RPC
	inbox  chan *soap.Envelope
}

func newBridgeRig(t *testing.T, serviceTime time.Duration, anonWait time.Duration) *bridgeRig {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	nw := netsim.New(clk, 61)
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN())
	cli := nw.AddHost("cli", netsim.ProfileLAN())

	r := &bridgeRig{clk: clk, inbox: make(chan *soap.Envelope, 16)}

	// RPC echo (answers on the same connection) behind the dispatcher.
	r.echo = echoservice.NewRPC(clk, serviceTime)
	ln, _ := ws.Listen(80)
	srvWS := httpx.NewServer(r.echo, httpx.ServerConfig{Clock: clk})
	srvWS.Start(ln)
	t.Cleanup(func() { srvWS.Close() })

	reg := registry.New(registry.PolicyFirst, clk)
	reg.Register("echo-rpc", "http://ws:80/")
	dispClient := httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk})
	r.disp = New(reg, dispClient, Config{
		Clock:           clk,
		ReturnAddress:   "http://wsd:9100/msg",
		AnonymousWait:   anonWait,
		DeliveryTimeout: 5 * time.Second,
	})
	if err := r.disp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.disp.Stop)
	lnD, _ := wsd.Listen(9100)
	srvD := httpx.NewServer(r.disp, httpx.ServerConfig{Clock: clk})
	srvD.Start(lnD)
	t.Cleanup(func() { srvD.Close() })

	// Client's own endpoint for bridged replies.
	lnC, _ := cli.Listen(90)
	srvC := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		if env, err := soap.Parse(ex.Req.Body); err == nil {
			r.inbox <- env.Detach()
		}
		ex.ReplyBytes(httpx.StatusAccepted, nil)
	}), httpx.ServerConfig{Clock: clk})
	srvC.Start(lnC)
	t.Cleanup(func() { srvC.Close() })

	r.client = httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 60 * time.Second})
	t.Cleanup(r.client.Close)
	return r
}

// postRPCBody sends an RPC-style body as a WS-Addressing message with the
// given ReplyTo and returns the HTTP response.
func (r *bridgeRig) postRPCBody(t *testing.T, replyTo string) (*httpx.Response, string) {
	t.Helper()
	env := soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
		soap.Param{Name: "message", Value: "bridged"})
	h := &wsa.Headers{
		To:        LogicalScheme + "echo-rpc",
		Action:    echoservice.EchoNS + ":" + echoservice.EchoOp,
		MessageID: wsa.NewMessageID(),
		ReplyTo:   &wsa.EPR{Address: replyTo},
	}
	h.Apply(env)
	raw, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	req := httpx.NewRequest("POST", "/msg", raw)
	req.Header.Set("Content-Type", soap.V11.ContentType())
	resp, err := r.client.Do("wsd:9100", req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, h.MessageID
}

func TestRPCBridgeDeliversToEndpoint(t *testing.T) {
	r := newBridgeRig(t, time.Millisecond, 10*time.Second)
	resp, msgID := r.postRPCBody(t, "http://cli:90/msg")
	if resp.Status != httpx.StatusAccepted {
		t.Fatalf("status = %d", resp.Status)
	}
	select {
	case reply := <-r.inbox:
		h, err := wsa.FromEnvelope(reply)
		if err != nil {
			t.Fatal(err)
		}
		if h.RelatesTo != msgID {
			t.Fatalf("RelatesTo = %q, want %q", h.RelatesTo, msgID)
		}
		results, err := soap.ParseRPCResponse(reply, echoservice.EchoOp)
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Value != "bridged" {
			t.Fatalf("bridged result = %+v", results)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("bridged reply never arrived")
	}
}

func TestAnonymousReplyHoldsConnection(t *testing.T) {
	r := newBridgeRig(t, 200*time.Millisecond, 10*time.Second)
	resp, msgID := r.postRPCBody(t, wsa.Anonymous)
	// The dispatcher held the connection and answered with the bridged
	// RPC result on it.
	if resp.Status != httpx.StatusOK {
		t.Fatalf("status = %d body=%s", resp.Status, resp.Body)
	}
	env, err := soap.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The synthesized bridge reply must carry WS-Addressing headers on
	// the envelope itself — the RPC-style caller correlates the
	// connection-bound answer by RelatesTo.
	h, err := wsa.FromEnvelope(env)
	if err != nil {
		t.Fatalf("bridged reply lost its addressing headers: %v", err)
	}
	if h.RelatesTo != msgID {
		t.Fatalf("RelatesTo = %q, want %q", h.RelatesTo, msgID)
	}
	results, err := soap.ParseRPCResponse(env, echoservice.EchoOp)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Value != "bridged" {
		t.Fatalf("results = %+v", results)
	}
}

func TestAnonymousReplyTimesOutWith504(t *testing.T) {
	r := newBridgeRig(t, 30*time.Second, 2*time.Second) // service slower than window
	resp, _ := r.postRPCBody(t, wsa.Anonymous)
	if resp.Status != httpx.StatusGatewayTimeout {
		t.Fatalf("status = %d", resp.Status)
	}
	// The late reply must not resurrect state.
	r.clk.Sleep(40 * time.Second)
	if n := r.disp.PendingLen(); n != 0 {
		t.Fatalf("pending = %d after timeout", n)
	}
}

func TestBridgeWithoutReplyToDiscardsRPCResponse(t *testing.T) {
	r := newBridgeRig(t, time.Millisecond, 10*time.Second)
	env := soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
		soap.Param{Name: "message", Value: "noreply"})
	(&wsa.Headers{
		To:        LogicalScheme + "echo-rpc",
		MessageID: wsa.NewMessageID(),
	}).Apply(env)
	raw, _ := env.Marshal()
	req := httpx.NewRequest("POST", "/msg", raw)
	resp, err := r.client.Do("wsd:9100", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusAccepted {
		t.Fatalf("status = %d", resp.Status)
	}
	waitFor(t, func() bool { return r.disp.ForwardedToWS.Value() == 1 })
	// The service answered 200 with a body, but with no pending state
	// the dispatcher discards it instead of looping it.
	r.clk.Sleep(2 * time.Second)
	if r.disp.Accepted.Value() != 1 {
		t.Fatalf("Accepted = %d, want only the original send", r.disp.Accepted.Value())
	}
	select {
	case <-r.inbox:
		t.Fatal("discarded response reached the client")
	default:
	}
}

func TestBridgedEchoBody(t *testing.T) {
	// A messaging echo that already stamps full WSA reply headers is
	// routed as-is (the "already addressed" bridge path).
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 62)
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN())
	cli := nw.AddHost("cli", netsim.ProfileLAN())

	// A service that answers the delivery POST *synchronously* with a
	// fully addressed reply envelope (some stacks do this instead of
	// opening a new connection).
	ln, _ := ws.Listen(81)
	srvWS := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		in, err := soap.Parse(ex.Req.Body)
		if err != nil {
			ex.ReplyBytes(httpx.StatusBadRequest, nil)
			return
		}
		h, err := wsa.FromEnvelope(in)
		if err != nil {
			ex.ReplyBytes(httpx.StatusBadRequest, nil)
			return
		}
		out := soap.New(soap.V11).SetBody(in.BodyElement().Clone())
		(&wsa.Headers{
			To:        h.ReplyTo.Address,
			MessageID: wsa.NewMessageID(),
			RelatesTo: h.MessageID,
		}).Apply(out)
		raw, _ := out.Marshal()
		ex.Header().Set("Content-Type", soap.V11.ContentType())
		ex.ReplyBytes(httpx.StatusOK, raw)
	}), httpx.ServerConfig{Clock: clk})
	srvWS.Start(ln)
	defer srvWS.Close()

	reg := registry.New(registry.PolicyFirst, clk)
	reg.Register("sync-echo", "http://ws:81/msg")
	disp := New(reg, httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk}), Config{
		Clock:         clk,
		ReturnAddress: "http://wsd:9100/msg",
	})
	disp.Start()
	defer disp.Stop()
	lnD, _ := wsd.Listen(9100)
	srvD := httpx.NewServer(disp, httpx.ServerConfig{Clock: clk})
	srvD.Start(lnD)
	defer srvD.Close()

	inbox := make(chan *soap.Envelope, 1)
	lnC, _ := cli.Listen(90)
	srvC := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		if env, err := soap.Parse(ex.Req.Body); err == nil {
			inbox <- env.Detach()
		}
		ex.ReplyBytes(httpx.StatusAccepted, nil)
	}), httpx.ServerConfig{Clock: clk})
	srvC.Start(lnC)
	defer srvC.Close()

	client := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk})
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText("urn:x", "q", "sync"))
	(&wsa.Headers{
		To:        LogicalScheme + "sync-echo",
		MessageID: wsa.NewMessageID(),
		ReplyTo:   &wsa.EPR{Address: "http://cli:90/msg"},
	}).Apply(env)
	raw, _ := env.Marshal()
	resp, err := client.Do("wsd:9100", httpx.NewRequest("POST", "/msg", raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusAccepted {
		t.Fatalf("status = %d", resp.Status)
	}
	select {
	case reply := <-inbox:
		if reply.BodyElement().Text != "sync" {
			t.Fatalf("reply = %s", reply.BodyElement())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("synchronously-addressed reply never routed")
	}
}
