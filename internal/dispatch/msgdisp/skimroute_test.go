package msgdisp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// TestSkimFallbackForeignHeader drives a message the skim must decline —
// it carries a foreign header block — through the full rig: the routing
// outcome must be exactly what it was before the skim existed, because
// the decline falls back to the parse path transparently. The foreign
// block also survives onto the forwarded wire (the parse path's
// general-marshal fallback preserves non-WSA headers).
func TestSkimFallbackForeignHeader(t *testing.T) {
	r := newRig(t, false, Config{})
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText(echoservice.EchoNS, "echo", "m"))
	env.AddHeader(xmlsoap.NewText("urn:custom", "Trace", "tid-7"))
	h := &wsa.Headers{
		To: LogicalScheme + "echo", Action: "urn:echo",
		MessageID: wsa.NewMessageID(),
		ReplyTo:   &wsa.EPR{Address: "http://cli:90/msg"},
	}
	h.Apply(env)
	raw, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var sk wsa.Skim
	if wsa.SkimEnvelope(raw, &sk) {
		t.Fatal("skim accepted a foreign header block; the test no longer exercises the fallback")
	}
	resp, err := r.client.Do("wsd:9100", httpx.NewRequest("POST", "/msg", raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusAccepted {
		t.Fatalf("send status = %d", resp.Status)
	}
	select {
	case reply := <-r.inbox:
		rh, err := wsa.FromEnvelope(reply)
		if err != nil {
			t.Fatal(err)
		}
		if rh.RelatesTo != h.MessageID {
			t.Fatalf("RelatesTo = %q, want %q", rh.RelatesTo, h.MessageID)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("reply never arrived at client")
	}
	waitFor(t, func() bool { return r.disp.RepliesDelivered.Value() == 1 })
	if r.disp.PendingLen() != 0 {
		t.Fatalf("pending state leaked: %d", r.disp.PendingLen())
	}
}

// TestSkimForwardWireMatchesParsePath posts the same logical message
// twice — once in canonical form (skim path) and once with a numeric
// character reference the skim declines (parse path) — at a capture
// endpoint, and requires the two forwarded wire payloads to be
// byte-identical: the skim's splice must be indistinguishable on the
// wire from parse+rewrite.
func TestSkimForwardWireMatchesParsePath(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 21)
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN())
	cli := nw.AddHost("cli", netsim.ProfileLAN())

	captured := make(chan []byte, 2)
	lnWS, _ := ws.Listen(81)
	srvWS := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		captured <- bytes.Clone(ex.Req.Body)
		ex.ReplyBytes(httpx.StatusAccepted, nil)
	}), httpx.ServerConfig{Clock: clk})
	srvWS.Start(lnWS)
	defer srvWS.Close()

	reg := registry.New(registry.PolicyFirst, clk)
	reg.Register("echo", "http://ws:81/msg")
	disp := New(reg, httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk}), Config{
		Clock:         clk,
		ReturnAddress: "http://wsd:9100/msg",
	})
	if err := disp.Start(); err != nil {
		t.Fatal(err)
	}
	defer disp.Stop()
	lnD, _ := wsd.Listen(9100)
	srvD := httpx.NewServer(disp, httpx.ServerConfig{Clock: clk})
	srvD.Start(lnD)
	defer srvD.Close()
	client := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
	defer client.Close()

	// One-way messages (no ReplyTo): both rewrites set ReplyTo to the
	// None address, so the forwarded payloads can match byte for byte.
	canonical := []byte(xmlsoap.Prolog +
		`<soapenv:Envelope xmlns:soapenv="` + soap.NS11 + `">` +
		`<soapenv:Header>` +
		`<wsa:To xmlns:wsa="` + wsa.NS + `">` + LogicalScheme + `echo</wsa:To>` +
		`<wsa:MessageID xmlns:wsa="` + wsa.NS + `">urn:uuid:skim-wire-1</wsa:MessageID>` +
		`</soapenv:Header>` +
		`<soapenv:Body><ns1:echo xmlns:ns1="` + echoservice.EchoNS + `">mAm</ns1:echo></soapenv:Body>` +
		`</soapenv:Envelope>`)
	// Same message with the body's "A" as a character reference: the
	// skim declines references, the parser decodes it to the same text.
	variant := bytes.Replace(bytes.Clone(canonical), []byte("mAm"), []byte("m&#65;m"), 1)

	var sk wsa.Skim
	if !wsa.SkimEnvelope(canonical, &sk) {
		t.Fatal("canonical envelope must take the skim path")
	}
	if wsa.SkimEnvelope(variant, &sk) {
		t.Fatal("entity-bearing envelope must fall back to the parser")
	}

	for _, raw := range [][]byte{canonical, variant} {
		resp, err := client.Do("wsd:9100", httpx.NewRequest("POST", "/msg", raw))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != httpx.StatusAccepted {
			t.Fatalf("send status = %d", resp.Status)
		}
	}
	var wires [2][]byte
	for i := range wires {
		select {
		case b := <-captured:
			wires[i] = b
		case <-time.After(15 * time.Second):
			t.Fatal("forwarded message never reached the destination")
		}
	}
	if !bytes.Equal(wires[0], wires[1]) {
		t.Fatalf("skim and parse paths forwarded different wires:\nskim:  %q\nparse: %q", wires[0], wires[1])
	}
}
