//go:build race

package msgdisp

// raceEnabled skips the end-to-end allocation gate under the race
// detector, which deliberately randomizes sync.Pool caching and makes
// allocation counts nondeterministic.
const raceEnabled = true
