package msgdisp

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// TestLoadgenFailoverAcrossBackendKill is the PR's failover acceptance
// scenario end-to-end: loadgen drives anonymous RPC-style traffic through
// the MSG-Dispatcher at a two-backend farm, one backend is killed
// mid-run, and the error rate must recover because delivery failures mark
// the dead endpoint (MarkDeadOnError → MarkDeadURL) and resolution fails
// over to the survivor. Afterwards nothing may be stuck: no retained
// pending entries (every waiter either got its reply or timed out and
// cleaned up) and the pooled-buffer count returns to its pre-traffic
// baseline.
func TestLoadgenFailoverAcrossBackendKill(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	nw := netsim.New(clk, 83)

	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws1 := nw.AddHost("ws1", netsim.ProfileLAN())
	ws2 := nw.AddHost("ws2", netsim.ProfileLAN())
	cli := nw.AddHost("cli", netsim.ProfileLAN())

	live0 := xmlsoap.PoolLive()

	echo1 := echoservice.NewRPC(clk, time.Millisecond)
	ln1, _ := ws1.Listen(80)
	srv1 := httpx.NewServer(echo1, httpx.ServerConfig{Clock: clk})
	srv1.Start(ln1)
	t.Cleanup(func() { srv1.Close() })

	echo2 := echoservice.NewRPC(clk, time.Millisecond)
	ln2, _ := ws2.Listen(80)
	srv2 := httpx.NewServer(echo2, httpx.ServerConfig{Clock: clk})
	srv2.Start(ln2)
	t.Cleanup(func() { srv2.Close() })

	reg := registry.New(registry.PolicyRoundRobin, clk)
	reg.Register("echo", "http://ws1:80/", "http://ws2:80/")

	disp := New(reg, httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk}), Config{
		Clock:           clk,
		ReturnAddress:   "http://wsd:9100/msg",
		AnonymousWait:   2 * time.Second,
		DeliveryTimeout: 2 * time.Second,
		HoldOpen:        time.Second,
		MarkDeadOnError: true,
	})
	if err := disp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(disp.Stop)
	lnD, _ := wsd.Listen(9100)
	srvD := httpx.NewServer(disp, httpx.ServerConfig{Clock: clk})
	srvD.Start(lnD)
	t.Cleanup(func() { srvD.Close() })

	httpCli := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
	t.Cleanup(httpCli.Close)

	op := func(id, seq int) error {
		env := soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
			soap.Param{Name: "message", Value: "failover"})
		(&wsa.Headers{
			To:        LogicalScheme + "echo",
			Action:    echoservice.EchoNS + ":" + echoservice.EchoOp,
			MessageID: fmt.Sprintf("urn:loadgen:%d:%d", id, seq),
			ReplyTo:   &wsa.EPR{Address: wsa.Anonymous},
		}).Apply(env)
		raw, err := env.Marshal()
		if err != nil {
			return err
		}
		req := httpx.NewRequest("POST", "/msg", raw)
		req.Header.Set("Content-Type", soap.V11.ContentType())
		resp, err := httpCli.Do("wsd:9100", req)
		if err != nil {
			return err
		}
		status := resp.Status
		resp.Release()
		if status != httpx.StatusOK {
			return fmt.Errorf("HTTP %d", status)
		}
		return nil
	}

	// Kill one backend a third of the way into the run.
	go func() {
		clk.Sleep(20 * time.Second)
		srv1.Close()
	}()

	rep := loadgen.Run(loadgen.Config{
		Clock:     clk,
		Clients:   8,
		Duration:  60 * time.Second,
		ThinkTime: 250 * time.Millisecond,
		Series:    "failover",
	}, op)

	if rep.Transmitted == 0 {
		t.Fatalf("no traffic got through: %+v", rep)
	}
	// The kill is observable: deliveries racing it failed. Round-robin
	// keeps steering every other message at ws1 until its first failed
	// delivery marks it dead, so at least one failure is guaranteed.
	if disp.DeliveryFailures.Value() == 0 {
		t.Fatal("backend kill produced no delivery failures — kill never observed")
	}
	// Recovery: with ws1 marked dead, fresh calls must all succeed via
	// ws2 — the error rate is back to zero, not merely reduced.
	before2 := echo2.Handled.Value()
	for i := 0; i < 6; i++ {
		if err := op(999, i); err != nil {
			t.Fatalf("post-kill call %d still failing: %v", i, err)
		}
	}
	if got := echo2.Handled.Value(); got < before2+6 {
		t.Fatalf("survivor handled %d post-kill calls, want ≥ 6", got-before2)
	}

	// No stuck waiters: every pending entry was either claimed by its
	// reply or deleted by its timed-out waiter once the anonymous window
	// passes.
	clk.Sleep(3 * time.Second)
	waitFor(t, func() bool { return disp.PendingLen() == 0 })
	// No leaked pooled buffers: live count returns to the pre-traffic
	// baseline (failed deliveries released their payloads too).
	waitFor(t, func() bool { return xmlsoap.PoolLive() <= live0 })
}
