// Package msgdisp implements the MSG-Dispatcher: the asynchronous,
// store-and-forward half of the WS-Dispatcher (paper §4.1–4.2, Figure 3).
//
// Architecture, mirroring the paper:
//
//   - Incoming requests are handed to a bounded pool of CxThreads whose
//     job is "to map logical address with physical address of the WS and
//     parse the WS-Addressing message of the request to modify client's
//     information with MSG-Dispatcher's return address".
//   - Each destination has a FIFO queue drained by a WsThread that "has an
//     open connection for a predefined time with a specified WS" and
//     delivers queued messages over it — multiple messages per connection,
//     "which is more efficient than opening multiple short lived
//     connections".
//   - "Responses from WSs are also treated like requests from clients":
//     a message whose RelatesTo matches a remembered MessageID is routed
//     to the original sender's ReplyTo — the real client endpoint, or its
//     WS-MsgBox mailbox.
//
// The WsThread pool is a *shared, bounded* set of workers. That bound is
// load-bearing for Figure 6: when replies must be delivered to firewalled
// clients, each delivery attempt stalls a WsThread for the full dial
// timeout, starving forward traffic — which is why the paper measures
// plain MSG-Dispatcher as the slowest configuration and MSG-Dispatcher +
// WS-MsgBox as the fastest.
//
// Since PR 9, the hot legs are zero-parse: canonical envelopes — the
// stack's own serializer output shape — are routed from a streaming
// wsa.SkimEnvelope scan (spans over the pooled request buffer, no tree,
// 0 allocs) and rewritten by splicing through the skeleton cache
// (wsa.AppendSkimRewritten). Anything the skim cannot prove canonical
// falls back to soap.Parse transparently; both paths funnel into the
// same verdict tails (admitForward, deliverToWaiter, forwardReply), so
// fault strings, statuses, counters, and wire bytes are identical
// either way. See skimroute.go and the ROADMAP "Zero-parse forward
// path (PR 9)" contract for the aliasing and fallback rules.
package msgdisp

import (
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/cmap"
	"repro/internal/httpx"
	"repro/internal/pool"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/stats"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// LogicalScheme prefixes WS-Addressing To values that name a registry
// entry rather than a physical URL, e.g. "logical:echo".
const LogicalScheme = "logical:"

// Config tunes a Dispatcher.
type Config struct {
	// Clock drives hold-open timers and timeouts.
	Clock clock.Clock
	// ReturnAddress is this dispatcher's own message endpoint; it is
	// written into forwarded messages' ReplyTo so services answer
	// through the dispatcher. Required.
	ReturnAddress string
	// CxWorkers sizes the first thread pool (incoming processing).
	// Default 8.
	CxWorkers int
	// CxBacklog bounds queued unprocessed requests. Default 256.
	CxBacklog int
	// WsWorkers sizes the second pool: the maximum number of
	// destinations being delivered to concurrently. Default 16.
	WsWorkers int
	// QueueCap bounds each destination's FIFO. Default 1024.
	QueueCap int
	// HoldOpen is how long an idle WsThread stays bound to its
	// destination (connection held) before releasing its pool slot.
	// Default 5s.
	HoldOpen time.Duration
	// DeliveryTimeout bounds one delivery attempt. Default 21s — the
	// TCP connect timeout a firewalled destination consumes in full.
	DeliveryTimeout time.Duration
	// BatchMax caps messages sent per queue drain pass. Default 16.
	BatchMax int
	// PendingTTL is how long reply-routing state (MessageID → original
	// ReplyTo) is retained. Default 5m.
	PendingTTL time.Duration
	// StateShards sets the stripe count for the dispatcher's keyed
	// state (pending-reply waiters and per-destination queues), rounded
	// up to a power of two. Default 64; 1 collapses to a single lock
	// (the ablation baseline the benchmarks compare against).
	StateShards int
	// MarkDeadOnError flags a destination endpoint dead in the registry
	// after a delivery failure, so logical resolution fails over to the
	// remaining backends.
	MarkDeadOnError bool
	// AnonymousWait bounds how long a request whose ReplyTo is the
	// WS-Addressing anonymous URI holds its HTTP connection open
	// waiting for the correlated reply (Table 1 quadrant 2: an RPC
	// client calling a messaging service — "may not work at all if
	// message reply comes too late"). Default 25s.
	AnonymousWait time.Duration
	// Courier, when set, receives messages whose immediate delivery
	// failed for store-backed hold/retry with expiration — the paper's
	// WS-ReliableMessaging-flavoured future work ("adding hold/retry
	// on delivery ... with messages stored in DB with expiration
	// time"). Nil drops failed deliveries after counting them.
	Courier DeliveryFallback
}

// DeliveryFallback is the hook the reliable.Courier satisfies.
type DeliveryFallback interface {
	SendPayload(destURL, id string, payload []byte) (string, error)
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Wall
	}
	if c.CxWorkers <= 0 {
		c.CxWorkers = 8
	}
	if c.CxBacklog <= 0 {
		c.CxBacklog = 256
	}
	if c.WsWorkers <= 0 {
		c.WsWorkers = 16
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.HoldOpen <= 0 {
		c.HoldOpen = 5 * time.Second
	}
	if c.DeliveryTimeout <= 0 {
		c.DeliveryTimeout = 21 * time.Second
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	if c.PendingTTL <= 0 {
		c.PendingTTL = 5 * time.Minute
	}
	if c.StateShards <= 0 {
		c.StateShards = 64
	}
	if c.AnonymousWait <= 0 {
		c.AnonymousWait = 25 * time.Second
	}
	return c
}

// Dispatcher is the asynchronous message router. It implements
// httpx.Handler for its message endpoint.
type Dispatcher struct {
	cfg      Config
	registry *registry.Registry
	client   *httpx.Client

	cx      *pool.Pool
	dests   *cmap.Map[*destQueue]
	wsSlots chan struct{}
	pending *cmap.Map[pendingReply]

	// timers recycles anonymous-wait timers across exchanges (see
	// awaitAnonymous for the stale-fire discipline). waiters recycles
	// their reply slots (see waiterSlot for the generation guard), and
	// cxTasks the Serve admission closures.
	timers        sync.Pool
	waiters       sync.Pool
	cxTasks       sync.Pool
	bridgeScratch sync.Pool

	// selfEPR and noneEPR are the two constant ReplyTo rewrites, built
	// once so the per-message rewrite allocates nothing. They are shared
	// read-only across messages.
	selfEPR *wsa.EPR
	noneEPR *wsa.EPR

	stopMu  sync.Mutex
	stopped bool

	// Counters for the evaluation harness.
	Accepted         stats.Counter // messages admitted (202)
	Rejected         stats.Counter // malformed / unroutable / overloaded
	ForwardedToWS    stats.Counter // deliveries to services that succeeded
	RepliesRouted    stats.Counter // responses matched to a pending request
	RepliesDelivered stats.Counter // responses that reached their ReplyTo
	DeliveryFailures stats.Counter // deliveries that failed (any direction)
	UnmatchedReplies stats.Counter // responses with unknown RelatesTo
	QueueDrops       stats.Counter // messages dropped at full queues
	HandedToCourier  stats.Counter // failed deliveries given to hold/retry
	HoldOpenRearms   stats.Counter // WsThread delivery bursts (one timer re-arm each)
	DeliveryLatency  stats.Histogram
}

type pendingReply struct {
	// replyTo is the detached forward address; nil for anonymous
	// entries, whose reply goes to the waiter instead (skipping the
	// detach — anonymous is the steady-state RPC path and the EPR
	// would never be read).
	replyTo *wsa.EPR
	// waiter, when non-nil, is the slot of an RPC-style caller blocked
	// on its HTTP connection; the reply is handed over the slot's
	// channel instead of being forwarded. wgen is the slot generation
	// observed at registration — a delivery stamped with it can be
	// recognized as stale by a later owner of the recycled slot.
	waiter  *waiterSlot
	wgen    uint64
	expires time.Time
}

// waiterSlot is the pooled rendezvous of one anonymous-RPC wait: a
// 1-buffered reply channel recycled across exchanges, plus the
// generation counter that keeps recycling safe. The slot is owned by
// exactly one waiting exchange at a time (sync.Pool orders the
// hand-offs); gen is read and bumped only by that owner, and every
// pending entry and reply carries the gen current at registration.
//
// The guard exists because pending.Get / pending.Delete is not one
// atomic claim: a reply router can Get an entry, lose the race with the
// waiter's timeout (which deletes the entry, recycles the slot, and
// lets a new exchange register it), and only then send. Unpooled, that
// late send leaked a buffer to an abandoned channel; pooled, it would
// deliver a stale reply to the wrong exchange — so the new owner
// refuses any reply whose gen is not its own and returns the buffer to
// the pool. Generations only grow, so a stale gen can never collide
// with a live registration.
type waiterSlot struct {
	gen uint64
	ch  chan anonReply
}

// anonReply is a reply rendered for a blocked anonymous-RPC caller. The
// routing goroutine renders the envelope into a pooled buffer while the
// reply's own exchange is still live (its parse tree aliases that
// exchange's pooled body), and hands the buffer — ownership included —
// across the channel; the waiter wraps it in a response whose release
// duty the HTTP server assumes. Moving rendered bytes instead of a tree
// removes the deep Envelope.Detach clone (~25 allocations per exchange)
// the old hand-off paid. gen identifies the registration the reply
// answers (see waiterSlot).
type anonReply struct {
	buf     *xmlsoap.Buffer
	version soap.Version
	gen     uint64
}

// cxTask is the pooled admission unit of Serve: the bound closure is
// built once per task object and reused, so hijacking an exchange into
// the CxThread pool allocates nothing in the steady state. The closure
// releases the task back to the pool before routing, having copied the
// exchange out — the next Serve can only obtain the task after that
// copy (sync.Pool orders the hand-off), so the slot never races.
type cxTask struct {
	ex  *httpx.Exchange
	run func()
}

// New builds a MSG-Dispatcher. client must dial from the dispatcher's
// host; reg resolves logical names.
func New(reg *registry.Registry, client *httpx.Client, cfg Config) *Dispatcher {
	cfg = cfg.withDefaults()
	d := &Dispatcher{
		cfg:      cfg,
		registry: reg,
		client:   client,
		cx:       pool.New(pool.Config{Core: cfg.CxWorkers, Backlog: cfg.CxBacklog}),
		dests:    cmap.NewSized[*destQueue](cfg.StateShards),
		wsSlots:  make(chan struct{}, cfg.WsWorkers),
		pending:  cmap.NewSized[pendingReply](cfg.StateShards),
		selfEPR:  &wsa.EPR{Address: cfg.ReturnAddress},
		noneEPR:  &wsa.EPR{Address: wsa.None},
	}
	return d
}

// Start launches the CxThread pool.
func (d *Dispatcher) Start() error { return d.cx.Start() }

// Stop drains the CxThread pool and closes destination queues. In-flight
// deliveries finish; queued undelivered messages are dropped.
func (d *Dispatcher) Stop() {
	d.stopMu.Lock()
	if d.stopped {
		d.stopMu.Unlock()
		return
	}
	d.stopped = true
	d.stopMu.Unlock()
	d.cx.Stop()
	d.dests.Range(func(_ string, dq *destQueue) bool {
		dq.close()
		return true
	})
}

// Serve implements httpx.Handler. The exchange is hijacked and handed to
// a CxThread whole: the worker routes the message and replies on the
// exchange directly — 202 Accepted on admission, a fault otherwise —
// then finishes it. This is what removed the old per-request
// verdict-channel round trip between the HTTP goroutine and the worker;
// the connection's one reusable completion channel (inside the Exchange)
// is touched only on this hijacked path. The connection holds the pooled
// request body until Finish, so it stays valid for the whole routing
// pass (everything route retains past it — pending-reply state, queued
// payloads, waiter envelopes — is detached or rendered into its own
// buffer).
func (d *Dispatcher) Serve(ex *httpx.Exchange) {
	ex.Hijack()
	t, _ := d.cxTasks.Get().(*cxTask)
	if t == nil {
		t = &cxTask{}
		t.run = func() {
			ex := t.ex
			t.ex = nil
			d.cxTasks.Put(t)
			defer ex.Finish()
			d.route(ex, ex.Req.Body, nil)
		}
	}
	t.ex = ex
	err := d.cx.TrySubmit(t.run)
	if err != nil {
		t.ex = nil
		d.cxTasks.Put(t)
		d.Rejected.Inc()
		d.fault(ex, httpx.StatusServiceUnavailable, soap.FaultServer,
			"dispatcher overloaded: "+err.Error())
		ex.Finish()
	}
}

// route is the CxThread body: scan, classify (request vs response),
// resolve, rewrite, enqueue. Verdicts are replied on ex; the bridge
// re-enters routing with a nil exchange (its delivery connection already
// got its answer), in which case verdicts are counted but sent nowhere.
// sink, non-nil only on the bridge's burst path, batches reply
// admission (see replySink).
//
// The forward leg is skim-first: a message in the stack's own canonical
// wire form routes through the zero-allocation span scanner
// (skimroute.go) without ever building a parse tree. Anything the skim
// cannot prove safe — foreign or attributed header blocks, reference
// properties, non-canonical framing or escapes — falls through,
// transparently and with identical verdicts and wire output, to the
// full parser below.
func (d *Dispatcher) route(ex *httpx.Exchange, body []byte, sink *replySink) {
	var sk wsa.Skim
	if wsa.SkimEnvelope(body, &sk) {
		d.routeSkim(ex, &sk, sink)
		return
	}
	env, err := soap.Parse(body)
	if err != nil {
		d.Rejected.Inc()
		d.fault(ex, httpx.StatusBadRequest, soap.FaultClient, "invalid SOAP: "+err.Error())
		return
	}
	h, err := wsa.FromEnvelope(env)
	if err != nil {
		d.Rejected.Inc()
		d.fault(ex, httpx.StatusBadRequest, soap.FaultClient, "invalid WS-Addressing: "+err.Error())
		return
	}

	// "Responses from WSs are also treated like requests from clients."
	// GetAndDelete makes the claim atomic: exactly one router owns the
	// entry, so two copies of the same reply can never both deliver.
	if h.RelatesTo != "" {
		if entry, ok := d.pending.GetAndDelete(h.RelatesTo); ok {
			if entry.expires.Before(d.cfg.Clock.Now()) {
				d.Rejected.Inc()
				d.fault(ex, httpx.StatusBadRequest, soap.FaultClient,
					"reply arrived after pending state expired")
				return
			}
			d.routeReply(ex, env, h, entry, sink)
			return
		}
		d.UnmatchedReplies.Inc()
		// Fall through: a RelatesTo we never saw may still carry a
		// routable To (peer-managed conversation state).
	}
	d.routeRequest(ex, env, h)
}

// routeRequest forwards a client message toward the destination service.
func (d *Dispatcher) routeRequest(ex *httpx.Exchange, env *soap.Envelope, h *wsa.Headers) {
	destURL := h.To
	if logical, ok := strings.CutPrefix(h.To, LogicalScheme); ok {
		ep, err := d.registry.Resolve(logical)
		if err != nil {
			d.Rejected.Inc()
			d.fault(ex, httpx.StatusNotFound, soap.FaultClient, err.Error())
			return
		}
		destURL = ep.URL
	}
	// A message addressed to the dispatcher itself with no matching
	// pending state would loop through the forwarder forever; refuse it.
	if destURL == d.cfg.ReturnAddress {
		d.Rejected.Inc()
		d.fault(ex, httpx.StatusBadRequest, soap.FaultClient,
			"message addressed to the dispatcher itself has no routable correlation")
		return
	}

	// Remember where the real answer should go, then rewrite ReplyTo to
	// ourselves so the service replies through the dispatcher. When the
	// sender expects no reply, tell the service so (the None address)
	// instead of volunteering to receive replies we cannot route. An
	// anonymous ReplyTo means the caller is RPC-style: it waits on its
	// open HTTP connection for the correlated reply.
	//
	// The pending entry outlives this exchange by up to PendingTTL, so
	// the MessageID key and the ReplyTo are detached: headers parsed
	// from the request alias its body (the xmlsoap aliasing contract),
	// and retaining them as-is would pin the whole buffer for minutes.
	expectReply := h.MessageID != "" && h.ReplyTo != nil &&
		h.ReplyTo.Address != "" && h.ReplyTo.Address != wsa.None
	anonymous := expectReply && h.ReplyTo.Address == wsa.Anonymous
	// The MessageID outlives this exchange twice over — as the
	// pending-reply key (up to PendingTTL) and riding the queued
	// outbound into the WsThread's bridge — while the parsed value
	// aliases the pooled request body. One detached copy serves both.
	msgID := strings.Clone(h.MessageID)
	var waiter *waiterSlot
	// The rewrite is a shallow copy: untouched fields (Action,
	// MessageID, From, ...) are shared read-only with h, and the two
	// constant ReplyTo substitutions are prebuilt on the Dispatcher.
	rewritten := *h
	rewritten.To = destURL
	if expectReply {
		entry := pendingReply{expires: d.cfg.Clock.Now().Add(d.cfg.PendingTTL)}
		if anonymous {
			// Anonymous replies rendezvous on a recycled slot; the
			// original ReplyTo is never read on that path, so the
			// detach is skipped. Anything already in the channel is a
			// stale delivery from a previous life (nothing can address
			// this registration before the Put below): drain it now so
			// it cannot occupy the 1-slot channel against the genuine
			// reply.
			waiter, _ = d.waiters.Get().(*waiterSlot)
			if waiter == nil {
				waiter = &waiterSlot{ch: make(chan anonReply, 1)}
			}
			select {
			case r := <-waiter.ch:
				xmlsoap.PutBuffer(r.buf)
			default:
			}
			entry.waiter = waiter
			entry.wgen = waiter.gen
		} else {
			entry.replyTo = h.ReplyTo.Detach()
		}
		d.pending.Put(msgID, entry)
		rewritten.ReplyTo = d.selfEPR
	} else {
		rewritten.ReplyTo = d.noneEPR
	}

	// Fused rewrite+render through the envelope-skeleton cache into a
	// pooled buffer. The buffer travels with the queued message and is
	// released by the WsThread after the delivery attempt (deliver or
	// courier handoff).
	buf := xmlsoap.GetBuffer()
	b, err := wsa.AppendRewritten(buf.B, env, &rewritten)
	if err != nil {
		xmlsoap.PutBuffer(buf)
		d.Rejected.Inc()
		d.fault(ex, httpx.StatusInternalServerError, soap.FaultServer, err.Error())
		return
	}
	buf.B = b
	d.admitForward(ex, buf, env.Version, destURL, msgID, expectReply, anonymous, waiter)
}

// admitForward is the render-independent tail of a forwarded request:
// enqueue the rendered message toward destURL, roll back pending state
// and fault on a full queue, then answer the exchange — holding it open
// for anonymous-RPC callers. Both render paths (tree rewrite and skim
// splice) converge here, so admission, rollback, and verdict semantics
// cannot drift between them.
func (d *Dispatcher) admitForward(ex *httpx.Exchange, buf *xmlsoap.Buffer, version soap.Version,
	destURL, msgID string, expectReply, anonymous bool, waiter *waiterSlot) {
	if !d.enqueue(outbound{
		payload:       buf,
		version:       version,
		toService:     true,
		origMessageID: msgID,
	}, destURL) {
		xmlsoap.PutBuffer(buf)
		if expectReply {
			d.pending.Delete(msgID)
			if waiter != nil {
				d.recycleWaiter(waiter)
			}
		}
		d.QueueDrops.Inc()
		d.Rejected.Inc()
		d.fault(ex, httpx.StatusServiceUnavailable, soap.FaultServer,
			"destination queue full: "+destURL)
		return
	}
	d.Accepted.Inc()
	if anonymous {
		d.awaitAnonymous(ex, msgID, waiter)
		return
	}
	if ex != nil {
		ex.ReplyBytes(httpx.StatusAccepted, nil)
	}
}

// awaitAnonymous holds the caller's connection until its reply arrives or
// the wait budget expires. This is Table 1's quadrant (2): it works only
// when the messaging service answers before the RPC-side timeout, and it
// ties up a CxThread for the whole wait — the "very limited" interaction.
// (A bridged message can land here with no exchange; the wait still
// happens — matching the old discard-the-response behavior — and an
// arriving reply's buffer is simply returned to the pool.)
func (d *Dispatcher) awaitAnonymous(ex *httpx.Exchange, msgID string, waiter *waiterSlot) {
	// The wait timer is drawn from a pool: an anonymous RPC exchange
	// happens per client call, and NewTimer per wait is three
	// allocations on the steady-state path. A pooled timer can carry a
	// stale fire from its previous life (a Virtual-clock fire lands in C
	// asynchronously even after Stop — see wsThread), so fires are
	// validated against the deadline and the remainder re-armed.
	clk := d.cfg.Clock
	deadline := clk.Now().Add(d.cfg.AnonymousWait)
	t, _ := d.timers.Get().(*clock.Timer)
	if t == nil {
		t = clk.NewTimer(d.cfg.AnonymousWait)
	} else {
		t.Reset(d.cfg.AnonymousWait)
	}
	for {
		select {
		case r := <-waiter.ch:
			if r.gen != waiter.gen {
				// A delivery addressed to a previous registration of
				// this recycled slot (the sender claimed the old
				// pending entry, then lost the race with its timeout).
				// Refuse it — delivering would answer this exchange
				// with another exchange's reply — and keep waiting.
				xmlsoap.PutBuffer(r.buf)
				d.DeliveryFailures.Inc()
				continue
			}
			// The reply arrives pre-rendered in a pooled buffer whose
			// ownership travels with it; handed to the exchange, the
			// connection releases it after writing the reply.
			if ex != nil {
				ex.Header().Set("Content-Type", r.version.ContentType())
				ex.ReplyBuffer(httpx.StatusOK, r.buf)
			} else {
				xmlsoap.PutBuffer(r.buf)
			}
			d.putTimer(t)
			d.recycleWaiter(waiter)
			return
		case <-t.C:
			if now := clk.Now(); now.Before(deadline) {
				// Stale fire inherited from the timer's previous owner;
				// wait out the remainder of this window.
				t.Reset(deadline.Sub(now))
				continue
			}
			d.pending.Delete(msgID)
			d.DeliveryFailures.Inc()
			d.fault(ex, httpx.StatusGatewayTimeout, soap.FaultServer,
				"no reply within the anonymous-response window")
			d.timers.Put(t)
			// A reply racing this timeout may already sit in the
			// channel; the recycle drains it back to the buffer pool
			// (and its generation bump retires any send still in
			// flight).
			d.recycleWaiter(waiter)
			return
		}
	}
}

// recycleWaiter retires a slot at the end of its wait and returns it to
// the pool. The generation bump comes first: any delivery still in
// flight carries the old gen, so it is either drained here or refused
// by the slot's next owner — never delivered across exchanges.
func (d *Dispatcher) recycleWaiter(w *waiterSlot) {
	w.gen++
	select {
	case r := <-w.ch:
		xmlsoap.PutBuffer(r.buf)
	default:
	}
	d.waiters.Put(w)
}

// putTimer stops and drains t before pooling it; a Virtual-clock fire
// that slips in after the drain is caught by the next owner's deadline
// check.
func (d *Dispatcher) putTimer(t *clock.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	d.timers.Put(t)
}

// routeReply forwards a service response to the original requester's
// ReplyTo (client endpoint or mailbox), or hands it to a blocked
// anonymous-RPC waiter. The delivering exchange (nil when the bridge
// synthesized the reply) is acknowledged with 202. With a sink, the
// forwarded leg defers its queue admission to the burst's batched flush
// instead of paying one transaction here.
func (d *Dispatcher) routeReply(ex *httpx.Exchange, env *soap.Envelope, h *wsa.Headers, entry pendingReply, sink *replySink) {
	d.RepliesRouted.Inc()
	if entry.waiter != nil {
		// The waiter consumes the reply on another exchange's goroutine
		// after this one's pooled body is released, so the envelope is
		// rendered here — while its tree is still valid — into a pooled
		// buffer whose ownership crosses with the channel send. h
		// carries the reply's addressing (parsed from the wire or
		// synthesized by the bridge), so this is the identity rewrite.
		buf := xmlsoap.GetBuffer()
		b, err := wsa.AppendRewritten(buf.B, env, h)
		if err != nil {
			xmlsoap.PutBuffer(buf)
			d.Rejected.Inc()
			d.fault(ex, httpx.StatusInternalServerError, soap.FaultServer, err.Error())
			return
		}
		buf.B = b
		d.deliverToWaiter(ex, buf, env.Version, entry)
		return
	}
	rewritten := *h
	rewritten.To = entry.replyTo.Address
	buf := xmlsoap.GetBuffer()
	b, err := wsa.AppendRewritten(buf.B, env, &rewritten)
	if err != nil {
		xmlsoap.PutBuffer(buf)
		d.Rejected.Inc()
		d.fault(ex, httpx.StatusInternalServerError, soap.FaultServer, err.Error())
		return
	}
	buf.B = b
	d.forwardReply(ex, buf, env.Version, entry.replyTo.Address, sink)
}

// deliverToWaiter hands a rendered reply buffer to the blocked
// anonymous-RPC waiter recorded in entry; ownership of buf crosses with
// the channel send. Shared by the tree and skim render paths.
func (d *Dispatcher) deliverToWaiter(ex *httpx.Exchange, buf *xmlsoap.Buffer, version soap.Version, entry pendingReply) {
	// The reply is stamped with the registration's generation: if
	// this send loses the race with the waiter's timeout and the
	// slot's recycling, whoever owns the slot next refuses it by
	// that stamp (see waiterSlot).
	select {
	case entry.waiter.ch <- anonReply{buf: buf, version: version, gen: entry.wgen}:
		d.RepliesDelivered.Inc()
	default:
		// The waiter gave up (timeout); the reply is dropped
		// exactly as a late RPC response would be.
		xmlsoap.PutBuffer(buf)
		d.DeliveryFailures.Inc()
	}
	d.accepted(ex)
}

// forwardReply admits a rendered reply toward addr — through the burst
// sink when one is active, else with its own queue transaction. Shared
// by the tree and skim render paths.
func (d *Dispatcher) forwardReply(ex *httpx.Exchange, buf *xmlsoap.Buffer, version soap.Version, addr string, sink *replySink) {
	if sink != nil {
		// Deferred admission: the burst's bridged replies admit together
		// through enqueueBatch when the sink flushes; Accepted and drop
		// accounting happen there. The address is a detached copy (the
		// pending entry's or the dispatcher's own), so holding it until
		// the flush is safe.
		sink.add(addr, outbound{payload: buf, version: version})
		d.accepted(ex)
		return
	}
	if !d.enqueue(outbound{payload: buf, version: version}, addr) {
		xmlsoap.PutBuffer(buf)
		d.QueueDrops.Inc()
		d.Rejected.Inc()
		d.fault(ex, httpx.StatusServiceUnavailable, soap.FaultServer,
			"reply queue full: "+addr)
		return
	}
	d.Accepted.Inc()
	d.accepted(ex)
}

// accepted answers ex with 202, when there is an exchange to answer.
func (d *Dispatcher) accepted(ex *httpx.Exchange) {
	if ex != nil {
		ex.ReplyBytes(httpx.StatusAccepted, nil)
	}
}

// SweepPending drops expired reply-routing entries and returns how many
// were removed. The core server calls it periodically.
func (d *Dispatcher) SweepPending() int {
	now := d.cfg.Clock.Now()
	var dead []string
	d.pending.Range(func(id string, p pendingReply) bool {
		if p.expires.Before(now) {
			dead = append(dead, id)
		}
		return true
	})
	for _, id := range dead {
		d.pending.Delete(id)
	}
	return len(dead)
}

// PendingLen reports retained reply-routing entries (for tests/metrics).
func (d *Dispatcher) PendingLen() int { return d.pending.Len() }

// fault answers ex with a SOAP 1.1 fault; on the bridge's exchange-less
// re-entry (ex nil) the verdict was already counted and goes nowhere.
func (d *Dispatcher) fault(ex *httpx.Exchange, status int, code, reason string) {
	if ex == nil {
		return
	}
	soap.ReplyFault(ex, status, code, reason)
}
