package msgdisp

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// countingConn / countingDialer instrument the dispatcher's delivery
// client: every Write on a delivery connection is counted, so the tests
// below can pin "one vectored write per burst" (one syscall on a real
// socket) rather than inferring it from timing.
type countingConn struct {
	net.Conn
	writes *atomic.Int64
}

func (c *countingConn) Write(b []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(b)
}

type countingDialer struct {
	inner  memNet
	writes atomic.Int64
}

func (d *countingDialer) DialTimeout(addr string, to time.Duration) (net.Conn, error) {
	c, err := d.inner.DialTimeout(addr, to)
	if err != nil {
		return nil, err
	}
	return &countingConn{Conn: c, writes: &d.writes}, nil
}

// reply202Server runs an httpx server at ln that acknowledges every
// message and counts them.
func reply202Server(t testing.TB, ln *memListener, served *atomic.Int64) *httpx.Server {
	srv := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		served.Add(1)
		ex.ReplyBytes(httpx.StatusAccepted, nil)
	}), httpx.ServerConfig{})
	srv.Start(ln)
	t.Cleanup(func() { srv.Close() })
	return srv
}

// rawMsg wraps s in a pooled buffer as a queued outbound reply-leg
// message (no SOAP parsing happens on the 202 settle path).
func rawMsg(s string) outbound {
	buf := xmlsoap.GetBuffer()
	buf.B = append(buf.B, s...)
	return outbound{payload: buf, version: soap.V11}
}

func newBatchDispatcher(t testing.TB, dialer httpx.Dialer, cfg Config) *Dispatcher {
	cfg.ReturnAddress = "http://wsd:9100/msg"
	disp := New(registry.New(registry.PolicyFirst, nil), httpx.NewClient(dialer, httpx.ClientConfig{}), cfg)
	if err := disp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(disp.Stop)
	return disp
}

// TestBurstSingleTimerRearm pins the burst amortization end to end: a
// pre-queued burst of BatchMax messages leaves the WsThread in ONE
// delivery write and re-arms the HoldOpen timer ONCE, and every pooled
// payload is back in the pool once the burst settles.
func TestBurstSingleTimerRearm(t *testing.T) {
	nets := memNet{"svc:80": newMemListener()}
	var served atomic.Int64
	srv := reply202Server(t, nets["svc:80"], &served)
	dialer := &countingDialer{inner: nets}
	disp := newBatchDispatcher(t, dialer, Config{BatchMax: 4})

	live0 := xmlsoap.PoolLive()
	msgs := []outbound{rawMsg("msg-0"), rawMsg("msg-1"), rawMsg("msg-2"), rawMsg("msg-3")}
	// enqueueBatch queues the whole burst before the WsThread spawns, so
	// the first drain pass deterministically sees all of it.
	if n := disp.enqueueBatch(msgs, "http://svc:80/in"); n != 4 {
		t.Fatalf("enqueueBatch admitted %d of 4", n)
	}
	waitFor(t, func() bool { return served.Load() == 4 })
	waitFor(t, func() bool { return disp.RepliesDelivered.Value() == 4 })
	waitFor(t, func() bool { return disp.HoldOpenRearms.Value() == 1 })
	if w := dialer.writes.Load(); w != 1 {
		t.Errorf("burst of 4 took %d delivery writes, want 1", w)
	}
	// Poolcheck: the burst's payload buffers must all be released. The
	// destination server is torn down first so its live connection's
	// reply-coalescing buffer (held for the connection's life, created
	// after live0 was sampled) does not read as a leak.
	srv.Close()
	waitFor(t, func() bool { return xmlsoap.PoolLive() <= live0 })
}

// TestBurstCapBoundary drives one message past BatchMax: the drain
// splits into a full burst plus a single-message pass — two writes, two
// timer re-arms — never an over-cap burst.
func TestBurstCapBoundary(t *testing.T) {
	nets := memNet{"svc:80": newMemListener()}
	var served atomic.Int64
	reply202Server(t, nets["svc:80"], &served)
	dialer := &countingDialer{inner: nets}
	disp := newBatchDispatcher(t, dialer, Config{BatchMax: 4})

	msgs := make([]outbound, 5)
	for i := range msgs {
		msgs[i] = rawMsg(fmt.Sprintf("msg-%d", i))
	}
	if n := disp.enqueueBatch(msgs, "http://svc:80/in"); n != 5 {
		t.Fatalf("enqueueBatch admitted %d of 5", n)
	}
	waitFor(t, func() bool { return disp.RepliesDelivered.Value() == 5 })
	waitFor(t, func() bool { return disp.HoldOpenRearms.Value() == 2 })
	if w := dialer.writes.Load(); w != 2 {
		t.Errorf("5 messages with BatchMax=4 took %d writes, want 2 (4+1)", w)
	}
}

// TestEnqueueBatchPrefixAdmission pins the one-transaction queue
// contract: a burst larger than the queue's remaining room admits its
// FIFO prefix and leaves the tail with the caller.
func TestEnqueueBatchPrefixAdmission(t *testing.T) {
	disp := newBatchDispatcher(t, memNet{}, Config{QueueCap: 3}) // no listeners: deliveries fail
	live0 := xmlsoap.PoolLive()
	msgs := make([]outbound, 5)
	for i := range msgs {
		msgs[i] = rawMsg(fmt.Sprintf("msg-%d", i))
	}
	n := disp.enqueueBatch(msgs, "http://nowhere:80/in")
	if n != 3 {
		t.Fatalf("enqueueBatch admitted %d of 5 with QueueCap 3, want 3", n)
	}
	for _, m := range msgs[n:] { // caller keeps the tail
		xmlsoap.PutBuffer(m.payload)
	}
	waitFor(t, func() bool { return disp.DeliveryFailures.Value() == 3 })
	waitFor(t, func() bool { return xmlsoap.PoolLive() <= live0 })
}

// TestBatchMidErrorRequeuesFIFO pins error isolation on the burst
// delivery path: when the destination answers part of a pipelined burst
// and drops the connection, the answered prefix is settled and the
// unanswered tail is requeued — and redelivered on a fresh connection in
// the original FIFO order, not dropped and not reordered.
func TestBatchMidErrorRequeuesFIFO(t *testing.T) {
	ln := newMemListener()
	nets := memNet{"svc:80": ln}

	const ack = "HTTP/1.1 202 Accepted\r\nContent-Length: 0\r\n\r\n"
	var mu sync.Mutex
	var conn2Bodies []string
	go func() {
		// First connection: answer two of the burst's five requests,
		// then slam the connection mid-batch.
		c1, err := ln.Accept()
		if err != nil {
			return
		}
		br := bufio.NewReader(c1)
		for i := 0; i < 2; i++ {
			if _, err := httpx.ReadRequest(br); err != nil {
				c1.Close()
				return
			}
		}
		c1.Write([]byte(ack + ack))
		c1.Close()
		// Second connection: serve the requeued tail, recording arrival
		// order.
		c2, err := ln.Accept()
		if err != nil {
			return
		}
		defer c2.Close()
		br2 := bufio.NewReader(c2)
		for i := 0; i < 3; i++ {
			req, err := httpx.ReadRequest(br2)
			if err != nil {
				return
			}
			mu.Lock()
			conn2Bodies = append(conn2Bodies, string(req.Body))
			mu.Unlock()
			if _, err := c2.Write([]byte(ack)); err != nil {
				return
			}
		}
	}()

	disp := newBatchDispatcher(t, nets, Config{DeliveryTimeout: 5 * time.Second})
	live0 := xmlsoap.PoolLive()
	msgs := make([]outbound, 5)
	for i := range msgs {
		msgs[i] = rawMsg(fmt.Sprintf("msg-%d", i))
	}
	if n := disp.enqueueBatch(msgs, "http://svc:80/in"); n != 5 {
		t.Fatalf("enqueueBatch admitted %d of 5", n)
	}
	waitFor(t, func() bool { return disp.RepliesDelivered.Value() == 5 })
	mu.Lock()
	got := append([]string(nil), conn2Bodies...)
	mu.Unlock()
	want := []string{"msg-2", "msg-3", "msg-4"}
	if len(got) != len(want) {
		t.Fatalf("second connection served %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("requeued tail out of order: got %q, want %q", got, want)
		}
	}
	if disp.DeliveryFailures.Value() != 0 {
		t.Errorf("DeliveryFailures = %d; the requeued tail must not count as failed", disp.DeliveryFailures.Value())
	}
	waitFor(t, func() bool { return xmlsoap.PoolLive() <= live0 })
}

// BenchmarkDispatchBatch measures the cross-message batching tentpole on
// the full dispatcher path: one client burst of 16 same-destination
// messages — pipelined into the dispatcher in one vectored write,
// acknowledged in one coalesced 202 flush, forwarded to the RPC echo
// service in WsThread bursts, their synchronous answers bridged and
// batch-admitted to the reply queue, and the replies burst-delivered to
// the client's message endpoint. Compare ns/msg against
// BenchmarkDispatchExchange's ns/op (one message per op over the same
// rig).
func BenchmarkDispatchBatch(b *testing.B) {
	const burst = 16
	nets := memNet{}
	nets["echo:80"] = newMemListener()
	nets["wsd:9100"] = newMemListener()
	nets["client:90"] = newMemListener()

	srvEcho := httpx.NewServer(echoservice.NewRPC(nil, 0), httpx.ServerConfig{})
	srvEcho.Start(nets["echo:80"])
	defer srvEcho.Close()

	reg := registry.New(registry.PolicyFirst, nil)
	reg.Register("echo-rpc", "http://echo:80/")
	disp := New(reg, httpx.NewClient(nets, httpx.ClientConfig{}), Config{
		ReturnAddress: "http://wsd:9100/msg",
	})
	if err := disp.Start(); err != nil {
		b.Fatal(err)
	}
	defer disp.Stop()
	srvDisp := httpx.NewServer(disp, httpx.ServerConfig{})
	srvDisp.Start(nets["wsd:9100"])
	defer srvDisp.Close()

	// The client's reply endpoint: counts delivered replies so each
	// iteration can wait for its burst to fully settle.
	notify := make(chan struct{}, 1024)
	srvReply := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		ex.ReplyBytes(httpx.StatusAccepted, nil)
		notify <- struct{}{}
	}), httpx.ServerConfig{})
	srvReply.Start(nets["client:90"])
	defer srvReply.Close()

	// 16 distinct messages (the pending-reply table is keyed by
	// MessageID), each expecting its reply at the client endpoint —
	// non-anonymous, so the burst is not serialized by blocked RPC waits.
	reqs := make([]*httpx.Request, burst)
	for i := range reqs {
		env := soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
			soap.Param{Name: "message", Value: "steady"})
		(&wsa.Headers{
			To:        LogicalScheme + "echo-rpc",
			Action:    echoservice.EchoNS + ":" + echoservice.EchoOp,
			MessageID: fmt.Sprintf("urn:uuid:00000000-0000-4000-8000-0000000000%02x", i),
			ReplyTo:   &wsa.EPR{Address: "http://client:90/msg"},
		}).Apply(env)
		raw, err := env.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		reqs[i] = httpx.NewRequest("POST", "/msg", raw)
		reqs[i].Header.Set("Content-Type", soap.V11.ContentType())
	}

	cli := httpx.NewClient(nets, httpx.ClientConfig{})
	defer cli.Close()
	stream := cli.Stream("wsd:9100")
	defer stream.Close()
	iter := func() {
		done, err := stream.DoBatch(reqs, 10*time.Second, func(i int, resp *httpx.Response) {
			if resp.Status != httpx.StatusAccepted {
				b.Fatalf("message %d: HTTP %d", i, resp.Status)
			}
		})
		if err != nil || done != burst {
			b.Fatalf("DoBatch = (%d, %v)", done, err)
		}
		for k := 0; k < burst; k++ {
			<-notify
		}
	}
	for i := 0; i < 5; i++ {
		iter()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*burst), "ns/msg")
}
