// Package rpcdisp implements the RPC-Dispatcher: the first of the paper's
// two WS-Dispatcher variants, a SOAP-aware forwarding HTTP proxy.
//
// Per §4.2, it is deliberately simple: "It uses one thread to parse the
// HTTP header, copy the XML message from the request to a new XML document
// that is then used in the RPC invocation between RPC-Dispatcher and the
// target WS. After the RPC-Dispatcher receives the result from the WS [it]
// copies it to the response for the client and sends it back on the same
// connection." The dispatcher therefore holds two connections per in-flight
// call — one to the client, one to the service — which is exactly the
// scalability limit Table 1 row (1) and Figures 4–5 measure.
//
// Request URLs take the form  POST /rpc/<logical-name> ; the logical name
// is resolved through the shared Registry.
package rpcdisp

import (
	"errors"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/httpx"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/stats"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// Config tunes a Dispatcher.
type Config struct {
	// Clock drives timeouts; defaults to the wall clock.
	Clock clock.Clock
	// ForwardTimeout bounds the dispatcher→service exchange. 0 means
	// 25s — slightly under the conventional 30s client budget so the
	// dispatcher can still report 504 on the original connection.
	ForwardTimeout time.Duration
	// PathPrefix is the URL prefix carrying the logical name.
	// Defaults to "/rpc/".
	PathPrefix string
	// Validate enables SOAP envelope inspection before forwarding (a
	// standard HTTP proxy "will not be able to do any inspection of
	// the SOAP traffic"; the WSD can). Malformed envelopes are refused
	// with a Client fault instead of burdening the service.
	Validate bool
	// MarkDeadOnError flags endpoints dead in the registry after a
	// forwarding failure so subsequent calls fail over.
	MarkDeadOnError bool
}

// Dispatcher is the RPC forwarding proxy. It implements httpx.Handler.
type Dispatcher struct {
	cfg      Config
	registry *registry.Registry
	client   *httpx.Client

	// Forwarded counts successfully proxied calls; LookupFailures,
	// BadRequests and ForwardFailures classify refusals. Failovers
	// counts retries onto a second backend after a failed attempt
	// (whether or not the retry then succeeded).
	Forwarded       stats.Counter
	LookupFailures  stats.Counter
	BadRequests     stats.Counter
	ForwardFailures stats.Counter
	Failovers       stats.Counter
	// Latency records end-to-end proxy time per forwarded call.
	Latency stats.Histogram
}

// New builds a dispatcher forwarding through client (which carries the
// dialer bound to the dispatcher's host) and resolving names in reg.
func New(reg *registry.Registry, client *httpx.Client, cfg Config) *Dispatcher {
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall
	}
	if cfg.ForwardTimeout == 0 {
		cfg.ForwardTimeout = 25 * time.Second
	}
	if cfg.PathPrefix == "" {
		cfg.PathPrefix = "/rpc/"
	}
	return &Dispatcher{cfg: cfg, registry: reg, client: client}
}

// Serve implements httpx.Handler: resolve, forward, relay.
func (d *Dispatcher) Serve(ex *httpx.Exchange) {
	start := d.cfg.Clock.Now()

	logical, ok := strings.CutPrefix(ex.Req.Path, d.cfg.PathPrefix)
	if !ok || logical == "" || strings.Contains(logical, "/") {
		d.BadRequests.Inc()
		soap.ReplyFault(ex, httpx.StatusNotFound, soap.FaultClient,
			"request path must be "+d.cfg.PathPrefix+"<logical-service-name>")
		return
	}

	if d.cfg.Validate {
		if d.validate(ex) {
			d.BadRequests.Inc()
			return
		}
	}

	// Resolve up to two live candidates so a failed forward can retry
	// once on a second backend without going back to the registry.
	var eps [2]*registry.Endpoint
	n, err := d.registry.ResolveN(logical, eps[:])
	if err != nil {
		d.LookupFailures.Inc()
		if errors.Is(err, registry.ErrNoLiveEndpoint) {
			soap.ReplyFault(ex, httpx.StatusServiceUnavailable, soap.FaultServer,
				"no live endpoint for "+logical)
			return
		}
		soap.ReplyFault(ex, httpx.StatusNotFound, soap.FaultClient,
			"unknown logical service "+logical+": "+err.Error())
		return
	}

	var lastErr error
	lastURL := ""
	for i := 0; i < n; i++ {
		ep := eps[i]
		addr, path, err := httpx.SplitURL(ep.URL)
		if err != nil {
			lastErr = errors.New("registry holds invalid endpoint")
			lastURL = ep.URL
			continue
		}
		if i > 0 {
			d.Failovers.Inc()
		}

		// Copy the XML message into a fresh request (the paper's "copy
		// the XML message from the request to a new XML document"):
		// hop-by-hop headers must not leak through a proxy. The
		// exchange still owns the body, so a failed attempt leaves it
		// intact for the retry.
		fwd := httpx.NewRequest("POST", path, ex.Req.Body)
		if ct := ex.Req.Header.Get("Content-Type"); ct != "" {
			fwd.Header.Set("Content-Type", ct)
		}
		if sa := ex.Req.Header.Get("SOAPAction"); sa != "" {
			fwd.Header.Set("SOAPAction", sa)
		}

		d.registry.Acquire(ep)
		resp, err := d.client.DoTimeout(addr, fwd, d.cfg.ForwardTimeout)
		d.registry.Release(ep)
		if err != nil {
			lastErr, lastURL = err, ep.URL
			if d.cfg.MarkDeadOnError {
				d.registry.MarkDead(logical, ep.URL)
			}
			continue
		}

		// Relay the service's answer on the original connection. The
		// service response's pooled body is not copied: the release duty
		// moves with the bytes — parked on the exchange's Defer hook, which
		// runs after the reply is written — so one buffer crosses two hops
		// with one release. That release also hands the forwarding
		// connection (which owns resp's struct) back to the pool, so the
		// copied Content-Type and the relayed body stay alive exactly as
		// long as they are needed and not a write longer.
		ex.Defer(resp.TakeBody())
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			ex.Header().Set("Content-Type", ct)
		}
		ex.ReplyBytes(resp.Status, resp.Body)
		d.Forwarded.Inc()
		d.Latency.Observe(d.cfg.Clock.Since(start))
		return
	}

	// Every candidate failed: one ForwardFailures tick per exchange, not
	// per attempt, so failure-rate counters still mean "calls refused".
	d.ForwardFailures.Inc()
	soap.ReplyFault(ex, httpx.StatusBadGateway, soap.FaultServer,
		"forward to "+lastURL+" failed: "+lastErr.Error())
}

// validate checks the body parses as SOAP and carries no mustUnderstand
// header block the dispatcher would silently violate. It replies with a
// fault and reports true when the message must be refused.
//
// Skim-first: an envelope the wsa skim accepts is by construction
// well-formed SOAP whose only header blocks are attribute-less
// WS-Addressing fields, so no mustUnderstand marking is possible and
// the relay leg never builds a parse tree for canonical traffic.
// Everything else falls through to the full inspection below.
func (d *Dispatcher) validate(ex *httpx.Exchange) bool {
	var sk wsa.Skim
	if wsa.SkimEnvelope(ex.Req.Body, &sk) {
		return false
	}
	env, err := soap.Parse(ex.Req.Body)
	if err != nil {
		soap.ReplyFault(ex, httpx.StatusBadRequest, soap.FaultClient,
			"invalid SOAP envelope: "+err.Error())
		return true
	}
	// The RPC dispatcher understands no header blocks itself; it only
	// relays. Blocks targeted at intermediaries with mustUnderstand
	// would be silently ignored, so refuse them.
	if v := env.MustUnderstandViolation(); v != nil {
		soap.ReplyFault(ex, httpx.StatusBadRequest, soap.FaultMustUnderstand,
			"header block "+v.Name.String()+" not understood by intermediary")
		return true
	}
	return false
}


// WSDLFor returns a WSDL-ish directory page: the browseable service list
// the paper imagines for the registry ("a simple browseable list of WSDL
// files with metadata"). Mounted by the core server at /registry.
func DirectoryPage(reg *registry.Registry) []byte {
	root := xmlsoap.New("urn:wsd:registry", "services")
	for _, name := range reg.Services() {
		entry, ok := reg.Lookup(name)
		if !ok {
			continue
		}
		svc := xmlsoap.New("urn:wsd:registry", "service").SetAttr("", "name", name)
		for _, ep := range entry.Endpoints() {
			e := xmlsoap.NewText("urn:wsd:registry", "endpoint", ep.URL)
			if !ep.Alive() {
				e.SetAttr("", "alive", "false")
			}
			svc.Add(e)
		}
		if doc := entry.Doc(); doc != nil {
			svc.Add(xmlsoap.NewText("urn:wsd:registry", "documentation", doc.Documentation))
		}
		root.Add(svc)
	}
	out, err := xmlsoap.MarshalDoc(root)
	if err != nil {
		return []byte("<services/>")
	}
	return out
}
