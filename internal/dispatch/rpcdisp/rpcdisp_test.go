package rpcdisp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/xmlsoap"
)

// rig: client → dispatcher (wsd) → echo services (ws1, ws2), all simulated.
type rig struct {
	clk    *clock.Virtual
	nw     *netsim.Network
	reg    *registry.Registry
	disp   *Dispatcher
	client *httpx.Client
	echo1  *echoservice.RPC
	echo2  *echoservice.RPC
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	nw := netsim.New(clk, 11)

	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws1 := nw.AddHost("ws1", netsim.ProfileLAN(), netsim.WithFirewall(netsim.OutboundOnlyExcept("wsd")))
	ws2 := nw.AddHost("ws2", netsim.ProfileLAN(), netsim.WithFirewall(netsim.OutboundOnlyExcept("wsd")))
	cli := nw.AddHost("cli", netsim.ProfileLAN())

	r := &rig{clk: clk, nw: nw}

	r.echo1 = echoservice.NewRPC(clk, 0)
	ln1, _ := ws1.Listen(80)
	srv1 := httpx.NewServer(r.echo1, httpx.ServerConfig{Clock: clk})
	srv1.Start(ln1)
	t.Cleanup(func() { srv1.Close() })

	r.echo2 = echoservice.NewRPC(clk, 0)
	ln2, _ := ws2.Listen(80)
	srv2 := httpx.NewServer(r.echo2, httpx.ServerConfig{Clock: clk})
	srv2.Start(ln2)
	t.Cleanup(func() { srv2.Close() })

	r.reg = registry.New(registry.PolicyRoundRobin, clk)
	r.reg.Register("echo", "http://ws1:80/", "http://ws2:80/")

	cfg.Clock = clk
	fwdClient := httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk})
	r.disp = New(r.reg, fwdClient, cfg)
	lnD, _ := wsd.Listen(9000)
	srvD := httpx.NewServer(r.disp, httpx.ServerConfig{Clock: clk})
	srvD.Start(lnD)
	t.Cleanup(func() { srvD.Close() })

	r.client = httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
	t.Cleanup(r.client.Close)
	return r
}

func echoRequest(t *testing.T, msg string) *httpx.Request {
	t.Helper()
	body, err := soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
		soap.Param{Name: "message", Value: msg}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	req := httpx.NewRequest("POST", "/rpc/echo", body)
	req.Header.Set("Content-Type", soap.V11.ContentType())
	return req
}

func TestForwardsThroughFirewall(t *testing.T) {
	r := newRig(t, Config{})
	resp, err := r.client.Do("wsd:9000", echoRequest(t, "hello"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusOK {
		t.Fatalf("status = %d body=%s", resp.Status, resp.Body)
	}
	env, _ := soap.Parse(resp.Body)
	results, err := soap.ParseRPCResponse(env, echoservice.EchoOp)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Value != "hello" {
		t.Fatalf("echo = %+v", results)
	}
	if r.disp.Forwarded.Value() != 1 {
		t.Fatalf("Forwarded = %d", r.disp.Forwarded.Value())
	}
	// The client cannot reach ws1 directly — that's the point.
	if _, err := r.client.DoTimeout("ws1:80", echoRequest(t, "direct"), time.Second); err == nil {
		t.Fatal("direct call through firewall succeeded")
	}
}

func TestRoundRobinAcrossFarm(t *testing.T) {
	r := newRig(t, Config{})
	for i := 0; i < 6; i++ {
		if _, err := r.client.Do("wsd:9000", echoRequest(t, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if r.echo1.Handled.Value() != 3 || r.echo2.Handled.Value() != 3 {
		t.Fatalf("farm split = %d/%d, want 3/3",
			r.echo1.Handled.Value(), r.echo2.Handled.Value())
	}
}

func TestUnknownServiceReturns404Fault(t *testing.T) {
	r := newRig(t, Config{})
	body, _ := soap.RPCRequest(soap.V11, "urn:x", "op").Marshal()
	resp, err := r.client.Do("wsd:9000", httpx.NewRequest("POST", "/rpc/ghost", body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusNotFound {
		t.Fatalf("status = %d", resp.Status)
	}
	env, err := soap.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := soap.AsFault(env); !ok || f.Code != soap.FaultClient {
		t.Fatalf("fault = %+v, %v", f, ok)
	}
	if r.disp.LookupFailures.Value() != 1 {
		t.Fatalf("LookupFailures = %d", r.disp.LookupFailures.Value())
	}
}

func TestBadPathRejected(t *testing.T) {
	r := newRig(t, Config{})
	for _, path := range []string{"/rpc/", "/other/echo", "/rpc/a/b"} {
		resp, err := r.client.Do("wsd:9000", httpx.NewRequest("POST", path, []byte("<x/>")))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != httpx.StatusNotFound {
			t.Fatalf("path %q: status = %d", path, resp.Status)
		}
	}
}

func TestValidateRejectsMalformedSOAP(t *testing.T) {
	r := newRig(t, Config{Validate: true})
	req := httpx.NewRequest("POST", "/rpc/echo", []byte("not soap at all"))
	resp, err := r.client.Do("wsd:9000", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusBadRequest {
		t.Fatalf("status = %d", resp.Status)
	}
	// The garbage never reached the service.
	if r.echo1.Handled.Value()+r.echo2.Handled.Value() != 0 {
		t.Fatal("malformed request forwarded")
	}
}

func TestValidateRejectsMustUnderstand(t *testing.T) {
	r := newRig(t, Config{Validate: true})
	env := soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
		soap.Param{Name: "message", Value: "x"})
	hdr := xmlsoap.New("urn:critical:ext", "MustHandle")
	hdr.SetAttr(soap.NS11, "mustUnderstand", "1")
	env.AddHeader(hdr)
	raw, _ := env.Marshal()
	resp, err := r.client.Do("wsd:9000", httpx.NewRequest("POST", "/rpc/echo", raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusBadRequest {
		t.Fatalf("status = %d", resp.Status)
	}
	fenv, _ := soap.Parse(resp.Body)
	if f, ok := soap.AsFault(fenv); !ok || !strings.Contains(f.Reason, "not understood") {
		t.Fatalf("fault = %+v", f)
	}
}

func TestFailoverRetriesSecondBackend(t *testing.T) {
	r := newRig(t, Config{MarkDeadOnError: true, ForwardTimeout: 2 * time.Second})
	// Register a dead endpoint first in line under PolicyFirst.
	reg2 := registry.New(registry.PolicyFirst, r.clk)
	reg2.Register("echo", "http://nowhere:1/", "http://ws1:80/")
	r.disp.registry = reg2

	// First call hits the dead endpoint, fails over, and still succeeds
	// on the original connection.
	resp, err := r.client.Do("wsd:9000", echoRequest(t, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusOK {
		t.Fatalf("first status = %d body=%s", resp.Status, resp.Body)
	}
	if got := r.disp.Failovers.Value(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	if got := r.disp.ForwardFailures.Value(); got != 0 {
		t.Fatalf("ForwardFailures = %d, want 0 (exchange succeeded)", got)
	}

	// The failed endpoint was marked dead, so the second call routes
	// straight to the live backend without another failover.
	resp, err = r.client.Do("wsd:9000", echoRequest(t, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusOK {
		t.Fatalf("second status = %d body=%s", resp.Status, resp.Body)
	}
	if got := r.disp.Failovers.Value(); got != 1 {
		t.Fatalf("Failovers after second call = %d, want still 1", got)
	}
}

func TestAllBackendsDeadReturns503(t *testing.T) {
	r := newRig(t, Config{MarkDeadOnError: true, ForwardTimeout: 2 * time.Second})
	reg2 := registry.New(registry.PolicyFirst, r.clk)
	reg2.Register("echo", "http://nowhere:1/", "http://elsewhere:1/")
	r.disp.registry = reg2

	// Both attempts fail: one 502, one ForwardFailures tick for the
	// whole exchange, and both endpoints get marked dead.
	resp, err := r.client.Do("wsd:9000", echoRequest(t, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusBadGateway {
		t.Fatalf("first status = %d", resp.Status)
	}
	if got := r.disp.ForwardFailures.Value(); got != 1 {
		t.Fatalf("ForwardFailures = %d, want 1 (per exchange, not per attempt)", got)
	}
	if got := r.disp.Failovers.Value(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}

	// With every endpoint dead the next call is refused up front.
	resp, err = r.client.Do("wsd:9000", echoRequest(t, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusServiceUnavailable {
		t.Fatalf("all-dead status = %d, want 503", resp.Status)
	}
	if got := r.disp.LookupFailures.Value(); got != 1 {
		t.Fatalf("LookupFailures = %d, want 1", got)
	}
}

func TestSlowServiceTimesOutWith502(t *testing.T) {
	r := newRig(t, Config{ForwardTimeout: time.Second})
	r.echo1.ServiceTime = 10 * time.Second
	r.echo2.ServiceTime = 10 * time.Second
	resp, err := r.client.Do("wsd:9000", echoRequest(t, "slow"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusBadGateway {
		t.Fatalf("status = %d", resp.Status)
	}
	if r.disp.ForwardFailures.Value() != 1 {
		t.Fatalf("ForwardFailures = %d", r.disp.ForwardFailures.Value())
	}
}

func TestDirectoryPage(t *testing.T) {
	r := newRig(t, Config{})
	page := string(DirectoryPage(r.reg))
	for _, want := range []string{`name="echo"`, "http://ws1:80/", "http://ws2:80/"} {
		if !strings.Contains(page, want) {
			t.Fatalf("directory page missing %q:\n%s", want, page)
		}
	}
}
