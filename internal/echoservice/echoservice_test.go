package echoservice

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// rig wires an RPC echo service, an async echo service, and a client
// endpoint over the simulated network.
type rig struct {
	clk     *clock.Virtual
	nw      *netsim.Network
	rpc     *RPC
	async   *Async
	cliHost *netsim.Host
	client  *httpx.Client
	// inbox receives messages POSTed to the client's own endpoint.
	inbox chan *soap.Envelope
}

func newRig(t *testing.T, clientFirewalled bool) *rig {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	nw := netsim.New(clk, 5)

	ws := nw.AddHost("ws", netsim.ProfileLAN())
	var cliOpts []netsim.HostOption
	if clientFirewalled {
		cliOpts = append(cliOpts, netsim.WithFirewall(netsim.OutboundOnly()))
	}
	cli := nw.AddHost("cli", netsim.ProfileLAN(), cliOpts...)

	r := &rig{clk: clk, nw: nw, cliHost: cli, inbox: make(chan *soap.Envelope, 64)}

	// RPC echo on ws:80.
	r.rpc = NewRPC(clk, 0)
	lnRPC, _ := ws.Listen(80)
	srvRPC := httpx.NewServer(r.rpc, httpx.ServerConfig{Clock: clk})
	srvRPC.Start(lnRPC)
	t.Cleanup(func() { srvRPC.Close() })

	// Async echo on ws:81, replying through ws's own client.
	wsClient := httpx.NewClient(ws, httpx.ClientConfig{Clock: clk})
	r.async = NewAsync(clk, wsClient, 0)
	r.async.OwnAddress = "http://ws:81/msg"
	r.async.ReplyTimeout = 2 * time.Second
	lnAsync, _ := ws.Listen(81)
	srvAsync := httpx.NewServer(r.async, httpx.ServerConfig{Clock: clk})
	srvAsync.Start(lnAsync)
	t.Cleanup(func() { srvAsync.Close() })

	// Client's own message endpoint on cli:90.
	lnCli, _ := cli.Listen(90)
	srvCli := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		if env, err := soap.Parse(ex.Req.Body); err == nil {
			r.inbox <- env.Detach()
		}
		ex.ReplyBytes(httpx.StatusAccepted, nil)
	}), httpx.ServerConfig{Clock: clk})
	srvCli.Start(lnCli)
	t.Cleanup(func() { srvCli.Close() })

	r.client = httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
	t.Cleanup(r.client.Close)
	return r
}

func TestRPCEchoRoundTrip(t *testing.T) {
	r := newRig(t, false)
	body, _ := soap.RPCRequest(soap.V11, EchoNS, EchoOp,
		soap.Param{Name: "message", Value: "ping-1"}).Marshal()
	req := httpx.NewRequest("POST", "/", body)
	req.Header.Set("Content-Type", soap.V11.ContentType())
	resp, err := r.client.Do("ws:80", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusOK {
		t.Fatalf("status = %d body=%s", resp.Status, resp.Body)
	}
	env, err := soap.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	results, err := soap.ParseRPCResponse(env, EchoOp)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Value != "ping-1" {
		t.Fatalf("results = %+v", results)
	}
	if r.rpc.Handled.Value() != 1 {
		t.Fatalf("Handled = %d", r.rpc.Handled.Value())
	}
}

func TestRPCEchoRejectsGarbage(t *testing.T) {
	r := newRig(t, false)
	req := httpx.NewRequest("POST", "/", []byte("this is not xml"))
	resp, err := r.client.Do("ws:80", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusBadRequest {
		t.Fatalf("status = %d", resp.Status)
	}
	if r.rpc.Rejected.Value() != 1 {
		t.Fatalf("Rejected = %d", r.rpc.Rejected.Value())
	}
}

func TestRPCEchoServiceTimeCharged(t *testing.T) {
	r := newRig(t, false)
	r.rpc.ServiceTime = 300 * time.Millisecond
	body, _ := soap.RPCRequest(soap.V11, EchoNS, EchoOp,
		soap.Param{Name: "message", Value: "x"}).Marshal()
	start := r.clk.Now()
	if _, err := r.client.Do("ws:80", httpx.NewRequest("POST", "/", body)); err != nil {
		t.Fatal(err)
	}
	if got := r.clk.Since(start); got < 300*time.Millisecond {
		t.Fatalf("call took %v, want >= service time", got)
	}
}

func sendAsync(t *testing.T, r *rig, replyTo string) {
	t.Helper()
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText(EchoNS, "echo", "async-ping"))
	h := &wsa.Headers{
		To:        "http://ws:81/msg",
		Action:    EchoNS + ":echo",
		MessageID: wsa.NewMessageID(),
	}
	if replyTo != "" {
		h.ReplyTo = &wsa.EPR{Address: replyTo}
	}
	h.Apply(env)
	raw, _ := env.Marshal()
	resp, err := r.client.Do("ws:81", httpx.NewRequest("POST", "/msg", raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusAccepted {
		t.Fatalf("status = %d", resp.Status)
	}
}

func TestAsyncEchoRepliesToReachableClient(t *testing.T) {
	r := newRig(t, false)
	sendAsync(t, r, "http://cli:90/msg")
	select {
	case env := <-r.inbox:
		h, err := wsa.FromEnvelope(env)
		if err != nil {
			t.Fatal(err)
		}
		if h.RelatesTo == "" {
			t.Fatal("reply missing RelatesTo")
		}
		if env.BodyElement().Text != "async-ping" {
			t.Fatalf("reply body = %s", env.BodyElement())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no reply received")
	}
	waitFor(t, func() bool { return r.async.RepliesSent.Value() == 1 })
}

func TestAsyncEchoBlockedByFirewall(t *testing.T) {
	r := newRig(t, true) // client firewalled
	sendAsync(t, r, "http://cli:90/msg")
	// The send is accepted, but the reply leg must fail.
	waitFor(t, func() bool { return r.async.ReplyFailures.Value() == 1 })
	if r.async.Accepted.Value() != 1 {
		t.Fatalf("Accepted = %d", r.async.Accepted.Value())
	}
	select {
	case <-r.inbox:
		t.Fatal("reply crossed the firewall")
	default:
	}
}

func TestAsyncEchoNoReplyToIsFireAndForget(t *testing.T) {
	r := newRig(t, false)
	sendAsync(t, r, "")
	r.clk.Sleep(3 * time.Second)
	if r.async.RepliesSent.Value() != 0 || r.async.ReplyFailures.Value() != 0 {
		t.Fatalf("sent=%d failed=%d, want no reply attempts",
			r.async.RepliesSent.Value(), r.async.ReplyFailures.Value())
	}
}

func TestAsyncEchoNoneAddressSkipsReply(t *testing.T) {
	r := newRig(t, false)
	sendAsync(t, r, wsa.None)
	r.clk.Sleep(3 * time.Second)
	if r.async.RepliesSent.Value() != 0 {
		t.Fatal("reply sent to the None address")
	}
}

func TestAsyncEchoRejectsMissingAddressing(t *testing.T) {
	r := newRig(t, false)
	env := soap.New(soap.V11).SetBody(xmlsoap.New(EchoNS, "echo"))
	raw, _ := env.Marshal()
	resp, err := r.client.Do("ws:81", httpx.NewRequest("POST", "/msg", raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusBadRequest {
		t.Fatalf("status = %d", resp.Status)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
