// Package echoservice implements the Web Service under test in the
// paper's evaluation: an echo service, "essentially ... very similar to
// the ping command" (§4.3). It comes in the two styles Table 1
// distinguishes:
//
//   - RPC: answers echo calls on the same connection (rows 1 and 3);
//   - Async: accepts one-way WS-Addressing messages with 202 Accepted and
//     sends the reply as a *new* HTTP request to the sender's ReplyTo
//     (rows 2 and 4) — which is precisely what a firewall blocks when the
//     client has no reachable endpoint.
//
// A configurable ServiceTime models host speed (the paper's inriaSlow
// P3@1GHz vs inriaFast P4@3.4GHz).
package echoservice

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/httpx"
	"repro/internal/pool"
	"repro/internal/soap"
	"repro/internal/stats"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// EchoNS is the echo service namespace.
const EchoNS = "urn:wsd:echo"

// EchoOp is the RPC operation name.
const EchoOp = "echoMessage"

// RPC is the request/response echo service. It implements httpx.Handler.
type RPC struct {
	// Clock drives the simulated service time.
	Clock clock.Clock
	// Version selects the SOAP version of responses.
	Version soap.Version
	// ServiceTime is the simulated per-call processing cost.
	ServiceTime time.Duration

	// Handled counts answered calls; Rejected counts malformed ones.
	Handled  stats.Counter
	Rejected stats.Counter

	// respName caches the "<op>Response" wrapper name for the operation
	// last served: an echo service sees one operation for its lifetime,
	// so the concatenation (and the detached copy of the operation name
	// it is compared against) amortizes to zero.
	respName atomic.Pointer[respName]
	// scratch recycles the per-call response skeleton (see rpcScratch).
	scratch sync.Pool
}

// respName is a cached operation → wrapper-name pair. op is detached
// (the served operation name aliases the request buffer).
type respName struct {
	op, resp string
}

// rpcScratch is the reusable response skeleton of one echo call: the
// wrapper element whose children are spliced straight from the parsed
// request (they die with the exchange, and the render completes inside
// Serve) and the envelope around it. Nothing survives the call, so the
// whole response costs zero steady-state allocations.
type rpcScratch struct {
	wrapper xmlsoap.Element
	body    [1]*xmlsoap.Element
	env     soap.Envelope
}

// NewRPC returns an RPC echo service.
func NewRPC(clk clock.Clock, serviceTime time.Duration) *RPC {
	if clk == nil {
		clk = clock.Wall
	}
	return &RPC{Clock: clk, Version: soap.V11, ServiceTime: serviceTime}
}

// Serve implements httpx.Handler.
func (s *RPC) Serve(ex *httpx.Exchange) {
	env, err := soap.Parse(ex.Req.Body)
	if err != nil {
		s.Rejected.Inc()
		soap.ReplyFault(ex, httpx.StatusBadRequest, soap.FaultClient, "bad envelope: "+err.Error())
		return
	}
	// The checks soap.ParseRPC would perform, without building a Call
	// nobody reads: the echo response needs only the wrapper name and
	// the parameter elements, both already in the parsed tree.
	wrapper := env.BodyElement()
	if wrapper == nil {
		s.Rejected.Inc()
		soap.ReplyFault(ex, httpx.StatusBadRequest, soap.FaultClient, "bad RPC call: empty RPC body")
		return
	}
	if f, ok := soap.AsFault(env); ok {
		s.Rejected.Inc()
		soap.ReplyFault(ex, httpx.StatusBadRequest, soap.FaultClient, "bad RPC call: "+f.Error())
		return
	}
	if s.ServiceTime > 0 {
		s.Clock.Sleep(s.ServiceTime)
	}
	// Echo every parameter back, unchanged — the parsed parameter
	// elements are spliced into the response as-is (they die with this
	// exchange, and the render below happens before Serve returns).
	// Render straight into a pooled buffer that the connection releases
	// after writing the reply — no per-call body or struct allocation.
	rn := s.respName.Load()
	if rn == nil || rn.op != wrapper.Name.Local {
		rn = &respName{
			op:   strings.Clone(wrapper.Name.Local),
			resp: wrapper.Name.Local + "Response",
		}
		s.respName.Store(rn)
	}
	sc, _ := s.scratch.Get().(*rpcScratch)
	if sc == nil {
		sc = &rpcScratch{}
	}
	sc.wrapper = xmlsoap.Element{
		Name:     xmlsoap.Name{Space: wrapper.Name.Space, Local: rn.resp},
		Children: wrapper.Children,
	}
	sc.body[0] = &sc.wrapper
	sc.env = soap.Envelope{Version: env.Version, Body: sc.body[:1]}
	err = ex.Reply(httpx.StatusOK, func(dst []byte) ([]byte, error) {
		return wsa.AppendEnvelope(dst, &sc.env)
	})
	sc.wrapper = xmlsoap.Element{}
	sc.body[0] = nil
	sc.env = soap.Envelope{}
	s.scratch.Put(sc)
	if err != nil {
		soap.ReplyFault(ex, httpx.StatusInternalServerError, soap.FaultServer, err.Error())
		return
	}
	s.Handled.Inc()
	ex.Header().Set("Content-Type", env.Version.ContentType())
}

// Async is the message-style echo service. It implements httpx.Handler.
type Async struct {
	// Clock drives service time and reply timeouts.
	Clock clock.Clock
	// Client posts reply messages to the requester's ReplyTo address;
	// its dialer is bound to the service's host.
	Client *httpx.Client
	// ServiceTime is the simulated per-message processing cost.
	ServiceTime time.Duration
	// ReplyTimeout bounds each reply delivery attempt; this is the
	// stall the service pays per message when the ReplyTo is
	// firewalled (Figure 6's "response blocked" series). 0 means 21s.
	ReplyTimeout time.Duration
	// OwnAddress is this service's address, stamped as reply From.
	OwnAddress string

	// replyPool, when set via LimitReplies, bounds concurrent reply
	// deliveries the way a 2004 servlet container's thread pool did.
	// With every reply stalled at a firewall, the pool saturates and
	// new messages are refused — "the Web Service tried to send back
	// response but the connection was discarded which led to fewer
	// messages accepted by the Web Service" (Figure 6).
	replyPool *pool.Pool

	// Accepted counts messages taken in; RepliesSent / ReplyFailures
	// split the outcome of the reply leg; RefusedBusy counts messages
	// turned away because the reply pool was saturated.
	Accepted      stats.Counter
	Rejected      stats.Counter
	RepliesSent   stats.Counter
	ReplyFailures stats.Counter
	RefusedBusy   stats.Counter
}

// LimitReplies installs a bounded reply pool: at most workers concurrent
// reply deliveries with backlog queued behind them. Must be called before
// serving; Close releases the pool.
func (s *Async) LimitReplies(workers, backlog int) error {
	s.replyPool = pool.New(pool.Config{Core: workers, Backlog: backlog})
	return s.replyPool.Start()
}

// Close stops the reply pool, if any.
func (s *Async) Close() {
	if s.replyPool != nil {
		s.replyPool.Stop()
	}
}

// NewAsync returns a message-style echo service sending replies through
// client.
func NewAsync(clk clock.Clock, client *httpx.Client, serviceTime time.Duration) *Async {
	if clk == nil {
		clk = clock.Wall
	}
	return &Async{Clock: clk, Client: client, ServiceTime: serviceTime, ReplyTimeout: 21 * time.Second}
}

// Serve implements httpx.Handler: accept with 202, then reply
// asynchronously to the message's ReplyTo.
func (s *Async) Serve(ex *httpx.Exchange) {
	env, err := soap.Parse(ex.Req.Body)
	if err != nil {
		s.Rejected.Inc()
		soap.ReplyFault(ex, httpx.StatusBadRequest, soap.FaultClient, "bad envelope: "+err.Error())
		return
	}
	h, err := wsa.FromEnvelope(env)
	if err != nil {
		s.Rejected.Inc()
		soap.ReplyFault(ex, httpx.StatusBadRequest, soap.FaultClient, "bad addressing: "+err.Error())
		return
	}
	// The reply leg runs outside the accept path, as in the paper's
	// message-oriented design: acceptance is decoupled from delivery.
	// env (and through it ex.Req.Body, which the parsed tree aliases)
	// must stay live until the reply renders, which outlasts this Serve
	// call — so the reply leg takes over the pooled body's release duty
	// and returns the buffer when it finishes. Taking happens before the
	// submit so the worker cannot race the connection's end-of-exchange
	// release; the worker holds the parsed data only, never the reused
	// Exchange.
	release := ex.TakeBody()
	if s.replyPool != nil {
		if err := s.replyPool.TrySubmit(func() { s.reply(env, h, release) }); err != nil {
			release()
			s.RefusedBusy.Inc()
			soap.ReplyFault(ex, httpx.StatusServiceUnavailable, soap.FaultServer,
				"service reply workers exhausted")
			return
		}
	} else {
		go s.reply(env, h, release)
	}
	s.Accepted.Inc()
	ex.ReplyBytes(httpx.StatusAccepted, nil)
}

// reply builds and posts the echo reply. Failures (firewalled ReplyTo,
// missing ReplyTo) are counted, not retried — retry policy belongs to the
// reliable-delivery layer. release returns the request-body buffer that
// env and h alias; it runs when the reply leg is done with them.
func (s *Async) reply(env *soap.Envelope, h *wsa.Headers, release func()) {
	defer release()
	if s.ServiceTime > 0 {
		s.Clock.Sleep(s.ServiceTime)
	}
	if h.ReplyTo == nil || h.ReplyTo.Address == "" || h.ReplyTo.Address == wsa.None {
		return // fire-and-forget message
	}
	// The reply echoes the request body in place: no clone is needed
	// because the serializer reads the tree without mutating it and env
	// is not touched after this point.
	echoed := env.BodyElement()
	if echoed == nil {
		echoed = xmlsoap.New(EchoNS, "echoResponse")
	}
	out := soap.New(env.Version).SetBody(echoed)
	rh := &wsa.Headers{
		To:        h.ReplyTo.Address,
		Action:    EchoNS + ":echoReply",
		MessageID: wsa.NewMessageID(),
		RelatesTo: h.MessageID,
	}
	if s.OwnAddress != "" {
		rh.From = &wsa.EPR{Address: s.OwnAddress}
	}
	buf := xmlsoap.GetBuffer()
	defer xmlsoap.PutBuffer(buf)
	b, err := wsa.AppendRewritten(buf.B, out, rh)
	if err != nil {
		s.ReplyFailures.Inc()
		return
	}
	buf.B = b
	addr, path, err := httpx.SplitURL(h.ReplyTo.Address)
	if err != nil {
		s.ReplyFailures.Inc()
		return
	}
	post := httpx.NewRequest("POST", path, b)
	post.Header.Set("Content-Type", env.Version.ContentType())
	timeout := s.ReplyTimeout
	if timeout == 0 {
		timeout = 21 * time.Second
	}
	resp, err := s.Client.DoTimeout(addr, post, timeout)
	var status int
	if resp != nil {
		// Status is read before Release: the release returns the reused
		// Response struct with its connection.
		status = resp.Status
		resp.Release() // ack body (if any) is unused
	}
	if err != nil || status >= 300 {
		s.ReplyFailures.Inc()
		return
	}
	s.RepliesSent.Inc()
}

