package wsa

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/soap"
	"repro/internal/xmlsoap"
	"repro/internal/xmlsoap/refcodec"
)

// seedEnvelopeBytes renders env exactly as the seed codec did:
// Envelope.Tree() through the frozen reference serializer with prolog.
func seedEnvelopeBytes(t *testing.T, env *soap.Envelope) []byte {
	t.Helper()
	b, err := refcodec.MarshalDoc(env.Tree())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func checkIdentical(t *testing.T, env *soap.Envelope) {
	t.Helper()
	want := seedEnvelopeBytes(t, env)
	got, err := MarshalEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire drift:\nseed: %q\nnew:  %q", want, got)
	}
	general, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(general, want) {
		t.Fatalf("general-path drift:\nseed: %q\nnew:  %q", want, general)
	}
}

// TestSkeletonGoldenAllShapes proves the skeleton cache emits bytes
// identical to the seed codec for every header-shape mask, both SOAP
// versions, and several body payloads — including escaping edge cases
// in header values and body content.
func TestSkeletonGoldenAllShapes(t *testing.T) {
	bodies := map[string]*xmlsoap.Element{
		"simple":      xmlsoap.NewText("urn:wsd:echo", "echo", "payload"),
		"escaped":     xmlsoap.NewText("urn:wsd:echo", "echo", `a&b<c>d"e`),
		"foreign-ns":  xmlsoap.New("urn:x:1", "op").Add(xmlsoap.New("urn:x:2", "inner")),
		"wsa-in-body": xmlsoap.New("urn:x:1", "op").Add(xmlsoap.New(NS, "EndpointReference")),
		"attrs":       xmlsoap.New("urn:x:1", "op").SetAttr("", "k", "v<&>").SetAttr("urn:x:2", "q", "w"),
	}
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		for mask := 0; mask < 1<<len(fieldLocals); mask++ {
			for bodyName, body := range bodies {
				env := soap.New(v).SetBody(body)
				for f, local := range fieldLocals {
					if mask&(1<<f) == 0 {
						continue
					}
					val := fmt.Sprintf("urn:val:%s:%d", local, f)
					if local == "To" {
						val = `http://host:99/path?a=1&b="2"` // escaping in a slot
					}
					if f < eprFieldStart {
						env.AddHeader(xmlsoap.NewText(NS, local, val))
					} else {
						env.AddHeader((&EPR{Address: val}).Element(local))
					}
				}
				t.Run(fmt.Sprintf("v%d/mask=%#x/%s", v, mask, bodyName), func(t *testing.T) {
					checkIdentical(t, env)
				})
			}
		}
	}
}

// TestSkeletonFallbackShapes proves the shapes the skeleton cannot
// express fall back to the general path and still match the seed codec
// byte for byte.
func TestSkeletonFallbackShapes(t *testing.T) {
	body := xmlsoap.NewText("urn:wsd:echo", "echo", "p")
	cases := map[string]*soap.Envelope{
		"empty-body": func() *soap.Envelope {
			e := soap.New(soap.V11)
			(&Headers{To: "http://a/b", MessageID: "urn:uuid:1"}).Apply(e)
			return e
		}(),
		"epr-with-properties": func() *soap.Envelope {
			e := soap.New(soap.V11).SetBody(body.Clone())
			e.AddHeader((&EPR{Address: "http://a/b", Properties: map[string]string{"token": "t", "box": "b"}}).Element("ReplyTo"))
			return e
		}(),
		"foreign-header-block": soap.New(soap.V11).SetBody(body.Clone()).
			AddHeader(xmlsoap.NewText("urn:other", "Security", "s"),
				xmlsoap.NewText(NS, "To", "http://a/b")),
		"must-understand-attr": soap.New(soap.V11).SetBody(body.Clone()).
			AddHeader(xmlsoap.NewText(NS, "To", "http://a/b").
				SetAttr(soap.NS11, "mustUnderstand", "1")),
		"out-of-order": soap.New(soap.V11).SetBody(body.Clone()).
			AddHeader(xmlsoap.NewText(NS, "MessageID", "urn:uuid:1"),
				xmlsoap.NewText(NS, "To", "http://a/b")),
		"duplicate-block": soap.New(soap.V11).SetBody(body.Clone()).
			AddHeader(xmlsoap.NewText(NS, "To", "http://a/b"),
				xmlsoap.NewText(NS, "To", "http://c/d")),
		"empty-text-block": soap.New(soap.V11).SetBody(body.Clone()).
			AddHeader(xmlsoap.New(NS, "To")),
		"epr-extra-child": soap.New(soap.V11).SetBody(body.Clone()).
			AddHeader(xmlsoap.New(NS, "ReplyTo").Add(
				xmlsoap.NewText(NS, "Address", "http://a/b"),
				xmlsoap.NewText(NS, "PortType", "x"))),
		"multi-element-body": soap.New(soap.V11).SetBody(
			xmlsoap.New("urn:x:1", "first"), xmlsoap.New("urn:x:2", "second")),
	}
	for name, env := range cases {
		t.Run(name, func(t *testing.T) { checkIdentical(t, env) })
	}
}

// TestSkeletonMatchesApply proves the classifier accepts exactly what
// Headers.Apply produces, so dispatcher-rewritten envelopes ride the
// fast path.
func TestSkeletonMatchesApply(t *testing.T) {
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText("urn:wsd:echo", "echo", "m"))
	(&Headers{
		To:        "http://ws:81/msg",
		Action:    "urn:wsd:echo:echo",
		MessageID: NewMessageID(),
		RelatesTo: NewMessageID(),
		From:      &EPR{Address: "http://client:90/msg"},
		ReplyTo:   &EPR{Address: "http://wsd:9100/msg"},
	}).Apply(env)
	var vals [len(fieldLocals)]string
	mask, n, ok := classify(env, &vals)
	if !ok {
		t.Fatal("classify rejected an Apply-shaped envelope")
	}
	if n != 6 || mask != 0b0111111 {
		t.Fatalf("classify mask=%#b n=%d", mask, n)
	}
	checkIdentical(t, env)
}

// TestAppendRewrittenMatchesApply proves the fused rewrite path emits
// bytes identical to the Apply + AppendEnvelope sequence it replaces,
// across fast-path shapes and every fallback reason (reference
// properties, foreign header blocks, empty bodies, empty EPR
// addresses). Two envelope copies are rendered because both calls may
// mutate their envelope's headers.
func TestAppendRewrittenMatchesApply(t *testing.T) {
	body := xmlsoap.NewText("urn:wsd:echo", "echo", "payload")
	headerSets := map[string]*Headers{
		"full": {
			To: "http://ws:81/msg", Action: "urn:a", MessageID: "urn:uuid:1",
			RelatesTo: "urn:uuid:2", From: &EPR{Address: "http://c:90/msg"},
			ReplyTo: &EPR{Address: "http://wsd:9100/msg"}, FaultTo: &EPR{Address: "http://f:1/msg"},
		},
		"sparse":     {To: "logical:echo", ReplyTo: &EPR{Address: "http://wsd:9100/msg"}},
		"to-only":    {To: `http://host:99/p?a=1&b="2"`},
		"escaping":   {To: "urn:<a>&b", Action: `x"y'z`, MessageID: "urn:uuid:3"},
		"properties": {To: "urn:t", ReplyTo: &EPR{Address: "http://m/box", Properties: map[string]string{"token": "t"}}},
		"empty-addr": {To: "urn:t", ReplyTo: &EPR{Address: ""}},
	}
	envs := map[string]func() *soap.Envelope{
		"plain-body": func() *soap.Envelope { return soap.New(soap.V11).SetBody(body.Clone()) },
		"v12":        func() *soap.Envelope { return soap.New(soap.V12).SetBody(body.Clone()) },
		"empty-body": func() *soap.Envelope { return soap.New(soap.V11) },
		"stale-wsa-headers": func() *soap.Envelope {
			e := soap.New(soap.V11).SetBody(body.Clone())
			(&Headers{To: "urn:old", MessageID: "urn:uuid:old"}).Apply(e)
			return e
		},
		"foreign-header": func() *soap.Envelope {
			return soap.New(soap.V11).SetBody(body.Clone()).
				AddHeader(xmlsoap.NewText("urn:other", "Security", "s"))
		},
		"unknown-wsa-local": func() *soap.Envelope {
			// Apply preserves WSA-namespace blocks outside the seven
			// addressing fields; the fused path must not drop them.
			return soap.New(soap.V11).SetBody(body.Clone()).
				AddHeader(xmlsoap.NewText(NS, "ProblemAction", "urn:x"))
		},
	}
	for ename, mk := range envs {
		for hname, h := range headerSets {
			t.Run(ename+"/"+hname, func(t *testing.T) {
				ref := mk()
				h.Apply(ref)
				want, err := MarshalEnvelope(ref)
				if err != nil {
					t.Fatal(err)
				}
				got, err := AppendRewritten(nil, mk(), h)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("AppendRewritten drift:\napply: %q\nfused: %q", want, got)
				}
			})
		}
	}
}

// TestAppendRewrittenZeroAlloc gates the fused rewrite the dispatchers
// pay per forwarded message: splicing header values straight from the
// Headers struct into a reused buffer must not allocate.
func TestAppendRewrittenZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool caching is randomized under the race detector")
	}
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText("urn:wsd:echo", "echo", "payload"))
	h := &Headers{
		To:        "http://ws:81/msg",
		Action:    "urn:wsd:echo:echo",
		MessageID: "urn:uuid:00000000-0000-4000-8000-000000000000",
		ReplyTo:   &EPR{Address: "http://wsd:9100/msg"},
	}
	dst := make([]byte, 0, 4096)
	if _, err := AppendRewritten(dst, env, h); err != nil { // warm cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := AppendRewritten(dst, env, h); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendRewritten allocated %.1f times per op, want 0", allocs)
	}
}

// TestSkeletonZeroAlloc is the allocation-regression gate for the
// cached-skeleton hot path: rendering a fully addressed envelope into a
// reused buffer must not allocate (budget: 0 allocs/op).
func TestSkeletonZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool caching is randomized under the race detector")
	}
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText("urn:wsd:echo", "echo", "payload"))
	(&Headers{
		To:        "logical:echo",
		Action:    "urn:wsd:echo:echo",
		MessageID: "urn:uuid:00000000-0000-4000-8000-000000000000",
		ReplyTo:   &EPR{Address: "http://client:90/msg"},
	}).Apply(env)
	dst := make([]byte, 0, 4096)
	if _, err := AppendEnvelope(dst, env); err != nil { // warm cache and pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := AppendEnvelope(dst, env); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("skeleton AppendEnvelope allocated %.1f times per op, want 0", allocs)
	}
}
