//go:build race

package wsa

// raceEnabled skips the pooled-path allocation gate under the race
// detector, which deliberately randomizes sync.Pool caching and makes
// allocation counts nondeterministic.
const raceEnabled = true
