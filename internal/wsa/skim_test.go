package wsa

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/soap"
	"repro/internal/xmlsoap"
)

// skimTestBodies mirrors the skeleton golden suite's body shapes:
// namespace reuse, escaping, attribute-triggered declarations, and the
// wsa namespace reappearing inside the payload.
func skimTestBodies() map[string]*xmlsoap.Element {
	return map[string]*xmlsoap.Element{
		"simple":      xmlsoap.NewText("urn:wsd:echo", "echo", "payload"),
		"escaped":     xmlsoap.NewText("urn:wsd:echo", "echo", `a&b<c>d"e`),
		"foreign-ns":  xmlsoap.New("urn:x:1", "op").Add(xmlsoap.New("urn:x:2", "inner")),
		"wsa-in-body": xmlsoap.New("urn:x:1", "op").Add(xmlsoap.New(NS, "EndpointReference")),
		"attrs":       xmlsoap.New("urn:x:1", "op").SetAttr("", "k", "v<&>").SetAttr("urn:x:2", "q", "w"),
	}
}

func skimTestEnvelope(v soap.Version, mask int, body *xmlsoap.Element) *soap.Envelope {
	env := soap.New(v)
	for f, local := range fieldLocals {
		if mask&(1<<f) == 0 {
			continue
		}
		val := "urn:q:" + local
		if f < eprFieldStart {
			env.AddHeader(xmlsoap.NewText(NS, local, val))
		} else {
			env.AddHeader((&EPR{Address: val}).Element(local))
		}
	}
	return env.SetBody(body.Clone())
}

// TestSkimGoldenAllShapes: for every (version, header shape, body
// shape), the skim must accept the canonical wire form, extract exactly
// the values the parse path would, and the identity rewrite must
// reproduce the input byte for byte.
func TestSkimGoldenAllShapes(t *testing.T) {
	bodies := skimTestBodies()
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		for mask := 0; mask < 1<<len(fieldLocals); mask++ {
			for bodyName, body := range bodies {
				env := skimTestEnvelope(v, mask, body)
				raw, err := MarshalEnvelope(env)
				if err != nil {
					t.Fatal(err)
				}
				var sk Skim
				if !SkimEnvelope(raw, &sk) {
					t.Fatalf("%s mask %02x body %s: skim declined canonical envelope %q", v, mask, bodyName, raw)
				}
				if sk.Version != v {
					t.Fatalf("version mismatch: got %s want %s", sk.Version, v)
				}
				var fields [len(fieldLocals)]string
				sk.Fields(&fields)
				for f, local := range fieldLocals {
					want := ""
					if mask&(1<<f) != 0 {
						want = "urn:q:" + local
					}
					if fields[f] != want {
						t.Fatalf("%s mask %02x: field %s = %q, want %q", v, mask, local, fields[f], want)
					}
				}
				got, err := AppendSkimRewritten(nil, sk.Version, sk.Body, &fields)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, raw) {
					t.Fatalf("%s mask %02x body %s: identity rewrite drift:\nin:  %q\nout: %q", v, mask, bodyName, raw, got)
				}
			}
		}
	}
}

// TestSkimRewriteMatchesParsePath drives the dispatcher's actual
// rewrite (To and ReplyTo replaced) through both paths and requires
// byte-identical output — including a destination URL that needs
// escaping.
func TestSkimRewriteMatchesParsePath(t *testing.T) {
	for _, dest := range []string{
		"http://backend:9000/echo",
		"http://backend:9000/echo?a=1&b=<2>",
	} {
		env := soap.New(soap.V11).
			AddHeader(xmlsoap.NewText(NS, "To", "wsd://echo")).
			AddHeader(xmlsoap.NewText(NS, "Action", "urn:echo")).
			AddHeader(xmlsoap.NewText(NS, "MessageID", "urn:uuid:1234")).
			AddHeader((&EPR{Address: Anonymous}).Element("ReplyTo")).
			SetBody(xmlsoap.NewText("urn:wsd:echo", "echo", "hi"))
		raw, err := MarshalEnvelope(env)
		if err != nil {
			t.Fatal(err)
		}

		var sk Skim
		if !SkimEnvelope(raw, &sk) {
			t.Fatalf("skim declined canonical envelope %q", raw)
		}
		var fields [len(fieldLocals)]string
		sk.Fields(&fields)
		fields[0] = dest
		fields[5] = "http://wsd:9100/msg"
		got, err := AppendSkimRewritten(nil, sk.Version, sk.Body, &fields)
		if err != nil {
			t.Fatal(err)
		}

		parsed, err := soap.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		h, err := FromEnvelope(parsed)
		if err != nil {
			t.Fatal(err)
		}
		rewritten := *h
		rewritten.To = dest
		rewritten.ReplyTo = &EPR{Address: "http://wsd:9100/msg"}
		want, err := AppendRewritten(nil, parsed, &rewritten)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rewrite drift for dest %q:\nskim:  %q\nparse: %q", dest, got, want)
		}
	}
}

// TestSkimNonCanonicalHeaderOrder: the skim accepts canonical blocks in
// any order with duplicates (last wins, like FromEnvelope) as long as
// each block is individually canonical.
func TestSkimNonCanonicalHeaderOrder(t *testing.T) {
	raw := []byte(xmlsoap.Prolog +
		`<soapenv:Envelope xmlns:soapenv="` + soap.NS11 + `">` +
		`<soapenv:Header>` +
		`<wsa:Action xmlns:wsa="` + NS + `">urn:first</wsa:Action>` +
		`<wsa:To xmlns:wsa="` + NS + `">wsd://echo</wsa:To>` +
		`<wsa:Action xmlns:wsa="` + NS + `">urn:second</wsa:Action>` +
		`</soapenv:Header>` +
		`<soapenv:Body><ns1:op xmlns:ns1="urn:e">x</ns1:op></soapenv:Body>` +
		`</soapenv:Envelope>`)
	var sk Skim
	if !SkimEnvelope(raw, &sk) {
		t.Fatalf("skim declined reordered canonical blocks")
	}
	if string(sk.To) != "wsd://echo" || string(sk.Action) != "urn:second" {
		t.Fatalf("last-wins extraction failed: To=%q Action=%q", sk.To, sk.Action)
	}

	// The rewrite must match the parse path for the same header values.
	var fields [len(fieldLocals)]string
	sk.Fields(&fields)
	got, err := AppendSkimRewritten(nil, sk.Version, sk.Body, &fields)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := soap.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	h, err := FromEnvelope(parsed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AppendRewritten(nil, parsed, h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("rewrite drift:\nskim:  %q\nparse: %q", got, want)
	}
}

// TestSkimDeclines enumerates inputs the skim must hand to the full
// parser: non-canonical framing, constructs whose re-render would
// differ, and malformed XML. Declining is the only acceptable verdict
// for each.
func TestSkimDeclines(t *testing.T) {
	const pre = xmlsoap.Prolog
	const envOpen = `<soapenv:Envelope xmlns:soapenv="` + soap.NS11 + `">`
	const envClose = `</soapenv:Envelope>`
	wrap := func(body string) string {
		return pre + envOpen + `<soapenv:Body>` + body + `</soapenv:Body>` + envClose
	}
	hdr := func(blocks string) string {
		return pre + envOpen + `<soapenv:Header>` + blocks + `</soapenv:Header>` +
			`<soapenv:Body><ns1:op xmlns:ns1="urn:e">x</ns1:op></soapenv:Body>` + envClose
	}
	cases := map[string]string{
		"empty":                 "",
		"no-prolog":             envOpen + `<soapenv:Body><ns1:op xmlns:ns1="urn:e">x</ns1:op></soapenv:Body>` + envClose,
		"space-before-prolog":   " " + wrap(`<ns1:op xmlns:ns1="urn:e">x</ns1:op>`),
		"foreign-root":          pre + `<x/>`,
		"nonpreferred-prefix":   pre + `<s:Envelope xmlns:s="` + soap.NS11 + `"><s:Body><ns1:op xmlns:ns1="urn:e">x</ns1:op></s:Body></s:Envelope>`,
		"empty-body":            pre + envOpen + `<soapenv:Body/>` + envClose,
		"body-level-text":       wrap(`text<ns1:op xmlns:ns1="urn:e">x</ns1:op>`),
		"open-close-empty":      wrap(`<ns1:op xmlns:ns1="urn:e"></ns1:op>`),
		"ws-only-text":          wrap(`<ns1:op xmlns:ns1="urn:e"> </ns1:op>`),
		"text-after-child":      wrap(`<ns1:op xmlns:ns1="urn:e"><ns1:a>x</ns1:a>tail</ns1:op>`),
		"raw-gt-in-text":        wrap(`<ns1:op xmlns:ns1="urn:e">a>b</ns1:op>`),
		"apos-entity":           wrap(`<ns1:op xmlns:ns1="urn:e">a&apos;b</ns1:op>`),
		"numeric-entity":        wrap(`<ns1:op xmlns:ns1="urn:e">a&#65;b</ns1:op>`),
		"cdata":                 wrap(`<ns1:op xmlns:ns1="urn:e"><![CDATA[x]]></ns1:op>`),
		"comment":               wrap(`<ns1:op xmlns:ns1="urn:e"><!--c-->x</ns1:op>`),
		"pi":                    wrap(`<ns1:op xmlns:ns1="urn:e"><?p?>x</ns1:op>`),
		"default-xmlns":         wrap(`<op xmlns="urn:e">x</op>`),
		"single-quoted-attr":    wrap(`<ns1:op xmlns:ns1='urn:e'>x</ns1:op>`),
		"duplicate-attr":        wrap(`<e:op a="1" a="2" xmlns:e="urn:e">x</ns1:op>`),
		"attr-after-decl":       wrap(`<ns1:op xmlns:ns1="urn:e" a="1">x</ns1:op>`),
		"unused-decl":           wrap(`<ns1:op xmlns:ns1="urn:e" xmlns:f="urn:f">x</ns1:op>`),
		"redeclared-scope":      wrap(`<soapenv:op xmlns:soapenv="` + soap.NS11 + `">x</soapenv:op>`),
		"wrong-gen-prefix":      wrap(`<a:op xmlns:a="urn:e">x</a:op>`),
		"undeclared-prefix":     wrap(`<e:op>x</ns1:op>`),
		"raw-tab-in-attr":       wrap(`<e:op a="x` + "\t" + `y" xmlns:e="urn:e">x</ns1:op>`),
		"mismatched-close":      pre + envOpen + `<soapenv:Body><ns1:op xmlns:ns1="urn:e">x</e:OP></soapenv:Body>` + envClose,
		"foreign-header":        hdr(`<f:Custom xmlns:f="urn:f">x</f:Custom>`),
		"unknown-wsa-header":    hdr(`<wsa:Unknown xmlns:wsa="` + NS + `">x</wsa:Unknown>`),
		"header-attr":           hdr(`<wsa:To xmlns:wsa="` + NS + `" soapenv:mustUnderstand="1">wsd://x</wsa:To>`),
		"empty-header-value":    hdr(`<wsa:To xmlns:wsa="` + NS + `"></wsa:To>`),
		"space-in-header-value": hdr(`<wsa:To xmlns:wsa="` + NS + `">a b</wsa:To>`),
		"escape-in-header":      hdr(`<wsa:To xmlns:wsa="` + NS + `">a&amp;b</wsa:To>`),
		"self-closed-header":    hdr(`<wsa:To xmlns:wsa="` + NS + `"/>`),
		"epr-with-properties": hdr(`<wsa:ReplyTo xmlns:wsa="` + NS + `"><wsa:Address>urn:a</wsa:Address>` +
			`<wsa:ReferenceProperties><k>v</k></wsa:ReferenceProperties></wsa:ReplyTo>`),
		"trailing-junk":  wrap(`<ns1:op xmlns:ns1="urn:e">x</ns1:op>`) + "x",
		"truncated":      wrap(`<ns1:op xmlns:ns1="urn:e">x</ns1:op>`)[:60],
		"carriage-return": wrap("<ns1:op xmlns:ns1=\"urn:e\">a\rb</ns1:op>"),
		"non-ascii-text": wrap(`<ns1:op xmlns:ns1="urn:e">héllo</ns1:op>`),
	}
	for name, raw := range cases {
		var sk Skim
		if SkimEnvelope([]byte(raw), &sk) {
			t.Errorf("%s: skim accepted %q", name, raw)
		}
	}
}

// TestSkimDepthCap: nesting beyond the fixed frame stack declines
// rather than mis-scanning.
func TestSkimDepthCap(t *testing.T) {
	var b strings.Builder
	b.WriteString(xmlsoap.Prolog)
	b.WriteString(`<soapenv:Envelope xmlns:soapenv="` + soap.NS11 + `">`)
	b.WriteString(`<soapenv:Body><ns1:op xmlns:ns1="urn:e">`)
	for i := 0; i < skimMaxDepth+1; i++ {
		b.WriteString(`<e:n` + strconv.Itoa(i) + `>`)
	}
	b.WriteString("x")
	for i := skimMaxDepth; i >= 0; i-- {
		b.WriteString(`</e:n` + strconv.Itoa(i) + `>`)
	}
	b.WriteString(`</ns1:op></soapenv:Body></soapenv:Envelope>`)
	var sk Skim
	if SkimEnvelope([]byte(b.String()), &sk) {
		t.Fatal("skim accepted nesting beyond the frame cap")
	}
}

func skimStandardEnvelope(t testing.TB) []byte {
	env := soap.New(soap.V11).
		AddHeader(xmlsoap.NewText(NS, "To", "wsd://echo-rpc")).
		AddHeader(xmlsoap.NewText(NS, "Action", "urn:wsd:echo/echo")).
		AddHeader(xmlsoap.NewText(NS, "MessageID", "urn:uuid:6ba7b810-9dad-11d1-80b4-00c04fd430c8")).
		AddHeader((&EPR{Address: Anonymous}).Element("ReplyTo")).
		SetBody(xmlsoap.New("urn:wsd:echo", "echo").Add(xmlsoap.NewText("", "message", "steady")))
	raw, err := MarshalEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSkimZeroAlloc is the tentpole's core gate: scanning plus the
// splice rewrite of the standard dispatcher envelope must not allocate.
func TestSkimZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under the race detector")
	}
	raw := skimStandardEnvelope(t)
	var sk Skim
	var fields [len(fieldLocals)]string
	buf := make([]byte, 0, 4096)
	render := func() {
		if !SkimEnvelope(raw, &sk) {
			t.Fatal("skim declined the standard envelope")
		}
		sk.Fields(&fields)
		fields[0] = "http://backend:9000/echo"
		fields[5] = "http://wsd:9100/msg"
		out, err := AppendSkimRewritten(buf[:0], sk.Version, sk.Body, &fields)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	}
	render() // warm the skeleton cache
	if allocs := testing.AllocsPerRun(100, render); allocs != 0 {
		t.Fatalf("skim+rewrite allocated %.1f per op, want 0", allocs)
	}
}

// BenchmarkSkim measures the scanner alone on the standard envelope.
func BenchmarkSkim(b *testing.B) {
	raw := skimStandardEnvelope(b)
	var sk Skim
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !SkimEnvelope(raw, &sk) {
			b.Fatal("declined")
		}
	}
}

// BenchmarkSkimRewrite is the full fast-path leg: skim, rewrite To and
// ReplyTo, splice through the skeleton cache.
func BenchmarkSkimRewrite(b *testing.B) {
	raw := skimStandardEnvelope(b)
	var sk Skim
	var fields [len(fieldLocals)]string
	buf := make([]byte, 0, 4096)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !SkimEnvelope(raw, &sk) {
			b.Fatal("declined")
		}
		sk.Fields(&fields)
		fields[0] = "http://backend:9000/echo"
		fields[5] = "http://wsd:9100/msg"
		out, err := AppendSkimRewritten(buf[:0], sk.Version, sk.Body, &fields)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// BenchmarkParseRewrite is the same leg through the tree path, for the
// skim-vs-parse ratio the bench snapshot records.
func BenchmarkParseRewrite(b *testing.B) {
	raw := skimStandardEnvelope(b)
	buf := make([]byte, 0, 4096)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := soap.Parse(raw)
		if err != nil {
			b.Fatal(err)
		}
		h, err := FromEnvelope(env)
		if err != nil {
			b.Fatal(err)
		}
		rewritten := *h
		rewritten.To = "http://backend:9000/echo"
		rewritten.ReplyTo = &EPR{Address: "http://wsd:9100/msg"}
		out, err := AppendRewritten(buf[:0], env, &rewritten)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}
