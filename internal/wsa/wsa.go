// Package wsa implements WS-Addressing (the August 2004 W3C Member
// Submission the paper cites) header construction, parsing, and the
// dispatcher-side rewriting that makes asynchronous forwarding work.
//
// The MSG-Dispatcher's CxThreads "parse the WS-Addressing message of the
// request to modify client's information with MSG-Dispatcher's return
// address": the original ReplyTo is remembered against the MessageID and
// replaced with the dispatcher's own endpoint, so the service's reply
// (carrying RelatesTo) comes back through the dispatcher, which can then
// deliver it to the real client or to its WS-MsgBox mailbox.
package wsa

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"repro/internal/soap"
	"repro/internal/xmlsoap"
)

// NS is the WS-Addressing namespace of the 2004/08 submission used by the
// paper ([10] in its references).
const NS = "http://schemas.xmlsoap.org/ws/2004/08/addressing"

// Anonymous is the distinguished address meaning "reply on the transport
// back-channel" — exactly what a client with no network endpoint must NOT
// use for long-running conversations, motivating WS-MsgBox.
const Anonymous = NS + "/role/anonymous"

// None is the address meaning "discard replies" (one-way messaging).
const None = NS + "/role/none"

// EPR is an endpoint reference. Only the Address and reference properties
// are modeled; policy/metadata extensions are out of the paper's scope.
type EPR struct {
	// Address is the endpoint URI, e.g. "http://wsd:9000/msg" or a
	// mailbox address "http://postoffice:9100/mbox/ab12...".
	Address string
	// Properties are opaque reference properties echoed back to the
	// endpoint (the mailbox capability token travels here).
	Properties map[string]string
}

// Element renders the EPR under the given header-block name.
func (e *EPR) Element(local string) *xmlsoap.Element {
	el := xmlsoap.New(NS, local).Add(xmlsoap.NewText(NS, "Address", e.Address))
	if len(e.Properties) > 0 {
		props := xmlsoap.New(NS, "ReferenceProperties")
		// Deterministic order for stable wire output.
		keys := make([]string, 0, len(e.Properties))
		for k := range e.Properties {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			props.Add(xmlsoap.NewText("", k, e.Properties[k]))
		}
		el.Add(props)
	}
	return el
}

func parseEPR(el *xmlsoap.Element) *EPR {
	if el == nil {
		return nil
	}
	e := &EPR{Address: el.ChildText(NS, "Address")}
	if props := el.Child(NS, "ReferenceProperties"); props != nil {
		e.Properties = make(map[string]string, len(props.Children))
		for _, p := range props.Children {
			e.Properties[p.Name.Local] = p.Text
		}
	}
	return e
}

// Headers is the set of WS-Addressing message-information headers.
type Headers struct {
	// To is the destination URI (logical or physical).
	To string
	// Action identifies the operation semantics.
	Action string
	// MessageID uniquely identifies this message.
	MessageID string
	// RelatesTo carries the MessageID this message responds to.
	RelatesTo string
	// From, ReplyTo, FaultTo are endpoint references.
	From    *EPR
	ReplyTo *EPR
	FaultTo *EPR
}

// ErrMissingTo is returned by FromEnvelope when the mandatory To header is
// absent.
var ErrMissingTo = errors.New("wsa: missing To header")

// NewMessageID returns a fresh urn:uuid message identifier.
func NewMessageID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("wsa: entropy unavailable: %v", err))
	}
	// RFC 4122 version 4 variant bits.
	b[6] = (b[6] & 0x0f) | 0x40
	b[8] = (b[8] & 0x3f) | 0x80
	// Build "urn:uuid:xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx" in a stack
	// scratch so the whole ID costs one allocation (the returned string);
	// dispatchers mint one per forwarded message.
	var dst [9 + 36]byte
	copy(dst[:9], "urn:uuid:")
	hex.Encode(dst[9:17], b[0:4])
	dst[17] = '-'
	hex.Encode(dst[18:22], b[4:6])
	dst[22] = '-'
	hex.Encode(dst[23:27], b[6:8])
	dst[27] = '-'
	hex.Encode(dst[28:32], b[8:10])
	dst[32] = '-'
	hex.Encode(dst[33:], b[10:16])
	return string(dst[:])
}

// Apply writes the headers into the envelope, replacing any existing
// WS-Addressing blocks.
func (h *Headers) Apply(env *soap.Envelope) {
	for _, local := range []string{"To", "Action", "MessageID", "RelatesTo", "From", "ReplyTo", "FaultTo"} {
		env.RemoveHeaderBlocks(NS, local)
	}
	if h.To != "" {
		env.AddHeader(xmlsoap.NewText(NS, "To", h.To))
	}
	if h.Action != "" {
		env.AddHeader(xmlsoap.NewText(NS, "Action", h.Action))
	}
	if h.MessageID != "" {
		env.AddHeader(xmlsoap.NewText(NS, "MessageID", h.MessageID))
	}
	if h.RelatesTo != "" {
		env.AddHeader(xmlsoap.NewText(NS, "RelatesTo", h.RelatesTo))
	}
	if h.From != nil {
		env.AddHeader(h.From.Element("From"))
	}
	if h.ReplyTo != nil {
		env.AddHeader(h.ReplyTo.Element("ReplyTo"))
	}
	if h.FaultTo != nil {
		env.AddHeader(h.FaultTo.Element("FaultTo"))
	}
}

// FromEnvelope extracts WS-Addressing headers. To is mandatory per the
// specification; everything else is optional.
func FromEnvelope(env *soap.Envelope) (*Headers, error) {
	h := &Headers{}
	for _, block := range env.Header {
		if block.Name.Space != NS {
			continue
		}
		switch block.Name.Local {
		case "To":
			h.To = block.Text
		case "Action":
			h.Action = block.Text
		case "MessageID":
			h.MessageID = block.Text
		case "RelatesTo":
			h.RelatesTo = block.Text
		case "From":
			h.From = parseEPR(block)
		case "ReplyTo":
			h.ReplyTo = parseEPR(block)
		case "FaultTo":
			h.FaultTo = parseEPR(block)
		}
	}
	if h.To == "" {
		return nil, ErrMissingTo
	}
	return h, nil
}

// IsReply reports whether the headers mark the message as a reply (it
// relates to an earlier message).
func (h *Headers) IsReply() bool { return h.RelatesTo != "" }

// Clone returns a deep copy.
func (h *Headers) Clone() *Headers {
	c := *h
	c.From = h.From.Clone()
	c.ReplyTo = h.ReplyTo.Clone()
	c.FaultTo = h.FaultTo.Clone()
	return &c
}

// Clone returns a deep copy of the EPR; a nil receiver clones to nil.
func (e *EPR) Clone() *EPR {
	if e == nil {
		return nil
	}
	c := &EPR{Address: e.Address}
	if e.Properties != nil {
		c.Properties = make(map[string]string, len(e.Properties))
		for k, v := range e.Properties {
			c.Properties[k] = v
		}
	}
	return c
}

// Detach returns a deep copy whose strings are freshly allocated. Headers
// extracted from a parsed envelope alias the message buffer (the xmlsoap
// aliasing contract); anything retained past the exchange — the
// MSG-Dispatcher's pending-reply state is the canonical case — must hold
// detached copies so it neither pins the buffer nor, if the buffer is
// pooled, reads recycled bytes. A nil receiver detaches to nil.
func (e *EPR) Detach() *EPR {
	if e == nil {
		return nil
	}
	c := &EPR{Address: strings.Clone(e.Address)}
	if e.Properties != nil {
		c.Properties = make(map[string]string, len(e.Properties))
		for k, v := range e.Properties {
			c.Properties[strings.Clone(k)] = strings.Clone(v)
		}
	}
	return c
}

// Detach returns a deep copy of the headers with freshly allocated
// strings; see EPR.Detach for when this is required.
func (h *Headers) Detach() *Headers {
	return &Headers{
		To:        strings.Clone(h.To),
		Action:    strings.Clone(h.Action),
		MessageID: strings.Clone(h.MessageID),
		RelatesTo: strings.Clone(h.RelatesTo),
		From:      h.From.Detach(),
		ReplyTo:   h.ReplyTo.Detach(),
		FaultTo:   h.FaultTo.Detach(),
	}
}

// sortStrings is a tiny insertion sort to avoid importing sort for one
// call site on short slices.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
