package wsa

import (
	"bytes"
	"testing"

	"repro/internal/soap"
	"repro/internal/xmlsoap"
)

// FuzzSkimDifferential fences the skim's two-sided contract against the
// full parser: for arbitrary bytes the skim must either decline (always
// safe — the dispatcher falls back to soap.Parse) or agree with the
// parser on every extracted header value AND produce rewrite output
// byte-identical to the parse path. A skim that accepts what the parser
// rejects, extracts a different value, or splices a body whose
// re-render differs is a divergence and fails the fuzz.
//
// Seeded with 1293 envelopes: the full (2 versions × 128 header shapes
// × 5 body shapes) canonical cross product plus 13 handcrafted
// non-canonical and malformed edge cases.
func FuzzSkimDifferential(f *testing.F) {
	bodies := []*xmlsoap.Element{
		xmlsoap.NewText("urn:wsd:echo", "echo", "payload"),
		xmlsoap.NewText("urn:wsd:echo", "echo", `a&b<c>d"e`),
		xmlsoap.New("urn:x:1", "op").Add(xmlsoap.New("urn:x:2", "inner")),
		xmlsoap.New("urn:x:1", "op").Add(xmlsoap.New(NS, "EndpointReference")),
		xmlsoap.New("urn:x:1", "op").SetAttr("", "k", "v<&>").SetAttr("urn:x:2", "q", "w"),
	}
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		for mask := 0; mask < 1<<len(fieldLocals); mask++ {
			for _, body := range bodies {
				env := skimTestEnvelope(v, mask, body)
				raw, err := MarshalEnvelope(env)
				if err != nil {
					f.Fatal(err)
				}
				f.Add(raw)
			}
		}
	}
	const pre = xmlsoap.Prolog
	const envOpen = `<soapenv:Envelope xmlns:soapenv="` + soap.NS11 + `">`
	for _, s := range []string{
		"",
		pre,
		envOpen + `<soapenv:Body><ns1:op xmlns:ns1="urn:e">x</ns1:op></soapenv:Body></soapenv:Envelope>`,
		pre + envOpen + `<soapenv:Header><f:Custom xmlns:f="urn:f">x</f:Custom></soapenv:Header><soapenv:Body><ns1:op xmlns:ns1="urn:e">x</ns1:op></soapenv:Body></soapenv:Envelope>`,
		pre + envOpen + `<soapenv:Header><wsa:To xmlns:wsa="` + NS + `" soapenv:mustUnderstand="1">wsd://x</wsa:To></soapenv:Header><soapenv:Body><ns1:op xmlns:ns1="urn:e">x</ns1:op></soapenv:Body></soapenv:Envelope>`,
		pre + envOpen + `<soapenv:Body><ns1:op xmlns:ns1="urn:e"><![CDATA[x]]></ns1:op></soapenv:Body></soapenv:Envelope>`,
		pre + envOpen + `<soapenv:Body><ns1:op xmlns:ns1="urn:e">a&#65;b</ns1:op></soapenv:Body></soapenv:Envelope>`,
		pre + envOpen + `<soapenv:Body><ns1:op xmlns:ns1="urn:e"> </ns1:op></soapenv:Body></soapenv:Envelope>`,
		pre + envOpen + `<soapenv:Body><ns1:op xmlns:ns1="urn:e"></ns1:op></soapenv:Body></soapenv:Envelope>`,
		pre + envOpen + `<soapenv:Body><ns1:op xmlns:ns1='urn:e'>x</ns1:op></soapenv:Body></soapenv:Envelope>`,
		pre + envOpen + `<soapenv:Body><op xmlns="urn:e">x</op></soapenv:Body></soapenv:Envelope>`,
		pre + envOpen + `<soapenv:Header><wsa:ReplyTo xmlns:wsa="` + NS + `"><wsa:Address>urn:a</wsa:Address><wsa:ReferenceProperties><k>v</k></wsa:ReferenceProperties></wsa:ReplyTo></soapenv:Header><soapenv:Body><ns1:op xmlns:ns1="urn:e">x</ns1:op></soapenv:Body></soapenv:Envelope>`,
		pre + envOpen + `<soapenv:Body><ns1:op xmlns:ns1="urn:e">x</ns1:op></soapenv:Body></soapenv:Envelope>junk`,
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		var sk Skim
		if !SkimEnvelope(raw, &sk) {
			return // declining is always safe
		}
		env, err := soap.Parse(raw)
		if err != nil {
			t.Fatalf("skim accepted what the parser rejects: %v\ninput: %q", err, raw)
		}
		if env.Version != sk.Version {
			t.Fatalf("version divergence: skim %v parse %v", sk.Version, env.Version)
		}

		// Every header block must be a known WS-Addressing field and the
		// extracted values must match a last-wins walk (FromEnvelope's
		// rule) over the parsed envelope.
		var want [len(fieldLocals)]string
		for _, block := range env.Header {
			if block.Name.Space != NS {
				t.Fatalf("skim accepted foreign header block %v\ninput: %q", block.Name, raw)
			}
			f := fieldIndex(block.Name.Local)
			if f < 0 {
				t.Fatalf("skim accepted unknown wsa header %q\ninput: %q", block.Name.Local, raw)
			}
			if f < eprFieldStart {
				want[f] = block.Text
			} else {
				if len(block.Children) != 1 {
					t.Fatalf("skim accepted EPR with %d children\ninput: %q", len(block.Children), raw)
				}
				want[f] = block.ChildText(NS, "Address")
			}
		}
		var got [len(fieldLocals)]string
		sk.Fields(&got)
		for f, local := range fieldLocals {
			if got[f] != want[f] {
				t.Fatalf("span divergence on %s: skim %q parse %q\ninput: %q", local, got[f], want[f], raw)
			}
		}

		// The identity rewrite must be byte-identical to the parse path
		// rendering the same header values over the parsed body.
		skimOut, err := AppendSkimRewritten(nil, sk.Version, sk.Body, &got)
		if err != nil {
			t.Fatalf("skim rewrite failed on accepted input: %v\ninput: %q", err, raw)
		}
		h := &Headers{
			To: want[0], Action: want[1], MessageID: want[2], RelatesTo: want[3],
		}
		if want[4] != "" {
			h.From = &EPR{Address: want[4]}
		}
		if want[5] != "" {
			h.ReplyTo = &EPR{Address: want[5]}
		}
		if want[6] != "" {
			h.FaultTo = &EPR{Address: want[6]}
		}
		parseOut, err := AppendRewritten(nil, env, h)
		if err != nil {
			t.Fatalf("parse rewrite failed: %v\ninput: %q", err, raw)
		}
		if !bytes.Equal(skimOut, parseOut) {
			t.Fatalf("rewrite divergence:\nskim:  %q\nparse: %q\ninput: %q", skimOut, parseOut, raw)
		}
	})
}
