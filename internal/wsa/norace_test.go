//go:build !race

package wsa

const raceEnabled = false
