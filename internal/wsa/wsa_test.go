package wsa

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/soap"
	"repro/internal/xmlsoap"
)

func sampleHeaders() *Headers {
	return &Headers{
		To:        "http://wsd:9000/services/echo",
		Action:    "urn:echo:echoMessage",
		MessageID: "urn:uuid:11111111-2222-3333-4444-555555555555",
		ReplyTo: &EPR{
			Address:    "http://client:8080/reply",
			Properties: map[string]string{"token": "s3cret", "box": "b-17"},
		},
	}
}

func TestApplyAndExtract(t *testing.T) {
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText("urn:x", "op", "payload"))
	want := sampleHeaders()
	want.Apply(env)

	raw, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := soap.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromEnvelope(back)
	if err != nil {
		t.Fatal(err)
	}
	if got.To != want.To || got.Action != want.Action || got.MessageID != want.MessageID {
		t.Fatalf("headers = %+v", got)
	}
	if got.ReplyTo == nil || got.ReplyTo.Address != want.ReplyTo.Address {
		t.Fatalf("ReplyTo = %+v", got.ReplyTo)
	}
	if got.ReplyTo.Properties["token"] != "s3cret" || got.ReplyTo.Properties["box"] != "b-17" {
		t.Fatalf("properties = %+v", got.ReplyTo.Properties)
	}
}

func TestApplyReplacesExistingBlocks(t *testing.T) {
	env := soap.New(soap.V11).SetBody(xmlsoap.New("urn:x", "op"))
	first := sampleHeaders()
	first.Apply(env)
	second := sampleHeaders()
	second.To = "http://elsewhere:1/x"
	second.ReplyTo = nil
	second.Apply(env)

	got, err := FromEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if got.To != "http://elsewhere:1/x" {
		t.Fatalf("To = %q", got.To)
	}
	if got.ReplyTo != nil {
		t.Fatalf("stale ReplyTo survived: %+v", got.ReplyTo)
	}
	// No duplicate To blocks on the wire.
	raw, _ := env.Marshal()
	if strings.Count(string(raw), "<wsa:To") != 1 {
		t.Fatalf("duplicate To blocks: %s", raw)
	}
}

func TestMissingToRejected(t *testing.T) {
	env := soap.New(soap.V11).SetBody(xmlsoap.New("urn:x", "op"))
	(&Headers{Action: "urn:a"}).Apply(env)
	if _, err := FromEnvelope(env); !errors.Is(err, ErrMissingTo) {
		t.Fatalf("err = %v, want ErrMissingTo", err)
	}
}

func TestRelatesToMarksReply(t *testing.T) {
	h := &Headers{To: "urn:x", RelatesTo: "urn:uuid:abc"}
	if !h.IsReply() {
		t.Fatal("RelatesTo set but IsReply false")
	}
	if (&Headers{To: "urn:x"}).IsReply() {
		t.Fatal("IsReply true without RelatesTo")
	}
}

func TestNewMessageIDFormatAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewMessageID()
		if !strings.HasPrefix(id, "urn:uuid:") || len(id) != len("urn:uuid:")+36 {
			t.Fatalf("bad MessageID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate MessageID %q", id)
		}
		seen[id] = true
	}
}

func TestFaultToAndFrom(t *testing.T) {
	env := soap.New(soap.V12).SetBody(xmlsoap.New("urn:x", "op"))
	h := &Headers{
		To:      "urn:dest",
		From:    &EPR{Address: "urn:src"},
		FaultTo: &EPR{Address: "urn:faults"},
	}
	h.Apply(env)
	raw, _ := env.Marshal()
	back, _ := soap.Parse(raw)
	got, err := FromEnvelope(back)
	if err != nil {
		t.Fatal(err)
	}
	if got.From == nil || got.From.Address != "urn:src" {
		t.Fatalf("From = %+v", got.From)
	}
	if got.FaultTo == nil || got.FaultTo.Address != "urn:faults" {
		t.Fatalf("FaultTo = %+v", got.FaultTo)
	}
}

func TestCloneIndependence(t *testing.T) {
	h := sampleHeaders()
	c := h.Clone()
	c.ReplyTo.Address = "changed"
	c.ReplyTo.Properties["token"] = "changed"
	if h.ReplyTo.Address == "changed" || h.ReplyTo.Properties["token"] == "changed" {
		t.Fatal("Clone aliased EPR state")
	}
}

func TestAnonymousConstant(t *testing.T) {
	if !strings.HasPrefix(Anonymous, NS) || !strings.HasSuffix(Anonymous, "anonymous") {
		t.Fatalf("Anonymous = %q", Anonymous)
	}
}

// Property: any header set with XML-safe strings survives a full envelope
// wire round trip.
func TestQuickHeaderRoundTrip(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if r >= 0x20 && r != 0xFFFE && r != 0xFFFF {
				b.WriteRune(r)
			}
		}
		out := strings.TrimSpace(b.String())
		if out == "" {
			return "x"
		}
		return out
	}
	f := func(to, action, msgID, replyAddr string) bool {
		h := &Headers{
			To:        sanitize(to),
			Action:    sanitize(action),
			MessageID: sanitize(msgID),
			ReplyTo:   &EPR{Address: sanitize(replyAddr)},
		}
		env := soap.New(soap.V11).SetBody(xmlsoap.New("urn:x", "op"))
		h.Apply(env)
		raw, err := env.Marshal()
		if err != nil {
			return false
		}
		back, err := soap.Parse(raw)
		if err != nil {
			return false
		}
		got, err := FromEnvelope(back)
		if err != nil {
			return false
		}
		return got.To == h.To && got.Action == h.Action &&
			got.MessageID == h.MessageID && got.ReplyTo.Address == h.ReplyTo.Address
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
