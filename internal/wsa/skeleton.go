package wsa

import (
	"strconv"
	"sync"

	"repro/internal/soap"
	"repro/internal/xmlsoap"
)

// The envelope-skeleton cache: for each (SOAP version, header shape) the
// constant framing — envelope, Header/Body tags, the WS-Addressing block
// scaffolding with its namespace declarations — is compiled once into a
// soap.Skeleton, and per message only the addressing values and the body
// payload are spliced in. Headers.Apply always emits blocks in
// fieldLocals order, so the shape space is one bit per field: 2 versions
// × 128 masks, all built lazily.

// fieldLocals is the canonical header-block order, matching Apply.
var fieldLocals = [...]string{"To", "Action", "MessageID", "RelatesTo", "From", "ReplyTo", "FaultTo"}

// eprField marks which fields are endpoint references (rendered as
// <block><Address>value</Address></block>) rather than text blocks.
const eprFieldStart = 4 // From, ReplyTo, FaultTo

var skeletons sync.Map // key uint16 (version<<8 | shape mask) → *soap.Skeleton

// AppendEnvelope appends env's complete document bytes to dst, using a
// cached envelope skeleton when env has skeleton-compatible shape —
// only plain WS-Addressing header blocks in canonical order (or no
// headers at all) and a non-empty body — and the general streaming
// serializer otherwise. Output is byte-identical either way; the
// skeleton path just skips re-serializing the constant framing and is
// allocation-free into a reused dst.
func AppendEnvelope(dst []byte, env *soap.Envelope) ([]byte, error) {
	var vals [len(fieldLocals)]string
	mask, n, ok := classify(env, &vals)
	if !ok {
		return env.AppendTo(dst)
	}
	sk, err := skeletonFor(env.Version, mask)
	if err != nil {
		return env.AppendTo(dst)
	}
	return sk.Append(dst, vals[:n], env.Body)
}

// MarshalEnvelope is AppendEnvelope into a freshly allocated exact-size
// slice, for payloads that outlive the exchange (queued messages).
func MarshalEnvelope(env *soap.Envelope) ([]byte, error) {
	return xmlsoap.Render(func(dst []byte) ([]byte, error) {
		return AppendEnvelope(dst, env)
	})
}

// AppendRewritten appends env's document bytes to dst with h replacing
// every WS-Addressing header block — the dispatcher's rewrite-and-
// re-marshal step fused into one render. When env carries only
// WS-Addressing headers and h fits a skeleton shape (text fields plus
// Address-only EPRs), the header values are spliced straight from h's
// fields without materializing a single header element; otherwise it
// falls back to h.Apply(env) followed by the general streaming path.
// Output is byte-identical to Apply+AppendEnvelope in all cases. env may
// be mutated (the fallback applies h in place), so it must not be reused
// as the pre-rewrite message afterwards.
func AppendRewritten(dst []byte, env *soap.Envelope, h *Headers) ([]byte, error) {
	var vals [len(fieldLocals)]string
	mask, n, ok := classifyHeaders(env, h, &vals)
	if !ok {
		h.Apply(env)
		return AppendEnvelope(dst, env)
	}
	sk, err := skeletonFor(env.Version, mask)
	if err != nil {
		h.Apply(env)
		return env.AppendTo(dst)
	}
	return sk.Append(dst, vals[:n], env.Body)
}

// classifyHeaders is classify's twin for a Headers struct standing in
// for the blocks Apply would emit: it reports whether rendering h over
// env's body can use a skeleton, mirroring Apply's emission rules (empty
// text fields and nil EPRs are omitted) and classify's shape limits
// (non-empty body, no foreign header blocks left in env, EPRs carrying
// only a non-empty Address).
func classifyHeaders(env *soap.Envelope, h *Headers, vals *[len(fieldLocals)]string) (mask uint8, n int, ok bool) {
	if len(env.Body) == 0 {
		return 0, 0, false
	}
	// Apply removes only the seven addressing fields before re-emitting
	// h, so any other header block — foreign namespace or an unknown
	// WS-Addressing local — survives the rewrite and needs the general
	// path; the skeleton cannot frame it.
	for _, block := range env.Header {
		if block.Name.Space != NS || fieldIndex(block.Name.Local) < 0 {
			return 0, 0, false
		}
	}
	texts := [eprFieldStart]string{h.To, h.Action, h.MessageID, h.RelatesTo}
	for f, v := range texts {
		if v == "" {
			continue
		}
		vals[n] = v
		mask |= 1 << f
		n++
	}
	eprs := [...]*EPR{h.From, h.ReplyTo, h.FaultTo}
	for i, e := range eprs {
		if e == nil {
			continue
		}
		if e.Address == "" || len(e.Properties) > 0 {
			return 0, 0, false
		}
		vals[n] = e.Address
		mask |= 1 << (eprFieldStart + i)
		n++
	}
	return mask, n, true
}

// classify reports whether env can be rendered from a skeleton: every
// header block must be a plain WS-Addressing field (no attributes, no
// foreign blocks, non-empty values, canonical order, EPRs carrying only
// an Address) and the body must be non-empty (an empty body self-closes
// and needs the general path). It fills vals with the slot values in
// slot order and returns the shape mask and slot count.
func classify(env *soap.Envelope, vals *[len(fieldLocals)]string) (mask uint8, n int, ok bool) {
	if len(env.Body) == 0 {
		return 0, 0, false
	}
	prev := -1
	for _, block := range env.Header {
		if block.Name.Space != NS || len(block.Attrs) != 0 {
			return 0, 0, false
		}
		f := fieldIndex(block.Name.Local)
		if f <= prev { // unknown (-1), duplicate, or out of order
			return 0, 0, false
		}
		prev = f
		if f < eprFieldStart {
			// Text block: exactly a non-empty text value. (Empty text
			// would self-close and change the framing bytes.)
			if len(block.Children) != 0 || block.Text == "" {
				return 0, 0, false
			}
			vals[n] = block.Text
		} else {
			// EPR block: exactly <Address> with a non-empty address and
			// no reference properties.
			if block.Text != "" || len(block.Children) != 1 {
				return 0, 0, false
			}
			addr := block.Children[0]
			if addr.Name.Space != NS || addr.Name.Local != "Address" ||
				len(addr.Attrs) != 0 || len(addr.Children) != 0 || addr.Text == "" {
				return 0, 0, false
			}
			vals[n] = addr.Text
		}
		mask |= 1 << f
		n++
	}
	return mask, n, true
}

func fieldIndex(local string) int {
	for i, l := range fieldLocals {
		if l == local {
			return i
		}
	}
	return -1
}

// skeletonFor returns the compiled skeleton for (version, mask),
// building and caching it on first use.
func skeletonFor(v soap.Version, mask uint8) (*soap.Skeleton, error) {
	key := uint16(v)<<8 | uint16(mask)
	if sk, ok := skeletons.Load(key); ok {
		return sk.(*soap.Skeleton), nil
	}
	env := soap.New(v)
	var sentinels []string
	for f, local := range fieldLocals {
		if mask&(1<<f) == 0 {
			continue
		}
		s := "\x00slot" + strconv.Itoa(len(sentinels)) + "\x00"
		sentinels = append(sentinels, s)
		if f < eprFieldStart {
			env.AddHeader(xmlsoap.NewText(NS, local, s))
		} else {
			env.AddHeader((&EPR{Address: s}).Element(local))
		}
	}
	env.SetBody(xmlsoap.New("", "placeholder"))
	sk, err := soap.CompileSkeleton(env, sentinels)
	if err != nil {
		return nil, err
	}
	actual, _ := skeletons.LoadOrStore(key, sk)
	return actual.(*soap.Skeleton), nil
}
