package wsa

import (
	"bytes"
	"math"
	"strconv"

	"repro/internal/soap"
	"repro/internal/xmlsoap"
)

// The skim scanner: a zero-allocation forward-path alternative to
// soap.Parse for the dispatcher hot legs. SkimEnvelope tokenizes an
// envelope's raw bytes just far enough to extract the WS-Addressing
// header spans and the body span — no tree, no arenas — and
// AppendSkimRewritten splices those spans plus rewritten header values
// through the envelope-skeleton cache.
//
// The correctness contract is byte-identity with the parse path: a
// skim-accepted message must yield exactly the header values
// FromEnvelope would extract and a rewrite output identical to
// AppendRewritten over the parsed envelope. The scanner earns that by
// accepting ONLY envelopes in this stack's own serializer-canonical
// form — exact prolog, exact framing literals, declarations at first
// use in serializer order, the serializer's exact escape set, no
// whitespace-only text runs — and declining everything else to the full
// parser. Canonical form makes the body span a fixed point of
// parse+re-serialize, so splicing the raw span is equal to re-rendering
// the parsed tree at the skeleton's captured splice state. Declining is
// always safe (the caller falls back to soap.Parse); accepting anything
// the parser would reject, or anything whose re-render differs, is a
// bug fenced by FuzzSkimDifferential.
//
// Spans returned in a Skim alias the input buffer. For dispatcher
// traffic that buffer is pooled: a span is valid only until the
// exchange's owner releases it, and any value that outlives the
// exchange (a pending-table key, a detached ReplyTo) must be copied
// out first, exactly as the parse path's aliasing contract demands.

// Skim holds the spans extracted from one canonical envelope. Header
// fields are nil when the block is absent; EPR fields (From, ReplyTo,
// FaultTo) hold the Address text. Body spans the Body element's
// content. All spans alias the scanned input.
type Skim struct {
	Version   soap.Version
	To        []byte
	Action    []byte
	MessageID []byte
	RelatesTo []byte
	From      []byte
	ReplyTo   []byte
	FaultTo   []byte
	Body      []byte
}

// SkimFieldCount is the length of the fields array SkimEnvelope
// extracts and AppendSkimRewritten splices: To, Action, MessageID,
// RelatesTo, From, ReplyTo, FaultTo, in that order.
const SkimFieldCount = len(fieldLocals)

// Fields fills dst with the skimmed header values in fieldLocals order
// as zero-copy views of the scanned input — the identity-rewrite input
// for AppendSkimRewritten. The views share the spans' lifetime.
func (sk *Skim) Fields(dst *[len(fieldLocals)]string) {
	dst[0] = xmlsoap.ZeroCopyString(sk.To)
	dst[1] = xmlsoap.ZeroCopyString(sk.Action)
	dst[2] = xmlsoap.ZeroCopyString(sk.MessageID)
	dst[3] = xmlsoap.ZeroCopyString(sk.RelatesTo)
	dst[4] = xmlsoap.ZeroCopyString(sk.From)
	dst[5] = xmlsoap.ZeroCopyString(sk.ReplyTo)
	dst[6] = xmlsoap.ZeroCopyString(sk.FaultTo)
}

// skimMaxInput mirrors the parser's input cap: the skim must never
// accept an input the parser would reject.
const skimMaxInput = math.MaxInt32 / 2

// Structural caps for the fixed-size scanner state. All are comfortably
// above real dispatcher traffic; exceeding one declines to the parser.
const (
	skimMaxDepth    = 32
	skimMaxScopes   = 16
	skimMaxAssigned = 16
	skimMaxAttrs    = 16
	skimMaxDecls    = 8
	skimMaxGen      = 8
)

// skimLiterals holds the exact framing bytes the serializer emits for
// one SOAP version.
type skimLiterals struct {
	envOpen  string // <soapenv:Envelope xmlns:soapenv="...">
	hdrOpen  string
	hdrClose string
	bodyOpen string
	tail     string // </soapenv:Body></soapenv:Envelope>
	envPfxB  []byte
	envNSB   []byte
}

var (
	skimLits       [2]skimLiterals
	skimBlockOpen  [len(fieldLocals)]string // <wsa:To xmlns:wsa="...">
	skimBlockClose [len(fieldLocals)]string // </wsa:To>
	skimAddrOpen   string
	skimAddrClose  string

	wsaPrefixBytes       []byte
	wsaNSBytes           = []byte(NS)
	preferredPrefixBytes map[string][]byte
	genPrefixBytes       [skimMaxGen][]byte
)

func init() {
	wp := xmlsoap.PreferredPrefixes[NS]
	wsaPrefixBytes = []byte(wp)
	for f, local := range fieldLocals {
		skimBlockOpen[f] = "<" + wp + ":" + local + ` xmlns:` + wp + `="` + NS + `">`
		skimBlockClose[f] = "</" + wp + ":" + local + ">"
	}
	skimAddrOpen = "<" + wp + ":Address>"
	skimAddrClose = "</" + wp + ":Address>"
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		ns := v.NS()
		p := xmlsoap.PreferredPrefixes[ns]
		skimLits[v] = skimLiterals{
			envOpen:  "<" + p + ":Envelope xmlns:" + p + `="` + ns + `">`,
			hdrOpen:  "<" + p + ":Header>",
			hdrClose: "</" + p + ":Header>",
			bodyOpen: "<" + p + ":Body>",
			tail:     "</" + p + ":Body></" + p + ":Envelope>",
			envPfxB:  []byte(p),
			envNSB:   []byte(ns),
		}
	}
	preferredPrefixBytes = make(map[string][]byte, len(xmlsoap.PreferredPrefixes))
	for u, p := range xmlsoap.PreferredPrefixes {
		preferredPrefixBytes[u] = []byte(p)
	}
	for k := range genPrefixBytes {
		genPrefixBytes[k] = []byte("ns" + strconv.Itoa(k+1))
	}
}

// hasAt reports whether lit occurs in raw at offset i. The compiler
// lowers the conversion+compare to a length check and memequal, so the
// hot path never allocates.
func hasAt(raw []byte, i int, lit string) bool {
	return i >= 0 && len(raw)-i >= len(lit) && string(raw[i:i+len(lit)]) == lit
}

// SkimEnvelope scans raw as a serializer-canonical SOAP envelope,
// filling sk with the WS-Addressing header spans and the body span. It
// returns false — declining to the full parser — on anything it cannot
// prove both parse-equivalent and re-serialization-stable. It performs
// no allocation either way.
func SkimEnvelope(raw []byte, sk *Skim) bool {
	*sk = Skim{}
	if len(raw) > skimMaxInput {
		return false
	}
	i := len(xmlsoap.Prolog)
	if !hasAt(raw, 0, xmlsoap.Prolog) {
		return false
	}
	var v soap.Version
	switch {
	case hasAt(raw, i, skimLits[soap.V11].envOpen):
		v = soap.V11
	case hasAt(raw, i, skimLits[soap.V12].envOpen):
		v = soap.V12
	default:
		return false
	}
	lits := &skimLits[v]
	i += len(lits.envOpen)
	if hasAt(raw, i, lits.hdrOpen) {
		i += len(lits.hdrOpen)
		for !hasAt(raw, i, lits.hdrClose) {
			var ok bool
			if i, ok = skimHeaderBlock(raw, i, sk); !ok {
				return false
			}
		}
		i += len(lits.hdrClose)
	}
	if !hasAt(raw, i, lits.bodyOpen) {
		return false
	}
	i += len(lits.bodyOpen)
	bodyStart := i
	var sim skimSim
	sim.init(raw, v)
	end, ok := sim.run(i)
	if !ok || !hasAt(raw, end, lits.tail) {
		return false
	}
	for j := end + len(lits.tail); j < len(raw); j++ {
		switch raw[j] {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	sk.Version = v
	sk.Body = raw[bodyStart:end]
	return true
}

// skimHeaderBlock scans one canonical WS-Addressing header block at
// offset i and records its value span (last occurrence wins, matching
// FromEnvelope). Canonical blocks carry the wsa declaration on the
// block element, no attributes, and a non-empty escape-free value; EPR
// blocks hold exactly one <wsa:Address>.
func skimHeaderBlock(raw []byte, i int, sk *Skim) (int, bool) {
	f := -1
	for fi := range skimBlockOpen {
		if hasAt(raw, i, skimBlockOpen[fi]) {
			f = fi
			break
		}
	}
	if f < 0 {
		return 0, false
	}
	i += len(skimBlockOpen[f])
	if f >= eprFieldStart {
		if !hasAt(raw, i, skimAddrOpen) {
			return 0, false
		}
		i += len(skimAddrOpen)
	}
	lo := i
	for i < len(raw) && skimHeaderValueByte(raw[i]) {
		i++
	}
	if i == lo {
		return 0, false
	}
	val := raw[lo:i]
	if f >= eprFieldStart {
		if !hasAt(raw, i, skimAddrClose) {
			return 0, false
		}
		i += len(skimAddrClose)
	}
	if !hasAt(raw, i, skimBlockClose[f]) {
		return 0, false
	}
	i += len(skimBlockClose[f])
	switch f {
	case 0:
		sk.To = val
	case 1:
		sk.Action = val
	case 2:
		sk.MessageID = val
	case 3:
		sk.RelatesTo = val
	case 4:
		sk.From = val
	case 5:
		sk.ReplyTo = val
	case 6:
		sk.FaultTo = val
	}
	return i, true
}

// skimHeaderValueByte admits printable ASCII minus the text escapes and
// space. Excluding space keeps whitespace-only values — which the
// parser's text handling would drop to an empty field — out of the fast
// path; real addressing values (URIs, urn:uuid ids) never contain it.
// Escape-free values re-escape to themselves, so the span is both the
// decoded value and its wire form.
func skimHeaderValueByte(c byte) bool {
	return c > 0x20 && c < 0x7f && c != '&' && c != '<' && c != '>'
}

// skimBinding pairs a prefix with a namespace URI; both alias the input
// or package literals.
type skimBinding struct{ pfx, uri []byte }

type skimSpan struct{ lo, hi int }

type skimAttr struct {
	name skimSpan // full qname
	pfx  skimSpan // prefix part; lo==hi when unprefixed
}

type skimFrame struct {
	name       skimSpan
	scopeFloor int
	sawContent bool
}

// skimSim walks the body content while simulating the serializer's
// namespace machinery — the scope stack, the persistent prefix
// assignments (seeded exactly as the skeleton's captured body State:
// the envelope prefix in scope, the envelope and wsa namespaces
// assigned), and the generated-prefix counter. An element is canonical
// iff its declarations are exactly the ones the serializer would emit
// there, under the prefixes the serializer would pick.
type skimSim struct {
	raw      []byte
	scopes   [skimMaxScopes + 1]skimBinding
	nScopes  int
	assigned [skimMaxAssigned + 2]skimBinding
	nAssign  int
	ngen     int
	frames   [skimMaxDepth]skimFrame
	depth    int

	// Per-open-tag scratch; elements are processed iteratively, never
	// reentrantly, so one set suffices.
	attrs  [skimMaxAttrs]skimAttr
	decls  [skimMaxDecls]skimBinding
	expect [skimMaxDecls]skimBinding
}

func (s *skimSim) init(raw []byte, v soap.Version) {
	lits := &skimLits[v]
	s.raw = raw
	s.scopes[0] = skimBinding{pfx: lits.envPfxB, uri: lits.envNSB}
	s.nScopes = 1
	s.assigned[0] = s.scopes[0]
	// The wsa assignment is made by the header blocks when any exist;
	// when none do, PreferredPrefixes yields the same prefix on first
	// use, so one seed serves every header shape.
	s.assigned[1] = skimBinding{pfx: wsaPrefixBytes, uri: wsaNSBytes}
	s.nAssign = 2
}

// run scans body content from offset i and returns the offset of the
// closing "</" at body level. Body level admits elements only (the
// parser drops body-level text, which would change the re-render) and
// requires at least one.
func (s *skimSim) run(i int) (end int, ok bool) {
	raw := s.raw
	elems := 0
	for {
		if i >= len(raw) {
			return 0, false
		}
		if c := raw[i]; c != '<' {
			if s.depth == 0 {
				return 0, false // body-level text is dropped by FromTree
			}
			fr := &s.frames[s.depth-1]
			if fr.sawContent {
				return 0, false // text after a child re-renders at the front
			}
			if i, ok = s.text(i); !ok {
				return 0, false
			}
			fr.sawContent = true
			continue
		}
		if i+1 >= len(raw) {
			return 0, false
		}
		switch raw[i+1] {
		case '/':
			if s.depth == 0 {
				if elems == 0 {
					return 0, false
				}
				return i, true
			}
			fr := &s.frames[s.depth-1]
			if !fr.sawContent {
				return 0, false // <x></x> re-renders self-closed
			}
			j := i + 2
			n := fr.name.hi - fr.name.lo
			if len(raw)-j < n+1 ||
				!bytes.Equal(raw[j:j+n], raw[fr.name.lo:fr.name.hi]) ||
				raw[j+n] != '>' {
				return 0, false
			}
			s.nScopes = fr.scopeFloor
			s.depth--
			i = j + n + 1
		case '!', '?':
			return 0, false // comments, CDATA, PIs, DOCTYPE: never canonical
		default:
			if s.depth > 0 {
				s.frames[s.depth-1].sawContent = true
			} else {
				elems++
			}
			if i, ok = s.element(i); !ok {
				return 0, false
			}
		}
	}
}

// text scans one character-data run up to the next '<'. Canonical text
// is the serializer's escape set exactly: raw printable ASCII minus
// &, <, > (each only as its named entity), raw tab/newline, and at
// least one non-whitespace character (the parser drops whitespace-only
// runs, which would change the re-render).
func (s *skimSim) text(i int) (int, bool) {
	raw := s.raw
	nonWS := false
	for i < len(raw) {
		c := raw[i]
		if c == '<' {
			break
		}
		switch {
		case c == '&':
			switch {
			case hasAt(raw, i, "&amp;"):
				i += len("&amp;")
			case hasAt(raw, i, "&lt;"):
				i += len("&lt;")
			case hasAt(raw, i, "&gt;"):
				i += len("&gt;")
			default:
				return 0, false
			}
			nonWS = true
		case c == '>':
			return 0, false // serializer emits &gt;
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c > 0x20 && c < 0x7f:
			nonWS = true
			i++
		default:
			return 0, false // \r normalizes, non-ASCII needs rune checks
		}
	}
	if !nonWS {
		return 0, false
	}
	return i, true
}

// element scans one open tag at i (raw[i] == '<') and simulates the
// serializer over it.
func (s *skimSim) element(i int) (int, bool) {
	raw := s.raw
	if s.depth >= skimMaxDepth {
		return 0, false
	}
	name, pfx, j, ok := s.qname(i + 1)
	if !ok {
		return 0, false
	}
	nAttrs, nDecls := 0, 0
	for j < len(raw) && raw[j] == ' ' {
		an, apfx, k, ok := s.qname(j + 1)
		if !ok {
			return 0, false
		}
		isDecl := apfx.hi-apfx.lo == 5 && string(raw[apfx.lo:apfx.hi]) == "xmlns"
		if !isDecl && an.hi-an.lo == 5 && string(raw[an.lo:an.hi]) == "xmlns" {
			return 0, false // default xmlns: the serializer never emits one
		}
		if len(raw)-k < 2 || raw[k] != '=' || raw[k+1] != '"' {
			return 0, false
		}
		vLo := k + 2
		var vHi int
		if isDecl {
			vHi, ok = s.declValue(vLo)
		} else {
			vHi, ok = s.attrValue(vLo)
		}
		if !ok {
			return 0, false
		}
		j = vHi + 1
		if isDecl {
			dp := raw[apfx.hi+1 : an.hi]
			if string(dp) == "xml" || string(dp) == "xmlns" {
				return 0, false
			}
			if nDecls >= skimMaxDecls {
				return 0, false
			}
			for k := 0; k < nDecls; k++ {
				if bytes.Equal(s.decls[k].pfx, dp) {
					return 0, false // duplicate declaration
				}
			}
			s.decls[nDecls] = skimBinding{pfx: dp, uri: raw[vLo:vHi]}
			nDecls++
		} else {
			if nDecls > 0 {
				return 0, false // attr after a decl: not serializer order
			}
			if apfx.lo < apfx.hi && string(raw[apfx.lo:apfx.hi]) == "xml" {
				return 0, false
			}
			if nAttrs >= skimMaxAttrs {
				return 0, false
			}
			for k := 0; k < nAttrs; k++ {
				p := s.attrs[k].name
				if bytes.Equal(raw[p.lo:p.hi], raw[an.lo:an.hi]) {
					return 0, false // duplicate attribute (parse error)
				}
			}
			s.attrs[nAttrs] = skimAttr{name: an, pfx: apfx}
			nAttrs++
		}
	}
	selfClose := false
	if j < len(raw) && raw[j] == '/' {
		selfClose = true
		j++
	}
	if j >= len(raw) || raw[j] != '>' {
		return 0, false
	}
	j++

	// Replay the serializer's qname walk — element name first, then
	// attributes in order — accumulating the declarations it would emit,
	// and require the tag's actual declarations to match exactly.
	floor := s.nScopes
	nExpect := 0
	if pfx.lo < pfx.hi {
		uri, ok := s.resolve(raw[pfx.lo:pfx.hi], nDecls)
		if !ok || !s.process(uri, raw[pfx.lo:pfx.hi], &nExpect) {
			return 0, false
		}
	}
	for k := 0; k < nAttrs; k++ {
		ap := s.attrs[k].pfx
		if ap.lo == ap.hi {
			continue
		}
		uri, ok := s.resolve(raw[ap.lo:ap.hi], nDecls)
		if !ok || !s.process(uri, raw[ap.lo:ap.hi], &nExpect) {
			return 0, false
		}
	}
	if nExpect != nDecls {
		return 0, false
	}
	for k := 0; k < nDecls; k++ {
		if !bytes.Equal(s.expect[k].pfx, s.decls[k].pfx) ||
			!bytes.Equal(s.expect[k].uri, s.decls[k].uri) {
			return 0, false
		}
	}
	if selfClose {
		s.nScopes = floor
		return j, true
	}
	s.frames[s.depth] = skimFrame{name: name, scopeFloor: floor}
	s.depth++
	return j, true
}

// resolve maps a prefix to its URI — the element's own declarations
// shadow the outer scopes — or declines (the parser would reject an
// undeclared prefix).
func (s *skimSim) resolve(p []byte, nDecls int) ([]byte, bool) {
	for k := 0; k < nDecls; k++ {
		if bytes.Equal(s.decls[k].pfx, p) {
			return s.decls[k].uri, true
		}
	}
	for k := s.nScopes - 1; k >= 0; k-- {
		if bytes.Equal(s.scopes[k].pfx, p) {
			return s.scopes[k].uri, true
		}
	}
	return nil, false
}

// process replays one serializer qname emission: an in-scope URI must
// reuse the innermost prefix; a new URI must use exactly the prefix the
// generator would assign, pushing a scope and an expected declaration.
func (s *skimSim) process(uri, p []byte, nExpect *int) bool {
	for k := s.nScopes - 1; k >= 0; k-- {
		if bytes.Equal(s.scopes[k].uri, uri) {
			return bytes.Equal(s.scopes[k].pfx, p)
		}
	}
	want, ok := s.prefixFor(uri)
	if !ok || !bytes.Equal(want, p) {
		return false
	}
	if s.nScopes >= len(s.scopes) || *nExpect >= skimMaxDecls {
		return false
	}
	s.scopes[s.nScopes] = skimBinding{pfx: want, uri: uri}
	s.nScopes++
	s.expect[*nExpect] = skimBinding{pfx: want, uri: uri}
	*nExpect++
	return true
}

// prefixFor mirrors prefixGen.prefixFor: sticky assignment by URI, then
// the preferred prefix if unused, then generated ns1, ns2, ... The
// used set is exactly the assigned prefixes, so one array serves both.
func (s *skimSim) prefixFor(uri []byte) ([]byte, bool) {
	for k := 0; k < s.nAssign; k++ {
		if bytes.Equal(s.assigned[k].uri, uri) {
			return s.assigned[k].pfx, true
		}
	}
	p := preferredPrefixBytes[string(uri)]
	if p == nil || s.prefixUsed(p) {
		for {
			s.ngen++
			if s.ngen > skimMaxGen {
				return nil, false
			}
			if g := genPrefixBytes[s.ngen-1]; !s.prefixUsed(g) {
				p = g
				break
			}
		}
	}
	if s.nAssign >= len(s.assigned) {
		return nil, false
	}
	s.assigned[s.nAssign] = skimBinding{pfx: p, uri: uri}
	s.nAssign++
	return p, true
}

func (s *skimSim) prefixUsed(p []byte) bool {
	for k := 0; k < s.nAssign; k++ {
		if bytes.Equal(s.assigned[k].pfx, p) {
			return true
		}
	}
	return false
}

// qname scans an ASCII name at i, returning the full span, the prefix
// span (lo==hi when unprefixed), and the index past the name. Non-ASCII
// names decline to the parser.
func (s *skimSim) qname(i int) (name, pfx skimSpan, end int, ok bool) {
	raw := s.raw
	lo := i
	if i >= len(raw) || !skimNameStart(raw[i]) {
		return name, pfx, 0, false
	}
	i++
	colon := -1
	for i < len(raw) {
		c := raw[i]
		if skimNameByte(c) {
			i++
			continue
		}
		if c == ':' && colon < 0 && i+1 < len(raw) && skimNameStart(raw[i+1]) {
			colon = i
			i += 2
			continue
		}
		break
	}
	name = skimSpan{lo: lo, hi: i}
	pfx = skimSpan{lo: lo, hi: lo}
	if colon >= 0 {
		pfx.hi = colon
	}
	return name, pfx, i, true
}

func skimNameStart(c byte) bool {
	return c == '_' || ('A' <= c && c <= 'Z') || ('a' <= c && c <= 'z')
}

func skimNameByte(c byte) bool {
	return skimNameStart(c) || ('0' <= c && c <= '9') || c == '.' || c == '-'
}

// attrValue scans a double-quoted attribute value from i (just past the
// opening quote) and returns the closing-quote index. Canonical values
// are printable ASCII with the serializer's attribute escape set — raw
// tab/newline/quote would re-escape, so they decline, as does any
// reference outside the set.
func (s *skimSim) attrValue(i int) (int, bool) {
	raw := s.raw
	for i < len(raw) {
		c := raw[i]
		switch {
		case c == '"':
			return i, true
		case c == '&':
			switch {
			case hasAt(raw, i, "&amp;"):
				i += len("&amp;")
			case hasAt(raw, i, "&lt;"):
				i += len("&lt;")
			case hasAt(raw, i, "&gt;"):
				i += len("&gt;")
			case hasAt(raw, i, "&quot;"):
				i += len("&quot;")
			case hasAt(raw, i, "&#10;"):
				i += len("&#10;")
			case hasAt(raw, i, "&#9;"):
				i += len("&#9;")
			default:
				return 0, false
			}
		case c == '<' || c == '>':
			return 0, false
		case c >= 0x20 && c < 0x7f:
			i++
		default:
			return 0, false
		}
	}
	return 0, false
}

// declValue is attrValue restricted to non-empty reference-free URIs,
// so a declaration's raw bytes, its decoded URI, and the re-escaped
// form are all identical and the simulation can compare spans directly.
func (s *skimSim) declValue(i int) (int, bool) {
	raw := s.raw
	lo := i
	for i < len(raw) {
		c := raw[i]
		switch {
		case c == '"':
			if i == lo {
				return 0, false // empty binding is a parse error
			}
			return i, true
		case c == '&' || c == '<' || c == '>':
			return 0, false
		case c >= 0x20 && c < 0x7f:
			i++
		default:
			return 0, false
		}
	}
	return 0, false
}

// AppendSkimRewritten renders a complete envelope from a skimmed
// message through the skeleton cache: fields holds the rewritten header
// values in canonical block order (To, Action, MessageID, RelatesTo,
// From, ReplyTo, FaultTo; "" omits the block, EPR fields carry the
// Address text) and body is the raw body span, spliced verbatim.
// Output is byte-identical to AppendRewritten over the parsed envelope
// with an equal-valued Headers: skim acceptance proves the body span is
// canonical serializer output for the skeleton's splice state, and the
// header values pass through the same escape-and-splice as the parse
// path.
func AppendSkimRewritten(dst []byte, v soap.Version, body []byte, fields *[len(fieldLocals)]string) ([]byte, error) {
	var vals [len(fieldLocals)]string
	var mask uint8
	n := 0
	for f, val := range fields {
		if val == "" {
			continue
		}
		vals[n] = val
		mask |= 1 << f
		n++
	}
	sk, err := skeletonFor(v, mask)
	if err != nil {
		return nil, err
	}
	return sk.AppendSpliced(dst, vals[:n], body)
}
