// Package wsdl provides minimal WSDL 1.1 document generation and parsing,
// enough for the Registry's "directory or Yellow Pages, possibly as a
// simple browseable list of WSDL files with metadata" (paper §4.1) and the
// future-work goal of "interactive browsing of WSDL files describing
// services provided by WS-Dispatcher".
package wsdl

import (
	"errors"
	"fmt"

	"repro/internal/xmlsoap"
)

// Namespace URIs used in generated documents.
const (
	NS     = "http://schemas.xmlsoap.org/wsdl/"
	SoapNS = "http://schemas.xmlsoap.org/wsdl/soap/"
	XSDNS  = "http://www.w3.org/2001/XMLSchema"
)

// Part is one message part (parameter or result).
type Part struct {
	Name string
	// Type is an XSD simple type local name, e.g. "string".
	Type string
}

// Operation describes one RPC operation.
type Operation struct {
	Name   string
	Input  []Part
	Output []Part
}

// Service describes one service for the registry's browseable listing.
type Service struct {
	// Name is the service name (conventionally the logical name).
	Name string
	// TargetNS is the service namespace.
	TargetNS string
	// Documentation is free-text metadata shown in the Yellow Pages.
	Documentation string
	// Endpoint is the soap:address location clients should call —
	// through the dispatcher this is the *logical* URL.
	Endpoint string
	// Operations lists the service's RPC operations.
	Operations []Operation
}

// Document renders the WSDL 1.1 document tree.
func (s *Service) Document() *xmlsoap.Element {
	def := xmlsoap.New(NS, "definitions").
		SetAttr("", "name", s.Name).
		SetAttr("", "targetNamespace", s.TargetNS)
	if s.Documentation != "" {
		def.Add(xmlsoap.NewText(NS, "documentation", s.Documentation))
	}
	portType := xmlsoap.New(NS, "portType").SetAttr("", "name", s.Name+"PortType")
	for _, op := range s.Operations {
		inMsg := xmlsoap.New(NS, "message").SetAttr("", "name", op.Name+"Request")
		for _, p := range op.Input {
			inMsg.Add(xmlsoap.New(NS, "part").
				SetAttr("", "name", p.Name).SetAttr("", "type", "xsd:"+p.Type))
		}
		outMsg := xmlsoap.New(NS, "message").SetAttr("", "name", op.Name+"Response")
		for _, p := range op.Output {
			outMsg.Add(xmlsoap.New(NS, "part").
				SetAttr("", "name", p.Name).SetAttr("", "type", "xsd:"+p.Type))
		}
		def.Add(inMsg, outMsg)
		portType.Add(xmlsoap.New(NS, "operation").SetAttr("", "name", op.Name).Add(
			xmlsoap.New(NS, "input").SetAttr("", "message", "tns:"+op.Name+"Request"),
			xmlsoap.New(NS, "output").SetAttr("", "message", "tns:"+op.Name+"Response"),
		))
	}
	def.Add(portType)

	binding := xmlsoap.New(NS, "binding").
		SetAttr("", "name", s.Name+"Binding").
		SetAttr("", "type", "tns:"+s.Name+"PortType").
		Add(xmlsoap.New(SoapNS, "binding").
			SetAttr("", "style", "rpc").
			SetAttr("", "transport", "http://schemas.xmlsoap.org/soap/http"))
	def.Add(binding)

	def.Add(xmlsoap.New(NS, "service").SetAttr("", "name", s.Name).Add(
		xmlsoap.New(NS, "port").
			SetAttr("", "name", s.Name+"Port").
			SetAttr("", "binding", "tns:"+s.Name+"Binding").
			Add(xmlsoap.New(SoapNS, "address").SetAttr("", "location", s.Endpoint)),
	))
	return def
}

// Marshal renders the WSDL document bytes.
func (s *Service) Marshal() ([]byte, error) {
	return xmlsoap.MarshalDoc(s.Document())
}

// ErrNotWSDL is returned by Parse on a non-WSDL root element.
var ErrNotWSDL = errors.New("wsdl: not a WSDL definitions document")

// Parse extracts the Service summary from a WSDL 1.1 document produced by
// this package (name, namespace, documentation, operations, endpoint).
func Parse(data []byte) (*Service, error) {
	root, err := xmlsoap.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("wsdl: %w", err)
	}
	// Registry entries hold the extracted Service for the process
	// lifetime; detach so its strings own their memory instead of
	// aliasing (and pinning) the whole document buffer. Cold path.
	root = root.Detach()
	if root.Name.Space != NS || root.Name.Local != "definitions" {
		return nil, ErrNotWSDL
	}
	s := &Service{}
	s.Name, _ = root.Attr("", "name")
	s.TargetNS, _ = root.Attr("", "targetNamespace")
	s.Documentation = root.ChildText(NS, "documentation")

	// Message parts indexed by message name.
	parts := map[string][]Part{}
	for _, m := range root.ChildrenNamed(NS, "message") {
		name, _ := m.Attr("", "name")
		for _, p := range m.ChildrenNamed(NS, "part") {
			pn, _ := p.Attr("", "name")
			pt, _ := p.Attr("", "type")
			parts[name] = append(parts[name], Part{Name: pn, Type: stripPrefix(pt)})
		}
	}
	if pt := root.Child(NS, "portType"); pt != nil {
		for _, op := range pt.ChildrenNamed(NS, "operation") {
			name, _ := op.Attr("", "name")
			o := Operation{Name: name}
			if in := op.Child(NS, "input"); in != nil {
				msg, _ := in.Attr("", "message")
				o.Input = parts[stripPrefix(msg)]
			}
			if out := op.Child(NS, "output"); out != nil {
				msg, _ := out.Attr("", "message")
				o.Output = parts[stripPrefix(msg)]
			}
			s.Operations = append(s.Operations, o)
		}
	}
	if svc := root.Child(NS, "service"); svc != nil {
		if port := svc.Child(NS, "port"); port != nil {
			if addr := port.Child(SoapNS, "address"); addr != nil {
				s.Endpoint, _ = addr.Attr("", "location")
			}
		}
	}
	return s, nil
}

func stripPrefix(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return s[i+1:]
		}
	}
	return s
}
