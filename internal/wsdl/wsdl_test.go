package wsdl

import (
	"errors"
	"strings"
	"testing"
)

func sampleService() *Service {
	return &Service{
		Name:          "echo",
		TargetNS:      "urn:echo",
		Documentation: "Echo test service used by the scalability experiments.",
		Endpoint:      "http://wsd:9000/services/echo",
		Operations: []Operation{
			{
				Name:   "echoMessage",
				Input:  []Part{{Name: "message", Type: "string"}, {Name: "seq", Type: "int"}},
				Output: []Part{{Name: "return", Type: "string"}},
			},
			{
				Name:   "ping",
				Output: []Part{{Name: "alive", Type: "boolean"}},
			},
		},
	}
}

func TestMarshalContainsCoreSections(t *testing.T) {
	raw, err := sampleService().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{
		"definitions", `name="echo"`, `targetNamespace="urn:echo"`,
		"portType", "echoMessageRequest", "echoMessageResponse",
		`location="http://wsd:9000/services/echo"`, `style="rpc"`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("WSDL missing %q:\n%s", want, s)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	orig := sampleService()
	raw, err := orig.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.TargetNS != orig.TargetNS ||
		back.Documentation != orig.Documentation || back.Endpoint != orig.Endpoint {
		t.Fatalf("metadata = %+v", back)
	}
	if len(back.Operations) != 2 {
		t.Fatalf("operations = %+v", back.Operations)
	}
	op := back.Operations[0]
	if op.Name != "echoMessage" || len(op.Input) != 2 || len(op.Output) != 1 {
		t.Fatalf("op = %+v", op)
	}
	if op.Input[0] != (Part{Name: "message", Type: "string"}) {
		t.Fatalf("input part = %+v", op.Input[0])
	}
}

func TestParseRejectsNonWSDL(t *testing.T) {
	if _, err := Parse([]byte(`<x xmlns="urn:y"/>`)); !errors.Is(err, ErrNotWSDL) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Parse([]byte(`not xml`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEmptyServiceStillValid(t *testing.T) {
	s := &Service{Name: "bare", TargetNS: "urn:bare", Endpoint: "http://h:1/x"}
	raw, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "bare" || len(back.Operations) != 0 {
		t.Fatalf("back = %+v", back)
	}
}
