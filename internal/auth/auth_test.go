package auth

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

func newAuthority(t *testing.T) (*Authority, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	a := New([]byte("dispatcher-signing-key"), time.Hour, clk)
	a.AddPrincipal("alice", "s3cret")
	return a, clk
}

func TestLoginAndVerify(t *testing.T) {
	a, _ := newAuthority(t)
	token, err := a.Login("alice", "s3cret")
	if err != nil {
		t.Fatal(err)
	}
	who, err := a.Verify(token)
	if err != nil {
		t.Fatal(err)
	}
	if who != "alice" {
		t.Fatalf("principal = %q", who)
	}
}

func TestLoginWrongSecret(t *testing.T) {
	a, _ := newAuthority(t)
	if _, err := a.Login("alice", "wrong"); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("err = %v", err)
	}
	if _, err := a.Login("mallory", "s3cret"); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyExpired(t *testing.T) {
	a, clk := newAuthority(t)
	token, _ := a.Login("alice", "s3cret")
	clk.Advance(2 * time.Hour)
	if _, err := a.Verify(token); !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyTamperedPayload(t *testing.T) {
	a, _ := newAuthority(t)
	token, _ := a.Login("alice", "s3cret")
	parts := strings.SplitN(token, ".", 2)
	forged := "x" + parts[0][1:] + "." + parts[1]
	if _, err := a.Verify(forged); err == nil {
		t.Fatal("tampered token verified")
	}
}

func TestVerifyTamperedSignature(t *testing.T) {
	a, _ := newAuthority(t)
	token, _ := a.Login("alice", "s3cret")
	if _, err := a.Verify(token[:len(token)-2] + "zz"); err == nil {
		t.Fatal("tampered signature verified")
	}
}

func TestVerifyGarbage(t *testing.T) {
	a, _ := newAuthority(t)
	for _, tok := range []string{"", ".", "abc", "!!!.???", "YWJj."} {
		if _, err := a.Verify(tok); err == nil {
			t.Fatalf("garbage token %q verified", tok)
		}
	}
}

func TestRevokeKillsExistingTokens(t *testing.T) {
	a, _ := newAuthority(t)
	token, _ := a.Login("alice", "s3cret")
	a.Revoke("alice")
	if _, err := a.Verify(token); err == nil {
		t.Fatal("revoked principal's token verified")
	}
}

func TestDifferentKeysDontCrossVerify(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	a1 := New([]byte("key-one"), time.Hour, clk)
	a2 := New([]byte("key-two"), time.Hour, clk)
	a1.AddPrincipal("alice", "s")
	a2.AddPrincipal("alice", "s")
	token, _ := a1.Login("alice", "s")
	if _, err := a2.Verify(token); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
}

func TestPrincipalWithPipeInName(t *testing.T) {
	a, _ := newAuthority(t)
	a.AddPrincipal("bob|smith", "pw")
	token, err := a.Login("bob|smith", "pw")
	if err != nil {
		t.Fatal(err)
	}
	who, err := a.Verify(token)
	if err != nil {
		t.Fatal(err)
	}
	if who != "bob|smith" {
		t.Fatalf("principal = %q", who)
	}
}
