// Package auth implements the single-sign-on support the paper plans for
// the WS-Dispatcher (§4.4): "investigate how WSD can provide
// authentication and authorization (single sign-on) for web services that
// do not need to implement security [and] instead rel[y] on WSD to do
// checks".
//
// The model is a token service at the dispatcher: a peer authenticates
// once with a shared secret and receives a signed, expiring token; every
// subsequent request carries the token in an HTTP header, and the
// dispatcher verifies it before forwarding — the backend services never
// see credentials.
package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/cmap"
)

// HeaderName carries the token on dispatcher requests.
const HeaderName = "X-WSD-Token"

// Errors returned by Verify.
var (
	ErrBadCredentials = errors.New("auth: unknown principal or wrong secret")
	ErrMalformedToken = errors.New("auth: malformed token")
	ErrBadSignature   = errors.New("auth: signature mismatch")
	ErrExpired        = errors.New("auth: token expired")
)

// Authority issues and verifies tokens. It is safe for concurrent use.
type Authority struct {
	key    []byte
	clk    clock.Clock
	ttl    time.Duration
	users  *cmap.Map[string] // principal -> secret
	denied *cmap.Map[struct{}]
}

// New builds an Authority signing with key; tokens live for ttl
// (default 1h when 0).
func New(key []byte, ttl time.Duration, clk clock.Clock) *Authority {
	if clk == nil {
		clk = clock.Wall
	}
	if ttl <= 0 {
		ttl = time.Hour
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &Authority{key: k, clk: clk, ttl: ttl, users: cmap.New[string](), denied: cmap.New[struct{}]()}
}

// AddPrincipal registers a peer and its shared secret.
func (a *Authority) AddPrincipal(name, secret string) { a.users.Put(name, secret) }

// Revoke bans a principal; existing tokens stop verifying immediately.
func (a *Authority) Revoke(name string) { a.denied.Put(name, struct{}{}) }

// Login authenticates a principal and returns a token:
// base64(principal|expiresUnixNano) + "." + base64(HMAC-SHA256).
func (a *Authority) Login(principal, secret string) (string, error) {
	want, ok := a.users.Get(principal)
	if !ok || !hmac.Equal([]byte(want), []byte(secret)) {
		return "", ErrBadCredentials
	}
	expires := a.clk.Now().Add(a.ttl).UnixNano()
	payload := fmt.Sprintf("%s|%d", principal, expires)
	sig := a.sign(payload)
	return base64.RawURLEncoding.EncodeToString([]byte(payload)) + "." +
		base64.RawURLEncoding.EncodeToString(sig), nil
}

// Verify checks a token and returns the authenticated principal.
func (a *Authority) Verify(token string) (string, error) {
	dot := strings.IndexByte(token, '.')
	if dot <= 0 {
		return "", ErrMalformedToken
	}
	payloadB, err := base64.RawURLEncoding.DecodeString(token[:dot])
	if err != nil {
		return "", ErrMalformedToken
	}
	sig, err := base64.RawURLEncoding.DecodeString(token[dot+1:])
	if err != nil {
		return "", ErrMalformedToken
	}
	payload := string(payloadB)
	if !hmac.Equal(sig, a.sign(payload)) {
		return "", ErrBadSignature
	}
	bar := strings.LastIndexByte(payload, '|')
	if bar <= 0 {
		return "", ErrMalformedToken
	}
	principal := payload[:bar]
	expires, err := strconv.ParseInt(payload[bar+1:], 10, 64)
	if err != nil {
		return "", ErrMalformedToken
	}
	if a.clk.Now().UnixNano() > expires {
		return "", ErrExpired
	}
	if _, banned := a.denied.Get(principal); banned {
		return "", ErrBadCredentials
	}
	if _, ok := a.users.Get(principal); !ok {
		return "", ErrBadCredentials
	}
	return principal, nil
}

func (a *Authority) sign(payload string) []byte {
	m := hmac.New(sha256.New, a.key)
	m.Write([]byte(payload))
	return m.Sum(nil)
}
