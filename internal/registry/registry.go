// Package registry implements the WS-Dispatcher's service registry: the
// independent module both dispatchers share, mapping "logical" service
// addresses to the permanent physical addresses where each service is
// implemented (paper §4.1).
//
// The paper's implementation "uses text files for mapping logical address
// with physical address" guarded by a concurrent hash map; this package
// keeps both properties (LoadFile/SaveFile on a plain text format, cmap on
// the hot path) and adds the future-work items §4.4 sketches: multiple
// physical endpoints per logical name with load-balancing policies,
// "checking if service is alive", and browseable WSDL metadata.
package registry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/cmap"
	"repro/internal/httpx"
	"repro/internal/wsdl"
)

// Policy selects among multiple physical endpoints for one logical name.
type Policy int

const (
	// PolicyFirst always uses the first live endpoint (primary/backup).
	PolicyFirst Policy = iota
	// PolicyRoundRobin rotates across live endpoints — the paper's
	// planned "load-balancing system into the Registry service that
	// uses a farm of WS-Dispatchers".
	PolicyRoundRobin
	// PolicyLeastPending picks the endpoint with the fewest in-flight
	// forwards (requires callers to Acquire/Release).
	PolicyLeastPending
)

func (p Policy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyLeastPending:
		return "least-pending"
	default:
		return "first"
	}
}

// Endpoint is one physical location of a service.
type Endpoint struct {
	// URL is the physical address, e.g. "http://ws1:8001/echo".
	URL string
	// alive is 1 when the endpoint passed its last liveness check (or
	// was never checked); 0 when marked dead.
	alive atomic.Bool
	// pending counts in-flight forwards (PolicyLeastPending).
	pending atomic.Int64
}

// Alive reports the endpoint's last known liveness.
func (e *Endpoint) Alive() bool { return e.alive.Load() }

// Pending returns the current in-flight count.
func (e *Endpoint) Pending() int64 { return e.pending.Load() }

// Entry is the registry record for one logical service name.
//
// Entries are read lock-free on the dispatcher hot path (Resolve per
// forwarded message) while Register and SetDoc may run concurrently —
// peers come and go at runtime — so the mutable state is published
// through atomics: the endpoint list is copy-on-write (readers load one
// immutable snapshot; writers copy, append, and swap under mu) and the
// WSDL document is an atomic pointer.
type Entry struct {
	// Logical is the name clients use, e.g. "echo".
	Logical string

	// mu serializes writers (Register's append). Readers never take it.
	mu sync.Mutex
	// eps is the copy-on-write endpoint list, in registration order. A
	// loaded snapshot is immutable: Register publishes additions by
	// swapping in a fresh slice, never by appending in place.
	eps atomic.Pointer[[]*Endpoint]
	// doc is optional browseable WSDL metadata.
	doc atomic.Pointer[wsdl.Service]

	rr atomic.Uint64 // round-robin cursor

	// docCache holds the rendered WSDL bytes for Doc at a given
	// endpoint, so repeated directory/WSDL requests do not re-serialize
	// the document.
	docCache atomic.Pointer[renderedDoc]
}

// Endpoints returns the current endpoint snapshot, in registration
// order. The slice is immutable — callers must not modify it; a
// concurrent Register publishes a new slice rather than growing this
// one, so iterating a snapshot is always safe.
func (e *Entry) Endpoints() []*Endpoint {
	if p := e.eps.Load(); p != nil {
		return *p
	}
	return nil
}

// Doc returns the entry's WSDL metadata, nil when none was set.
func (e *Entry) Doc() *wsdl.Service { return e.doc.Load() }

// renderedDoc records which *wsdl.Service the bytes were rendered from:
// a cache entry is valid only while the entry's Doc pointer still
// matches, so a SetDoc racing a render cannot pin stale bytes — the
// next lookup sees the pointer mismatch and re-renders.
type renderedDoc struct {
	doc      *wsdl.Service
	endpoint string
	bytes    []byte
}

// DocBytes renders the entry's WSDL document with endpoint substituted
// when the document has none, caching the bytes per (document,
// endpoint). It returns nil when the entry has no Doc.
func (e *Entry) DocBytes(endpoint string) ([]byte, error) {
	doc := e.doc.Load()
	if doc == nil {
		return nil, nil
	}
	if c := e.docCache.Load(); c != nil && c.doc == doc && c.endpoint == endpoint {
		return c.bytes, nil
	}
	rendered := *doc
	if rendered.Endpoint == "" && endpoint != "" {
		rendered.Endpoint = endpoint
	}
	b, err := rendered.Marshal()
	if err != nil {
		return nil, err
	}
	e.docCache.Store(&renderedDoc{doc: doc, endpoint: endpoint, bytes: b})
	return b, nil
}

// Errors returned by lookups.
var (
	ErrUnknownService = errors.New("registry: unknown logical service")
	ErrNoLiveEndpoint = errors.New("registry: no live endpoint")
)

// Registry is the concurrent logical→physical mapping.
type Registry struct {
	entries *cmap.Map[*Entry]
	// byURL indexes every registered endpoint by its physical URL, so
	// URL-keyed failure hooks (MarkDeadURL, called from delivery-failure
	// paths that know only the physical address) are one map lookup
	// instead of a scan over every entry. Slices are copy-on-write:
	// writers publish a fresh slice under the shard lock, readers
	// iterate whatever snapshot they loaded. A URL shared by several
	// logical names indexes each of its Endpoint records.
	byURL  *cmap.Map[[]*Endpoint]
	policy Policy
	clk    clock.Clock
}

// New returns an empty registry using the given balancing policy.
func New(policy Policy, clk clock.Clock) *Registry {
	if clk == nil {
		clk = clock.Wall
	}
	return &Registry{
		entries: cmap.New[*Entry](),
		byURL:   cmap.New[[]*Endpoint](),
		policy:  policy,
		clk:     clk,
	}
}

// Register adds physical endpoints for a logical name, creating the entry
// if needed. Duplicate URLs are ignored. New endpoints start alive.
func (r *Registry) Register(logical string, urls ...string) *Entry {
	entry := r.entries.GetOrCompute(logical, func() *Entry {
		return &Entry{Logical: logical}
	})
	entry.mu.Lock()
	defer entry.mu.Unlock()
	cur := entry.Endpoints()
	next := cur
	grown := false
	for _, u := range urls {
		dup := false
		for _, e := range next {
			if e.URL == u {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if !grown {
			// Copy-on-write: concurrent Resolve/Save iterate the old
			// snapshot; additions publish atomically as one new slice.
			next = append(make([]*Endpoint, 0, len(cur)+len(urls)), cur...)
			grown = true
		}
		ep := &Endpoint{URL: u}
		ep.alive.Store(true)
		next = append(next, ep)
		// Index the new endpoint by URL. The capped append forces a copy,
		// so a concurrent MarkDeadURL iterating the old snapshot never
		// sees the mutation.
		r.byURL.Update(u, func(old []*Endpoint, _ bool) []*Endpoint {
			return append(old[:len(old):len(old)], ep)
		})
	}
	if grown {
		entry.eps.Store(&next)
	}
	return entry
}

// SetDoc attaches WSDL metadata to a logical name (creating the entry).
func (r *Registry) SetDoc(logical string, doc *wsdl.Service) {
	entry := r.entries.GetOrCompute(logical, func() *Entry {
		return &Entry{Logical: logical}
	})
	entry.doc.Store(doc)
	entry.docCache.Store(nil)
}

// Unregister removes the whole logical name. It reports whether the entry
// existed.
func (r *Registry) Unregister(logical string) bool {
	entry, ok := r.entries.GetAndDelete(logical)
	if !ok {
		return false
	}
	// Unindex the entry's endpoints so MarkDeadURL cannot flag records
	// that are no longer routable (a later Register of the same URL makes
	// a fresh Endpoint). An emptied index slot stays allocated — bounded
	// by distinct URLs ever registered, not by churn.
	for _, ep := range entry.Endpoints() {
		r.byURL.Update(ep.URL, func(old []*Endpoint, _ bool) []*Endpoint {
			out := make([]*Endpoint, 0, len(old))
			for _, e := range old {
				if e != ep {
					out = append(out, e)
				}
			}
			return out
		})
	}
	return true
}

// Lookup returns the entry for a logical name.
func (r *Registry) Lookup(logical string) (*Entry, bool) {
	return r.entries.Get(logical)
}

// Resolve translates a logical name into one physical endpoint according
// to the balancing policy, skipping endpoints marked dead.
func (r *Registry) Resolve(logical string) (*Endpoint, error) {
	entry, ok := r.entries.Get(logical)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, logical)
	}
	eps := entry.Endpoints()
	// Single-endpoint fast path: the common deployment (one physical
	// service per logical name) resolves without building the live set —
	// every policy picks the only live endpoint anyway. Dispatchers call
	// Resolve per forwarded message, so this is on the hot path.
	if len(eps) == 1 {
		if e := eps[0]; e.Alive() {
			return e, nil
		}
		return nil, fmt.Errorf("%w for %q", ErrNoLiveEndpoint, logical)
	}
	var one [1]*Endpoint
	if r.selectLive(entry, eps, one[:]) == 0 {
		return nil, fmt.Errorf("%w for %q", ErrNoLiveEndpoint, logical)
	}
	return one[0], nil
}

// ResolveN fills dst with up to len(dst) distinct live endpoints for a
// logical name, in policy preference order (the first element is what
// Resolve would have returned; the rest are the failover candidates a
// caller retries in order when a forward fails). It returns how many
// were filled. The error is ErrUnknownService for an unregistered name
// and ErrNoLiveEndpoint when every endpoint is marked dead — the caller
// distinguishes "never heard of it" from "all backends down".
//
// Passing a caller-owned array keeps the failover path allocation-free:
// dispatchers resolve per forwarded message.
func (r *Registry) ResolveN(logical string, dst []*Endpoint) (int, error) {
	entry, ok := r.entries.Get(logical)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownService, logical)
	}
	n := r.selectLive(entry, entry.Endpoints(), dst)
	if n == 0 {
		return 0, fmt.Errorf("%w for %q", ErrNoLiveEndpoint, logical)
	}
	return n, nil
}

// selectLive writes up to len(dst) live endpoints from eps into dst in
// policy preference order and returns the count. eps is an immutable
// snapshot (Entry.Endpoints).
func (r *Registry) selectLive(entry *Entry, eps []*Endpoint, dst []*Endpoint) int {
	var stack [8]*Endpoint
	live := stack[:0]
	if len(eps) > len(stack) {
		live = make([]*Endpoint, 0, len(eps))
	}
	for _, e := range eps {
		if e.Alive() {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		return 0
	}
	n := len(dst)
	if n > len(live) {
		n = len(live)
	}
	switch r.policy {
	case PolicyRoundRobin:
		// One cursor advance per selection, however many candidates the
		// caller asked for: the cursor runs modulo the *live* set, so
		// rotation stays balanced as endpoints die and revive.
		start := entry.rr.Add(1) - 1
		for i := 0; i < n; i++ {
			dst[i] = live[(start+uint64(i))%uint64(len(live))]
		}
	case PolicyLeastPending:
		// Partial selection sort: order the n least-loaded candidates.
		for i := 0; i < n; i++ {
			best := i
			for j := i + 1; j < len(live); j++ {
				if live[j].Pending() < live[best].Pending() {
					best = j
				}
			}
			live[i], live[best] = live[best], live[i]
			dst[i] = live[i]
		}
	default:
		copy(dst, live[:n])
	}
	return n
}

// Acquire marks the start of a forward to ep (for PolicyLeastPending
// accounting); Release marks its end.
func (r *Registry) Acquire(ep *Endpoint) { ep.pending.Add(1) }

// Release decrements the in-flight count for ep.
func (r *Registry) Release(ep *Endpoint) { ep.pending.Add(-1) }

// Services returns all logical names, sorted (the browseable directory).
func (r *Registry) Services() []string {
	names := r.entries.Keys()
	sort.Strings(names)
	return names
}

// Len returns the number of logical entries.
func (r *Registry) Len() int { return r.entries.Len() }

// --- text-file persistence (paper: "uses text files for mapping") ---

// LoadFile merges entries from a text file. Format, one entry per line:
//
//	logical-name physical-url[,physical-url...]
//
// Blank lines and lines starting with '#' are ignored.
func (r *Registry) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	defer f.Close()
	return r.Load(f)
}

// Load reads the text format from any reader.
func (r *Registry) Load(src io.Reader) error {
	sc := bufio.NewScanner(src)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("registry: line %d: want \"logical url[,url]\", got %q", lineNo, line)
		}
		r.Register(fields[0], strings.Split(fields[1], ",")...)
	}
	return sc.Err()
}

// SaveFile writes the current mapping in the text format.
func (r *Registry) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	defer f.Close()
	return r.Save(f)
}

// Save writes the text format to any writer, sorted by logical name.
func (r *Registry) Save(dst io.Writer) error {
	w := bufio.NewWriter(dst)
	fmt.Fprintln(w, "# WS-Dispatcher service registry: logical-name physical-url[,physical-url...]")
	for _, name := range r.Services() {
		entry, ok := r.entries.Get(name)
		if !ok {
			continue
		}
		eps := entry.Endpoints()
		urls := make([]string, 0, len(eps))
		for _, e := range eps {
			urls = append(urls, e.URL)
		}
		fmt.Fprintf(w, "%s %s\n", name, strings.Join(urls, ","))
	}
	return w.Flush()
}

// --- liveness (future work: "checking if service is alive") ---

// CheckAlive probes every endpoint of every entry with an HTTP request and
// updates its liveness flag. It returns the number of endpoints found
// dead. A live endpoint is one that answers any HTTP status at all —
// reachability, not correctness, is what routing needs.
//
// The endpoint set is snapshotted up front and the probes run
// concurrently, each bounded by the caller's timeout — so one sweep
// costs roughly one timeout even when several endpoints are down, and
// no registry state is held across a network round trip (an earlier
// version probed inside the entry iteration, stalling lookups behind
// the slowest probe).
func (r *Registry) CheckAlive(client *httpx.Client, timeout time.Duration) int {
	var eps []*Endpoint
	r.entries.Range(func(_ string, entry *Entry) bool {
		eps = append(eps, entry.Endpoints()...)
		return true
	})
	var dead atomic.Int64
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep *Endpoint) {
			defer wg.Done()
			addr, path, err := httpx.SplitURL(ep.URL)
			if err != nil {
				ep.alive.Store(false)
				dead.Add(1)
				return
			}
			req := httpx.NewRequest("GET", path, nil)
			if resp, err := client.DoTimeout(addr, req, timeout); err != nil {
				ep.alive.Store(false)
				dead.Add(1)
			} else {
				resp.Release() // liveness only needs the status line
				ep.alive.Store(true)
			}
		}(ep)
	}
	wg.Wait()
	return int(dead.Load())
}

// MarkDead flags one endpoint URL as dead without probing (used by
// dispatchers after a forward failure).
func (r *Registry) MarkDead(logical, url string) {
	if entry, ok := r.entries.Get(logical); ok {
		for _, ep := range entry.Endpoints() {
			if ep.URL == url {
				ep.alive.Store(false)
			}
		}
	}
}

// MarkDeadURL flags every endpoint carrying the given physical URL dead,
// whatever logical names it serves. It is the failure hook for callers
// that only know the physical address — the MSG-Dispatcher's delivery
// threads see a destination URL, not the logical name it resolved from.
// One lookup in the byURL index replaces what used to be a scan of
// every entry's endpoint list: a delivery-failure burst against a large
// registry no longer pays O(entries × endpoints) per failed message.
func (r *Registry) MarkDeadURL(url string) {
	eps, _ := r.byURL.Get(url)
	for _, ep := range eps {
		ep.alive.Store(false)
	}
}

// MarkAlive flags one endpoint URL as alive.
func (r *Registry) MarkAlive(logical, url string) {
	if entry, ok := r.entries.Get(logical); ok {
		for _, ep := range entry.Endpoints() {
			if ep.URL == url {
				ep.alive.Store(true)
			}
		}
	}
}
