package registry

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/wsdl"
)

func TestRegisterAndResolve(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.Register("echo", "http://ws1:8001/echo")
	ep, err := r.Resolve("echo")
	if err != nil {
		t.Fatal(err)
	}
	if ep.URL != "http://ws1:8001/echo" {
		t.Fatalf("Resolve = %q", ep.URL)
	}
}

func TestResolveUnknown(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	if _, err := r.Resolve("ghost"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateURLIgnored(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.Register("echo", "http://a:1/x", "http://a:1/x")
	r.Register("echo", "http://a:1/x")
	entry, _ := r.Lookup("echo")
	if len(entry.Endpoints) != 1 {
		t.Fatalf("endpoints = %d", len(entry.Endpoints))
	}
}

func TestRoundRobinRotates(t *testing.T) {
	r := New(PolicyRoundRobin, clock.Wall)
	r.Register("echo", "http://a:1/x", "http://b:1/x", "http://c:1/x")
	seen := map[string]int{}
	for i := 0; i < 9; i++ {
		ep, err := r.Resolve("echo")
		if err != nil {
			t.Fatal(err)
		}
		seen[ep.URL]++
	}
	if len(seen) != 3 {
		t.Fatalf("round robin hit %d endpoints, want 3: %v", len(seen), seen)
	}
	for url, n := range seen {
		if n != 3 {
			t.Fatalf("uneven rotation: %s hit %d times", url, n)
		}
	}
}

func TestLeastPendingPrefersIdle(t *testing.T) {
	r := New(PolicyLeastPending, clock.Wall)
	r.Register("echo", "http://a:1/x", "http://b:1/x")
	entry, _ := r.Lookup("echo")
	busy := entry.Endpoints[0]
	r.Acquire(busy)
	r.Acquire(busy)
	ep, err := r.Resolve("echo")
	if err != nil {
		t.Fatal(err)
	}
	if ep.URL != "http://b:1/x" {
		t.Fatalf("least-pending chose busy endpoint %q", ep.URL)
	}
	r.Release(busy)
	r.Release(busy)
	if busy.Pending() != 0 {
		t.Fatalf("pending = %d", busy.Pending())
	}
}

func TestDeadEndpointSkipped(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.Register("echo", "http://a:1/x", "http://b:1/x")
	r.MarkDead("echo", "http://a:1/x")
	ep, err := r.Resolve("echo")
	if err != nil {
		t.Fatal(err)
	}
	if ep.URL != "http://b:1/x" {
		t.Fatalf("Resolve = %q, want the live endpoint", ep.URL)
	}
	r.MarkDead("echo", "http://b:1/x")
	if _, err := r.Resolve("echo"); !errors.Is(err, ErrNoLiveEndpoint) {
		t.Fatalf("err = %v", err)
	}
	r.MarkAlive("echo", "http://a:1/x")
	if _, err := r.Resolve("echo"); err != nil {
		t.Fatalf("resolve after revive: %v", err)
	}
}

func TestUnregister(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.Register("echo", "http://a:1/x")
	if !r.Unregister("echo") {
		t.Fatal("Unregister existing = false")
	}
	if r.Unregister("echo") {
		t.Fatal("Unregister missing = true")
	}
}

func TestServicesSorted(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Register(n, "http://h:1/"+n)
	}
	got := r.Services()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Services = %v", got)
		}
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.Register("echo", "http://a:1/x", "http://b:2/y")
	r.Register("math", "http://c:3/z")

	path := filepath.Join(t.TempDir(), "registry.txt")
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r2 := New(PolicyFirst, clock.Wall)
	if err := r2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 {
		t.Fatalf("Len = %d", r2.Len())
	}
	entry, _ := r2.Lookup("echo")
	if len(entry.Endpoints) != 2 || entry.Endpoints[1].URL != "http://b:2/y" {
		t.Fatalf("echo endpoints = %+v", entry.Endpoints)
	}
}

func TestLoadSkipsCommentsAndBlanks(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	src := "# comment\n\necho http://a:1/x\n   \nmath http://b:1/y,http://c:1/z\n"
	if err := r.Load(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestLoadRejectsMalformedLine(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	if err := r.Load(strings.NewReader("just-one-field\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestSetDoc(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.SetDoc("echo", &wsdl.Service{Name: "echo", TargetNS: "urn:echo"})
	entry, ok := r.Lookup("echo")
	if !ok || entry.Doc == nil || entry.Doc.Name != "echo" {
		t.Fatalf("entry = %+v", entry)
	}
}

func TestCheckAliveOverSimNetwork(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 3)
	up := nw.AddHost("up", netsim.ProfileLAN())
	nw.AddHost("down", netsim.ProfileLAN()) // no listener: refused
	probe := nw.AddHost("probe", netsim.ProfileLAN())

	ln, _ := up.Listen(80)
	srv := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		ex.ReplyBytes(httpx.StatusOK, nil)
	}), httpx.ServerConfig{Clock: clk})
	srv.Start(ln)
	defer srv.Close()

	r := New(PolicyFirst, clk)
	r.Register("svc", "http://up:80/ping", "http://down:80/ping")
	client := httpx.NewClient(probe, httpx.ClientConfig{Clock: clk})
	dead := r.CheckAlive(client, 2*time.Second)
	if dead != 1 {
		t.Fatalf("dead = %d, want 1", dead)
	}
	ep, err := r.Resolve("svc")
	if err != nil {
		t.Fatal(err)
	}
	if ep.URL != "http://up:80/ping" {
		t.Fatalf("Resolve after liveness = %q", ep.URL)
	}
}

func TestConcurrentRegisterResolve(t *testing.T) {
	r := New(PolicyRoundRobin, clock.Wall)
	r.Register("svc", "http://seed:1/x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if _, err := r.Resolve("svc"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
