package registry

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/wsdl"
)

func TestRegisterAndResolve(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.Register("echo", "http://ws1:8001/echo")
	ep, err := r.Resolve("echo")
	if err != nil {
		t.Fatal(err)
	}
	if ep.URL != "http://ws1:8001/echo" {
		t.Fatalf("Resolve = %q", ep.URL)
	}
}

func TestResolveUnknown(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	if _, err := r.Resolve("ghost"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateURLIgnored(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.Register("echo", "http://a:1/x", "http://a:1/x")
	r.Register("echo", "http://a:1/x")
	entry, _ := r.Lookup("echo")
	if len(entry.Endpoints()) != 1 {
		t.Fatalf("endpoints = %d", len(entry.Endpoints()))
	}
}

func TestRoundRobinRotates(t *testing.T) {
	r := New(PolicyRoundRobin, clock.Wall)
	r.Register("echo", "http://a:1/x", "http://b:1/x", "http://c:1/x")
	seen := map[string]int{}
	for i := 0; i < 9; i++ {
		ep, err := r.Resolve("echo")
		if err != nil {
			t.Fatal(err)
		}
		seen[ep.URL]++
	}
	if len(seen) != 3 {
		t.Fatalf("round robin hit %d endpoints, want 3: %v", len(seen), seen)
	}
	for url, n := range seen {
		if n != 3 {
			t.Fatalf("uneven rotation: %s hit %d times", url, n)
		}
	}
}

func TestLeastPendingPrefersIdle(t *testing.T) {
	r := New(PolicyLeastPending, clock.Wall)
	r.Register("echo", "http://a:1/x", "http://b:1/x")
	entry, _ := r.Lookup("echo")
	busy := entry.Endpoints()[0]
	r.Acquire(busy)
	r.Acquire(busy)
	ep, err := r.Resolve("echo")
	if err != nil {
		t.Fatal(err)
	}
	if ep.URL != "http://b:1/x" {
		t.Fatalf("least-pending chose busy endpoint %q", ep.URL)
	}
	r.Release(busy)
	r.Release(busy)
	if busy.Pending() != 0 {
		t.Fatalf("pending = %d", busy.Pending())
	}
}

func TestDeadEndpointSkipped(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.Register("echo", "http://a:1/x", "http://b:1/x")
	r.MarkDead("echo", "http://a:1/x")
	ep, err := r.Resolve("echo")
	if err != nil {
		t.Fatal(err)
	}
	if ep.URL != "http://b:1/x" {
		t.Fatalf("Resolve = %q, want the live endpoint", ep.URL)
	}
	r.MarkDead("echo", "http://b:1/x")
	if _, err := r.Resolve("echo"); !errors.Is(err, ErrNoLiveEndpoint) {
		t.Fatalf("err = %v", err)
	}
	r.MarkAlive("echo", "http://a:1/x")
	if _, err := r.Resolve("echo"); err != nil {
		t.Fatalf("resolve after revive: %v", err)
	}
}

func TestUnregister(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.Register("echo", "http://a:1/x")
	if !r.Unregister("echo") {
		t.Fatal("Unregister existing = false")
	}
	if r.Unregister("echo") {
		t.Fatal("Unregister missing = true")
	}
}

func TestServicesSorted(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Register(n, "http://h:1/"+n)
	}
	got := r.Services()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Services = %v", got)
		}
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.Register("echo", "http://a:1/x", "http://b:2/y")
	r.Register("math", "http://c:3/z")

	path := filepath.Join(t.TempDir(), "registry.txt")
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r2 := New(PolicyFirst, clock.Wall)
	if err := r2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 {
		t.Fatalf("Len = %d", r2.Len())
	}
	entry, _ := r2.Lookup("echo")
	if eps := entry.Endpoints(); len(eps) != 2 || eps[1].URL != "http://b:2/y" {
		t.Fatalf("echo endpoints = %+v", eps)
	}
}

func TestLoadSkipsCommentsAndBlanks(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	src := "# comment\n\necho http://a:1/x\n   \nmath http://b:1/y,http://c:1/z\n"
	if err := r.Load(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestLoadRejectsMalformedLine(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	if err := r.Load(strings.NewReader("just-one-field\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestSetDoc(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.SetDoc("echo", &wsdl.Service{Name: "echo", TargetNS: "urn:echo"})
	entry, ok := r.Lookup("echo")
	if !ok || entry.Doc() == nil || entry.Doc().Name != "echo" {
		t.Fatalf("entry = %+v", entry)
	}
}

func TestCheckAliveOverSimNetwork(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 3)
	up := nw.AddHost("up", netsim.ProfileLAN())
	nw.AddHost("down", netsim.ProfileLAN()) // no listener: refused
	probe := nw.AddHost("probe", netsim.ProfileLAN())

	ln, _ := up.Listen(80)
	srv := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		ex.ReplyBytes(httpx.StatusOK, nil)
	}), httpx.ServerConfig{Clock: clk})
	srv.Start(ln)
	defer srv.Close()

	r := New(PolicyFirst, clk)
	r.Register("svc", "http://up:80/ping", "http://down:80/ping")
	client := httpx.NewClient(probe, httpx.ClientConfig{Clock: clk})
	dead := r.CheckAlive(client, 2*time.Second)
	if dead != 1 {
		t.Fatalf("dead = %d, want 1", dead)
	}
	ep, err := r.Resolve("svc")
	if err != nil {
		t.Fatal(err)
	}
	if ep.URL != "http://up:80/ping" {
		t.Fatalf("Resolve after liveness = %q", ep.URL)
	}
}

// TestConcurrentRegisterResolve pins the Entry copy-on-write contract
// under -race: Register grows the endpoint list, SetDoc swaps the WSDL
// document, and MarkDead/MarkAlive flip liveness, all while Resolve,
// ResolveN, DocBytes, and Save iterate concurrently. The seed endpoint
// is never marked dead, so every Resolve must succeed throughout.
func TestConcurrentRegisterResolve(t *testing.T) {
	r := New(PolicyRoundRobin, clock.Wall)
	r.Register("svc", "http://seed:1/x")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		// Writers: register fresh endpoints, churn liveness on them,
		// and swap the WSDL document.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				url := fmt.Sprintf("http://w%d-%d:1/x", i, j)
				r.Register("svc", url)
				r.MarkDead("svc", url)
				if j%2 == 0 {
					r.MarkAlive("svc", url)
				}
				r.SetDoc("svc", &wsdl.Service{Name: "svc", TargetNS: "urn:svc"})
			}
		}()
		// Readers: resolve (single and multi), render the doc, walk the
		// snapshot, and serialize the whole registry.
		wg.Add(1)
		go func() {
			defer wg.Done()
			var two [2]*Endpoint
			for j := 0; j < 200; j++ {
				if _, err := r.Resolve("svc"); err != nil {
					t.Error(err)
					return
				}
				if n, err := r.ResolveN("svc", two[:]); err != nil || n == 0 {
					t.Errorf("ResolveN = %d, %v", n, err)
					return
				}
				entry, _ := r.Lookup("svc")
				for _, ep := range entry.Endpoints() {
					_ = ep.Alive()
				}
				if _, err := entry.DocBytes("http://render:1/"); err != nil {
					t.Error(err)
					return
				}
				if err := r.Save(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestRoundRobinAcrossDeathAndRevival pins the PolicyRoundRobin cursor
// semantics: selection runs modulo the *live* set, so it stays balanced
// as endpoints die and revive and never returns a dead endpoint.
func TestRoundRobinAcrossDeathAndRevival(t *testing.T) {
	r := New(PolicyRoundRobin, clock.Wall)
	urls := []string{"http://a:1/x", "http://b:1/x", "http://c:1/x"}
	r.Register("echo", urls...)

	spread := func(calls int) map[string]int {
		t.Helper()
		seen := map[string]int{}
		for i := 0; i < calls; i++ {
			ep, err := r.Resolve("echo")
			if err != nil {
				t.Fatal(err)
			}
			seen[ep.URL]++
		}
		return seen
	}

	// All three live: perfectly balanced.
	for url, n := range spread(9) {
		if n != 3 {
			t.Fatalf("3-live rotation uneven: %s hit %d times", url, n)
		}
	}

	// Kill b: rotation over the two survivors, never the dead one.
	r.MarkDead("echo", urls[1])
	seen := spread(8)
	if seen[urls[1]] != 0 {
		t.Fatalf("dead endpoint selected %d times", seen[urls[1]])
	}
	if seen[urls[0]] != 4 || seen[urls[2]] != 4 {
		t.Fatalf("2-live rotation uneven: %v", seen)
	}

	// Revive b: back to three-way balance.
	r.MarkAlive("echo", urls[1])
	for url, n := range spread(9) {
		if n != 3 {
			t.Fatalf("post-revival rotation uneven: %s hit %d times", url, n)
		}
	}

	// Kill everything: ErrNoLiveEndpoint, then one revival routes again.
	for _, u := range urls {
		r.MarkDead("echo", u)
	}
	if _, err := r.Resolve("echo"); !errors.Is(err, ErrNoLiveEndpoint) {
		t.Fatalf("all-dead err = %v", err)
	}
	r.MarkAlive("echo", urls[2])
	for i := 0; i < 4; i++ {
		ep, err := r.Resolve("echo")
		if err != nil {
			t.Fatal(err)
		}
		if ep.URL != urls[2] {
			t.Fatalf("resolved dead endpoint %q", ep.URL)
		}
	}
}

func TestResolveNPreferenceOrder(t *testing.T) {
	// PolicyFirst: registration order, live only.
	r := New(PolicyFirst, clock.Wall)
	r.Register("echo", "http://a:1/x", "http://b:1/x", "http://c:1/x")
	r.MarkDead("echo", "http://a:1/x")
	var dst [3]*Endpoint
	n, err := r.ResolveN("echo", dst[:2])
	if err != nil || n != 2 {
		t.Fatalf("ResolveN = %d, %v", n, err)
	}
	if dst[0].URL != "http://b:1/x" || dst[1].URL != "http://c:1/x" {
		t.Fatalf("order = %q, %q", dst[0].URL, dst[1].URL)
	}

	// Asking for more than is live fills only the live count.
	n, err = r.ResolveN("echo", dst[:])
	if err != nil || n != 2 {
		t.Fatalf("over-ask ResolveN = %d, %v", n, err)
	}

	// Round-robin: consecutive calls rotate the primary; within one
	// call the candidates are distinct.
	rr := New(PolicyRoundRobin, clock.Wall)
	rr.Register("echo", "http://a:1/x", "http://b:1/x")
	firsts := map[string]int{}
	for i := 0; i < 4; i++ {
		n, err := rr.ResolveN("echo", dst[:2])
		if err != nil || n != 2 {
			t.Fatalf("rr ResolveN = %d, %v", n, err)
		}
		if dst[0].URL == dst[1].URL {
			t.Fatalf("duplicate candidates: %q", dst[0].URL)
		}
		firsts[dst[0].URL]++
	}
	if len(firsts) != 2 {
		t.Fatalf("primary did not rotate: %v", firsts)
	}

	// Least-pending: candidates ordered by load.
	lp := New(PolicyLeastPending, clock.Wall)
	lp.Register("echo", "http://a:1/x", "http://b:1/x")
	entry, _ := lp.Lookup("echo")
	lp.Acquire(entry.Endpoints()[0])
	if n, _ := lp.ResolveN("echo", dst[:2]); n != 2 {
		t.Fatalf("lp n = %d", n)
	}
	if dst[0].URL != "http://b:1/x" {
		t.Fatalf("least-pending primary = %q", dst[0].URL)
	}

	// Errors: unknown vs all-dead.
	if _, err := r.ResolveN("ghost", dst[:1]); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("unknown err = %v", err)
	}
	r.MarkDead("echo", "http://b:1/x")
	r.MarkDead("echo", "http://c:1/x")
	if _, err := r.ResolveN("echo", dst[:1]); !errors.Is(err, ErrNoLiveEndpoint) {
		t.Fatalf("all-dead err = %v", err)
	}
}

func TestMarkDeadURL(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	// The same physical URL backs two logical names.
	r.Register("echo", "http://shared:1/x", "http://b:1/x")
	r.Register("math", "http://shared:1/x")
	r.MarkDeadURL("http://shared:1/x")
	ep, err := r.Resolve("echo")
	if err != nil || ep.URL != "http://b:1/x" {
		t.Fatalf("echo resolved %v, %v", ep, err)
	}
	if _, err := r.Resolve("math"); !errors.Is(err, ErrNoLiveEndpoint) {
		t.Fatalf("math err = %v", err)
	}
}

// TestMarkDeadURLIndexAcrossUnregister fences the byURL index lifecycle:
// unregistering a logical name must unindex its endpoints — a later
// MarkDeadURL of the shared address may only hit records still
// registered, never a fresh re-registration's endpoint.
func TestMarkDeadURLIndexAcrossUnregister(t *testing.T) {
	r := New(PolicyFirst, clock.Wall)
	r.Register("echo", "http://shared:1/x")
	r.Register("math", "http://shared:1/x")
	if !r.Unregister("echo") {
		t.Fatal("Unregister existing = false")
	}
	// Re-register the same URL under the removed name: a new Endpoint
	// record, independently indexed.
	r.Register("echo", "http://shared:1/x")
	r.MarkDeadURL("http://shared:1/x")
	if _, err := r.Resolve("echo"); !errors.Is(err, ErrNoLiveEndpoint) {
		t.Fatalf("re-registered echo err = %v", err)
	}
	if _, err := r.Resolve("math"); !errors.Is(err, ErrNoLiveEndpoint) {
		t.Fatalf("math err = %v", err)
	}
	// Reviving the survivor must work through the ordinary path: the
	// index holds exactly the records still registered.
	r.MarkAlive("echo", "http://shared:1/x")
	if ep, err := r.Resolve("echo"); err != nil || !ep.Alive() {
		t.Fatalf("revived echo = %v, %v", ep, err)
	}
}
