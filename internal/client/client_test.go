package client

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dispatch/msgdisp"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/msgbox"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// rig is the paper's full deployment: a firewalled, endpoint-less client;
// a MSG-Dispatcher and WS-MsgBox in the open; an async echo service behind
// its own firewall reachable only from the dispatcher.
type rig struct {
	clk     *clock.Virtual
	rpc     *RPC
	msgr    *Messenger
	mboxCli *MailboxClient
	echoRPC *echoservice.RPC
	async   *echoservice.Async
	mbox    *msgbox.Service
	disp    *msgdisp.Dispatcher
}

const (
	dispatcherURL = "http://wsd:9100/msg"
	mboxURL       = "http://po:9200/mbox"
)

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	nw := netsim.New(clk, 77)

	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	po := nw.AddHost("po", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN(), netsim.WithFirewall(netsim.OutboundOnlyExcept("wsd")))
	cli := nw.AddHost("cli", netsim.ProfileLAN(), netsim.WithFirewall(netsim.OutboundOnly()), netsim.WithPrivateAddress())

	r := &rig{clk: clk}

	// Echo services (RPC on 80, async on 81) behind the ws firewall.
	r.echoRPC = echoservice.NewRPC(clk, 0)
	lnRPC, _ := ws.Listen(80)
	sRPC := httpx.NewServer(r.echoRPC, httpx.ServerConfig{Clock: clk})
	sRPC.Start(lnRPC)
	t.Cleanup(func() { sRPC.Close() })

	wsClient := httpx.NewClient(ws, httpx.ClientConfig{Clock: clk})
	r.async = echoservice.NewAsync(clk, wsClient, 0)
	r.async.OwnAddress = "http://ws:81/msg"
	lnA, _ := ws.Listen(81)
	sA := httpx.NewServer(r.async, httpx.ServerConfig{Clock: clk})
	sA.Start(lnA)
	t.Cleanup(func() { sA.Close() })

	// WS-MsgBox on po:9200.
	r.mbox = msgbox.New(msgbox.Config{Clock: clk, BaseURL: "http://po:9200"})
	if err := r.mbox.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.mbox.Stop)
	lnM, _ := po.Listen(9200)
	sM := httpx.NewServer(r.mbox, httpx.ServerConfig{Clock: clk})
	sM.Start(lnM)
	t.Cleanup(func() { sM.Close() })

	// MSG-Dispatcher on wsd:9100.
	reg := registry.New(registry.PolicyFirst, clk)
	reg.Register("echo", "http://ws:81/msg")
	dispClient := httpx.NewClient(wsd, httpx.ClientConfig{Clock: clk})
	r.disp = msgdisp.New(reg, dispClient, msgdisp.Config{Clock: clk, ReturnAddress: dispatcherURL})
	if err := r.disp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.disp.Stop)
	lnD, _ := wsd.Listen(9100)
	sD := httpx.NewServer(r.disp, httpx.ServerConfig{Clock: clk})
	sD.Start(lnD)
	t.Cleanup(func() { sD.Close() })

	// Client-side library stack, dialing from the firewalled host.
	httpCli := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
	t.Cleanup(httpCli.Close)
	r.rpc = NewRPC(httpCli)
	r.msgr = NewMessenger(httpCli)
	r.mboxCli = NewMailboxClient(r.rpc, mboxURL, clk)
	return r
}

func TestRPCCallDirect(t *testing.T) {
	r := newRig(t)
	// The RPC echo is firewalled; call it via a host that is allowed —
	// here we call the mailbox service instead to prove plain RPC works
	// from behind the client firewall (outbound is open).
	box, err := r.mboxCli.Create()
	if err != nil {
		t.Fatal(err)
	}
	if box.ID == "" || box.Token == "" {
		t.Fatalf("box = %+v", box)
	}
}

func TestRPCFaultSurfaces(t *testing.T) {
	r := newRig(t)
	_, err := r.rpc.Call(mboxURL, msgbox.ServiceNS, "noSuchOp")
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *soap.Fault", err)
	}
}

func TestMailboxLifecycle(t *testing.T) {
	r := newRig(t)
	box, err := r.mboxCli.Create()
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.mboxCli.Peek(box)
	if err != nil || n != 0 {
		t.Fatalf("peek = %d, %v", n, err)
	}
	if err := r.mboxCli.Destroy(box); err != nil {
		t.Fatal(err)
	}
	if _, err := r.mboxCli.Peek(box); err == nil {
		t.Fatal("peek on destroyed box succeeded")
	}
}

func TestConversationThroughFirewall(t *testing.T) {
	r := newRig(t)
	box, err := r.mboxCli.Create()
	if err != nil {
		t.Fatal(err)
	}
	conv := &Conversation{
		Messenger:     r.msgr,
		Mailbox:       r.mboxCli,
		Box:           box,
		DispatcherURL: dispatcherURL,
		PollEvery:     200 * time.Millisecond,
	}
	reply, err := conv.Call(msgdisp.LogicalScheme+"echo", "urn:echo",
		xmlsoap.NewText(echoservice.EchoNS, "echo", "through the wall"), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.BodyElement().Text != "through the wall" {
		t.Fatalf("reply body = %s", reply.BodyElement())
	}
	// The whole round trip worked although the client is private AND
	// firewalled: nothing ever dialed in to it.
	if r.disp.RepliesDelivered.Value() != 1 {
		t.Fatalf("RepliesDelivered = %d", r.disp.RepliesDelivered.Value())
	}
}

func TestInterleavedConversationsShareMailbox(t *testing.T) {
	r := newRig(t)
	box, err := r.mboxCli.Create()
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		h := &wsa.Headers{
			To:      msgdisp.LogicalScheme + "echo",
			Action:  "urn:echo",
			ReplyTo: &wsa.EPR{Address: box.Address},
		}
		id, err := r.msgr.Send(dispatcherURL, h,
			xmlsoap.NewText(echoservice.EchoNS, "echo", fmt.Sprintf("conv-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Await replies in reverse order: non-matching replies must be
	// buffered, not lost.
	for i := n - 1; i >= 0; i-- {
		reply, err := r.mboxCli.AwaitReply(box, ids[i], 100*time.Millisecond, 30*time.Second)
		if err != nil {
			t.Fatalf("conv %d: %v", i, err)
		}
		if want := fmt.Sprintf("conv-%d", i); reply.BodyElement().Text != want {
			t.Fatalf("conv %d reply = %q, want %q", i, reply.BodyElement().Text, want)
		}
	}
}

func TestAwaitReplyTimesOut(t *testing.T) {
	r := newRig(t)
	box, _ := r.mboxCli.Create()
	_, err := r.mboxCli.AwaitReply(box, "urn:uuid:nothing", 100*time.Millisecond, time.Second)
	if !errors.Is(err, ErrAwaitTimeout) {
		t.Fatalf("err = %v, want ErrAwaitTimeout", err)
	}
}

func TestSendRejectionSurfacesFault(t *testing.T) {
	r := newRig(t)
	h := &wsa.Headers{To: msgdisp.LogicalScheme + "ghost"}
	_, err := r.msgr.Send(dispatcherURL, h, xmlsoap.New("urn:x", "op"))
	if err == nil {
		t.Fatal("send to unknown logical name succeeded")
	}
}

func TestMessengerFillsMessageID(t *testing.T) {
	r := newRig(t)
	h := &wsa.Headers{To: msgdisp.LogicalScheme + "echo"}
	id, err := r.msgr.Send(dispatcherURL, h, xmlsoap.New(echoservice.EchoNS, "echo"))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("no MessageID assigned")
	}
	if h.MessageID != "" {
		t.Fatal("Send mutated the caller's headers")
	}
}
