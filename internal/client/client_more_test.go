package client

import (
	"errors"
	"testing"
	"time"

	"repro/internal/echoservice"
	"repro/internal/msgbox"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

func TestCallTimeoutHonoured(t *testing.T) {
	r := newRig(t)
	// The dispatcher's msg endpoint never answers RPC semantics in
	// time when the reply is anonymous and the service is slow; here
	// we simply call a valid endpoint with an absurdly small budget
	// crossing a trans-Atlantic link.
	_, err := r.rpc.CallTimeout(mboxURL, msgbox.ServiceNS, msgbox.OpCreate, time.Millisecond)
	if err == nil {
		t.Fatal("1ms trans-Atlantic call succeeded")
	}
	var nerr interface{ Timeout() bool }
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestMessengerStampsFrom(t *testing.T) {
	r := newRig(t)
	r.msgr.From = "http://cli:7777/msg"
	h := &wsa.Headers{To: "http://ws:81/msg"}
	if _, err := r.msgr.Send(dispatcherURL, h, xmlsoap.New(echoservice.EchoNS, "echo")); err != nil {
		t.Fatal(err)
	}
	// The service records nothing here; what matters is the headers
	// the messenger built. Exercise the path via a fresh envelope.
	env := soap.New(soap.V11).SetBody(xmlsoap.New(echoservice.EchoNS, "echo"))
	hh := h.Clone()
	hh.MessageID = wsa.NewMessageID()
	if hh.From == nil && r.msgr.From != "" {
		hh.From = &wsa.EPR{Address: r.msgr.From}
	}
	hh.Apply(env)
	got, err := wsa.FromEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if got.From == nil || got.From.Address != "http://cli:7777/msg" {
		t.Fatalf("From = %+v", got.From)
	}
}

func TestTakeEmptyMailbox(t *testing.T) {
	r := newRig(t)
	box, err := r.mboxCli.Create()
	if err != nil {
		t.Fatal(err)
	}
	envs, err := r.mboxCli.Take(box, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 0 {
		t.Fatalf("Take on empty box = %d messages", len(envs))
	}
}

func TestDestroyedMailboxStopsDeliveries(t *testing.T) {
	r := newRig(t)
	box, err := r.mboxCli.Create()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mboxCli.Destroy(box); err != nil {
		t.Fatal(err)
	}
	// A conversation using the dead mailbox can send (202 from the
	// dispatcher) but never receives: the reply delivery 404s.
	conv := &Conversation{
		Messenger:     r.msgr,
		Mailbox:       r.mboxCli,
		Box:           box,
		DispatcherURL: dispatcherURL,
		PollEvery:     200 * time.Millisecond,
	}
	_, err = conv.Call("logical:echo", "urn:echo",
		xmlsoap.NewText(echoservice.EchoNS, "echo", "void"), 3*time.Second)
	if err == nil {
		t.Fatal("conversation with destroyed mailbox succeeded")
	}
}

func TestMalformedCreateResponseRejected(t *testing.T) {
	// A MailboxClient pointed at the echo RPC service gets a
	// syntactically valid RPC response that is not a createMsgBox
	// response; the client must reject it rather than return a
	// half-empty Box.
	r := newRig(t)
	bad := NewMailboxClient(r.rpc, "http://wsd:9100/msg", r.mboxCli.Clock)
	if _, err := bad.Create(); err == nil {
		t.Fatal("Create against a non-mailbox endpoint succeeded")
	}
}
