// Package client is the peer-side library: everything a Web Service peer
// needs to interact with the WS-Dispatcher stack — SOAP-RPC calls
// (optionally through the RPC-Dispatcher), one-way asynchronous sends
// (through the MSG-Dispatcher), mailbox management and polling against
// WS-MsgBox, and a Conversation helper that composes them into the
// "reliable and long running conversations through firewalls" of the
// paper's abstract.
package client

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/httpx"
	"repro/internal/msgbox"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// RPC performs SOAP-RPC calls over HTTP.
type RPC struct {
	// HTTP is the transport (its dialer is bound to the peer's host).
	HTTP *httpx.Client
	// Version selects the SOAP version; zero value is SOAP 1.1.
	Version soap.Version
}

// NewRPC wraps an HTTP client for SOAP-RPC.
func NewRPC(h *httpx.Client) *RPC { return &RPC{HTTP: h, Version: soap.V11} }

// Call invokes operation on the service at serviceURL and returns the
// result parameters. A SOAP fault in the response surfaces as *soap.Fault.
func (c *RPC) Call(serviceURL, serviceNS, operation string, params ...soap.Param) ([]soap.Param, error) {
	return c.CallTimeout(serviceURL, serviceNS, operation, 0, params...)
}

// CallTimeout is Call with an explicit exchange budget (0 uses the HTTP
// client's default). The returned params (and any *soap.Fault error)
// are detached copies: the response body lives in a pooled buffer this
// method releases before returning, so nothing handed to the caller may
// alias it.
func (c *RPC) CallTimeout(serviceURL, serviceNS, operation string, timeout time.Duration, params ...soap.Param) ([]soap.Param, error) {
	addr, path, err := httpx.SplitURL(serviceURL)
	if err != nil {
		return nil, err
	}
	// Render the call straight into a pooled buffer; the HTTP client
	// writes it to the connection and the buffer is released on return.
	buf := xmlsoap.GetBuffer()
	defer xmlsoap.PutBuffer(buf)
	body, err := wsa.AppendEnvelope(buf.B, soap.RPCRequest(c.Version, serviceNS, operation, params...))
	if err != nil {
		return nil, err
	}
	buf.B = body
	req := httpx.NewRequest("POST", path, body)
	req.Header.Set("Content-Type", c.Version.ContentType())
	req.Header.Set("SOAPAction", `"`+serviceNS+":"+operation+`"`)

	var resp *httpx.Response
	if timeout > 0 {
		resp, err = c.HTTP.DoTimeout(addr, req, timeout)
	} else {
		resp, err = c.HTTP.Do(addr, req)
	}
	if err != nil {
		return nil, err
	}
	defer resp.Release()
	env, err := soap.Parse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: bad RPC response (HTTP %d): %w", resp.Status, err)
	}
	results, err := soap.ParseRPCResponse(env, operation)
	if err != nil {
		var f *soap.Fault
		if errors.As(err, &f) {
			// The fault's strings alias the pooled body; detach before
			// it escapes the deferred release.
			return nil, f.Detach()
		}
		return nil, err
	}
	for i := range results {
		results[i].Name = strings.Clone(results[i].Name)
		results[i].Value = strings.Clone(results[i].Value)
	}
	return results, nil
}

// Messenger sends one-way WS-Addressing messages (fire-and-forget with
// respect to the transport: success is 202/200 from the next hop).
type Messenger struct {
	// HTTP is the transport.
	HTTP *httpx.Client
	// Version selects the SOAP version; zero value is SOAP 1.1.
	Version soap.Version
	// From, when set, stamps outgoing messages' From header.
	From string
}

// NewMessenger wraps an HTTP client for one-way messaging.
func NewMessenger(h *httpx.Client) *Messenger { return &Messenger{HTTP: h, Version: soap.V11} }

// Send posts one message to postURL (typically the MSG-Dispatcher's
// endpoint). Missing MessageIDs are filled in; the assigned ID is
// returned so callers can correlate replies.
func (m *Messenger) Send(postURL string, h *wsa.Headers, body *xmlsoap.Element) (string, error) {
	return m.SendTimeout(postURL, h, body, 0)
}

// SendTimeout is Send with an explicit budget (0 uses the client default).
func (m *Messenger) SendTimeout(postURL string, h *wsa.Headers, body *xmlsoap.Element, timeout time.Duration) (string, error) {
	addr, path, err := httpx.SplitURL(postURL)
	if err != nil {
		return "", err
	}
	hh := h.Clone()
	if hh.MessageID == "" {
		hh.MessageID = wsa.NewMessageID()
	}
	if hh.From == nil && m.From != "" {
		hh.From = &wsa.EPR{Address: m.From}
	}
	env := soap.New(m.Version).SetBody(body)
	buf := xmlsoap.GetBuffer()
	defer xmlsoap.PutBuffer(buf)
	raw, err := wsa.AppendRewritten(buf.B, env, hh)
	if err != nil {
		return "", err
	}
	buf.B = raw
	req := httpx.NewRequest("POST", path, raw)
	req.Header.Set("Content-Type", m.Version.ContentType())
	var resp *httpx.Response
	if timeout > 0 {
		resp, err = m.HTTP.DoTimeout(addr, req, timeout)
	} else {
		resp, err = m.HTTP.Do(addr, req)
	}
	if err != nil {
		return "", err
	}
	defer resp.Release()
	if resp.Status >= 300 {
		if env, perr := soap.Parse(resp.Body); perr == nil {
			if f, ok := soap.AsFault(env); ok {
				// Detached: the fault error outlives the pooled body.
				return "", fmt.Errorf("client: send rejected: %w", f.Detach())
			}
		}
		return "", fmt.Errorf("client: send rejected with HTTP %d", resp.Status)
	}
	return hh.MessageID, nil
}

// Box identifies one mailbox at a WS-MsgBox service.
type Box struct {
	ID      string
	Token   string
	Address string
}

// MailboxClient manages and polls mailboxes over RPC (Figure 2 steps 1,
// 3, 4) — RPC because "RPC is typically well supported from a client
// behind firewalls".
type MailboxClient struct {
	// RPC is the underlying call machinery.
	RPC *RPC
	// ServiceURL is the WS-MsgBox management endpoint,
	// e.g. "http://postoffice:9200/mbox".
	ServiceURL string
	// Clock paces polling; defaults to the wall clock.
	Clock clock.Clock

	mu       sync.Mutex
	buffered map[string]*soap.Envelope // replies taken but not yet claimed
}

// NewMailboxClient builds a mailbox client for the given service URL.
func NewMailboxClient(rpc *RPC, serviceURL string, clk clock.Clock) *MailboxClient {
	if clk == nil {
		clk = clock.Wall
	}
	return &MailboxClient{RPC: rpc, ServiceURL: serviceURL, Clock: clk, buffered: map[string]*soap.Envelope{}}
}

// Create makes a new mailbox (Figure 2 step 1). The Box handle lives
// for the whole conversation; RPC.Call already hands back detached
// params (the response body is pooled and released inside Call), so the
// values can be stored as-is.
func (mc *MailboxClient) Create() (*Box, error) {
	results, err := mc.RPC.Call(mc.ServiceURL, msgbox.ServiceNS, msgbox.OpCreate)
	if err != nil {
		return nil, err
	}
	box := &Box{}
	for _, p := range results {
		switch p.Name {
		case "boxId":
			box.ID = p.Value
		case "token":
			box.Token = p.Value
		case "address":
			box.Address = p.Value
		}
	}
	if box.ID == "" || box.Address == "" {
		return nil, errors.New("client: malformed createMsgBox response")
	}
	return box, nil
}

// Take downloads up to max messages (Figure 2 step 3).
func (mc *MailboxClient) Take(box *Box, max int) ([]*soap.Envelope, error) {
	results, err := mc.RPC.Call(mc.ServiceURL, msgbox.ServiceNS, msgbox.OpTake,
		soap.Param{Name: "boxId", Value: box.ID},
		soap.Param{Name: "token", Value: box.Token},
		soap.Param{Name: "max", Value: strconv.Itoa(max)},
	)
	if err != nil {
		return nil, err
	}
	var out []*soap.Envelope
	for _, p := range results {
		if p.Name == "count" {
			continue
		}
		env, err := soap.Parse([]byte(p.Value))
		if err != nil {
			return nil, fmt.Errorf("client: undecodable stored message: %w", err)
		}
		out = append(out, env)
	}
	return out, nil
}

// Peek returns the number of waiting messages without removing any.
func (mc *MailboxClient) Peek(box *Box) (int, error) {
	results, err := mc.RPC.Call(mc.ServiceURL, msgbox.ServiceNS, msgbox.OpPeek,
		soap.Param{Name: "boxId", Value: box.ID},
		soap.Param{Name: "token", Value: box.Token},
	)
	if err != nil {
		return 0, err
	}
	for _, p := range results {
		if p.Name == "count" {
			return strconv.Atoi(p.Value)
		}
	}
	return 0, errors.New("client: malformed peekCount response")
}

// Destroy frees the mailbox (Figure 2 step 4).
func (mc *MailboxClient) Destroy(box *Box) error {
	_, err := mc.RPC.Call(mc.ServiceURL, msgbox.ServiceNS, msgbox.OpDestroy,
		soap.Param{Name: "boxId", Value: box.ID},
		soap.Param{Name: "token", Value: box.Token},
	)
	return err
}

// ErrAwaitTimeout is returned by AwaitReply when no matching reply arrives
// within the budget.
var ErrAwaitTimeout = errors.New("client: timed out awaiting reply")

// AwaitReply polls the mailbox until a message with RelatesTo == msgID
// arrives. Non-matching messages are buffered for later AwaitReply calls
// (interleaved conversations share one mailbox).
func (mc *MailboxClient) AwaitReply(box *Box, msgID string, pollEvery, timeout time.Duration) (*soap.Envelope, error) {
	deadline := mc.Clock.Now().Add(timeout)
	for {
		mc.mu.Lock()
		if env, ok := mc.buffered[msgID]; ok {
			delete(mc.buffered, msgID)
			mc.mu.Unlock()
			return env, nil
		}
		mc.mu.Unlock()

		envs, err := mc.Take(box, 32)
		if err != nil {
			return nil, err
		}
		var match *soap.Envelope
		mc.mu.Lock()
		for _, env := range envs {
			h, err := wsa.FromEnvelope(env)
			if err != nil || h.RelatesTo == "" {
				continue
			}
			if h.RelatesTo == msgID && match == nil {
				match = env
			} else {
				mc.buffered[h.RelatesTo] = env
			}
		}
		mc.mu.Unlock()
		if match != nil {
			return match, nil
		}
		if !mc.Clock.Now().Add(pollEvery).Before(deadline) {
			return nil, ErrAwaitTimeout
		}
		mc.Clock.Sleep(pollEvery)
	}
}

// Conversation composes a Messenger and a MailboxClient into the paper's
// complete pattern for endpoint-less peers: send through the
// MSG-Dispatcher with ReplyTo pointing at a mailbox, then poll the mailbox
// for the correlated reply.
type Conversation struct {
	// Messenger sends the outbound legs.
	Messenger *Messenger
	// Mailbox polls the inbound legs.
	Mailbox *MailboxClient
	// Box is the conversation's mailbox.
	Box *Box
	// DispatcherURL is the MSG-Dispatcher message endpoint.
	DispatcherURL string
	// PollEvery is the mailbox polling interval. Default 250ms.
	PollEvery time.Duration
}

// Call sends one message (To may be "logical:<name>") and awaits its
// correlated reply via the mailbox.
func (c *Conversation) Call(to, action string, body *xmlsoap.Element, timeout time.Duration) (*soap.Envelope, error) {
	poll := c.PollEvery
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	h := &wsa.Headers{
		To:      to,
		Action:  action,
		ReplyTo: &wsa.EPR{Address: c.Box.Address},
	}
	msgID, err := c.Messenger.Send(c.DispatcherURL, h, body)
	if err != nil {
		return nil, err
	}
	return c.Mailbox.AwaitReply(c.Box, msgID, poll, timeout)
}
