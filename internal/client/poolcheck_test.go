package client

import (
	"os"
	"testing"

	"repro/internal/xmlsoap"
)

// TestMain turns on the pooled-buffer lifecycle checker for this suite:
// every PutBuffer poisons the released bytes, and a double release or a
// write through a stale alias panics instead of corrupting another
// exchange's message. See xmlsoap.EnablePoolCheck.
func TestMain(m *testing.M) {
	xmlsoap.EnablePoolCheck()
	os.Exit(m.Run())
}
