package reliable

import (
	"fmt"
	"testing"
	"time"
)

// TestRetryJitterDeterministic: the same message and attempt always
// jitter identically — no hidden randomness to break Virtual-clock
// reproducibility.
func TestRetryJitterDeterministic(t *testing.T) {
	span := 30 * time.Second
	for attempt := 0; attempt < 5; attempt++ {
		a := retryJitter("urn:uuid:abc-123", attempt, span)
		b := retryJitter("urn:uuid:abc-123", attempt, span)
		if a != b {
			t.Fatalf("attempt %d: jitter not deterministic (%v vs %v)", attempt, a, b)
		}
		if a < 0 || a >= span {
			t.Fatalf("attempt %d: jitter %v outside [0, %v)", attempt, a, span)
		}
	}
	if got := retryJitter("any", 3, 0); got != 0 {
		t.Fatalf("zero span jittered %v", got)
	}
}

// TestRetryJitterDesynchronizes: a backlog of distinct messages retrying
// at the same capped backoff must spread out, not march in lockstep —
// and successive attempts of ONE message must move around too.
func TestRetryJitterDesynchronizes(t *testing.T) {
	span := 30 * time.Second
	seen := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		seen[retryJitter(fmt.Sprintf("urn:uuid:msg-%04d", i), 6, span)] = true
	}
	if len(seen) < 32 {
		t.Fatalf("64 messages landed on only %d distinct offsets", len(seen))
	}
	perAttempt := make(map[time.Duration]bool)
	for attempt := 0; attempt < 16; attempt++ {
		perAttempt[retryJitter("urn:uuid:one-msg", attempt, span)] = true
	}
	if len(perAttempt) < 8 {
		t.Fatalf("16 attempts of one message landed on only %d distinct offsets", len(perAttempt))
	}
}
