// Package reliable adds hold/retry delivery on top of the message store —
// the paper's future-work item: "improve forwarding service by adding
// hold/retry on delivery to simple one way messaging (HTTP) with messages
// stored in DB with expiration time. This work would be related with use
// of WS-ReliableMessaging."
//
// A Courier accepts messages, persists them, and keeps attempting delivery
// with exponential backoff until the destination acknowledges (2xx) or the
// message expires. Crash recovery comes from the store's append log: a
// restarted Courier re-walks pending destinations.
package reliable

import (
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/httpx"
	"repro/internal/soap"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/wsa"
)

// Config tunes a Courier.
type Config struct {
	// Clock drives backoff and expiry.
	Clock clock.Clock
	// InitialBackoff is the delay after the first failure. Default 1s.
	InitialBackoff time.Duration
	// MaxBackoff caps the delay between attempts. Default 60s.
	MaxBackoff time.Duration
	// MaxAttempts abandons a message after this many tries; 0 means
	// retry until expiration only. Default 0.
	MaxAttempts int
	// DefaultTTL is applied to messages enqueued without an explicit
	// expiry. Default 10m.
	DefaultTTL time.Duration
	// AttemptTimeout bounds one delivery attempt. Default 21s.
	AttemptTimeout time.Duration
	// Workers is the number of concurrent delivery loops. Default 4.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Wall
	}
	if c.InitialBackoff <= 0 {
		c.InitialBackoff = time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 60 * time.Second
	}
	if c.DefaultTTL <= 0 {
		c.DefaultTTL = 10 * time.Minute
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 21 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	return c
}

// Courier is the reliable delivery agent.
type Courier struct {
	cfg    Config
	store  *store.Store
	client *httpx.Client

	mu      sync.Mutex
	work    chan string // message IDs ready for (re)attempt
	stopped bool
	done    sync.WaitGroup

	// Delivered, Abandoned and Expired classify final outcomes;
	// Attempts counts every try.
	Delivered stats.Counter
	Abandoned stats.Counter
	Attempts  stats.Counter
}

// New builds a Courier delivering via client and persisting in st.
func New(st *store.Store, client *httpx.Client, cfg Config) *Courier {
	cfg = cfg.withDefaults()
	return &Courier{
		cfg:    cfg,
		store:  st,
		client: client,
		work:   make(chan string, 1024),
	}
}

// Start launches the delivery workers and requeues any messages already
// pending in the store (crash recovery).
func (c *Courier) Start() {
	for i := 0; i < c.cfg.Workers; i++ {
		c.done.Add(1)
		go c.worker()
	}
	for _, dest := range c.store.Destinations() {
		for _, m := range c.store.PendingFor(dest, 0) {
			c.schedule(m.ID, 0)
		}
	}
}

// Stop ends the workers. Undelivered messages stay in the store for the
// next Start.
func (c *Courier) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	close(c.work)
	c.mu.Unlock()
	c.done.Wait()
}

// Send enqueues one envelope for reliable delivery to destURL and returns
// its message ID. The WS-Addressing MessageID is used when present so
// retries stay idempotent for the receiver.
func (c *Courier) Send(destURL string, env *soap.Envelope) (string, error) {
	raw, err := env.Marshal()
	if err != nil {
		return "", err
	}
	id := ""
	if h, herr := wsa.FromEnvelope(env); herr == nil && h.MessageID != "" {
		id = h.MessageID
	}
	return c.SendPayload(destURL, id, raw)
}

// SendPayload enqueues an already-serialized message. The MSG-Dispatcher
// uses it to hand failed deliveries over for hold/retry without
// re-parsing. An empty id gets a fresh MessageID.
//
// Ownership: the payload, id and destination are copied out — the store
// holds them until delivery or TTL expiry, while callers routinely pass
// bytes and strings that alias a pooled message buffer they release on
// return.
func (c *Courier) SendPayload(destURL, id string, payload []byte) (string, error) {
	if id == "" {
		id = wsa.NewMessageID()
	} else {
		id = strings.Clone(id)
	}
	m := &store.Message{
		ID:          id,
		Destination: strings.Clone(destURL),
		Payload:     append([]byte(nil), payload...),
		Expires:     c.cfg.Clock.Now().Add(c.cfg.DefaultTTL),
	}
	if err := c.store.Put(m); err != nil {
		return "", err
	}
	c.schedule(id, 0)
	return id, nil
}

// Pending reports how many messages are still awaiting delivery.
func (c *Courier) Pending() int { return c.store.Len() }

// schedule queues an attempt after delay. Scheduling after Stop is a
// silent no-op; the message stays persisted.
func (c *Courier) schedule(id string, delay time.Duration) {
	deliver := func() {
		c.mu.Lock()
		if c.stopped {
			c.mu.Unlock()
			return
		}
		select {
		case c.work <- id:
		default:
			// Channel full: retry shortly rather than blocking a
			// timer goroutine.
			c.cfg.Clock.AfterFunc(c.cfg.InitialBackoff, func() { c.schedule(id, 0) })
		}
		c.mu.Unlock()
	}
	if delay <= 0 {
		deliver()
		return
	}
	c.cfg.Clock.AfterFunc(delay, deliver)
}

func (c *Courier) worker() {
	defer c.done.Done()
	for id := range c.work {
		c.attempt(id)
	}
}

// attempt tries one delivery and either finishes the message or schedules
// the next try with doubled backoff.
func (c *Courier) attempt(id string) {
	m, err := c.store.Get(id)
	if err != nil {
		return // already delivered or swept
	}
	now := c.cfg.Clock.Now()
	if m.Expired(now) {
		c.store.Delete(id)
		c.Abandoned.Inc()
		return
	}
	if c.cfg.MaxAttempts > 0 && m.Attempts >= c.cfg.MaxAttempts {
		c.store.Delete(id)
		c.Abandoned.Inc()
		return
	}

	c.Attempts.Inc()
	c.store.MarkAttempt(id)
	if c.deliverOnce(m) {
		c.store.Delete(id)
		c.Delivered.Inc()
		return
	}
	backoff := c.cfg.InitialBackoff << uint(m.Attempts)
	if backoff > c.cfg.MaxBackoff || backoff <= 0 {
		backoff = c.cfg.MaxBackoff
	}
	// Jitter is added AFTER the cap: when a destination comes back from
	// an outage, its whole backlog sits at MaxBackoff, and uncapped
	// identical delays would hammer it in synchronized waves.
	backoff += retryJitter(id, m.Attempts, backoff/2)
	c.schedule(id, backoff)
}

// retryJitter spreads retries for different messages across [0, span)
// deterministically: an FNV-1a hash of the message ID and attempt
// number replaces math/rand, so Virtual-clock tests replay the exact
// same schedule every run while distinct messages (and successive
// attempts of one message) still land at distinct offsets.
func retryJitter(id string, attempt int, span time.Duration) time.Duration {
	if span <= 0 {
		return 0
	}
	h := uint64(0xcbf29ce484222325) // FNV-1a 64-bit offset basis
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 0x100000001b3 // FNV-1a 64-bit prime
	}
	h ^= uint64(attempt)
	h *= 0x100000001b3
	return time.Duration(h % uint64(span))
}

func (c *Courier) deliverOnce(m *store.Message) bool {
	addr, path, err := httpx.SplitURL(m.Destination)
	if err != nil {
		return false
	}
	req := httpx.NewRequest("POST", path, m.Payload)
	req.Header.Set("Content-Type", soap.V11.ContentType())
	resp, err := c.client.DoTimeout(addr, req, c.cfg.AttemptTimeout)
	if err != nil {
		return false
	}
	// The status is read before Release: releasing hands the connection
	// (and its reused Response struct) back for the next exchange.
	delivered := resp.Status < 300
	resp.Release() // the pooled ack body is unused
	return delivered
}
