package reliable

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/soap"
	"repro/internal/store"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// rig runs a Courier on host "relay" delivering to a controllable receiver
// on host "dest".
type rig struct {
	clk     *clock.Virtual
	courier *Courier
	st      *store.Store
	// failures controls how many initial deliveries the receiver
	// rejects with 503 before accepting.
	failures atomic.Int64
	received atomic.Int64
}

func newRig(t *testing.T, cfg Config, destFirewalled bool) *rig {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	nw := netsim.New(clk, 17)
	relay := nw.AddHost("relay", netsim.ProfileLAN())
	var opts []netsim.HostOption
	if destFirewalled {
		opts = append(opts, netsim.WithFirewall(netsim.OutboundOnly()))
	}
	dest := nw.AddHost("dest", netsim.ProfileLAN(), opts...)

	r := &rig{clk: clk, st: store.New(clk)}

	ln, _ := dest.Listen(80)
	srv := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		if r.failures.Load() > 0 {
			r.failures.Add(-1)
			ex.ReplyBytes(httpx.StatusServiceUnavailable, nil)
			return
		}
		r.received.Add(1)
		ex.ReplyBytes(httpx.StatusAccepted, nil)
	}), httpx.ServerConfig{Clock: clk})
	srv.Start(ln)
	t.Cleanup(func() { srv.Close() })

	cfg.Clock = clk
	client := httpx.NewClient(relay, httpx.ClientConfig{Clock: clk})
	r.courier = New(r.st, client, cfg)
	r.courier.Start()
	t.Cleanup(r.courier.Stop)
	return r
}

func envelope(text string) *soap.Envelope {
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText("urn:r", "payload", text))
	(&wsa.Headers{To: "http://dest:80/in", MessageID: wsa.NewMessageID()}).Apply(env)
	return env
}

func TestDeliversFirstTry(t *testing.T) {
	r := newRig(t, Config{}, false)
	id, err := r.courier.Send("http://dest:80/in", envelope("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("no message id")
	}
	waitFor(t, func() bool { return r.courier.Delivered.Value() == 1 })
	if r.courier.Pending() != 0 {
		t.Fatalf("Pending = %d", r.courier.Pending())
	}
}

func TestRetriesUntilSuccess(t *testing.T) {
	r := newRig(t, Config{InitialBackoff: 500 * time.Millisecond}, false)
	r.failures.Store(3)
	if _, err := r.courier.Send("http://dest:80/in", envelope("retry-me")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.courier.Delivered.Value() == 1 })
	if got := r.courier.Attempts.Value(); got != 4 {
		t.Fatalf("Attempts = %d, want 4 (3 failures + 1 success)", got)
	}
}

func TestExpiresAfterTTL(t *testing.T) {
	r := newRig(t, Config{
		InitialBackoff: time.Second,
		MaxBackoff:     2 * time.Second,
		DefaultTTL:     10 * time.Second,
		AttemptTimeout: time.Second,
	}, true) // firewalled: every attempt times out
	if _, err := r.courier.Send("http://dest:80/in", envelope("doomed")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.courier.Abandoned.Value() == 1 })
	if r.courier.Delivered.Value() != 0 {
		t.Fatal("doomed message delivered")
	}
	if r.courier.Pending() != 0 {
		t.Fatalf("Pending = %d after abandonment", r.courier.Pending())
	}
}

func TestMaxAttemptsAbandons(t *testing.T) {
	r := newRig(t, Config{
		InitialBackoff: 100 * time.Millisecond,
		MaxAttempts:    3,
		AttemptTimeout: 500 * time.Millisecond,
		DefaultTTL:     time.Hour,
	}, true)
	if _, err := r.courier.Send("http://dest:80/in", envelope("limited")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.courier.Abandoned.Value() == 1 })
	if got := r.courier.Attempts.Value(); got != 3 {
		t.Fatalf("Attempts = %d, want 3", got)
	}
}

func TestUsesEnvelopeMessageID(t *testing.T) {
	r := newRig(t, Config{}, false)
	env := envelope("idempotent")
	h, _ := wsa.FromEnvelope(env)
	id, err := r.courier.Send("http://dest:80/in", env)
	if err != nil {
		t.Fatal(err)
	}
	if id != h.MessageID {
		t.Fatalf("courier id %q != envelope MessageID %q", id, h.MessageID)
	}
}

func TestRecoveryRequeuesPersistedMessages(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 19)
	relay := nw.AddHost("relay", netsim.ProfileLAN())
	dest := nw.AddHost("dest", netsim.ProfileLAN())

	var received atomic.Int64
	ln, _ := dest.Listen(80)
	srv := httpx.NewServer(httpx.HandlerFunc(func(ex *httpx.Exchange) {
		received.Add(1)
		ex.ReplyBytes(httpx.StatusAccepted, nil)
	}), httpx.ServerConfig{Clock: clk})
	srv.Start(ln)
	defer srv.Close()

	// Simulate a crash: messages persisted, courier never ran.
	st := store.New(clk)
	raw, _ := envelope("survivor").Marshal()
	st.Put(&store.Message{ID: "m-1", Destination: "http://dest:80/in", Payload: raw})

	client := httpx.NewClient(relay, httpx.ClientConfig{Clock: clk})
	courier := New(st, client, Config{Clock: clk})
	courier.Start()
	defer courier.Stop()

	waitFor(t, func() bool { return courier.Delivered.Value() == 1 })
	if received.Load() != 1 {
		t.Fatalf("received = %d", received.Load())
	}
}

func TestStopKeepsUndelivered(t *testing.T) {
	r := newRig(t, Config{AttemptTimeout: time.Second, InitialBackoff: time.Second}, true)
	if _, err := r.courier.Send("http://dest:80/in", envelope("parked")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.courier.Attempts.Value() >= 1 })
	r.courier.Stop()
	if r.st.Len() != 1 {
		t.Fatalf("store len after Stop = %d, want 1 (kept for next run)", r.st.Len())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
