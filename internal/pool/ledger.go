package pool

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOutOfMemory models the JVM's OutOfMemoryError: "unable to create new
// native thread". The paper's first WS-MsgBox "was spawning too many
// threads ... each thread has local stack allocated in memory and it is
// known Java limitation"; beyond roughly a thousand threads the 2004-era
// JVM died. Ledger reproduces that failure mode by accounting, not by
// actually exhausting the host.
var ErrOutOfMemory = errors.New("pool: OutOfMemoryError: unable to create new native thread")

// Ledger is a shared memory budget charged one stack per live thread.
//
// Defaults approximate a 2004 JVM on a lab machine: 512 KiB native stack
// per thread and a 256 MiB budget for thread stacks, i.e. an effective cap
// of 512 concurrent threads before thread creation throws.
type Ledger struct {
	mu         sync.Mutex
	stackBytes int64
	budget     int64
	inUse      int64
	live       int
	peak       int
	oomEvents  int
}

// DefaultStackBytes is the modeled per-thread native stack reservation.
const DefaultStackBytes = 512 << 10

// DefaultBudgetBytes is the modeled memory available for thread stacks.
const DefaultBudgetBytes = 256 << 20

// NewLedger returns a Ledger with the given per-thread stack size and total
// budget; zero or negative arguments select the defaults.
func NewLedger(stackBytes, budgetBytes int64) *Ledger {
	if stackBytes <= 0 {
		stackBytes = DefaultStackBytes
	}
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudgetBytes
	}
	return &Ledger{stackBytes: stackBytes, budget: budgetBytes}
}

// SpawnThread reserves one thread stack. It returns ErrOutOfMemory (wrapped
// with the live-thread count) when the budget is exhausted.
func (l *Ledger) SpawnThread() error { return l.SpawnThreads(1) }

// SpawnThreads reserves n thread stacks in one all-or-nothing ledger
// transaction: either the whole batch fits the budget or nothing is
// reserved and one OOM event is recorded — a burst admitting through the
// ledger costs one lock acquisition and can never be half-admitted. The
// pool's core pre-create and the dispatcher's batch admission go through
// here.
func (l *Ledger) SpawnThreads(n int) error {
	if n <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inUse+int64(n)*l.stackBytes > l.budget {
		l.oomEvents++
		if n == 1 {
			return fmt.Errorf("%w (live threads: %d, stack %d KiB, budget %d MiB)",
				ErrOutOfMemory, l.live, l.stackBytes>>10, l.budget>>20)
		}
		return fmt.Errorf("%w (batch of %d refused; live threads: %d, stack %d KiB, budget %d MiB)",
			ErrOutOfMemory, n, l.live, l.stackBytes>>10, l.budget>>20)
	}
	l.inUse += int64(n) * l.stackBytes
	l.live += n
	if l.live > l.peak {
		l.peak = l.live
	}
	return nil
}

// ReleaseThread returns one thread stack to the budget. Releasing below
// zero is a programming error and panics.
func (l *Ledger) ReleaseThread() { l.ReleaseThreads(1) }

// ReleaseThreads returns n thread stacks in one transaction. Releasing
// more than are live is a programming error and panics.
func (l *Ledger) ReleaseThreads(n int) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.live < n {
		panic("pool: ReleaseThreads without matching SpawnThreads")
	}
	l.live -= n
	l.inUse -= int64(n) * l.stackBytes
}

// Live returns the number of currently reserved threads.
func (l *Ledger) Live() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.live
}

// Peak returns the high-water mark of concurrently reserved threads.
func (l *Ledger) Peak() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peak
}

// OOMEvents returns how many SpawnThread calls have failed.
func (l *Ledger) OOMEvents() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.oomEvents
}

// Capacity returns the maximum number of threads the budget allows.
func (l *Ledger) Capacity() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.budget / l.stackBytes)
}
