package pool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/queue"
)

func TestPoolExecutesTasks(t *testing.T) {
	p := New(Config{Core: 4})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(func() { n.Add(1); wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	p.Stop()
	if n.Load() != 100 {
		t.Fatalf("executed %d tasks, want 100", n.Load())
	}
	if s := p.Stats(); s.Executed != 100 {
		t.Fatalf("Stats.Executed = %d", s.Executed)
	}
}

func TestSubmitWait(t *testing.T) {
	p := New(Config{Core: 1})
	p.Start()
	defer p.Stop()
	ran := false
	if err := p.SubmitWait(func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("SubmitWait returned before task ran")
	}
}

func TestStopDrainsQueuedTasks(t *testing.T) {
	p := New(Config{Core: 1})
	p.Start()
	var n atomic.Int64
	release := make(chan struct{})
	p.Submit(func() { <-release })
	for i := 0; i < 10; i++ {
		p.Submit(func() { n.Add(1) })
	}
	close(release)
	p.Stop()
	if n.Load() != 10 {
		t.Fatalf("drained %d tasks, want 10", n.Load())
	}
}

func TestSubmitAfterStop(t *testing.T) {
	p := New(Config{Core: 1})
	p.Start()
	p.Stop()
	if err := p.Submit(func() {}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit after Stop = %v, want ErrStopped", err)
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrStopped) {
		t.Fatalf("TrySubmit after Stop = %v, want ErrStopped", err)
	}
}

func TestTrySubmitFullBacklog(t *testing.T) {
	p := New(Config{Core: 1, Backlog: 1})
	p.Start()
	defer p.Stop()
	release := make(chan struct{})
	defer close(release)
	p.Submit(func() { <-release }) // occupy the worker
	waitUntil(t, func() bool { return p.Stats().Busy == 1 })
	if err := p.TrySubmit(func() {}); err != nil {
		t.Fatalf("first queued TrySubmit = %v", err)
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, queue.ErrFull) {
		t.Fatalf("TrySubmit on full backlog = %v, want ErrFull", err)
	}
	if p.Stats().Rejected == 0 {
		t.Fatal("rejected counter not incremented")
	}
}

func TestPoolGrowsToMax(t *testing.T) {
	p := New(Config{Core: 1, Max: 4})
	p.Start()
	defer p.Stop()
	release := make(chan struct{})
	defer close(release) // must run before Stop so blocked tasks finish
	var started atomic.Int64
	for i := 0; i < 4; i++ {
		p.Submit(func() {
			started.Add(1)
			<-release
		})
	}
	waitUntil(t, func() bool { return started.Load() >= 2 })
	if w := p.Stats().Workers; w < 2 || w > 4 {
		t.Fatalf("workers = %d, want between 2 and 4", w)
	}
}

func TestSurgeWorkersDestroyedWhenIdle(t *testing.T) {
	p := New(Config{Core: 1, Max: 8})
	p.Start()
	defer p.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		p.Submit(func() {
			time.Sleep(time.Millisecond)
			wg.Done()
		})
	}
	wg.Wait()
	waitUntil(t, func() bool { return p.Stats().Workers == 1 })
}

func TestLedgerCapsWorkers(t *testing.T) {
	// Budget for exactly 2 threads.
	l := NewLedger(1024, 2048)
	p := New(Config{Core: 4, Ledger: l})
	if err := p.Start(); err == nil {
		t.Fatal("Start with insufficient ledger budget should fail")
	} else if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("Start error = %v, want ErrOutOfMemory", err)
	}
	p.Stop()
}

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger(100, 1000)
	if l.Capacity() != 10 {
		t.Fatalf("Capacity = %d, want 10", l.Capacity())
	}
	for i := 0; i < 10; i++ {
		if err := l.SpawnThread(); err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
	}
	if err := l.SpawnThread(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("11th spawn = %v, want ErrOutOfMemory", err)
	}
	if l.Live() != 10 || l.Peak() != 10 || l.OOMEvents() != 1 {
		t.Fatalf("Live=%d Peak=%d OOM=%d", l.Live(), l.Peak(), l.OOMEvents())
	}
	l.ReleaseThread()
	if err := l.SpawnThread(); err != nil {
		t.Fatalf("spawn after release: %v", err)
	}
	if l.Peak() != 10 {
		t.Fatalf("Peak = %d after release/respawn, want 10", l.Peak())
	}
}

func TestLedgerReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ReleaseThread underflow did not panic")
		}
	}()
	NewLedger(0, 0).ReleaseThread()
}

func TestLedgerDefaults(t *testing.T) {
	l := NewLedger(0, 0)
	if got := l.Capacity(); got != DefaultBudgetBytes/DefaultStackBytes {
		t.Fatalf("default Capacity = %d", got)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	p := New(Config{Core: 4, Max: 8})
	p.Start()
	var n atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				p.Submit(func() { n.Add(1) })
			}
		}()
	}
	wg.Wait()
	p.Stop()
	if n.Load() != 2000 {
		t.Fatalf("executed %d, want 2000", n.Load())
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestBatchAdmission pins the one-transaction contract of SpawnThreads:
// a batch either fits entirely or is refused entirely, with exactly one
// OOM event per refused batch and no partial reservation.
func TestBatchAdmission(t *testing.T) {
	l := NewLedger(100, 1000) // capacity 10
	if err := l.SpawnThreads(4); err != nil {
		t.Fatalf("SpawnThreads(4): %v", err)
	}
	if err := l.SpawnThreads(7); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("SpawnThreads(7) over budget = %v, want ErrOutOfMemory", err)
	}
	if l.Live() != 4 {
		t.Fatalf("Live = %d after refused batch, want 4 (no partial admission)", l.Live())
	}
	if l.OOMEvents() != 1 {
		t.Fatalf("OOMEvents = %d after one refused batch, want 1", l.OOMEvents())
	}
	if err := l.SpawnThreads(6); err != nil { // exactly fits
		t.Fatalf("SpawnThreads(6) at exact fit: %v", err)
	}
	if l.Live() != 10 || l.Peak() != 10 {
		t.Fatalf("Live=%d Peak=%d, want 10/10", l.Live(), l.Peak())
	}
	l.ReleaseThreads(10)
	if l.Live() != 0 {
		t.Fatalf("Live = %d after ReleaseThreads(10), want 0", l.Live())
	}
}

func TestReleaseThreadsUnderflowPanics(t *testing.T) {
	l := NewLedger(100, 1000)
	if err := l.SpawnThreads(2); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ReleaseThreads underflow did not panic")
		}
	}()
	l.ReleaseThreads(3)
}

// TestStartBatchAdmission verifies Pool.Start admits its core pre-create
// through the ledger as one batch: a refused pool leaves the ledger
// untouched (no half-started worker set), a fitting pool charges Core
// stacks and releases them all on Stop.
func TestStartBatchAdmission(t *testing.T) {
	tight := NewLedger(1024, 2048) // room for 2 stacks
	p := New(Config{Core: 4, Ledger: tight})
	if err := p.Start(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("Start = %v, want ErrOutOfMemory", err)
	}
	if tight.Live() != 0 {
		t.Fatalf("refused pool left Live = %d, want 0", tight.Live())
	}
	p.Stop()

	roomy := NewLedger(1024, 4096)
	p = New(Config{Core: 4, Ledger: roomy})
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if roomy.Live() != 4 {
		t.Fatalf("Live = %d after Start, want 4", roomy.Live())
	}
	p.Stop()
	if roomy.Live() != 0 {
		t.Fatalf("Live = %d after Stop, want 0", roomy.Live())
	}
}
