// Package pool provides the worker-pool machinery behind both dispatchers
// and WS-MsgBox, plus a thread Ledger that models Java's per-thread stack
// allocation so the paper's WS-MsgBox OutOfMemoryError bug (§4.3.2) can be
// reproduced safely inside a Go process.
//
// The paper's MSG-Dispatcher "manages two pools of threads (the sizes of
// the pools are configurable)" and relies on the Concurrent Java Library
// for "thread pool operations such as add, pre-create, and destroy". Pool
// mirrors that: a bounded set of workers consuming a shared FIFO of tasks,
// with pre-created cores, on-demand growth to a maximum, and idle-destroy.
package pool

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/queue"
)

// ErrStopped is returned by Submit after Stop.
var ErrStopped = errors.New("pool: stopped")

// Task is a unit of work executed by a pool worker.
type Task func()

// Config controls a Pool.
type Config struct {
	// Core is the number of workers pre-created at Start. The paper's
	// dispatcher pre-creates its CxThreads and WsThreads.
	Core int
	// Max is the maximum number of workers; 0 means Max = Core.
	// Workers above Core are created on demand when the backlog is
	// non-empty and destroyed when the backlog drains.
	Max int
	// Backlog bounds the task queue; 0 means unbounded.
	Backlog int
	// Ledger, if non-nil, charges each worker's stack to a shared
	// memory budget, so over-threading fails the way a 2004 JVM did.
	Ledger *Ledger
}

// Pool executes Tasks on a bounded set of worker goroutines.
type Pool struct {
	cfg   Config
	tasks *queue.FIFO[Task]

	mu      sync.Mutex
	workers int
	busy    int
	started bool
	stopped bool
	done    sync.WaitGroup

	// counters
	executed uint64
	rejected uint64
}

// New returns an unstarted pool with the given configuration.
func New(cfg Config) *Pool {
	if cfg.Core < 1 {
		cfg.Core = 1
	}
	if cfg.Max < cfg.Core {
		cfg.Max = cfg.Core
	}
	return &Pool{cfg: cfg, tasks: queue.New[Task](cfg.Backlog)}
}

// Start pre-creates the core workers. It is a no-op when already started.
//
// The core pre-create admits through the Ledger in one transaction: the
// whole batch of stacks is reserved (or refused) under a single ledger
// lock acquisition, and on refusal no worker starts at all — the 2004
// JVM either had room for the configured pool or threw before the pool
// existed, not after half of it did.
func (p *Pool) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return nil
	}
	if p.stopped {
		return ErrStopped
	}
	p.started = true
	if p.cfg.Ledger != nil {
		if err := p.cfg.Ledger.SpawnThreads(p.cfg.Core); err != nil {
			return fmt.Errorf("pool: cannot pre-create %d core workers: %w", p.cfg.Core, err)
		}
	}
	for i := 0; i < p.cfg.Core; i++ {
		p.workers++
		p.done.Add(1)
		go p.run(true)
	}
	return nil
}

// Submit enqueues a task, blocking if the backlog is bounded and full. It
// grows the pool toward Max when every worker is busy.
func (p *Pool) Submit(t Task) error {
	if err := p.tasks.Put(t); err != nil {
		p.mu.Lock()
		p.rejected++
		p.mu.Unlock()
		return ErrStopped
	}
	p.maybeGrow()
	return nil
}

// TrySubmit enqueues a task without blocking. It returns queue.ErrFull when
// the backlog is at capacity (callers translate this into a dropped
// message) or ErrStopped after Stop.
func (p *Pool) TrySubmit(t Task) error {
	err := p.tasks.TryPut(t)
	switch err {
	case nil:
		p.maybeGrow()
		return nil
	case queue.ErrClosed:
		err = ErrStopped
	}
	p.mu.Lock()
	p.rejected++
	p.mu.Unlock()
	return err
}

// SubmitWait runs the task and blocks until it completes.
func (p *Pool) SubmitWait(t Task) error {
	done := make(chan struct{})
	err := p.Submit(func() {
		defer close(done)
		t()
	})
	if err != nil {
		return err
	}
	<-done
	return nil
}

// Stop closes the task queue, lets workers drain remaining tasks, and
// waits for them to exit. Stop is idempotent.
func (p *Pool) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		p.done.Wait()
		return
	}
	p.stopped = true
	p.mu.Unlock()
	p.tasks.Close()
	p.done.Wait()
}

// Stats is a snapshot of pool activity.
type Stats struct {
	Workers  int    // live workers
	Busy     int    // workers currently running a task
	Backlog  int    // queued tasks
	Executed uint64 // tasks completed
	Rejected uint64 // tasks refused (full backlog or stopped)
}

// Stats returns a snapshot of the pool's current state.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Workers:  p.workers,
		Busy:     p.busy,
		Backlog:  p.tasks.Len(),
		Executed: p.executed,
		Rejected: p.rejected,
	}
}

// maybeGrow adds a surge worker when the backlog exceeds the number of
// idle workers and the pool is below Max. (Comparing against idle workers
// rather than requiring busy == workers avoids a race where tasks are
// queued before any worker has marked itself busy.)
func (p *Pool) maybeGrow() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started || p.stopped {
		return
	}
	idle := p.workers - p.busy
	if p.workers < p.cfg.Max && p.tasks.Len() > idle {
		// Growth failure is not an error for the caller: the task is
		// queued and existing workers will get to it.
		_ = p.spawnLocked(false)
	}
}

// spawnLocked starts one worker. core workers block on the queue forever;
// surge workers exit when the queue momentarily drains ("destroy").
func (p *Pool) spawnLocked(core bool) error {
	if p.cfg.Ledger != nil {
		if err := p.cfg.Ledger.SpawnThread(); err != nil {
			return fmt.Errorf("pool: cannot add worker: %w", err)
		}
	}
	p.workers++
	p.done.Add(1)
	go p.run(core)
	return nil
}

func (p *Pool) run(core bool) {
	defer func() {
		p.mu.Lock()
		p.workers--
		p.mu.Unlock()
		if p.cfg.Ledger != nil {
			p.cfg.Ledger.ReleaseThread()
		}
		p.done.Done()
	}()
	for {
		var t Task
		var err error
		if core {
			t, err = p.tasks.Take()
			if err != nil {
				return
			}
		} else {
			var ok bool
			t, ok = p.tasks.TryTake()
			if !ok {
				return // surge worker destroyed on idle
			}
		}
		p.mu.Lock()
		p.busy++
		p.mu.Unlock()
		t()
		p.mu.Lock()
		p.busy--
		p.executed++
		p.mu.Unlock()
	}
}
