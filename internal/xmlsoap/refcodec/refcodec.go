// Package refcodec is a frozen copy of the original (seed) xmlsoap
// serializer: strings.Builder-based, rune-at-a-time escaping,
// fmt.Sprintf-generated prefixes. It exists solely as the byte-level
// oracle for the golden equivalence tests of the streaming codec — the
// wire format is the protocol contract, so every optimization of the
// live serializer must keep emitting exactly these bytes. Do not
// optimize or "fix" this package; change it only if the wire format is
// deliberately changed, together with the golden tests.
package refcodec

import (
	"fmt"
	"strings"

	"repro/internal/xmlsoap"
)

// Marshal is the seed xmlsoap.Marshal, byte for byte.
func Marshal(e *xmlsoap.Element) ([]byte, error) {
	var b strings.Builder
	gen := &prefixGen{assigned: map[string]string{}, used: map[string]bool{}}
	if err := writeElement(&b, e, nil, gen); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// MarshalDoc is the seed xmlsoap.MarshalDoc, byte for byte.
func MarshalDoc(e *xmlsoap.Element) ([]byte, error) {
	body, err := Marshal(e)
	if err != nil {
		return nil, err
	}
	return append([]byte(`<?xml version="1.0" encoding="UTF-8"?>`+"\n"), body...), nil
}

type prefixGen struct {
	assigned map[string]string
	used     map[string]bool
	n        int
}

func (g *prefixGen) prefixFor(uri string) string {
	if p, ok := g.assigned[uri]; ok {
		return p
	}
	p := xmlsoap.PreferredPrefixes[uri]
	if p == "" || g.used[p] {
		for {
			g.n++
			p = fmt.Sprintf("ns%d", g.n)
			if !g.used[p] {
				break
			}
		}
	}
	g.assigned[uri] = p
	g.used[p] = true
	return p
}

// scope is an immutable linked list of in-scope namespace bindings.
type scope struct {
	uri    string
	prefix string
	parent *scope
}

func (s *scope) lookup(uri string) (string, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.uri == uri {
			return cur.prefix, true
		}
	}
	return "", false
}

func writeElement(b *strings.Builder, e *xmlsoap.Element, sc *scope, gen *prefixGen) error {
	if e == nil {
		return fmt.Errorf("xmlsoap: nil element")
	}
	if e.Name.Local == "" {
		return fmt.Errorf("xmlsoap: element with empty local name")
	}

	type decl struct{ prefix, uri string }
	var decls []decl
	localScope := sc

	qname := func(n xmlsoap.Name) string {
		if n.Space == "" {
			return n.Local
		}
		if p, ok := localScope.lookup(n.Space); ok {
			return p + ":" + n.Local
		}
		p := gen.prefixFor(n.Space)
		localScope = &scope{uri: n.Space, prefix: p, parent: localScope}
		decls = append(decls, decl{prefix: p, uri: n.Space})
		return p + ":" + n.Local
	}

	tag := qname(e.Name)
	b.WriteByte('<')
	b.WriteString(tag)
	for _, a := range e.Attrs {
		b.WriteByte(' ')
		b.WriteString(qname(a.Name))
		b.WriteString(`="`)
		escapeAttr(b, a.Value)
		b.WriteByte('"')
	}
	for _, d := range decls {
		fmt.Fprintf(b, ` xmlns:%s="`, d.prefix)
		escapeAttr(b, d.uri)
		b.WriteByte('"')
	}

	if e.Text == "" && len(e.Children) == 0 {
		b.WriteString("/>")
		return nil
	}
	b.WriteByte('>')
	if e.Text != "" {
		escapeText(b, e.Text)
	}
	for _, c := range e.Children {
		if err := writeElement(b, c, localScope, gen); err != nil {
			return err
		}
	}
	b.WriteString("</")
	b.WriteString(tag)
	b.WriteByte('>')
	return nil
}

func escapeText(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteRune(r)
		}
	}
}

func escapeAttr(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		case '\n':
			b.WriteString("&#10;")
		case '\t':
			b.WriteString("&#9;")
		default:
			b.WriteRune(r)
		}
	}
}
