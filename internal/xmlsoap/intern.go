package xmlsoap

// The hot SOAP / WS-Addressing / WSDL vocabulary — the namespace URIs
// and local names every dispatched message carries — is interned: the
// pull parser resolves these names to canonical runtime-owned strings so
// that steady-state envelope trees can be retained past the exchange
// without pinning (or, for pooled buffers, corrupting) the message
// bytes, and comparisons against the package constants hit the fast
// pointer-equality path.
//
// The table is a tiny fixed-size open-addressing hash over (length,
// first byte, last byte), built once at init and read-only afterwards —
// roughly half the cost of a map lookup on the per-element path.

var internVocab = []string{
	// Namespace URIs.
	"http://schemas.xmlsoap.org/soap/envelope/",
	"http://www.w3.org/2003/05/soap-envelope",
	"http://schemas.xmlsoap.org/ws/2004/08/addressing",
	"http://schemas.xmlsoap.org/wsdl/",
	"http://www.w3.org/2001/XMLSchema",
	"http://www.w3.org/2001/XMLSchema-instance",
	xmlNamespaceURL,
	"urn:wsd:echo", "urn:wsd:msgbox", "urn:wsd:registry", "urn:wsd:auth",
	// SOAP envelope locals (1.1 and 1.2).
	"Envelope", "Header", "Body",
	"Fault", "faultcode", "faultstring", "faultactor", "detail",
	"Code", "Reason", "Value", "Text", "mustUnderstand",
	// WS-Addressing locals.
	"To", "Action", "MessageID", "RelatesTo",
	"From", "ReplyTo", "FaultTo", "Address",
	"ReferenceProperties", "EndpointReference",
	// Service vocabulary on the evaluation hot paths.
	"echo", "echoMessage", "echoResponse", "return0", "payload",
	"createMsgBox", "takeMessages", "peekCount", "destroyMsgBox",
	"boxId", "token", "address", "count", "max", "destroyed",
}

const internSlots = 256 // power of two, ~5x the vocabulary size

// internTab slots hold 1+index into internVocab; 0 means empty.
var internTab [internSlots]int16

// xmlNamespaceVocab is the vocabulary index of xmlNamespaceURL.
var xmlNamespaceVocab int16

func internKey(length int, first, last byte) uint32 {
	return (uint32(length)*131 + uint32(first)*31 + uint32(last)) & (internSlots - 1)
}

func init() {
	for idx, s := range internVocab {
		if s == xmlNamespaceURL {
			xmlNamespaceVocab = int16(idx)
		}
		h := internKey(len(s), s[0], s[len(s)-1])
		for internTab[h] != 0 {
			if internVocab[internTab[h]-1] == s {
				panic("xmlsoap: duplicate intern vocabulary entry " + s)
			}
			h = (h + 1) & (internSlots - 1)
		}
		internTab[h] = int16(idx + 1)
	}
}

// intern returns the vocabulary index of b when it is part of the hot
// vocabulary. The string(b) conversions compile to alloc-free compares.
func intern(b []byte) (int16, bool) {
	if len(b) == 0 {
		return 0, false
	}
	h := internKey(len(b), b[0], b[len(b)-1])
	for {
		v := internTab[h]
		if v == 0 {
			return 0, false
		}
		if internVocab[v-1] == string(b) {
			return v - 1, true
		}
		h = (h + 1) & (internSlots - 1)
	}
}
