package xmlsoap

import (
	"strings"
	"testing"
	"testing/quick"
)

const soapNS = "http://schemas.xmlsoap.org/soap/envelope/"

func TestBuildAndMarshal(t *testing.T) {
	env := New(soapNS, "Envelope").Add(
		New(soapNS, "Body").Add(
			NewText("urn:test", "echo", "hello"),
		),
	)
	out, err := Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		"<soapenv:Envelope", `xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"`,
		"<soapenv:Body>", "echo", ">hello<",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output %q missing %q", s, want)
		}
	}
}

func TestParseResolvesNamespaces(t *testing.T) {
	raw := `<e:Envelope xmlns:e="` + soapNS + `"><e:Body><m:op xmlns:m="urn:x">v</m:op></e:Body></e:Envelope>`
	root, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if root.Name.Space != soapNS || root.Name.Local != "Envelope" {
		t.Fatalf("root = %v", root.Name)
	}
	op := root.Path(soapNS, "Body")
	if op == nil {
		t.Fatal("Body missing")
	}
	m := op.Child("urn:x", "op")
	if m == nil || m.Text != "v" {
		t.Fatalf("op = %+v", m)
	}
}

func TestParseDefaultNamespace(t *testing.T) {
	raw := `<Envelope xmlns="` + soapNS + `"><Body/></Envelope>`
	root, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if root.Name.Space != soapNS {
		t.Fatalf("default ns not resolved: %v", root.Name)
	}
	if root.Child(soapNS, "Body") == nil {
		t.Fatal("Body not in default ns")
	}
}

func TestRoundTripPreservesStructure(t *testing.T) {
	orig := New("urn:a", "root").
		SetAttr("", "id", "42").
		SetAttr("urn:b", "flag", "yes").
		Add(
			NewText("urn:a", "leaf", "text & <escapes>"),
			New("urn:c", "empty"),
			New("urn:a", "nested").Add(NewText("urn:a", "deep", "x")),
		)
	out, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse of %q: %v", out, err)
	}
	if !back.Equal(orig) {
		t.Fatalf("round trip changed tree:\norig: %s\nback: %s", orig, back)
	}
}

func TestMarshalIsDeterministic(t *testing.T) {
	e := New(soapNS, "Envelope").Add(New("urn:q", "a"), New("urn:r", "b"))
	first, _ := Marshal(e)
	for i := 0; i < 5; i++ {
		again, _ := Marshal(e)
		if string(again) != string(first) {
			t.Fatalf("marshal not deterministic:\n%s\n%s", first, again)
		}
	}
}

func TestAttrEscaping(t *testing.T) {
	e := New("", "x").SetAttr("", "v", `a"b<c>&d`)
	out, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := back.Attr("", "v"); got != `a"b<c>&d` {
		t.Fatalf("attr round trip = %q", got)
	}
}

func TestChildHelpers(t *testing.T) {
	e := New("urn:x", "p").Add(
		NewText("urn:x", "c", "1"),
		NewText("urn:x", "c", "2"),
		NewText("urn:y", "c", "3"),
	)
	if got := len(e.ChildrenNamed("urn:x", "c")); got != 2 {
		t.Fatalf("ChildrenNamed = %d", got)
	}
	if e.ChildText("urn:y", "c") != "3" {
		t.Fatalf("ChildText = %q", e.ChildText("urn:y", "c"))
	}
	if n := e.RemoveChildren("urn:x", "c"); n != 2 {
		t.Fatalf("RemoveChildren = %d", n)
	}
	if len(e.Children) != 1 {
		t.Fatalf("children after removal = %d", len(e.Children))
	}
}

func TestSetAttrReplaces(t *testing.T) {
	e := New("", "x").SetAttr("", "k", "1").SetAttr("", "k", "2")
	if len(e.Attrs) != 1 {
		t.Fatalf("attrs = %v", e.Attrs)
	}
	if v, _ := e.Attr("", "k"); v != "2" {
		t.Fatalf("attr = %q", v)
	}
}

func TestPath(t *testing.T) {
	e := New("n", "a").Add(New("n", "b").Add(NewText("n", "c", "deep")))
	if got := e.Path("n", "b", "c"); got == nil || got.Text != "deep" {
		t.Fatalf("Path = %+v", got)
	}
	if e.Path("n", "b", "zzz") != nil {
		t.Fatal("Path to missing node returned non-nil")
	}
}

func TestClone(t *testing.T) {
	orig := New("n", "a").SetAttr("", "k", "v").Add(NewText("n", "b", "t"))
	cp := orig.Clone()
	if !cp.Equal(orig) {
		t.Fatal("clone not equal")
	}
	cp.Children[0].Text = "mutated"
	if orig.Children[0].Text != "t" {
		t.Fatal("clone aliased original")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"<a><b></a></b>",
		"<a>",
		"<a/><b/>",
		"plain text",
	}
	for _, raw := range bad {
		if _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("Parse(%q) succeeded", raw)
		}
	}
}

func TestMarshalNilAndEmptyName(t *testing.T) {
	if _, err := Marshal(nil); err == nil {
		t.Fatal("Marshal(nil) succeeded")
	}
	if _, err := Marshal(&Element{}); err == nil {
		t.Fatal("Marshal of empty-name element succeeded")
	}
}

func TestMarshalDocHasProlog(t *testing.T) {
	out, err := MarshalDoc(New("", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(out), `<?xml version="1.0"`) {
		t.Fatalf("doc = %q", out)
	}
}

func TestUnknownNamespaceGetsGeneratedPrefix(t *testing.T) {
	out, err := Marshal(New("urn:unknown:ns", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `xmlns:ns1="urn:unknown:ns"`) {
		t.Fatalf("output = %q", out)
	}
}

func TestNestedSameNamespaceDeclaredOnce(t *testing.T) {
	e := New("urn:a", "outer").Add(New("urn:a", "inner"))
	out, _ := Marshal(e)
	if strings.Count(string(out), "xmlns:") != 1 {
		t.Fatalf("expected single declaration: %q", out)
	}
}

// Property: trees built from arbitrary safe text content round-trip
// through Marshal/Parse unchanged.
func TestQuickTextRoundTrip(t *testing.T) {
	sanitize := func(s string) string {
		// Strip control characters XML 1.0 cannot carry, and trim
		// (the parser drops whitespace-only content and the tree
		// stores significant text only).
		var b strings.Builder
		for _, r := range s {
			if r == 0x9 || r == 0xA || r == 0xD || (r >= 0x20 && r != 0xFFFE && r != 0xFFFF) {
				b.WriteRune(r)
			}
		}
		return strings.TrimSpace(b.String())
	}
	f := func(text, attr string) bool {
		text = sanitize(text)
		attr = sanitize(attr)
		orig := New("urn:q", "root").SetAttr("", "a", attr).SetText(text)
		out, err := Marshal(orig)
		if err != nil {
			return false
		}
		back, err := Parse(out)
		if err != nil {
			return false
		}
		gotAttr, _ := back.Attr("", "a")
		return back.Text == text && gotAttr == attr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
