package xmlsoap

import (
	"bytes"
	"unicode"
	"unicode/utf8"
)

// This file is the byte-level tokenizer of the pull parser. It scans the
// input slice directly — no reader indirection, no token objects — and
// deliberately replicates encoding/xml's strict-mode token grammar byte
// for byte (names, attributes, entities, CDATA, comments, processing
// instructions, directives, \r normalization, character validation), so
// that the differential fuzz target against the frozen refparser oracle
// compares namespace/tree semantics rather than tokenizer trivia.

func (d *Decoder) syntaxAt(off int, msg string) error {
	return &SyntaxError{Msg: msg, Offset: off}
}

func (d *Decoder) eofErr() error {
	return &SyntaxError{Msg: "unexpected EOF", Offset: len(d.data)}
}

// skipSpace advances over XML whitespace.
func (d *Decoder) skipSpace() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\r', '\n', '\t':
			d.pos++
		default:
			return
		}
	}
}

// nameByteTable marks the single-byte name characters; nameScanTable
// additionally admits bytes >= 0x80, which the scan accepts and the
// post-scan validation checks by rune.
var (
	nameByteTable [256]bool
	nameScanTable [256]bool
)

func init() {
	for c := 0; c < 256; c++ {
		nameByteTable[c] = isNameByte(byte(c))
		nameScanTable[c] = isNameByte(byte(c)) || c >= utf8.RuneSelf
	}
}

// qname is a scanned raw name: its full span plus the colon accounting a
// later prefix/local split needs, gathered in the same pass.
type qname struct {
	lo, hi     int
	firstColon int // index of the first ':', or -1
	colons     int
}

// scanName scans a raw (possibly prefixed) name at d.pos and validates it
// against the XML name production. ok=false with err==nil means the
// current byte cannot start a name — the caller supplies the contextual
// error, as encoding/xml does.
func (d *Decoder) scanName() (n qname, ok bool, err error) {
	data := d.data
	i := d.pos
	if i >= len(data) {
		return n, false, d.eofErr()
	}
	if c := data[i]; c < utf8.RuneSelf && !nameByteTable[c] {
		return n, false, nil
	}
	n.lo = i
	for i < len(data) && nameScanTable[data[i]] {
		i++
	}
	// The reference tokenizer reads one byte past the name; a name that
	// runs to end of input is therefore an unexpected-EOF error.
	if i >= len(data) {
		return n, false, d.eofErr()
	}
	n.hi = i
	span := data[n.lo:n.hi]
	n.firstColon = -1
	nonASCII := false
	for k := 0; k < len(span); k++ {
		switch c := span[k]; {
		case c == ':':
			if n.firstColon < 0 {
				n.firstColon = n.lo + k
			}
			n.colons++
		case c >= utf8.RuneSelf:
			nonASCII = true
		}
	}
	if nonASCII {
		if !validName(span) {
			return n, false, d.syntaxAt(n.lo, "invalid XML name: "+string(span))
		}
	} else if c := span[0]; !('A' <= c && c <= 'Z' || 'a' <= c && c <= 'z' || c == '_' || c == ':') {
		// All bytes are ASCII name bytes; only the first-character class
		// can still be wrong.
		return n, false, d.syntaxAt(n.lo, "invalid XML name: "+string(span))
	}
	d.pos = i
	return n, true, nil
}

// split separates the name into prefix and local spans with
// encoding/xml's semantics: more than one colon is invalid; a leading or
// trailing colon keeps the whole name (colon included) as the local part.
func (n qname) split() (preLo, preHi, locLo, locHi int, ok bool) {
	if n.colons > 1 {
		return 0, 0, 0, 0, false
	}
	if n.colons == 0 || n.firstColon == n.lo || n.firstColon == n.hi-1 {
		return n.lo, n.lo, n.lo, n.hi, true
	}
	return n.lo, n.firstColon, n.firstColon + 1, n.hi, true
}

// spanIs reports whether data[lo:hi] equals s.
func spanIs(data []byte, lo, hi int, s string) bool {
	return hi-lo == len(s) && string(data[lo:hi]) == s
}

// spanEq compares two short spans of data byte-wise; prefixes are a few
// bytes, so an inline loop beats a memeq call. An empty a-span (the
// default-namespace binding) never equals the non-empty prefix spans
// this is called with... unless both are empty, which resolveName's
// no-prefix branch already short-circuits.
func spanEq(data []byte, aLo, aHi, bLo, bHi int) bool {
	if aHi-aLo != bHi-bLo {
		return false
	}
	for k := 0; k < aHi-aLo; k++ {
		if data[aLo+k] != data[bLo+k] {
			return false
		}
	}
	return true
}

// --- character data ---

// Stop-byte tables: the fast scan skips every byte that cannot affect
// the character-data state machine in its mode. Bytes >= 0x80 and
// controls stay "boring" — the post-scan validation pass rejects bad
// ones exactly as the reference tokenizer's end-of-run validation does.
var (
	textStop  [256]bool // element content: terminator, entity, ]]> guard, \r
	cdataStop [256]bool // CDATA: terminator arm and \r only
	attrStop  [256]bool // attribute value: quotes, markup guards, entity, \r
)

func init() {
	for _, c := range []byte{'<', '&', ']', '\r'} {
		textStop[c] = true
	}
	for _, c := range []byte{']', '\r'} {
		cdataStop[c] = true
	}
	for _, c := range []byte{'"', '\'', '<', '&', '\r'} {
		attrStop[c] = true
	}
	// Character validation runs inline in the scan: every byte the XML
	// Char production excludes — and every multi-byte lead — stops the
	// fast loop so it can be checked rune-accurately.
	for c := 0; c < 256; c++ {
		if c < 0x20 && c != 0x09 && c != 0x0A && c != 0x0D || c >= 0x80 {
			textStop[c] = true
			cdataStop[c] = true
			attrStop[c] = true
		}
	}
}

// scanText scans one character-data run starting at d.pos and returns a
// reference to its decoded bytes. Termination:
//
//	quote >= 0          — the quote byte (consumed); attribute values
//	quote < 0 && cdata  — "]]>" (consumed)
//	quote < 0 && !cdata — '<' (not consumed) or end of input
//
// Entity references are decoded, \r and \r\n are rewritten to \n, and
// the decoded content is validated for UTF-8 and the XML character
// range, all exactly as encoding/xml's text(). The "]]>" detection is a
// three-byte lookahead on raw input, which is equivalent to the
// reference tokenizer's two-bytes-of-history machine (with its reset at
// entity boundaries) because neither ']' nor '>' can occur inside an
// entity reference's raw bytes.
func (d *Decoder) scanText(quote int, cdata bool) (sref, error) {
	data := d.data
	start := d.pos
	segStart := start
	escStart := int32(len(d.esc))
	dirty := false
	stop := &textStop
	if cdata {
		stop = &cdataStop
	} else if quote >= 0 {
		stop = &attrStop
	}
	i := d.pos
	for {
		for i < len(data) && !stop[data[i]] {
			i++
		}
		if i >= len(data) {
			if cdata {
				return sref{}, d.syntaxAt(i, "unexpected EOF in CDATA section")
			}
			if quote >= 0 {
				return sref{}, d.eofErr()
			}
			d.pos = i
			return d.finishText(start, segStart, escStart, dirty, i)
		}
		switch b := data[i]; b {
		case '<':
			if quote >= 0 {
				return sref{}, d.syntaxAt(i, "unescaped < inside quoted string")
			}
			d.pos = i
			return d.finishText(start, segStart, escStart, dirty, i)
		case '&':
			d.flushSeg(segStart, i, &dirty)
			ni, err := d.scanEntity(i)
			if err != nil {
				return sref{}, err
			}
			i = ni
			segStart = i
		case ']':
			if i+2 < len(data) && data[i+1] == ']' && data[i+2] == '>' {
				if cdata {
					ref, err := d.finishText(start, segStart, escStart, dirty, i)
					d.pos = i + 3
					return ref, err
				}
				return sref{}, d.syntaxAt(i, "unescaped ]]> not in CDATA section")
			}
			i++
		case '\r':
			d.flushSeg(segStart, i, &dirty)
			d.esc = append(d.esc, '\n')
			if i+1 < len(data) && data[i+1] == '\n' {
				i += 2
			} else {
				i++
			}
			segStart = i
		case '"', '\'':
			if int(b) == quote {
				d.pos = i + 1
				return d.finishText(start, segStart, escStart, dirty, i)
			}
			i++ // the other quote kind is ordinary content
		default: // a disallowed control byte or a multi-byte rune lead
			if b < utf8.RuneSelf {
				return sref{}, d.syntaxAt(i, "illegal character code in character data")
			}
			r, size := utf8.DecodeRune(data[i:])
			if r == utf8.RuneError && size == 1 {
				return sref{}, d.syntaxAt(i, "invalid UTF-8")
			}
			if !isInCharacterRange(r) {
				return sref{}, d.syntaxAt(i, "illegal character code in character data")
			}
			i += size
		}
	}
}

// flushSeg moves the clean input segment [segStart, i) into the escape
// arena and marks the run dirty.
func (d *Decoder) flushSeg(segStart, i int, dirty *bool) {
	if i > segStart {
		d.esc = append(d.esc, d.data[segStart:i]...)
	}
	*dirty = true
}

// finishText closes a character-data run whose raw bytes ended at end
// (exclusive). Content was already validated inline by the scan (clean
// spans byte-by-byte, entity decodes at the reference).
func (d *Decoder) finishText(start, segStart int, escStart int32, dirty bool, end int) (sref, error) {
	if !dirty {
		if end > start {
			return sref{kind: refInput, lo: int32(start), hi: int32(end)}, nil
		}
		return sref{}, nil
	}
	if end > segStart {
		d.esc = append(d.esc, d.data[segStart:end]...)
	}
	return sref{kind: refEsc, lo: escStart, hi: int32(len(d.esc))}, nil
}

// scanEntity decodes one entity reference starting at the '&' at index i,
// appends the decoded bytes to the escape arena, and returns the index
// past the ';'. Strict mode: every malformed or unknown entity is an
// error. Numeric references beyond the Unicode range are rejected;
// surrogate code points decode to U+FFFD exactly as string(rune(n)) does
// in the reference tokenizer.
func (d *Decoder) scanEntity(i int) (int, error) {
	data := d.data
	j := i + 1
	if j >= len(data) {
		return 0, d.eofErr()
	}
	if data[j] == '#' {
		j++
		if j >= len(data) {
			return 0, d.eofErr()
		}
		base := uint64(10)
		if data[j] == 'x' {
			base = 16
			j++
			if j >= len(data) {
				return 0, d.eofErr()
			}
		}
		ds := j
		var n uint64
		tooBig := false
		for j < len(data) {
			c := data[j]
			var v uint64
			switch {
			case '0' <= c && c <= '9':
				v = uint64(c - '0')
			case base == 16 && 'a' <= c && c <= 'f':
				v = uint64(c-'a') + 10
			case base == 16 && 'A' <= c && c <= 'F':
				v = uint64(c-'A') + 10
			default:
				goto digitsDone
			}
			n = n*base + v
			if n > unicode.MaxRune {
				tooBig = true
				n = unicode.MaxRune + 1
			}
			j++
		}
		return 0, d.eofErr()
	digitsDone:
		if data[j] != ';' || j == ds || tooBig {
			return 0, d.syntaxAt(i, "invalid character entity")
		}
		r := rune(n)
		// Surrogate code points decode to U+FFFD (string(rune(n))
		// semantics, via AppendRune); everything else must be in the XML
		// character range, as the reference's end-of-run validation
		// enforces.
		if !isInCharacterRange(r) && !(0xD800 <= r && r <= 0xDFFF) {
			return 0, d.syntaxAt(i, "illegal character code in character reference")
		}
		d.esc = utf8.AppendRune(d.esc, r)
		return j + 1, nil
	}
	// Named entity: name bytes, then ';', then one of the five
	// predefined names (no DTD-declared entities in strict mode).
	ds := j
	for j < len(data) && (data[j] >= utf8.RuneSelf || isNameByte(data[j])) {
		j++
	}
	if j >= len(data) {
		return 0, d.eofErr()
	}
	if data[j] != ';' {
		return 0, d.syntaxAt(i, "invalid character entity")
	}
	var r byte
	switch string(data[ds:j]) {
	case "lt":
		r = '<'
	case "gt":
		r = '>'
	case "amp":
		r = '&'
	case "apos":
		r = '\''
	case "quot":
		r = '"'
	default:
		return 0, d.syntaxAt(i, "invalid character entity")
	}
	d.esc = append(d.esc, r)
	return j + 1, nil
}

// --- chunks and text accumulation ---

// handleChunk routes one decoded character-data run: whitespace-only runs
// are dropped (the tree stores significant text only), in-element runs
// accumulate on the open element, and non-whitespace outside the root is
// the typed ErrContentOutsideRoot.
func (d *Decoder) handleChunk(ref sref) error {
	view := d.refBytes(ref)
	if len(d.stack) == 0 {
		if len(bytes.TrimSpace(view)) != 0 {
			return &SyntaxError{Msg: "character data outside root element", Offset: d.pos, Err: ErrContentOutsideRoot}
		}
		return nil
	}
	if len(bytes.TrimSpace(view)) == 0 {
		return nil
	}
	d.appendText(d.stack[len(d.stack)-1].node, ref)
	return nil
}

// appendText accumulates a chunk on a node. The first chunk is kept
// in place; later chunks chain through Decoder.chunks and are joined
// once at materialization — no bytes move during the scan.
func (d *Decoder) appendText(idx int32, ref sref) {
	nd := &d.nodes[idx]
	if nd.text.kind == refNone {
		nd.text = ref
		return
	}
	link := int32(len(d.chunks))
	d.chunks = append(d.chunks, chunkLink{ref: ref, next: -1})
	if nd.extra < 0 {
		nd.extra = link
	} else {
		d.chunks[nd.extraTail].next = link
	}
	nd.extraTail = link
}

// --- tags ---

func (d *Decoder) startTag() error {
	data := d.data
	name, ok, err := d.scanName()
	if err != nil {
		return err
	}
	if !ok {
		return d.syntaxAt(d.pos, "expected element name after <")
	}
	nLo, nHi := name.lo, name.hi
	preLo, preHi, locLo, locHi, ok := name.split()
	if !ok {
		return d.syntaxAt(nLo, "expected element name after <")
	}

	d.rawAttrs = d.rawAttrs[:0]
	selfClose := false
	for {
		d.skipSpace()
		if d.pos >= len(data) {
			return d.eofErr()
		}
		b := data[d.pos]
		if b == '/' {
			d.pos++
			if d.pos >= len(data) {
				return d.eofErr()
			}
			if data[d.pos] != '>' {
				return d.syntaxAt(d.pos, "expected /> in element")
			}
			d.pos++
			selfClose = true
			break
		}
		if b == '>' {
			d.pos++
			break
		}
		aname, ok, err := d.scanName()
		if err != nil {
			return err
		}
		if !ok {
			return d.syntaxAt(d.pos, "expected attribute name in element")
		}
		apLo, apHi, alLo, alHi, ok := aname.split()
		if !ok {
			return d.syntaxAt(aname.lo, "expected attribute name in element")
		}
		d.skipSpace()
		if d.pos >= len(data) {
			return d.eofErr()
		}
		if data[d.pos] != '=' {
			return d.syntaxAt(d.pos, "attribute name without = in element")
		}
		d.pos++
		d.skipSpace()
		if d.pos >= len(data) {
			return d.eofErr()
		}
		q := data[d.pos]
		if q != '"' && q != '\'' {
			return d.syntaxAt(d.pos, "unquoted or missing attribute value in element")
		}
		d.pos++
		val, err := d.scanText(int(q), false)
		if err != nil {
			return err
		}
		d.rawAttrs = append(d.rawAttrs, rawAttr{
			preLo: int32(apLo), preHi: int32(apHi),
			locLo: int32(alLo), locHi: int32(alHi),
			off:   int32(aname.lo),
			value: val,
		})
	}

	// Namespace declarations on this element apply to its own name and
	// attributes; process them first, in document order (later wins).
	bindFloor := len(d.bindings)
	for k := range d.rawAttrs {
		a := &d.rawAttrs[k]
		switch {
		case spanIs(data, int(a.preLo), int(a.preHi), "xmlns"):
			if err := d.declarePrefix(a); err != nil {
				return err
			}
		case a.preLo == a.preHi && spanIs(data, int(a.locLo), int(a.locHi), "xmlns"):
			d.bindings = append(d.bindings, binding{uri: a.value})
		}
	}

	space, err := d.resolveName(int(preLo), int(preHi), int(locLo), int(locHi), true, nLo)
	if err != nil {
		return err
	}

	attrLo := int32(len(d.attrs))
	for k := range d.rawAttrs {
		a := &d.rawAttrs[k]
		if spanIs(data, int(a.preLo), int(a.preHi), "xmlns") ||
			(a.preLo == a.preHi && spanIs(data, int(a.locLo), int(a.locHi), "xmlns")) {
			continue // declarations are not attributes of the tree
		}
		aspace, err := d.resolveName(int(a.preLo), int(a.preHi), int(a.locLo), int(a.locHi), false, int(a.off))
		if err != nil {
			return err
		}
		d.attrs = append(d.attrs, pattr{
			space: aspace,
			local: d.localRef(int(a.locLo), int(a.locHi)),
			value: a.value,
		})
	}

	idx := int32(len(d.nodes))
	parent := int32(-1)
	if len(d.stack) == 0 {
		if d.root >= 0 {
			return &SyntaxError{Msg: "multiple root elements", Offset: nLo, Err: ErrMultipleRoots}
		}
		d.root = idx
	} else {
		parent = d.stack[len(d.stack)-1].node
		d.nodes[parent].nchild++
	}
	d.nodes = append(d.nodes, pnode{
		space:  space,
		local:  d.localRef(locLo, locHi),
		extra:  -1,
		parent: parent,
		attrLo: attrLo,
		attrHi: int32(len(d.attrs)),
	})
	if selfClose {
		d.bindings = d.bindings[:bindFloor]
	} else {
		d.stack = append(d.stack, openElem{
			node:      idx,
			bindFloor: int32(bindFloor),
			rawLo:     int32(nLo),
			rawHi:     int32(nHi),
		})
	}
	return nil
}

// localRef returns the local-part reference, interned when it is part of
// the hot vocabulary.
func (d *Decoder) localRef(lo, hi int) sref {
	if idx, ok := intern(d.data[lo:hi]); ok {
		return vocabRef(idx)
	}
	return sref{kind: refInput, lo: int32(lo), hi: int32(hi)}
}

// declarePrefix validates and records one xmlns:p="uri" declaration.
func (d *Decoder) declarePrefix(a *rawAttr) error {
	data := d.data
	if spanIs(data, int(a.locLo), int(a.locHi), "xmlns") {
		return &SyntaxError{Msg: "declaration of reserved prefix xmlns", Offset: int(a.off), Err: ErrReservedPrefix}
	}
	uriBytes := d.refBytes(a.value)
	if spanIs(data, int(a.locLo), int(a.locHi), "xml") {
		if string(uriBytes) != xmlNamespaceURL {
			return &SyntaxError{Msg: "prefix xml bound to a foreign namespace", Offset: int(a.off), Err: ErrReservedPrefix}
		}
		return nil // predeclared; nothing to record
	}
	if len(uriBytes) == 0 {
		return &SyntaxError{Msg: "empty URI in prefixed namespace declaration", Offset: int(a.off), Err: ErrEmptyPrefixBinding}
	}
	uri := a.value
	if idx, ok := intern(uriBytes); ok {
		uri = vocabRef(idx)
	}
	d.bindings = append(d.bindings, binding{prefixLo: a.locLo, prefixHi: a.locHi, uri: uri})
	return nil
}

// resolveName maps a prefix to its namespace reference. The default
// namespace applies to element names only; the reserved xml prefix is
// predeclared; an element literally named "xmlns" takes no default
// namespace (matching the reference parser's translation table).
func (d *Decoder) resolveName(preLo, preHi, locLo, locHi int, isElement bool, off int) (sref, error) {
	data := d.data
	if preLo == preHi {
		if !isElement || spanIs(data, locLo, locHi, "xmlns") {
			return sref{}, nil
		}
		for k := len(d.bindings) - 1; k >= 0; k-- {
			if d.bindings[k].prefixLo == d.bindings[k].prefixHi {
				return d.bindings[k].uri, nil
			}
		}
		return sref{}, nil
	}
	if spanIs(data, preLo, preHi, "xml") {
		return vocabRef(xmlNamespaceVocab), nil
	}
	if spanIs(data, preLo, preHi, "xmlns") {
		return sref{}, &SyntaxError{Msg: "name uses the reserved xmlns prefix", Offset: off, Err: ErrReservedPrefix}
	}
	for k := len(d.bindings) - 1; k >= 0; k-- {
		b := &d.bindings[k]
		if spanEq(data, int(b.prefixLo), int(b.prefixHi), preLo, preHi) {
			return b.uri, nil
		}
	}
	return sref{}, &SyntaxError{
		Msg:    "undeclared namespace prefix " + string(data[preLo:preHi]),
		Offset: off,
		Err:    ErrUndeclaredPrefix,
	}
}

func (d *Decoder) endTag() error {
	data := d.data
	// Fast path: the end tag almost always repeats the open tag's raw
	// name byte-for-byte, which was already validated at the start tag.
	// A clean match (followed by a non-name byte) skips the rescan.
	if len(d.stack) > 0 {
		top := d.stack[len(d.stack)-1]
		n := int(top.rawHi - top.rawLo)
		if len(data)-d.pos > n &&
			string(data[d.pos:d.pos+n]) == string(data[top.rawLo:top.rawHi]) {
			if c := data[d.pos+n]; c < utf8.RuneSelf && !nameByteTable[c] {
				d.pos += n
				d.skipSpace()
				if d.pos >= len(data) {
					return d.eofErr()
				}
				if data[d.pos] != '>' {
					return d.syntaxAt(d.pos, "invalid characters between </"+string(data[top.rawLo:top.rawHi])+" and >")
				}
				d.pos++
				d.bindings = d.bindings[:top.bindFloor]
				d.stack = d.stack[:len(d.stack)-1]
				return nil
			}
		}
	}
	name, ok, err := d.scanName()
	if err != nil {
		return err
	}
	if !ok {
		return d.syntaxAt(d.pos, "expected element name after </")
	}
	nLo, nHi := name.lo, name.hi
	if _, _, _, _, ok := name.split(); !ok {
		return d.syntaxAt(nLo, "expected element name after </")
	}
	d.skipSpace()
	if d.pos >= len(data) {
		return d.eofErr()
	}
	if data[d.pos] != '>' {
		return d.syntaxAt(d.pos, "invalid characters between </"+string(data[nLo:nHi])+" and >")
	}
	d.pos++
	if len(d.stack) == 0 {
		return d.syntaxAt(nLo, "unexpected end element </"+string(data[nLo:nHi])+">")
	}
	top := d.stack[len(d.stack)-1]
	if !bytes.Equal(data[top.rawLo:top.rawHi], data[nLo:nHi]) {
		return d.syntaxAt(nLo, "element <"+string(data[top.rawLo:top.rawHi])+"> closed by </"+string(data[nLo:nHi])+">")
	}
	d.bindings = d.bindings[:top.bindFloor]
	d.stack = d.stack[:len(d.stack)-1]
	return nil
}

// --- processing instructions, comments, CDATA, directives ---

var (
	piVersion  = []byte("version=")
	piEncoding = []byte("encoding=")
	utf8Name   = []byte("utf-8")
	xml10      = []byte("1.0")
)

func (d *Decoder) procInst() error {
	data := d.data
	target, ok, err := d.scanName()
	if err != nil {
		return err
	}
	if !ok {
		return d.syntaxAt(d.pos, "expected target name after <?")
	}
	tLo, tHi := target.lo, target.hi
	d.skipSpace()
	bodyLo := d.pos
	i := d.pos
	for {
		if i+1 >= len(data) {
			return d.eofErr()
		}
		if data[i] == '?' && data[i+1] == '>' {
			break
		}
		i++
	}
	content := data[bodyLo:i]
	d.pos = i + 2
	if spanIs(data, tLo, tHi, "xml") {
		if string(content) == stdPrologBody {
			return nil // the prolog this stack emits; nothing to check
		}
		if ver := procInstParam(content, piVersion); len(ver) != 0 && !bytes.Equal(ver, xml10) {
			return d.syntaxAt(bodyLo, "unsupported XML version "+string(ver))
		}
		if enc := procInstParam(content, piEncoding); len(enc) != 0 && !bytes.EqualFold(enc, utf8Name) {
			return d.syntaxAt(bodyLo, "unsupported document encoding "+string(enc))
		}
	}
	return nil
}

// stdPrologBody is the body of the XML declaration this package's own
// serializer emits (see Prolog) — the overwhelmingly common case on the
// dispatch path, checked with one comparison.
const stdPrologBody = `version="1.0" encoding="UTF-8"`

// procInstParam extracts a pseudo-attribute from a processing-instruction
// body with the reference tokenizer's (deliberately lax) matcher. param
// includes the trailing '='.
func procInstParam(s, param []byte) []byte {
	lenp := len(param)
	i := 0
	var sep byte
	for i < len(s) {
		sub := s[i:]
		k := bytes.Index(sub, param)
		if k < 0 || lenp+k >= len(sub) {
			return nil
		}
		i += lenp + k + 1
		if c := sub[lenp+k]; c == '\'' || c == '"' {
			sep = c
			break
		}
	}
	if sep == 0 {
		return nil
	}
	j := bytes.IndexByte(s[i:], sep)
	if j < 0 {
		return nil
	}
	return s[i : i+j]
}

// bang dispatches after "<!": comment, CDATA section, or directive.
func (d *Decoder) bang() error {
	data := d.data
	if d.pos >= len(data) {
		return d.eofErr()
	}
	switch data[d.pos] {
	case '-':
		d.pos++
		if d.pos >= len(data) {
			return d.eofErr()
		}
		if data[d.pos] != '-' {
			return d.syntaxAt(d.pos, "invalid sequence <!- not part of <!--")
		}
		d.pos++
		var b0, b1 byte
		i := d.pos
		for {
			if i >= len(data) {
				return d.eofErr()
			}
			b := data[i]
			i++
			if b0 == '-' && b1 == '-' {
				if b != '>' {
					return d.syntaxAt(i-1, `invalid sequence "--" not allowed in comments`)
				}
				d.pos = i
				return nil
			}
			b0, b1 = b1, b
		}
	case '[':
		d.pos++
		for k := 0; k < 6; k++ {
			if d.pos >= len(data) {
				return d.eofErr()
			}
			if data[d.pos] != "CDATA["[k] {
				return d.syntaxAt(d.pos, "invalid <![ sequence")
			}
			d.pos++
		}
		ref, err := d.scanText(-1, true)
		if err != nil {
			return err
		}
		return d.handleChunk(ref)
	}
	return d.directive()
}

// directive skips a <!DOCTYPE ...>-style directive with the reference
// tokenizer's nesting rules: quoted angle brackets do not nest, embedded
// comments are skipped wholesale, and a bare '>' at depth zero ends it.
// The first byte after "<!" is stored without inspection, exactly as the
// reference does.
func (d *Decoder) directive() error {
	data := d.data
	var inquote byte
	depth := 0
	i := d.pos + 1
	for {
		if i >= len(data) {
			return d.eofErr()
		}
		b := data[i]
		i++
		if inquote == 0 && b == '>' && depth == 0 {
			d.pos = i
			return nil
		}
	handleB:
		switch {
		case b == inquote:
			inquote = 0
		case inquote != 0:
			// quoted: no special action
		case b == '\'' || b == '"':
			inquote = b
		case b == '>':
			depth--
		case b == '<':
			// A nested "<!--" comment is skipped without affecting
			// depth; any other '<' nests.
			for k := 0; k < 3; k++ {
				if i >= len(data) {
					return d.eofErr()
				}
				nb := data[i]
				i++
				if nb != "!--"[k] {
					depth++
					b = nb
					goto handleB
				}
			}
			var b0, b1 byte
			for {
				if i >= len(data) {
					return d.eofErr()
				}
				cb := data[i]
				i++
				if b0 == '-' && b1 == '-' && cb == '>' {
					break
				}
				b0, b1 = b1, cb
			}
		}
	}
}
