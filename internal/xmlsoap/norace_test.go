//go:build !race

package xmlsoap_test

const raceEnabled = false
