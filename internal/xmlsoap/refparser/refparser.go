// Package refparser is the frozen reference parser for xmlsoap trees:
// the seed encoding/xml-based implementation, kept as the behavioral
// oracle for the hand-rolled pull parser exactly as refcodec freezes the
// seed serializer for the marshal path. It tokenizes with
// encoding/xml.Decoder.RawToken (strict mode, no custom entities) and
// performs its own namespace-prefix resolution with the shared rules —
// including the typed-error gap fixes both parsers adopted over the seed
// (multiple roots, stray content outside the root, undeclared prefixes,
// reserved-prefix and empty-prefix declarations).
//
// Do not optimize this package; it is deliberately simple and allocates
// freely. Change it only when parser behavior is deliberately changed,
// together with the golden parse suite and FuzzParseDifferential, which
// enforce that xmlsoap.Parse and this package accept the same documents
// and produce identical trees.
package refparser

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/xmlsoap"
)

const xmlNamespaceURL = "http://www.w3.org/XML/1998/namespace"

// Parse reads one XML document from data and returns its root element.
// Unlike the zero-copy live parser, the returned tree owns all of its
// strings.
func Parse(data []byte) (*xmlsoap.Element, error) {
	return ParseReader(bytes.NewReader(data))
}

// ParseReader reads one XML document from r.
func ParseReader(r io.Reader) (*xmlsoap.Element, error) {
	dec := xml.NewDecoder(r)

	type binding struct{ prefix, uri string }
	type open struct {
		el        *xmlsoap.Element
		raw       xml.Name
		bindFloor int
	}
	var bindings []binding
	var stack []open
	var root *xmlsoap.Element

	// resolve maps a raw prefix to its namespace URI under the shared
	// resolution rules. The default namespace applies to element names
	// only; an element literally named "xmlns" takes no default
	// namespace (the seed decoder's translation quirk, preserved).
	resolve := func(name xml.Name, isElement bool) (string, error) {
		if name.Space == "" {
			if !isElement || name.Local == "xmlns" {
				return "", nil
			}
			for i := len(bindings) - 1; i >= 0; i-- {
				if bindings[i].prefix == "" {
					return bindings[i].uri, nil
				}
			}
			return "", nil
		}
		if name.Space == "xml" {
			return xmlNamespaceURL, nil
		}
		if name.Space == "xmlns" {
			return "", fmt.Errorf("%w: %s", xmlsoap.ErrReservedPrefix, name.Space)
		}
		for i := len(bindings) - 1; i >= 0; i-- {
			if bindings[i].prefix == name.Space {
				return bindings[i].uri, nil
			}
		}
		return "", fmt.Errorf("%w: %s", xmlsoap.ErrUndeclaredPrefix, name.Space)
	}

	for {
		tok, err := dec.RawToken()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlsoap: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			floor := len(bindings)
			// Declarations first, in document order (later wins), so
			// they govern this element's own name and attributes.
			for _, a := range t.Attr {
				switch {
				case a.Name.Space == "xmlns":
					switch {
					case a.Name.Local == "xmlns":
						return nil, fmt.Errorf("%w: xmlns", xmlsoap.ErrReservedPrefix)
					case a.Name.Local == "xml":
						if a.Value != xmlNamespaceURL {
							return nil, fmt.Errorf("%w: xml", xmlsoap.ErrReservedPrefix)
						}
						// Predeclared; nothing to record.
					case a.Value == "":
						return nil, xmlsoap.ErrEmptyPrefixBinding
					default:
						bindings = append(bindings, binding{prefix: a.Name.Local, uri: a.Value})
					}
				case a.Name.Space == "" && a.Name.Local == "xmlns":
					bindings = append(bindings, binding{prefix: "", uri: a.Value})
				}
			}
			space, err := resolve(t.Name, true)
			if err != nil {
				return nil, err
			}
			e := &xmlsoap.Element{Name: xmlsoap.Name{Space: space, Local: t.Name.Local}}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
					continue // declarations are not attributes of the tree
				}
				aspace, err := resolve(a.Name, false)
				if err != nil {
					return nil, err
				}
				e.Attrs = append(e.Attrs, xmlsoap.Attr{
					Name:  xmlsoap.Name{Space: aspace, Local: a.Name.Local},
					Value: a.Value,
				})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, xmlsoap.ErrMultipleRoots
				}
				root = e
			} else {
				parent := stack[len(stack)-1].el
				parent.Children = append(parent.Children, e)
			}
			stack = append(stack, open{el: e, raw: t.Name, bindFloor: floor})
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlsoap: unexpected end element </%s>", t.Name.Local)
			}
			top := stack[len(stack)-1]
			if top.raw != t.Name {
				return nil, fmt.Errorf("xmlsoap: element <%s> closed by </%s>", top.raw.Local, t.Name.Local)
			}
			bindings = bindings[:top.bindFloor]
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := string(t)
			if len(stack) == 0 {
				if strings.TrimSpace(text) != "" {
					return nil, xmlsoap.ErrContentOutsideRoot
				}
				continue
			}
			if strings.TrimSpace(text) != "" {
				stack[len(stack)-1].el.Text += text
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Ignored: the SOAP processing model does not depend on them.
		}
	}
	if len(stack) != 0 {
		return nil, xmlsoap.ErrUnclosedElement
	}
	if root == nil {
		return nil, xmlsoap.ErrNoContent
	}
	return root, nil
}
