//go:build poolcheck

package xmlsoap

// Building with the poolcheck tag turns the buffer-lifecycle checker on
// for the whole binary (CI's race job does this), so double-Put and
// use-after-Put bugs panic in any test or daemon, not only in the suites
// that opt in via TestMain.
func init() { EnablePoolCheck() }
