package xmlsoap

// Binary XML codec — the paper's §2 closes with: "Our WSD currently only
// supports SOAP/XML messages but extensions to other protocols, such as
// binary XML, may be an interesting topic to investigate in future work."
// This file is that extension: a compact, self-describing binary encoding
// of the element tree with a string table, so repeated namespace URIs and
// local names (the bulk of a SOAP envelope) are emitted once.
//
// Format (all integers unsigned LEB128):
//
//	magic "BX1\n"
//	stringCount, then each string as (len, bytes)
//	element := TagElement nameIdx spaceIdx attrCount
//	           { nameIdx spaceIdx valueIdx }*   attributes
//	           textIdx                          (0 = no text; else idx+1)
//	           childCount { element }*
//
// The encoding is canonical: encoding the same tree twice yields identical
// bytes, so binary messages can be hashed or deduplicated.

import (
	"bytes"
	"errors"
	"fmt"
)

// binaryMagic guards against feeding text XML into the binary decoder.
var binaryMagic = []byte("BX1\n")

// ErrNotBinary is returned by UnmarshalBinary for non-binary input.
var ErrNotBinary = errors.New("xmlsoap: not a binary XML document")

// maxBinaryStrings bounds the string table against corrupt input.
const maxBinaryStrings = 1 << 20

// MarshalBinary encodes the element tree in the compact binary format.
func MarshalBinary(e *Element) ([]byte, error) {
	if e == nil {
		return nil, fmt.Errorf("xmlsoap: nil element")
	}
	// First pass: collect strings in deterministic first-use order.
	table := map[string]int{}
	var strs []string
	intern := func(s string) int {
		if i, ok := table[s]; ok {
			return i
		}
		table[s] = len(strs)
		strs = append(strs, s)
		return len(strs) - 1
	}
	var collect func(el *Element) error
	collect = func(el *Element) error {
		if el.Name.Local == "" {
			return fmt.Errorf("xmlsoap: element with empty local name")
		}
		intern(el.Name.Local)
		intern(el.Name.Space)
		for _, a := range el.Attrs {
			intern(a.Name.Local)
			intern(a.Name.Space)
			intern(a.Value)
		}
		if el.Text != "" {
			intern(el.Text)
		}
		for _, c := range el.Children {
			if err := collect(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := collect(e); err != nil {
		return nil, err
	}

	var buf bytes.Buffer
	buf.Write(binaryMagic)
	writeUvarint(&buf, uint64(len(strs)))
	for _, s := range strs {
		writeUvarint(&buf, uint64(len(s)))
		buf.WriteString(s)
	}
	var emit func(el *Element)
	emit = func(el *Element) {
		writeUvarint(&buf, uint64(table[el.Name.Local]))
		writeUvarint(&buf, uint64(table[el.Name.Space]))
		writeUvarint(&buf, uint64(len(el.Attrs)))
		for _, a := range el.Attrs {
			writeUvarint(&buf, uint64(table[a.Name.Local]))
			writeUvarint(&buf, uint64(table[a.Name.Space]))
			writeUvarint(&buf, uint64(table[a.Value]))
		}
		if el.Text == "" {
			writeUvarint(&buf, 0)
		} else {
			writeUvarint(&buf, uint64(table[el.Text])+1)
		}
		writeUvarint(&buf, uint64(len(el.Children)))
		for _, c := range el.Children {
			emit(c)
		}
	}
	emit(e)
	return buf.Bytes(), nil
}

// IsBinary reports whether data starts with the binary XML magic.
func IsBinary(data []byte) bool { return bytes.HasPrefix(data, binaryMagic) }

// UnmarshalBinary decodes a binary XML document back into an element tree.
func UnmarshalBinary(data []byte) (*Element, error) {
	if !IsBinary(data) {
		return nil, ErrNotBinary
	}
	r := &byteReader{data: data[len(binaryMagic):]}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxBinaryStrings {
		return nil, fmt.Errorf("xmlsoap: binary string table too large (%d)", n)
	}
	strs := make([]string, n)
	for i := range strs {
		l, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.take(int(l))
		if err != nil {
			return nil, err
		}
		strs[i] = string(b)
	}
	lookup := func(i uint64) (string, error) {
		if i >= uint64(len(strs)) {
			return "", fmt.Errorf("xmlsoap: binary string index %d out of range", i)
		}
		return strs[i], nil
	}

	var decode func(depth int) (*Element, error)
	decode = func(depth int) (*Element, error) {
		if depth > 512 {
			return nil, errors.New("xmlsoap: binary document nested too deeply")
		}
		nameI, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		spaceI, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		el := &Element{}
		if el.Name.Local, err = lookup(nameI); err != nil {
			return nil, err
		}
		if el.Name.Space, err = lookup(spaceI); err != nil {
			return nil, err
		}
		attrN, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < attrN; i++ {
			var a Attr
			li, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			si, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			vi, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if a.Name.Local, err = lookup(li); err != nil {
				return nil, err
			}
			if a.Name.Space, err = lookup(si); err != nil {
				return nil, err
			}
			if a.Value, err = lookup(vi); err != nil {
				return nil, err
			}
			el.Attrs = append(el.Attrs, a)
		}
		textI, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if textI > 0 {
			if el.Text, err = lookup(textI - 1); err != nil {
				return nil, err
			}
		}
		childN, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < childN; i++ {
			c, err := decode(depth + 1)
			if err != nil {
				return nil, err
			}
			el.Children = append(el.Children, c)
		}
		return el, nil
	}
	el, err := decode(0)
	if err != nil {
		return nil, err
	}
	if len(r.data) != r.off {
		return nil, errors.New("xmlsoap: trailing bytes after binary document")
	}
	return el, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	for v >= 0x80 {
		buf.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	buf.WriteByte(byte(v))
}

type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if r.off >= len(r.data) {
			return 0, errors.New("xmlsoap: truncated binary document")
		}
		b := r.data[r.off]
		r.off++
		if shift >= 64 {
			return 0, errors.New("xmlsoap: varint overflow")
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, errors.New("xmlsoap: truncated binary document")
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}
