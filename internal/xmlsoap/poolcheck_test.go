package xmlsoap

import (
	"runtime"
	"testing"
)

// The lifecycle checker is process-global and append-only, so these
// tests enable it and leave it on; the rest of the xmlsoap suite runs
// correctly either way (the alloc gates allocate nothing extra in check
// mode, which TestParseSteadyStateAllocs would catch).

func TestPoolCheckDoublePutPanics(t *testing.T) {
	EnablePoolCheck()
	buf := GetBuffer()
	PutBuffer(buf)
	defer func() {
		if recover() == nil {
			t.Fatal("second PutBuffer of the same buffer did not panic")
		}
	}()
	PutBuffer(buf)
}

func TestPoolCheckUseAfterPutPanics(t *testing.T) {
	EnablePoolCheck()
	buf := GetBuffer()
	buf.B = append(buf.B, "message being built"...)
	held := buf.B // the bug under test: an alias retained past release
	PutBuffer(buf)
	held[3] = 'X' // use-after-Put write through the alias

	// sync.Pool places the released buffer in the current P's private
	// slot, so the very next Get on this goroutine draws it back and the
	// poison verification must panic (the panicking Get removes the
	// buffer from the pool first, so nothing tainted remains behind).
	caught := func() (c bool) {
		defer func() { c = recover() != nil }()
		for i := 0; i < 64; i++ {
			if b := GetBuffer(); b == buf {
				t.Fatal("poisoned buffer handed out without panic")
			}
		}
		return false
	}()
	// Purge the pool in case the runtime rearranged it and the tainted
	// buffer was never re-drawn (two GC cycles empty sync.Pool), so it
	// cannot ambush a later test's GetBuffer.
	runtime.GC()
	runtime.GC()
	if !caught {
		t.Skip("poisoned buffer not re-drawn by this goroutine; pool purged")
	}
}

func TestPoolCheckPoisonsReleasedBytes(t *testing.T) {
	EnablePoolCheck()
	buf := GetBuffer()
	buf.B = append(buf.B, "sensitive payload"...)
	held := buf.B
	PutBuffer(buf)
	for i, c := range held {
		if c != poisonByte {
			t.Fatalf("byte %d = %#x after PutBuffer, want poison %#x", i, c, poisonByte)
		}
	}
	// Un-poison nothing: the buffer is only legal to touch via GetBuffer.
}

func TestPoolLiveCountsOutstandingBuffers(t *testing.T) {
	EnablePoolCheck()
	base := PoolLive()
	a, b := GetBuffer(), GetBuffer()
	if got := PoolLive(); got != base+2 {
		t.Fatalf("PoolLive = %d after two Gets, want %d", got, base+2)
	}
	PutBuffer(a)
	PutBuffer(b)
	if got := PoolLive(); got != base {
		t.Fatalf("PoolLive = %d after releases, want baseline %d", got, base)
	}
}
