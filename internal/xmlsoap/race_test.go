//go:build race

package xmlsoap_test

// raceEnabled skips the pooled-path allocation gates under the race
// detector, which deliberately randomizes sync.Pool caching and makes
// allocation counts nondeterministic. The Encoder-based gate still runs.
const raceEnabled = true
