package xmlsoap

import (
	"io"
	"sync"
)

// Buffer is a reusable byte buffer drawn from the package-wide pool. The
// dispatch hot path renders every envelope into one of these and hands the
// bytes straight to the HTTP connection writer, so steady-state message
// traffic allocates nothing per message.
//
// Ownership contract (ROADMAP.md "Wire codec"):
//
//   - GetBuffer transfers ownership to the caller. The caller may grow B
//     freely (always write back the result of append) and must either call
//     PutBuffer exactly once or let the buffer fall to the garbage
//     collector.
//   - After PutBuffer the slice must not be touched: the pool hands it to
//     the next caller, and a retained alias would corrupt a message being
//     built there.
//   - Bytes that outlive the exchange that produced them (queued payloads,
//     store-and-forward records, parsed trees) must be copied out before
//     the buffer is released.
type Buffer struct{ B []byte }

// maxPooledBuffer caps the capacity the pool retains, so one oversized
// message (a WSDL document, a batched mailbox download) cannot pin memory
// for the process lifetime.
const maxPooledBuffer = 64 << 10

var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 1024)} }}

// GetBuffer returns a pooled buffer with length reset to zero.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// PutBuffer returns buf to the pool. A nil buffer is ignored.
func PutBuffer(buf *Buffer) {
	if buf == nil || cap(buf.B) > maxPooledBuffer {
		return
	}
	bufPool.Put(buf)
}

// Render runs an append-style serializer against a pooled buffer and
// returns an exact-size copy of the bytes it produced. It is the one
// place the pooled-render / copy-out sequence lives; every compat
// Marshal wrapper goes through it.
func Render(fn func(dst []byte) ([]byte, error)) ([]byte, error) {
	buf := GetBuffer()
	defer PutBuffer(buf)
	b, err := fn(buf.B)
	if err != nil {
		return nil, err
	}
	buf.B = b
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// WriteRendered runs an append-style serializer against a pooled buffer
// and writes the result to w in a single Write call.
func WriteRendered(w io.Writer, fn func(dst []byte) ([]byte, error)) (int64, error) {
	buf := GetBuffer()
	defer PutBuffer(buf)
	b, err := fn(buf.B)
	if err != nil {
		return 0, err
	}
	buf.B = b
	n, err := w.Write(b)
	return int64(n), err
}
