package xmlsoap

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Buffer is a reusable byte buffer drawn from the package-wide pool. The
// dispatch hot path renders every envelope into one of these and hands the
// bytes straight to the HTTP connection writer, and the HTTP codec reads
// request and response bodies into them, so steady-state message traffic
// allocates nothing per message.
//
// Ownership contract (ROADMAP.md "Wire codec"):
//
//   - GetBuffer transfers ownership to the caller. The caller may grow B
//     freely (always write back the result of append) and must either call
//     PutBuffer exactly once or let the buffer fall to the garbage
//     collector.
//   - After PutBuffer the slice must not be touched: the pool hands it to
//     the next caller, and a retained alias would corrupt a message being
//     built there.
//   - Bytes that outlive the exchange that produced them (queued payloads,
//     store-and-forward records, parsed trees) must be copied out before
//     the buffer is released.
type Buffer struct {
	B []byte

	// pooled is the lifecycle checker's state bit: 1 while the buffer is
	// inside the pool, 0 while a caller owns it. It is only maintained
	// when pool checking is enabled (EnablePoolCheck or the poolcheck
	// build tag), and costs one word per buffer otherwise.
	pooled atomic.Uint32
}

// maxPooledBuffer caps the capacity the pool retains, so one oversized
// message (a WSDL document, a batched mailbox download) cannot pin memory
// for the process lifetime.
const maxPooledBuffer = 64 << 10

var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 1024)} }}

// poisonByte fills released buffers in check mode so a use-after-Put
// write is detectable when the buffer next leaves the pool.
const poisonByte = 0xDB

// poolCheckOn gates the buffer-lifecycle checker; poolLive counts
// buffers currently owned by callers (Gets minus Puts) while it is on.
var (
	poolCheckOn atomic.Bool
	poolLive    atomic.Int64
)

// EnablePoolCheck turns on the buffer-lifecycle checker for the rest of
// the process: PutBuffer poisons the released bytes and panics on a
// double Put, and GetBuffer panics when a poisoned buffer was written to
// while it sat in the pool (a use-after-Put). The test suites of every
// package that touches pooled message bytes enable it in TestMain (and
// the `poolcheck` build tag enables it for whole binaries), so lifecycle
// bugs surface as panics in tier-1 rather than as corrupted messages in
// production. Checking is append-only: there is no disable, because
// buffers poisoned under the old mode would trip verification after a
// toggle.
func EnablePoolCheck() { poolCheckOn.Store(true) }

// PoolCheckEnabled reports whether the lifecycle checker is on.
func PoolCheckEnabled() bool { return poolCheckOn.Load() }

// PoolLive returns the number of pooled buffers currently owned by
// callers (Gets minus Puts since checking was enabled). Leak tests
// snapshot it before an exchange and assert it returns to the baseline
// after: a positive drift means a buffer was neither released nor
// intentionally leaked to the GC. Always 0 while checking is disabled.
func PoolLive() int64 { return poolLive.Load() }

// GetBuffer returns a pooled buffer with length reset to zero.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	if poolCheckOn.Load() {
		if b.pooled.Swap(0) == 1 {
			verifyPoison(b)
		}
		poolLive.Add(1)
	}
	b.B = b.B[:0]
	return b
}

// PutBuffer returns buf to the pool. A nil buffer is ignored.
func PutBuffer(buf *Buffer) {
	if buf == nil {
		return
	}
	if poolCheckOn.Load() {
		if buf.pooled.Swap(1) == 1 {
			panic("xmlsoap: double PutBuffer of the same buffer")
		}
		poolLive.Add(-1)
		poison(buf)
	}
	if cap(buf.B) > maxPooledBuffer {
		return
	}
	bufPool.Put(buf)
}

// poison overwrites the buffer's full capacity with the poison pattern.
// Any caller that kept an alias past PutBuffer now reads garbage
// immediately instead of another exchange's bytes, and any write is
// caught by verifyPoison when the buffer next leaves the pool.
func poison(buf *Buffer) {
	b := buf.B[:cap(buf.B)]
	for i := range b {
		b[i] = poisonByte
	}
}

// verifyPoison panics if the poison pattern laid down by PutBuffer was
// disturbed while the buffer sat in the pool — evidence that a caller
// wrote through a retained alias after releasing.
func verifyPoison(buf *Buffer) {
	b := buf.B[:cap(buf.B)]
	for i := range b {
		if b[i] != poisonByte {
			panic(fmt.Sprintf("xmlsoap: pooled buffer written after PutBuffer (offset %d of %d)", i, len(b)))
		}
	}
}

// Render runs an append-style serializer against a pooled buffer and
// returns an exact-size copy of the bytes it produced. It is the one
// place the pooled-render / copy-out sequence lives; every compat
// Marshal wrapper goes through it.
func Render(fn func(dst []byte) ([]byte, error)) ([]byte, error) {
	buf := GetBuffer()
	defer PutBuffer(buf)
	b, err := fn(buf.B)
	if err != nil {
		return nil, err
	}
	buf.B = b
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// WriteRendered runs an append-style serializer against a pooled buffer
// and writes the result to w in a single Write call.
func WriteRendered(w io.Writer, fn func(dst []byte) ([]byte, error)) (int64, error) {
	buf := GetBuffer()
	defer PutBuffer(buf)
	b, err := fn(buf.B)
	if err != nil {
		return 0, err
	}
	buf.B = b
	n, err := w.Write(b)
	return int64(n), err
}
