package xmlsoap_test

import (
	"testing"

	"repro/internal/xmlsoap"
	"repro/internal/xmlsoap/refparser"
)

// fuzzSeeds is the hand-picked corpus of accept/reject edge cases the
// differential fuzzer starts from: every tokenizer construct, the
// namespace-resolution rules, the typed-error gap fixes, and the
// escaping/entity corners. They also run as plain tests on every `go
// test`, so the differential contract is enforced even without -fuzz.
var fuzzSeeds = []string{
	// Plain shapes.
	`<a/>`, `<a></a>`, `<a>text</a>`, `<a b="1" c='2'/>`,
	`<a><b><c/></b></a>`, `<a >spaced</a >`, `<a b = "v" />`,
	`<?xml version="1.0" encoding="UTF-8"?>` + "\n<a/>",
	// Namespaces.
	`<e:a xmlns:e="urn:x"><e:b/></e:a>`,
	`<a xmlns="urn:d"><b/></a>`,
	`<a xmlns="urn:d"><b xmlns=""><c/></b></a>`,
	`<p:a xmlns:p="u1"><p:b xmlns:p="u2"/></p:a>`,
	`<p:a xmlns:p="u1" xmlns:p="u2"/>`,
	`<a xml:lang="en"/>`, `<xml:a/>`,
	`<a xmlns:q="urn:q" q:attr="v"/>`,
	`<a xmlns:xml="http://www.w3.org/XML/1998/namespace"/>`,
	// Namespace errors (typed gap fixes).
	`<q:a/>`, `<a q:b="1"/>`, `<a xmlns:p=""/>`,
	`<a xmlns:xmlns="urn:x"/>`, `<a xmlns:xml="urn:x"/>`, `<xmlns:a/>`,
	// Structural errors.
	`<a/><b/>`, `<a>`, `<a><b></a></b>`, `</a>`, `<a/>trailing`,
	`lead<a/>`, `<a/>  `, `  <a/>`, ``, `   `, `plain text`,
	// Odd names.
	`<:a/>`, `<a:/>`, `<a:b:c/>`, `<3a/>`, `<_a/>`, `<a.b-c_d/>`,
	`<é/>`, `<eé/>`, `<a é="v"/>`,
	// Attribute syntax.
	`<a b>`, `<a b=>`, `<a b=v>`, `<a "b"="v">`, `<a b="v" b="w"/>`,
	`<a b="un`, `<a b="x<y"/>`, `<a b="x]]>y"/>`, `<a b="'"/>`, `<a b='"'/>`,
	// Entities and character references.
	`<a>&lt;&gt;&amp;&apos;&quot;</a>`, `<a b="&lt;&#9;&#10;"/>`,
	`<a>&#65;&#x41;</a>`, `<a>&#xD800;</a>`, `<a>&#x110000;</a>`,
	`<a>&#0;</a>`, `<a>&#1;</a>`, `<a>&bogus;</a>`, `<a>&lt</a>`,
	`<a>&;</a>`, `<a>&#;</a>`, `<a>&#x;</a>`, `<a>&</a>`, `<a>&#12a;</a>`,
	`<a>&#x1F600;</a>`, `<a>x&amp;y</a>`, `<a>&quot;q&quot;</a>`,
	// Character data corners.
	`<a>x]]>y</a>`, `<a>x]]&gt;y</a>`, `<a>&#93;]>x</a>`, `<a>]]</a>`,
	"<a>line1\r\nline2\rline3</a>", "<a b=\"v\r\nw\"/>", `<a>x</a>]]>`,
	"<a>\x01</a>", "<a>ok\xffbad</a>", "<a b=\"\x02\"/>",
	"<a>\uFFFD</a>", "<a>héllo — 日本語</a>",
	// CDATA.
	`<a><![CDATA[x]]></a>`, `<a><![CDATA[]]></a>`, `<a><![CDATA[<&>]]></a>`,
	`<a><![CDATA[ ]]]] ]]></a>`, `<a><![CDATA[unclosed`, `<a><![CDAT[x]]></a>`,
	"<a><![CDATA[a\r\nb]]></a>", `<a>x<![CDATA[ ]]>y</a>`,
	// Comments.
	`<a><!-- c --></a>`, `<a><!-- -- --></a>`, `<a><!--unclosed`,
	`<a><!- x --></a>`, `<a>x<!--c-->y</a>`, `<!--top--><a/><!--tail-->`,
	// Processing instructions.
	`<?pi data?><a/>`, `<a><?pi?></a>`, `<?xml version="1.1"?><a/>`,
	`<?xml encoding="latin-1"?><a/>`, `<a/><?xml encoding="x"?>`,
	`<?xml version="1.0" encoding="utf-8"?><a/>`, `<?a:b:c d?><a/>`,
	// Directives.
	`<!DOCTYPE a><a/>`, `<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>`,
	`<!DOCTYPE a [<!-- <b> --> <!c>]><a/>`, `<!D "quoted >" ><a/>`,
	`<!"><a/>`, `<!unclosed`, `<a><!inner></a>`,
	// Deep nesting and repetition.
	`<a><a><a><a><a></a></a></a></a></a>`,
	`<r xmlns:p="u"><p:a/><p:b/><p:c/></r>`,
}

// FuzzParseDifferential feeds arbitrary bytes to both the hand-rolled
// pull parser and the frozen encoding/xml-based reference parser: they
// must agree on error-vs-success, and on success the trees must be equal
// node-for-node. CI runs a short -fuzztime smoke on top of the seeds.
func FuzzParseDifferential(f *testing.F) {
	for _, tree := range goldenCorpus() {
		if wire, err := xmlsoap.MarshalDoc(tree); err == nil {
			f.Add(wire)
		}
	}
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, gotErr := xmlsoap.Parse(data)
		want, wantErr := refparser.Parse(data)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("verdict mismatch on %q:\n  pull parser: tree=%v err=%v\n  refparser:   tree=%v err=%v",
				data, got, gotErr, want, wantErr)
		}
		if gotErr == nil && !got.Equal(want) {
			t.Fatalf("tree mismatch on %q:\n  pull parser: %s\n  refparser:   %s", data, got, want)
		}
	})
}
