package xmlsoap

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrNoContent is returned when the input holds no element.
var ErrNoContent = errors.New("xmlsoap: no element content")

// Parse reads one XML document from data and returns its root element.
// Namespace prefixes are resolved by the underlying decoder; the tree
// stores expanded names only.
func Parse(data []byte) (*Element, error) {
	return ParseReader(bytes.NewReader(data))
}

// ParseReader reads one XML document from r.
func ParseReader(r io.Reader) (*Element, error) {
	dec := xml.NewDecoder(r)
	var root *Element
	var stack []*Element
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlsoap: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			e := &Element{Name: Name{Space: t.Name.Space, Local: t.Name.Local}}
			for _, a := range t.Attr {
				// Skip namespace declarations: expanded names
				// carry the information and the serializer
				// re-derives declarations.
				if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
					continue
				}
				e.Attrs = append(e.Attrs, Attr{
					Name:  Name{Space: a.Name.Space, Local: a.Name.Local},
					Value: a.Value,
				})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, errors.New("xmlsoap: multiple root elements")
				}
				root = e
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, e)
			}
			stack = append(stack, e)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmlsoap: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := string(t)
				if strings.TrimSpace(text) != "" {
					stack[len(stack)-1].Text += text
				}
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Ignored: the SOAP processing model does not depend
			// on them.
		}
	}
	if root == nil {
		return nil, ErrNoContent
	}
	if len(stack) != 0 {
		return nil, errors.New("xmlsoap: unexpected EOF inside element")
	}
	return root, nil
}
