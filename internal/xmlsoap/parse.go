package xmlsoap

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"unsafe"
)

// Parsing in this package is a hand-rolled streaming pull parser over a
// byte slice: a tokenizer (scan.go) that replicates encoding/xml's
// byte-level token grammar, a namespace-prefix scope stack, and a tree
// builder that records the document into reusable per-Decoder scratch and
// materializes the final tree with a handful of arena allocations. The
// frozen oracle for its behavior is internal/xmlsoap/refparser (the seed
// encoding/xml-based parser plus the agreed typed-error gap fixes);
// FuzzParseDifferential and the golden parse suite enforce that both
// accept the same documents and produce identical trees.
//
// # Aliasing contract
//
// Parsed trees alias the input: Name, Attr, and Text strings are
// span-slices of the data passed to Parse (escaped or concatenated runs
// are copied into one tree-owned arena; hot SOAP/WS-Addressing vocabulary
// resolves to interned canonical strings). Callers therefore must not
// modify data while the tree is live, and anything that outlives data's
// own lifetime must be copied out first (Element.Detach, strings.Clone).
// In particular, parsing a pooled Buffer's bytes requires detaching
// whatever survives PutBuffer — the same copy-out rule ROADMAP's "Wire
// codec" contract imposes on raw buffer bytes. HTTP request/response
// bodies in this stack are GC-owned heap slices, so trees parsed from
// them stay valid for as long as they are referenced; retaining a small
// header string still pins the whole body, which is why long-lived
// retention sites (the MSG-Dispatcher's pending-reply map, the peer
// client's mailbox handle) detach explicitly.

// ErrNoContent is returned when the input holds no element.
var ErrNoContent = errors.New("xmlsoap: no element content")

// Typed parse errors shared with the frozen reference parser
// (internal/xmlsoap/refparser), so both reject the same malformed inputs
// distinguishably. Match with errors.Is.
var (
	// ErrMultipleRoots: a second top-level element follows the root.
	ErrMultipleRoots = errors.New("xmlsoap: multiple root elements")
	// ErrUnclosedElement: input ended with elements still open.
	ErrUnclosedElement = errors.New("xmlsoap: unexpected EOF inside element")
	// ErrContentOutsideRoot: non-whitespace character data before or
	// after the root element.
	ErrContentOutsideRoot = errors.New("xmlsoap: character data outside root element")
	// ErrUndeclaredPrefix: a name uses a namespace prefix with no
	// in-scope declaration.
	ErrUndeclaredPrefix = errors.New("xmlsoap: undeclared namespace prefix")
	// ErrReservedPrefix: the xml/xmlns prefixes declared or used
	// contrary to the namespaces specification.
	ErrReservedPrefix = errors.New("xmlsoap: reserved namespace prefix misused")
	// ErrEmptyPrefixBinding: xmlns:p="" — prefixes cannot be undeclared
	// in Namespaces in XML 1.0.
	ErrEmptyPrefixBinding = errors.New("xmlsoap: empty URI in prefixed namespace declaration")
)

// SyntaxError reports where in the input the parser gave up. Err, when
// non-nil, carries one of the typed sentinel errors above.
type SyntaxError struct {
	Msg    string
	Offset int
	Err    error
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmlsoap: syntax error at byte %d: %s", e.Offset, e.Msg)
}

func (e *SyntaxError) Unwrap() error { return e.Err }

// xmlNamespaceURL is the namespace the reserved "xml" prefix is bound to.
const xmlNamespaceURL = "http://www.w3.org/XML/1998/namespace"

// Parse reads one XML document from data and returns its root element,
// using a pooled Decoder. Namespace prefixes are resolved during the
// scan; the tree stores expanded names only. The returned tree aliases
// data — see the package aliasing contract above.
func Parse(data []byte) (*Element, error) {
	d := getDecoder()
	root, err := d.Parse(data)
	putDecoder(d)
	return root, err
}

// ParseReader reads one XML document from r into a freshly allocated
// buffer and parses it. The returned tree aliases that buffer, which the
// tree keeps live; use Parse directly when the bytes are already in hand.
func ParseReader(r io.Reader) (*Element, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmlsoap: %w", err)
	}
	return Parse(data)
}

// sref kinds: how a recorded string is stored until materialization.
const (
	refNone  uint8 = iota // absent (empty string)
	refVocab              // interned vocabulary entry (lo = index)
	refInput              // span of the input buffer
	refEsc                // span of the decoder's escape arena
)

// sref is a deferred string: either an interned-vocabulary index or a
// span into the input / escape-arena bytes, resolved to a string header
// only at materialization so scratch reuse never invalidates a parsed
// tree.
type sref struct {
	lo, hi int32
	kind   uint8
}

func vocabRef(idx int16) sref { return sref{kind: refVocab, lo: int32(idx)} }

// pnode is one element recorded in document order. text holds the first
// character-data chunk; further chunks (text split by child elements,
// comments, or CDATA boundaries) chain through extra/extraTail into
// Decoder.chunks and are concatenated once at materialization, so
// accumulation never re-copies during the scan (a per-chunk re-copy
// would be quadratic, and a crafted document could blow the arena past
// the int32 span offsets).
type pnode struct {
	space, local     sref
	text             sref
	extra, extraTail int32
	parent           int32
	attrLo, attrHi   int32
	nchild           int32
}

// chunkLink is one extra text chunk in a node's chain.
type chunkLink struct {
	ref  sref
	next int32
}

// pattr is one (non-declaration) attribute in document order.
type pattr struct {
	space, local sref
	value        sref
}

// binding is one in-scope namespace declaration. A default declaration
// has an empty prefix span.
type binding struct {
	prefixLo, prefixHi int32
	uri                sref
}

// openElem is one unclosed element: its node index, the binding-stack
// floor to pop back to, and the raw qualified-name span its end tag must
// match byte-for-byte.
type openElem struct {
	node         int32
	bindFloor    int32
	rawLo, rawHi int32
}

// rawAttr is per-start-tag scratch: the attribute's prefix/local spans
// and decoded value before namespace processing.
type rawAttr struct {
	preLo, preHi int32
	locLo, locHi int32
	off          int32 // name offset, for error reporting
	value        sref
}

// Decoder holds the reusable scratch state of the pull parser: the
// recorded nodes and attributes, the open-element and namespace-binding
// stacks, and the escape arena. A zero Decoder is ready to use. Decoders
// are not safe for concurrent use; the package-level Parse draws them
// from an internal pool, mirroring the Encoder pool on the marshal side.
type Decoder struct {
	data []byte
	pos  int

	nodes    []pnode
	attrs    []pattr
	stack    []openElem
	bindings []binding
	rawAttrs []rawAttr
	chunks   []chunkLink
	esc      []byte
	cursors  []int32
	root     int32
}

// NewDecoder returns a Decoder with its own scratch, for callers that
// want deterministic reuse instead of the pooled package-level Parse.
func NewDecoder() *Decoder { return &Decoder{} }

var decPool = sync.Pool{New: func() any { return NewDecoder() }}

func getDecoder() *Decoder { return decPool.Get().(*Decoder) }

// Scratch retention caps, so one pathological document cannot pin large
// arenas in the pool for the process lifetime.
const (
	maxPooledNodes = 4096
	maxPooledEsc   = 64 << 10
)

func putDecoder(d *Decoder) {
	if cap(d.nodes) > maxPooledNodes || cap(d.attrs) > maxPooledNodes ||
		cap(d.stack) > maxPooledNodes || cap(d.bindings) > maxPooledNodes ||
		cap(d.rawAttrs) > maxPooledNodes || cap(d.chunks) > maxPooledNodes ||
		cap(d.cursors) > maxPooledNodes || cap(d.esc) > maxPooledEsc {
		return
	}
	decPool.Put(d)
}

// Parse scans one document from data. Steady-state reuse of one Decoder
// allocates only the arenas of the returned tree (elements, child
// pointers, attributes, and — only when escapes or split character runs
// occurred — one string arena).
func (d *Decoder) Parse(data []byte) (*Element, error) {
	// The escape arena is bounded by decoded content plus one
	// concatenation pass (< 2x input), and spans are int32; capping the
	// input at 1 GiB keeps every arena offset in range.
	if len(data) > math.MaxInt32/2 {
		return nil, errors.New("xmlsoap: input exceeds 1 GiB")
	}
	d.data = data
	d.pos = 0
	d.nodes = d.nodes[:0]
	d.attrs = d.attrs[:0]
	d.stack = d.stack[:0]
	d.bindings = d.bindings[:0]
	d.rawAttrs = d.rawAttrs[:0]
	d.chunks = d.chunks[:0]
	d.esc = d.esc[:0]
	d.root = -1
	root, err := d.run()
	d.data = nil
	return root, err
}

func (d *Decoder) run() (*Element, error) {
	for d.pos < len(d.data) {
		if d.data[d.pos] != '<' {
			ref, err := d.scanText(-1, false)
			if err != nil {
				return nil, err
			}
			if err := d.handleChunk(ref); err != nil {
				return nil, err
			}
			continue
		}
		d.pos++
		if d.pos >= len(d.data) {
			return nil, d.eofErr()
		}
		var err error
		switch d.data[d.pos] {
		case '/':
			d.pos++
			err = d.endTag()
		case '?':
			d.pos++
			err = d.procInst()
		case '!':
			d.pos++
			err = d.bang()
		default:
			err = d.startTag()
		}
		if err != nil {
			return nil, err
		}
	}
	if len(d.stack) > 0 {
		return nil, &SyntaxError{Msg: "unexpected EOF inside element", Offset: d.pos, Err: ErrUnclosedElement}
	}
	if d.root < 0 {
		return nil, ErrNoContent
	}
	return d.materialize(), nil
}

// refBytes returns the decoded bytes an sref denotes, for use during the
// scan (the spans are only stable until the underlying slices grow).
func (d *Decoder) refBytes(r sref) []byte {
	switch r.kind {
	case refInput:
		return d.data[r.lo:r.hi]
	case refEsc:
		return d.esc[r.lo:r.hi]
	case refVocab:
		s := internVocab[r.lo]
		return unsafe.Slice(unsafe.StringData(s), len(s))
	}
	return nil
}

// materialize builds the final tree: one Element arena, one child-pointer
// arena, one attribute arena, and one copy of the escape arena, with all
// strings resolved as zero-copy views of the input or those arenas.
func (d *Decoder) materialize() *Element {
	n := len(d.nodes)
	elems := make([]Element, n)
	// Join multi-chunk text runs into the escape arena first — once per
	// node, so total arena growth stays linear in the input — then copy
	// the arena out wholesale.
	for i := range d.nodes {
		nd := &d.nodes[i]
		if nd.extra < 0 {
			continue
		}
		lo := int32(len(d.esc))
		d.esc = append(d.esc, d.refBytes(nd.text)...)
		for k := nd.extra; k >= 0; k = d.chunks[k].next {
			d.esc = append(d.esc, d.refBytes(d.chunks[k].ref)...)
		}
		nd.text = sref{kind: refEsc, lo: lo, hi: int32(len(d.esc))}
		nd.extra = -1
	}
	var escOut []byte
	if len(d.esc) > 0 {
		escOut = make([]byte, len(d.esc))
		copy(escOut, d.esc)
	}
	var attrArena []Attr
	if len(d.attrs) > 0 {
		attrArena = make([]Attr, len(d.attrs))
	}
	var childArena []*Element
	if n > 1 {
		childArena = make([]*Element, n-1)
	}

	resolve := func(r sref) string {
		switch r.kind {
		case refVocab:
			return internVocab[r.lo]
		case refInput:
			return ZeroCopyString(d.data[r.lo:r.hi])
		case refEsc:
			return ZeroCopyString(escOut[r.lo:r.hi])
		}
		return ""
	}

	// Child regions: prefix sums of child counts in document order, then
	// one pass dropping each element into its parent's region. After the
	// fill, cur[i] is the end of i's region.
	cur := d.cursors[:0]
	off := int32(0)
	for i := range d.nodes {
		cur = append(cur, off)
		off += d.nodes[i].nchild
	}
	d.cursors = cur
	for i := 1; i < n; i++ {
		p := d.nodes[i].parent
		childArena[cur[p]] = &elems[i]
		cur[p]++
	}

	for i := range d.nodes {
		nd := &d.nodes[i]
		e := &elems[i]
		e.Name = Name{Space: resolve(nd.space), Local: resolve(nd.local)}
		e.Text = resolve(nd.text)
		if nd.attrHi > nd.attrLo {
			for j := nd.attrLo; j < nd.attrHi; j++ {
				a := &d.attrs[j]
				attrArena[j] = Attr{
					Name:  Name{Space: resolve(a.space), Local: resolve(a.local)},
					Value: resolve(a.value),
				}
			}
			e.Attrs = attrArena[nd.attrLo:nd.attrHi:nd.attrHi]
		}
		if nd.nchild > 0 {
			e.Children = childArena[cur[i]-nd.nchild : cur[i] : cur[i]]
		}
	}
	return &elems[0]
}

// ZeroCopyString views b as a string without copying. The caller owns
// the aliasing consequences — this is exactly the tree/input aliasing the
// package contract documents, exposed for the other span-reading fast
// paths built on it (the wsa skim hands header spans to map lookups and
// registry resolution this way). The returned string is valid only while
// b's backing bytes are: a view of a pooled buffer dies with the buffer,
// and anything retained past the exchange must be cloned first.
func ZeroCopyString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
