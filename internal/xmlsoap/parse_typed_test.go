package xmlsoap_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/xmlsoap"
	"repro/internal/xmlsoap/refparser"
)

// TestParseTypedErrors pins the typed-error gap fixes over the seed
// parser: both the pull parser and the frozen reference parser must
// reject these inputs with the same sentinel, matchable via errors.Is.
func TestParseTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  error
	}{
		{"multiple-roots", `<a/><b/>`, xmlsoap.ErrMultipleRoots},
		{"trailing-content", `<a/>junk`, xmlsoap.ErrContentOutsideRoot},
		{"leading-content", `junk<a/>`, xmlsoap.ErrContentOutsideRoot},
		{"unclosed", `<a><b></b>`, xmlsoap.ErrUnclosedElement},
		{"undeclared-element-prefix", `<q:a/>`, xmlsoap.ErrUndeclaredPrefix},
		{"undeclared-attr-prefix", `<a q:b="1"/>`, xmlsoap.ErrUndeclaredPrefix},
		{"out-of-scope-prefix", `<a xmlns:p="u"><b/></a>`, nil}, // control: fine
		{"empty-prefix-binding", `<a xmlns:p=""/>`, xmlsoap.ErrEmptyPrefixBinding},
		{"declare-xmlns", `<a xmlns:xmlns="u"/>`, xmlsoap.ErrReservedPrefix},
		{"rebind-xml", `<a xmlns:xml="urn:not-xml"/>`, xmlsoap.ErrReservedPrefix},
		{"xmlns-prefixed-name", `<xmlns:a/>`, xmlsoap.ErrReservedPrefix},
		{"empty-input", ``, xmlsoap.ErrNoContent},
		{"whitespace-only", "  \n\t ", xmlsoap.ErrNoContent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, gotErr := xmlsoap.Parse([]byte(tc.input))
			_, refErr := refparser.Parse([]byte(tc.input))
			if tc.want == nil {
				if gotErr != nil || refErr != nil {
					t.Fatalf("unexpected errors: pull=%v ref=%v", gotErr, refErr)
				}
				return
			}
			if !errors.Is(gotErr, tc.want) {
				t.Fatalf("pull parser error = %v, want errors.Is(%v)", gotErr, tc.want)
			}
			if !errors.Is(refErr, tc.want) {
				t.Fatalf("refparser error = %v, want errors.Is(%v)", refErr, tc.want)
			}
		})
	}
}

// TestParseBehaviors pins tokenizer and resolution behaviors the wire
// depends on, on both parsers.
func TestParseBehaviors(t *testing.T) {
	both := func(t *testing.T, input string) (*xmlsoap.Element, *xmlsoap.Element) {
		t.Helper()
		got, err := xmlsoap.Parse([]byte(input))
		if err != nil {
			t.Fatalf("pull parser rejected %q: %v", input, err)
		}
		ref, err := refparser.Parse([]byte(input))
		if err != nil {
			t.Fatalf("refparser rejected %q: %v", input, err)
		}
		if !got.Equal(ref) {
			t.Fatalf("divergence on %q:\npull: %s\nref:  %s", input, got, ref)
		}
		return got, ref
	}

	t.Run("entities", func(t *testing.T) {
		got, _ := both(t, `<a>&lt;&#65;&#x42;&amp;</a>`)
		if got.Text != "<AB&" {
			t.Fatalf("Text = %q", got.Text)
		}
	})
	t.Run("surrogate-charref-is-replacement", func(t *testing.T) {
		got, _ := both(t, `<a>&#xD800;</a>`)
		if got.Text != "\uFFFD" {
			t.Fatalf("Text = %q", got.Text)
		}
	})
	t.Run("newline-normalization", func(t *testing.T) {
		got, _ := both(t, "<a b=\"x\r\ny\">p\rq\r\nr</a>")
		if v, _ := got.Attr("", "b"); v != "x\ny" {
			t.Fatalf("attr = %q", v)
		}
		if got.Text != "p\nq\nr" {
			t.Fatalf("Text = %q", got.Text)
		}
	})
	t.Run("cdata-and-chunks", func(t *testing.T) {
		got, _ := both(t, `<a>one<!--c--><![CDATA[<two>]]><b/>three</a>`)
		if got.Text != "one<two>three" {
			t.Fatalf("Text = %q", got.Text)
		}
		if len(got.Children) != 1 {
			t.Fatalf("children = %d", len(got.Children))
		}
	})
	t.Run("whitespace-chunks-dropped", func(t *testing.T) {
		got, _ := both(t, "<a>\n  <b/>\n  kept\n</a>")
		if strings.TrimSpace(got.Text) != "kept" || got.Text != "\n  kept\n" {
			t.Fatalf("Text = %q", got.Text)
		}
	})
	t.Run("default-ns-and-undeclare", func(t *testing.T) {
		got, _ := both(t, `<a xmlns="urn:d"><b xmlns=""><c/></b></a>`)
		if got.Name.Space != "urn:d" {
			t.Fatalf("root space = %q", got.Name.Space)
		}
		b := got.Children[0]
		if b.Name.Space != "" || b.Children[0].Name.Space != "" {
			t.Fatalf("undeclared default not honoured: %s", got)
		}
	})
	t.Run("prefix-shadowing", func(t *testing.T) {
		got, _ := both(t, `<p:a xmlns:p="u1"><p:b xmlns:p="u2"><p:c/></p:b><p:d/></p:a>`)
		if got.Name.Space != "u1" ||
			got.Children[0].Name.Space != "u2" ||
			got.Children[0].Children[0].Name.Space != "u2" ||
			got.Children[1].Name.Space != "u1" {
			t.Fatalf("shadowing wrong: %s", got)
		}
	})
	t.Run("xml-prefix-predeclared", func(t *testing.T) {
		got, _ := both(t, `<a xml:lang="en"/>`)
		if v, ok := got.Attr("http://www.w3.org/XML/1998/namespace", "lang"); !ok || v != "en" {
			t.Fatalf("xml:lang = %q, %v", v, ok)
		}
	})
	t.Run("unprefixed-attr-has-no-namespace", func(t *testing.T) {
		got, _ := both(t, `<a xmlns="urn:d" b="v"/>`)
		if _, ok := got.Attr("", "b"); !ok {
			t.Fatalf("attr lost or namespaced: %s", got)
		}
	})
	t.Run("single-quoted-attrs", func(t *testing.T) {
		got, _ := both(t, `<a b='has "double" quotes'/>`)
		if v, _ := got.Attr("", "b"); v != `has "double" quotes` {
			t.Fatalf("attr = %q", v)
		}
	})
	t.Run("doctype-ignored", func(t *testing.T) {
		got, _ := both(t, `<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>`)
		if got.Name.Local != "a" {
			t.Fatalf("root = %s", got.Name)
		}
	})
	t.Run("mismatched-end-prefix-rejected", func(t *testing.T) {
		// Same expanded name, different raw prefix: the tokenizer
		// matches raw tags, as the seed decoder did.
		for _, input := range []string{
			`<p:a xmlns:p="u" xmlns:q="u"></q:a>`,
			`<a><b></B></a>`,
		} {
			if _, err := xmlsoap.Parse([]byte(input)); err == nil {
				t.Fatalf("pull parser accepted %q", input)
			}
			if _, err := refparser.Parse([]byte(input)); err == nil {
				t.Fatalf("refparser accepted %q", input)
			}
		}
	})
}

// TestParseManyInterleavedChunks regression-tests the text-chunk chain:
// a text run split into tens of thousands of pieces by escape-carrying
// children must accumulate in linear time and bytes (the first cut of
// the parser re-copied the accumulated text per chunk — quadratic, and
// a crafted sub-megabyte document could run the escape arena past its
// int32 span offsets and panic).
func TestParseManyInterleavedChunks(t *testing.T) {
	const reps = 20000
	var b strings.Builder
	b.WriteString("<a>")
	for i := 0; i < reps; i++ {
		b.WriteString(`x<b y="&amp;"/>`)
	}
	b.WriteString("</a>")
	input := []byte(b.String())

	got, err := xmlsoap.Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refparser.Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ref) {
		t.Fatal("chunk accumulation diverged from refparser")
	}
	if len(got.Text) != reps || got.Text != strings.Repeat("x", reps) {
		t.Fatalf("Text length = %d, want %d", len(got.Text), reps)
	}
}

// TestParseAliasingAndDetach documents and enforces the aliasing
// contract: parsed strings alias the input buffer; Detach yields a tree
// that survives the buffer being scribbled.
func TestParseAliasingAndDetach(t *testing.T) {
	wire := []byte(`<e:a xmlns:e="urn:custom:space"><e:b attr="value-here">text-here</e:b></e:a>`)
	tree, err := xmlsoap.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	detached := tree.Detach()
	if !detached.Equal(tree) {
		t.Fatal("Detach changed the tree")
	}
	// Scribble the input: the aliased tree is now garbage (by contract),
	// the detached copy must be untouched.
	for i := range wire {
		wire[i] = 'X'
	}
	b := detached.Child("urn:custom:space", "b")
	if b == nil || b.Text != "text-here" {
		t.Fatalf("detached tree corrupted by input scribble: %s", detached)
	}
	if v, _ := b.Attr("", "attr"); v != "value-here" {
		t.Fatalf("detached attr corrupted: %q", v)
	}
	// Interned vocabulary must never alias input even without Detach.
	wire2 := []byte(`<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body/></e:Envelope>`)
	tree2, err := xmlsoap.Parse(wire2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wire2 {
		wire2[i] = 'X'
	}
	if tree2.Name.Space != "http://schemas.xmlsoap.org/soap/envelope/" || tree2.Name.Local != "Envelope" {
		t.Fatalf("interned name aliased input: %v", tree2.Name)
	}
}
