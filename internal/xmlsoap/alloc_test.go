package xmlsoap_test

import (
	"testing"

	"repro/internal/soap"
	"repro/internal/xmlsoap"
)

// wireEnvelope builds a fully addressed echo envelope tree — the shape
// every hot-path message has.
func wireEnvelope() *xmlsoap.Element {
	const (
		env = "http://schemas.xmlsoap.org/soap/envelope/"
		wsa = "http://schemas.xmlsoap.org/ws/2004/08/addressing"
	)
	return xmlsoap.New(env, "Envelope").Add(
		xmlsoap.New(env, "Header").Add(
			xmlsoap.NewText(wsa, "To", "logical:echo"),
			xmlsoap.NewText(wsa, "Action", "urn:echo"),
			xmlsoap.NewText(wsa, "MessageID", "urn:uuid:00000000-0000-4000-8000-000000000000"),
			xmlsoap.New(wsa, "ReplyTo").Add(xmlsoap.NewText(wsa, "Address", "http://client:90/msg")),
		),
		xmlsoap.New(env, "Body").Add(xmlsoap.NewText("urn:wsd:echo", "echo", "payload")),
	)
}

// TestAppendToZeroAlloc is the allocation-regression gate for the
// marshal hot path: serializing into a reused destination buffer with a
// dedicated Encoder must not allocate at all. Future PRs that
// reintroduce per-message garbage fail here, not in production.
func TestAppendToZeroAlloc(t *testing.T) {
	tree := wireEnvelope()
	enc := xmlsoap.NewEncoder()
	dst := make([]byte, 0, 4096)

	// Warm-up: grow dst and intern any generated prefixes.
	b, err := enc.AppendElement(dst, tree)
	if err != nil {
		t.Fatal(err)
	}
	if cap(b) > cap(dst) {
		dst = b[:0]
	}

	allocs := testing.AllocsPerRun(200, func() {
		out, err := enc.AppendElement(dst, tree)
		if err != nil {
			t.Fatal(err)
		}
		_ = out
	})
	if allocs != 0 {
		t.Fatalf("Encoder.AppendElement allocated %.1f times per op, want 0", allocs)
	}
}

// TestPooledAppendToLowAlloc gates the pooled convenience path
// (Element.AppendTo): with a warm pool and a pre-grown dst it must stay
// allocation-free in the steady state.
func TestPooledAppendToLowAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool caching is randomized under the race detector")
	}
	tree := wireEnvelope()
	dst := make([]byte, 0, 4096)
	if _, err := tree.AppendTo(dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := tree.AppendTo(dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Element.AppendTo allocated %.1f times per op, want 0", allocs)
	}
}

// TestParseSteadyStateAllocs is the allocation-regression gate for the
// parse hot path, the receive-side twin of TestAppendToZeroAlloc: with a
// reused Decoder, parsing the standard wire envelope must allocate only
// the returned tree's two arenas (the Element block and the
// child-pointer block — no attributes and no escaped content on this
// shape). Regressions fail tier-1 here rather than only showing in
// BenchmarkParse.
func TestParseSteadyStateAllocs(t *testing.T) {
	wire, err := xmlsoap.MarshalDoc(wireEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	dec := xmlsoap.NewDecoder()
	if _, err := dec.Parse(wire); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := dec.Parse(wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("Decoder.Parse allocated %.1f times per op, want <= 2 (tree arenas only)", allocs)
	}
}

// TestPooledParseSteadyStateAllocs gates the pooled convenience path
// (package-level Parse): with a warm pool it must match the dedicated
// decoder's budget.
func TestPooledParseSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool caching is randomized under the race detector")
	}
	wire, err := xmlsoap.MarshalDoc(wireEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xmlsoap.Parse(wire); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := xmlsoap.Parse(wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("Parse allocated %.1f times per op, want <= 2 (tree arenas only)", allocs)
	}
}

// TestEnvelopeParseSteadyStateAllocs gates the whole receive path the
// dispatchers pay per message — soap.Parse on the standard envelope: the
// two tree arenas plus the Envelope struct, nothing else.
func TestEnvelopeParseSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool caching is randomized under the race detector")
	}
	wire, err := xmlsoap.MarshalDoc(wireEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := soap.Parse(wire); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := soap.Parse(wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Fatalf("soap.Parse allocated %.1f times per op, want <= 3", allocs)
	}
}

// TestEscapingZeroAlloc gates the escape helpers: clean and escapable
// ASCII content must never allocate beyond dst growth.
func TestEscapingZeroAlloc(t *testing.T) {
	dst := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(200, func() {
		b := xmlsoap.AppendEscapedText(dst, "plain content with no escapes")
		b = xmlsoap.AppendEscapedText(b[:0], "a&b<c>d")
		b = xmlsoap.AppendEscapedAttr(b[:0], `quoted "value" with	tab`)
		_ = b
	})
	if allocs != 0 {
		t.Fatalf("escape helpers allocated %.1f times per op, want 0", allocs)
	}
}
