// Package xmlsoap is a namespace-aware XML infoset: a small element tree
// with a zero-copy streaming pull parser (see Parse for the aliasing
// contract; internal/xmlsoap/refparser is its frozen oracle) and a
// deterministic, prefix-assigning serializer (internal/xmlsoap/refcodec
// is that side's frozen oracle).
//
// The paper's stack manipulates SOAP messages structurally — the
// MSG-Dispatcher "parses the WS-Addressing message of the request to modify
// client's information with MSG-Dispatcher's return address" — which needs
// an editable tree, not struct (un)marshalling. encoding/xml's struct
// mapping cannot re-serialize foreign namespaces faithfully, so this
// package implements the tree directly (the repro guidance for Go notes the
// weak SOAP ecosystem and the need to hand-roll envelopes).
package xmlsoap

import (
	"fmt"
	"strings"
)

// Name is an expanded XML name: namespace URI plus local part.
type Name struct {
	Space string
	Local string
}

// String renders the name in Clark notation, {space}local.
func (n Name) String() string {
	if n.Space == "" {
		return n.Local
	}
	return "{" + n.Space + "}" + n.Local
}

// Attr is a single attribute. Namespace declarations are not stored as
// attributes; the serializer re-derives them.
type Attr struct {
	Name  Name
	Value string
}

// Element is one node of the tree. Character data is simplified to a
// single Text field (SOAP messages do not use mixed content): Text renders
// before any child elements.
type Element struct {
	Name     Name
	Attrs    []Attr
	Text     string
	Children []*Element
}

// New returns an element named {space}local.
func New(space, local string) *Element {
	return &Element{Name: Name{Space: space, Local: local}}
}

// NewText returns an element with character content.
func NewText(space, local, text string) *Element {
	e := New(space, local)
	e.Text = text
	return e
}

// Add appends children and returns e for chaining.
func (e *Element) Add(children ...*Element) *Element {
	e.Children = append(e.Children, children...)
	return e
}

// SetText assigns character content and returns e for chaining.
func (e *Element) SetText(t string) *Element {
	e.Text = t
	return e
}

// SetAttr sets (or replaces) an attribute and returns e.
func (e *Element) SetAttr(space, local, value string) *Element {
	for i := range e.Attrs {
		if e.Attrs[i].Name.Space == space && e.Attrs[i].Name.Local == local {
			e.Attrs[i].Value = value
			return e
		}
	}
	e.Attrs = append(e.Attrs, Attr{Name: Name{Space: space, Local: local}, Value: value})
	return e
}

// Attr returns the attribute value and whether it is present.
func (e *Element) Attr(space, local string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name.Space == space && a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// Child returns the first child named {space}local, or nil.
func (e *Element) Child(space, local string) *Element {
	for _, c := range e.Children {
		if c.Name.Space == space && c.Name.Local == local {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all children named {space}local.
func (e *Element) ChildrenNamed(space, local string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if c.Name.Space == space && c.Name.Local == local {
			out = append(out, c)
		}
	}
	return out
}

// RemoveChildren deletes all children named {space}local and reports how
// many were removed.
func (e *Element) RemoveChildren(space, local string) int {
	kept := e.Children[:0]
	removed := 0
	for _, c := range e.Children {
		if c.Name.Space == space && c.Name.Local == local {
			removed++
			continue
		}
		kept = append(kept, c)
	}
	e.Children = kept
	return removed
}

// Path walks first-matching children by local name within the given
// namespace, e.g. env.Path(ns, "Header", "ReplyTo"). It returns nil if any
// step is missing.
func (e *Element) Path(space string, locals ...string) *Element {
	cur := e
	for _, l := range locals {
		cur = cur.Child(space, l)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// ChildText returns the text of the first child named {space}local, or "".
func (e *Element) ChildText(space, local string) string {
	if c := e.Child(space, local); c != nil {
		return c.Text
	}
	return ""
}

// Detach returns a deep copy of the subtree whose strings are freshly
// allocated, so the copy shares no memory with the buffer the tree was
// parsed from. Parsed trees alias their input (see Parse); call Detach on
// anything that must outlive the input bytes — in particular before a
// pooled buffer that was parsed is released.
func (e *Element) Detach() *Element {
	c := &Element{
		Name: Name{Space: strings.Clone(e.Name.Space), Local: strings.Clone(e.Name.Local)},
		Text: strings.Clone(e.Text),
	}
	if len(e.Attrs) > 0 {
		c.Attrs = make([]Attr, len(e.Attrs))
		for i, a := range e.Attrs {
			c.Attrs[i] = Attr{
				Name:  Name{Space: strings.Clone(a.Name.Space), Local: strings.Clone(a.Name.Local)},
				Value: strings.Clone(a.Value),
			}
		}
	}
	for _, ch := range e.Children {
		c.Children = append(c.Children, ch.Detach())
	}
	return c
}

// Clone returns a deep copy of the subtree.
func (e *Element) Clone() *Element {
	c := &Element{Name: e.Name, Text: e.Text}
	if len(e.Attrs) > 0 {
		c.Attrs = make([]Attr, len(e.Attrs))
		copy(c.Attrs, e.Attrs)
	}
	for _, ch := range e.Children {
		c.Children = append(c.Children, ch.Clone())
	}
	return c
}

// Equal reports deep equality of names, attributes (order-sensitive),
// text, and children.
func (e *Element) Equal(o *Element) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Name != o.Name || e.Text != o.Text ||
		len(e.Attrs) != len(o.Attrs) || len(e.Children) != len(o.Children) {
		return false
	}
	for i := range e.Attrs {
		if e.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	for i := range e.Children {
		if !e.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// String renders the serialized XML (without prolog) for debugging.
func (e *Element) String() string {
	b, err := Marshal(e)
	if err != nil {
		return fmt.Sprintf("<!-- marshal error: %v -->", err)
	}
	return string(b)
}
