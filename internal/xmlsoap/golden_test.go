package xmlsoap_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/xmlsoap"
	"repro/internal/xmlsoap/refcodec"
)

// goldenCorpus returns element trees covering every structural feature
// the serializer has: nesting, attributes, preferred and generated
// prefixes, scope shadowing, re-declaration of out-of-scope namespaces,
// empty elements, text before children, and escaping edge cases in both
// text and attribute positions.
func goldenCorpus() map[string]*xmlsoap.Element {
	const (
		env  = "http://schemas.xmlsoap.org/soap/envelope/"
		env2 = "http://www.w3.org/2003/05/soap-envelope"
		wsa  = "http://schemas.xmlsoap.org/ws/2004/08/addressing"
		foo  = "urn:example:foo"
		bar  = "urn:example:bar"
	)
	corpus := map[string]*xmlsoap.Element{
		"empty-no-ns":   xmlsoap.New("", "x"),
		"empty-with-ns": xmlsoap.New(foo, "x"),
		"text-only":     xmlsoap.NewText(foo, "x", "hello"),
		"preferred-prefixes": xmlsoap.New(env, "Envelope").Add(
			xmlsoap.New(env, "Header").Add(xmlsoap.NewText(wsa, "To", "http://a/b")),
			xmlsoap.New(env, "Body").Add(xmlsoap.NewText(foo, "op", "v")),
		),
		"generated-prefixes": xmlsoap.New(foo, "a").Add(
			xmlsoap.New(bar, "b").Add(xmlsoap.New("urn:example:baz", "c")),
		),
		"redeclare-out-of-scope": xmlsoap.New(env, "Envelope").Add(
			xmlsoap.New(env, "Header").Add(
				xmlsoap.NewText(wsa, "To", "x"),
				xmlsoap.NewText(wsa, "Action", "y"),
			),
			xmlsoap.New(env, "Body").Add(xmlsoap.New(wsa, "EndpointReference")),
		),
		"attrs-and-ns-attrs": xmlsoap.New(foo, "e").
			SetAttr("", "plain", "v1").
			SetAttr(bar, "qualified", "v2").
			SetAttr(env, "mustUnderstand", "1"),
		"text-then-children": func() *xmlsoap.Element {
			e := xmlsoap.NewText(foo, "e", "lead text")
			return e.Add(xmlsoap.New(foo, "child"))
		}(),
		"escape-text": xmlsoap.NewText("", "e", `a&b<c>d"e'f`),
		"escape-attr": xmlsoap.New("", "e").SetAttr("", "a", "x&y<z>\"q\"\nnl\ttab"),
		"control-chars": xmlsoap.NewText("", "e", "a\x01b\x02c").
			SetAttr("", "ctl", "p\x1fq"),
		"unicode":         xmlsoap.NewText("", "e", "héllo wörld — 日本語").SetAttr("", "u", "ünïcode"),
		"invalid-utf8":    xmlsoap.NewText("", "e", "ok\xffbad\xfe"),
		"soap12-envelope": xmlsoap.New(env2, "Envelope").Add(xmlsoap.New(env2, "Body").Add(xmlsoap.NewText(foo, "op", "v"))),
		"deep-nesting": func() *xmlsoap.Element {
			root := xmlsoap.New(foo, "l0")
			cur := root
			for i := 1; i < 12; i++ {
				next := xmlsoap.NewText(bar, fmt.Sprintf("l%d", i), fmt.Sprintf("t%d", i))
				cur.Add(next)
				cur = next
			}
			return root
		}(),
		"shadowing-preferred-taken": func() *xmlsoap.Element {
			// A root that claims prefix "wsa" for a foreign URI forces
			// the real WS-Addressing namespace onto a generated prefix.
			root := xmlsoap.New("urn:not-wsa", "r")
			root.Name = xmlsoap.Name{Space: "urn:not-wsa", Local: "r"}
			return root.Add(xmlsoap.New(wsa, "To"))
		}(),
	}
	// Force the "preferred prefix already used" path: PreferredPrefixes
	// has wsa->wsa; occupy "wsa" first via a URI that generates it...
	// (not reachable through generation, so instead exercise many
	// generated prefixes in one document).
	wide := xmlsoap.New("", "wide")
	for i := 0; i < 8; i++ {
		wide.Add(xmlsoap.New(fmt.Sprintf("urn:gen:%d", i), "c"))
	}
	corpus["many-generated"] = wide
	return corpus
}

// TestGoldenEquivalence proves the streaming codec emits bytes identical
// to the frozen seed codec for every corpus tree, via Marshal,
// MarshalDoc, AppendTo, and WriteTo.
func TestGoldenEquivalence(t *testing.T) {
	for name, tree := range goldenCorpus() {
		t.Run(name, func(t *testing.T) {
			want, wantErr := refcodec.Marshal(tree)
			got, gotErr := xmlsoap.Marshal(tree)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("error mismatch: seed=%v new=%v", wantErr, gotErr)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("Marshal mismatch:\nseed: %q\nnew:  %q", want, got)
			}

			wantDoc, _ := refcodec.MarshalDoc(tree)
			gotDoc, err := xmlsoap.MarshalDoc(tree)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotDoc, wantDoc) {
				t.Fatalf("MarshalDoc mismatch:\nseed: %q\nnew:  %q", wantDoc, gotDoc)
			}

			prefix := []byte("PREFIX")
			appended, err := tree.AppendTo(append([]byte(nil), prefix...))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(appended, append(prefix, want...)) {
				t.Fatalf("AppendTo mismatch:\nseed: %q\nnew:  %q", want, appended)
			}

			var sink bytes.Buffer
			if _, err := tree.WriteTo(&sink); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sink.Bytes(), want) {
				t.Fatalf("WriteTo mismatch:\nseed: %q\nnew:  %q", want, sink.Bytes())
			}
		})
	}
}

// TestGoldenRoundTrip proves corpus documents (valid-XML subset) survive
// marshal → parse → marshal unchanged under the new codec.
func TestGoldenRoundTrip(t *testing.T) {
	for name, tree := range goldenCorpus() {
		switch name {
		case "control-chars", "invalid-utf8":
			continue // not parseable XML; serializer-only cases
		}
		t.Run(name, func(t *testing.T) {
			first, err := xmlsoap.Marshal(tree)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := xmlsoap.Parse(first)
			if err != nil {
				t.Fatal(err)
			}
			second, err := xmlsoap.Marshal(parsed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("round-trip drift:\n1st: %q\n2nd: %q", first, second)
			}
		})
	}
}

// TestGoldenErrors proves the new codec rejects exactly what the seed
// codec rejected.
func TestGoldenErrors(t *testing.T) {
	bad := map[string]*xmlsoap.Element{
		"nil-child":  xmlsoap.New("", "x").Add(nil),
		"empty-name": xmlsoap.New("", "x").Add(&xmlsoap.Element{}),
	}
	for name, tree := range bad {
		t.Run(name, func(t *testing.T) {
			if _, err := refcodec.Marshal(tree); err == nil {
				t.Fatal("seed codec unexpectedly accepted input")
			}
			if _, err := xmlsoap.Marshal(tree); err == nil {
				t.Fatal("new codec unexpectedly accepted input")
			}
		})
	}
	if _, err := xmlsoap.Marshal(nil); err == nil {
		t.Fatal("new codec accepted nil root")
	}
}

// TestMarshalDocSplit checks the skeleton-compile primitive: the split
// pieces plus a spliced subtree must reassemble to exactly the bytes of
// a whole-document marshal.
func TestMarshalDocSplit(t *testing.T) {
	const (
		env = "http://schemas.xmlsoap.org/soap/envelope/"
		wsa = "http://schemas.xmlsoap.org/ws/2004/08/addressing"
	)
	body := xmlsoap.New(env, "Body").Add(xmlsoap.New("", "placeholder"))
	root := xmlsoap.New(env, "Envelope").Add(
		xmlsoap.New(env, "Header").Add(xmlsoap.NewText(wsa, "To", "http://a/b")),
		body,
	)
	before, st, after, err := xmlsoap.MarshalDocSplit(root, body)
	if err != nil {
		t.Fatal(err)
	}

	// Splice a payload that reuses the wsa namespace (must reuse the
	// assigned prefix) and a foreign one (must generate ns1, exactly as
	// in-place serialization would).
	payload := xmlsoap.New("urn:example:foo", "op").Add(xmlsoap.New(wsa, "EndpointReference"))
	spliced, err := st.AppendElements(before, payload)
	if err != nil {
		t.Fatal(err)
	}
	spliced = append(spliced, after...)

	whole := xmlsoap.New(env, "Envelope").Add(
		xmlsoap.New(env, "Header").Add(xmlsoap.NewText(wsa, "To", "http://a/b")),
		xmlsoap.New(env, "Body").Add(payload),
	)
	want, err := refcodec.MarshalDoc(whole)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(spliced, want) {
		t.Fatalf("split+splice drift:\nwant: %q\ngot:  %q", want, spliced)
	}

	// An empty target self-closes and must be refused.
	empty := xmlsoap.New(env, "Body")
	r2 := xmlsoap.New(env, "Envelope").Add(empty)
	if _, _, _, err := xmlsoap.MarshalDocSplit(r2, empty); err == nil {
		t.Fatal("MarshalDocSplit accepted a content-free target")
	}
}
