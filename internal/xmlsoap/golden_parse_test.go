package xmlsoap_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/xmlsoap"
	"repro/internal/xmlsoap/refcodec"
	"repro/internal/xmlsoap/refparser"
)

// parseCorpusSize pins the generated corpus: a drop means a generator
// regression silently shrank parser coverage.
const parseCorpusSize = 1293

// parseCorpus generates the golden parse suite: 1293 deterministic trees
// built from structural shapes crossed with text and attribute variants
// (1152), a depth × content matrix (125), the parseable goldenCorpus
// serializer cases (15), and the standard wire envelope (1). Every tree
// is parse-faithful: its text survives the parser's whitespace-chunk
// rule and carries no \r, so Parse(Marshal(x)) must reproduce it
// exactly.
func parseCorpus() map[string]*xmlsoap.Element {
	const (
		env  = "http://schemas.xmlsoap.org/soap/envelope/"
		env2 = "http://www.w3.org/2003/05/soap-envelope"
		wsa  = "http://schemas.xmlsoap.org/ws/2004/08/addressing"
		foo  = "urn:example:foo"
		bar  = "urn:example:bar"
		baz  = "urn:example:baz"
	)
	corpus := make(map[string]*xmlsoap.Element)

	texts := []struct{ name, val string }{
		{"none", ""},
		{"plain", "hello"},
		{"escapes", `a&b<c>d`},
		{"padded", "  padded  "},
		{"unicode", "héllo — 日本語"},
		{"tabs", "tab\tand\nnewline"},
		{"quotes", `"quoted" & 'single'`},
		{"cdata-end", "x]]>y"},
		{"gt", "a>b"},
		{"entity-ish", "&entity;-looking"},
		{"multiline", "line1\nline2"},
		{"emoji", "\U0001F642 emoji"},
	}
	attrs := []struct {
		name string
		add  func(e *xmlsoap.Element)
	}{
		{"none", func(e *xmlsoap.Element) {}},
		{"plain", func(e *xmlsoap.Element) { e.SetAttr("", "a", "v") }},
		{"empty", func(e *xmlsoap.Element) { e.SetAttr("", "a", "") }},
		{"escaped", func(e *xmlsoap.Element) { e.SetAttr("", "a", "x&y<z>\"q\"\nnl\ttab") }},
		{"qualified", func(e *xmlsoap.Element) { e.SetAttr(bar, "qualified", "v2") }},
		{"pair", func(e *xmlsoap.Element) { e.SetAttr("", "a", "1").SetAttr("", "b", "2") }},
		{"soap", func(e *xmlsoap.Element) { e.SetAttr(env, "mustUnderstand", "1") }},
		{"unicode", func(e *xmlsoap.Element) { e.SetAttr("", "u", "ünïcode") }},
	}
	// Each shape returns (root, carrier): the carrier node receives the
	// text/attr variant under test.
	shapes := []struct {
		name  string
		build func() (root, carrier *xmlsoap.Element)
	}{
		{"bare", func() (*xmlsoap.Element, *xmlsoap.Element) {
			e := xmlsoap.New("", "e")
			return e, e
		}},
		{"ns-root", func() (*xmlsoap.Element, *xmlsoap.Element) {
			e := xmlsoap.New(foo, "e")
			return e, e
		}},
		{"nested", func() (*xmlsoap.Element, *xmlsoap.Element) {
			c := xmlsoap.New(foo, "inner")
			return xmlsoap.New(foo, "outer").Add(c), c
		}},
		{"siblings", func() (*xmlsoap.Element, *xmlsoap.Element) {
			c := xmlsoap.New(foo, "mid")
			return xmlsoap.New(foo, "r").Add(xmlsoap.New(foo, "first"), c, xmlsoap.New(foo, "last")), c
		}},
		{"soap11", func() (*xmlsoap.Element, *xmlsoap.Element) {
			op := xmlsoap.New(foo, "op")
			root := xmlsoap.New(env, "Envelope").Add(
				xmlsoap.New(env, "Header").Add(xmlsoap.NewText(wsa, "To", "logical:echo")),
				xmlsoap.New(env, "Body").Add(op),
			)
			return root, op
		}},
		{"soap12", func() (*xmlsoap.Element, *xmlsoap.Element) {
			op := xmlsoap.New(foo, "op")
			return xmlsoap.New(env2, "Envelope").Add(xmlsoap.New(env2, "Body").Add(op)), op
		}},
		{"generated-prefixes", func() (*xmlsoap.Element, *xmlsoap.Element) {
			c := xmlsoap.New(baz, "c")
			return xmlsoap.New(foo, "a").Add(xmlsoap.New(bar, "b").Add(c)), c
		}},
		{"same-ns-chain", func() (*xmlsoap.Element, *xmlsoap.Element) {
			c := xmlsoap.New(foo, "leaf")
			return xmlsoap.New(foo, "a").Add(xmlsoap.New(foo, "b").Add(c)), c
		}},
		{"redeclare", func() (*xmlsoap.Element, *xmlsoap.Element) {
			c := xmlsoap.New(wsa, "EndpointReference")
			return xmlsoap.New(env, "Envelope").Add(
				xmlsoap.New(env, "Header").Add(xmlsoap.NewText(wsa, "To", "x")),
				xmlsoap.New(env, "Body").Add(c),
			), c
		}},
		{"text-then-children", func() (*xmlsoap.Element, *xmlsoap.Element) {
			e := xmlsoap.NewText(foo, "e", "lead text")
			e.Add(xmlsoap.New(foo, "child"))
			return e, e.Children[0]
		}},
		{"epr", func() (*xmlsoap.Element, *xmlsoap.Element) {
			props := xmlsoap.New(wsa, "ReferenceProperties").Add(xmlsoap.NewText("", "capability", "tok"))
			c := xmlsoap.NewText(wsa, "Address", "http://client:90/msg")
			return xmlsoap.New(wsa, "ReplyTo").Add(c, props), c
		}},
		{"wide", func() (*xmlsoap.Element, *xmlsoap.Element) {
			root := xmlsoap.New("", "wide")
			for i := 0; i < 5; i++ {
				root.Add(xmlsoap.New(fmt.Sprintf("urn:gen:%d", i), "c"))
			}
			c := xmlsoap.New("urn:gen:last", "c")
			root.Add(c)
			return root, c
		}},
	}

	for _, sh := range shapes {
		for _, tx := range texts {
			for _, at := range attrs {
				root, carrier := sh.build()
				if tx.val != "" {
					carrier.SetText(tx.val)
				}
				at.add(carrier)
				corpus[fmt.Sprintf("gen/%s/%s/%s", sh.name, tx.name, at.name)] = root
			}
		}
	}

	// Depth × text × attr matrix on a namespace-alternating chain.
	deepTexts := texts[:5]
	deepAttrs := attrs[:5]
	for depth := 1; depth <= 5; depth++ {
		for _, tx := range deepTexts {
			for _, at := range deepAttrs {
				spaces := []string{foo, bar, baz}
				root := xmlsoap.New(spaces[0], "d0")
				cur := root
				for i := 1; i <= depth*2; i++ {
					next := xmlsoap.New(spaces[i%3], fmt.Sprintf("d%d", i))
					cur.Add(next)
					cur = next
				}
				if tx.val != "" {
					cur.SetText(tx.val)
				}
				at.add(cur)
				corpus[fmt.Sprintf("deep/%d/%s/%s", depth, tx.name, at.name)] = root
			}
		}
	}

	// The serializer golden corpus (its parseable subset) and the
	// standard wire envelope.
	for name, tree := range goldenCorpus() {
		switch name {
		case "control-chars", "invalid-utf8":
			continue // serializer-only: not well-formed XML content
		}
		corpus["base/"+name] = tree
	}
	corpus["base/std-envelope"] = wireEnvelope()
	return corpus
}

// TestGoldenParse is the parse-side golden suite: for every corpus tree,
// the marshaled bytes must match the frozen seed serializer, both
// parsers must accept them with node-for-node identical trees, the
// parsed tree must equal the original (round-trip), and re-marshaling
// must reproduce the wire bytes exactly.
func TestGoldenParse(t *testing.T) {
	corpus := parseCorpus()
	if len(corpus) != parseCorpusSize {
		t.Fatalf("parse corpus has %d cases, want %d", len(corpus), parseCorpusSize)
	}
	for name, tree := range corpus {
		t.Run(name, func(t *testing.T) {
			wire, err := xmlsoap.Marshal(tree)
			if err != nil {
				t.Fatal(err)
			}
			seedWire, err := refcodec.Marshal(tree)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wire, seedWire) {
				t.Fatalf("marshal drift from seed codec:\nseed: %q\nnew:  %q", seedWire, wire)
			}

			got, err := xmlsoap.Parse(wire)
			if err != nil {
				t.Fatalf("pull parser rejected %q: %v", wire, err)
			}
			ref, err := refparser.Parse(wire)
			if err != nil {
				t.Fatalf("refparser rejected %q: %v", wire, err)
			}
			if !got.Equal(ref) {
				t.Fatalf("parser divergence on %q:\npull: %s\nref:  %s", wire, got, ref)
			}
			if !got.Equal(tree) {
				t.Fatalf("round-trip drift on %q:\norig:   %s\nparsed: %s", wire, tree, got)
			}

			again, err := xmlsoap.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, wire) {
				t.Fatalf("re-marshal drift:\n1st: %q\n2nd: %q", wire, again)
			}
		})
	}
}

// TestGoldenParseDoc re-runs the document-level path (prolog included)
// over a corpus sample, covering ParseReader and the XML-declaration
// fast path.
func TestGoldenParseDoc(t *testing.T) {
	for _, name := range []string{"base/std-envelope", "base/preferred-prefixes", "gen/soap11/escapes/soap"} {
		tree, ok := parseCorpus()[name]
		if !ok {
			t.Fatalf("corpus case %s missing", name)
		}
		t.Run(name, func(t *testing.T) {
			doc, err := xmlsoap.MarshalDoc(tree)
			if err != nil {
				t.Fatal(err)
			}
			got, err := xmlsoap.ParseReader(bytes.NewReader(doc))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := refparser.ParseReader(bytes.NewReader(doc))
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ref) || !got.Equal(tree) {
				t.Fatalf("document parse drift:\norig: %s\ngot:  %s\nref:  %s", tree, got, ref)
			}
		})
	}
}
