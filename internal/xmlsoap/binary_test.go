package xmlsoap

import (
	"strings"
	"testing"
	"testing/quick"
)

func soapishTree() *Element {
	ns := "http://schemas.xmlsoap.org/soap/envelope/"
	wsa := "http://schemas.xmlsoap.org/ws/2004/08/addressing"
	return New(ns, "Envelope").Add(
		New(ns, "Header").Add(
			NewText(wsa, "To", "logical:echo"),
			NewText(wsa, "MessageID", "urn:uuid:0000-1111"),
			New(wsa, "ReplyTo").Add(NewText(wsa, "Address", "http://client:90/msg")),
		),
		New(ns, "Body").Add(
			NewText("urn:wsd:echo", "echo", "payload with repeated namespaces").
				SetAttr("", "seq", "42"),
		),
	)
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := soapishTree()
	bin, err := MarshalBinary(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig) {
		t.Fatalf("binary round trip changed tree:\norig: %s\nback: %s", orig, back)
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	orig := soapishTree()
	text, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := MarshalBinary(orig)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) >= len(text) {
		t.Fatalf("binary (%dB) not smaller than text (%dB)", len(bin), len(text))
	}
}

func TestBinaryDeterministic(t *testing.T) {
	orig := soapishTree()
	a, _ := MarshalBinary(orig)
	b, _ := MarshalBinary(orig)
	if string(a) != string(b) {
		t.Fatal("binary encoding not canonical")
	}
}

func TestIsBinary(t *testing.T) {
	bin, _ := MarshalBinary(New("", "x"))
	if !IsBinary(bin) {
		t.Fatal("IsBinary(false) for binary doc")
	}
	if IsBinary([]byte("<x/>")) {
		t.Fatal("IsBinary(true) for text XML")
	}
}

func TestUnmarshalBinaryRejectsText(t *testing.T) {
	if _, err := UnmarshalBinary([]byte("<x/>")); err != ErrNotBinary {
		t.Fatalf("err = %v", err)
	}
}

func TestUnmarshalBinaryRejectsCorruption(t *testing.T) {
	bin, _ := MarshalBinary(soapishTree())
	// Truncations at every prefix must error, never panic.
	for cut := len(binaryMagic); cut < len(bin); cut += 7 {
		if _, err := UnmarshalBinary(bin[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage is refused.
	if _, err := UnmarshalBinary(append(append([]byte{}, bin...), 0x01)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Absurd string-table size is refused early.
	bad := append(append([]byte{}, binaryMagic...), 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := UnmarshalBinary(bad); err == nil {
		t.Fatal("oversized string table accepted")
	}
}

func TestMarshalBinaryNilAndEmptyName(t *testing.T) {
	if _, err := MarshalBinary(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := MarshalBinary(&Element{}); err == nil {
		t.Fatal("empty name accepted")
	}
}

// Property: arbitrary trees (any strings, any shape up to fixed depth)
// survive the binary round trip exactly — unlike text XML, the binary
// format has no character restrictions.
func TestQuickBinaryRoundTrip(t *testing.T) {
	var build func(names []string, text string, depth int) *Element
	build = func(names []string, text string, depth int) *Element {
		e := NewText("urn:q", "n", text)
		for i, n := range names {
			if n == "" {
				n = "x"
			}
			// Element names must be non-empty; everything else is free.
			child := NewText("ns:"+n, "e"+n, strings.Repeat(n, i%3))
			child.SetAttr("", "a", n)
			e.Add(child)
		}
		if depth > 0 {
			e.Add(build(names, text, depth-1))
		}
		return e
	}
	f := func(names []string, text string, depth uint8) bool {
		if len(names) > 8 {
			names = names[:8]
		}
		orig := build(names, text, int(depth%4))
		bin, err := MarshalBinary(orig)
		if err != nil {
			return false
		}
		back, err := UnmarshalBinary(bin)
		if err != nil {
			return false
		}
		return back.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
