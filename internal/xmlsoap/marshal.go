package xmlsoap

import (
	"errors"
	"io"
	"strconv"
	"sync"
	"unicode/utf8"
)

// PreferredPrefixes maps well-known namespace URIs to conventional
// prefixes, keeping wire output readable and byte-stable. Unknown
// namespaces get generated prefixes ns1, ns2, ...
var PreferredPrefixes = map[string]string{
	"http://schemas.xmlsoap.org/soap/envelope/":        "soapenv",
	"http://www.w3.org/2003/05/soap-envelope":          "soap12",
	"http://schemas.xmlsoap.org/ws/2004/08/addressing": "wsa",
	"http://schemas.xmlsoap.org/wsdl/":                 "wsdl",
	"http://www.w3.org/2001/XMLSchema":                 "xsd",
	"http://www.w3.org/2001/XMLSchema-instance":        "xsi",
}

// Prolog is the XML 1.0 document prolog emitted by MarshalDoc/AppendDocTo.
const Prolog = `<?xml version="1.0" encoding="UTF-8"?>` + "\n"

// Marshal serializes the element subtree to XML without a prolog.
// Namespace declarations are emitted at the first element that uses each
// namespace within its scope. The returned slice is freshly allocated at
// exact size; hot paths that can reuse buffers should call AppendTo.
func Marshal(e *Element) ([]byte, error) {
	return Render(e.AppendTo)
}

// MarshalDoc is Marshal with an XML 1.0 prolog, for complete documents on
// the wire.
func MarshalDoc(e *Element) ([]byte, error) {
	return Render(e.AppendDocTo)
}

// AppendTo appends the serialized subtree (no prolog) to dst and returns
// the extended slice. It draws serializer scratch state from a pool, so
// steady-state marshaling into a reused dst allocates nothing.
func (e *Element) AppendTo(dst []byte) ([]byte, error) {
	enc := getEncoder()
	dst, err := enc.AppendElement(dst, e)
	putEncoder(enc)
	return dst, err
}

// AppendDocTo is AppendTo preceded by the XML prolog.
func (e *Element) AppendDocTo(dst []byte) ([]byte, error) {
	return e.AppendTo(append(dst, Prolog...))
}

// WriteTo serializes the subtree into a pooled buffer and writes it to w
// in a single Write call. It implements io.WriterTo.
func (e *Element) WriteTo(w io.Writer) (int64, error) {
	return WriteRendered(w, e.AppendTo)
}

// Encoder holds the reusable scratch state of the serializer: the
// namespace scope stack and the prefix generator. A zero Encoder is not
// ready; use NewEncoder. Encoders are not safe for concurrent use; the
// package-level entry points draw them from an internal pool.
type Encoder struct {
	scopes []Binding
	gen    prefixGen

	// splitTarget, when set, makes the encoder record the byte offsets
	// surrounding the target's content and a State snapshot at the open
	// tag. Used only by MarshalDocSplit at skeleton-compile time.
	splitTarget *Element
	splitOpen   int
	splitClose  int
	splitState  *State
}

// NewEncoder returns an encoder with warm scratch state.
func NewEncoder() *Encoder {
	enc := &Encoder{}
	enc.reset()
	return enc
}

var encPool = sync.Pool{New: func() any { return NewEncoder() }}

func getEncoder() *Encoder { return encPool.Get().(*Encoder) }

func putEncoder(enc *Encoder) {
	enc.splitTarget = nil
	enc.splitState = nil
	encPool.Put(enc)
}

func (enc *Encoder) reset() {
	enc.scopes = enc.scopes[:0]
	g := &enc.gen
	if g.assigned == nil {
		g.assigned = make(map[string]string, 8)
		g.used = make(map[string]bool, 8)
	} else {
		clear(g.assigned)
		clear(g.used)
	}
	g.n = 0
}

// AppendElement serializes one subtree, resetting the encoder's document
// state first. Reusing one Encoder (or the pooled path behind AppendTo)
// keeps marshaling allocation-free once dst has capacity.
func (enc *Encoder) AppendElement(dst []byte, e *Element) ([]byte, error) {
	enc.reset()
	return enc.element(dst, e)
}

// errors surfaced by the serializer.
var (
	errNilElement   = errors.New("xmlsoap: nil element")
	errEmptyName    = errors.New("xmlsoap: element with empty local name")
	errSplitMissed  = errors.New("xmlsoap: split target not reached or content-free")
	errNilSplitRoot = errors.New("xmlsoap: nil split root or target")
)

func (enc *Encoder) element(dst []byte, e *Element) ([]byte, error) {
	if e == nil {
		return dst, errNilElement
	}
	if e.Name.Local == "" {
		return dst, errEmptyName
	}

	scopeStart := len(enc.scopes)
	dst = append(dst, '<')
	tagStart := len(dst)
	dst = enc.appendQName(dst, e.Name)
	tagEnd := len(dst)
	for _, a := range e.Attrs {
		dst = append(dst, ' ')
		dst = enc.appendQName(dst, a.Name)
		dst = append(dst, '=', '"')
		dst = AppendEscapedAttr(dst, a.Value)
		dst = append(dst, '"')
	}
	for _, d := range enc.scopes[scopeStart:] {
		dst = append(dst, ` xmlns:`...)
		dst = append(dst, d.Prefix...)
		dst = append(dst, '=', '"')
		dst = AppendEscapedAttr(dst, d.URI)
		dst = append(dst, '"')
	}

	if e.Text == "" && len(e.Children) == 0 {
		dst = append(dst, '/', '>')
		enc.scopes = enc.scopes[:scopeStart]
		return dst, nil
	}
	dst = append(dst, '>')
	if e == enc.splitTarget {
		enc.splitOpen = len(dst)
		enc.splitState = enc.captureState()
	}
	if e.Text != "" {
		dst = AppendEscapedText(dst, e.Text)
	}
	var err error
	for _, c := range e.Children {
		if dst, err = enc.element(dst, c); err != nil {
			return dst, err
		}
	}
	if e == enc.splitTarget {
		enc.splitClose = len(dst)
	}
	dst = append(dst, '<', '/')
	// tagStart/tagEnd index into dst written before any child could have
	// grown it; contents are preserved across reallocation.
	dst = append(dst, dst[tagStart:tagEnd]...)
	dst = append(dst, '>')
	enc.scopes = enc.scopes[:scopeStart]
	return dst, nil
}

func (enc *Encoder) appendQName(dst []byte, n Name) []byte {
	if n.Space == "" {
		return append(dst, n.Local...)
	}
	p, ok := enc.lookup(n.Space)
	if !ok {
		p = enc.gen.prefixFor(n.Space)
		enc.scopes = append(enc.scopes, Binding{URI: n.Space, Prefix: p})
	}
	dst = append(dst, p...)
	dst = append(dst, ':')
	return append(dst, n.Local...)
}

func (enc *Encoder) lookup(uri string) (string, bool) {
	for i := len(enc.scopes) - 1; i >= 0; i-- {
		if enc.scopes[i].URI == uri {
			return enc.scopes[i].Prefix, true
		}
	}
	return "", false
}

type prefixGen struct {
	assigned map[string]string
	used     map[string]bool
	n        int
	// names interns generated prefixes ("ns1", "ns2", ...). It survives
	// encoder resets so steady-state marshaling of foreign namespaces
	// does not allocate prefix strings.
	names []string
}

func (g *prefixGen) prefixFor(uri string) string {
	if p, ok := g.assigned[uri]; ok {
		return p
	}
	p := PreferredPrefixes[uri]
	if p == "" || g.used[p] {
		for {
			g.n++
			p = g.generated(g.n)
			if !g.used[p] {
				break
			}
		}
	}
	g.assigned[uri] = p
	g.used[p] = true
	return p
}

func (g *prefixGen) generated(i int) string {
	for len(g.names) < i {
		var scratch [16]byte
		b := append(scratch[:0], 'n', 's')
		b = strconv.AppendInt(b, int64(len(g.names)+1), 10)
		g.names = append(g.names, string(b))
	}
	return g.names[i-1]
}

// AppendEscapedText appends s to dst with the text-content escapes
// (&, <, >) applied, copying in spans between escapable bytes. ASCII
// content — all SOAP framing and WS-Addressing values — never allocates.
func AppendEscapedText(dst []byte, s string) []byte {
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= utf8.RuneSelf {
			// Defer to the rune-accurate path so invalid UTF-8 is
			// replaced (U+FFFD) exactly as the rune-at-a-time
			// serializer always did.
			return appendEscapedRunes(append(dst, s[start:i]...), s[i:], false)
		}
		var esc string
		switch c {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		default:
			continue
		}
		dst = append(dst, s[start:i]...)
		dst = append(dst, esc...)
		start = i + 1
	}
	return append(dst, s[start:]...)
}

// AppendEscapedAttr appends s to dst with the attribute-value escapes
// (&, <, >, ", newline, tab) applied.
func AppendEscapedAttr(dst []byte, s string) []byte {
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= utf8.RuneSelf {
			return appendEscapedRunes(append(dst, s[start:i]...), s[i:], true)
		}
		var esc string
		switch c {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '"':
			esc = "&quot;"
		case '\n':
			esc = "&#10;"
		case '\t':
			esc = "&#9;"
		default:
			continue
		}
		dst = append(dst, s[start:i]...)
		dst = append(dst, esc...)
		start = i + 1
	}
	return append(dst, s[start:]...)
}

// appendEscapedRunes is the rune-at-a-time escape path for non-ASCII
// input, matching the historical strings.Builder serializer byte for
// byte (including U+FFFD replacement of invalid sequences).
func appendEscapedRunes(dst []byte, s string, attr bool) []byte {
	for _, r := range s {
		switch {
		case r == '&':
			dst = append(dst, "&amp;"...)
		case r == '<':
			dst = append(dst, "&lt;"...)
		case r == '>':
			dst = append(dst, "&gt;"...)
		case attr && r == '"':
			dst = append(dst, "&quot;"...)
		case attr && r == '\n':
			dst = append(dst, "&#10;"...)
		case attr && r == '\t':
			dst = append(dst, "&#9;"...)
		default:
			dst = utf8.AppendRune(dst, r)
		}
	}
	return dst
}

// Binding pairs a namespace URI with the prefix it is declared under.
type Binding struct{ URI, Prefix string }

// State is a snapshot of serializer context partway through a document:
// the in-scope namespace bindings and the prefixes assigned so far. It
// lets a subtree be rendered later exactly as it would have been at that
// point — soap's envelope skeletons splice message bodies this way. A
// State is immutable after capture and safe for concurrent use.
type State struct {
	bindings []Binding
	assigned map[string]string
	used     map[string]bool
	n        int
}

func (enc *Encoder) captureState() *State {
	st := &State{
		bindings: append([]Binding(nil), enc.scopes...),
		assigned: make(map[string]string, len(enc.gen.assigned)),
		used:     make(map[string]bool, len(enc.gen.used)),
		n:        enc.gen.n,
	}
	for k, v := range enc.gen.assigned {
		st.assigned[k] = v
	}
	for k, v := range enc.gen.used {
		st.used[k] = v
	}
	return st
}

func (enc *Encoder) loadState(st *State) {
	enc.reset()
	enc.scopes = append(enc.scopes, st.bindings...)
	for k, v := range st.assigned {
		enc.gen.assigned[k] = v
	}
	for k, v := range st.used {
		enc.gen.used[k] = v
	}
	enc.gen.n = st.n
}

// AppendElements renders els at the captured document position, sharing
// one prefix generator across the elements (exactly as in-place
// serialization of siblings would). The pooled encoder works on copies,
// so the State itself is never mutated.
func (st *State) AppendElements(dst []byte, els ...*Element) ([]byte, error) {
	enc := getEncoder()
	enc.loadState(st)
	var err error
	for _, e := range els {
		if dst, err = enc.element(dst, e); err != nil {
			break
		}
	}
	putEncoder(enc)
	return dst, err
}

// MarshalDocSplit marshals root as a complete document (with prolog)
// while splitting it at target's content: it returns the document bytes
// before target's children, the serializer State at that point, and the
// bytes from target's closing tag onward. target is located by pointer
// identity and must render with content (non-empty Text or Children),
// since an empty element self-closes and has no split point. This is the
// skeleton-compile primitive: the returned pieces frame a constant
// envelope whose body is spliced per message via State.AppendElements.
func MarshalDocSplit(root, target *Element) (before []byte, st *State, after []byte, err error) {
	if root == nil || target == nil {
		return nil, nil, nil, errNilSplitRoot
	}
	enc := NewEncoder()
	enc.splitTarget = target
	dst := append([]byte(nil), Prolog...)
	dst, err = enc.element(dst, root)
	if err != nil {
		return nil, nil, nil, err
	}
	if enc.splitState == nil {
		return nil, nil, nil, errSplitMissed
	}
	before = append([]byte(nil), dst[:enc.splitOpen]...)
	after = append([]byte(nil), dst[enc.splitClose:]...)
	return before, enc.splitState, after, nil
}
