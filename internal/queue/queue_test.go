package queue

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int](0)
	for i := 0; i < 100; i++ {
		if err := q.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		v, err := q.Take()
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("Take = %d, want %d", v, i)
		}
	}
}

func TestTryTakeEmpty(t *testing.T) {
	q := New[string](0)
	if _, ok := q.TryTake(); ok {
		t.Fatal("TryTake on empty queue returned ok")
	}
}

func TestBoundedTryPut(t *testing.T) {
	q := New[int](2)
	if err := q.TryPut(1); err != nil {
		t.Fatal(err)
	}
	if err := q.TryPut(2); err != nil {
		t.Fatal(err)
	}
	if err := q.TryPut(3); err != ErrFull {
		t.Fatalf("TryPut on full queue = %v, want ErrFull", err)
	}
	q.TryTake()
	if err := q.TryPut(3); err != nil {
		t.Fatalf("TryPut after drain = %v", err)
	}
}

func TestBoundedPutBlocksUntilTake(t *testing.T) {
	q := New[int](1)
	if err := q.Put(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Put(2) }()
	select {
	case <-done:
		t.Fatal("Put on full bounded queue returned before space freed")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := q.Take(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Put never completed after Take")
	}
}

func TestTakeBlocksUntilPut(t *testing.T) {
	q := New[int](0)
	got := make(chan int, 1)
	go func() {
		v, err := q.Take()
		if err != nil {
			t.Error(err)
		}
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	if err := q.Put(7); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 7 {
			t.Fatalf("Take = %d, want 7", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Take never unblocked")
	}
}

func TestCloseDrainsThenErrClosed(t *testing.T) {
	q := New[int](0)
	q.Put(1)
	q.Put(2)
	q.Close()
	if err := q.Put(3); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if v, err := q.Take(); err != nil || v != 1 {
		t.Fatalf("Take = %d, %v", v, err)
	}
	if v, err := q.Take(); err != nil || v != 2 {
		t.Fatalf("Take = %d, %v", v, err)
	}
	if _, err := q.Take(); err != ErrClosed {
		t.Fatalf("Take on drained closed queue = %v, want ErrClosed", err)
	}
}

func TestCloseUnblocksTakers(t *testing.T) {
	q := New[int](0)
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := q.Take()
			errs <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if err != ErrClosed {
				t.Fatalf("Take = %v, want ErrClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("blocked Take not released by Close")
		}
	}
}

func TestTakeBatch(t *testing.T) {
	q := New[int](0)
	for i := 0; i < 10; i++ {
		q.Put(i)
	}
	batch, err := q.TakeBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 {
		t.Fatalf("batch len = %d, want 4", len(batch))
	}
	for i, v := range batch {
		if v != i {
			t.Fatalf("batch[%d] = %d", i, v)
		}
	}
	rest, err := q.TakeBatch(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 6 || rest[0] != 4 {
		t.Fatalf("rest = %v", rest)
	}
}

func TestTakeBatchMinimumOne(t *testing.T) {
	q := New[int](0)
	q.Put(9)
	batch, err := q.TakeBatch(0)
	if err != nil || len(batch) != 1 || batch[0] != 9 {
		t.Fatalf("TakeBatch(0) = %v, %v", batch, err)
	}
}

func TestDrain(t *testing.T) {
	q := New[int](0)
	for i := 0; i < 5; i++ {
		q.Put(i)
	}
	got := q.Drain()
	if len(got) != 5 {
		t.Fatalf("Drain returned %d items", len(got))
	}
	if q.Len() != 0 {
		t.Fatalf("Len after Drain = %d", q.Len())
	}
	if q.Drain() != nil {
		t.Fatal("Drain on empty queue should return nil")
	}
}

func TestLen(t *testing.T) {
	q := New[int](0)
	for i := 0; i < 7; i++ {
		q.Put(i)
	}
	q.Take()
	q.Take()
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
}

func TestCompactionPreservesOrder(t *testing.T) {
	q := New[int](0)
	next := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			q.Put(round*20 + i)
		}
		for i := 0; i < 15; i++ {
			v, err := q.Take()
			if err != nil {
				t.Fatal(err)
			}
			if v != next {
				t.Fatalf("Take = %d, want %d", v, next)
			}
			next++
		}
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New[int](64)
	const producers, perProducer, consumers = 8, 500, 8
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Put(1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	var consumed sync.WaitGroup
	total := make(chan int, consumers)
	for c := 0; c < consumers; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			sum := 0
			for {
				v, err := q.Take()
				if err == ErrClosed {
					total <- sum
					return
				}
				sum += v
			}
		}()
	}
	wg.Wait()
	q.Close()
	consumed.Wait()
	close(total)
	sum := 0
	for s := range total {
		sum += s
	}
	if sum != producers*perProducer {
		t.Fatalf("consumed %d items, want %d", sum, producers*perProducer)
	}
}

// Property: any interleaving of puts and takes preserves FIFO order of the
// values actually taken.
func TestQuickFIFOProperty(t *testing.T) {
	f := func(values []int, takes uint8) bool {
		q := New[int](0)
		for _, v := range values {
			q.Put(v)
		}
		n := int(takes)
		if n > len(values) {
			n = len(values)
		}
		for i := 0; i < n; i++ {
			got, err := q.Take()
			if err != nil || got != values[i] {
				return false
			}
		}
		return q.Len() == len(values)-n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTryPutBatch pins the one-lock burst admission: the longest FIFO
// prefix that fits is admitted, the caller keeps the tail, and a closed
// queue takes nothing.
func TestTryPutBatch(t *testing.T) {
	q := New[int](5)
	if n, err := q.TryPutBatch([]int{1, 2, 3}); n != 3 || err != nil {
		t.Fatalf("TryPutBatch fit = (%d, %v), want (3, nil)", n, err)
	}
	// Only 2 slots remain: prefix {4, 5} admitted, 6 stays with caller.
	if n, err := q.TryPutBatch([]int{4, 5, 6}); n != 2 || err != ErrFull {
		t.Fatalf("TryPutBatch overflow = (%d, %v), want (2, ErrFull)", n, err)
	}
	for want := 1; want <= 5; want++ {
		got, err := q.Take()
		if err != nil || got != want {
			t.Fatalf("Take = (%d, %v), want %d (FIFO prefix order)", got, err, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}

	// Unbounded queues admit everything.
	u := New[int](0)
	if n, err := u.TryPutBatch(make([]int, 1000)); n != 1000 || err != nil {
		t.Fatalf("unbounded TryPutBatch = (%d, %v)", n, err)
	}

	// Empty batch is a no-op.
	if n, err := q.TryPutBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty TryPutBatch = (%d, %v)", n, err)
	}

	q.Close()
	if n, err := q.TryPutBatch([]int{9}); n != 0 || err != ErrClosed {
		t.Fatalf("closed TryPutBatch = (%d, %v), want (0, ErrClosed)", n, err)
	}
}

// TestTryPutBatchWakesAllTakers checks the Broadcast on multi-item
// admission reaches every parked consumer.
func TestTryPutBatchWakesAllTakers(t *testing.T) {
	q := New[int](0)
	const consumers = 4
	got := make(chan int, consumers)
	for i := 0; i < consumers; i++ {
		go func() {
			v, err := q.Take()
			if err == nil {
				got <- v
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let consumers park
	if n, err := q.TryPutBatch([]int{10, 20, 30, 40}); n != 4 || err != nil {
		t.Fatalf("TryPutBatch = (%d, %v)", n, err)
	}
	sum := 0
	for i := 0; i < consumers; i++ {
		select {
		case v := <-got:
			sum += v
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of %d takers woke", i, consumers)
		}
	}
	if sum != 100 {
		t.Fatalf("takers got sum %d, want 100", sum)
	}
}
