// Package queue provides the FIFO message queues used by the
// MSG-Dispatcher's WsThreads and by WS-MsgBox mailboxes.
//
// The paper's MSG-Dispatcher gives each destination-service thread
// (WsThread) "a First-In-First-Out queue of messages to send"; WS-MsgBox
// stores arriving messages per mailbox until the owner polls. Both need a
// blocking, optionally bounded FIFO with a close/drain story, which the Go
// standard library's channels only partially cover (channels cannot be
// inspected, drained after close by multiple readers with size reporting,
// or grown without bound). FIFO is that structure.
package queue

import (
	"errors"
	"sync"
)

// ErrClosed is returned by operations on a closed queue once it is empty
// (for receives) or immediately (for sends).
var ErrClosed = errors.New("queue: closed")

// ErrFull is returned by TryPut on a bounded queue at capacity.
var ErrFull = errors.New("queue: full")

// FIFO is a goroutine-safe first-in-first-out queue of T. A capacity of 0
// means unbounded. The zero value is not usable; construct with New.
type FIFO[T any] struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	items    []T
	head     int // index of the next item to pop; items[:head] are dead
	cap      int // 0 = unbounded
	closed   bool
}

// New returns an empty FIFO. capacity <= 0 means unbounded.
func New[T any](capacity int) *FIFO[T] {
	if capacity < 0 {
		capacity = 0
	}
	q := &FIFO[T]{cap: capacity}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// Put appends item, blocking while a bounded queue is full. It returns
// ErrClosed if the queue is closed before the item is accepted.
func (q *FIFO[T]) Put(item T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return ErrClosed
		}
		if q.cap == 0 || q.lenLocked() < q.cap {
			break
		}
		q.notFull.Wait()
	}
	q.items = append(q.items, item)
	q.notEmpty.Signal()
	return nil
}

// TryPut appends item without blocking. It returns ErrFull if the queue is
// at capacity or ErrClosed if it is closed.
func (q *FIFO[T]) TryPut(item T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.cap != 0 && q.lenLocked() >= q.cap {
		return ErrFull
	}
	q.items = append(q.items, item)
	q.notEmpty.Signal()
	return nil
}

// TryPutBatch appends a burst of items in one lock transaction, without
// blocking: the admission-side counterpart of TakeBatch. It admits the
// longest FIFO prefix that fits — n reports how many were taken — and
// returns ErrFull when items remain (the caller owns the tail, exactly
// as with a refused TryPut) or ErrClosed when the queue is closed (n is
// then 0 and nothing was taken).
func (q *FIFO[T]) TryPutBatch(items []T) (n int, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	n = len(items)
	if q.cap != 0 {
		if room := q.cap - q.lenLocked(); n > room {
			n = room
		}
	}
	if n > 0 {
		q.items = append(q.items, items[:n]...)
		if n == 1 {
			q.notEmpty.Signal()
		} else {
			q.notEmpty.Broadcast()
		}
	}
	if n < len(items) {
		return n, ErrFull
	}
	return n, nil
}

// Take removes and returns the oldest item, blocking while the queue is
// empty. After Close, Take keeps returning queued items until the queue
// drains, then returns ErrClosed.
func (q *FIFO[T]) Take() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.lenLocked() == 0 {
		if q.closed {
			var zero T
			return zero, ErrClosed
		}
		q.notEmpty.Wait()
	}
	return q.popLocked(), nil
}

// TryTake removes and returns the oldest item without blocking. ok is
// false if the queue is empty.
func (q *FIFO[T]) TryTake() (item T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.lenLocked() == 0 {
		var zero T
		return zero, false
	}
	return q.popLocked(), true
}

// TakeBatch removes up to max items in FIFO order, blocking until at least
// one item is available (or the queue is closed and drained). The
// MSG-Dispatcher uses it to deliver "multiple messages ... to a destination
// over one connection".
func (q *FIFO[T]) TakeBatch(max int) ([]T, error) {
	if max < 1 {
		max = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.lenLocked() == 0 {
		if q.closed {
			return nil, ErrClosed
		}
		q.notEmpty.Wait()
	}
	n := q.lenLocked()
	if n > max {
		n = max
	}
	batch := make([]T, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, q.popLocked())
	}
	return batch, nil
}

// Drain removes and returns everything currently queued without blocking.
func (q *FIFO[T]) Drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.lenLocked()
	if n == 0 {
		return nil
	}
	out := make([]T, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, q.popLocked())
	}
	return out
}

// Len returns the number of queued items.
func (q *FIFO[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lenLocked()
}

// Closed reports whether Close has been called.
func (q *FIFO[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Close marks the queue closed. Blocked Puts fail with ErrClosed; blocked
// Takes drain remaining items and then fail. Close is idempotent.
func (q *FIFO[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

func (q *FIFO[T]) lenLocked() int { return len(q.items) - q.head }

func (q *FIFO[T]) popLocked() T {
	item := q.items[q.head]
	var zero T
	q.items[q.head] = zero // release for GC
	q.head++
	// Compact once the dead prefix dominates, amortized O(1).
	if q.head > 32 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	if q.cap != 0 {
		q.notFull.Signal()
	}
	return item
}
