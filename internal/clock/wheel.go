package clock

import (
	"math"
	"slices"
)

// The wheel size. 512 slots at the Real wheel's 1ms tick give a 512ms
// horizon before entries spill to the overflow heap; the dispatcher's
// hot timers (hold-open, anonymous waits, delivery deadlines) are all
// seconds-scale, so they start in overflow and migrate into the wheel as
// the clock approaches them — exactly the hierarchical behavior a
// hashed wheel with an overflow structure is chosen for.
const (
	wheelBits  = 9
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
)

// wtimer is the intrusive scheduling entry embedded in every Timer: the
// wheel links entries through next/prev, so scheduling, cancelling, and
// re-arming a timer allocate nothing. An entry is in exactly one of
// three states: linked in a wheel slot (slot >= 0), parked in the
// overflow heap (heapIdx >= 0), or unscheduled (both -1).
type wtimer struct {
	t        *Timer // containing timer, set once at construction
	deadline int64  // absolute ns on the owning clock's timescale
	seq      uint64 // registration order, the fire-order tie-break
	next     *wtimer
	prev     *wtimer
	slot     int32
	heapIdx  int32
}

// pending reports whether the entry is currently scheduled.
func (e *wtimer) pending() bool { return e.slot >= 0 || e.heapIdx >= 0 }

// wheel is a hashed timing wheel with an overflow min-heap. It is not
// goroutine-safe; the owning clock serializes access under its lock.
//
// Invariant: every entry linked in a slot has tick := deadline/tickNs
// (clamped to curTick for overdue arms) in [curTick, curTick+wheelSlots),
// so each occupied slot holds entries of exactly one tick and slots
// scanned upward from curTick are met in increasing-tick order. Entries
// beyond the horizon wait in the overflow heap, keyed by exact
// (deadline, seq), and migrate into the wheel as advanceTo moves curTick.
type wheel struct {
	tickNs   int64
	curTick  int64
	count    int
	seq      uint64
	slots    [wheelSlots]*wtimer
	occ      [wheelSlots / 64]uint64
	overflow []*wtimer
}

func (w *wheel) init(tickNs int64) {
	w.tickNs = tickNs
}

// schedule arms an unscheduled entry for deadlineNs. The caller must
// have cancelled the entry first if it might be pending.
func (w *wheel) schedule(e *wtimer, deadlineNs int64) {
	w.seq++
	e.seq = w.seq
	e.deadline = deadlineNs
	tick := deadlineNs / w.tickNs
	if tick < w.curTick {
		// Already due (or overdue): park it in the current slot so the
		// next advance collects it; the due filter keys on deadline,
		// not the slot's nominal tick.
		tick = w.curTick
	}
	if tick < w.curTick+wheelSlots {
		w.link(e, tick)
	} else {
		w.heapPush(e)
	}
	w.count++
}

// cancel unschedules the entry, reporting whether it was pending.
func (w *wheel) cancel(e *wtimer) bool {
	switch {
	case e.slot >= 0:
		w.unlink(e)
	case e.heapIdx >= 0:
		w.heapRemove(e)
	default:
		return false
	}
	w.count--
	return true
}

// earliest returns the smallest pending deadline. Entries in the first
// occupied slot upward of curTick carry the wheel's minimum tick, so one
// bitmap scan plus one slot walk finds the wheel minimum exactly; the
// overflow top competes with it.
func (w *wheel) earliest() (int64, bool) {
	if w.count == 0 {
		return 0, false
	}
	best := int64(math.MaxInt64)
	for i := 0; i < wheelSlots; {
		s := (w.curTick + int64(i)) & wheelMask
		word := w.occ[s>>6]
		if word == 0 {
			i += 64 - int(s&63)
			continue
		}
		if word&(1<<uint(s&63)) == 0 {
			i++
			continue
		}
		for e := w.slots[s]; e != nil; e = e.next {
			if e.deadline < best {
				best = e.deadline
			}
		}
		break
	}
	if len(w.overflow) > 0 && w.overflow[0].deadline < best {
		best = w.overflow[0].deadline
	}
	return best, true
}

// advanceTo moves the wheel to nowNs and appends every entry with
// deadline <= nowNs to due, unscheduled, in arbitrary order — callers
// sort the batch by (deadline, seq) before firing. Large jumps (the
// Virtual clock skips minutes at a time) cost one pass over the slot
// array per wheelSlots ticks crossed plus the migrations they trigger.
func (w *wheel) advanceTo(nowNs int64, due []*wtimer) []*wtimer {
	target := nowNs / w.tickNs
	if target < w.curTick {
		// curTick can run ahead of now (schedule clamps overdue entries
		// into the current slot); scan that slot's deadline filter
		// without moving the wheel backward.
		target = w.curTick
	}
	for {
		if w.count == 0 {
			w.curTick = target
			return due
		}
		span := target - w.curTick
		n := span + 1
		if n > wheelSlots {
			n = wheelSlots
		}
		for i := int64(0); i < n; {
			s := (w.curTick + i) & wheelMask
			word := w.occ[s>>6]
			if word == 0 {
				i += 64 - (s & 63)
				continue
			}
			if word&(1<<uint(s&63)) == 0 {
				i++
				continue
			}
			if i < span {
				// The slot's whole tick has passed: everything is due.
				for e := w.slots[s]; e != nil; {
					next := e.next
					e.slot, e.next, e.prev = -1, nil, nil
					w.count--
					due = append(due, e)
					e = next
				}
				w.slots[s] = nil
				w.occ[s>>6] &^= 1 << uint(s&63)
			} else {
				// The slot holds tick == target: only entries at or
				// before nowNs within the tick are due.
				for e := w.slots[s]; e != nil; {
					next := e.next
					if e.deadline <= nowNs {
						w.unlink(e)
						w.count--
						due = append(due, e)
					}
					e = next
				}
			}
			i++
		}
		if span < wheelSlots {
			w.curTick = target
			w.migrate(nowNs, &due)
			return due
		}
		// A full horizon was cleared; roll the wheel forward and pull
		// the next window out of overflow before scanning again.
		w.curTick += wheelSlots
		w.migrate(nowNs, &due)
	}
}

// migrate moves overflow entries now inside the horizon into the wheel;
// entries already due go straight to the due batch.
func (w *wheel) migrate(nowNs int64, due *[]*wtimer) {
	horizon := w.curTick + wheelSlots
	for len(w.overflow) > 0 {
		top := w.overflow[0]
		tick := top.deadline / w.tickNs
		if tick >= horizon {
			return
		}
		w.heapRemove(top)
		if top.deadline <= nowNs {
			w.count--
			*due = append(*due, top)
			continue
		}
		if tick < w.curTick {
			tick = w.curTick
		}
		w.link(top, tick)
	}
}

func (w *wheel) link(e *wtimer, tick int64) {
	s := tick & wheelMask
	e.slot = int32(s)
	e.prev = nil
	e.next = w.slots[s]
	if e.next != nil {
		e.next.prev = e
	}
	w.slots[s] = e
	w.occ[s>>6] |= 1 << uint(s&63)
}

func (w *wheel) unlink(e *wtimer) {
	s := e.slot
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		w.slots[s] = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if w.slots[s] == nil {
		w.occ[s>>6] &^= 1 << uint(s&63)
	}
	e.slot, e.next, e.prev = -1, nil, nil
}

// The overflow heap: a binary min-heap by (deadline, seq) with index
// maintenance for O(log n) removal by entry.

func wtimerLess(a, b *wtimer) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.seq < b.seq
}

func (w *wheel) heapPush(e *wtimer) {
	e.heapIdx = int32(len(w.overflow))
	w.overflow = append(w.overflow, e)
	w.heapUp(int(e.heapIdx))
}

func (w *wheel) heapRemove(e *wtimer) {
	i := int(e.heapIdx)
	last := len(w.overflow) - 1
	w.overflow[i] = w.overflow[last]
	w.overflow[i].heapIdx = int32(i)
	w.overflow[last] = nil
	w.overflow = w.overflow[:last]
	if i < last {
		w.heapDown(i)
		w.heapUp(i)
	}
	e.heapIdx = -1
}

func (w *wheel) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !wtimerLess(w.overflow[i], w.overflow[parent]) {
			return
		}
		w.heapSwap(i, parent)
		i = parent
	}
}

func (w *wheel) heapDown(i int) {
	n := len(w.overflow)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && wtimerLess(w.overflow[l], w.overflow[small]) {
			small = l
		}
		if r < n && wtimerLess(w.overflow[r], w.overflow[small]) {
			small = r
		}
		if small == i {
			return
		}
		w.heapSwap(i, small)
		i = small
	}
}

func (w *wheel) heapSwap(i, j int) {
	w.overflow[i], w.overflow[j] = w.overflow[j], w.overflow[i]
	w.overflow[i].heapIdx = int32(i)
	w.overflow[j].heapIdx = int32(j)
}

// sortDue orders a collected batch by (deadline, seq) — the exact order
// the heap-based implementation fired in, and the order both wheels'
// fire paths guarantee.
func sortDue(due []*wtimer) {
	slices.SortFunc(due, func(a, b *wtimer) int {
		if a.deadline != b.deadline {
			if a.deadline < b.deadline {
				return -1
			}
			return 1
		}
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
}
