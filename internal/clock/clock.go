// Package clock abstracts time so that every time-dependent component in the
// repository (token buckets, connection timeouts, hold-open timers, the load
// generator's "one minute" runs) can execute either on the real wall clock or
// on a fast, deterministic virtual clock used by the experiment harness.
//
// The paper's evaluation ramps hundreds to thousands of clients for one
// minute per configuration over trans-Atlantic links; replaying that in real
// time would take hours. Running the identical code on a Virtual clock
// compresses a simulated minute into milliseconds while preserving every
// ordering that matters (serialization delays, propagation delays, TCP-style
// timeouts).
//
// # The timer wheel
//
// Both clocks schedule timers on a hashed timing wheel (Varghese & Lauck):
// 512 slots of intrusive doubly-linked lists plus an overflow min-heap for
// deadlines beyond the wheel's horizon. Timer structs embed their wheel
// entry, so NewTimer costs two allocations (the Timer and its channel),
// AfterFunc one, and Stop/Reset zero — re-arming a hold-open or deadline
// timer on the hot path is two list links under a lock.
//
// Granularity and ordering guarantees:
//
//   - Real runs one lazily-started wheel goroutine for the whole process
//     with a 1ms tick: a timer never fires before its deadline, and fires
//     at most one tick (plus goroutine scheduling latency) late. Timers
//     due within the same tick fire as one batch.
//   - Virtual is advanced by the virtual scheduler to exact deadlines:
//     tick granularity never delays or reorders a fire.
//   - Within a fire batch, timers fire in (deadline, registration order) —
//     exactly the order the pre-wheel heap implementation used, which the
//     clock/wheeltest differential suite and FuzzVirtualWheel pin against
//     the frozen internal/clock/refclock oracle.
//   - Timer.Reset keeps time.Timer's stale-fire caveat: a fire in flight
//     when Reset runs can still land on C. Callers that re-arm without
//     draining must filter by deadline (see the WsThread hold-open loop).
package clock

import "time"

// Clock is the minimal time interface used throughout the repository.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for at least d.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once at
	// least d has elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a cancellable timer that fires after d.
	NewTimer(d time.Duration) *Timer
	// AfterFunc runs f in its own goroutine after at least d has
	// elapsed, unless the returned timer is stopped first.
	AfterFunc(d time.Duration, f func()) *Timer
	// Since is shorthand for Now().Sub(t).
	Since(t time.Time) time.Duration
}

// timerSource is the scheduling backend a Timer was created on: the
// process-wide Real wheel or a Virtual clock.
type timerSource interface {
	stopTimer(t *Timer) bool
	resetTimer(t *Timer, d time.Duration) bool
}

// Timer is a cancellable single-shot timer bound to a Clock. When the timer
// fires, the clock's current time is sent on C (unless the timer was created
// by AfterFunc, in which case the callback runs instead).
//
// The wheel entry is embedded: a Timer is one object linked directly into
// its clock's wheel, so Stop and Reset allocate nothing — experiment
// workloads create and re-arm timers by the hundred thousand.
type Timer struct {
	// C receives the fire time for channel-based timers. Nil for
	// AfterFunc timers.
	C <-chan time.Time

	ch  chan time.Time // send side of C; nil for AfterFunc timers
	f   func()         // AfterFunc callback; nil for channel timers
	src timerSource
	w   wtimer
}

// newTimer builds the shared Timer shell; the caller schedules it.
func newTimer(src timerSource, f func()) *Timer {
	t := &Timer{f: f, src: src}
	if f == nil {
		t.ch = make(chan time.Time, 1)
		t.C = t.ch
	}
	t.w.t = t
	t.w.slot, t.w.heapIdx = -1, -1
	return t
}

// fire delivers one expiry: the callback on its own goroutine for
// AfterFunc timers, a non-blocking send otherwise (like time.Timer's
// sendTime — with Reset reuse a stale fire may still sit in C, and the
// wheel must never block on it).
func (t *Timer) fire(at time.Time) {
	if t.f != nil {
		go t.f()
		return
	}
	select {
	case t.ch <- at:
	default:
	}
}

// Stop cancels the timer. It reports whether the call prevented the timer
// from firing. Stop is idempotent.
func (t *Timer) Stop() bool {
	if t == nil || t.src == nil {
		return false
	}
	return t.src.stopTimer(t)
}

// Reset re-arms the timer to fire after d, reporting whether it was
// still pending. It carries time.Timer.Reset's caveat: callers that may
// have let the timer fire must Stop and drain C before Reset, or a
// stale fire can satisfy the next wait immediately. Loops that would
// otherwise allocate a fresh timer per iteration (hold-open windows,
// per-message waits) Reset one timer instead.
func (t *Timer) Reset(d time.Duration) bool {
	if t == nil || t.src == nil {
		return false
	}
	return t.src.resetTimer(t, d)
}

// Real is the wall Clock. Now/Sleep/After/Since delegate to package time;
// NewTimer and AfterFunc schedule on the shared process-wide timer wheel
// (one goroutine, 1ms ticks, started on first use). The zero value is
// ready to use; the package-level Wall variable is a shared instance.
type Real struct{}

// Wall is the shared wall-clock instance used by daemons (cmd/wsd and
// friends). Experiments use a Virtual clock instead.
var Wall Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) *Timer {
	t := newTimer(wallWheel, nil)
	wallWheel.schedule(t, d)
	return t
}

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) *Timer {
	t := newTimer(wallWheel, f)
	wallWheel.schedule(t, d)
	return t
}
