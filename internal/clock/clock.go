// Package clock abstracts time so that every time-dependent component in the
// repository (token buckets, connection timeouts, hold-open timers, the load
// generator's "one minute" runs) can execute either on the real wall clock or
// on a fast, deterministic virtual clock used by the experiment harness.
//
// The paper's evaluation ramps hundreds to thousands of clients for one
// minute per configuration over trans-Atlantic links; replaying that in real
// time would take hours. Running the identical code on a Virtual clock
// compresses a simulated minute into milliseconds while preserving every
// ordering that matters (serialization delays, propagation delays, TCP-style
// timeouts).
package clock

import "time"

// Clock is the minimal time interface used throughout the repository.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for at least d.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once at
	// least d has elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a cancellable timer that fires after d.
	NewTimer(d time.Duration) *Timer
	// AfterFunc runs f in its own goroutine after at least d has
	// elapsed, unless the returned timer is stopped first.
	AfterFunc(d time.Duration, f func()) *Timer
	// Since is shorthand for Now().Sub(t).
	Since(t time.Time) time.Duration
}

// Timer is a cancellable single-shot timer bound to a Clock. When the timer
// fires, the clock's current time is sent on C (unless the timer was created
// by AfterFunc, in which case the callback runs instead).
type Timer struct {
	// C receives the fire time for channel-based timers. Nil for
	// AfterFunc timers.
	C <-chan time.Time

	// Exactly one of rt/vt is set; dispatching on a field instead of
	// closures keeps timer construction lean — experiment workloads
	// create timers by the hundred thousand.
	rt *time.Timer
	vt *vtimer
}

// Stop cancels the timer. It reports whether the call prevented the timer
// from firing. Stop is idempotent.
func (t *Timer) Stop() bool {
	switch {
	case t == nil:
		return false
	case t.rt != nil:
		return t.rt.Stop()
	case t.vt != nil:
		return t.vt.stop()
	}
	return false
}

// Reset re-arms the timer to fire after d, reporting whether it was
// still pending. It carries time.Timer.Reset's caveat: callers that may
// have let the timer fire must Stop and drain C before Reset, or a
// stale fire can satisfy the next wait immediately. Loops that would
// otherwise allocate a fresh timer per iteration (hold-open windows,
// per-message waits) Reset one timer instead.
func (t *Timer) Reset(d time.Duration) bool {
	switch {
	case t == nil:
		return false
	case t.rt != nil:
		return t.rt.Reset(d)
	case t.vt != nil:
		return t.vt.reset(d)
	}
	return false
}

// Real is the wall Clock backed by package time. The zero value is ready to
// use; the package-level Wall variable is a shared instance.
type Real struct{}

// Wall is the shared wall-clock instance used by daemons (cmd/wsd and
// friends). Experiments use a Virtual clock instead.
var Wall Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, rt: t}
}

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) *Timer {
	return &Timer{rt: time.AfterFunc(d, f)}
}
