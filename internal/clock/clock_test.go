package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	before := time.Now()
	got := Wall.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestRealTimerStop(t *testing.T) {
	tm := Wall.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("Stop on pending real timer returned false")
	}
}

func TestNilTimerStop(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("Stop on nil timer returned true")
	}
}

func TestVirtualAdvanceFiresInOrder(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	defer v.Stop()

	start := v.Now()
	durations := []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	chans := make([]<-chan time.Time, len(durations))
	for i, d := range durations {
		chans[i] = v.After(d)
	}
	v.Advance(time.Second)
	for i, ch := range chans {
		select {
		case at := <-ch:
			if got := at.Sub(start); got != durations[i] {
				t.Fatalf("timer %d fired at +%v, want +%v", i, got, durations[i])
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timer %d never fired", i)
		}
	}
}

func TestVirtualSleepAutoAdvances(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	defer v.Stop()

	start := v.Now()
	done := make(chan struct{})
	go func() {
		v.Sleep(5 * time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("virtual 5s sleep did not complete within real 5s budget")
	}
	if got := v.Since(start); got < 5*time.Second {
		t.Fatalf("clock advanced %v, want >= 5s", got)
	}
}

func TestVirtualManySleepersConverge(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	defer v.Stop()

	const n = 200
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		d := time.Duration(i%17+1) * time.Millisecond
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				v.Sleep(d)
			}
			done.Add(1)
		}()
	}
	waitGroupWithin(t, &wg, 10*time.Second)
	if done.Load() != n {
		t.Fatalf("done = %d, want %d", done.Load(), n)
	}
}

func TestVirtualTimerStopPreventsFire(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	defer v.Stop()

	tm := v.NewTimer(time.Minute)
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending virtual timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	v.Advance(2 * time.Minute)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestVirtualAfterFunc(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	defer v.Stop()

	var fired atomic.Bool
	v.AfterFunc(time.Second, func() { fired.Store(true) })
	waitFor(t, func() bool { return fired.Load() })
}

func TestVirtualAfterFuncStopped(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	defer v.Stop()

	var fired atomic.Bool
	tm := v.AfterFunc(time.Hour, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop returned false")
	}
	v.Advance(2 * time.Hour)
	time.Sleep(10 * time.Millisecond)
	if fired.Load() {
		t.Fatal("stopped AfterFunc ran")
	}
}

func TestVirtualZeroSleepReturns(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	defer v.Stop()
	v.Sleep(0)
	v.Sleep(-time.Second)
}

func TestVirtualNegativeAfterFiresImmediately(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	defer v.Stop()
	select {
	case <-v.After(-1):
	case <-time.After(5 * time.Second):
		t.Fatal("negative After never fired")
	}
}

func TestVirtualSequentialSleepAccumulates(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	defer v.Stop()
	start := v.Now()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			v.Sleep(100 * time.Millisecond)
		}
		close(done)
	}()
	<-done
	if got := v.Since(start); got < time.Second {
		t.Fatalf("10 x 100ms sleeps advanced only %v", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

func waitGroupWithin(t *testing.T, wg *sync.WaitGroup, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("goroutines did not finish within %v", d)
	}
}
