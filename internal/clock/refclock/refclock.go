// Package refclock is the frozen pre-wheel implementation of package
// clock, kept verbatim as the differential-testing oracle for the hashed
// timer wheel (PR 7). Real wraps package time directly (time.NewTimer /
// time.AfterFunc per timer), and Virtual schedules waiters on a binary
// min-heap ordered by (deadline, seq).
//
// Nothing in the production tree may import this package; it exists so
// clock/wheeltest and FuzzVirtualWheel can replay identical op schedules
// against both implementations and assert identical fire/cancel verdicts
// and ordering. Do not "fix" or optimize this code — its value is that it
// is the exact semantics the wheel must reproduce.
package refclock

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// Clock mirrors clock.Clock.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
	NewTimer(d time.Duration) *Timer
	AfterFunc(d time.Duration, f func()) *Timer
	Since(t time.Time) time.Duration
}

// Timer is a cancellable single-shot timer bound to a Clock, with
// time.Timer's Stop/Reset semantics (including the stale-fire caveat).
type Timer struct {
	C <-chan time.Time

	rt *time.Timer
	vt *vtimer
}

// Stop cancels the timer, reporting whether the call prevented the fire.
func (t *Timer) Stop() bool {
	switch {
	case t == nil:
		return false
	case t.rt != nil:
		return t.rt.Stop()
	case t.vt != nil:
		return t.vt.stop()
	}
	return false
}

// Reset re-arms the timer to fire after d, reporting whether it was
// still pending.
func (t *Timer) Reset(d time.Duration) bool {
	switch {
	case t == nil:
		return false
	case t.rt != nil:
		return t.rt.Reset(d)
	case t.vt != nil:
		return t.vt.reset(d)
	}
	return false
}

// Real is the wall Clock backed directly by package time.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, rt: t}
}

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) *Timer {
	return &Timer{rt: time.AfterFunc(d, f)}
}

// Virtual is the frozen heap-based discrete-event clock.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     uint64
	gen     uint64
	stopped bool
	wake    chan struct{}

	grace    time.Duration
	coalesce time.Duration
}

// NewVirtual returns a running Virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	v := &Virtual{
		now:      start,
		wake:     make(chan struct{}, 1),
		grace:    50 * time.Microsecond,
		coalesce: time.Millisecond,
	}
	go v.pump()
	return v
}

// NewVirtualAt is shorthand for a Virtual starting at epoch + offset.
func NewVirtualAt(offset time.Duration) *Virtual {
	return NewVirtual(time.Unix(0, 0).Add(offset))
}

// SetGrace adjusts the quiescence window.
func (v *Virtual) SetGrace(d time.Duration) {
	v.mu.Lock()
	v.grace = d
	v.mu.Unlock()
}

// SetCoalesce adjusts the virtual coalescing window.
func (v *Virtual) SetCoalesce(d time.Duration) {
	v.mu.Lock()
	v.coalesce = d
	v.mu.Unlock()
}

// Stop shuts down the pump goroutine.
func (v *Virtual) Stop() {
	v.mu.Lock()
	v.stopped = true
	v.mu.Unlock()
	v.kick()
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep implements Clock.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	<-v.After(d)
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	return v.NewTimer(d).C
}

// NewTimer implements Clock.
func (v *Virtual) NewTimer(d time.Duration) *Timer {
	t := &vtimer{v: v, ch: make(chan time.Time, 1)}
	t.fireFn = t.fire
	t.w = v.register(d, t.fireFn)
	return &Timer{C: t.ch, vt: t}
}

// AfterFunc implements Clock.
func (v *Virtual) AfterFunc(d time.Duration, f func()) *Timer {
	t := &vtimer{v: v, f: f}
	t.fireFn = t.fire
	t.w = v.register(d, t.fireFn)
	return &Timer{vt: t}
}

type vtimer struct {
	v  *Virtual
	ch chan time.Time
	f  func()

	fireFn func(time.Time)

	mu sync.Mutex
	w  *waiter
}

func (t *vtimer) fire(now time.Time) {
	if t.f != nil {
		go t.f()
		return
	}
	select {
	case t.ch <- now:
	default:
	}
}

func (t *vtimer) stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.v.cancel(t.w)
}

func (t *vtimer) reset(d time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	active := t.v.cancel(t.w)
	t.w = t.v.register(d, t.fireFn)
	return active
}

// Advance manually moves the clock forward by d, firing due timers in
// (deadline, seq) order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	fired := v.advanceLocked(target)
	v.now = target
	v.mu.Unlock()
	runFired(fired)
}

// Pending reports how many timers are currently registered.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.waiters.Len()
}

type waiter struct {
	deadline time.Time
	seq      uint64
	fire     func(time.Time)
	index    int
}

func (v *Virtual) register(d time.Duration, fire func(time.Time)) *waiter {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	v.seq++
	v.gen++
	w := &waiter{deadline: v.now.Add(d), seq: v.seq, fire: fire}
	heap.Push(&v.waiters, w)
	v.mu.Unlock()
	v.kick()
	return w
}

func (v *Virtual) cancel(w *waiter) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if w.index < 0 {
		return false
	}
	heap.Remove(&v.waiters, w.index)
	return true
}

func (v *Virtual) kick() {
	select {
	case v.wake <- struct{}{}:
	default:
	}
}

func (v *Virtual) advanceLocked(target time.Time) []firedWaiter {
	var fired []firedWaiter
	for v.waiters.Len() > 0 && !v.waiters[0].deadline.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		fired = append(fired, firedWaiter{w.fire, w.deadline})
	}
	return fired
}

type firedWaiter struct {
	fire func(time.Time)
	at   time.Time
}

func runFired(fs []firedWaiter) {
	for _, f := range fs {
		f.fire(f.at)
	}
}

func (v *Virtual) pump() {
	for {
		v.mu.Lock()
		if v.stopped {
			v.mu.Unlock()
			return
		}
		if v.waiters.Len() == 0 {
			v.mu.Unlock()
			<-v.wake
			continue
		}
		genBefore := v.gen
		grace := v.grace
		v.mu.Unlock()

		quiesce(grace)

		v.mu.Lock()
		if v.stopped {
			v.mu.Unlock()
			return
		}
		if v.gen != genBefore || v.waiters.Len() == 0 {
			v.mu.Unlock()
			continue
		}
		target := v.waiters[0].deadline.Add(v.coalesce)
		fired := v.advanceLocked(target)
		if n := len(fired); n > 0 && fired[n-1].at.After(v.now) {
			v.now = fired[n-1].at
		}
		v.mu.Unlock()
		runFired(fired)
	}
}

func quiesce(grace time.Duration) {
	start := time.Now()
	for {
		runtime.Gosched()
		if time.Since(start) >= grace {
			return
		}
	}
}

// waiterHeap is a min-heap ordered by (deadline, seq).
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }

func (h waiterHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}

func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}

func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}
