package clock

import (
	"testing"
	"time"
)

// BenchmarkTimerWheel reports the wheel's hot operations. Reset is the
// path the dispatchers lean on (hold-open re-arms, pooled anonymous-wait
// timers, netsim read waits): it must be allocation-free on both clocks.
func BenchmarkTimerWheel(b *testing.B) {
	b.Run("real/reset", func(b *testing.B) {
		tm := Wall.NewTimer(time.Hour)
		defer tm.Stop()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tm.Reset(time.Hour)
		}
	})
	b.Run("real/new+stop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Wall.NewTimer(time.Hour).Stop()
		}
	})
	b.Run("virtual/reset", func(b *testing.B) {
		v := NewVirtual(time.Unix(0, 0))
		defer v.Stop()
		tm := v.NewTimer(time.Hour)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tm.Reset(time.Hour)
		}
	})
	b.Run("virtual/fire", func(b *testing.B) {
		// One registration + one pump-free advance + one drain per
		// iteration: the full life of a netsim read-wait timer.
		v := NewVirtual(time.Unix(0, 0))
		v.Stop()
		tm := v.NewTimer(time.Millisecond)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Advance(time.Millisecond)
			<-tm.C
			tm.Reset(time.Millisecond)
		}
	})
}
