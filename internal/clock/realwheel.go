package clock

import (
	"math"
	"sync"
	"time"
)

// realTick is the Real wheel's granularity: wake-ups round up to 1ms
// boundaries, so timers due within the same millisecond fire in one
// batch. A fire is never early and at most one tick (plus scheduling
// latency) late — the same order of slack the OS timer behind
// time.Timer carries.
const realTick = int64(time.Millisecond)

// realWheel is the process-wide wheel behind Real timers: one lazily
// started goroutine owns one runtime timer and drives every Real
// NewTimer/AfterFunc in the process, so timer churn costs list links
// under a mutex instead of runtime-timer heap traffic, and 10k pending
// timers still mean exactly one extra goroutine.
type realWheel struct {
	mu         sync.Mutex
	wh         wheel
	started    bool
	base       time.Time // monotonic anchor; nowNs is time.Since(base)
	sleepUntil int64     // wake target the loop is sleeping toward
	wake       chan struct{}

	scratch []*wtimer // due-batch reuse, owned by the loop
}

var wallWheel = &realWheel{wake: make(chan struct{}, 1)}

func (rw *realWheel) nowNs() int64 { return int64(time.Since(rw.base)) }

// schedule (re-)arms t to fire d from now, reporting whether it was
// still pending — Timer.Reset's verdict. It starts the wheel goroutine
// on first use and kicks it only when the new deadline undercuts the
// loop's current wake target.
func (rw *realWheel) schedule(t *Timer, d time.Duration) (wasActive bool) {
	if d < 0 {
		d = 0
	}
	rw.mu.Lock()
	if rw.base.IsZero() {
		rw.base = time.Now()
		rw.wh.init(realTick)
		rw.sleepUntil = math.MaxInt64
	}
	wasActive = rw.wh.cancel(&t.w)
	deadline := rw.nowNs() + int64(d)
	if deadline < 0 { // duration overflow; park at the far horizon
		deadline = math.MaxInt64
	}
	rw.wh.schedule(&t.w, deadline)
	start := !rw.started
	if start {
		rw.started = true
	}
	kick := deadline < rw.sleepUntil
	rw.mu.Unlock()
	if start {
		go rw.loop()
	} else if kick {
		select {
		case rw.wake <- struct{}{}:
		default:
		}
	}
	return wasActive
}

func (rw *realWheel) stopTimer(t *Timer) bool {
	rw.mu.Lock()
	active := rw.wh.cancel(&t.w)
	rw.mu.Unlock()
	return active
}

func (rw *realWheel) resetTimer(t *Timer, d time.Duration) bool {
	return rw.schedule(t, d)
}

// loop is the wheel goroutine: sleep on one runtime timer until the
// earliest deadline's tick boundary (or a kick announces an earlier
// one), collect the due batch under the lock, fire it outside. It runs
// for the life of the process once the first Real timer is created.
func (rw *realWheel) loop() {
	sleeper := time.NewTimer(time.Hour)
	if !sleeper.Stop() {
		<-sleeper.C
	}
	for {
		rw.mu.Lock()
		e, ok := rw.wh.earliest()
		if !ok {
			rw.sleepUntil = math.MaxInt64
			rw.mu.Unlock()
			<-rw.wake
			continue
		}
		now := rw.nowNs()
		if e > now {
			// Round the wake-up to the next tick boundary: everything
			// due within the tick fires in one batch.
			wakeAt := (e + realTick - 1) / realTick * realTick
			rw.sleepUntil = wakeAt
			rw.mu.Unlock()
			sleeper.Reset(time.Duration(wakeAt - now))
			select {
			case <-sleeper.C:
			case <-rw.wake:
				if !sleeper.Stop() {
					<-sleeper.C
				}
			}
			continue
		}
		due := rw.scratch[:0]
		due = rw.wh.advanceTo(now, due)
		rw.scratch = due[:0]
		rw.sleepUntil = -1 // collecting; new arrivals need no kick
		rw.mu.Unlock()
		sortDue(due)
		at := rw.base.Add(time.Duration(now))
		for _, entry := range due {
			entry.t.fire(at)
		}
	}
}
