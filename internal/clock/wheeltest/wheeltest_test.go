// Package wheeltest is the differential fence for the hashed timer
// wheel: randomized fixed-seed schedules of NewTimer/Stop/Reset/AfterFunc
// run against the frozen pre-wheel implementation (internal/clock/refclock
// — time.Timer-backed Real, heap-based Virtual), asserting identical
// fire/cancel verdicts and fire ordering on both clocks.
//
// Virtual comparisons are fully deterministic: both clocks are created
// and immediately Stop()ped, which kills the auto-advancing pump while
// leaving registration and manual Advance intact, so every fire happens
// synchronously inside Advance and channel states can be compared
// op-by-op. Real comparisons issue all Stop/Reset ops up front — long
// before the earliest deadline — so verdicts cannot race in-flight
// fires, then compare which timers fired and in what order with
// deadlines spaced far enough apart that the wheel's 1ms tick cannot
// legally reorder them.
package wheeltest

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/clock/refclock"
)

// timerPair is one timer created on both implementations.
type timerPair struct {
	wheel   *clock.Timer
	oracle  *refclock.Timer
	stopped bool // armed state per our own bookkeeping (for reporting only)
}

// virtualPair is a wheel Virtual and an oracle Virtual in lockstep, both
// with their pumps stopped.
type virtualPair struct {
	wheel  *clock.Virtual
	oracle *refclock.Virtual
	start  time.Time
}

func newVirtualPair() *virtualPair {
	start := time.Unix(0, 0)
	p := &virtualPair{
		wheel:  clock.NewVirtual(start),
		oracle: refclock.NewVirtual(start),
		start:  start,
	}
	// Kill both pumps: time moves only through Advance, making every
	// fire synchronous and the whole schedule deterministic.
	p.wheel.Stop()
	p.oracle.Stop()
	return p
}

// drain compares the channel state of one timer pair after an Advance:
// both must agree on whether a fire is pending and on the fire time.
func (p *virtualPair) drain(t *testing.T, i int, tp *timerPair) {
	t.Helper()
	for {
		var wAt, oAt time.Time
		wOK, oOK := false, false
		select {
		case wAt = <-tp.wheel.C:
			wOK = true
		default:
		}
		select {
		case oAt = <-tp.oracle.C:
			oOK = true
		default:
		}
		if wOK != oOK {
			t.Fatalf("timer %d: wheel fired=%v oracle fired=%v", i, wOK, oOK)
		}
		if !wOK {
			return
		}
		if !wAt.Equal(oAt) {
			t.Fatalf("timer %d: wheel fired at %v, oracle at %v",
				i, wAt.Sub(p.start), oAt.Sub(p.start))
		}
	}
}

// TestVirtualWheelDifferential replays randomized fixed-seed schedules
// of create/stop/reset/advance on the wheel-backed Virtual and the
// frozen heap-backed oracle, asserting identical Stop/Reset verdicts and
// identical fire times after every advance.
func TestVirtualWheelDifferential(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := newVirtualPair()
		var timers []*timerPair

		for op := 0; op < 400; op++ {
			switch r := rng.Intn(10); {
			case r < 4: // create
				d := time.Duration(rng.Intn(2000)-20) * time.Millisecond
				timers = append(timers, &timerPair{
					wheel:  p.wheel.NewTimer(d),
					oracle: p.oracle.NewTimer(d),
				})
			case r < 6 && len(timers) > 0: // stop
				tp := timers[rng.Intn(len(timers))]
				wv := tp.wheel.Stop()
				ov := tp.oracle.Stop()
				if wv != ov {
					t.Fatalf("seed %d op %d: Stop verdict wheel=%v oracle=%v (stopped=%v)",
						seed, op, wv, ov, tp.stopped)
				}
				tp.stopped = true
			case r < 8 && len(timers) > 0: // reset
				tp := timers[rng.Intn(len(timers))]
				d := time.Duration(rng.Intn(1000)) * time.Millisecond
				// Deterministic-reset discipline: drain any delivered
				// fire on both sides first, so Reset's stale-fire caveat
				// (pinned separately in TestResetStaleFire*) cannot
				// desynchronize the channel comparison.
				p.drain(t, -1, tp)
				wv := tp.wheel.Reset(d)
				ov := tp.oracle.Reset(d)
				if wv != ov {
					t.Fatalf("seed %d op %d: Reset verdict wheel=%v oracle=%v",
						seed, op, wv, ov)
				}
				tp.stopped = false
			default: // advance
				d := time.Duration(rng.Intn(700)) * time.Millisecond
				p.wheel.Advance(d)
				p.oracle.Advance(d)
				if wp, op_ := p.wheel.Pending(), p.oracle.Pending(); wp != op_ {
					t.Fatalf("seed %d op %d: Pending wheel=%d oracle=%d", seed, op, wp, op_)
				}
				for i, tp := range timers {
					p.drain(t, i, tp)
				}
			}
		}
		// Flush everything still pending and compare the tail.
		p.wheel.Advance(time.Hour)
		p.oracle.Advance(time.Hour)
		for i, tp := range timers {
			p.drain(t, i, tp)
		}
	}
}

// TestVirtualWheelAfterFuncOrdering drives AfterFunc timers on both
// Virtuals and asserts the callbacks observe the same total order. The
// wheel fires a batch in (deadline, registration) order on the advancing
// goroutine, but each callback runs on its own goroutine (time.AfterFunc
// semantics), so ordering is reconstructed from the virtual fire times
// recorded by the callbacks, which are exact on both implementations.
func TestVirtualWheelAfterFuncOrdering(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed * 77))
		p := newVirtualPair()

		type firing struct {
			idx int
			at  time.Duration
		}
		var mu sync.Mutex
		var wheelLog, oracleLog []firing
		var wg sync.WaitGroup

		n := 60
		for i := 0; i < n; i++ {
			d := time.Duration(rng.Intn(500)) * time.Millisecond
			idx := i
			wg.Add(2)
			p.wheel.AfterFunc(d, func() {
				mu.Lock()
				wheelLog = append(wheelLog, firing{idx, d})
				mu.Unlock()
				wg.Done()
			})
			p.oracle.AfterFunc(d, func() {
				mu.Lock()
				oracleLog = append(oracleLog, firing{idx, d})
				mu.Unlock()
				wg.Done()
			})
		}
		p.wheel.Advance(time.Hour)
		p.oracle.Advance(time.Hour)
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("seed %d: AfterFunc callbacks did not all run", seed)
		}

		// Each callback goroutine recorded its own fire; group by fire
		// time and compare the sets — both sides must have fired exactly
		// the same timers at exactly the same virtual times.
		index := func(log []firing) map[int]time.Duration {
			m := make(map[int]time.Duration, len(log))
			for _, f := range log {
				m[f.idx] = f.at
			}
			return m
		}
		wm, om := index(wheelLog), index(oracleLog)
		if len(wm) != n || len(om) != n {
			t.Fatalf("seed %d: wheel fired %d, oracle fired %d, want %d", seed, len(wm), len(om), n)
		}
		for idx, at := range wm {
			if om[idx] != at {
				t.Fatalf("seed %d: timer %d wheel fire at %v, oracle at %v", seed, idx, at, om[idx])
			}
		}
	}
}

// TestRealWheelDifferential runs a fixed-seed schedule against the
// frozen time.Timer-backed Real oracle. All Stop/Reset decisions are
// made up front — milliseconds before the earliest deadline — so their
// verdicts are deterministic; then both implementations run out the
// schedule in real time and must agree on exactly which timers fired.
func TestRealWheelDifferential(t *testing.T) {
	wheelClk := clock.Real{}
	oracleClk := refclock.Real{}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed * 131))
		const n = 40
		timers := make([]*timerPair, n)
		expectFire := make([]bool, n)
		for i := range timers {
			// Deadlines 60–200ms out: every verdict op below completes
			// within a few ms, far from the earliest deadline.
			d := time.Duration(60+rng.Intn(140)) * time.Millisecond
			timers[i] = &timerPair{
				wheel:  wheelClk.NewTimer(d),
				oracle: oracleClk.NewTimer(d),
			}
			expectFire[i] = true
		}
		for op := 0; op < 30; op++ {
			i := rng.Intn(n)
			tp := timers[i]
			switch rng.Intn(2) {
			case 0:
				wv, ov := tp.wheel.Stop(), tp.oracle.Stop()
				if wv != ov {
					t.Fatalf("seed %d: Stop verdict wheel=%v oracle=%v", seed, wv, ov)
				}
				expectFire[i] = false
			case 1:
				d := time.Duration(60+rng.Intn(140)) * time.Millisecond
				wv, ov := tp.wheel.Reset(d), tp.oracle.Reset(d)
				if wv != ov {
					t.Fatalf("seed %d: Reset verdict wheel=%v oracle=%v", seed, wv, ov)
				}
				expectFire[i] = true
			}
		}
		time.Sleep(250 * time.Millisecond) // past every deadline + wheel tick slack
		for i, tp := range timers {
			var wOK, oOK bool
			select {
			case <-tp.wheel.C:
				wOK = true
			default:
			}
			select {
			case <-tp.oracle.C:
				oOK = true
			default:
			}
			if wOK != oOK || wOK != expectFire[i] {
				t.Fatalf("seed %d timer %d: wheel fired=%v oracle fired=%v want=%v",
					seed, i, wOK, oOK, expectFire[i])
			}
		}
	}
}

// TestRealWheelOrdering pins cross-timer fire order on the Real wheel:
// AfterFunc callbacks with deadlines spaced 25ms apart — far beyond the
// 1ms tick plus scheduling slack — must run in deadline order, matching
// the time.Timer oracle's order.
func TestRealWheelOrdering(t *testing.T) {
	run := func(newAfterFunc func(d time.Duration, f func())) []int {
		var mu sync.Mutex
		var log []int
		var wg sync.WaitGroup
		order := []int{3, 0, 4, 1, 2} // registration order ≠ deadline order
		for _, idx := range order {
			idx := idx
			wg.Add(1)
			d := time.Duration(30+idx*25) * time.Millisecond
			newAfterFunc(d, func() {
				mu.Lock()
				log = append(log, idx)
				mu.Unlock()
				wg.Done()
			})
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			return nil
		}
		return log
	}
	wheelLog := run(func(d time.Duration, f func()) { clock.Real{}.AfterFunc(d, f) })
	oracleLog := run(func(d time.Duration, f func()) { refclock.Real{}.AfterFunc(d, f) })
	if wheelLog == nil || oracleLog == nil {
		t.Fatal("callbacks did not all run")
	}
	for i := range wheelLog {
		if wheelLog[i] != i || oracleLog[i] != i {
			t.Fatalf("fire order: wheel=%v oracle=%v want ascending", wheelLog, oracleLog)
		}
	}
}
