package wheeltest

import (
	"testing"
	"time"
)

// FuzzVirtualWheel feeds arbitrary (op, delay) byte sequences to the
// wheel-backed Virtual and the frozen heap-based refclock oracle in
// lockstep (pumps stopped, so both are fully deterministic) and asserts
// identical Stop/Reset verdicts, pending counts, and fire times.
//
// The encoding keeps every input byte meaningful: each op consumes one
// opcode byte and up to two delay bytes, so the fuzzer can reach deep
// schedules — overdue arms (delay 0), horizon-crossing deadlines,
// reset-after-fire, advance-past-everything — without a grammar.
func FuzzVirtualWheel(f *testing.F) {
	f.Add([]byte{0, 10, 0, 200, 3, 50, 1, 0, 2, 30, 3, 255, 255})
	f.Add([]byte{0, 0, 3, 0, 0, 1, 3, 1, 2, 0, 3, 2})
	// Horizon crossers: delays beyond wheelSlots ticks force the
	// overflow heap and migration paths.
	f.Add([]byte{0, 255, 7, 0, 2, 1, 3, 255, 120, 3, 255, 200, 1, 0})
	f.Add([]byte{0, 5, 0, 5, 0, 5, 3, 4, 2, 5, 3, 4, 1, 1, 3, 255, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := newVirtualPair()
		var timers []*timerPair

		next := func() (byte, bool) {
			if len(data) == 0 {
				return 0, false
			}
			b := data[0]
			data = data[1:]
			return b, true
		}
		// delay derives a duration from up to two bytes, spanning from
		// sub-tick to far past the wheel horizon (512 ticks).
		delay := func() time.Duration {
			lo, _ := next()
			hi, _ := next()
			return time.Duration(int64(hi)<<8|int64(lo)) * 250 * time.Microsecond
		}

		for {
			op, ok := next()
			if !ok {
				break
			}
			switch op % 4 {
			case 0: // create
				if len(timers) >= 64 {
					continue
				}
				d := delay()
				timers = append(timers, &timerPair{
					wheel:  p.wheel.NewTimer(d),
					oracle: p.oracle.NewTimer(d),
				})
			case 1: // stop
				if len(timers) == 0 {
					continue
				}
				i, _ := next()
				tp := timers[int(i)%len(timers)]
				if wv, ov := tp.wheel.Stop(), tp.oracle.Stop(); wv != ov {
					t.Fatalf("Stop verdict wheel=%v oracle=%v", wv, ov)
				}
			case 2: // reset (drained on both sides, see wheeltest_test.go)
				if len(timers) == 0 {
					continue
				}
				i, _ := next()
				tp := timers[int(i)%len(timers)]
				p.drain(t, int(i), tp)
				d := delay()
				if wv, ov := tp.wheel.Reset(d), tp.oracle.Reset(d); wv != ov {
					t.Fatalf("Reset verdict wheel=%v oracle=%v", wv, ov)
				}
			case 3: // advance
				d := delay()
				p.wheel.Advance(d)
				p.oracle.Advance(d)
				if wp, op_ := p.wheel.Pending(), p.oracle.Pending(); wp != op_ {
					t.Fatalf("Pending wheel=%d oracle=%d", wp, op_)
				}
				for i, tp := range timers {
					p.drain(t, i, tp)
				}
			}
		}
		p.wheel.Advance(24 * time.Hour)
		p.oracle.Advance(24 * time.Hour)
		for i, tp := range timers {
			p.drain(t, i, tp)
		}
		if wp, op_ := p.wheel.Pending(), p.oracle.Pending(); wp != op_ {
			t.Fatalf("final Pending wheel=%d oracle=%d", wp, op_)
		}
	})
}
