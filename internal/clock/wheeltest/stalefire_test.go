package wheeltest

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/clock"
)

// TestResetStaleFireVirtual pins Timer.Reset's stale-fire caveat on the
// wheel-backed Virtual: a timer that fired but was never drained keeps
// its stale value in C across Reset, so a naive wait would complete
// immediately — and the deadline-filter discipline (re-arm the remainder
// whenever the received fire time precedes the current deadline, the
// workaround wsthread.go and awaitAnonymous use) is what makes the next
// wait last its full window.
func TestResetStaleFireVirtual(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	v.Stop() // manual advancing only
	start := v.Now()

	tm := v.NewTimer(10 * time.Millisecond)
	v.Advance(20 * time.Millisecond) // fire it; deliberately do not drain

	// Re-arm for a fresh 100ms window. The stale fire still sits in C.
	deadline := v.Now().Add(100 * time.Millisecond)
	tm.Reset(100 * time.Millisecond)
	select {
	case at := <-tm.C:
		if !at.Before(deadline) {
			t.Fatalf("stale fire at %v not before deadline %v", at.Sub(start), deadline.Sub(start))
		}
		// The deadline filter: a fire before the deadline is stale;
		// re-arm the remainder instead of treating the wait as done.
		tm.Reset(deadline.Sub(v.Now()))
	default:
		t.Fatal("fired-but-undrained timer lost its stale fire across Reset; " +
			"the wheel must keep time.Timer's caveat (callers rely on the documented discipline)")
	}

	// The re-armed wait must now run its full course: nothing before the
	// deadline, a correct fire at it.
	v.Advance(50 * time.Millisecond)
	select {
	case at := <-tm.C:
		t.Fatalf("wait satisfied at %v, before the %v deadline", at.Sub(start), deadline.Sub(start))
	default:
	}
	v.Advance(60 * time.Millisecond)
	select {
	case at := <-tm.C:
		if at.Before(deadline) {
			t.Fatalf("fire at %v precedes deadline %v", at.Sub(start), deadline.Sub(start))
		}
	default:
		t.Fatal("re-armed timer never fired")
	}
}

// TestResetStaleFireReal is the same caveat pinned on the Real wheel:
// the stale fire survives Reset, and the deadline-filtered wait still
// lasts its full window.
func TestResetStaleFireReal(t *testing.T) {
	clk := clock.Real{}
	tm := clk.NewTimer(5 * time.Millisecond)
	time.Sleep(30 * time.Millisecond) // fire; do not drain

	wait := 150 * time.Millisecond
	deadline := clk.Now().Add(wait)
	tm.Reset(wait)

	completed := time.Time{}
	for {
		at := <-tm.C
		if at.Before(deadline) {
			// Stale fire (from the undrained first life); filter and
			// re-arm the remainder — the wsthread discipline. A genuine
			// fire is stamped with the collection time, which is never
			// before the deadline.
			tm.Reset(deadline.Sub(clk.Now()))
			continue
		}
		completed = at
		break
	}
	if completed.Before(deadline) {
		t.Fatalf("deadline-filtered wait completed at %v, before deadline %v", completed, deadline)
	}
}

// TestRealWheelGoroutineChurn asserts the Real wheel's constant-goroutine
// property: 10k pending timers, created, reset, and stopped in bulk, add
// exactly one wheel goroutine to the process — where the pre-wheel
// implementation put every timer on the runtime's timer heap, and an
// AfterFunc-per-retry pattern (courier, sweeps) could make goroutine
// count track timer count.
func TestRealWheelGoroutineChurn(t *testing.T) {
	clk := clock.Real{}
	// Prime the wheel so its singleton goroutine is already running.
	clk.NewTimer(time.Hour).Stop()
	runtime.GC()
	base := runtime.NumGoroutine()

	const n = 10000
	timers := make([]*clock.Timer, n)
	for i := range timers {
		timers[i] = clk.NewTimer(time.Hour + time.Duration(i)*time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base+1 {
		t.Fatalf("10k pending timers grew goroutines %d -> %d", base, g)
	}
	// Churn: re-arm every timer a few times, then stop them all.
	for round := 0; round < 3; round++ {
		for i, tm := range timers {
			tm.Reset(time.Hour + time.Duration(i+round)*time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > base+1 {
			t.Fatalf("reset churn round %d grew goroutines %d -> %d", round, base, g)
		}
	}
	stopped := 0
	for _, tm := range timers {
		if tm.Stop() {
			stopped++
		}
	}
	if stopped != n {
		t.Fatalf("stopped %d of %d hour-scale timers", stopped, n)
	}
	if g := runtime.NumGoroutine(); g > base+1 {
		t.Fatalf("after churn goroutines %d -> %d", base, g)
	}
}
