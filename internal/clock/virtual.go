package clock

import (
	"runtime"
	"sync"
	"time"
)

// virtualTick is the Virtual wheel's slot width. It is purely a bucketing
// choice: Virtual fires at exact deadlines (the scheduler advances to
// them directly), so the tick affects slot occupancy, never timing.
const virtualTick = int64(time.Millisecond)

// Virtual is a discrete-event clock. Time only moves when every goroutine
// that interacts with the clock is blocked waiting on it: a background pump
// observes a short quiescence window (no new timer registrations) and then
// jumps the clock to the earliest pending deadline, firing all timers due at
// that instant.
//
// This "auto-advancing fake clock" lets unmodified production code — the
// dispatcher, the mailbox, the simulated network — run a one-minute workload
// in a few milliseconds of wall time. The quiescence heuristic trades strict
// determinism for not having to instrument every goroutine; in practice the
// workloads in this repository are sleep-dominated (bandwidth serialization,
// propagation delay, timeouts), so the heuristic is stable. Tests assert
// shapes with tolerances rather than exact event interleavings.
//
// Timers live on the same hashed wheel structure as Real's (see the
// package doc); the pump advances the wheel to exact deadlines and fires
// each batch in (deadline, registration) order, byte-identical to the
// old heap-based scheduler's ordering.
type Virtual struct {
	mu      sync.Mutex
	start   time.Time // the epoch; nowNs counts from here
	nowNs   int64
	wh      wheel
	gen     uint64 // bumped on every registration; pump detects churn
	stopped bool
	wake    chan struct{} // pump kick

	// grace is how long the pump waits (real time) for new
	// registrations before concluding the system is quiescent.
	grace time.Duration
	// coalesce is the virtual window within which distinct deadlines
	// fire in one pump step. Coalescing trades a bounded amount of
	// virtual-time dilation (≤ coalesce per causal hop) for a large
	// reduction in pump steps, which is what makes thousand-client
	// minute-long sweeps run in seconds of wall time.
	coalesce time.Duration

	// scratch recycles the pump's due-batch slice; taken under mu,
	// handed back after the batch fires (Advance may race the pump, in
	// which case the loser allocates its own).
	scratch []*wtimer
}

// NewVirtual returns a running Virtual clock starting at start. Call Stop
// when the experiment finishes to release the pump goroutine.
func NewVirtual(start time.Time) *Virtual {
	v := &Virtual{
		start:    start,
		wake:     make(chan struct{}, 1),
		grace:    50 * time.Microsecond,
		coalesce: time.Millisecond,
	}
	v.wh.init(virtualTick)
	go v.pump()
	return v
}

// NewVirtualAt is shorthand for a Virtual clock starting at the Unix epoch
// plus the given offset; experiments use it so logs carry small readable
// timestamps.
func NewVirtualAt(offset time.Duration) *Virtual {
	return NewVirtual(time.Unix(0, 0).Add(offset))
}

// SetGrace adjusts the quiescence window. Larger values are more robust to
// CPU-bound phases between sleeps at the cost of slower simulations.
func (v *Virtual) SetGrace(d time.Duration) {
	v.mu.Lock()
	v.grace = d
	v.mu.Unlock()
}

// SetCoalesce adjusts the virtual coalescing window (0 disables: every
// distinct deadline gets its own pump step).
func (v *Virtual) SetCoalesce(d time.Duration) {
	v.mu.Lock()
	v.coalesce = d
	v.mu.Unlock()
}

// Stop shuts down the pump goroutine. Pending timers never fire after Stop.
func (v *Virtual) Stop() {
	v.mu.Lock()
	v.stopped = true
	v.mu.Unlock()
	v.kick()
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.start.Add(time.Duration(v.nowNs))
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep implements Clock.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	<-v.After(d)
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	return v.NewTimer(d).C
}

// NewTimer implements Clock.
func (v *Virtual) NewTimer(d time.Duration) *Timer {
	t := newTimer(v, nil)
	v.startTimer(t, d)
	return t
}

// AfterFunc implements Clock.
func (v *Virtual) AfterFunc(d time.Duration, f func()) *Timer {
	t := newTimer(v, f)
	v.startTimer(t, d)
	return t
}

// startTimer (re-)schedules t to fire d from virtual now, reporting
// whether it was still pending.
func (v *Virtual) startTimer(t *Timer, d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	active := v.wh.cancel(&t.w)
	v.gen++
	v.wh.schedule(&t.w, v.nowNs+int64(d))
	v.mu.Unlock()
	v.kick()
	return active
}

// stopTimer implements timerSource.
func (v *Virtual) stopTimer(t *Timer) bool {
	v.mu.Lock()
	active := v.wh.cancel(&t.w)
	v.mu.Unlock()
	return active
}

// resetTimer implements timerSource.
func (v *Virtual) resetTimer(t *Timer, d time.Duration) bool {
	return v.startTimer(t, d)
}

// Advance manually moves the clock forward by d, firing every timer whose
// deadline is reached, in deadline order. It is primarily for unit tests
// that want explicit control; the pump handles normal operation.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.nowNs + int64(d)
	due := v.takeScratchLocked()
	due = v.wh.advanceTo(target, due)
	v.nowNs = target
	v.mu.Unlock()
	sortDue(due)
	v.fireBatch(due)
}

// Pending reports how many timers are currently registered. Used by tests.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.wh.count
}

func (v *Virtual) kick() {
	select {
	case v.wake <- struct{}{}:
	default:
	}
}

// takeScratchLocked claims the recycled due slice (or starts a fresh one
// when another batch is mid-fire). Caller holds v.mu.
func (v *Virtual) takeScratchLocked() []*wtimer {
	s := v.scratch
	v.scratch = nil
	return s[:0]
}

// fireBatch delivers a sorted due batch outside the lock — each waiter
// observes its own deadline as the fire time — then hands the slice back
// for reuse.
func (v *Virtual) fireBatch(due []*wtimer) {
	for _, e := range due {
		e.t.fire(v.start.Add(time.Duration(e.deadline)))
	}
	v.mu.Lock()
	if v.scratch == nil {
		v.scratch = due[:0]
	}
	v.mu.Unlock()
}

// pump advances virtual time whenever the system is quiescent: it samples
// the registration generation counter, yields the processor through the
// grace window, and if no new timers appeared and the earliest deadline is
// unchanged it jumps time to that deadline.
func (v *Virtual) pump() {
	for {
		v.mu.Lock()
		if v.stopped {
			v.mu.Unlock()
			return
		}
		if v.wh.count == 0 {
			v.mu.Unlock()
			<-v.wake
			continue
		}
		genBefore := v.gen
		grace := v.grace
		v.mu.Unlock()

		// Let runnable goroutines make progress: they may register
		// earlier deadlines or consume data that was just delivered.
		quiesce(grace)

		v.mu.Lock()
		if v.stopped {
			v.mu.Unlock()
			return
		}
		if v.gen != genBefore || v.wh.count == 0 {
			// Churn during the grace window; re-observe.
			v.mu.Unlock()
			continue
		}
		// Advance to the earliest deadline, sweeping in everything
		// within the coalescing window; the clock lands on the
		// latest deadline actually fired, so no waiter ever
		// observes a time before its own deadline.
		earliest, _ := v.wh.earliest()
		target := earliest + int64(v.coalesce)
		due := v.takeScratchLocked()
		due = v.wh.advanceTo(target, due)
		sortDue(due)
		if n := len(due); n > 0 && due[n-1].deadline > v.nowNs {
			v.nowNs = due[n-1].deadline
		}
		v.mu.Unlock()
		v.fireBatch(due)
	}
}

// quiesce yields the processor repeatedly for roughly the grace duration.
// It deliberately never calls time.Sleep: OS timer granularity (≥50µs,
// often worse) would dominate every pump step and slow large simulations
// by orders of magnitude. Spinning with Gosched keeps a step in the
// single-digit microseconds when the system is already quiet.
func quiesce(grace time.Duration) {
	start := time.Now()
	for {
		runtime.Gosched()
		if time.Since(start) >= grace {
			return
		}
	}
}
