package clock

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// Virtual is a discrete-event clock. Time only moves when every goroutine
// that interacts with the clock is blocked waiting on it: a background pump
// observes a short quiescence window (no new timer registrations) and then
// jumps the clock to the earliest pending deadline, firing all timers due at
// that instant.
//
// This "auto-advancing fake clock" lets unmodified production code — the
// dispatcher, the mailbox, the simulated network — run a one-minute workload
// in a few milliseconds of wall time. The quiescence heuristic trades strict
// determinism for not having to instrument every goroutine; in practice the
// workloads in this repository are sleep-dominated (bandwidth serialization,
// propagation delay, timeouts), so the heuristic is stable. Tests assert
// shapes with tolerances rather than exact event interleavings.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     uint64 // tie-break so equal deadlines fire FIFO
	gen     uint64 // bumped on every registration; pump detects churn
	stopped bool
	wake    chan struct{} // pump kick

	// grace is how long the pump waits (real time) for new
	// registrations before concluding the system is quiescent.
	grace time.Duration
	// coalesce is the virtual window within which distinct deadlines
	// fire in one pump step. Coalescing trades a bounded amount of
	// virtual-time dilation (≤ coalesce per causal hop) for a large
	// reduction in pump steps, which is what makes thousand-client
	// minute-long sweeps run in seconds of wall time.
	coalesce time.Duration
}

// NewVirtual returns a running Virtual clock starting at start. Call Stop
// when the experiment finishes to release the pump goroutine.
func NewVirtual(start time.Time) *Virtual {
	v := &Virtual{
		now:      start,
		wake:     make(chan struct{}, 1),
		grace:    50 * time.Microsecond,
		coalesce: time.Millisecond,
	}
	go v.pump()
	return v
}

// NewVirtualAt is shorthand for a Virtual clock starting at the Unix epoch
// plus the given offset; experiments use it so logs carry small readable
// timestamps.
func NewVirtualAt(offset time.Duration) *Virtual {
	return NewVirtual(time.Unix(0, 0).Add(offset))
}

// SetGrace adjusts the quiescence window. Larger values are more robust to
// CPU-bound phases between sleeps at the cost of slower simulations.
func (v *Virtual) SetGrace(d time.Duration) {
	v.mu.Lock()
	v.grace = d
	v.mu.Unlock()
}

// SetCoalesce adjusts the virtual coalescing window (0 disables: every
// distinct deadline gets its own pump step).
func (v *Virtual) SetCoalesce(d time.Duration) {
	v.mu.Lock()
	v.coalesce = d
	v.mu.Unlock()
}

// Stop shuts down the pump goroutine. Pending timers never fire after Stop.
func (v *Virtual) Stop() {
	v.mu.Lock()
	v.stopped = true
	v.mu.Unlock()
	v.kick()
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep implements Clock.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	<-v.After(d)
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	return v.NewTimer(d).C
}

// NewTimer implements Clock.
func (v *Virtual) NewTimer(d time.Duration) *Timer {
	t := &vtimer{v: v, ch: make(chan time.Time, 1)}
	t.fireFn = t.fire
	t.w = v.register(d, t.fireFn)
	return &Timer{C: t.ch, vt: t}
}

// AfterFunc implements Clock.
func (v *Virtual) AfterFunc(d time.Duration, f func()) *Timer {
	t := &vtimer{v: v, f: f}
	t.fireFn = t.fire
	t.w = v.register(d, t.fireFn)
	return &Timer{vt: t}
}

// vtimer is a Virtual-clock timer that can be stopped and re-armed:
// Stop and Reset swap the underlying heap waiter under a lock,
// mirroring time.Timer semantics (including the stale-fire caveat on
// Reset). The fire callback is bound once (fireFn) so registration and
// re-registration allocate nothing beyond the waiter itself.
type vtimer struct {
	v  *Virtual
	ch chan time.Time // channel timers; nil for AfterFunc
	f  func()         // AfterFunc callback; nil for channel timers

	fireFn func(time.Time)

	mu sync.Mutex
	w  *waiter
}

func (t *vtimer) fire(now time.Time) {
	if t.f != nil {
		go t.f()
		return
	}
	// Non-blocking send, like time.Timer's sendTime: with Reset reuse a
	// stale fire may still sit in C, and the pump must never block on it.
	select {
	case t.ch <- now:
	default:
	}
}

func (t *vtimer) stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.v.cancel(t.w)
}

func (t *vtimer) reset(d time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	active := t.v.cancel(t.w)
	t.w = t.v.register(d, t.fireFn)
	return active
}

// Advance manually moves the clock forward by d, firing every timer whose
// deadline is reached, in deadline order. It is primarily for unit tests
// that want explicit control; the pump handles normal operation.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	fired := v.advanceLocked(target)
	v.now = target
	v.mu.Unlock()
	runFired(fired)
}

// Pending reports how many timers are currently registered. Used by tests.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.waiters.Len()
}

type waiter struct {
	deadline time.Time
	seq      uint64
	fire     func(time.Time)
	index    int // heap index, -1 once fired or cancelled
}

func (v *Virtual) register(d time.Duration, fire func(time.Time)) *waiter {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	v.seq++
	v.gen++
	w := &waiter{deadline: v.now.Add(d), seq: v.seq, fire: fire}
	heap.Push(&v.waiters, w)
	v.mu.Unlock()
	v.kick()
	return w
}

func (v *Virtual) cancel(w *waiter) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if w.index < 0 {
		return false
	}
	heap.Remove(&v.waiters, w.index)
	return true
}

func (v *Virtual) kick() {
	select {
	case v.wake <- struct{}{}:
	default:
	}
}

// advanceLocked pops every waiter due at or before target and returns their
// fire callbacks paired with the times they should observe.
func (v *Virtual) advanceLocked(target time.Time) []firedWaiter {
	var fired []firedWaiter
	for v.waiters.Len() > 0 && !v.waiters[0].deadline.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		fired = append(fired, firedWaiter{w.fire, w.deadline})
	}
	return fired
}

type firedWaiter struct {
	fire func(time.Time)
	at   time.Time
}

func runFired(fs []firedWaiter) {
	for _, f := range fs {
		f.fire(f.at)
	}
}

// pump advances virtual time whenever the system is quiescent: it samples
// the registration generation counter, yields the processor through the
// grace window, and if no new timers appeared and the earliest deadline is
// unchanged it jumps time to that deadline.
func (v *Virtual) pump() {
	for {
		v.mu.Lock()
		if v.stopped {
			v.mu.Unlock()
			return
		}
		if v.waiters.Len() == 0 {
			v.mu.Unlock()
			<-v.wake
			continue
		}
		genBefore := v.gen
		grace := v.grace
		v.mu.Unlock()

		// Let runnable goroutines make progress: they may register
		// earlier deadlines or consume data that was just delivered.
		quiesce(grace)

		v.mu.Lock()
		if v.stopped {
			v.mu.Unlock()
			return
		}
		if v.gen != genBefore || v.waiters.Len() == 0 {
			// Churn during the grace window; re-observe.
			v.mu.Unlock()
			continue
		}
		// Advance to the earliest deadline, sweeping in everything
		// within the coalescing window; the clock lands on the
		// latest deadline actually fired, so no waiter ever
		// observes a time before its own deadline.
		target := v.waiters[0].deadline.Add(v.coalesce)
		fired := v.advanceLocked(target)
		if n := len(fired); n > 0 && fired[n-1].at.After(v.now) {
			v.now = fired[n-1].at
		}
		v.mu.Unlock()
		runFired(fired)
	}
}

// quiesce yields the processor repeatedly for roughly the grace duration.
// It deliberately never calls time.Sleep: OS timer granularity (≥50µs,
// often worse) would dominate every pump step and slow large simulations
// by orders of magnitude. Spinning with Gosched keeps a step in the
// single-digit microseconds when the system is already quiet.
func quiesce(grace time.Duration) {
	start := time.Now()
	for {
		runtime.Gosched()
		if time.Since(start) >= grace {
			return
		}
	}
}

// waiterHeap is a min-heap ordered by (deadline, seq).
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }

func (h waiterHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}

func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}

func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}
