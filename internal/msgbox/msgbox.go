// Package msgbox implements WS-MsgBox, the paper's "P.O. Mailbox" service
// (§3, Figure 2): Web Service clients with no accessible network endpoint
// create a mailbox, hand out its address as their WS-Addressing ReplyTo,
// and later download accumulated messages over plain RPC — which "is
// typically well supported from a client behind firewalls".
//
// Two delivery-processing modes are provided:
//
//   - ModeFixed: incoming messages are stored by a small bounded worker
//     pool (the redesign the paper says it is working on);
//   - ModeBuggy: the original design the paper's scalability test
//     exposed — "WS-MsgBox server creates a new thread for each message
//     and each thread tries to send a reply message. Possibly thousands of
//     threads are created ... That leads to OutOfMemoryExceptions as each
//     thread has local stack allocated in memory." The pool.Ledger models
//     the JVM stack budget so the failure cliff reproduces safely.
//
// Security (paper future work §4.4): "currently the message box has unique
// hard to guess address but that is the only protection". Here mailbox IDs
// are unguessable *and* take/destroy additionally require the capability
// token returned at creation.
//
// Durability: with Config.Store set, mailboxes and their parked messages
// are persisted through the store's write-ahead log and survive a
// service restart. Each mailbox writes one metadata record (destination
// "msgbox:meta", ID "box:"+boxID, payload = capability token) and one
// record per parked message (destination "mbox:"+boxID), deleted when
// the owner takes the message or destroys the box — but NOT on Stop,
// because surviving the stop is the point. Start reloads every box and
// its messages, preserving arrival order. The store must be private to
// this service (a courier sharing it would try to "deliver" mailbox
// records to their pseudo-destinations).
package msgbox

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/cmap"
	"repro/internal/httpx"
	"repro/internal/pool"
	"repro/internal/queue"
	"repro/internal/soap"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// metaDest is the pseudo-destination under which mailbox metadata
// records live in the backing store.
const metaDest = "msgbox:meta"

// boxIDPrefix prefixes mailbox metadata record IDs.
const boxIDPrefix = "box:"

// msgDest returns the pseudo-destination for a mailbox's parked
// messages.
func msgDest(boxID string) string { return "mbox:" + boxID }

// ServiceNS is the RPC namespace of the mailbox management operations.
const ServiceNS = "urn:wsd:msgbox"

// RPC operation names.
const (
	OpCreate  = "createMsgBox"
	OpTake    = "takeMessages"
	OpPeek    = "peekCount"
	OpDestroy = "destroyMsgBox"
)

// Mode selects the delivery-processing design.
type Mode int

const (
	// ModeFixed stores messages via a bounded worker pool.
	ModeFixed Mode = iota
	// ModeBuggy spawns a ledger-accounted thread per message,
	// reproducing §4.3.2's OutOfMemoryError beyond ~50 busy clients.
	ModeBuggy
)

// Config tunes the service.
type Config struct {
	// Clock drives timestamps and the buggy mode's thread lifetime.
	Clock clock.Clock
	// BaseURL is this service's externally visible address, used to
	// mint mailbox addresses, e.g. "http://postoffice:9200".
	BaseURL string
	// Mode selects fixed vs buggy processing.
	Mode Mode
	// Ledger models the thread-stack budget (buggy mode). Defaults to
	// a 2004-JVM-like ledger.
	Ledger *pool.Ledger
	// ThreadLinger is how long each buggy-mode thread lives after
	// storing its message ("trying to send a reply message" over the
	// slow path). Default 2s.
	ThreadLinger time.Duration
	// StoreWorkers sizes the fixed-mode pool. Default 8.
	StoreWorkers int
	// StoreBacklog bounds fixed-mode queued stores. Default 1024.
	StoreBacklog int
	// BoxCap bounds messages retained per mailbox. Default 4096.
	BoxCap int
	// PathPrefix is the HTTP mount point. Default "/mbox".
	PathPrefix string
	// Store, when set, persists mailboxes and parked messages so they
	// survive a restart (Start reloads them). The store must be
	// dedicated to this service; durability follows its WAL sync
	// policy. Nil keeps everything in memory.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Wall
	}
	if c.Ledger == nil {
		c.Ledger = pool.NewLedger(0, 0)
	}
	if c.ThreadLinger <= 0 {
		c.ThreadLinger = 2 * time.Second
	}
	if c.StoreWorkers <= 0 {
		c.StoreWorkers = 8
	}
	if c.StoreBacklog <= 0 {
		c.StoreBacklog = 1024
	}
	if c.BoxCap <= 0 {
		c.BoxCap = 4096
	}
	if c.PathPrefix == "" {
		c.PathPrefix = "/mbox"
	}
	return c
}

// Mailbox is one client's message box.
type Mailbox struct {
	// ID is the unguessable mailbox identifier (part of its address).
	ID string
	// Token is the capability required for take/destroy.
	Token string
	// Created is the creation timestamp.
	Created time.Time

	// msgs holds stored payloads as pooled buffers the mailbox owns:
	// each buffer is drawn at delivery (serveDeliver copies the request
	// body into it, since stored messages outlive the exchange) and
	// released exactly once — when the owner takes the message, when
	// the box is destroyed, or when a full box refuses it.
	msgs *queue.FIFO[boxMsg]
}

// boxMsg is one parked message: its payload buffer (single-release
// ownership per the Mailbox.msgs contract) and, when the service is
// store-backed, the ID of its durable record.
type boxMsg struct {
	payload *xmlsoap.Buffer
	sid     string
}

// Service is the WS-MsgBox server. It implements httpx.Handler for both
// the management RPC endpoint (POST <prefix>) and the delivery endpoint
// (POST <prefix>/<box-id>).
type Service struct {
	cfg   Config
	boxes *cmap.Map[*Mailbox]
	store *pool.Pool // fixed mode

	// Counters for the evaluation harness.
	Created       stats.Counter
	Destroyed     stats.Counter
	Stored        stats.Counter
	StoreFailures stats.Counter // full boxes, unknown boxes
	OOMEvents     stats.Counter // buggy-mode thread creation failures
	Taken         stats.Counter
	AuthFailures  stats.Counter
	// LiveThreads tracks buggy-mode threads (peak shows the explosion).
	LiveThreads stats.Gauge
}

// New builds the service. Call Start before serving, Stop when done.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{cfg: cfg, boxes: cmap.New[*Mailbox]()}
	if cfg.Mode == ModeFixed {
		s.store = pool.New(pool.Config{Core: cfg.StoreWorkers, Backlog: cfg.StoreBacklog})
	}
	return s
}

// Start launches the fixed-mode store pool and, for store-backed
// services, reloads every persisted mailbox and its parked messages
// (crash/restart recovery).
func (s *Service) Start() error {
	if s.store != nil {
		if err := s.store.Start(); err != nil {
			return err
		}
	}
	st := s.cfg.Store
	if st == nil {
		return nil
	}
	for _, meta := range st.PendingFor(metaDest, 0) {
		boxID := strings.TrimPrefix(meta.ID, boxIDPrefix)
		mb := &Mailbox{
			ID:      boxID,
			Token:   string(meta.Payload),
			Created: meta.Enqueued,
			msgs:    queue.New[boxMsg](s.cfg.BoxCap),
		}
		// PendingFor preserves arrival order, so the owner takes
		// messages in the order they were delivered before the restart.
		for _, rec := range st.PendingFor(msgDest(boxID), 0) {
			payload := xmlsoap.GetBuffer()
			payload.B = append(payload.B, rec.Payload...)
			if err := mb.msgs.TryPut(boxMsg{payload: payload, sid: rec.ID}); err != nil {
				// Over a (shrunken) BoxCap: the overflow is dropped for
				// good, matching the live-delivery refusal path.
				xmlsoap.PutBuffer(payload)
				st.Delete(rec.ID)
			}
		}
		s.boxes.Put(mb.ID, mb)
	}
	return nil
}

// Stop drains workers and closes all mailboxes.
func (s *Service) Stop() {
	if s.store != nil {
		s.store.Stop()
	}
	s.boxes.Range(func(_ string, mb *Mailbox) bool {
		releaseBox(mb)
		return true
	})
}

// releaseBox closes a mailbox and returns its undelivered payload
// buffers to the pool (each stored buffer's single release). Durable
// records are NOT touched here: Stop keeps them for the next Start, and
// rpcDestroy deletes them itself after the queue is closed.
func releaseBox(mb *Mailbox) {
	mb.msgs.Close()
	for _, m := range mb.msgs.Drain() {
		xmlsoap.PutBuffer(m.payload)
	}
}

// Boxes returns the number of live mailboxes.
func (s *Service) Boxes() int { return s.boxes.Len() }

// AddressOf returns the delivery address for a mailbox ID.
func (s *Service) AddressOf(id string) string {
	return s.cfg.BaseURL + s.cfg.PathPrefix + "/" + id
}

// Serve implements httpx.Handler.
func (s *Service) Serve(ex *httpx.Exchange) {
	rest, ok := strings.CutPrefix(ex.Req.Path, s.cfg.PathPrefix)
	if !ok {
		soap.ReplyFault(ex, httpx.StatusNotFound, soap.FaultClient, "not a mailbox path: "+ex.Req.Path)
		return
	}
	switch {
	case rest == "" || rest == "/":
		s.serveRPC(ex)
	case strings.HasPrefix(rest, "/"):
		s.serveDeliver(strings.TrimPrefix(rest, "/"), ex)
	default:
		soap.ReplyFault(ex, httpx.StatusNotFound, soap.FaultClient, "not a mailbox path: "+ex.Req.Path)
	}
}

// --- delivery path (step 2 in Figure 2) ---

// serveDeliver stores one incoming message into the addressed mailbox.
func (s *Service) serveDeliver(boxID string, ex *httpx.Exchange) {
	mb, ok := s.boxes.Get(boxID)
	if !ok {
		s.StoreFailures.Inc()
		soap.ReplyFault(ex, httpx.StatusNotFound, soap.FaultClient, "no such mailbox")
		return
	}
	// Stored messages outlive the exchange (ROADMAP "Wire codec"
	// copy-out rule), so the request body — itself a pooled buffer the
	// connection releases after this reply — is copied into a buffer of
	// the mailbox's own before Serve returns. From here the payload
	// buffer has single-release ownership: storeMessage's refusal path,
	// rpcTake, or releaseBox returns it to the pool.
	payload := xmlsoap.GetBuffer()
	payload.B = append(payload.B, ex.Req.Body...)

	switch s.cfg.Mode {
	case ModeBuggy:
		s.deliverBuggy(mb, payload, ex)
	default:
		s.deliverFixed(mb, payload, ex)
	}
}

// deliverFixed hands the store to the bounded pool: the redesign.
func (s *Service) deliverFixed(mb *Mailbox, payload *xmlsoap.Buffer, ex *httpx.Exchange) {
	err := s.store.TrySubmit(func() { s.storeMessage(mb, payload) })
	if err != nil {
		xmlsoap.PutBuffer(payload)
		s.StoreFailures.Inc()
		soap.ReplyFault(ex, httpx.StatusServiceUnavailable, soap.FaultServer, "mailbox store overloaded")
		return
	}
	ex.ReplyBytes(httpx.StatusAccepted, nil)
}

// deliverBuggy reproduces the paper's original design: one thread per
// message, each lingering while it "tries to send a reply message". The
// thread stack is charged to the ledger; exhaustion is the
// OutOfMemoryError of §4.3.2.
func (s *Service) deliverBuggy(mb *Mailbox, payload *xmlsoap.Buffer, ex *httpx.Exchange) {
	if err := s.cfg.Ledger.SpawnThread(); err != nil {
		xmlsoap.PutBuffer(payload)
		s.OOMEvents.Inc()
		s.StoreFailures.Inc()
		soap.ReplyFault(ex, httpx.StatusInternalServerError, soap.FaultServer,
			"OutOfMemoryError: unable to create new native thread")
		return
	}
	s.LiveThreads.Add(1)
	go func() {
		defer func() {
			s.LiveThreads.Add(-1)
			s.cfg.Ledger.ReleaseThread()
		}()
		s.storeMessage(mb, payload)
		// The thread lives on, attempting its reply notification.
		s.cfg.Clock.Sleep(s.cfg.ThreadLinger)
	}()
	ex.ReplyBytes(httpx.StatusAccepted, nil)
}

func (s *Service) storeMessage(mb *Mailbox, payload *xmlsoap.Buffer) {
	var sid string
	if st := s.cfg.Store; st != nil {
		// Write-ahead: the record is durable (per the WAL sync policy)
		// before the message becomes visible in the box. A store refusal
		// refuses the delivery — accepting a message durability was
		// promised for but not delivered would be lying to the sender.
		sid = wsa.NewMessageID()
		if err := st.Put(&store.Message{
			ID:          sid,
			Destination: msgDest(mb.ID),
			Payload:     payload.B,
		}); err != nil {
			xmlsoap.PutBuffer(payload)
			s.StoreFailures.Inc()
			return
		}
	}
	if err := mb.msgs.TryPut(boxMsg{payload: payload, sid: sid}); err != nil {
		if sid != "" {
			s.cfg.Store.Delete(sid)
		}
		xmlsoap.PutBuffer(payload)
		s.StoreFailures.Inc()
		return
	}
	s.Stored.Inc()
}

// --- management RPC path (steps 1, 3, 4 in Figure 2) ---

func (s *Service) serveRPC(ex *httpx.Exchange) {
	env, err := soap.Parse(ex.Req.Body)
	if err != nil {
		soap.ReplyFault(ex, httpx.StatusBadRequest, soap.FaultClient, "bad envelope: "+err.Error())
		return
	}
	call, err := soap.ParseRPC(env)
	if err != nil {
		soap.ReplyFault(ex, httpx.StatusBadRequest, soap.FaultClient, "bad call: "+err.Error())
		return
	}
	if call.ServiceNS != ServiceNS {
		soap.ReplyFault(ex, httpx.StatusBadRequest, soap.FaultClient,
			"unknown service namespace "+call.ServiceNS)
		return
	}
	switch call.Operation {
	case OpCreate:
		s.rpcCreate(ex, env.Version)
	case OpTake:
		s.rpcTake(ex, env.Version, call)
	case OpPeek:
		s.rpcPeek(ex, env.Version, call)
	case OpDestroy:
		s.rpcDestroy(ex, env.Version, call)
	default:
		soap.ReplyFault(ex, httpx.StatusBadRequest, soap.FaultClient,
			"unknown operation "+call.Operation)
	}
}

func (s *Service) rpcCreate(ex *httpx.Exchange, v soap.Version) {
	mb := &Mailbox{
		ID:      randomID(16),
		Token:   randomID(16),
		Created: s.cfg.Clock.Now(),
		msgs:    queue.New[boxMsg](s.cfg.BoxCap),
	}
	if st := s.cfg.Store; st != nil {
		if err := st.Put(&store.Message{
			ID:          boxIDPrefix + mb.ID,
			Destination: metaDest,
			Payload:     []byte(mb.Token),
			Enqueued:    mb.Created,
		}); err != nil {
			soap.ReplyFault(ex, httpx.StatusInternalServerError, soap.FaultServer,
				"mailbox not durable: "+err.Error())
			return
		}
	}
	s.boxes.Put(mb.ID, mb)
	s.Created.Inc()
	rpcOK(ex, v, OpCreate,
		soap.Param{Name: "boxId", Value: mb.ID},
		soap.Param{Name: "token", Value: mb.Token},
		soap.Param{Name: "address", Value: s.AddressOf(mb.ID)},
	)
}

// authorize resolves the mailbox and checks the capability token,
// replying with a fault (and returning nil) on failure.
func (s *Service) authorize(ex *httpx.Exchange, call *soap.Call) *Mailbox {
	boxID, _ := call.Param("boxId")
	token, _ := call.Param("token")
	mb, ok := s.boxes.Get(boxID)
	if !ok {
		soap.ReplyFault(ex, httpx.StatusNotFound, soap.FaultClient, "no such mailbox")
		return nil
	}
	if mb.Token != token {
		s.AuthFailures.Inc()
		soap.ReplyFault(ex, httpx.StatusForbidden, soap.FaultClient, "bad mailbox token")
		return nil
	}
	return mb
}

func (s *Service) rpcTake(ex *httpx.Exchange, v soap.Version, call *soap.Call) {
	mb := s.authorize(ex, call)
	if mb == nil {
		return
	}
	max := 16
	if m, ok := call.Param("max"); ok {
		if n, err := strconv.Atoi(m); err == nil && n > 0 {
			max = n
		}
	}
	params := []soap.Param{{Name: "count", Value: ""}}
	n := 0
	for n < max {
		m, ok := mb.msgs.TryTake()
		if !ok {
			break
		}
		n++
		// The string conversion copies the payload into the response
		// being built, which is the taken buffer's last use.
		params = append(params, soap.Param{Name: fmt.Sprintf("msg%d", n), Value: string(m.payload.B)})
		xmlsoap.PutBuffer(m.payload)
		if m.sid != "" {
			// Taken: the durable record is spent. (If the delete cannot
			// be logged the message may reappear after a crash — at-
			// least-once, never lost.)
			s.cfg.Store.Delete(m.sid)
		}
	}
	params[0].Value = strconv.Itoa(n)
	s.Taken.Add(int64(n))
	rpcOK(ex, v, OpTake, params...)
}

func (s *Service) rpcPeek(ex *httpx.Exchange, v soap.Version, call *soap.Call) {
	mb := s.authorize(ex, call)
	if mb == nil {
		return
	}
	rpcOK(ex, v, OpPeek, soap.Param{Name: "count", Value: strconv.Itoa(mb.msgs.Len())})
}

func (s *Service) rpcDestroy(ex *httpx.Exchange, v soap.Version, call *soap.Call) {
	mb := s.authorize(ex, call)
	if mb == nil {
		return
	}
	s.boxes.Delete(mb.ID)
	releaseBox(mb)
	if st := s.cfg.Store; st != nil {
		// After the queue is closed: any delivery racing this destroy
		// fails its TryPut and deletes its own record, so enumerating
		// now leaves no orphans.
		st.Delete(boxIDPrefix + mb.ID)
		for _, rec := range st.PendingFor(msgDest(mb.ID), 0) {
			st.Delete(rec.ID)
		}
	}
	s.Destroyed.Inc()
	rpcOK(ex, v, OpDestroy, soap.Param{Name: "destroyed", Value: "true"})
}

func rpcOK(ex *httpx.Exchange, v soap.Version, op string, params ...soap.Param) {
	// Mailbox polling (Figure 2 step 3) pays this marshal per poll;
	// render into a pooled buffer released by the connection after the
	// reply is written.
	env := soap.RPCResponse(v, ServiceNS, op, params...)
	err := ex.Reply(httpx.StatusOK, func(dst []byte) ([]byte, error) {
		return wsa.AppendEnvelope(dst, env)
	})
	if err != nil {
		soap.ReplyFault(ex, httpx.StatusInternalServerError, soap.FaultServer, err.Error())
		return
	}
	ex.Header().Set("Content-Type", v.ContentType())
}


// randomID returns n bytes of entropy, hex-encoded: the "unique hard to
// guess address" of the paper plus capability tokens.
func randomID(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("msgbox: entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b)
}
