package msgbox

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/soap"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/xmlsoap"
)

// TestStoreBackedMailboxSurvivesRestart is the durable-mailbox
// round-trip: create a box, park messages, take one, kill the whole
// service (Stop + store Close, the clean-crash equivalent), reopen the
// store from its WAL, and assert the box — same ID, same capability
// token — still holds exactly the untaken messages in arrival order.
// Destroy must be just as durable: after destroying and restarting
// again, nothing comes back. Pooled buffers return to baseline at every
// service teardown.
// waitPool polls until every pooled buffer is back at the pre-test
// baseline (connection teardown releases asynchronously) and reports
// the drift when one leaks.
func waitPool(t *testing.T, baseline int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if xmlsoap.PoolLive() == baseline {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("PoolLive = %d, want baseline %d", xmlsoap.PoolLive(), baseline)
}

func TestStoreBackedMailboxSurvivesRestart(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	// SyncAlways fsyncs inside request handlers. A real fsync can outlast
	// the Virtual pump's default 50µs quiescence window, which would make
	// idle-looking disk I/O jump virtual time to the client timeout.
	clk.SetGrace(5 * time.Millisecond)
	nw := netsim.New(clk, 31)
	po := nw.AddHost("po", netsim.ProfileLAN())
	cli := nw.AddHost("cli", netsim.ProfileLAN())
	dir := filepath.Join(t.TempDir(), "mbox.wal")
	baseline := xmlsoap.PoolLive()

	openStore := func() *store.Store {
		t.Helper()
		st, err := store.Open(clk, dir, store.Options{WAL: wal.Config{Sync: wal.SyncAlways}})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	// run brings up a service generation on the shared WAL and returns
	// it with a fresh client rig and a teardown.
	run := func(st *store.Store) (*rig, func()) {
		t.Helper()
		svc := New(Config{Clock: clk, BaseURL: "http://po:9200", Mode: ModeFixed, Store: st})
		if err := svc.Start(); err != nil {
			t.Fatal(err)
		}
		ln, err := po.Listen(9200)
		if err != nil {
			t.Fatal(err)
		}
		srv := httpx.NewServer(svc, httpx.ServerConfig{Clock: clk})
		srv.Start(ln)
		client := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
		r := &rig{clk: clk, svc: svc, client: client}
		return r, func() {
			client.Close()
			srv.Close()
			svc.Stop()
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Generation 1: create, park three, take one.
	st1 := openStore()
	r1, stop1 := run(st1)
	id, token, _ := r1.create(t)
	for i := 0; i < 3; i++ {
		if resp := r1.deliver(t, id, fmt.Sprintf("msg-%d", i)); resp.Status != httpx.StatusAccepted {
			t.Fatalf("deliver %d status = %d", i, resp.Status)
		}
	}
	waitFor(t, func() bool { return r1.svc.Stored.Value() == 3 })
	results, _ := r1.rpc(t, OpTake,
		soap.Param{Name: "boxId", Value: id},
		soap.Param{Name: "token", Value: token},
		soap.Param{Name: "max", Value: "1"})
	if results == nil || results[0].Value != "1" {
		t.Fatalf("take-one = %+v", results)
	}
	stop1()
	waitPool(t, baseline)

	// Generation 2: everything untaken is back, in order, same token.
	st2 := openStore()
	r2, stop2 := run(st2)
	if r2.svc.Boxes() != 1 {
		t.Fatalf("Boxes after restart = %d, want 1", r2.svc.Boxes())
	}
	results, resp := r2.rpc(t, OpTake,
		soap.Param{Name: "boxId", Value: id},
		soap.Param{Name: "token", Value: token},
		soap.Param{Name: "max", Value: "10"})
	if results == nil {
		t.Fatalf("take after restart failed: %d %s", resp.Status, resp.Body)
	}
	var got []string
	for _, p := range results {
		if strings.HasPrefix(p.Name, "msg") {
			env, err := soap.Parse([]byte(p.Value))
			if err != nil {
				t.Fatalf("recovered message unparseable: %v", err)
			}
			got = append(got, env.BodyElement().Text)
		}
	}
	if len(got) != 2 || got[0] != "msg-1" || got[1] != "msg-2" {
		t.Fatalf("recovered = %v, want [msg-1 msg-2] (msg-0 was taken before the restart)", got)
	}
	if _, resp := r2.rpc(t, OpDestroy,
		soap.Param{Name: "boxId", Value: id},
		soap.Param{Name: "token", Value: token}); resp.Status != httpx.StatusOK {
		t.Fatalf("destroy status = %d", resp.Status)
	}
	stop2()
	waitPool(t, baseline)

	// Generation 3: the destroy was durable — nothing comes back.
	st3 := openStore()
	r3, stop3 := run(st3)
	defer stop3()
	if r3.svc.Boxes() != 0 {
		t.Fatalf("Boxes after destroy + restart = %d, want 0", r3.svc.Boxes())
	}
	if n := st3.Len(); n != 0 {
		t.Fatalf("store still holds %d records after destroy", n)
	}
}
