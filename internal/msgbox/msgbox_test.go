package msgbox

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/pool"
	"repro/internal/soap"
	"repro/internal/xmlsoap"
)

// rig runs a WS-MsgBox on host "po" and a client on host "cli".
type rig struct {
	clk    *clock.Virtual
	svc    *Service
	client *httpx.Client
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	nw := netsim.New(clk, 31)
	po := nw.AddHost("po", netsim.ProfileLAN())
	cli := nw.AddHost("cli", netsim.ProfileLAN())

	cfg.Clock = clk
	if cfg.BaseURL == "" {
		cfg.BaseURL = "http://po:9200"
	}
	svc := New(cfg)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	ln, _ := po.Listen(9200)
	srv := httpx.NewServer(svc, httpx.ServerConfig{Clock: clk})
	srv.Start(ln)
	t.Cleanup(func() { srv.Close() })

	client := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
	t.Cleanup(client.Close)
	return &rig{clk: clk, svc: svc, client: client}
}

// rpc invokes a mailbox management operation and returns the results.
func (r *rig) rpc(t *testing.T, op string, params ...soap.Param) ([]soap.Param, *httpx.Response) {
	t.Helper()
	body, _ := soap.RPCRequest(soap.V11, ServiceNS, op, params...).Marshal()
	req := httpx.NewRequest("POST", "/mbox", body)
	req.Header.Set("Content-Type", soap.V11.ContentType())
	resp, err := r.client.Do("po:9200", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusOK {
		return nil, resp
	}
	env, err := soap.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	results, err := soap.ParseRPCResponse(env, op)
	if err != nil {
		t.Fatal(err)
	}
	// Parsed text aliases the pooled response body (the parser is
	// zero-copy), so clone the params out before releasing it — callers
	// hold the values across later exchanges. The non-OK path above
	// keeps the body alive for error reporting; resp.Status stays
	// readable either way.
	for i := range results {
		results[i].Name = strings.Clone(results[i].Name)
		results[i].Value = strings.Clone(results[i].Value)
	}
	resp.Release()
	return results, resp
}

func (r *rig) create(t *testing.T) (id, token, address string) {
	t.Helper()
	results, resp := r.rpc(t, OpCreate)
	if results == nil {
		t.Fatalf("create failed: %d %s", resp.Status, resp.Body)
	}
	for _, p := range results {
		switch p.Name {
		case "boxId":
			id = p.Value
		case "token":
			token = p.Value
		case "address":
			address = p.Value
		}
	}
	return id, token, address
}

// deliver POSTs an envelope to the mailbox's delivery address.
func (r *rig) deliver(t *testing.T, id, text string) *httpx.Response {
	t.Helper()
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText("urn:x", "stored", text))
	raw, _ := env.Marshal()
	resp, err := r.client.Do("po:9200", httpx.NewRequest("POST", "/mbox/"+id, raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status == httpx.StatusAccepted {
		resp.Release() // the ack body is unused; callers read only Status
	}
	return resp
}

func TestCreateDeliverTakeDestroy(t *testing.T) {
	r := newRig(t, Config{Mode: ModeFixed})
	id, token, address := r.create(t)
	if id == "" || token == "" || !strings.HasSuffix(address, "/mbox/"+id) {
		t.Fatalf("create = %q %q %q", id, token, address)
	}
	if r.svc.Boxes() != 1 {
		t.Fatalf("Boxes = %d", r.svc.Boxes())
	}

	for i := 0; i < 3; i++ {
		if resp := r.deliver(t, id, fmt.Sprintf("msg-%d", i)); resp.Status != httpx.StatusAccepted {
			t.Fatalf("deliver status = %d", resp.Status)
		}
	}
	waitFor(t, func() bool { return r.svc.Stored.Value() == 3 })

	results, _ := r.rpc(t, OpTake,
		soap.Param{Name: "boxId", Value: id},
		soap.Param{Name: "token", Value: token},
		soap.Param{Name: "max", Value: "10"})
	var got []string
	for _, p := range results {
		if strings.HasPrefix(p.Name, "msg") {
			env, err := soap.Parse([]byte(p.Value))
			if err != nil {
				t.Fatalf("stored message unparseable: %v", err)
			}
			got = append(got, env.BodyElement().Text)
		}
	}
	if len(got) != 3 || got[0] != "msg-0" || got[2] != "msg-2" {
		t.Fatalf("taken = %v", got)
	}

	if _, resp := r.rpc(t, OpDestroy,
		soap.Param{Name: "boxId", Value: id},
		soap.Param{Name: "token", Value: token}); resp.Status != httpx.StatusOK {
		t.Fatalf("destroy status = %d", resp.Status)
	}
	if r.svc.Boxes() != 0 {
		t.Fatalf("Boxes after destroy = %d", r.svc.Boxes())
	}
}

func TestTakeRequiresToken(t *testing.T) {
	r := newRig(t, Config{Mode: ModeFixed})
	id, _, _ := r.create(t)
	_, resp := r.rpc(t, OpTake,
		soap.Param{Name: "boxId", Value: id},
		soap.Param{Name: "token", Value: "wrong"})
	if resp.Status != httpx.StatusForbidden {
		t.Fatalf("status = %d", resp.Status)
	}
	if r.svc.AuthFailures.Value() != 1 {
		t.Fatalf("AuthFailures = %d", r.svc.AuthFailures.Value())
	}
}

func TestPeekCount(t *testing.T) {
	r := newRig(t, Config{Mode: ModeFixed})
	id, token, _ := r.create(t)
	r.deliver(t, id, "a")
	r.deliver(t, id, "b")
	waitFor(t, func() bool { return r.svc.Stored.Value() == 2 })
	results, _ := r.rpc(t, OpPeek,
		soap.Param{Name: "boxId", Value: id},
		soap.Param{Name: "token", Value: token})
	if len(results) != 1 || results[0].Value != "2" {
		t.Fatalf("peek = %+v", results)
	}
}

func TestDeliverToUnknownBox404(t *testing.T) {
	r := newRig(t, Config{Mode: ModeFixed})
	resp := r.deliver(t, "deadbeef", "x")
	if resp.Status != httpx.StatusNotFound {
		t.Fatalf("status = %d", resp.Status)
	}
}

func TestUnknownOperationFaults(t *testing.T) {
	r := newRig(t, Config{Mode: ModeFixed})
	_, resp := r.rpc(t, "frobnicate")
	if resp.Status != httpx.StatusBadRequest {
		t.Fatalf("status = %d", resp.Status)
	}
}

func TestWrongNamespaceRejected(t *testing.T) {
	r := newRig(t, Config{Mode: ModeFixed})
	body, _ := soap.RPCRequest(soap.V11, "urn:other", OpCreate).Marshal()
	resp, err := r.client.Do("po:9200", httpx.NewRequest("POST", "/mbox", body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusBadRequest {
		t.Fatalf("status = %d", resp.Status)
	}
}

func TestBoxCapDropsOverflow(t *testing.T) {
	r := newRig(t, Config{Mode: ModeFixed, BoxCap: 2})
	id, token, _ := r.create(t)
	for i := 0; i < 5; i++ {
		r.deliver(t, id, fmt.Sprintf("m%d", i))
	}
	waitFor(t, func() bool { return r.svc.Stored.Value()+r.svc.StoreFailures.Value() >= 5 })
	if r.svc.Stored.Value() != 2 {
		t.Fatalf("Stored = %d, want 2 (cap)", r.svc.Stored.Value())
	}
	if r.svc.StoreFailures.Value() != 3 {
		t.Fatalf("StoreFailures = %d", r.svc.StoreFailures.Value())
	}
	results, _ := r.rpc(t, OpPeek,
		soap.Param{Name: "boxId", Value: id},
		soap.Param{Name: "token", Value: token})
	if results[0].Value != "2" {
		t.Fatalf("peek = %v", results)
	}
}

func TestBuggyModeExplodesThreads(t *testing.T) {
	// Budget for only 8 concurrent "threads"; each lingers 10s while the
	// deliveries arrive back-to-back — §4.3.2's OutOfMemoryError.
	ledger := pool.NewLedger(1024, 8*1024)
	r := newRig(t, Config{
		Mode:         ModeBuggy,
		Ledger:       ledger,
		ThreadLinger: 10 * time.Second,
	})
	id, _, _ := r.create(t)

	var oomSeen bool
	for i := 0; i < 20; i++ {
		resp := r.deliver(t, id, fmt.Sprintf("m%d", i))
		if resp.Status == httpx.StatusInternalServerError {
			oomSeen = true
			env, _ := soap.Parse(resp.Body)
			if f, ok := soap.AsFault(env); !ok || !strings.Contains(f.Reason, "OutOfMemoryError") {
				t.Fatalf("fault = %+v", f)
			}
			break
		}
	}
	if !oomSeen {
		t.Fatal("buggy mode never hit OutOfMemoryError")
	}
	if r.svc.OOMEvents.Value() == 0 {
		t.Fatal("OOM not counted")
	}
	if peak := r.svc.LiveThreads.Peak(); peak != 8 {
		t.Fatalf("peak threads = %d, want ledger capacity 8", peak)
	}
}

func TestFixedModeSurvivesSameBurst(t *testing.T) {
	// Identical burst, fixed design: everything is stored, no OOM.
	ledger := pool.NewLedger(1024, 8*1024)
	r := newRig(t, Config{Mode: ModeFixed, Ledger: ledger})
	id, _, _ := r.create(t)
	for i := 0; i < 20; i++ {
		if resp := r.deliver(t, id, fmt.Sprintf("m%d", i)); resp.Status != httpx.StatusAccepted {
			t.Fatalf("deliver %d status = %d", i, resp.Status)
		}
	}
	waitFor(t, func() bool { return r.svc.Stored.Value() == 20 })
	if r.svc.OOMEvents.Value() != 0 {
		t.Fatalf("OOMEvents = %d", r.svc.OOMEvents.Value())
	}
}

func TestConcurrentDeliveries(t *testing.T) {
	r := newRig(t, Config{Mode: ModeFixed})
	id, token, _ := r.create(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				env := soap.New(soap.V11).SetBody(xmlsoap.NewText("urn:x", "m", fmt.Sprintf("%d-%d", g, i)))
				raw, _ := env.Marshal()
				r.client.Do("po:9200", httpx.NewRequest("POST", "/mbox/"+id, raw))
			}
		}(g)
	}
	wg.Wait()
	waitFor(t, func() bool { return r.svc.Stored.Value() == 80 })
	results, _ := r.rpc(t, OpPeek,
		soap.Param{Name: "boxId", Value: id},
		soap.Param{Name: "token", Value: token})
	if results[0].Value != "80" {
		t.Fatalf("peek = %v", results)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
