package soap

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmlsoap"
)

func TestEnvelopeRoundTrip11(t *testing.T) {
	env := New(V11).
		AddHeader(xmlsoap.NewText("urn:h", "Trace", "abc")).
		SetBody(xmlsoap.NewText("urn:svc", "echo", "hello"))
	raw, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != V11 {
		t.Fatalf("version = %v", back.Version)
	}
	if h := back.HeaderBlock("urn:h", "Trace"); h == nil || h.Text != "abc" {
		t.Fatalf("header = %+v", h)
	}
	if b := back.BodyElement(); b == nil || b.Text != "hello" {
		t.Fatalf("body = %+v", b)
	}
}

func TestEnvelopeRoundTrip12(t *testing.T) {
	env := New(V12).SetBody(xmlsoap.NewText("urn:svc", "op", "x"))
	raw, _ := env.Marshal()
	if !strings.Contains(string(raw), NS12) {
		t.Fatalf("1.2 envelope missing namespace: %s", raw)
	}
	back, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != V12 {
		t.Fatalf("version = %v", back.Version)
	}
}

func TestParseRejectsNonSOAP(t *testing.T) {
	if _, err := Parse([]byte(`<html xmlns="urn:web"><body/></html>`)); !errors.Is(err, ErrNotSOAP) {
		t.Fatalf("err = %v, want ErrNotSOAP", err)
	}
}

func TestParseRejectsMissingBody(t *testing.T) {
	raw := `<e:Envelope xmlns:e="` + NS11 + `"><e:Header/></e:Envelope>`
	if _, err := Parse([]byte(raw)); !errors.Is(err, ErrMissingBody) {
		t.Fatalf("err = %v, want ErrMissingBody", err)
	}
}

func TestContentTypes(t *testing.T) {
	if got := V11.ContentType(); !strings.HasPrefix(got, "text/xml") {
		t.Fatalf("V11 content type = %q", got)
	}
	if got := V12.ContentType(); !strings.HasPrefix(got, "application/soap+xml") {
		t.Fatalf("V12 content type = %q", got)
	}
}

func TestRemoveHeaderBlocks(t *testing.T) {
	env := New(V11).AddHeader(
		xmlsoap.NewText("urn:a", "H", "1"),
		xmlsoap.NewText("urn:a", "H", "2"),
		xmlsoap.NewText("urn:b", "K", "3"),
	)
	if n := env.RemoveHeaderBlocks("urn:a", "H"); n != 2 {
		t.Fatalf("removed = %d", n)
	}
	if len(env.Header) != 1 || env.Header[0].Name.Local != "K" {
		t.Fatalf("header = %+v", env.Header)
	}
}

func TestFaultRoundTrip11(t *testing.T) {
	f := &Fault{Code: FaultServer, Reason: "boom", Detail: "stack trace"}
	raw, err := f.Envelope(V11).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := AsFault(env)
	if !ok {
		t.Fatalf("fault not detected in %s", raw)
	}
	if got.Code != FaultServer || got.Reason != "boom" || got.Detail != "stack trace" {
		t.Fatalf("fault = %+v", got)
	}
}

func TestFaultRoundTrip12(t *testing.T) {
	f := &Fault{Code: FaultClient, Reason: "bad input"}
	raw, _ := f.Envelope(V12).Marshal()
	env, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := AsFault(env)
	if !ok {
		t.Fatal("fault not detected")
	}
	// 1.2 Sender maps back to 1.1-style Client.
	if got.Code != FaultClient || got.Reason != "bad input" {
		t.Fatalf("fault = %+v", got)
	}
}

func TestAsFaultOnNormalBody(t *testing.T) {
	env := New(V11).SetBody(xmlsoap.New("urn:x", "op"))
	if _, ok := AsFault(env); ok {
		t.Fatal("normal body detected as fault")
	}
}

func TestFaultIsError(t *testing.T) {
	var err error = &Fault{Code: FaultClient, Reason: "r"}
	if !strings.Contains(err.Error(), "Client") {
		t.Fatalf("Error() = %q", err.Error())
	}
}

func TestRPCRequestRoundTrip(t *testing.T) {
	env := RPCRequest(V11, "urn:echo", "echo",
		Param{Name: "message", Value: "ping"},
		Param{Name: "seq", Value: "42"})
	raw, _ := env.Marshal()
	back, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	call, err := ParseRPC(back)
	if err != nil {
		t.Fatal(err)
	}
	if call.Operation != "echo" || call.ServiceNS != "urn:echo" {
		t.Fatalf("call = %+v", call)
	}
	if v, ok := call.Param("message"); !ok || v != "ping" {
		t.Fatalf("message = %q, %v", v, ok)
	}
	if v, _ := call.Param("seq"); v != "42" {
		t.Fatalf("seq = %q", v)
	}
	if _, ok := call.Param("missing"); ok {
		t.Fatal("missing param reported present")
	}
}

func TestRPCResponseRoundTrip(t *testing.T) {
	env := RPCResponse(V11, "urn:echo", "echo", Param{Name: "return", Value: "pong"})
	raw, _ := env.Marshal()
	back, _ := Parse(raw)
	results, err := ParseRPCResponse(back, "echo")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Value != "pong" {
		t.Fatalf("results = %+v", results)
	}
}

func TestRPCResponseWrongOperation(t *testing.T) {
	env := RPCResponse(V11, "urn:echo", "echo")
	if _, err := ParseRPCResponse(env, "other"); err == nil {
		t.Fatal("mismatched response accepted")
	}
}

func TestRPCResponseFaultSurfacesAsError(t *testing.T) {
	f := &Fault{Code: FaultServer, Reason: "died"}
	env := f.Envelope(V11)
	_, err := ParseRPCResponse(env, "echo")
	var fault *Fault
	if !errors.As(err, &fault) || fault.Reason != "died" {
		t.Fatalf("err = %v, want wrapped fault", err)
	}
	if _, err := ParseRPC(env); err == nil {
		t.Fatal("ParseRPC accepted fault body")
	}
}

func TestMustUnderstandViolation(t *testing.T) {
	critical := xmlsoap.New("urn:sec", "Security")
	critical.SetAttr(NS11, "mustUnderstand", "1")
	benign := xmlsoap.New("urn:dbg", "Trace")
	env := New(V11).AddHeader(critical, benign).SetBody(xmlsoap.New("urn:x", "op"))

	if v := env.MustUnderstandViolation("urn:other"); v == nil || v.Name.Space != "urn:sec" {
		t.Fatalf("violation = %+v", v)
	}
	if v := env.MustUnderstandViolation("urn:sec"); v != nil {
		t.Fatalf("understood header still violates: %+v", v)
	}
}

func TestCloneIsDeep(t *testing.T) {
	env := New(V11).SetBody(xmlsoap.NewText("urn:x", "op", "orig"))
	cp := env.Clone()
	cp.Body[0].Text = "mutated"
	if env.Body[0].Text != "orig" {
		t.Fatal("clone aliased body")
	}
}

// Property: RPC parameters of arbitrary XML-safe content survive the full
// envelope wire round trip in order.
func TestQuickRPCParamRoundTrip(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if r >= 0x20 && r != 0xFFFE && r != 0xFFFF {
				b.WriteRune(r)
			}
		}
		return strings.TrimSpace(b.String())
	}
	f := func(vals []string) bool {
		params := make([]Param, 0, len(vals))
		for i, v := range vals {
			params = append(params, Param{Name: "p" + string(rune('a'+i%26)), Value: sanitize(v)})
		}
		raw, err := RPCRequest(V11, "urn:q", "op", params...).Marshal()
		if err != nil {
			return false
		}
		back, err := Parse(raw)
		if err != nil {
			return false
		}
		call, err := ParseRPC(back)
		if err != nil {
			return false
		}
		if len(call.Params) != len(params) {
			return false
		}
		for i := range params {
			if call.Params[i] != params[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
