// Package soap implements SOAP 1.1 and 1.2 envelope construction, parsing,
// faults, and RPC-style wrapping — the "SOAP 1.1 and 1.2
// wrapping/unwrapping; RPC style wrapping" XSUL modules the paper's
// WS-Dispatcher is built from.
package soap

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/xmlsoap"
)

// Version selects the envelope namespace.
type Version int

const (
	// V11 is SOAP 1.1 (http://schemas.xmlsoap.org/soap/envelope/),
	// what 2004-era SOAP-RPC clients spoke.
	V11 Version = iota
	// V12 is SOAP 1.2 (http://www.w3.org/2003/05/soap-envelope).
	V12
)

// Namespace URIs for the two supported versions.
const (
	NS11 = "http://schemas.xmlsoap.org/soap/envelope/"
	NS12 = "http://www.w3.org/2003/05/soap-envelope"
)

// ContentType returns the MIME type SOAP messages of this version use on
// HTTP.
func (v Version) ContentType() string {
	if v == V12 {
		return "application/soap+xml; charset=utf-8"
	}
	return "text/xml; charset=utf-8"
}

// NS returns the envelope namespace URI.
func (v Version) NS() string {
	if v == V12 {
		return NS12
	}
	return NS11
}

func (v Version) String() string {
	if v == V12 {
		return "SOAP 1.2"
	}
	return "SOAP 1.1"
}

// Envelope is a parsed or under-construction SOAP message.
type Envelope struct {
	Version Version
	// Header holds header blocks (may be empty). Dispatchers and
	// WS-Addressing operate here.
	Header []*xmlsoap.Element
	// Body holds the payload elements; for RPC exactly one wrapper.
	Body []*xmlsoap.Element
}

// New returns an empty envelope of the given version.
func New(v Version) *Envelope { return &Envelope{Version: v} }

// AddHeader appends header blocks and returns e.
func (e *Envelope) AddHeader(blocks ...*xmlsoap.Element) *Envelope {
	e.Header = append(e.Header, blocks...)
	return e
}

// SetBody replaces the body payload and returns e.
func (e *Envelope) SetBody(payload ...*xmlsoap.Element) *Envelope {
	e.Body = payload
	return e
}

// BodyElement returns the first body child, or nil for an empty body.
func (e *Envelope) BodyElement() *xmlsoap.Element {
	if len(e.Body) == 0 {
		return nil
	}
	return e.Body[0]
}

// HeaderBlock returns the first header block named {space}local, or nil.
func (e *Envelope) HeaderBlock(space, local string) *xmlsoap.Element {
	for _, h := range e.Header {
		if h.Name.Space == space && h.Name.Local == local {
			return h
		}
	}
	return nil
}

// RemoveHeaderBlocks deletes all header blocks named {space}local and
// reports how many were removed. The MSG-Dispatcher uses this when
// rewriting WS-Addressing headers.
func (e *Envelope) RemoveHeaderBlocks(space, local string) int {
	kept := e.Header[:0]
	removed := 0
	for _, h := range e.Header {
		if h.Name.Space == space && h.Name.Local == local {
			removed++
			continue
		}
		kept = append(kept, h)
	}
	e.Header = kept
	return removed
}

// Tree renders the envelope as an element tree.
func (e *Envelope) Tree() *xmlsoap.Element {
	ns := e.Version.NS()
	root := xmlsoap.New(ns, "Envelope")
	if len(e.Header) > 0 {
		hdr := xmlsoap.New(ns, "Header")
		for _, h := range e.Header {
			hdr.Add(h.Clone())
		}
		root.Add(hdr)
	}
	body := xmlsoap.New(ns, "Body")
	for _, b := range e.Body {
		body.Add(b.Clone())
	}
	root.Add(body)
	return root
}

// AppendTo appends the envelope as a complete XML document (with
// prolog) to dst and returns the extended slice. Unlike Tree, it
// serializes the header and body blocks in place without cloning them,
// so the per-message cost is the byte writing alone.
func (e *Envelope) AppendTo(dst []byte) ([]byte, error) {
	ns := e.Version.NS()
	root := xmlsoap.Element{Name: xmlsoap.Name{Space: ns, Local: "Envelope"}}
	var kids [2]*xmlsoap.Element
	root.Children = kids[:0]
	var hdr xmlsoap.Element
	if len(e.Header) > 0 {
		hdr = xmlsoap.Element{Name: xmlsoap.Name{Space: ns, Local: "Header"}, Children: e.Header}
		root.Children = append(root.Children, &hdr)
	}
	body := xmlsoap.Element{Name: xmlsoap.Name{Space: ns, Local: "Body"}, Children: e.Body}
	root.Children = append(root.Children, &body)
	return root.AppendDocTo(dst)
}

// WriteTo serializes the envelope into a pooled buffer and writes it to
// w in a single Write call. It implements io.WriterTo.
func (e *Envelope) WriteTo(w io.Writer) (int64, error) {
	return xmlsoap.WriteRendered(w, e.AppendTo)
}

// Marshal serializes the envelope as a complete XML document into a
// freshly allocated exact-size slice. Hot paths that can reuse buffers
// should prefer AppendTo (or wsa.AppendEnvelope, which adds the
// envelope-skeleton cache on top).
func (e *Envelope) Marshal() ([]byte, error) {
	return xmlsoap.Render(e.AppendTo)
}

// Clone returns a deep copy. Strings still alias their source (for a
// parsed envelope, the input buffer); use Detach when the copy must
// outlive the buffer the envelope was parsed from.
func (e *Envelope) Clone() *Envelope {
	c := &Envelope{Version: e.Version}
	for _, h := range e.Header {
		c.Header = append(c.Header, h.Clone())
	}
	for _, b := range e.Body {
		c.Body = append(c.Body, b.Clone())
	}
	return c
}

// Detach returns a deep copy whose strings are freshly allocated, so the
// copy stays valid after the buffer the envelope was parsed from is
// released or recycled. Any parsed envelope handed across an exchange
// boundary (the MSG-Dispatcher's anonymous-reply waiter is the canonical
// case) must travel detached.
func (e *Envelope) Detach() *Envelope {
	c := &Envelope{Version: e.Version}
	for _, h := range e.Header {
		c.Header = append(c.Header, h.Detach())
	}
	for _, b := range e.Body {
		c.Body = append(c.Body, b.Detach())
	}
	return c
}

// Errors returned by Parse.
var (
	ErrNotSOAP     = errors.New("soap: root element is not a SOAP Envelope")
	ErrMissingBody = errors.New("soap: envelope has no Body")
)

// Parse decodes one SOAP envelope (either version) from data.
//
// The envelope's strings and subtrees alias data (xmlsoap's zero-copy
// aliasing contract): data must not be modified while the envelope is
// live, and header values or body elements retained past the exchange
// that produced data must be copied out first (strings.Clone,
// xmlsoap.Element.Detach, wsa.Headers.Detach, Envelope.Detach). HTTP
// bodies in this stack live in pooled buffers (httpx reads request and
// response bodies into xmlsoap.GetBuffer storage), so an envelope parsed
// from one is valid only until the exchange's owner releases the buffer
// — within an httpx handler, until Serve returns; for an httpx client
// response, until Response.Release.
func Parse(data []byte) (*Envelope, error) {
	root, err := xmlsoap.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	return FromTree(root)
}

// FromTree interprets an already-parsed element tree as an envelope. The
// envelope takes ownership of root's Header and Body child slices
// (capacity-capped, so appends reallocate) instead of copying them; the
// tree must not be used independently afterwards. Parse discards the
// tree, which is exactly this pattern.
func FromTree(root *xmlsoap.Element) (*Envelope, error) {
	var v Version
	switch {
	case root.Name.Space == NS11 && root.Name.Local == "Envelope":
		v = V11
	case root.Name.Space == NS12 && root.Name.Local == "Envelope":
		v = V12
	default:
		return nil, fmt.Errorf("%w (got %s)", ErrNotSOAP, root.Name)
	}
	ns := v.NS()
	env := New(v)
	if hdr := root.Child(ns, "Header"); hdr != nil {
		env.Header = hdr.Children[:len(hdr.Children):len(hdr.Children)]
	}
	body := root.Child(ns, "Body")
	if body == nil {
		return nil, ErrMissingBody
	}
	env.Body = body.Children[:len(body.Children):len(body.Children)]
	return env, nil
}

// MustUnderstandViolation returns the first header block that carries
// mustUnderstand="1" (or "true") in a namespace outside understood, or nil
// if every marked block is understood. Intermediaries use it to refuse
// messages they would otherwise silently mishandle.
func (e *Envelope) MustUnderstandViolation(understood ...string) *xmlsoap.Element {
	ns := e.Version.NS()
	isUnderstood := func(space string) bool {
		for _, u := range understood {
			if u == space {
				return true
			}
		}
		return false
	}
	for _, h := range e.Header {
		mu, ok := h.Attr(ns, "mustUnderstand")
		if !ok || (mu != "1" && mu != "true") {
			continue
		}
		if !isUnderstood(h.Name.Space) {
			return h
		}
	}
	return nil
}
