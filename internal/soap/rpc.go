package soap

import (
	"fmt"

	"repro/internal/xmlsoap"
)

// Param is one named RPC parameter. Values are string-typed — the echo and
// administrative operations in this system (like the paper's test
// workload) need no richer type map, and keeping values as strings avoids
// inventing an encoding the paper does not describe.
type Param struct {
	Name  string
	Value string
}

// RPCRequest builds a SOAP-RPC request envelope: one wrapper element named
// after the operation in the service namespace, one child per parameter.
func RPCRequest(v Version, serviceNS, operation string, params ...Param) *Envelope {
	wrapper := xmlsoap.New(serviceNS, operation)
	for _, p := range params {
		wrapper.Add(xmlsoap.NewText("", p.Name, p.Value))
	}
	return New(v).SetBody(wrapper)
}

// RPCResponse builds the conventional <opResponse> envelope.
func RPCResponse(v Version, serviceNS, operation string, results ...Param) *Envelope {
	wrapper := xmlsoap.New(serviceNS, operation+"Response")
	for _, p := range results {
		wrapper.Add(xmlsoap.NewText("", p.Name, p.Value))
	}
	return New(v).SetBody(wrapper)
}

// Call is a decoded RPC request: operation name, service namespace, and
// parameters in document order.
type Call struct {
	ServiceNS string
	Operation string
	Params    []Param
}

// Param returns the named parameter value and whether it was present.
func (c *Call) Param(name string) (string, bool) {
	for _, p := range c.Params {
		if p.Name == name {
			return p.Value, true
		}
	}
	return "", false
}

// ParseRPC decodes the RPC wrapper from an envelope body.
func ParseRPC(e *Envelope) (*Call, error) {
	body := e.BodyElement()
	if body == nil {
		return nil, fmt.Errorf("soap: empty RPC body")
	}
	if f, ok := AsFault(e); ok {
		return nil, f
	}
	call := &Call{ServiceNS: body.Name.Space, Operation: body.Name.Local}
	for _, p := range body.Children {
		call.Params = append(call.Params, Param{Name: p.Name.Local, Value: p.Text})
	}
	return call, nil
}

// ParseRPCResponse decodes an <opResponse> envelope, returning the result
// parameters. A fault in the body is returned as *Fault error.
func ParseRPCResponse(e *Envelope, operation string) ([]Param, error) {
	if f, ok := AsFault(e); ok {
		return nil, f
	}
	body := e.BodyElement()
	if body == nil {
		return nil, fmt.Errorf("soap: empty RPC response body")
	}
	if body.Name.Local != operation+"Response" {
		return nil, fmt.Errorf("soap: unexpected RPC response element %s (want %sResponse)",
			body.Name, operation)
	}
	var out []Param
	for _, p := range body.Children {
		out = append(out, Param{Name: p.Name.Local, Value: p.Text})
	}
	return out, nil
}
