package soap

import (
	"fmt"
	"strings"

	"repro/internal/httpx"
	"repro/internal/xmlsoap"
)

// Fault is a SOAP fault in version-independent form.
type Fault struct {
	// Code is the fault code local name: "Client"/"Server" for 1.1,
	// mapped to "Sender"/"Receiver" for 1.2.
	Code string
	// Reason is the human-readable fault string.
	Reason string
	// Detail carries application-specific fault detail (optional).
	Detail string
}

// Standard fault codes.
const (
	FaultClient          = "Client"
	FaultServer          = "Server"
	FaultMustUnderstand  = "MustUnderstand"
	FaultVersionMismatch = "VersionMismatch"
)

// Error implements error so services can return faults directly.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.Reason)
}

// Detach returns a copy with freshly allocated strings. A fault
// extracted from a parsed envelope aliases the message buffer (the
// xmlsoap aliasing contract); callers that surface it as an error after
// releasing a pooled body must detach it first.
func (f *Fault) Detach() *Fault {
	return &Fault{
		Code:   strings.Clone(f.Code),
		Reason: strings.Clone(f.Reason),
		Detail: strings.Clone(f.Detail),
	}
}

// Envelope wraps the fault in an envelope of the given version.
func (f *Fault) Envelope(v Version) *Envelope {
	return New(v).SetBody(f.Element(v))
}

// FaultBytes renders a fault envelope document, falling back to the bare
// reason text if marshaling fails. Every server-side refusal path uses
// it, so the rendering (and its fallback) lives in one place.
// ReplyFault answers an HTTP exchange with a rendered SOAP 1.1 fault —
// the one fault-reply helper every Exchange handler in the stack shares
// (FaultBytes returns GC-owned bytes, so ReplyBytes is safe).
func ReplyFault(ex *httpx.Exchange, status int, code, reason string) {
	ex.Header().Set("Content-Type", V11.ContentType())
	ex.ReplyBytes(status, FaultBytes(V11, code, reason))
}

func FaultBytes(v Version, code, reason string) []byte {
	f := &Fault{Code: code, Reason: reason}
	body, err := f.Envelope(v).Marshal()
	if err != nil {
		return []byte(reason)
	}
	return body
}

// Element renders the fault body element for the given version.
func (f *Fault) Element(v Version) *xmlsoap.Element {
	ns := v.NS()
	if v == V12 {
		code := f.Code
		switch code {
		case FaultClient:
			code = "Sender"
		case FaultServer:
			code = "Receiver"
		}
		el := xmlsoap.New(ns, "Fault").Add(
			xmlsoap.New(ns, "Code").Add(xmlsoap.NewText(ns, "Value", "soap12:"+code)),
			xmlsoap.New(ns, "Reason").Add(xmlsoap.NewText(ns, "Text", f.Reason)),
		)
		if f.Detail != "" {
			el.Add(xmlsoap.NewText(ns, "Detail", f.Detail))
		}
		return el
	}
	// SOAP 1.1: faultcode/faultstring/detail are unqualified.
	el := xmlsoap.New(ns, "Fault").Add(
		xmlsoap.NewText("", "faultcode", "soapenv:"+f.Code),
		xmlsoap.NewText("", "faultstring", f.Reason),
	)
	if f.Detail != "" {
		el.Add(xmlsoap.New("", "detail").Add(xmlsoap.NewText("", "message", f.Detail)))
	}
	return el
}

// AsFault inspects an envelope body and extracts a Fault if present, along
// with whether one was found.
func AsFault(e *Envelope) (*Fault, bool) {
	body := e.BodyElement()
	if body == nil || body.Name.Local != "Fault" || body.Name.Space != e.Version.NS() {
		return nil, false
	}
	ns := e.Version.NS()
	f := &Fault{}
	if e.Version == V12 {
		if code := body.Path(ns, "Code", "Value"); code != nil {
			f.Code = stripPrefix(code.Text)
		}
		if reason := body.Path(ns, "Reason", "Text"); reason != nil {
			f.Reason = reason.Text
		}
		f.Detail = body.ChildText(ns, "Detail")
		switch f.Code {
		case "Sender":
			f.Code = FaultClient
		case "Receiver":
			f.Code = FaultServer
		}
		return f, true
	}
	f.Code = stripPrefix(body.ChildText("", "faultcode"))
	f.Reason = body.ChildText("", "faultstring")
	if d := body.Child("", "detail"); d != nil {
		f.Detail = d.ChildText("", "message")
		if f.Detail == "" {
			f.Detail = d.Text
		}
	}
	return f, true
}

// stripPrefix drops a namespace prefix from a QName-valued string.
func stripPrefix(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return s[i+1:]
		}
	}
	return s
}
