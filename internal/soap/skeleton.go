package soap

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/xmlsoap"
)

// Skeleton is a precompiled envelope wire image: the constant byte
// segments of a (version, header-shape) envelope with per-message splice
// slots between them — text slots for the WS-Addressing values that
// change on every message, and one body splice point where payload
// subtrees are rendered with the exact serializer context they would
// have had in a whole-document marshal. Compiling the framing once and
// splicing per message removes the dominant constant cost of the
// dispatch hot path; output is byte-identical to Envelope.Marshal.
//
// A Skeleton is immutable after compilation and safe for concurrent use.
type Skeleton struct {
	// segs holds len(slots)+2 segments: segs[0], slot 0, segs[1],
	// slot 1, ..., segs[n], body splice, segs[n+1].
	segs      [][]byte
	bodyState *xmlsoap.State
}

// Errors surfaced by skeleton compilation and rendering.
var (
	ErrSkeletonBody  = errors.New("soap: skeleton template body must hold exactly one placeholder element")
	ErrSkeletonSlots = errors.New("soap: slot value count does not match skeleton")
)

// CompileSkeleton builds a Skeleton from a template envelope whose
// variable text fields hold the given sentinel values. Each sentinel
// must occur exactly once, in document order, and contain no
// XML-escapable bytes. The template body must hold exactly one
// placeholder element, which is discarded: renders splice real payloads
// at its position.
func CompileSkeleton(env *Envelope, sentinels []string) (*Skeleton, error) {
	tree := env.Tree()
	body := tree.Child(env.Version.NS(), "Body")
	if body == nil || len(body.Children) != 1 {
		return nil, ErrSkeletonBody
	}
	before, st, after, err := xmlsoap.MarshalDocSplit(tree, body)
	if err != nil {
		return nil, fmt.Errorf("soap: compiling skeleton: %w", err)
	}
	segs := make([][]byte, 0, len(sentinels)+2)
	rest := before
	for _, s := range sentinels {
		i := bytes.Index(rest, []byte(s))
		if i < 0 {
			return nil, fmt.Errorf("soap: skeleton sentinel %q not found in template", s)
		}
		segs = append(segs, rest[:i])
		rest = rest[i+len(s):]
	}
	segs = append(segs, rest, after)
	return &Skeleton{segs: segs, bodyState: st}, nil
}

// Append renders one message into dst: values[i] is text-escaped into
// slot i and the body elements are serialized at the body splice point.
// With a reused dst this is allocation-free.
func (sk *Skeleton) Append(dst []byte, values []string, body []*xmlsoap.Element) ([]byte, error) {
	if len(values) != len(sk.segs)-2 {
		return nil, ErrSkeletonSlots
	}
	for i, v := range values {
		dst = append(dst, sk.segs[i]...)
		dst = xmlsoap.AppendEscapedText(dst, v)
	}
	dst = append(dst, sk.segs[len(sk.segs)-2]...)
	dst, err := sk.bodyState.AppendElements(dst, body...)
	if err != nil {
		return nil, err
	}
	return append(dst, sk.segs[len(sk.segs)-1]...), nil
}

// AppendSpliced renders one message with raw body bytes at the body
// splice point instead of serializing an element tree: values[i] is
// text-escaped into slot i exactly as Append does, and body is copied
// verbatim. The caller must have proved body is canonical serializer
// output for this skeleton's splice state (the wsa skim's scanner is
// the one prover in the tree); an unproven body would break the
// byte-identity contract, not just formatting. body must be non-empty —
// an empty body self-closes and has no splice point.
func (sk *Skeleton) AppendSpliced(dst []byte, values []string, body []byte) ([]byte, error) {
	if len(values) != len(sk.segs)-2 {
		return nil, ErrSkeletonSlots
	}
	if len(body) == 0 {
		return nil, ErrSkeletonBody
	}
	for i, v := range values {
		dst = append(dst, sk.segs[i]...)
		dst = xmlsoap.AppendEscapedText(dst, v)
	}
	dst = append(dst, sk.segs[len(sk.segs)-2]...)
	dst = append(dst, body...)
	return append(dst, sk.segs[len(sk.segs)-1]...), nil
}
