package experiments

import (
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch/msgdisp"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/loadgen"
	"repro/internal/msgbox"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/stats"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// Fig6Series selects one of the three asynchronous configurations.
type Fig6Series int

const (
	// SeriesOneWay sends directly to the Web Service; its replies to
	// the firewalled client are blocked ("One way (response blocked)
	// with WS-MSG").
	SeriesOneWay Fig6Series = iota
	// SeriesMsgDispatcher routes through the MSG-Dispatcher, replies
	// still aimed at the firewalled client ("With MSG-Dispatcher").
	SeriesMsgDispatcher
	// SeriesMsgBox routes through the MSG-Dispatcher with replies
	// delivered to a WS-MsgBox mailbox ("With MSG-D and MsgBox").
	SeriesMsgBox
)

func (s Fig6Series) String() string {
	switch s {
	case SeriesOneWay:
		return "One way (response blocked)"
	case SeriesMsgDispatcher:
		return "With MSG-Dispatcher"
	default:
		return "With MSG-D and MsgBox"
	}
}

// Fig6Options parameterizes the Figure 6 reproduction.
type Fig6Options struct {
	// Clients lists the x-axis points (paper: 0–50).
	Clients []int
	// Duration is the per-point run length (paper: one minute).
	Duration time.Duration
	// Seed feeds the deterministic network.
	Seed int64
}

func (o Fig6Options) withDefaults() Fig6Options {
	if len(o.Clients) == 0 {
		o.Clients = []int{1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
	}
	if o.Duration <= 0 {
		o.Duration = time.Minute
	}
	if o.Seed == 0 {
		o.Seed = 6
	}
	return o
}

// Fig6Row is one x-axis point: all three series.
type Fig6Row struct {
	Clients       int
	OneWay        stats.RunReport
	MsgDispatcher stats.RunReport
	MsgBox        stats.RunReport
}

// RunFig6 regenerates Figure 6 ("Asynchronous communication").
func RunFig6(opt Fig6Options) []Fig6Row {
	opt = opt.withDefaults()
	rows := make([]Fig6Row, 0, len(opt.Clients))
	for _, n := range opt.Clients {
		rows = append(rows, Fig6Row{
			Clients:       n,
			OneWay:        RunFig6Point(opt, n, SeriesOneWay),
			MsgDispatcher: RunFig6Point(opt, n, SeriesMsgDispatcher),
			MsgBox:        RunFig6Point(opt, n, SeriesMsgBox),
		})
	}
	return rows
}

// RunFig6Point measures one (clients, series) cell on a fresh testbed.
func RunFig6Point(opt Fig6Options, clients int, series Fig6Series) stats.RunReport {
	opt = opt.withDefaults()
	tb := newTestbed(opt.Seed, fineCoalesce)
	defer tb.Close()

	// The test clients sit behind an institutional firewall that only
	// allows outgoing connections — the paper's INRIA situation.
	cliHost := tb.nw.AddHost("client", profileClientIUHigh(),
		netsim.WithFirewall(netsim.OutboundOnly()), netsim.WithMaxConns(8192))

	// The message-style echo Web Service. Its reply workers are a
	// bounded pool (a 2004 servlet container); replies to the
	// firewalled client hold a worker for the full connect timeout.
	wsHost := tb.nw.AddHost("ws", profileSite(), netsim.WithMaxConns(2048))
	wsClient := httpx.NewClient(wsHost, httpx.ClientConfig{Clock: tb.clk})
	echo := echoservice.NewAsync(tb.clk, wsClient, 2*time.Millisecond)
	echo.OwnAddress = "http://ws:81/msg"
	echo.ReplyTimeout = 21 * time.Second
	if err := echo.LimitReplies(256, 256); err != nil {
		panic(err)
	}
	tb.onClose(echo.Close)
	lnWS, err := wsHost.Listen(81)
	if err != nil {
		panic(err)
	}
	srvWS := httpx.NewServer(echo, httpx.ServerConfig{Clock: tb.clk})
	srvWS.Start(lnWS)
	tb.onClose(func() { srvWS.Close() })

	// Dispatcher + mailbox site services (used by two of the series).
	var wsd *core.Server
	if series != SeriesOneWay {
		wsdHost := tb.nw.AddHost("wsd", profileSite(), netsim.WithMaxConns(4096))
		wsd, err = core.New(core.Config{
			Clock:      tb.clk,
			HostName:   "wsd",
			Listen:     func(port int) (net.Listener, error) { return wsdHost.Listen(port) },
			Dialer:     wsdHost,
			MsgPort:    9100,
			MsgBoxPort: 9200,
			Policy:     registry.PolicyFirst,
			MsgBox:     msgbox.Config{BoxCap: 1 << 20},
			// A 2004-scale dispatcher buffer: when reply deliveries
			// to firewalled clients stall the WsThreads, queues fill
			// and new sends bounce — the paper's slowest series.
			Msg: msgdisp.Config{QueueCap: 256},
		})
		if err != nil {
			panic(err)
		}
		wsd.Registry.Register("echo", "http://ws:81/msg")
		if err := wsd.Start(); err != nil {
			panic(err)
		}
		tb.onClose(wsd.Stop)
	}

	// Reply destinations per client.
	replyAddrs := make([]string, clients)
	switch series {
	case SeriesMsgBox:
		// One mailbox per client, created over RPC before the run.
		adminClient := httpx.NewClient(cliHost, httpx.ClientConfig{Clock: tb.clk})
		for i := range replyAddrs {
			replyAddrs[i] = createMailbox(tb, adminClient)
		}
	default:
		// The client's own (firewalled, unreachable) endpoint.
		for i := range replyAddrs {
			replyAddrs[i] = fmt.Sprintf("http://client:%d/msg", 9000+i)
		}
	}

	// Target of the sends.
	targetAddr, targetPath := "ws:81", "/msg"
	toHeader := "http://ws:81/msg"
	if series != SeriesOneWay {
		targetAddr, targetPath = "wsd:9100", "/msg"
		toHeader = "logical:echo"
	}

	clientsPool := make([]*httpx.Client, clients)
	for i := range clientsPool {
		clientsPool[i] = httpx.NewClient(cliHost, httpx.ClientConfig{
			Clock:          tb.clk,
			RequestTimeout: 10 * time.Second,
			MaxIdlePerHost: 1,
		})
	}

	return loadgen.Run(loadgen.Config{
		Clock:   tb.clk,
		Clients: clients,
		// 500ms think time: the per-thread pacing of the test client.
		ThinkTime: 500 * time.Millisecond,
		Duration:  opt.Duration,
		Series:    series.String(),
	}, func(clientID, seq int) error {
		env := soap.New(soap.V11).SetBody(
			xmlsoap.NewText(echoservice.EchoNS, "echo", fmt.Sprintf("m-%d-%d", clientID, seq)))
		(&wsa.Headers{
			To:        toHeader,
			Action:    echoservice.EchoNS + ":echo",
			MessageID: fmt.Sprintf("urn:fig6:%d:%d", clientID, seq),
			ReplyTo:   &wsa.EPR{Address: replyAddrs[clientID]},
		}).Apply(env)
		buf := xmlsoap.GetBuffer()
		defer xmlsoap.PutBuffer(buf)
		raw, err := wsa.AppendEnvelope(buf.B, env)
		if err != nil {
			return err
		}
		buf.B = raw
		req := httpx.NewRequest("POST", targetPath, raw)
		req.Header.Set("Content-Type", soap.V11.ContentType())
		resp, err := clientsPool[clientID].Do(targetAddr, req)
		if err != nil {
			return err
		}
		status := resp.Status
		resp.Release()
		if status != httpx.StatusAccepted && status != httpx.StatusOK {
			return fmt.Errorf("HTTP %d", status)
		}
		return nil
	})
}

// createMailbox provisions one mailbox over the management RPC and
// returns its delivery address.
func createMailbox(tb *testbed, client *httpx.Client) string {
	body, err := soap.RPCRequest(soap.V11, msgbox.ServiceNS, msgbox.OpCreate).Marshal()
	if err != nil {
		panic(err)
	}
	req := httpx.NewRequest("POST", "/mbox", body)
	req.Header.Set("Content-Type", soap.V11.ContentType())
	resp, err := client.Do("wsd:9200", req)
	if err != nil {
		panic(fmt.Sprintf("fig6: mailbox create: %v", err))
	}
	defer resp.Release()
	env, err := soap.Parse(resp.Body)
	if err != nil {
		panic(err)
	}
	results, err := soap.ParseRPCResponse(env, msgbox.OpCreate)
	if err != nil {
		panic(err)
	}
	for _, p := range results {
		if p.Name == "address" {
			// The param aliases the pooled response body; the address
			// outlives this exchange (it is every message's ReplyTo).
			return strings.Clone(p.Value)
		}
	}
	panic("fig6: mailbox create returned no address")
}

// FormatFig6 renders the rows like the paper's plot data.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("# Figure 6 — Asynchronous communication (firewalled clients)\n")
	b.WriteString("# clients  oneway_msg_per_min  msgdisp_msg_per_min  msgbox_msg_per_min\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d %19.0f %20.0f %19.0f\n",
			r.Clients, r.OneWay.PerMinute(), r.MsgDispatcher.PerMinute(), r.MsgBox.PerMinute())
	}
	return b.String()
}
