package experiments

import (
	"testing"
	"time"
)

// The tests here run scaled-down versions of every experiment and assert
// the *shapes* the paper reports, not absolute numbers. Full-length runs
// live behind cmd/experiments and the top-level benchmarks.

func TestTable1Matrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full interaction matrix in -short mode")
	}
	cells := RunTable1(Table1Options{})
	byQ := map[int]Table1Cell{}
	for _, c := range cells {
		byQ[c.Quadrant] = c
	}

	// Quadrant 1: forwarding RPC works, but a response slower than the
	// HTTP/TCP timeout kills it ("Limited but very popular").
	if !byQ[1].FastOK {
		t.Errorf("Q1 fast failed: %s", byQ[1].FastDetail)
	}
	if byQ[1].SlowOK {
		t.Error("Q1 slow succeeded; RPC should die on slow responses")
	}
	// Quadrant 2: works only when the reply beats the RPC window
	// ("Very limited").
	if !byQ[2].FastOK {
		t.Errorf("Q2 fast failed: %s", byQ[2].FastDetail)
	}
	if byQ[2].SlowOK {
		t.Error("Q2 slow succeeded; late replies must miss the window")
	}
	// Quadrant 3: semantics translation works; the RPC server remains
	// the bottleneck (slow responses still fail).
	if !byQ[3].FastOK {
		t.Errorf("Q3 fast failed: %s", byQ[3].FastDetail)
	}
	if byQ[3].SlowOK {
		t.Error("Q3 slow succeeded; the RPC leg should still time out")
	}
	// Quadrant 4: "Unlimited" — even the slow service completes.
	if !byQ[4].FastOK {
		t.Errorf("Q4 fast failed: %s", byQ[4].FastDetail)
	}
	if !byQ[4].SlowOK {
		t.Errorf("Q4 slow failed: %s — messaging must tolerate slow responses", byQ[4].SlowDetail)
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 sweep in -short mode")
	}
	rows := RunFig4(Fig4Options{
		Clients:  []int{10, 200, 1000},
		Duration: 15 * time.Second,
	})
	small, mid, big := rows[0], rows[1], rows[2]

	// No (or almost no) loss at 10 clients.
	if small.Direct.LossRatio() > 0.05 {
		t.Errorf("10 clients: direct loss = %.2f, want ~0", small.Direct.LossRatio())
	}
	// Massive loss at 1000 clients: far more lost than transmitted.
	if big.Direct.NotSent < big.Direct.Transmitted {
		t.Errorf("1000 clients: not_sent=%d < transmitted=%d, want loss to dominate",
			big.Direct.NotSent, big.Direct.Transmitted)
	}
	// Transmitted throughput saturates: 1000 clients deliver no more
	// than ~2x what 200 clients do (the 288kbps uplink is the wall).
	if big.Direct.Transmitted > 2*mid.Direct.Transmitted+100 {
		t.Errorf("transmitted kept scaling: mid=%d big=%d",
			mid.Direct.Transmitted, big.Direct.Transmitted)
	}
	// The dispatcher has "little negative impact": within 2x on the
	// saturated plateau.
	if mid.Dispatcher.Transmitted*2 < mid.Direct.Transmitted {
		t.Errorf("dispatcher collapsed: direct=%d dispatcher=%d",
			mid.Direct.Transmitted, mid.Dispatcher.Transmitted)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 sweep in -short mode")
	}
	rows := RunFig5(Fig5Options{
		Clients:  []int{25, 200, 300},
		Duration: 15 * time.Second,
	})
	low, plateau, high := rows[0], rows[1], rows[2]

	// No lost packets in good conditions.
	for _, r := range rows {
		if r.Direct.NotSent > 0 || r.Dispatcher.NotSent > 0 {
			t.Errorf("%d clients: lost packets in good conditions (%d/%d)",
				r.Clients, r.Direct.NotSent, r.Dispatcher.NotSent)
		}
	}
	// Throughput rises from 25 to 200 clients...
	if plateau.Direct.PerMinute() < 1.5*low.Direct.PerMinute() {
		t.Errorf("no rise: 25 clients %.0f/min vs 200 clients %.0f/min",
			low.Direct.PerMinute(), plateau.Direct.PerMinute())
	}
	// ...then flattens: 300 clients is not meaningfully better than 200.
	if high.Direct.PerMinute() > 1.25*plateau.Direct.PerMinute() {
		t.Errorf("no plateau: 200 clients %.0f/min vs 300 clients %.0f/min",
			plateau.Direct.PerMinute(), high.Direct.PerMinute())
	}
	// Dispatcher ≈ direct (within 25% on the plateau).
	ratio := plateau.Dispatcher.PerMinute() / plateau.Direct.PerMinute()
	if ratio < 0.75 || ratio > 1.25 {
		t.Errorf("dispatcher deviates: ratio = %.2f", ratio)
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweep in -short mode")
	}
	opt := Fig6Options{Duration: 20 * time.Second}

	// At 5 clients the three configurations are comparable (within 3x).
	small5 := Fig6Row{
		Clients:       5,
		OneWay:        RunFig6Point(opt, 5, SeriesOneWay),
		MsgDispatcher: RunFig6Point(opt, 5, SeriesMsgDispatcher),
		MsgBox:        RunFig6Point(opt, 5, SeriesMsgBox),
	}
	if small5.MsgBox.PerMinute() > 3*small5.OneWay.PerMinute()+60 {
		t.Errorf("5 clients: msgbox %.0f vs oneway %.0f — should be comparable",
			small5.MsgBox.PerMinute(), small5.OneWay.PerMinute())
	}

	// At 40 clients MsgBox is clearly the best (paper: best above 10).
	big := Fig6Row{
		Clients:       40,
		OneWay:        RunFig6Point(opt, 40, SeriesOneWay),
		MsgDispatcher: RunFig6Point(opt, 40, SeriesMsgDispatcher),
		MsgBox:        RunFig6Point(opt, 40, SeriesMsgBox),
	}
	if big.MsgBox.PerMinute() <= big.OneWay.PerMinute() {
		t.Errorf("40 clients: msgbox %.0f <= oneway %.0f",
			big.MsgBox.PerMinute(), big.OneWay.PerMinute())
	}
	if big.MsgBox.PerMinute() <= big.MsgDispatcher.PerMinute() {
		t.Errorf("40 clients: msgbox %.0f <= msgdisp %.0f",
			big.MsgBox.PerMinute(), big.MsgDispatcher.PerMinute())
	}
	// Plain MSG-Dispatcher (replies blocked) is the slowest of the
	// three at scale, as the paper reports.
	if big.MsgDispatcher.PerMinute() > big.OneWay.PerMinute() {
		t.Errorf("40 clients: msgdisp %.0f > oneway %.0f — paper has msgdisp slowest",
			big.MsgDispatcher.PerMinute(), big.OneWay.PerMinute())
	}
}

func TestFig6BugCliff(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6bug sweep in -short mode")
	}
	rows := RunFig6Bug(Fig6BugOptions{
		Clients:  []int{20, 80},
		Duration: 20 * time.Second,
	})
	low, high := rows[0], rows[1]

	// Below the cliff the buggy mailbox survives.
	if low.BuggyOOMs != 0 {
		t.Errorf("20 clients: buggy mailbox OOMed %d times", low.BuggyOOMs)
	}
	// Above the cliff it throws OutOfMemoryError...
	if high.BuggyOOMs == 0 {
		t.Error("80 clients: buggy mailbox never OOMed")
	}
	// ...while the fixed design stores everything without incident.
	if high.FixedStored == 0 {
		t.Error("fixed mailbox stored nothing")
	}
	if high.BuggyStored >= high.FixedStored {
		t.Errorf("buggy stored %d >= fixed %d at 80 clients",
			high.BuggyStored, high.FixedStored)
	}
}
