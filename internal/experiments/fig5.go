package experiments

import (
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/stats"
)

// Fig5Options parameterizes the Figure 5 reproduction: RPC echo in "good
// conditions" (IU backbone ↔ inriaFast), messages/minute vs clients,
// direct vs through the RPC-Dispatcher.
type Fig5Options struct {
	// Clients lists the x-axis points (paper: 0–300).
	Clients []int
	// Duration is the per-point run length (paper: one minute).
	Duration time.Duration
	// Seed feeds the deterministic network.
	Seed int64
}

func (o Fig5Options) withDefaults() Fig5Options {
	if len(o.Clients) == 0 {
		o.Clients = []int{10, 25, 50, 100, 150, 200, 250, 300}
	}
	if o.Duration <= 0 {
		o.Duration = time.Minute
	}
	if o.Seed == 0 {
		o.Seed = 5
	}
	return o
}

// Fig5Row is one x-axis point of Figure 5.
type Fig5Row struct {
	Clients    int
	Direct     stats.RunReport
	Dispatcher stats.RunReport
}

// RunFig5 regenerates Figure 5 ("RPC communication: hight connectivity").
func RunFig5(opt Fig5Options) []Fig5Row {
	opt = opt.withDefaults()
	rows := make([]Fig5Row, 0, len(opt.Clients))
	for _, n := range opt.Clients {
		row := Fig5Row{Clients: n}
		row.Direct = runFig5Point(opt, n, false)
		row.Dispatcher = runFig5Point(opt, n, true)
		rows = append(rows, row)
	}
	return rows
}

func runFig5Point(opt Fig5Options, clients int, viaDispatcher bool) stats.RunReport {
	tb := newTestbed(opt.Seed, coarseCoalesce)
	defer tb.Close()

	// The IU backbone test host: plenty of bandwidth, trans-Atlantic
	// latency, ample sockets.
	cliHost := tb.nw.AddHost("iuhigh", profileClientIUHigh(), netsim.WithMaxConns(8192))

	// inriaFast: one modeled CPU (MaxHandlers 1) at 10ms per call caps
	// the service at ~100 calls/s ≈ 6000 messages/minute — the plateau
	// the paper reaches after ~200 clients.
	wsHost := tb.nw.AddHost("inriafast", profileSite(), netsim.WithMaxConns(2048))
	echo := echoservice.NewRPC(tb.clk, serviceTimeFast)
	lnWS, err := wsHost.Listen(80)
	if err != nil {
		panic(err)
	}
	srvWS := httpx.NewServer(echo, httpx.ServerConfig{Clock: tb.clk, MaxHandlers: 1})
	srvWS.Start(lnWS)
	tb.onClose(func() { srvWS.Close() })

	targetAddr, targetPath := "inriafast:80", "/"
	if viaDispatcher {
		wsdHost := tb.nw.AddHost("wsd", profileSite(), netsim.WithMaxConns(4096))
		wsd, err := core.New(core.Config{
			Clock:    tb.clk,
			HostName: "wsd",
			Listen:   func(port int) (net.Listener, error) { return wsdHost.Listen(port) },
			Dialer:   wsdHost,
			RPCPort:  9000,
			Policy:   registry.PolicyFirst,
		})
		if err != nil {
			panic(err)
		}
		wsd.Registry.Register("echo", "http://inriafast:80/")
		if err := wsd.Start(); err != nil {
			panic(err)
		}
		tb.onClose(wsd.Stop)
		targetAddr, targetPath = "wsd:9000", "/rpc/echo"
	}

	body := mustEnvelope(soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
		soap.Param{Name: "message", Value: strings.Repeat("x", 64)}))

	clientsPool := make([]*httpx.Client, clients)
	for i := range clientsPool {
		clientsPool[i] = httpx.NewClient(cliHost, httpx.ClientConfig{
			Clock:          tb.clk,
			RequestTimeout: 30 * time.Second,
			MaxIdlePerHost: 1,
		})
	}

	series := "Direct WS-RPC"
	if viaDispatcher {
		series = "With RPC-Dispatcher"
	}
	return loadgen.Run(loadgen.Config{
		Clock:   tb.clk,
		Clients: clients,
		// The 2s think time models the paper's test machine running
		// hundreds of client threads on one CPU: per-client rate is
		// low, so aggregate throughput keeps rising until ~200
		// clients where the service CPU saturates.
		ThinkTime: 2 * time.Second,
		Duration:  opt.Duration,
		Series:    series,
	}, func(clientID, seq int) error {
		req := httpx.NewRequest("POST", targetPath, body)
		req.Header.Set("Content-Type", soap.V11.ContentType())
		resp, err := clientsPool[clientID].Do(targetAddr, req)
		if err != nil {
			return err
		}
		status := resp.Status
		resp.Release()
		if status != httpx.StatusOK {
			return fmt.Errorf("HTTP %d", status)
		}
		return nil
	})
}

// FormatFig5 renders the rows like the paper's plot data.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("# Figure 5 — RPC communication: hight connectivity (iuHigh <-> inriaFast)\n")
	b.WriteString("# clients  direct_msg_per_min  dispatcher_msg_per_min  direct_lost  disp_lost\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d %19.0f %23.0f %12d %10d\n",
			r.Clients, r.Direct.PerMinute(), r.Dispatcher.PerMinute(),
			r.Direct.NotSent, r.Dispatcher.NotSent)
	}
	return b.String()
}
