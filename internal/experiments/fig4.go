package experiments

import (
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/stats"
)

// Fig4Options parameterizes the Figure 4 reproduction: RPC echo over the
// "bad conditions" path (iuLow cable modem ↔ inriaSlow), direct vs through
// the RPC-Dispatcher, counting packets transmitted and packets not sent.
type Fig4Options struct {
	// Clients lists the x-axis points. Defaults to the paper's
	// {10, 100, 200, 500, 1000, 1500, 2000}.
	Clients []int
	// Duration is the per-point run length; the paper used one minute
	// of wall time, we use one minute of virtual time. Short runs
	// (e.g. 15s) preserve the shape for quick benchmarks.
	Duration time.Duration
	// Seed feeds the deterministic network.
	Seed int64
}

func (o Fig4Options) withDefaults() Fig4Options {
	if len(o.Clients) == 0 {
		o.Clients = []int{10, 100, 200, 500, 1000, 1500, 2000}
	}
	if o.Duration <= 0 {
		o.Duration = time.Minute
	}
	if o.Seed == 0 {
		o.Seed = 4
	}
	return o
}

// Fig4Row is one x-axis point: both series of the figure.
type Fig4Row struct {
	Clients    int
	Direct     stats.RunReport
	Dispatcher stats.RunReport
}

// RunFig4 regenerates Figure 4 ("RPC communication: low broadband").
func RunFig4(opt Fig4Options) []Fig4Row {
	opt = opt.withDefaults()
	rows := make([]Fig4Row, 0, len(opt.Clients))
	for _, n := range opt.Clients {
		row := Fig4Row{Clients: n}
		row.Direct = runFig4Point(opt, n, false)
		row.Dispatcher = runFig4Point(opt, n, true)
		rows = append(rows, row)
	}
	return rows
}

// runFig4Point measures one (clients, series) cell on a fresh testbed.
func runFig4Point(opt Fig4Options, clients int, viaDispatcher bool) stats.RunReport {
	tb := newTestbed(opt.Seed, coarseCoalesce)
	defer tb.Close()

	// The remote test client: the Bloomington cable modem. Plenty of
	// local sockets so the bottleneck is the wire and the server, as
	// in the paper.
	cliHost := tb.nw.AddHost("iulow", profileClientIULow(), netsim.WithMaxConns(8192))

	// inriaSlow runs the echo Web Service; its connection table is the
	// "limit somewhere between 100 and 500 concurrent connections".
	wsHost := tb.nw.AddHost("inriaslow", profileSite(), netsim.WithMaxConns(400))
	echo := echoservice.NewRPC(tb.clk, serviceTimeSlow)
	lnWS, err := wsHost.Listen(80)
	if err != nil {
		panic(err)
	}
	srvWS := httpx.NewServer(echo, httpx.ServerConfig{Clock: tb.clk})
	srvWS.Start(lnWS)
	tb.onClose(func() { srvWS.Close() })

	targetAddr, targetPath := "inriaslow:80", "/"
	if viaDispatcher {
		// The WS-Dispatcher in front of the web service, same site.
		// It needs two connections per in-flight call (client side +
		// service side), so its table is provisioned well above the
		// service's: the *service* stays the constrained resource,
		// as in the paper ("little negative impact on scalability").
		wsdHost := tb.nw.AddHost("wsd", profileSite(), netsim.WithMaxConns(8192))
		wsd, err := core.New(core.Config{
			Clock:    tb.clk,
			HostName: "wsd",
			Listen:   func(port int) (net.Listener, error) { return wsdHost.Listen(port) },
			Dialer:   wsdHost,
			RPCPort:  9000,
			Policy:   registry.PolicyFirst,
		})
		if err != nil {
			panic(err)
		}
		wsd.Registry.Register("echo", "http://inriaslow:80/")
		if err := wsd.Start(); err != nil {
			panic(err)
		}
		tb.onClose(wsd.Stop)
		targetAddr, targetPath = "wsd:9000", "/rpc/echo"
	}

	body := mustEnvelope(soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
		soap.Param{Name: "message", Value: strings.Repeat("x", 64)}))

	// One HTTP client (one kept-alive connection) per simulated client,
	// like the paper's per-connection test threads. A request that
	// cannot complete in 10s counts as a packet not sent; failed
	// attempts retry after a short pacing delay.
	clientsPool := make([]*httpx.Client, clients)
	for i := range clientsPool {
		clientsPool[i] = httpx.NewClient(cliHost, httpx.ClientConfig{
			Clock:          tb.clk,
			RequestTimeout: 10 * time.Second,
			DialTimeout:    10 * time.Second,
			MaxIdlePerHost: 1,
		})
	}

	series := "Direct WS"
	if viaDispatcher {
		series = "Dispatcher"
	}
	return loadgen.Run(loadgen.Config{
		Clock:          tb.clk,
		Clients:        clients,
		Duration:       opt.Duration,
		FailureBackoff: 200 * time.Millisecond,
		Series:         series,
	}, func(clientID, seq int) error {
		req := httpx.NewRequest("POST", targetPath, body)
		req.Header.Set("Content-Type", soap.V11.ContentType())
		resp, err := clientsPool[clientID].Do(targetAddr, req)
		if err != nil {
			return err
		}
		status := resp.Status
		resp.Release()
		if status != httpx.StatusOK {
			return fmt.Errorf("HTTP %d", status)
		}
		return nil
	})
}

// FormatFig4 renders the rows like the paper's gnuplot data.
func FormatFig4(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("# Figure 4 — RPC communication: low broadband (iuLow <-> inriaSlow)\n")
	b.WriteString("# clients  direct_transmitted  direct_not_sent  disp_transmitted  disp_not_sent\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d %19d %16d %17d %14d\n",
			r.Clients, r.Direct.Transmitted, r.Direct.NotSent,
			r.Dispatcher.Transmitted, r.Dispatcher.NotSent)
	}
	return b.String()
}

func mustEnvelope(env *soap.Envelope) []byte {
	raw, err := env.Marshal()
	if err != nil {
		panic(err)
	}
	return raw
}
