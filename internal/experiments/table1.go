package experiments

import (
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dispatch/msgdisp"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// Table1Options parameterizes the interaction-matrix reproduction.
type Table1Options struct {
	// SlowResponse is the service time of the "slow" variant — long
	// enough to outlive the RPC-side HTTP/TCP timeout (25s anonymous
	// wait, 30s client budget). Default 40s.
	SlowResponse time.Duration
	// Seed feeds the deterministic network.
	Seed int64
}

func (o Table1Options) withDefaults() Table1Options {
	if o.SlowResponse <= 0 {
		o.SlowResponse = 40 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Table1Cell is one quadrant of the paper's Table 1, exercised twice:
// with a fast service and with one whose response outlives RPC timeouts.
type Table1Cell struct {
	// Quadrant is the paper's cell number (1-4).
	Quadrant int
	// ClientStyle and ServiceStyle name the row and column.
	ClientStyle  string
	ServiceStyle string
	// PaperVerdict is the paper's qualitative assessment.
	PaperVerdict string
	// FastOK / SlowOK report whether the exchange completed.
	FastOK bool
	SlowOK bool
	// FastDetail / SlowDetail explain the outcomes.
	FastDetail string
	SlowDetail string
}

// RunTable1 exercises all four interaction quadrants.
func RunTable1(opt Table1Options) []Table1Cell {
	opt = opt.withDefaults()
	cells := []Table1Cell{
		{Quadrant: 1, ClientStyle: "RPC client", ServiceStyle: "RPC service",
			PaperVerdict: "Limited but very popular (RPC connection is forwarded)"},
		{Quadrant: 2, ClientStyle: "RPC client", ServiceStyle: "Messaging service",
			PaperVerdict: "Very limited (may not work at all if message reply comes too late)"},
		{Quadrant: 3, ClientStyle: "Messaging client", ServiceStyle: "RPC service",
			PaperVerdict: "Limited: RPC server is a bottleneck (translation of semantics)"},
		{Quadrant: 4, ClientStyle: "Messaging client", ServiceStyle: "Messaging service",
			PaperVerdict: "Unlimited (no transport time limit on sending response)"},
	}
	for i := range cells {
		cells[i].FastOK, cells[i].FastDetail = runQuadrant(opt, cells[i].Quadrant, 5*time.Millisecond)
		cells[i].SlowOK, cells[i].SlowDetail = runQuadrant(opt, cells[i].Quadrant, opt.SlowResponse)
	}
	return cells
}

// runQuadrant performs one echo exchange in the given interaction style
// and reports whether the caller obtained the echoed payload.
func runQuadrant(opt Table1Options, quadrant int, serviceTime time.Duration) (bool, string) {
	tb := newTestbed(opt.Seed, fineCoalesce)
	defer tb.Close()

	cliHost := tb.nw.AddHost("cli", profileClientIUHigh(),
		netsim.WithFirewall(netsim.OutboundOnly()), netsim.WithPrivateAddress(), netsim.WithMaxConns(512))
	wsHost := tb.nw.AddHost("ws", profileSite(),
		netsim.WithFirewall(netsim.OutboundOnlyExcept("wsd")))
	wsdHost := tb.nw.AddHost("wsd", profileSite(), netsim.WithMaxConns(2048))

	// Both service styles, behind the firewall.
	rpcEcho := echoservice.NewRPC(tb.clk, serviceTime)
	lnRPC, err := wsHost.Listen(80)
	if err != nil {
		panic(err)
	}
	srvRPC := httpx.NewServer(rpcEcho, httpx.ServerConfig{Clock: tb.clk})
	srvRPC.Start(lnRPC)
	tb.onClose(func() { srvRPC.Close() })

	wsClient := httpx.NewClient(wsHost, httpx.ClientConfig{Clock: tb.clk})
	asyncEcho := echoservice.NewAsync(tb.clk, wsClient, serviceTime)
	asyncEcho.OwnAddress = "http://ws:81/msg"
	lnAsync, err := wsHost.Listen(81)
	if err != nil {
		panic(err)
	}
	srvAsync := httpx.NewServer(asyncEcho, httpx.ServerConfig{Clock: tb.clk})
	srvAsync.Start(lnAsync)
	tb.onClose(func() { srvAsync.Close() })

	// The full WS-Dispatcher (both modes + mailbox).
	wsd, err := core.New(core.Config{
		Clock:      tb.clk,
		HostName:   "wsd",
		Listen:     func(port int) (net.Listener, error) { return wsdHost.Listen(port) },
		Dialer:     wsdHost,
		RPCPort:    9000,
		MsgPort:    9100,
		MsgBoxPort: 9200,
		Policy:     registry.PolicyFirst,
		// Forwarded RPC waits and the anonymous-reply window use
		// their defaults: ~25s, under the 30s client budget.
		Msg: msgdisp.Config{DeliveryTimeout: 21 * time.Second},
	})
	if err != nil {
		panic(err)
	}
	wsd.Registry.Register("echo-rpc", "http://ws:80/")
	wsd.Registry.Register("echo-msg", "http://ws:81/msg")
	if err := wsd.Start(); err != nil {
		panic(err)
	}
	tb.onClose(wsd.Stop)

	httpCli := httpx.NewClient(cliHost, httpx.ClientConfig{Clock: tb.clk, RequestTimeout: 30 * time.Second})
	rpcCli := client.NewRPC(httpCli)
	const payload = "table1-probe"

	switch quadrant {
	case 1: // RPC client -> RPC service, RPC connection forwarded.
		results, err := rpcCli.Call("http://wsd:9000/rpc/echo-rpc",
			echoservice.EchoNS, echoservice.EchoOp,
			soap.Param{Name: "message", Value: payload})
		if err != nil {
			return false, fmt.Sprintf("RPC through dispatcher failed: %v", err)
		}
		return results[0].Value == payload, "echo returned on the forwarded connection"

	case 2: // RPC client -> messaging service: anonymous ReplyTo, the
		// caller blocks on its connection for the correlated reply.
		env := soap.New(soap.V11).SetBody(xmlsoap.NewText(echoservice.EchoNS, "echo", payload))
		(&wsa.Headers{
			To:        msgdisp.LogicalScheme + "echo-msg",
			Action:    echoservice.EchoNS + ":echo",
			MessageID: wsa.NewMessageID(),
			ReplyTo:   &wsa.EPR{Address: wsa.Anonymous},
		}).Apply(env)
		raw, merr := env.Marshal()
		if merr != nil {
			panic(merr)
		}
		req := httpx.NewRequest("POST", "/msg", raw)
		req.Header.Set("Content-Type", soap.V11.ContentType())
		resp, err := httpCli.Do("wsd:9100", req)
		if err != nil {
			return false, fmt.Sprintf("connection-bound wait failed: %v", err)
		}
		defer resp.Release()
		if resp.Status != httpx.StatusOK {
			return false, fmt.Sprintf("no reply within the RPC window (HTTP %d)", resp.Status)
		}
		got, perr := soap.Parse(resp.Body)
		if perr != nil {
			return false, perr.Error()
		}
		return got.BodyElement() != nil && got.BodyElement().Text == payload,
			"reply arrived on the held connection"

	case 3: // Messaging client -> RPC service: the dispatcher translates
		// semantics; the service's synchronous answer is bridged back
		// to the client's mailbox.
		return runMailboxConversation(tb, httpCli, rpcCli,
			msgdisp.LogicalScheme+"echo-rpc", payload, true)

	case 4: // Messaging client -> messaging service: the unlimited case.
		return runMailboxConversation(tb, httpCli, rpcCli,
			msgdisp.LogicalScheme+"echo-msg", payload, false)

	default:
		panic("unknown quadrant")
	}
}

// runMailboxConversation sends one message with a mailbox ReplyTo and
// polls for the correlated reply. rpcBridge marks quadrant 3, whose
// request body must be an RPC envelope.
func runMailboxConversation(tb *testbed, httpCli *httpx.Client, rpcCli *client.RPC, to, payload string, rpcBridge bool) (bool, string) {
	mboxCli := client.NewMailboxClient(rpcCli, "http://wsd:9200/mbox", tb.clk)
	box, err := mboxCli.Create()
	if err != nil {
		return false, fmt.Sprintf("mailbox create failed: %v", err)
	}
	var body *xmlsoap.Element
	if rpcBridge {
		body = soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
			soap.Param{Name: "message", Value: payload}).BodyElement()
	} else {
		body = xmlsoap.NewText(echoservice.EchoNS, "echo", payload)
	}
	conv := &client.Conversation{
		Messenger:     client.NewMessenger(httpCli),
		Mailbox:       mboxCli,
		Box:           box,
		DispatcherURL: "http://wsd:9100/msg",
		PollEvery:     2 * time.Second,
	}
	reply, err := conv.Call(to, echoservice.EchoNS+":echo", body, 3*time.Minute)
	if err != nil {
		return false, fmt.Sprintf("conversation failed: %v", err)
	}
	if rpcBridge {
		results, perr := soap.ParseRPCResponse(reply, echoservice.EchoOp)
		if perr != nil {
			return false, perr.Error()
		}
		return len(results) > 0 && results[0].Value == payload, "RPC result delivered to mailbox"
	}
	b := reply.BodyElement()
	return b != nil && b.Text == payload, "reply delivered to mailbox"
}

// FormatTable1 renders the matrix like the paper's Table 1, annotated
// with the measured outcomes.
func FormatTable1(cells []Table1Cell) string {
	var b strings.Builder
	b.WriteString("# Table 1 — Possible interactions between Web Service peers using WS-Dispatcher\n")
	b.WriteString("# quadrant  client            service            fast_service  slow_service  paper_verdict\n")
	for _, c := range cells {
		b.WriteString(fmt.Sprintf("%9d  %-17s %-18s %-13s %-13s %s\n",
			c.Quadrant, c.ClientStyle, c.ServiceStyle,
			okString(c.FastOK), okString(c.SlowOK), c.PaperVerdict))
	}
	return b.String()
}

func okString(ok bool) string {
	if ok {
		return "works"
	}
	return "FAILS"
}
