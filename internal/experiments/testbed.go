// Package experiments rebuilds the paper's evaluation (§4.3): the
// trans-Atlantic testbed between INRIA Sophia Antipolis and Indiana
// University, and the runs behind Table 1 and Figures 4, 5, and 6 —
// including the WS-MsgBox thread-explosion bug of §4.3.2.
//
// Every experiment constructs a fresh virtual network per data point, so
// runs are independent and reproducible (fixed seeds, virtual time).
// Network parameters come straight from the paper's bandwidth
// measurements; host parameters model the named machines (inriaSlow
// P3@1GHz, inriaFast P4@3.4GHz, iuLow P3@850MHz cable modem, IU SunFire).
package experiments

import (
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
)

// WAN profiles. We put the whole trans-Atlantic path (latency and the
// measured access bandwidth) on the remote test-client host and model
// the dispatcher/service site as a fast LAN, so intra-site hops stay
// cheap — matching the deployment where the WS-Dispatcher runs "in front
// of the web service".

// profileClientIULow is the Bloomington cable modem as seen across the
// Atlantic: 2333 kbps down, 288 kbps up, ≈130 ms RTT to the site.
func profileClientIULow() netsim.Profile {
	return netsim.Profile{DownKbps: 2333, UpKbps: 288, Latency: 65 * time.Millisecond}
}

// profileClientIUHigh is the IU backbone host ("iuHight"): 3655 kbps
// down, 2739 kbps up, ≈120 ms RTT.
func profileClientIUHigh() netsim.Profile {
	return netsim.Profile{DownKbps: 3655, UpKbps: 2739, Latency: 60 * time.Millisecond}
}

// profileSite is a machine-room LAN at the service site.
func profileSite() netsim.Profile {
	return netsim.Profile{DownKbps: 100_000, UpKbps: 100_000, Latency: 300 * time.Microsecond}
}

// Modeled per-call CPU costs of the paper's named hosts.
const (
	// serviceTimeSlow models inriaSlow (Intel P3@1GHz).
	serviceTimeSlow = 5 * time.Millisecond
	// serviceTimeFast models inriaFast (Intel P4@3.4GHz).
	serviceTimeFast = 10 * time.Millisecond // per-call cost on the single modeled CPU
)

// testbed owns the per-run clock and network.
type testbed struct {
	clk *clock.Virtual
	nw  *netsim.Network

	closers []func()
}

// Event-coalescing windows per experiment class. Coalescing dilates each
// causal hop by up to the window, so experiments whose effects live in
// tight intra-site loops (Figure 6's per-destination delivery chains) use
// a fine window, while the coarse-grained, bandwidth-dominated RPC sweeps
// (Figures 4-5, thousands of clients) afford a wide one and run much
// faster.
const (
	coarseCoalesce = time.Millisecond
	fineCoalesce   = 200 * time.Microsecond
)

func newTestbed(seed int64, coalesce time.Duration) *testbed {
	clk := clock.NewVirtual(time.Unix(0, 0))
	clk.SetCoalesce(coalesce)
	return &testbed{clk: clk, nw: netsim.New(clk, seed)}
}

func (tb *testbed) onClose(f func()) { tb.closers = append(tb.closers, f) }

func (tb *testbed) Close() {
	for i := len(tb.closers) - 1; i >= 0; i-- {
		tb.closers[i]()
	}
	tb.clk.Stop()
}
