package experiments

import (
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/loadgen"
	"repro/internal/msgbox"
	"repro/internal/netsim"
	"repro/internal/pool"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/stats"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

// Fig6BugOptions parameterizes the §4.3.2 bug reproduction: "The result
// of tests for more than 50 clients revealed a very serious bug in the
// WS-MsgBox implementation ... creates a new thread for each message ...
// leads to OutOfMemoryExceptions as each thread has local stack allocated
// in memory."
type Fig6BugOptions struct {
	// Clients lists the swept client counts. Defaults cross the
	// paper's ~50-client cliff.
	Clients []int
	// Duration is the per-point run length.
	Duration time.Duration
	// ThreadBudget is the modeled JVM thread capacity of the mailbox
	// host. Default 220 threads (512 KiB stacks in a 110 MiB budget).
	ThreadBudget int
	// ThreadLinger is how long each buggy thread lives. Default 2s.
	ThreadLinger time.Duration
	// Seed feeds the deterministic network.
	Seed int64
}

func (o Fig6BugOptions) withDefaults() Fig6BugOptions {
	if len(o.Clients) == 0 {
		o.Clients = []int{10, 20, 30, 40, 50, 60, 70, 80}
	}
	if o.Duration <= 0 {
		o.Duration = time.Minute
	}
	if o.ThreadBudget <= 0 {
		o.ThreadBudget = 220
	}
	if o.ThreadLinger <= 0 {
		o.ThreadLinger = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 66
	}
	return o
}

// Fig6BugRow compares the buggy (thread-per-message) and fixed
// (bounded-pool) WS-MsgBox under the same load.
type Fig6BugRow struct {
	Clients int
	// Buggy / Fixed are the client-side send reports.
	Buggy stats.RunReport
	Fixed stats.RunReport
	// BuggyOOMs counts OutOfMemoryError events at the mailbox;
	// BuggyPeakThreads is the thread high-water mark.
	BuggyOOMs        int64
	BuggyPeakThreads int64
	// BuggyStored / FixedStored count messages actually retained.
	BuggyStored int64
	FixedStored int64
}

// RunFig6Bug regenerates the WS-MsgBox scalability-bug narrative.
func RunFig6Bug(opt Fig6BugOptions) []Fig6BugRow {
	opt = opt.withDefaults()
	rows := make([]Fig6BugRow, 0, len(opt.Clients))
	for _, n := range opt.Clients {
		row := Fig6BugRow{Clients: n}
		var buggySvc, fixedSvc *msgbox.Service
		row.Buggy, buggySvc = runFig6BugPoint(opt, n, msgbox.ModeBuggy)
		row.Fixed, fixedSvc = runFig6BugPoint(opt, n, msgbox.ModeFixed)
		row.BuggyOOMs = buggySvc.OOMEvents.Value()
		row.BuggyPeakThreads = buggySvc.LiveThreads.Peak()
		row.BuggyStored = buggySvc.Stored.Value()
		row.FixedStored = fixedSvc.Stored.Value()
		rows = append(rows, row)
	}
	return rows
}

// runFig6BugPoint drives the MSG-D + MsgBox topology of Figure 6 with the
// mailbox in the given mode and returns the client report plus the
// mailbox service for its counters.
func runFig6BugPoint(opt Fig6BugOptions, clients int, mode msgbox.Mode) (stats.RunReport, *msgbox.Service) {
	tb := newTestbed(opt.Seed, fineCoalesce)
	defer tb.Close()

	cliHost := tb.nw.AddHost("client", profileClientIUHigh(),
		netsim.WithFirewall(netsim.OutboundOnly()), netsim.WithMaxConns(8192))

	wsHost := tb.nw.AddHost("ws", profileSite(), netsim.WithMaxConns(2048))
	wsClient := httpx.NewClient(wsHost, httpx.ClientConfig{Clock: tb.clk})
	echo := echoservice.NewAsync(tb.clk, wsClient, 2*time.Millisecond)
	echo.OwnAddress = "http://ws:81/msg"
	lnWS, err := wsHost.Listen(81)
	if err != nil {
		panic(err)
	}
	srvWS := httpx.NewServer(echo, httpx.ServerConfig{Clock: tb.clk})
	srvWS.Start(lnWS)
	tb.onClose(func() { srvWS.Close() })

	wsdHost := tb.nw.AddHost("wsd", profileSite(), netsim.WithMaxConns(4096))
	ledger := pool.NewLedger(pool.DefaultStackBytes,
		int64(opt.ThreadBudget)*pool.DefaultStackBytes)
	wsd, err := core.New(core.Config{
		Clock:      tb.clk,
		HostName:   "wsd",
		Listen:     func(port int) (net.Listener, error) { return wsdHost.Listen(port) },
		Dialer:     wsdHost,
		MsgPort:    9100,
		MsgBoxPort: 9200,
		Policy:     registry.PolicyFirst,
		MsgBox: msgbox.Config{
			Mode:         mode,
			Ledger:       ledger,
			ThreadLinger: opt.ThreadLinger,
			BoxCap:       1 << 20,
		},
	})
	if err != nil {
		panic(err)
	}
	wsd.Registry.Register("echo", "http://ws:81/msg")
	if err := wsd.Start(); err != nil {
		panic(err)
	}
	tb.onClose(wsd.Stop)

	adminClient := httpx.NewClient(cliHost, httpx.ClientConfig{Clock: tb.clk})
	replyAddrs := make([]string, clients)
	for i := range replyAddrs {
		replyAddrs[i] = createMailbox(tb, adminClient)
	}

	clientsPool := make([]*httpx.Client, clients)
	for i := range clientsPool {
		clientsPool[i] = httpx.NewClient(cliHost, httpx.ClientConfig{
			Clock:          tb.clk,
			RequestTimeout: 10 * time.Second,
			MaxIdlePerHost: 1,
		})
	}

	report := loadgen.Run(loadgen.Config{
		Clock:     tb.clk,
		Clients:   clients,
		ThinkTime: 500 * time.Millisecond,
		Duration:  opt.Duration,
		Series:    fmt.Sprintf("msgbox-%v", mode == msgbox.ModeBuggy),
	}, func(clientID, seq int) error {
		env := soap.New(soap.V11).SetBody(
			xmlsoap.NewText(echoservice.EchoNS, "echo", "bug-probe"))
		(&wsa.Headers{
			To:        "logical:echo",
			Action:    echoservice.EchoNS + ":echo",
			MessageID: fmt.Sprintf("urn:fig6bug:%d:%d", clientID, seq),
			ReplyTo:   &wsa.EPR{Address: replyAddrs[clientID]},
		}).Apply(env)
		buf := xmlsoap.GetBuffer()
		defer xmlsoap.PutBuffer(buf)
		raw, err := wsa.AppendEnvelope(buf.B, env)
		if err != nil {
			return err
		}
		buf.B = raw
		req := httpx.NewRequest("POST", "/msg", raw)
		req.Header.Set("Content-Type", soap.V11.ContentType())
		resp, err := clientsPool[clientID].Do("wsd:9100", req)
		if err != nil {
			return err
		}
		status := resp.Status
		resp.Release()
		if status != httpx.StatusAccepted {
			return fmt.Errorf("HTTP %d", status)
		}
		return nil
	})
	return report, wsd.MsgBox
}

// FormatFig6Bug renders the sweep.
func FormatFig6Bug(rows []Fig6BugRow) string {
	var b strings.Builder
	b.WriteString("# §4.3.2 — WS-MsgBox thread-per-message bug vs bounded-pool redesign\n")
	b.WriteString("# clients  buggy_stored  buggy_ooms  buggy_peak_threads  fixed_stored  fixed_ooms\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d %13d %11d %19d %13d %10d\n",
			r.Clients, r.BuggyStored, r.BuggyOOMs, r.BuggyPeakThreads, r.FixedStored, 0)
	}
	return b.String()
}
