//go:build race

package httpx

// raceEnabled skips the head-parsing allocation gate under the race
// detector, which deliberately randomizes sync.Pool caching and adds
// its own per-op allocations, making AllocsPerRun budgets meaningless.
const raceEnabled = true
