// Package refhead is the frozen map-based HTTP head parser: the seed
// httpx read path as it stood before the pooled in-place head rewrite,
// kept as the differential oracle for httpx's FuzzHead. It is the
// head-parsing twin of internal/xmlsoap/refcodec and refparser — do not
// optimize it; change it only together with the httpx parser and the
// fuzz fence when the accepted grammar itself changes.
//
// Two deliberate fixes agreed for the rewrite are applied here so the
// oracle defines the intended grammar rather than the seed's accidents:
//
//   - Line terminators: readLine strips exactly one "\r\n" (or bare
//     "\n"). The seed used strings.TrimRight(line, "\r\n"), which also
//     ate data bytes — a line "X: v\r\r\n" lost its trailing '\r'
//     before value trimming, and a bare "\r\r\n" line parsed as the
//     end-of-head blank line instead of a malformed header line.
//   - Head size: the maxHeaderBytes bound applies to the raw head —
//     start line, header lines, and their terminators — rather than to
//     the sum of trimmed header-line lengths only, matching what the
//     in-place parser can account for without bookkeeping.
//
// Bodies are read exactly as the seed read them (Content-Length and
// chunked framing, shared limits), into GC-owned slices.
package refhead

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Limits mirror internal/httpx.
const (
	maxHeaderBytes = 64 << 10
	maxBodyBytes   = 8 << 20
)

// Errors mirror internal/httpx's sentinel split; only the verdict
// (error vs nil) participates in the differential check.
var (
	ErrMalformed    = errors.New("refhead: malformed message")
	ErrHeaderTooBig = errors.New("refhead: header section too large")
	ErrBodyTooBig   = errors.New("refhead: body exceeds limit")
)

// Header is the seed's header representation: single-valued
// canonical-case keys, last write wins.
type Header map[string]string

// CanonicalKey is the seed canonicalization (special-cased mixed-case
// names, Title-Case segments otherwise), including the seed's
// already-canonical fast path — which is semantic, not just an
// optimization: keys it classifies as canonical are returned unchanged,
// while the slow path's ToUpper/ToLower would fold non-ASCII bytes
// through U+FFFD.
func CanonicalKey(k string) string {
	if isCanonicalKey(k) {
		return k
	}
	switch strings.ToLower(k) {
	case "soapaction":
		return "SOAPAction"
	case "www-authenticate":
		return "WWW-Authenticate"
	}
	parts := strings.Split(k, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}

// isCanonicalKey mirrors the seed's fast-path classifier: segment-initial
// letters uppercase, all other letters lowercase, the two special
// spellings matched exactly.
func isCanonicalKey(k string) bool {
	if k == "SOAPAction" || k == "WWW-Authenticate" {
		return true
	}
	if strings.EqualFold(k, "SOAPAction") || strings.EqualFold(k, "WWW-Authenticate") {
		return false
	}
	segStart := true
	for i := 0; i < len(k); i++ {
		c := k[i]
		if c == '-' {
			segStart = true
			continue
		}
		if segStart {
			if 'a' <= c && c <= 'z' {
				return false
			}
			segStart = false
			continue
		}
		if 'A' <= c && c <= 'Z' {
			return false
		}
	}
	return true
}

// Request is a parsed request head plus body.
type Request struct {
	Method string
	Path   string
	Proto  string
	Header Header
	Body   []byte
}

// Response is a parsed response head plus body.
type Response struct {
	Status int
	Reason string
	Proto  string
	Header Header
	Body   []byte
}

// ReadRequest parses one request from br.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, budget, err := readLine(br, maxHeaderBytes)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformed, line)
	}
	req := &Request{Method: parts[0], Path: parts[1], Proto: parts[2]}
	req.Header, err = readHeaders(br, budget)
	if err != nil {
		return nil, err
	}
	req.Body, err = readBody(br, req.Header)
	if err != nil {
		return nil, err
	}
	return req, nil
}

// ReadResponse parses one response from br.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, budget, err := readLine(br, maxHeaderBytes)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformed, line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: bad status code %q", ErrMalformed, parts[1])
	}
	resp := &Response{Proto: parts[0], Status: status}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	resp.Header, err = readHeaders(br, budget)
	if err != nil {
		return nil, err
	}
	resp.Body, err = readBody(br, resp.Header)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// readLine reads one LF-terminated line, strips exactly one "\r\n" or
// "\n", and returns the remaining raw-byte budget (budget counts the
// line including its terminator).
func readLine(br *bufio.Reader, budget int) (string, int, error) {
	var long []byte
	for {
		frag, err := br.ReadSlice('\n')
		budget -= len(frag)
		if err == nil {
			long = append(long, frag...)
			if budget < 0 {
				return "", 0, ErrHeaderTooBig
			}
			line := strings.TrimSuffix(string(long), "\n")
			return strings.TrimSuffix(line, "\r"), budget, nil
		}
		if err != bufio.ErrBufferFull {
			return "", 0, err
		}
		if budget < 0 {
			return "", 0, ErrHeaderTooBig
		}
		// frag aliases br's internal buffer; copy before reading on.
		long = append(long, frag...)
	}
}

func readHeaders(br *bufio.Reader, budget int) (Header, error) {
	h := make(Header, 8)
	for {
		line, rest, err := readLine(br, budget)
		if err != nil {
			return nil, err
		}
		budget = rest
		if line == "" {
			return h, nil
		}
		i := strings.IndexByte(line, ':')
		if i <= 0 {
			return nil, fmt.Errorf("%w: bad header line %q", ErrMalformed, line)
		}
		key := strings.TrimSpace(line[:i])
		if key == "" {
			return nil, fmt.Errorf("%w: bad header line %q", ErrMalformed, line)
		}
		h[CanonicalKey(key)] = strings.TrimSpace(line[i+1:])
	}
}

func readBody(br *bufio.Reader, h Header) ([]byte, error) {
	if strings.EqualFold(h["Transfer-Encoding"], "chunked") {
		return readChunked(br)
	}
	cl := h["Content-Length"]
	if cl == "" {
		return nil, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: bad Content-Length %q", ErrMalformed, cl)
	}
	if n > maxBodyBytes {
		return nil, ErrBodyTooBig
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

func readChunked(br *bufio.Reader) ([]byte, error) {
	var body []byte
	for {
		line, _, err := readLine(br, maxHeaderBytes)
		if err != nil {
			return nil, err
		}
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		size, err := strconv.ParseInt(strings.TrimSpace(line), 16, 32)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("%w: bad chunk size %q", ErrMalformed, line)
		}
		if size == 0 {
			for {
				t, _, terr := readLine(br, maxHeaderBytes)
				if terr != nil {
					return nil, terr
				}
				if t == "" {
					return body, nil
				}
			}
		}
		if len(body)+int(size) > maxBodyBytes {
			return nil, ErrBodyTooBig
		}
		chunk := make([]byte, size)
		if _, err := io.ReadFull(br, chunk); err != nil {
			return nil, err
		}
		body = append(body, chunk...)
		if _, _, err := readLine(br, maxHeaderBytes); err != nil {
			return nil, err
		}
	}
}
