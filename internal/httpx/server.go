package httpx

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
	"repro/internal/xmlsoap"
)

// Handler processes one exchange: it reads the parsed request from
// ex.Req and answers through the exchange's reply API (ex.Reply,
// ex.ReplyBuffer, ex.ReplyBytes); an exchange left unanswered produces
// 500.
//
// Ownership: ex.Req's head fields and Body live in a pooled buffer the
// connection releases after the reply has been written, so the body —
// and any parsed tree aliasing it (soap.Parse) — is valid until Serve
// returns and while the reply is encoded (a reply may echo the request
// body). A handler that needs the data past that point must either copy
// out what survives (Element.Detach, Envelope.Detach, strings.Clone) or
// assume the release duty with ex.TakeBody. The Exchange and its Request
// struct are connection-owned and reused for the next request; never
// retain them. See the Exchange doc and the buffer-lifecycle diagram on
// Request.
type Handler interface {
	Serve(ex *Exchange)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ex *Exchange)

// Serve implements Handler.
func (f HandlerFunc) Serve(ex *Exchange) { f(ex) }

// ServerConfig tunes a Server.
type ServerConfig struct {
	// Clock drives deadlines; defaults to the wall clock.
	Clock clock.Clock
	// ReadTimeout bounds reading one full request; 0 disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one full response; 0 disables.
	WriteTimeout time.Duration
	// IdleTimeout closes keep-alive connections with no next request.
	// 0 means DefaultIdleTimeout.
	IdleTimeout time.Duration
	// MaxHandlers caps concurrently running handlers; 0 = unlimited
	// (goroutine per connection, like XSUL's thread-per-connection).
	MaxHandlers int
}

// DefaultIdleTimeout matches a conservative 2004 servlet-container
// keep-alive timeout.
const DefaultIdleTimeout = 30 * time.Second

// Server accepts connections from a net.Listener and serves HTTP/1.1 with
// keep-alive. One goroutine per connection.
type Server struct {
	handler Handler
	cfg     ServerConfig

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers chan struct{} // semaphore when MaxHandlers > 0

	// Requests counts requests fully parsed; Errors counts failed
	// reads/writes (client gave up, malformed, timeout).
	Requests stats.Counter
	Errors   stats.Counter
	// ActiveConns tracks open connections (peak gives "concurrent
	// connections survived", used in scalability reports).
	ActiveConns stats.Gauge
}

// NewServer builds a server around handler.
func NewServer(handler Handler, cfg ServerConfig) *Server {
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	s := &Server{handler: handler, cfg: cfg, conns: make(map[net.Conn]struct{})}
	if cfg.MaxHandlers > 0 {
		s.handlers = make(chan struct{}, cfg.MaxHandlers)
	}
	return s
}

// Serve accepts connections until the listener fails or Close is called.
// It always returns a non-nil error; after Close it returns ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.track(conn, true)
		go s.serveConn(conn)
	}
}

// Start runs Serve on its own goroutine and returns immediately.
func (s *Server) Start(ln net.Listener) {
	go func() { _ = s.Serve(ln) }()
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("httpx: server closed")

// Close stops accepting and closes all open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return nil
}

func (s *Server) track(c net.Conn, add bool) {
	s.mu.Lock()
	if add {
		s.conns[c] = struct{}{}
		s.ActiveConns.Add(1)
	} else {
		delete(s.conns, c)
		s.ActiveConns.Add(-1)
	}
	s.mu.Unlock()
}

// serveConn drives one connection. It owns exactly one Exchange — one
// reusable Request struct, reply header set, and hijack channel — for
// the connection's whole life, so a keep-alive connection serves every
// request with zero per-request message-struct allocations: the request
// lands in a pooled buffer via ReadRequestInto, the handler replies on
// the exchange, and replies leave in batched writes.
//
// Replies to pipelined requests coalesce: each reply is appended to a
// connection-scoped write buffer, which is flushed — one Write for K
// replies — only when the client's buffered input drains (the fasthttp
// heuristic: a pipelining client does not block on response i before
// sending request i+1), when the accumulated batch exceeds
// coalesceLimit, or when the connection is about to close. A
// one-request-at-a-time client sees exactly the old behavior, its reply
// flushed before the next blocking read.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	defer s.track(conn, false)
	clk := s.cfg.Clock
	br := bufio.NewReader(conn)
	ex := &Exchange{srv: s, conn: conn, remoteAddr: conn.RemoteAddr().String()}
	wbuf := xmlsoap.GetBuffer() // pending batched replies
	defer xmlsoap.PutBuffer(wbuf)
	flush := func() error {
		if len(wbuf.B) == 0 {
			return nil
		}
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(clk.Now().Add(s.cfg.WriteTimeout))
		}
		_, err := conn.Write(wbuf.B)
		wbuf.B = wbuf.B[:0]
		return err
	}
	var armed time.Time // currently armed read deadline
	for {
		// Idle / read deadline for the next request. With no explicit
		// ReadTimeout the deadline is pure idle hygiene, so it is
		// re-armed lazily — only once the armed one has less than half
		// the window left — and a busy keep-alive connection pays one
		// deadline update per half-window instead of one per request (a
		// real socket turns each into a syscall; net.Pipe into a timer
		// allocation). The effective idle timeout is then between wait/2
		// and wait, which only ever closes an idle connection earlier,
		// never later; clients redial transparently. A configured
		// ReadTimeout is a per-request budget, so it re-arms every
		// request and keeps its exact meaning.
		wait := s.cfg.IdleTimeout
		if s.cfg.ReadTimeout > 0 && s.cfg.ReadTimeout < wait {
			wait = s.cfg.ReadTimeout
		}
		if now := clk.Now(); s.cfg.ReadTimeout > 0 || armed.Sub(now) < wait/2 {
			armed = now.Add(wait)
			conn.SetReadDeadline(armed)
		}

		if err := ReadRequestInto(br, &ex.Req); err != nil {
			if err != io.EOF {
				s.Errors.Inc()
			}
			// Replies batched behind a partial pipelined request still
			// belong to the client; push them out best-effort.
			flush()
			return
		}
		s.Requests.Inc()
		ex.Req.RemoteAddr = ex.remoteAddr

		// Snapshot the request's keep-alive verdict before the handler
		// runs: ex.Req.Proto and its headers alias the pooled head
		// buffer, and a handler that takes the body (TakeBody moves head
		// and body together) may release it from another goroutine as
		// soon as it is done — echoservice.Async's reply leg can finish
		// before the reply is written.
		reqClose := wantsClose(ex.Req.Proto, &ex.Req.Header)

		ex.resetReply()
		panicked := s.dispatch(ex)
		if ex.hijacked {
			if panicked {
				// The handler died between Hijack and handing the
				// exchange off; nobody will Finish it. The connection
				// is unrecoverable — release the request, push out any
				// batched replies, and bail.
				if s.handlers != nil {
					<-s.handlers
				}
				ex.Req.Release()
				flush()
				return
			}
			// The reply arrives from another goroutine; Finish's channel
			// send orders its writes to the exchange before ours.
			<-ex.done
		}
		if s.handlers != nil {
			// The MaxHandlers slot covers hijacked work too: the handler
			// is done only once the exchange is finished.
			<-s.handlers
		}

		// The reply is appended to the connection's write buffer (the
		// body is copied, so it may safely echo the request), then the
		// release sequence runs: reply buffer, Defer hooks (relayed-body
		// duties), then the request buffer. A handler that took the body
		// emptied the request's duty, making its release a no-op. An
		// oversized body is not copied; it is written through before its
		// backing buffers can be released.
		var bigBody []byte
		wbuf.B, bigBody = ex.appendReply(wbuf.B)
		if bigBody != nil {
			err := flush()
			if err == nil {
				if s.cfg.WriteTimeout > 0 {
					conn.SetWriteDeadline(clk.Now().Add(s.cfg.WriteTimeout))
				}
				_, err = conn.Write(bigBody)
			}
			connClose := ex.finishRelease()
			if err != nil {
				s.Errors.Inc()
				return
			}
			if reqClose || connClose {
				return
			}
			continue
		}
		connClose := ex.finishRelease() || reqClose

		// Flush when the client has no more pipelined input buffered
		// (it is now waiting on us), when the batch has grown past the
		// coalesce window, or when this connection is done.
		if connClose || br.Buffered() == 0 || len(wbuf.B) > coalesceLimit {
			if err := flush(); err != nil {
				s.Errors.Inc()
				return
			}
		}
		if connClose {
			return
		}
	}
}

// dispatch runs the handler, converting a panic into a 500 (unless the
// exchange was hijacked, which serveConn treats as fatal for the
// connection). It acquires the MaxHandlers slot; serveConn releases it
// after any hijacked work completes.
func (s *Server) dispatch(ex *Exchange) (panicked bool) {
	if s.handlers != nil {
		s.handlers <- struct{}{}
	}
	defer func() {
		if r := recover(); r != nil {
			s.Errors.Inc()
			panicked = true
		}
	}()
	s.handler.Serve(ex)
	return false
}
