package httpx

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
)

// Handler processes one request and returns the response to send. A nil
// response produces 500.
//
// Ownership: req.Body lives in a pooled buffer the server releases
// after the response has been written, so the body — and any parsed
// tree aliasing it (soap.Parse) — is valid until Serve returns and
// while the returned response is encoded (a response may alias the
// request body it echoes). A handler that needs the body past that
// point must either copy out what survives (Element.Detach,
// Envelope.Detach, strings.Clone) or assume the release duty with
// req.TakeBody. See the buffer-lifecycle diagram on Request.
type Handler interface {
	Serve(req *Request) *Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *Request) *Response

// Serve implements Handler.
func (f HandlerFunc) Serve(req *Request) *Response { return f(req) }

// ServerConfig tunes a Server.
type ServerConfig struct {
	// Clock drives deadlines; defaults to the wall clock.
	Clock clock.Clock
	// ReadTimeout bounds reading one full request; 0 disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one full response; 0 disables.
	WriteTimeout time.Duration
	// IdleTimeout closes keep-alive connections with no next request.
	// 0 means DefaultIdleTimeout.
	IdleTimeout time.Duration
	// MaxHandlers caps concurrently running handlers; 0 = unlimited
	// (goroutine per connection, like XSUL's thread-per-connection).
	MaxHandlers int
}

// DefaultIdleTimeout matches a conservative 2004 servlet-container
// keep-alive timeout.
const DefaultIdleTimeout = 30 * time.Second

// Server accepts connections from a net.Listener and serves HTTP/1.1 with
// keep-alive. One goroutine per connection.
type Server struct {
	handler Handler
	cfg     ServerConfig

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers chan struct{} // semaphore when MaxHandlers > 0

	// Requests counts requests fully parsed; Errors counts failed
	// reads/writes (client gave up, malformed, timeout).
	Requests stats.Counter
	Errors   stats.Counter
	// ActiveConns tracks open connections (peak gives "concurrent
	// connections survived", used in scalability reports).
	ActiveConns stats.Gauge
}

// NewServer builds a server around handler.
func NewServer(handler Handler, cfg ServerConfig) *Server {
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	s := &Server{handler: handler, cfg: cfg, conns: make(map[net.Conn]struct{})}
	if cfg.MaxHandlers > 0 {
		s.handlers = make(chan struct{}, cfg.MaxHandlers)
	}
	return s
}

// Serve accepts connections until the listener fails or Close is called.
// It always returns a non-nil error; after Close it returns ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.track(conn, true)
		go s.serveConn(conn)
	}
}

// Start runs Serve on its own goroutine and returns immediately.
func (s *Server) Start(ln net.Listener) {
	go func() { _ = s.Serve(ln) }()
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("httpx: server closed")

// Close stops accepting and closes all open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return nil
}

func (s *Server) track(c net.Conn, add bool) {
	s.mu.Lock()
	if add {
		s.conns[c] = struct{}{}
		s.ActiveConns.Add(1)
	} else {
		delete(s.conns, c)
		s.ActiveConns.Add(-1)
	}
	s.mu.Unlock()
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	defer s.track(conn, false)
	clk := s.cfg.Clock
	br := bufio.NewReader(conn)
	for {
		// Idle / read deadline for the next request.
		wait := s.cfg.IdleTimeout
		if s.cfg.ReadTimeout > 0 && s.cfg.ReadTimeout < wait {
			wait = s.cfg.ReadTimeout
		}
		conn.SetReadDeadline(clk.Now().Add(wait))

		req, err := ReadRequestPooled(br)
		if err != nil {
			if err != io.EOF {
				s.Errors.Inc()
			}
			return
		}
		s.Requests.Inc()
		req.RemoteAddr = conn.RemoteAddr().String()

		// Snapshot the request's keep-alive verdict before the handler
		// runs: req.Proto and req.Header alias the pooled head buffer,
		// and a handler that takes the body (TakeBody moves head and
		// body together) may release it from another goroutine as soon
		// as it is done — echoservice.Async's reply leg can finish
		// before the response is written.
		reqClose := wantsClose(req.Proto, &req.Header)

		resp := s.dispatch(req)
		if resp == nil {
			resp = NewResponse(StatusInternalServerError, nil)
		}

		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(clk.Now().Add(s.cfg.WriteTimeout))
		}
		err = resp.Encode(conn)
		// Both pooled buffers are done once the response bytes are out
		// (the response may alias the request body it echoes, so the
		// request buffer is only released after the write). A handler
		// that called req.TakeBody emptied the request's duty, making
		// its release a no-op here. The response's close verdict is
		// read before its head is released.
		close := reqClose || wantsClose(resp.Proto, &resp.Header)
		resp.Release()
		req.Release()
		if err != nil {
			s.Errors.Inc()
			return
		}
		if close {
			return
		}
	}
}

func (s *Server) dispatch(req *Request) *Response {
	if s.handlers != nil {
		s.handlers <- struct{}{}
		defer func() { <-s.handlers }()
	}
	defer func() {
		if r := recover(); r != nil {
			s.Errors.Inc()
		}
	}()
	return s.handler.Serve(req)
}
