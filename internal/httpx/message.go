package httpx

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/xmlsoap"
)

// maxHeaderBytes bounds header section size to keep a malicious or broken
// peer from ballooning memory.
const maxHeaderBytes = 64 << 10

// maxBodyBytes bounds message bodies. SOAP envelopes in this system are a
// few hundred bytes; 8 MiB leaves generous room for WSDL documents and
// batched mailbox downloads.
const maxBodyBytes = 8 << 20

// Request is an HTTP request with a fully buffered body.
//
// Bodies read off the wire (ReadRequest/ReadResponse) are freshly
// allocated, GC-owned slices — never pooled — so SOAP trees parsed from
// them (which alias the body per xmlsoap's zero-copy contract) stay
// valid for as long as they are referenced. The flip side: retaining any
// parsed string pins the whole body, so state that outlives the exchange
// must detach (see soap.Parse).
type Request struct {
	Method string
	// Path is the request-URI as sent on the wire, e.g. "/wsd/echo".
	Path   string
	Proto  string // "HTTP/1.1" unless overridden
	Header Header
	Body   []byte

	// RemoteAddr is filled by the server with the peer address.
	RemoteAddr string
}

// NewRequest builds a request with sensible defaults for this stack:
// HTTP/1.1, Content-Length set from body.
func NewRequest(method, path string, body []byte) *Request {
	return &Request{Method: method, Path: path, Proto: "HTTP/1.1", Header: Header{}, Body: body}
}

// Response is an HTTP response with a fully buffered body.
type Response struct {
	Status int
	Reason string
	Proto  string
	Header Header
	Body   []byte

	// ReleaseBody, when non-nil, is called exactly once by the server
	// after the response bytes have been written (or the write
	// abandoned). Handlers that render Body into a pooled buffer set it
	// to return the buffer; Body must not be touched afterwards.
	ReleaseBody func()
}

// NewResponse builds a response with status code and body.
func NewResponse(status int, body []byte) *Response {
	return &Response{Status: status, Reason: StatusText(status), Proto: "HTTP/1.1", Header: Header{}, Body: body}
}

// NewPooledResponse builds a response whose body is produced by an
// append-style render into a pooled buffer; the server releases the
// buffer via ReleaseBody after writing the response. On render error
// the buffer is released immediately and the error returned, so the
// ownership-sensitive sequence lives in exactly one place.
func NewPooledResponse(status int, render func(dst []byte) ([]byte, error)) (*Response, error) {
	buf := xmlsoap.GetBuffer()
	b, err := render(buf.B)
	if err != nil {
		xmlsoap.PutBuffer(buf)
		return nil, err
	}
	buf.B = b
	resp := NewResponse(status, b)
	resp.ReleaseBody = func() { xmlsoap.PutBuffer(buf) }
	return resp, nil
}

// errors surfaced by the codec.
var (
	ErrMalformed    = errors.New("httpx: malformed message")
	ErrHeaderTooBig = errors.New("httpx: header section too large")
	ErrBodyTooBig   = errors.New("httpx: body exceeds limit")
)

// Encode serializes the request to w with Content-Length framing. The
// head is assembled in a pooled buffer and the body bytes are written
// straight from r.Body, so encoding allocates nothing per message.
func (r *Request) Encode(w io.Writer) error {
	return r.encode(w, "", false)
}

// encode is Encode with the client's per-exchange supplements: hostIfMissing
// is emitted as the Host header when r.Header lacks one, and forceClose
// overrides Connection with "close". Neither mutates r.Header (the seed
// codec cloned the map instead).
func (r *Request) encode(w io.Writer, hostIfMissing string, forceClose bool) error {
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	buf := xmlsoap.GetBuffer()
	defer xmlsoap.PutBuffer(buf)
	b := buf.B
	b = append(b, r.Method...)
	b = append(b, ' ')
	b = append(b, r.Path...)
	b = append(b, ' ')
	b = append(b, proto...)
	b = append(b, '\r', '\n')
	b = r.Header.appendWire(b, len(r.Body), hostIfMissing, forceClose)
	buf.B = b
	if _, err := w.Write(b); err != nil {
		return err
	}
	if len(r.Body) > 0 {
		if _, err := w.Write(r.Body); err != nil {
			return err
		}
	}
	return nil
}

// Encode serializes the response to w with Content-Length framing, using
// the same pooled zero-copy scheme as Request.Encode.
func (r *Response) Encode(w io.Writer) error {
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	reason := r.Reason
	if reason == "" {
		reason = StatusText(r.Status)
	}
	buf := xmlsoap.GetBuffer()
	defer xmlsoap.PutBuffer(buf)
	b := buf.B
	b = append(b, proto...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(r.Status), 10)
	b = append(b, ' ')
	b = append(b, reason...)
	b = append(b, '\r', '\n')
	b = r.Header.appendWire(b, len(r.Body), "", false)
	buf.B = b
	if _, err := w.Write(b); err != nil {
		return err
	}
	if len(r.Body) > 0 {
		if _, err := w.Write(r.Body); err != nil {
			return err
		}
	}
	return nil
}

// ReadRequest parses one request from br.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformed, line)
	}
	req := &Request{Method: parts[0], Path: parts[1], Proto: parts[2]}
	req.Header, err = readHeaders(br)
	if err != nil {
		return nil, err
	}
	req.Body, err = readBody(br, req.Header)
	if err != nil {
		return nil, err
	}
	return req, nil
}

// ReadResponse parses one response from br.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformed, line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: bad status code %q", ErrMalformed, parts[1])
	}
	resp := &Response{Proto: parts[0], Status: status}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	resp.Header, err = readHeaders(br)
	if err != nil {
		return nil, err
	}
	resp.Body, err = readBody(br, resp.Header)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// wantsClose reports whether the message's Connection header asks to drop
// the connection after this exchange, honouring HTTP/1.0 defaults.
func wantsClose(proto string, h Header) bool {
	c := strings.ToLower(h.Get("Connection"))
	if proto == "HTTP/1.0" {
		return c != "keep-alive"
	}
	return c == "close"
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxHeaderBytes {
		return "", ErrHeaderTooBig
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func readHeaders(br *bufio.Reader) (Header, error) {
	h := Header{}
	total := 0
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return h, nil
		}
		total += len(line)
		if total > maxHeaderBytes {
			return nil, ErrHeaderTooBig
		}
		i := strings.IndexByte(line, ':')
		if i <= 0 {
			return nil, fmt.Errorf("%w: bad header line %q", ErrMalformed, line)
		}
		h.Set(strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+1:]))
	}
}

func readBody(br *bufio.Reader, h Header) ([]byte, error) {
	if strings.EqualFold(h.Get("Transfer-Encoding"), "chunked") {
		return readChunked(br)
	}
	cl := h.Get("Content-Length")
	if cl == "" {
		return nil, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: bad Content-Length %q", ErrMalformed, cl)
	}
	if n > maxBodyBytes {
		return nil, ErrBodyTooBig
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

func readChunked(br *bufio.Reader) ([]byte, error) {
	var body []byte
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		// Ignore chunk extensions.
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		size, err := strconv.ParseInt(strings.TrimSpace(line), 16, 32)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("%w: bad chunk size %q", ErrMalformed, line)
		}
		if size == 0 {
			// Trailer section: read until blank line.
			for {
				t, err := readLine(br)
				if err != nil {
					return nil, err
				}
				if t == "" {
					return body, nil
				}
			}
		}
		if len(body)+int(size) > maxBodyBytes {
			return nil, ErrBodyTooBig
		}
		chunk := make([]byte, size)
		if _, err := io.ReadFull(br, chunk); err != nil {
			return nil, err
		}
		body = append(body, chunk...)
		// Trailing CRLF after each chunk.
		if _, err := readLine(br); err != nil {
			return nil, err
		}
	}
}
