package httpx

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/xmlsoap"
)

// maxHeaderBytes bounds header section size to keep a malicious or broken
// peer from ballooning memory.
const maxHeaderBytes = 64 << 10

// maxBodyBytes bounds message bodies. SOAP envelopes in this system are a
// few hundred bytes; 8 MiB leaves generous room for WSDL documents and
// batched mailbox downloads.
const maxBodyBytes = 8 << 20

// Request is an HTTP request with a fully buffered body.
//
// # Buffer lifecycle
//
// Message bodies on the hot path live in pooled buffers
// (xmlsoap.GetBuffer storage) with single-release ownership at every
// seam. One server-side exchange, from bytes on the socket to bytes
// out, moves exactly two pooled buffers:
//
//	socket ──ReadRequestPooled──▶ Request.Body (pooled)
//	                                 │ aliased by soap.Parse trees
//	                                 ▼
//	                            Handler.Serve ──▶ Response.Body (pooled,
//	                                 │               via NewPooledResponse)
//	                                 ▼
//	socket ◀──Response.Encode── server writes, then releases BOTH:
//	            resp.Release() ─▶ response buffer back to pool
//	            req.Release()  ─▶ request buffer back to pool
//
// The server owns the request buffer: handlers may read Body (and parse
// trees that alias it) freely until Serve returns, and must either
// finish with it by then, copy out what survives (Element.Detach,
// Envelope.Detach, strings.Clone), or take over the release duty with
// TakeBody — echoservice.Async's reply goroutine is the canonical
// taker. On the client side the same shape applies to responses:
// Client.Do returns a Response whose pooled body the caller releases
// via Response.Release (or forwards via TakeBody). Forgetting a release
// is safe — the buffer falls to the GC and only pooling is lost; a
// double release or a use-after-release is a bug the pool's check mode
// (xmlsoap.EnablePoolCheck) turns into a panic.
//
// Bodies read with plain ReadRequest/ReadResponse remain freshly
// allocated and GC-owned; those constructors exist for cold paths and
// tests that want no release obligation.
type Request struct {
	Method string
	// Path is the request-URI as sent on the wire, e.g. "/wsd/echo".
	Path   string
	Proto  string // "HTTP/1.1" unless overridden
	Header Header
	Body   []byte

	// RemoteAddr is filled by the server with the peer address.
	RemoteAddr string

	pooledBody
}

// pooledBody is the shared release-duty mechanism embedded in Request
// and Response, so both sides of an exchange follow one lifecycle
// contract.
type pooledBody struct {
	// ReleaseBody, when non-nil, returns Body's pooled buffer; it is
	// called exactly once by the buffer's owner (the server after the
	// response is written, the Client.Do caller, or whoever TakeBody
	// transferred the duty to). Body and anything aliasing it must not
	// be touched afterwards. Use Release or TakeBody rather than
	// calling the field directly.
	ReleaseBody func()
}

// Release returns the message's pooled body to the pool, if it has one
// and it was not already released or taken. It is idempotent, so owners
// can call it unconditionally on every exit path.
func (p *pooledBody) Release() {
	if f := p.ReleaseBody; f != nil {
		p.ReleaseBody = nil
		f()
	}
}

// TakeBody transfers ownership of the pooled body to the caller: the
// previous owner will no longer release it when the exchange ends, and
// the returned function must be called exactly once after the last use
// of Body or anything aliasing it. For a GC-owned body it returns a
// no-op, so takers need no special case. A proxy relaying a client
// response as its own server response moves the obligation with it
// (rpcdisp does exactly this); echoservice.Async's reply goroutine is
// the canonical request-side taker.
func (p *pooledBody) TakeBody() func() {
	f := p.ReleaseBody
	p.ReleaseBody = nil
	if f == nil {
		return func() {}
	}
	return f
}

// NewRequest builds a request with sensible defaults for this stack:
// HTTP/1.1, Content-Length set from body.
func NewRequest(method, path string, body []byte) *Request {
	return &Request{Method: method, Path: path, Proto: "HTTP/1.1", Header: Header{}, Body: body}
}

// Response is an HTTP response with a fully buffered body.
type Response struct {
	Status int
	Reason string
	Proto  string
	Header Header
	Body   []byte

	pooledBody
}

// NewResponse builds a response with status code and body.
func NewResponse(status int, body []byte) *Response {
	return &Response{Status: status, Reason: StatusText(status), Proto: "HTTP/1.1", Header: Header{}, Body: body}
}

// NewPooledResponse builds a response whose body is produced by an
// append-style render into a pooled buffer; the server releases the
// buffer via ReleaseBody after writing the response. On render error
// the buffer is released immediately and the error returned, so the
// ownership-sensitive sequence lives in exactly one place.
func NewPooledResponse(status int, render func(dst []byte) ([]byte, error)) (*Response, error) {
	buf := xmlsoap.GetBuffer()
	b, err := render(buf.B)
	if err != nil {
		xmlsoap.PutBuffer(buf)
		return nil, err
	}
	buf.B = b
	resp := NewResponse(status, b)
	resp.ReleaseBody = func() { xmlsoap.PutBuffer(buf) }
	return resp, nil
}

// errors surfaced by the codec.
var (
	ErrMalformed    = errors.New("httpx: malformed message")
	ErrHeaderTooBig = errors.New("httpx: header section too large")
	ErrBodyTooBig   = errors.New("httpx: body exceeds limit")
)

// Encode serializes the request to w with Content-Length framing. The
// head is assembled in a pooled buffer and the body bytes are written
// straight from r.Body, so encoding allocates nothing per message.
func (r *Request) Encode(w io.Writer) error {
	return r.encode(w, "", false)
}

// encode is Encode with the client's per-exchange supplements: hostIfMissing
// is emitted as the Host header when r.Header lacks one, and forceClose
// overrides Connection with "close". Neither mutates r.Header (the seed
// codec cloned the map instead).
func (r *Request) encode(w io.Writer, hostIfMissing string, forceClose bool) error {
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	buf := xmlsoap.GetBuffer()
	defer xmlsoap.PutBuffer(buf)
	b := buf.B
	b = append(b, r.Method...)
	b = append(b, ' ')
	b = append(b, r.Path...)
	b = append(b, ' ')
	b = append(b, proto...)
	b = append(b, '\r', '\n')
	b = r.Header.appendWire(b, len(r.Body), hostIfMissing, forceClose)
	buf.B = b
	if _, err := w.Write(b); err != nil {
		return err
	}
	if len(r.Body) > 0 {
		if _, err := w.Write(r.Body); err != nil {
			return err
		}
	}
	return nil
}

// Encode serializes the response to w with Content-Length framing, using
// the same pooled zero-copy scheme as Request.Encode.
func (r *Response) Encode(w io.Writer) error {
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	reason := r.Reason
	if reason == "" {
		reason = StatusText(r.Status)
	}
	buf := xmlsoap.GetBuffer()
	defer xmlsoap.PutBuffer(buf)
	b := buf.B
	b = append(b, proto...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(r.Status), 10)
	b = append(b, ' ')
	b = append(b, reason...)
	b = append(b, '\r', '\n')
	b = r.Header.appendWire(b, len(r.Body), "", false)
	buf.B = b
	if _, err := w.Write(b); err != nil {
		return err
	}
	if len(r.Body) > 0 {
		if _, err := w.Write(r.Body); err != nil {
			return err
		}
	}
	return nil
}

// ReadRequest parses one request from br. The body is freshly
// allocated and GC-owned; the server's hot path uses ReadRequestPooled
// instead.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	req, err := readRequestHead(br)
	if err != nil {
		return nil, err
	}
	req.Body, err = readBody(br, req.Header)
	if err != nil {
		return nil, err
	}
	return req, nil
}

// ReadRequestPooled is ReadRequest with the body read into a pooled
// buffer: the returned request's ReleaseBody returns it to the pool.
// The caller owns the buffer per the lifecycle contract above; on error
// nothing is retained.
func ReadRequestPooled(br *bufio.Reader) (*Request, error) {
	req, err := readRequestHead(br)
	if err != nil {
		return nil, err
	}
	req.Body, req.ReleaseBody, err = readBodyPooled(br, req.Header)
	if err != nil {
		return nil, err
	}
	return req, nil
}

func readRequestHead(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformed, line)
	}
	req := &Request{Method: parts[0], Path: parts[1], Proto: parts[2]}
	req.Header, err = readHeaders(br)
	if err != nil {
		return nil, err
	}
	return req, nil
}

// ReadResponse parses one response from br. The body is freshly
// allocated and GC-owned; the client's hot path uses ReadResponsePooled
// instead.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	resp, err := readResponseHead(br)
	if err != nil {
		return nil, err
	}
	resp.Body, err = readBody(br, resp.Header)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// ReadResponsePooled is ReadResponse with the body read into a pooled
// buffer; the returned response's ReleaseBody returns it to the pool.
func ReadResponsePooled(br *bufio.Reader) (*Response, error) {
	resp, err := readResponseHead(br)
	if err != nil {
		return nil, err
	}
	resp.Body, resp.ReleaseBody, err = readBodyPooled(br, resp.Header)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func readResponseHead(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformed, line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: bad status code %q", ErrMalformed, parts[1])
	}
	resp := &Response{Proto: parts[0], Status: status}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	resp.Header, err = readHeaders(br)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// wantsClose reports whether the message's Connection header asks to drop
// the connection after this exchange, honouring HTTP/1.0 defaults.
func wantsClose(proto string, h Header) bool {
	c := strings.ToLower(h.Get("Connection"))
	if proto == "HTTP/1.0" {
		return c != "keep-alive"
	}
	return c == "close"
}

// readLine reads one LF-terminated line, enforcing maxHeaderBytes as it
// accumulates so an unterminated or oversized head line fails with
// ErrHeaderTooBig instead of ballooning memory first.
func readLine(br *bufio.Reader) (string, error) {
	var long []byte
	for {
		frag, err := br.ReadSlice('\n')
		if err == nil {
			if long == nil {
				if len(frag) > maxHeaderBytes {
					// Unreachable with the server's 4 KiB bufio
					// readers, but the bound must not depend on the
					// caller's buffer size.
					return "", ErrHeaderTooBig
				}
				return strings.TrimRight(string(frag), "\r\n"), nil
			}
			long = append(long, frag...)
			if len(long) > maxHeaderBytes {
				return "", ErrHeaderTooBig
			}
			return strings.TrimRight(string(long), "\r\n"), nil
		}
		if err != bufio.ErrBufferFull {
			return "", err
		}
		// frag aliases br's internal buffer; copy before reading on.
		long = append(long, frag...)
		if len(long) > maxHeaderBytes {
			return "", ErrHeaderTooBig
		}
	}
}

func readHeaders(br *bufio.Reader) (Header, error) {
	// Presized for the handful of headers SOAP traffic carries, so the
	// map does not reallocate while filling.
	h := make(Header, 8)
	total := 0
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return h, nil
		}
		total += len(line)
		if total > maxHeaderBytes {
			return nil, ErrHeaderTooBig
		}
		i := strings.IndexByte(line, ':')
		if i <= 0 {
			return nil, fmt.Errorf("%w: bad header line %q", ErrMalformed, line)
		}
		key := strings.TrimSpace(line[:i])
		if key == "" {
			// A whitespace-only name would round-trip as ": value",
			// which parses as malformed; reject it at the source.
			return nil, fmt.Errorf("%w: bad header line %q", ErrMalformed, line)
		}
		h.Set(key, strings.TrimSpace(line[i+1:]))
	}
}

// readBody reads the message body into a fresh GC-owned slice.
func readBody(br *bufio.Reader, h Header) ([]byte, error) {
	body, _, err := readBodyInto(br, h, nil)
	return body, err
}

// readBodyPooled reads the message body into a pooled buffer and
// returns its release function. Bodiless messages return (nil, nil) —
// no buffer is drawn and there is nothing to release. On error the
// buffer is released before returning.
func readBodyPooled(br *bufio.Reader, h Header) ([]byte, func(), error) {
	if !hasBody(h) {
		return nil, nil, nil
	}
	buf := xmlsoap.GetBuffer()
	body, n, err := readBodyInto(br, h, buf.B)
	if err != nil {
		xmlsoap.PutBuffer(buf)
		return nil, nil, err
	}
	if n == 0 {
		// Declared but empty body (Content-Length: 0, or a chunked
		// stream with only the terminator).
		xmlsoap.PutBuffer(buf)
		return nil, nil, nil
	}
	buf.B = body
	return body, func() { xmlsoap.PutBuffer(buf) }, nil
}

// hasBody reports whether the framing headers declare a body at all.
func hasBody(h Header) bool {
	return strings.EqualFold(h.Get("Transfer-Encoding"), "chunked") || h.Get("Content-Length") != ""
}

// readBodyInto appends the framed body to dst (which may be nil for a
// fresh allocation or a pooled buffer's storage) and returns the
// extended slice plus the number of body bytes read.
func readBodyInto(br *bufio.Reader, h Header, dst []byte) ([]byte, int, error) {
	if strings.EqualFold(h.Get("Transfer-Encoding"), "chunked") {
		return readChunkedInto(br, dst)
	}
	cl := h.Get("Content-Length")
	if cl == "" {
		return dst, 0, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return dst, 0, fmt.Errorf("%w: bad Content-Length %q", ErrMalformed, cl)
	}
	if n > maxBodyBytes {
		return dst, 0, ErrBodyTooBig
	}
	start := len(dst)
	dst = appendZeros(dst, n)
	if _, err := io.ReadFull(br, dst[start:]); err != nil {
		return dst, 0, err
	}
	return dst, n, nil
}

func readChunkedInto(br *bufio.Reader, dst []byte) ([]byte, int, error) {
	start := len(dst)
	for {
		line, err := readLine(br)
		if err != nil {
			return dst, 0, err
		}
		// Ignore chunk extensions.
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		size, err := strconv.ParseInt(strings.TrimSpace(line), 16, 32)
		if err != nil || size < 0 {
			return dst, 0, fmt.Errorf("%w: bad chunk size %q", ErrMalformed, line)
		}
		if size == 0 {
			// Trailer section: read until blank line.
			for {
				t, err := readLine(br)
				if err != nil {
					return dst, 0, err
				}
				if t == "" {
					return dst, len(dst) - start, nil
				}
			}
		}
		if len(dst)-start+int(size) > maxBodyBytes {
			return dst, 0, ErrBodyTooBig
		}
		chunkStart := len(dst)
		dst = appendZeros(dst, int(size))
		if _, err := io.ReadFull(br, dst[chunkStart:]); err != nil {
			return dst, 0, err
		}
		// Trailing CRLF after each chunk.
		if _, err := readLine(br); err != nil {
			return dst, 0, err
		}
	}
}

// appendZeros extends dst by n zero bytes, reusing capacity when it can
// (the compiler lowers this append form to growslice+memclr with no
// temporary).
func appendZeros(dst []byte, n int) []byte {
	return append(dst, make([]byte, n)...)
}
