package httpx

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"unsafe"

	"repro/internal/xmlsoap"
)

// maxHeaderBytes bounds the head section — request/status line, header
// lines, and their CR/LF terminators — to keep a malicious or broken peer
// from ballooning memory.
const maxHeaderBytes = 64 << 10

// maxBodyBytes bounds message bodies. SOAP envelopes in this system are a
// few hundred bytes; 8 MiB leaves generous room for WSDL documents and
// batched mailbox downloads.
const maxBodyBytes = 8 << 20

// Request is an HTTP request with a fully buffered body.
//
// # Buffer lifecycle
//
// Messages on the hot path live in pooled buffers (xmlsoap.GetBuffer
// storage) with single-release ownership at every seam. A message read
// from the wire occupies exactly one pooled buffer holding head and body
// back to back: Method, Path, Proto, Reason, and every Header key and
// value alias the head bytes, and Body aliases the tail. The message
// STRUCTS, in turn, are connection-owned and reused (the server's
// Exchange holds one Request; the client's persistConn holds one
// Response), so one server-side exchange, from bytes on the socket to
// bytes out, moves exactly two pooled buffers and allocates no structs:
//
//	socket ──ReadRequestInto──▶ connection's Request (reused struct)
//	                                 │ buffer: head + body, pooled
//	                                 │ head: Method/Path/Proto/Header alias it
//	                                 │ body: ex.Req.Body, aliased by soap.Parse trees
//	                                 ▼
//	                            Handler.Serve(ex) ──▶ ex.Reply* records the
//	                                 │                 reply (pooled render,
//	                                 │                 adopted buffer, or bytes)
//	                                 ▼
//	socket ◀── one batched write (head+body), then the connection releases:
//	            reply buffer ─▶ back to pool, Defer hooks run
//	            req.Release() ─▶ request head+body buffer back to pool
//
// The connection owns the request buffer: handlers may read Body, the
// head fields, and parse trees aliasing Body freely until Serve returns
// (Finish, for hijacked exchanges), and must either finish with them by
// then, copy out what survives (Element.Detach, Envelope.Detach,
// Header.Detach, strings.Clone), or take over the release duty with
// TakeBody — echoservice.Async's reply goroutine is the canonical taker.
// TakeBody moves the whole buffer, so a taker keeps the head fields'
// backing bytes alive too; conversely, once a handler has taken the body
// the connection no longer trusts the head (it snapshots its keep-alive
// decision before dispatching), and the taker must not touch the reused
// structs — only the parsed data. On the client side the same shape
// applies to responses: Client.Do lends out the connection's Response,
// whose pooled head+body the caller releases via Response.Release (or
// forwards via TakeBody; rpcdisp relays a service response's buffer
// straight into its own reply this way — header values it copies across
// stay alive because the buffer's release moves with them). That release
// is also what returns the client connection to the idle pool, so
// forgetting it now strands a connection besides forfeiting the buffer;
// a double release or a use-after-release is a bug the pool's check mode
// (xmlsoap.EnablePoolCheck) turns into a panic.
//
// Messages read with plain ReadRequest/ReadResponse are fully detached —
// GC-owned strings and body, no release obligation; those constructors
// exist for cold paths and tests.
type Request struct {
	Method string
	// Path is the request-URI as sent on the wire, e.g. "/wsd/echo".
	Path   string
	Proto  string // "HTTP/1.1" unless overridden
	Header Header
	Body   []byte

	// RemoteAddr is filled by the server with the peer address.
	RemoteAddr string

	pooledBody
}

// pooledBody is the shared release-duty mechanism embedded in Request
// and Response, so both sides of an exchange follow one lifecycle
// contract. It can hold a pooled buffer directly (the reader paths,
// allocation-free) and/or an arbitrary release hook (relays and
// takers).
type pooledBody struct {
	// buf is the message's pooled storage: head+body for messages read
	// off the wire. Owned by the message until Release or TakeBody.
	buf *xmlsoap.Buffer
	// ReleaseBody, when non-nil, is an additional release hook run
	// exactly once by the buffer's owner; rpcdisp wires a relayed
	// response's duty through it. Use Release or TakeBody rather than
	// calling the field directly.
	ReleaseBody func()
}

// Release returns the message's pooled buffer (head and body) to the
// pool, if it has one and it was not already released or taken. It is
// idempotent, so owners can call it unconditionally on every exit path.
// Body, the head fields, and anything aliasing them must not be touched
// afterwards.
func (p *pooledBody) Release() {
	if b := p.buf; b != nil {
		p.buf = nil
		xmlsoap.PutBuffer(b)
	}
	if f := p.ReleaseBody; f != nil {
		p.ReleaseBody = nil
		f()
	}
}

// TakeBody transfers ownership of the pooled buffer to the caller: the
// previous owner will no longer release it when the exchange ends, and
// the returned function must be called exactly once after the last use
// of Body, the head fields, or anything aliasing them. For a fully
// GC-owned message it returns a no-op, so takers need no special case.
// A proxy relaying a client response as its own server response moves
// the obligation with it (rpcdisp does exactly this); echoservice.Async's
// reply goroutine is the canonical request-side taker.
func (p *pooledBody) TakeBody() func() {
	b, f := p.buf, p.ReleaseBody
	p.buf, p.ReleaseBody = nil, nil
	switch {
	case b != nil && f != nil:
		return func() { xmlsoap.PutBuffer(b); f() }
	case b != nil:
		return func() { xmlsoap.PutBuffer(b) }
	case f != nil:
		return f
	}
	return func() {}
}

// NewRequest builds a request with sensible defaults for this stack:
// HTTP/1.1, Content-Length set from body.
func NewRequest(method, path string, body []byte) *Request {
	return &Request{Method: method, Path: path, Proto: "HTTP/1.1", Body: body}
}

// Reset clears the request in place for reuse, keeping allocated header
// capacity. The pooled buffer, if still owned, is NOT released — owners
// release before resetting (a reused request whose buffer was taken must
// not double-free it). Connection-scoped reuse (Exchange, the
// MSG-Dispatcher's delivery loop) goes through here so steady-state
// traffic builds no fresh message structs.
func (r *Request) Reset() {
	r.Method, r.Path, r.Proto, r.RemoteAddr = "", "", "", ""
	r.Header.Reset()
	r.Body = nil
	r.buf = nil
	r.ReleaseBody = nil
}

// Response is an HTTP response with a fully buffered body. It follows the
// same buffer lifecycle as Request (see there).
type Response struct {
	Status int
	Reason string
	Proto  string
	Header Header
	Body   []byte

	pooledBody
}

// NewResponse builds a response with status code and body.
func NewResponse(status int, body []byte) *Response {
	return &Response{Status: status, Reason: StatusText(status), Proto: "HTTP/1.1", Body: body}
}

// Reset clears the response in place for reuse (see Request.Reset); the
// client's persistConn reuses one Response per connection through it.
func (r *Response) Reset() {
	r.Status = 0
	r.Reason, r.Proto = "", ""
	r.Header.Reset()
	r.Body = nil
	r.buf = nil
	r.ReleaseBody = nil
}

// errors surfaced by the codec.
var (
	ErrMalformed    = errors.New("httpx: malformed message")
	ErrHeaderTooBig = errors.New("httpx: header section too large")
	ErrBodyTooBig   = errors.New("httpx: body exceeds limit")
)

// coalesceLimit is the largest body that is copied into the head's
// pooled buffer so head and body leave in ONE Write call (one syscall,
// one netsim segment schedule) instead of a head flush followed by a
// body flush. It sits below maxPooledBuffer so a coalesced SOAP message
// never costs the pool its buffer; bigger bodies (WSDL documents,
// batched mailbox downloads) fall back to two writes.
const coalesceLimit = 32 << 10

// writeMsg sends an assembled head followed by body, coalescing the two
// into a single Write when the body is small (which on this stack is
// every SOAP envelope). buf owns head.
func writeMsg(w io.Writer, buf *xmlsoap.Buffer, head, body []byte) error {
	if len(body) > 0 && len(body) <= coalesceLimit {
		head = append(head, body...)
		buf.B = head
		_, err := w.Write(head)
		return err
	}
	if _, err := w.Write(head); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// Encode serializes the request to w with Content-Length framing. The
// head is assembled in a pooled buffer, the body is batched into the
// same write when it fits, and nothing is allocated per message.
func (r *Request) Encode(w io.Writer) error {
	return r.encode(w, "", false)
}

// encode is Encode with the client's per-exchange supplements: hostIfMissing
// is emitted as the Host header when r.Header lacks one, and forceClose
// overrides Connection with "close". Neither mutates r.Header (the seed
// codec cloned the map instead).
func (r *Request) encode(w io.Writer, hostIfMissing string, forceClose bool) error {
	buf := xmlsoap.GetBuffer()
	defer xmlsoap.PutBuffer(buf)
	b := r.appendHead(buf.B, hostIfMissing, forceClose)
	buf.B = b
	return writeMsg(w, buf, b, r.Body)
}

// appendHead appends the request's wire head — request line, header
// lines, terminating blank line — to b, with the same per-exchange
// supplements as encode. The body is framed (Content-Length) but not
// appended.
func (r *Request) appendHead(b []byte, hostIfMissing string, forceClose bool) []byte {
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	b = append(b, r.Method...)
	b = append(b, ' ')
	b = append(b, r.Path...)
	b = append(b, ' ')
	b = append(b, proto...)
	b = append(b, '\r', '\n')
	return r.Header.appendWire(b, len(r.Body), hostIfMissing, forceClose)
}

// encodeBatch serializes a burst of requests back to back into one shared
// pooled buffer and sends the whole batch in a single write — the
// pipelined-delivery counterpart of writeMsg's head+body coalescing, so a
// burst of N SOAP messages costs one syscall instead of N. Bodies above
// coalesceLimit are not copied: each rides as its own net.Buffers element
// between slices of the shared buffer, and the batch still leaves in one
// WriteTo (writev on real sockets; element-wise writes on pipe-like
// conns). Every request's Body must stay valid until encodeBatch returns;
// ownership is not transferred.
func encodeBatch(w io.Writer, reqs []*Request, hostIfMissing string) error {
	buf := xmlsoap.GetBuffer()
	defer xmlsoap.PutBuffer(buf)
	b := buf.B
	var chain net.Buffers
	start := 0
	for _, r := range reqs {
		b = r.appendHead(b, hostIfMissing, false)
		if n := len(r.Body); n > 0 && n <= coalesceLimit {
			b = append(b, r.Body...)
		} else if n > 0 {
			// Close the shared-buffer segment before the oversized body.
			// Later appends may move b to a fresh array, but the recorded
			// slice keeps referencing the bytes already written, so the
			// chain stays intact.
			chain = append(chain, b[start:len(b):len(b)], r.Body)
			start = len(b)
		}
	}
	buf.B = b
	if len(chain) == 0 {
		_, err := w.Write(b)
		return err
	}
	if start < len(b) {
		chain = append(chain, b[start:])
	}
	_, err := chain.WriteTo(w)
	return err
}

// Encode serializes the response to w with Content-Length framing, using
// the same pooled zero-copy scheme as Request.Encode.
func (r *Response) Encode(w io.Writer) error {
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	reason := r.Reason
	if reason == "" {
		reason = StatusText(r.Status)
	}
	buf := xmlsoap.GetBuffer()
	defer xmlsoap.PutBuffer(buf)
	b := buf.B
	b = append(b, proto...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(r.Status), 10)
	b = append(b, ' ')
	b = append(b, reason...)
	b = append(b, '\r', '\n')
	b = r.Header.appendWire(b, len(r.Body), "", false)
	buf.B = b
	return writeMsg(w, buf, b, r.Body)
}

// bstr views b as a string without copying. The result aliases b: it is
// valid exactly as long as the backing buffer and must be detached
// (strings.Clone) to outlive it — the same contract as xmlsoap's span
// strings.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// ReadRequest parses one request from br. The returned request is fully
// detached — GC-owned strings and body, nothing pooled, no release
// obligation. The server's hot path uses ReadRequestPooled instead.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	req, err := ReadRequestPooled(br)
	if err != nil {
		return nil, err
	}
	req.Method = strings.Clone(req.Method)
	req.Path = strings.Clone(req.Path)
	req.Proto = strings.Clone(req.Proto)
	req.Header.Detach()
	if req.Body != nil {
		req.Body = append([]byte(nil), req.Body...)
	}
	req.Release()
	return req, nil
}

// ReadRequestPooled is the zero-allocation request reader: the whole
// message — head and body — lands in one pooled buffer owned by the
// returned request, whose head fields and Body alias it. The caller
// owns the buffer per the lifecycle contract above; on error nothing is
// retained.
func ReadRequestPooled(br *bufio.Reader) (*Request, error) {
	req := &Request{}
	if err := ReadRequestInto(br, req); err != nil {
		return nil, err
	}
	return req, nil
}

// ReadRequestInto is ReadRequestPooled reading into a caller-owned,
// reusable request struct: req is reset, a fresh pooled buffer is drawn
// for head+body, and on success req owns it per the usual contract. The
// server's Exchange reads every request on a connection through one
// struct this way, so a keep-alive connection performs zero per-request
// message-struct allocations. The previous message must have been
// released (or its body taken) before the struct is reused.
func ReadRequestInto(br *bufio.Reader, req *Request) error {
	req.Reset()
	buf := xmlsoap.GetBuffer()
	head, err := readHead(br, buf)
	if err != nil {
		xmlsoap.PutBuffer(buf)
		return err
	}
	if err := req.parseHead(head); err != nil {
		xmlsoap.PutBuffer(buf)
		return err
	}
	body, n, err := readBodyInto(br, &req.Header, buf.B)
	if err != nil {
		xmlsoap.PutBuffer(buf)
		return err
	}
	buf.B = body
	if n > 0 {
		req.Body = body[len(body)-n:]
	}
	req.buf = buf
	return nil
}

// parseHead splits the request line and headers in place; every string it
// produces aliases head.
func (r *Request) parseHead(head []byte) error {
	line, rest := nextLine(head)
	// Replicate strings.SplitN(line, " ", 3): exactly two single-space
	// cuts, the remainder (which may itself contain spaces) is the
	// protocol version.
	i1 := strings.IndexByte(line, ' ')
	if i1 < 0 {
		return fmt.Errorf("%w: bad request line %q", ErrMalformed, line)
	}
	i2 := strings.IndexByte(line[i1+1:], ' ')
	if i2 < 0 {
		return fmt.Errorf("%w: bad request line %q", ErrMalformed, line)
	}
	proto := line[i1+1+i2+1:]
	if !strings.HasPrefix(proto, "HTTP/") {
		return fmt.Errorf("%w: bad request line %q", ErrMalformed, line)
	}
	r.Method = line[:i1]
	r.Path = line[i1+1 : i1+1+i2]
	r.Proto = proto
	return parseHeaderLines(rest, &r.Header)
}

// ReadResponse parses one response from br. The returned response is
// fully detached — GC-owned strings and body, no release obligation.
// The client's hot path uses ReadResponsePooled instead.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	resp, err := ReadResponsePooled(br)
	if err != nil {
		return nil, err
	}
	resp.Proto = strings.Clone(resp.Proto)
	resp.Reason = strings.Clone(resp.Reason)
	resp.Header.Detach()
	if resp.Body != nil {
		resp.Body = append([]byte(nil), resp.Body...)
	}
	resp.Release()
	return resp, nil
}

// ReadResponsePooled is the zero-allocation response reader; like
// ReadRequestPooled, head and body share one pooled buffer owned by the
// returned response.
func ReadResponsePooled(br *bufio.Reader) (*Response, error) {
	resp := &Response{}
	if err := ReadResponseInto(br, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// ReadResponseInto is ReadResponsePooled reading into a caller-owned,
// reusable response struct (see ReadRequestInto); the client's
// persistConn reads every response on a connection through one struct.
func ReadResponseInto(br *bufio.Reader, resp *Response) error {
	resp.Reset()
	buf := xmlsoap.GetBuffer()
	head, err := readHead(br, buf)
	if err != nil {
		xmlsoap.PutBuffer(buf)
		return err
	}
	if err := resp.parseHead(head); err != nil {
		xmlsoap.PutBuffer(buf)
		return err
	}
	body, n, err := readBodyInto(br, &resp.Header, buf.B)
	if err != nil {
		xmlsoap.PutBuffer(buf)
		return err
	}
	buf.B = body
	if n > 0 {
		resp.Body = body[len(body)-n:]
	}
	resp.buf = buf
	return nil
}

// parseHead splits the status line and headers in place.
func (r *Response) parseHead(head []byte) error {
	line, rest := nextLine(head)
	i1 := strings.IndexByte(line, ' ')
	if i1 < 0 || !strings.HasPrefix(line, "HTTP/") {
		return fmt.Errorf("%w: bad status line %q", ErrMalformed, line)
	}
	statusReason := line[i1+1:]
	statusStr := statusReason
	if i2 := strings.IndexByte(statusReason, ' '); i2 >= 0 {
		statusStr = statusReason[:i2]
		r.Reason = statusReason[i2+1:]
	}
	status, err := strconv.Atoi(statusStr)
	if err != nil {
		return fmt.Errorf("%w: bad status code %q", ErrMalformed, statusStr)
	}
	r.Proto = line[:i1]
	r.Status = status
	return parseHeaderLines(rest, &r.Header)
}

// nextLine cuts the first line off head, stripping exactly one "\r\n" (or
// bare "\n") terminator — a value byte that happens to be '\r' is data,
// not framing. readHead guarantees every line in head ends in '\n'.
func nextLine(head []byte) (line string, rest []byte) {
	i := 0
	for i < len(head) && head[i] != '\n' {
		i++
	}
	end := i
	if end > 0 && head[end-1] == '\r' {
		end--
	}
	if i < len(head) {
		i++
	}
	return bstr(head[:end]), head[i:]
}

// parseHeaderLines fills h from the header section (everything after the
// start line, including the terminating blank line). Keys keep their wire
// spelling; keys and values alias the head buffer. Duplicate keys (under
// sameKey) keep the first spelling and the last value, matching the
// frozen map parser's last-write-wins.
func parseHeaderLines(rest []byte, h *Header) error {
	for len(rest) > 0 {
		var line string
		line, rest = nextLine(rest)
		if line == "" {
			return nil
		}
		i := strings.IndexByte(line, ':')
		if i <= 0 {
			return fmt.Errorf("%w: bad header line %q", ErrMalformed, line)
		}
		key := strings.TrimSpace(line[:i])
		if key == "" {
			// A whitespace-only name would round-trip as ": value",
			// which parses as malformed; reject it at the source.
			return fmt.Errorf("%w: bad header line %q", ErrMalformed, line)
		}
		h.Set(key, strings.TrimSpace(line[i+1:]))
	}
	// readHead always ends the head with the blank line, so this is
	// unreachable; keep the loop total regardless.
	return nil
}

// wantsClose reports whether the message's Connection header asks to drop
// the connection after this exchange, honouring HTTP/1.0 defaults. The
// token compare is ASCII-case-insensitive and allocation-free (the old
// path lowercased the value, allocating on every mixed-case Keep-Alive).
func wantsClose(proto string, h *Header) bool {
	c := h.Get("Connection")
	if proto == "HTTP/1.0" {
		return !asciiEqualFold(c, "keep-alive")
	}
	return asciiEqualFold(c, "close")
}

// readHead reads the whole head — start line through the terminating
// blank line, CR/LFs included — into buf and returns the slice holding
// it. It enforces maxHeaderBytes on the raw head size as it accumulates,
// so an unterminated or oversized head fails with ErrHeaderTooBig
// instead of ballooning memory first. Lines may be split across the
// bufio buffer; fragments are copied out immediately, so the reader's
// internal buffer is never aliased.
func readHead(br *bufio.Reader, buf *xmlsoap.Buffer) ([]byte, error) {
	b := buf.B
	lineStart := 0
	for {
		frag, err := br.ReadSlice('\n')
		b = append(b, frag...)
		buf.B = b
		if len(b) > maxHeaderBytes {
			return nil, ErrHeaderTooBig
		}
		if err == bufio.ErrBufferFull {
			continue // current line continues in the next fragment
		}
		if err != nil {
			return nil, err
		}
		// One complete line landed; blank (just the terminator) ends
		// the head unless it is the start line position.
		n := len(b) - lineStart
		if lineStart > 0 && (n == 1 || (n == 2 && b[lineStart] == '\r')) {
			return b, nil
		}
		lineStart = len(b)
	}
}

// readLineAlloc reads one LF-terminated line for the chunked-framing
// paths (chunk-size lines, post-chunk CRLFs, trailers), stripping
// exactly one "\r\n" or bare "\n". These lines are framing discarded
// after parsing, so an allocated string is fine off the hot path; the
// per-line maxHeaderBytes bound prevents ballooning.
func readLineAlloc(br *bufio.Reader) (string, error) {
	var long []byte
	for {
		frag, err := br.ReadSlice('\n')
		if err == nil {
			if long == nil {
				if len(frag) > maxHeaderBytes {
					// Unreachable with the server's 4 KiB bufio
					// readers, but the bound must not depend on the
					// caller's buffer size.
					return "", ErrHeaderTooBig
				}
				return trimLineEnd(string(frag)), nil
			}
			long = append(long, frag...)
			if len(long) > maxHeaderBytes {
				return "", ErrHeaderTooBig
			}
			return trimLineEnd(string(long)), nil
		}
		if err != bufio.ErrBufferFull {
			return "", err
		}
		// frag aliases br's internal buffer; copy before reading on.
		long = append(long, frag...)
		if len(long) > maxHeaderBytes {
			return "", ErrHeaderTooBig
		}
	}
}

// trimLineEnd strips exactly one "\r\n" (or bare "\n") terminator.
func trimLineEnd(line string) string {
	line = strings.TrimSuffix(line, "\n")
	return strings.TrimSuffix(line, "\r")
}

// readBodyInto appends the framed body to dst (the message's pooled
// buffer, already holding the head) and returns the extended slice plus
// the number of body bytes read. Growing dst may move it to a fresh
// array; head strings keep aliasing the old bytes, which stay valid for
// the message's lifetime either way.
func readBodyInto(br *bufio.Reader, h *Header, dst []byte) ([]byte, int, error) {
	if strings.EqualFold(h.Get("Transfer-Encoding"), "chunked") {
		return readChunkedInto(br, dst)
	}
	cl := h.Get("Content-Length")
	if cl == "" {
		return dst, 0, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return dst, 0, fmt.Errorf("%w: bad Content-Length %q", ErrMalformed, cl)
	}
	if n > maxBodyBytes {
		return dst, 0, ErrBodyTooBig
	}
	start := len(dst)
	dst = appendZeros(dst, n)
	if _, err := io.ReadFull(br, dst[start:]); err != nil {
		return dst, 0, err
	}
	return dst, n, nil
}

func readChunkedInto(br *bufio.Reader, dst []byte) ([]byte, int, error) {
	start := len(dst)
	for {
		line, err := readLineAlloc(br)
		if err != nil {
			return dst, 0, err
		}
		// Ignore chunk extensions.
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		size, err := strconv.ParseInt(strings.TrimSpace(line), 16, 32)
		if err != nil || size < 0 {
			return dst, 0, fmt.Errorf("%w: bad chunk size %q", ErrMalformed, line)
		}
		if size == 0 {
			// Trailer section: read until blank line.
			for {
				t, err := readLineAlloc(br)
				if err != nil {
					return dst, 0, err
				}
				if t == "" {
					return dst, len(dst) - start, nil
				}
			}
		}
		if len(dst)-start+int(size) > maxBodyBytes {
			return dst, 0, ErrBodyTooBig
		}
		chunkStart := len(dst)
		dst = appendZeros(dst, int(size))
		if _, err := io.ReadFull(br, dst[chunkStart:]); err != nil {
			return dst, 0, err
		}
		// Trailing CRLF after each chunk.
		if _, err := readLineAlloc(br); err != nil {
			return dst, 0, err
		}
	}
}

// appendZeros extends dst by n zero bytes, reusing capacity when it can
// (the compiler lowers this append form to growslice+memclr with no
// temporary).
func appendZeros(dst []byte, n int) []byte {
	return append(dst, make([]byte, n)...)
}
