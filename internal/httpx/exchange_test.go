package httpx

import (
	"bufio"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/xmlsoap"
)

// TestExchangeReplyForms exercises every reply shape through a real
// server: render-into-pooled-buffer, adopted pooled buffer, plain bytes
// echoing the request, an unanswered exchange (500), and a handler that
// asks for close via the Connection header.
func TestExchangeReplyForms(t *testing.T) {
	handler := HandlerFunc(func(ex *Exchange) {
		switch ex.Req.Path {
		case "/render":
			if err := ex.Reply(StatusOK, func(dst []byte) ([]byte, error) {
				dst = append(dst, "rendered:"...)
				return append(dst, ex.Req.Body...), nil
			}); err != nil {
				t.Errorf("Reply: %v", err)
			}
		case "/buffer":
			buf := xmlsoap.GetBuffer()
			buf.B = append(buf.B, "buffered"...)
			ex.ReplyBuffer(StatusAccepted, buf)
		case "/echo":
			ex.ReplyBytes(StatusOK, ex.Req.Body)
		case "/close":
			ex.Header().Set("Connection", "close")
			ex.ReplyBytes(StatusOK, nil)
		case "/nothing":
			// Unanswered: the connection must produce 500.
		}
	})
	env := newSimEnv(t, handler, ServerConfig{}, ClientConfig{})

	cases := []struct {
		path   string
		status int
		body   string
	}{
		{"/render", StatusOK, "rendered:x"},
		{"/buffer", StatusAccepted, "buffered"},
		{"/echo", StatusOK, "x"},
		{"/nothing", StatusInternalServerError, ""},
		{"/close", StatusOK, ""},
	}
	for _, tc := range cases {
		resp, err := env.client.Do(env.addr, NewRequest("POST", tc.path, []byte("x")))
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if resp.Status != tc.status || string(resp.Body) != tc.body {
			t.Fatalf("%s: got %d %q, want %d %q", tc.path, resp.Status, resp.Body, tc.status, tc.body)
		}
		resp.Release()
	}
}

// TestExchangeDoubleReplyPanics pins the exactly-one-reply rule.
func TestExchangeDoubleReplyPanics(t *testing.T) {
	ex := &Exchange{}
	ex.ReplyBytes(StatusOK, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second reply did not panic")
		}
	}()
	ex.ReplyBytes(StatusOK, nil)
}

// TestExchangeHijack covers the async-reply path: the handler hijacks
// the exchange, replies from another goroutine, and the connection stays
// usable (keep-alive) afterwards.
func TestExchangeHijack(t *testing.T) {
	clkCh := make(chan clockSleeper, 1)
	handler := HandlerFunc(func(ex *Exchange) {
		ex.Hijack()
		body := ex.Req.Body // valid until Finish: the connection holds the buffer
		go func() {
			clk := <-clkCh
			clkCh <- clk
			clk.Sleep(10 * time.Millisecond)
			ex.ReplyBytes(StatusOK, body)
			ex.Finish()
		}()
	})
	env := newSimEnv(t, handler, ServerConfig{}, ClientConfig{})
	clkCh <- env.clk
	for i := 0; i < 3; i++ {
		resp, err := env.client.Do(env.addr, NewRequest("POST", "/h", []byte("async")))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != StatusOK || string(resp.Body) != "async" {
			t.Fatalf("hijacked reply = %d %q", resp.Status, resp.Body)
		}
		resp.Release()
	}
	if peak := env.server.ActiveConns.Peak(); peak != 1 {
		t.Fatalf("peak conns = %d, want 1 (hijack must preserve keep-alive)", peak)
	}
}

type clockSleeper interface{ Sleep(time.Duration) }

// TestExchangeDefer checks the Defer hook runs after the reply is
// written, exactly once.
func TestExchangeDefer(t *testing.T) {
	ran := make(chan struct{}, 2)
	handler := HandlerFunc(func(ex *Exchange) {
		ex.Defer(func() { ran <- struct{}{} })
		ex.ReplyBytes(StatusOK, nil)
	})
	env := newSimEnv(t, handler, ServerConfig{}, ClientConfig{})
	resp, err := env.client.Do(env.addr, NewRequest("POST", "/d", nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Release()
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("Defer hook did not run")
	}
	select {
	case <-ran:
		t.Fatal("Defer hook ran twice")
	default:
	}
}

// TestExchangeReuseIsolation drives several distinct requests down one
// keep-alive connection and checks nothing leaks between them through
// the reused Request struct or reply header set.
func TestExchangeReuseIsolation(t *testing.T) {
	handler := HandlerFunc(func(ex *Exchange) {
		if v := ex.Req.Header.Get("X-Tag"); v != "" {
			ex.Header().Set("X-Tag-Back", v)
		}
		ex.ReplyBytes(StatusOK, ex.Req.Body)
	})
	env := newSimEnv(t, handler, ServerConfig{}, ClientConfig{})
	bodies := []string{"first", "second with more bytes", "", "fourth"}
	for i, body := range bodies {
		req := NewRequest("POST", "/r", []byte(body))
		if i%2 == 0 {
			req.Header.Set("X-Tag", body)
		}
		resp, err := env.client.Do(env.addr, req)
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Body) != body {
			t.Fatalf("request %d: body %q, want %q", i, resp.Body, body)
		}
		back := resp.Header.Get("X-Tag-Back")
		if i%2 == 0 && back != body {
			t.Fatalf("request %d: X-Tag-Back = %q, want %q", i, back, body)
		}
		if i%2 == 1 && back != "" {
			t.Fatalf("request %d: X-Tag-Back leaked %q from previous exchange", i, back)
		}
		resp.Release()
	}
	if peak := env.server.ActiveConns.Peak(); peak != 1 {
		t.Fatalf("peak conns = %d, want 1", peak)
	}
}

// TestExchangeRetainedBodyWritePanics is the reuse-lifecycle fence the
// poolcheck mode provides (this suite's TestMain enables it; CI's race
// job builds with -tags poolcheck): a handler that keeps an alias of the
// request body past the release and writes through it is caught by the
// poison verification when the buffer next leaves the pool.
func TestExchangeRetainedBodyWritePanics(t *testing.T) {
	if !xmlsoap.PoolCheckEnabled() {
		t.Skip("pool lifecycle checker disabled")
	}
	var req Request
	br := bufio.NewReader(strings.NewReader(
		"POST /msg HTTP/1.1\r\nContent-Length: 9\r\n\r\nretainme!"))
	if err := ReadRequestInto(br, &req); err != nil {
		t.Fatal(err)
	}
	held := req.Body // the bug under test: an alias kept past the exchange
	req.Release()
	held[0] = 'X' // use-after-release write

	// The released buffer sits in the current P's private pool slot, so
	// the next Get on this goroutine draws it back and must panic on the
	// disturbed poison (same idiom as xmlsoap's lifecycle tests; the
	// panicking Get removes the buffer from the pool first).
	caught := func() (c bool) {
		defer func() { c = recover() != nil }()
		for i := 0; i < 64; i++ {
			xmlsoap.GetBuffer()
		}
		return false
	}()
	// Purge the pool in case the tainted buffer was never re-drawn, so
	// it cannot ambush a later test's GetBuffer (two GC cycles empty
	// sync.Pool).
	runtime.GC()
	runtime.GC()
	if !caught {
		t.Skip("poisoned buffer not re-drawn by this goroutine; pool purged")
	}
}

// TestExchangeRetainedHeadStringsPoisoned pins the detach rule for head
// strings on the reuse path: a header value retained raw across the
// release reads poison garbage afterwards, while Header.Detach (and
// strings.Clone) keep real copies alive.
func TestExchangeRetainedHeadStringsPoisoned(t *testing.T) {
	if !xmlsoap.PoolCheckEnabled() {
		t.Skip("pool lifecycle checker disabled")
	}
	var req Request
	br := bufio.NewReader(strings.NewReader(
		"POST /msg HTTP/1.1\r\nContent-Type: text/xml; charset=utf-8\r\n\r\n"))
	if err := ReadRequestInto(br, &req); err != nil {
		t.Fatal(err)
	}
	raw := req.Header.Get("Content-Type") // aliases the pooled head buffer
	detached := req.Header.Clone()        // copies out
	req.Release()

	if got := detached.Get("Content-Type"); got != "text/xml; charset=utf-8" {
		t.Fatalf("detached header = %q", got)
	}
	if raw == "text/xml; charset=utf-8" {
		t.Fatal("retained head string survived the release — poisoning is not covering heads")
	}

	// Header.Detach in place is the other sanctioned escape: after it,
	// the set survives the release (and the next reuse of the struct).
	br = bufio.NewReader(strings.NewReader(
		"POST /msg HTTP/1.1\r\nSOAPAction: \"urn:op\"\r\n\r\n"))
	if err := ReadRequestInto(br, &req); err != nil {
		t.Fatal(err)
	}
	req.Header.Detach()
	kept := req.Header
	req.Release()
	if got := kept.Get("SOAPAction"); got != `"urn:op"` {
		t.Fatalf("Header.Detach did not survive the release: %q", got)
	}
}
