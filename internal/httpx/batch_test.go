package httpx

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pipeListener hands out pre-arranged net.Pipe server ends; pipeDialer
// returns the matching client ends. Together they form the in-memory rig
// the batch write-count tests run on: pipes carry bytes verbatim with no
// simulated-network segmentation, so each conn.Write is observable.
type pipeListener struct {
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn, 16), closed: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, errors.New("pipeListener: closed")
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr("pipe") }

type pipeAddr string

func (a pipeAddr) Network() string { return "pipe" }
func (a pipeAddr) String() string  { return string(a) }

// writeCountConn counts Write calls on the underlying connection — the
// write-counting test double the batching acceptance criteria ask for
// (each Write on a real socket is one syscall).
type writeCountConn struct {
	net.Conn
	writes *atomic.Int64
}

func (c *writeCountConn) Write(b []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(b)
}

// pipeDialer dials the registered listener with a fresh pipe, counting
// the client side's writes.
type pipeDialer struct {
	ln     *pipeListener
	writes atomic.Int64
	dials  atomic.Int64
}

func (d *pipeDialer) DialTimeout(addr string, _ time.Duration) (net.Conn, error) {
	local, remote := net.Pipe()
	select {
	case d.ln.ch <- remote:
	case <-d.ln.closed:
		local.Close()
		return nil, errors.New("pipeDialer: listener closed")
	}
	d.dials.Add(1)
	return &writeCountConn{Conn: local, writes: &d.writes}, nil
}

// TestStreamDoBatchOneWrite pins the client half of the tentpole: a
// burst of pipelined requests leaves the stream in exactly ONE write
// call, and the responses come back in pipeline order, each valid for
// its callback.
func TestStreamDoBatchOneWrite(t *testing.T) {
	ln := newPipeListener()
	defer ln.Close()
	srv := NewServer(HandlerFunc(func(ex *Exchange) {
		ex.ReplyBytes(StatusOK, ex.Req.Body)
	}), ServerConfig{})
	srv.Start(ln)
	defer srv.Close()

	dialer := &pipeDialer{ln: ln}
	cli := NewClient(dialer, ClientConfig{})
	defer cli.Close()
	s := cli.Stream("svc:80")
	defer s.Close()

	const n = 8
	reqs := make([]*Request, n)
	for i := range reqs {
		reqs[i] = NewRequest("POST", "/echo", []byte(fmt.Sprintf("payload-%d", i)))
	}
	var got []string
	done, err := s.DoBatch(reqs, time.Second, func(i int, resp *Response) {
		if resp.Status != StatusOK {
			t.Errorf("response %d: HTTP %d", i, resp.Status)
		}
		got = append(got, string(resp.Body)) // detach: valid only in the callback
	})
	if err != nil || done != n {
		t.Fatalf("DoBatch = (%d, %v), want (%d, nil)", done, err, n)
	}
	for i, body := range got {
		if want := fmt.Sprintf("payload-%d", i); body != want {
			t.Errorf("response %d body = %q, want %q (pipeline order broken?)", i, body, want)
		}
	}
	if w := dialer.writes.Load(); w != 1 {
		t.Errorf("burst of %d requests took %d writes, want 1", n, w)
	}
	if d := dialer.dials.Load(); d != 1 {
		t.Errorf("dials = %d, want 1", d)
	}

	// A second burst reuses the stream's pinned connection.
	done, err = s.DoBatch(reqs[:3], time.Second, func(int, *Response) {})
	if err != nil || done != 3 {
		t.Fatalf("second DoBatch = (%d, %v)", done, err)
	}
	if d := dialer.dials.Load(); d != 1 {
		t.Errorf("second burst dialed again (dials = %d), want pinned connection reuse", d)
	}
}

// TestServeConnPipelinedRepliesCoalesce pins the server half: replies to
// requests that arrived pipelined in one burst leave in a single flush
// (one Write covering K replies), while a one-at-a-time client still
// gets one write per reply.
func TestServeConnPipelinedRepliesCoalesce(t *testing.T) {
	srv := NewServer(HandlerFunc(func(ex *Exchange) {
		ex.ReplyBytes(StatusOK, ex.Req.Body)
	}), ServerConfig{})
	ln := newPipeListener()
	defer ln.Close()
	srv.Start(ln)
	defer srv.Close()

	client, server := net.Pipe()
	defer client.Close()
	var serverWrites atomic.Int64
	ln.ch <- &writeCountConn{Conn: server, writes: &serverWrites}

	const k = 6
	var batch bytes.Buffer
	for i := 0; i < k; i++ {
		fmt.Fprintf(&batch, "POST /e HTTP/1.1\r\nContent-Length: 5\r\n\r\nreq-%d", i)
	}
	go client.Write(batch.Bytes())

	br := bufio.NewReader(client)
	for i := 0; i < k; i++ {
		resp, err := ReadResponse(br)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if want := fmt.Sprintf("req-%d", i); string(resp.Body) != want {
			t.Fatalf("response %d body = %q, want %q", i, resp.Body, want)
		}
	}
	if w := serverWrites.Load(); w != 1 {
		t.Errorf("%d pipelined replies took %d writes, want 1 coalesced flush", k, w)
	}

	// Sequential requests (input drained between them) flush per reply.
	for i := 0; i < 2; i++ {
		go client.Write([]byte("POST /e HTTP/1.1\r\nContent-Length: 3\r\n\r\nseq"))
		resp, err := ReadResponse(br)
		if err != nil {
			t.Fatalf("sequential response %d: %v", i, err)
		}
		if string(resp.Body) != "seq" {
			t.Fatalf("sequential body = %q", resp.Body)
		}
	}
	if w := serverWrites.Load(); w != 3 {
		t.Errorf("after 2 sequential exchanges writes = %d, want 3 (1 batched + 2 single)", w)
	}
}

// TestDoBatchSingleAndEmpty covers the degenerate burst sizes: zero
// requests is a no-op, one request takes the plain DoTimeout path.
func TestDoBatchSingleAndEmpty(t *testing.T) {
	ln := newPipeListener()
	defer ln.Close()
	srv := NewServer(HandlerFunc(func(ex *Exchange) {
		ex.ReplyBytes(StatusOK, ex.Req.Body)
	}), ServerConfig{})
	srv.Start(ln)
	defer srv.Close()
	cli := NewClient(&pipeDialer{ln: ln}, ClientConfig{})
	defer cli.Close()
	s := cli.Stream("svc:80")
	defer s.Close()

	if done, err := s.DoBatch(nil, time.Second, nil); done != 0 || err != nil {
		t.Fatalf("empty DoBatch = (%d, %v)", done, err)
	}
	var body string
	done, err := s.DoBatch([]*Request{NewRequest("POST", "/e", []byte("solo"))}, time.Second,
		func(_ int, resp *Response) { body = string(resp.Body) })
	if done != 1 || err != nil || body != "solo" {
		t.Fatalf("single DoBatch = (%d, %v), body %q", done, err, body)
	}
}

// TestDoBatchMidBatchClose pins the error-isolation contract: a peer
// that answers part of a pipelined burst and then drops the connection
// yields done = answered count and a non-nil error, so the caller can
// requeue the tail.
func TestDoBatchMidBatchClose(t *testing.T) {
	ln := newPipeListener()
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		br := bufio.NewReader(conn)
		// Answer the first two requests, then slam the connection.
		for i := 0; i < 2; i++ {
			if _, err := ReadRequest(br); err != nil {
				conn.Close()
				return
			}
		}
		conn.Write([]byte("HTTP/1.1 202 Accepted\r\nContent-Length: 0\r\n\r\n" +
			"HTTP/1.1 202 Accepted\r\nContent-Length: 0\r\n\r\n"))
		conn.Close()
	}()
	cli := NewClient(&pipeDialer{ln: ln}, ClientConfig{})
	defer cli.Close()
	s := cli.Stream("svc:80")
	defer s.Close()

	reqs := make([]*Request, 5)
	for i := range reqs {
		reqs[i] = NewRequest("POST", "/in", []byte("m"))
	}
	var handled int
	done, err := s.DoBatch(reqs, time.Second, func(i int, resp *Response) {
		if resp.Status != StatusAccepted {
			t.Errorf("response %d: HTTP %d", i, resp.Status)
		}
		handled++
	})
	if done != 2 || handled != 2 {
		t.Fatalf("done = %d (handled %d), want 2", done, handled)
	}
	if err == nil {
		t.Fatal("mid-batch close must surface an error for the tail")
	}
}

// TestEncodeBatchBigBody exercises the vectored-chain path: a body above
// coalesceLimit is not copied into the shared buffer but still arrives
// byte-identical, interleaved correctly with coalesced neighbors.
func TestEncodeBatchBigBody(t *testing.T) {
	big := bytes.Repeat([]byte("x"), coalesceLimit+100)
	reqs := []*Request{
		NewRequest("POST", "/a", []byte("small-1")),
		NewRequest("POST", "/b", big),
		NewRequest("POST", "/c", []byte("small-2")),
	}
	var out bytes.Buffer
	if err := encodeBatch(&out, reqs, "host:80"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&out)
	for i, want := range [][]byte{[]byte("small-1"), big, []byte("small-2")} {
		req, err := ReadRequest(br)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !bytes.Equal(req.Body, want) {
			t.Fatalf("request %d body mismatch (%d vs %d bytes)", i, len(req.Body), len(want))
		}
		if req.Header.Get("Host") != "host:80" {
			t.Fatalf("request %d Host = %q", i, req.Header.Get("Host"))
		}
	}
	if strings.Contains(out.String(), "\r\n\r\n\r\n") {
		t.Fatal("batch framing produced stray blank lines")
	}
}
