package httpx

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
)

// Dialer opens connections by "host:port" address. netsim.Host implements
// it directly; NetDialer adapts the real network.
type Dialer interface {
	DialTimeout(addr string, timeout time.Duration) (net.Conn, error)
}

// NetDialer is the real-TCP Dialer used by the cmd/ daemons.
type NetDialer struct{}

// DialTimeout implements Dialer over net.DialTimeout.
func (NetDialer) DialTimeout(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// ClientConfig tunes a Client.
type ClientConfig struct {
	// Clock drives deadlines; defaults to the wall clock.
	Clock clock.Clock
	// DialTimeout bounds connection establishment. 0 means 21s (the
	// classic TCP connect timeout the paper's firewalled sends hit).
	DialTimeout time.Duration
	// RequestTimeout bounds one full request/response exchange. 0
	// means 30s, the HTTP/TCP timeout the paper cites as the limit on
	// RPC interactions.
	RequestTimeout time.Duration
	// MaxIdlePerHost caps pooled keep-alive connections per target.
	// 0 means 4.
	MaxIdlePerHost int
	// IdleConnTTL closes pooled connections that have sat idle longer
	// than this (the server side will have reaped them anyway — its
	// default idle timeout is 30s — so holding them only accumulates
	// dead sockets). 0 means DefaultIdleConnTTL; negative disables
	// expiry.
	IdleConnTTL time.Duration
	// DisableKeepAlive forces one connection per exchange (ablation:
	// the paper argues batching over held connections beats short-lived
	// ones).
	DisableKeepAlive bool
}

// DefaultRequestTimeout is the end-to-end exchange budget; the paper's
// discussion of RPC through intermediaries revolves around responses that
// outlive this kind of limit.
const DefaultRequestTimeout = 30 * time.Second

// DefaultIdleConnTTL is how long an unused pooled connection is kept
// before eviction — comfortably past the server's 30s keep-alive reaper,
// so the TTL only fires on connections that are already dead weight.
const DefaultIdleConnTTL = 90 * time.Second

// Client is a pooling HTTP/1.1 client over an arbitrary Dialer.
//
// # Connection-owned exchanges
//
// Each connection (persistConn) owns one reusable Response struct: Do
// reads every response on that connection into the same struct, so a
// kept-alive connection performs zero per-exchange message-struct
// allocations. Ownership therefore gates reuse: the connection returns
// to the idle pool when the caller releases the response (resp.Release,
// or the function TakeBody returned). Until then the struct and its
// pooled buffer are the caller's; after the release neither may be
// touched — the connection's next exchange overwrites the struct, and
// the poolcheck mode poisons the buffer. Skipping a release no longer
// merely forfeits buffer reuse: it also strands the connection (never
// pooled, closed only by GC finalizers), so the PR 3 rule — exactly one
// release per message — is now load-bearing on the client side too.
type Client struct {
	dialer Dialer
	cfg    ClientConfig

	mu     sync.Mutex
	idle   map[string][]*persistConn
	closed bool
}

// persistConn is one client connection and the exchange state it owns:
// the reusable Response struct and the release hook that returns the
// connection to the pool (or a Stream) once the caller is done with the
// response.
type persistConn struct {
	c    *Client
	addr string
	conn net.Conn
	br   *bufio.Reader

	// resp is the connection's reusable response. Valid from roundTrip
	// until the caller's release; overwritten by the next exchange.
	resp Response
	// finish is resp's ReleaseBody hook, built once per connection so
	// the steady state allocates no closures.
	finish func()
	// closeAfter records the exchange's close verdict for finish.
	closeAfter bool
	// stream, when non-nil, owns the connection instead of the idle
	// pool; finish hands it back there.
	stream *Stream
	// idleSince timestamps entry into the idle pool for TTL eviction.
	idleSince time.Time
	// armed is the connection deadline currently set on conn, kept across
	// exchanges so SetDeadline is amortized (see armDeadline).
	armed time.Time
}

// NewClient builds a client using dialer.
func NewClient(dialer Dialer, cfg ClientConfig) *Client {
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 21 * time.Second
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxIdlePerHost == 0 {
		cfg.MaxIdlePerHost = 4
	}
	if cfg.IdleConnTTL == 0 {
		cfg.IdleConnTTL = DefaultIdleConnTTL
	}
	return &Client{dialer: dialer, cfg: cfg, idle: make(map[string][]*persistConn)}
}

// Do sends req to addr ("host:port") and returns the response. Pooled
// connections are reused; a stale pooled connection is retried once on a
// fresh dial. The whole exchange is bounded by RequestTimeout (overridable
// per call with DoTimeout). req is never mutated — callers may reuse one
// Request across any number of Do calls (and reset-and-refill one, as
// the MSG-Dispatcher's delivery loop does).
//
// Ownership: the response — struct and pooled head+body buffer — is
// owned by the underlying connection and lent to the caller until
// resp.Release (or the release function resp.TakeBody returns) runs;
// that same release returns the connection to the idle pool. Release
// exactly once, after the body and anything aliasing it (a soap.Parse
// tree, copied header strings) are done with.
func (c *Client) Do(addr string, req *Request) (*Response, error) {
	return c.DoTimeout(addr, req, c.cfg.RequestTimeout)
}

// DoTimeout is Do with an explicit exchange budget.
func (c *Client) DoTimeout(addr string, req *Request, timeout time.Duration) (*Response, error) {
	deadline := c.cfg.Clock.Now().Add(timeout)

	// First try a pooled connection; it may have been closed by the
	// server's idle timeout, in which case retry on a fresh dial.
	if pc := c.takeIdle(addr); pc != nil {
		resp, err := pc.roundTrip(req, deadline)
		if err == nil {
			return resp, nil
		}
		pc.conn.Close()
	}

	pc, err := c.dial(addr, deadline)
	if err != nil {
		return nil, err
	}
	resp, err := pc.roundTrip(req, deadline)
	if err != nil {
		pc.conn.Close()
		return nil, err
	}
	return resp, nil
}

// dial opens a fresh connection to addr within the exchange deadline.
func (c *Client) dial(addr string, deadline time.Time) (*persistConn, error) {
	dialBudget := c.cfg.DialTimeout
	if remaining := deadline.Sub(c.cfg.Clock.Now()); remaining < dialBudget {
		dialBudget = remaining
	}
	if dialBudget <= 0 {
		return nil, &clientTimeoutError{addr: addr}
	}
	conn, err := c.dialer.DialTimeout(addr, dialBudget)
	if err != nil {
		return nil, fmt.Errorf("httpx: dial %s: %w", addr, err)
	}
	return c.newPersistConn(addr, conn), nil
}

func (c *Client) newPersistConn(addr string, conn net.Conn) *persistConn {
	// The connection — and with it pc.addr, used as the idle-pool key
	// and as the Host header of every request it carries — outlives the
	// exchange that dialed it, whose addr may alias a pooled buffer
	// (SplitURL slices the parsed To header). Detach once per dial.
	pc := &persistConn{c: c, addr: strings.Clone(addr), conn: conn, br: bufio.NewReader(conn)}
	pc.finish = func() {
		if s := pc.stream; s != nil {
			s.finished(pc)
			return
		}
		if pc.closeAfter {
			pc.conn.Close()
			return
		}
		pc.c.putIdle(pc)
	}
	return pc
}

// armDeadline arms pc's connection deadline, amortizing SetDeadline the
// same way the server's read loop does: the previous arm is kept while it
// is no later than the requested deadline and at least half the requested
// budget remains on it, so a hot keep-alive connection re-arms once per
// ~timeout/2 instead of on every exchange. (On real sockets SetDeadline
// is a timer re-arm; on net.Pipe it allocates a cancel channel and an
// AfterFunc per call — the dominant per-exchange allocation before this.)
// A kept deadline only ever shortens the budget, never extends it, and by
// at most half; the stale-connection retry path absorbs the rare case
// where the shortened budget expires mid-exchange.
func (pc *persistConn) armDeadline(deadline time.Time) {
	now := pc.c.cfg.Clock.Now()
	if a := pc.armed; !a.IsZero() && !a.After(deadline) && a.Sub(now) >= deadline.Sub(now)/2 {
		return
	}
	pc.armed = deadline
	pc.conn.SetDeadline(deadline)
}

// roundTrip performs one request/response on pc. The response is read
// into pc's reusable struct, and its release hook returns pc to the pool
// (or its Stream) — the connection is out of circulation exactly as long
// as the caller holds the response.
func (pc *persistConn) roundTrip(req *Request, deadline time.Time) (*Response, error) {
	c := pc.c
	pc.armDeadline(deadline)
	// Host and Connection are supplied at encode time rather than by
	// cloning the header set: nothing is allocated and req is never
	// mutated, so retries re-encode the identical message.
	if err := req.encode(pc.conn, pc.addr, c.cfg.DisableKeepAlive); err != nil {
		return nil, fmt.Errorf("httpx: write to %s: %w", pc.addr, err)
	}
	resp := &pc.resp
	if err := ReadResponseInto(pc.br, resp); err != nil {
		return nil, fmt.Errorf("httpx: read from %s: %w", pc.addr, err)
	}
	// The close verdict is snapshotted now (the caller may release from
	// another goroutine, and the header strings die with the buffer).
	// The deadline is deliberately left armed on keep-alive success:
	// clearing it would cost a SetDeadline per exchange, and the next
	// exchange re-arms (or keeps) it anyway. A deadline that fires while
	// the connection sits in the idle pool just makes the next reuse look
	// stale, which the fresh-dial retry already handles.
	pc.closeAfter = c.cfg.DisableKeepAlive || wantsClose(resp.Proto, &resp.Header)
	resp.ReleaseBody = pc.finish
	return resp, nil
}

// batchTrip performs a pipelined burst on pc: all requests leave in one
// vectored write (encodeBatch), then the responses are read back in
// pipeline order, each handed to handle while it is valid. One deadline
// covers the whole burst — one SetDeadline syscall per batch, not per
// message.
//
// Unlike roundTrip, ownership of each response never leaves the
// connection: handle borrows the reusable Response for the duration of
// the call and batchTrip releases its pooled buffer immediately after,
// before reading the next response into the same struct. A callback that
// needs bytes past its return must detach them.
//
// done reports how many responses were fully processed. A peer that
// closes mid-batch (Connection: close before the last response, or a
// read error) strands the written tail; the caller requeues reqs[done:].
func (pc *persistConn) batchTrip(reqs []*Request, deadline time.Time, handle func(i int, resp *Response)) (done int, err error) {
	pc.armDeadline(deadline)
	if err := encodeBatch(pc.conn, reqs, pc.addr); err != nil {
		return 0, fmt.Errorf("httpx: batch write to %s: %w", pc.addr, err)
	}
	resp := &pc.resp
	for i := range reqs {
		if err := ReadResponseInto(pc.br, resp); err != nil {
			return i, fmt.Errorf("httpx: read from %s: %w", pc.addr, err)
		}
		// Snapshot the close verdict before handle: the header strings
		// die with the buffer released below.
		closeAfter := wantsClose(resp.Proto, &resp.Header)
		handle(i, resp)
		resp.Release()
		if closeAfter {
			pc.closeAfter = true
			done = i + 1
			if done < len(reqs) {
				return done, fmt.Errorf("httpx: %s closed the connection after %d of %d batched responses", pc.addr, done, len(reqs))
			}
			return done, nil
		}
	}
	pc.closeAfter = false // deadline stays armed; see armDeadline
	return len(reqs), nil
}

// takeIdle pops the most recently parked connection for addr, evicting
// any that have outlived IdleConnTTL along the way.
func (c *Client) takeIdle(addr string) *persistConn {
	c.mu.Lock()
	expired := c.pruneIdleLocked(addr)
	list := c.idle[addr]
	var pc *persistConn
	if len(list) > 0 {
		pc = list[len(list)-1]
		c.idle[addr] = list[:len(list)-1]
	}
	c.mu.Unlock()
	for _, dead := range expired {
		dead.conn.Close()
	}
	return pc
}

// putIdle parks pc for reuse, unless the pool is closed, full, or pc's
// slot is taken by younger connections; TTL-expired entries are evicted
// first. The pool is keyed on pc.addr, the detached per-connection copy.
func (c *Client) putIdle(pc *persistConn) {
	addr := pc.addr
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	expired := c.pruneIdleLocked(addr)
	drop := c.closed || len(c.idle[addr]) >= c.cfg.MaxIdlePerHost
	if !drop {
		pc.idleSince = now
		c.idle[addr] = append(c.idle[addr], pc)
	}
	c.mu.Unlock()
	for _, dead := range expired {
		dead.conn.Close()
	}
	if drop {
		pc.conn.Close()
	}
}

// pruneIdleLocked removes TTL-expired connections for addr from the pool
// (oldest first — parking is LIFO, so expiry is a prefix) and returns
// them for closing outside the lock. Caller holds c.mu.
func (c *Client) pruneIdleLocked(addr string) []*persistConn {
	ttl := c.cfg.IdleConnTTL
	if ttl < 0 {
		return nil
	}
	list := c.idle[addr]
	cutoff := c.cfg.Clock.Now().Add(-ttl)
	n := 0
	for n < len(list) && list[n].idleSince.Before(cutoff) {
		n++
	}
	if n == 0 {
		return nil
	}
	expired := make([]*persistConn, n)
	copy(expired, list[:n])
	remaining := copy(list, list[n:])
	for i := remaining; i < len(list); i++ {
		list[i] = nil
	}
	c.idle[addr] = list[:remaining]
	return expired
}

// IdleConns reports pooled connections for addr (tests/metrics); expired
// entries are evicted first, so the count reflects usable connections.
func (c *Client) IdleConns(addr string) int {
	c.mu.Lock()
	expired := c.pruneIdleLocked(addr)
	n := len(c.idle[addr])
	c.mu.Unlock()
	for _, dead := range expired {
		dead.conn.Close()
	}
	return n
}

// Close drops all pooled connections. In-flight exchanges are unaffected.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	var all []*persistConn
	for _, list := range c.idle {
		all = append(all, list...)
	}
	c.idle = make(map[string][]*persistConn)
	c.mu.Unlock()
	for _, pc := range all {
		pc.conn.Close()
	}
}

// Stream is a session pinned to one destination: consecutive exchanges
// reuse the same connection directly, without re-entering the idle pool
// between them. It is the client-side face of the paper's held delivery
// connections — the MSG-Dispatcher's WsThread opens one Stream per
// destination binding and pipelines every queued message through it.
//
// A Stream is a sequential session: the previous response must be
// released before the next Do (the release is what hands the connection
// back to the stream). Close returns a healthy connection to the shared
// idle pool so the next binding can pick it up. Streams are not safe for
// concurrent Do calls.
type Stream struct {
	c    *Client
	addr string

	mu     sync.Mutex
	pc     *persistConn
	busy   bool
	closed bool
}

// Stream opens a session to addr. The connection is established lazily —
// adopted from the idle pool when one is parked there, dialed otherwise —
// on the first Do.
func (c *Client) Stream(addr string) *Stream {
	return &Stream{c: c, addr: addr}
}

// errors surfaced by Stream misuse.
var (
	ErrStreamClosed = errors.New("httpx: stream closed")
	ErrStreamBusy   = errors.New("httpx: previous stream response not yet released")
)

// Do performs one exchange on the stream's connection with the client's
// default RequestTimeout. Response ownership is exactly as Client.Do;
// releasing the response is what makes the stream ready for the next Do.
func (s *Stream) Do(req *Request) (*Response, error) {
	return s.DoTimeout(req, s.c.cfg.RequestTimeout)
}

// DoTimeout is Do with an explicit exchange budget. A stale pinned
// connection is retried once on a fresh dial, exactly as Client.Do.
func (s *Stream) DoTimeout(req *Request, timeout time.Duration) (*Response, error) {
	deadline := s.c.cfg.Clock.Now().Add(timeout)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrStreamClosed
	}
	if s.busy {
		s.mu.Unlock()
		return nil, ErrStreamBusy
	}
	pc := s.pc
	if pc == nil {
		// Adopt a parked connection to this destination, if any.
		if pc = s.c.takeIdle(s.addr); pc != nil {
			pc.stream = s
			s.pc = pc
		}
	}
	s.busy = true
	s.mu.Unlock()

	if pc != nil {
		resp, err := pc.roundTrip(req, deadline)
		if err == nil {
			return resp, nil
		}
		pc.conn.Close()
		s.mu.Lock()
		s.pc = nil
		s.mu.Unlock()
	}
	pc, err := s.c.dial(s.addr, deadline)
	if err != nil {
		s.mu.Lock()
		s.busy = false
		s.mu.Unlock()
		return nil, err
	}
	pc.stream = s
	s.mu.Lock()
	s.pc = pc
	s.mu.Unlock()
	resp, err := pc.roundTrip(req, deadline)
	if err != nil {
		pc.conn.Close()
		s.mu.Lock()
		s.pc = nil
		s.busy = false
		s.mu.Unlock()
		return nil, err
	}
	return resp, nil
}

// DoBatch sends a burst of requests pipelined over the stream's
// connection — one vectored write for the whole batch, one deadline
// re-arm — and reads the responses back in order. For each response,
// handle(i, resp) is called with the connection's reusable Response;
// the response (head fields, Body, anything aliasing them) is valid only
// until the callback returns, after which DoBatch releases it and reads
// the next response into the same struct. The callback must not call
// Release or TakeBody; it detaches what survives.
//
// done reports how many responses were fully processed (handled and
// released), always a prefix of reqs. On a mid-batch failure — write
// error, read error, or a peer that closed before the last response —
// done < len(reqs) and err is non-nil; the caller decides the tail's
// fate (the MSG-Dispatcher requeues it). A stale pinned connection is
// retried once on a fresh dial, but only while done == 0, so no message
// is ever double-processed. With one request, or under DisableKeepAlive
// (no pipelining over per-exchange connections), DoBatch degrades to
// sequential DoTimeout exchanges.
func (s *Stream) DoBatch(reqs []*Request, timeout time.Duration, handle func(i int, resp *Response)) (done int, err error) {
	if len(reqs) == 0 {
		return 0, nil
	}
	if len(reqs) == 1 || s.c.cfg.DisableKeepAlive {
		for i, req := range reqs {
			resp, err := s.DoTimeout(req, timeout)
			if err != nil {
				return i, err
			}
			handle(i, resp)
			resp.Release()
		}
		return len(reqs), nil
	}
	deadline := s.c.cfg.Clock.Now().Add(timeout)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrStreamClosed
	}
	if s.busy {
		s.mu.Unlock()
		return 0, ErrStreamBusy
	}
	pc := s.pc
	if pc == nil {
		if pc = s.c.takeIdle(s.addr); pc != nil {
			pc.stream = s
			s.pc = pc
		}
	}
	s.busy = true
	s.mu.Unlock()

	if pc != nil {
		done, err = pc.batchTrip(reqs, deadline, handle)
		if err == nil || done > 0 {
			s.batchFinished(pc, err)
			return done, err
		}
		// Nothing processed on a reused connection: it likely went stale
		// in the pool. Retry the whole batch once on a fresh dial — no
		// callback has run, so re-encoding re-reads intact request bodies.
		pc.conn.Close()
		s.mu.Lock()
		s.pc = nil
		s.mu.Unlock()
	}
	pc, derr := s.c.dial(s.addr, deadline)
	if derr != nil {
		s.mu.Lock()
		s.busy = false
		s.mu.Unlock()
		return 0, derr
	}
	pc.stream = s
	s.mu.Lock()
	s.pc = pc
	s.mu.Unlock()
	done, err = pc.batchTrip(reqs, deadline, handle)
	s.batchFinished(pc, err)
	return done, err
}

// batchFinished returns the connection to the stream after a batch: the
// responses were all released inside batchTrip, so there is no deferred
// release hook — the stream is ready (or the connection disposed of)
// immediately.
func (s *Stream) batchFinished(pc *persistConn, err error) {
	dead := err != nil || pc.closeAfter
	s.mu.Lock()
	s.busy = false
	closed := s.closed
	if dead || closed {
		s.pc = nil
	}
	s.mu.Unlock()
	switch {
	case dead:
		pc.conn.Close()
	case closed:
		pc.stream = nil
		pc.c.putIdle(pc)
	}
}

// finished is the stream-mode release hook: the caller released the
// exchange's response, so the connection is the stream's again — or, if
// the exchange demanded close / the stream closed meanwhile, disposed of.
func (s *Stream) finished(pc *persistConn) {
	s.mu.Lock()
	s.busy = false
	dead := pc.closeAfter
	closed := s.closed
	if dead || closed {
		s.pc = nil
	}
	s.mu.Unlock()
	switch {
	case dead:
		pc.conn.Close()
	case closed:
		pc.stream = nil
		pc.c.putIdle(pc)
	}
}

// Close ends the session. An idle healthy connection is returned to the
// client's shared pool (the next binding to this destination adopts it
// back); a connection still lent out follows the same path when its
// response is released.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	pc := s.pc
	if s.busy || pc == nil {
		s.mu.Unlock()
		return // finished() hands the connection off
	}
	s.pc = nil
	s.mu.Unlock()
	pc.stream = nil
	s.c.putIdle(pc)
}

// clientTimeoutError is returned when the exchange budget is exhausted
// before the request could even be sent.
type clientTimeoutError struct{ addr string }

func (e *clientTimeoutError) Error() string   { return "httpx: request to " + e.addr + " timed out" }
func (e *clientTimeoutError) Timeout() bool   { return true }
func (e *clientTimeoutError) Temporary() bool { return true }
