package httpx

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
)

// Dialer opens connections by "host:port" address. netsim.Host implements
// it directly; NetDialer adapts the real network.
type Dialer interface {
	DialTimeout(addr string, timeout time.Duration) (net.Conn, error)
}

// NetDialer is the real-TCP Dialer used by the cmd/ daemons.
type NetDialer struct{}

// DialTimeout implements Dialer over net.DialTimeout.
func (NetDialer) DialTimeout(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// ClientConfig tunes a Client.
type ClientConfig struct {
	// Clock drives deadlines; defaults to the wall clock.
	Clock clock.Clock
	// DialTimeout bounds connection establishment. 0 means 21s (the
	// classic TCP connect timeout the paper's firewalled sends hit).
	DialTimeout time.Duration
	// RequestTimeout bounds one full request/response exchange. 0
	// means 30s, the HTTP/TCP timeout the paper cites as the limit on
	// RPC interactions.
	RequestTimeout time.Duration
	// MaxIdlePerHost caps pooled keep-alive connections per target.
	// 0 means 4.
	MaxIdlePerHost int
	// DisableKeepAlive forces one connection per exchange (ablation:
	// the paper argues batching over held connections beats short-lived
	// ones).
	DisableKeepAlive bool
}

// DefaultRequestTimeout is the end-to-end exchange budget; the paper's
// discussion of RPC through intermediaries revolves around responses that
// outlive this kind of limit.
const DefaultRequestTimeout = 30 * time.Second

// Client is a pooling HTTP/1.1 client over an arbitrary Dialer.
type Client struct {
	dialer Dialer
	cfg    ClientConfig

	mu     sync.Mutex
	idle   map[string][]*persistConn
	closed bool
}

type persistConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// NewClient builds a client using dialer.
func NewClient(dialer Dialer, cfg ClientConfig) *Client {
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 21 * time.Second
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxIdlePerHost == 0 {
		cfg.MaxIdlePerHost = 4
	}
	return &Client{dialer: dialer, cfg: cfg, idle: make(map[string][]*persistConn)}
}

// Do sends req to addr ("host:port") and returns the response. Pooled
// connections are reused; a stale pooled connection is retried once on a
// fresh dial. The whole exchange is bounded by RequestTimeout (overridable
// per call with DoTimeout).
//
// Ownership: the response body is read into a pooled buffer. The caller
// owns it and should call resp.Release once the body — and anything
// aliasing it, like a soap.Parse tree — is done with, or forward the
// duty with resp.TakeBody. Skipping the release is safe (the buffer
// falls to the GC) but forfeits reuse.
func (c *Client) Do(addr string, req *Request) (*Response, error) {
	return c.DoTimeout(addr, req, c.cfg.RequestTimeout)
}

// DoTimeout is Do with an explicit exchange budget.
func (c *Client) DoTimeout(addr string, req *Request, timeout time.Duration) (*Response, error) {
	deadline := c.cfg.Clock.Now().Add(timeout)

	// First try a pooled connection; it may have been closed by the
	// server's idle timeout, in which case retry on a fresh dial.
	if pc := c.takeIdle(addr); pc != nil {
		resp, err := c.exchange(pc, addr, req, deadline)
		if err == nil {
			return resp, nil
		}
		pc.conn.Close()
	}

	dialBudget := c.cfg.DialTimeout
	if remaining := deadline.Sub(c.cfg.Clock.Now()); remaining < dialBudget {
		dialBudget = remaining
	}
	if dialBudget <= 0 {
		return nil, &clientTimeoutError{addr: addr}
	}
	conn, err := c.dialer.DialTimeout(addr, dialBudget)
	if err != nil {
		return nil, fmt.Errorf("httpx: dial %s: %w", addr, err)
	}
	pc := &persistConn{conn: conn, br: bufio.NewReader(conn)}
	resp, err := c.exchange(pc, addr, req, deadline)
	if err != nil {
		pc.conn.Close()
		return nil, err
	}
	return resp, nil
}

// exchange performs one request/response on pc and returns it to the pool
// on success.
func (c *Client) exchange(pc *persistConn, addr string, req *Request, deadline time.Time) (*Response, error) {
	pc.conn.SetDeadline(deadline)
	// Host and Connection are supplied at encode time rather than by
	// cloning the header set: nothing is allocated and req is never
	// mutated, so retries re-encode the identical message.
	if err := req.encode(pc.conn, addr, c.cfg.DisableKeepAlive); err != nil {
		return nil, fmt.Errorf("httpx: write to %s: %w", addr, err)
	}
	resp, err := ReadResponsePooled(pc.br)
	if err != nil {
		return nil, fmt.Errorf("httpx: read from %s: %w", addr, err)
	}
	if c.cfg.DisableKeepAlive || wantsClose(resp.Proto, &resp.Header) {
		pc.conn.Close()
	} else {
		pc.conn.SetDeadline(time.Time{})
		c.putIdle(addr, pc)
	}
	return resp, nil
}

func (c *Client) takeIdle(addr string) *persistConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	list := c.idle[addr]
	if len(list) == 0 {
		return nil
	}
	pc := list[len(list)-1]
	c.idle[addr] = list[:len(list)-1]
	return pc
}

func (c *Client) putIdle(addr string, pc *persistConn) {
	c.mu.Lock()
	drop := c.closed || len(c.idle[addr]) >= c.cfg.MaxIdlePerHost
	if !drop {
		c.idle[addr] = append(c.idle[addr], pc)
	}
	c.mu.Unlock()
	if drop {
		pc.conn.Close()
	}
}

// Close drops all pooled connections. In-flight exchanges are unaffected.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	var all []*persistConn
	for _, list := range c.idle {
		all = append(all, list...)
	}
	c.idle = make(map[string][]*persistConn)
	c.mu.Unlock()
	for _, pc := range all {
		pc.conn.Close()
	}
}

// clientTimeoutError is returned when the exchange budget is exhausted
// before the request could even be sent.
type clientTimeoutError struct{ addr string }

func (e *clientTimeoutError) Error() string   { return "httpx: request to " + e.addr + " timed out" }
func (e *clientTimeoutError) Timeout() bool   { return true }
func (e *clientTimeoutError) Temporary() bool { return true }
