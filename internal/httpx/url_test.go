package httpx

import "testing"

func TestSplitURL(t *testing.T) {
	cases := []struct {
		in   string
		addr string
		path string
		ok   bool
	}{
		{"http://host:80/svc/echo", "host:80", "/svc/echo", true},
		{"http://host:9000", "host:9000", "/", true},
		{"host:9000/x", "host:9000", "/x", true},
		{"host:9000", "host:9000", "/", true},
		{"https://host:443/x", "", "", false},
		{"http://hostonly/x", "", "", false},
		{"", "", "", false},
		{"http://", "", "", false},
	}
	for _, c := range cases {
		addr, path, err := SplitURL(c.in)
		if c.ok && err != nil {
			t.Errorf("SplitURL(%q) error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("SplitURL(%q) succeeded: %q %q", c.in, addr, path)
			}
			continue
		}
		if addr != c.addr || path != c.path {
			t.Errorf("SplitURL(%q) = %q, %q; want %q, %q", c.in, addr, path, c.addr, c.path)
		}
	}
}

func TestJoinURL(t *testing.T) {
	if got := JoinURL("h:80", "svc"); got != "http://h:80/svc" {
		t.Fatalf("JoinURL = %q", got)
	}
	if got := JoinURL("h:80", "/svc"); got != "http://h:80/svc" {
		t.Fatalf("JoinURL = %q", got)
	}
}
