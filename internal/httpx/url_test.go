package httpx

import (
	"strings"
	"testing"
)

func TestSplitURL(t *testing.T) {
	cases := []struct {
		in   string
		addr string
		path string
		ok   bool
	}{
		{"http://host:80/svc/echo", "host:80", "/svc/echo", true},
		{"http://host:9000", "host:9000", "/", true},
		{"host:9000/x", "host:9000", "/x", true},
		{"host:9000", "host:9000", "/", true},
		// Trailing slash and empty path segments survive verbatim.
		{"http://host:80/", "host:80", "/", true},
		{"http://host:80//", "host:80", "//", true},
		{"http://host:80/a//b/", "host:80", "/a//b/", true},
		// Query-ish and fragment-ish suffixes ride along as path bytes —
		// SplitURL does not interpret them.
		{"http://host:80/p?q=1", "host:80", "/p?q=1", true},
		// IPv4 and multi-colon (IPv6-ish) hosts only need some colon.
		{"http://127.0.0.1:9000/x", "127.0.0.1:9000", "/x", true},
		{"[::1]:9000/x", "[::1]:9000", "/x", true},
		// Rejections: wrong scheme, missing port, empty pieces.
		{"https://host:443/x", "", "", false},
		{"ftp://host:21/x", "", "", false},
		{"http://hostonly/x", "", "", false},
		{"hostonly/x", "", "", false},
		{"", "", "", false},
		{"http://", "", "", false},
		{"http:///path", "", "", false},
		{"://host:80/x", "", "", false}, // empty scheme is not http
		{"/just/a/path", "", "", false},
	}
	for _, c := range cases {
		addr, path, err := SplitURL(c.in)
		if c.ok && err != nil {
			t.Errorf("SplitURL(%q) error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("SplitURL(%q) succeeded: %q %q", c.in, addr, path)
			}
			continue
		}
		if addr != c.addr || path != c.path {
			t.Errorf("SplitURL(%q) = %q, %q; want %q, %q", c.in, addr, path, c.addr, c.path)
		}
	}
}

// TestSplitJoinRoundTrip: any URL SplitURL accepts is reassembled by
// JoinURL into a URL that splits identically.
func TestSplitJoinRoundTrip(t *testing.T) {
	for _, in := range []string{
		"http://host:80/svc/echo",
		"http://host:9000",
		"host:9000/x",
		"http://h:1/a//b/",
	} {
		addr, path, err := SplitURL(in)
		if err != nil {
			t.Fatalf("SplitURL(%q): %v", in, err)
		}
		joined := JoinURL(addr, path)
		addr2, path2, err := SplitURL(joined)
		if err != nil || addr2 != addr || path2 != path {
			t.Fatalf("round trip %q -> %q -> %q %q (err %v)", in, joined, addr2, path2, err)
		}
		if !strings.HasPrefix(joined, "http://") {
			t.Fatalf("JoinURL(%q, %q) = %q lacks scheme", addr, path, joined)
		}
	}
}

func TestJoinURL(t *testing.T) {
	cases := []struct{ addr, path, want string }{
		{"h:80", "svc", "http://h:80/svc"},
		{"h:80", "/svc", "http://h:80/svc"},
		{"h:80", "", "http://h:80/"},
		{"h:80", "/", "http://h:80/"},
		{"h:80", "//x", "http://h:80//x"},
	}
	for _, c := range cases {
		if got := JoinURL(c.addr, c.path); got != c.want {
			t.Errorf("JoinURL(%q, %q) = %q, want %q", c.addr, c.path, got, c.want)
		}
	}
}
