package httpx

import (
	"bufio"
	"errors"
	"strings"
	"testing"
)

// TestChunkedEdgeCases pins readChunkedInto/readBodyInto behavior on the
// framing corners: trailer sections, chunk extensions (including
// oversized ones), the 0-length terminator mid-stream with pipelined
// bytes behind it, and truncated framing. Each accepted/rejected shape
// here is also pinned as a FuzzHead seed, so the frozen refhead oracle
// keeps agreeing on the verdicts.
func TestChunkedEdgeCases(t *testing.T) {
	read := func(raw string) (*Request, error) {
		return ReadRequest(bufio.NewReader(strings.NewReader(raw)))
	}
	chunked := "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"

	t.Run("multi-line trailer", func(t *testing.T) {
		req, err := read(chunked + "3\r\nabc\r\n0\r\nX-T1: a\r\nX-T2: b\r\n\r\n")
		if err != nil {
			t.Fatal(err)
		}
		if string(req.Body) != "abc" {
			t.Fatalf("body = %q", req.Body)
		}
		// Trailer fields are framing, not message headers.
		if req.Header.Has("X-T1") || req.Header.Has("X-T2") {
			t.Fatal("trailer lines leaked into the header set")
		}
	})

	t.Run("oversized chunk extension", func(t *testing.T) {
		// A chunk-size line longer than the head bound must fail with
		// ErrHeaderTooBig instead of buffering it all.
		raw := chunked + "3;ext=" + strings.Repeat("e", maxHeaderBytes+16) + "\r\nabc\r\n0\r\n\r\n"
		if _, err := read(raw); !errors.Is(err, ErrHeaderTooBig) {
			t.Fatalf("err = %v, want ErrHeaderTooBig", err)
		}
	})

	t.Run("zero-length chunk ends body mid-stream", func(t *testing.T) {
		// The 0 chunk terminates the body even with more data queued on
		// the connection; the remainder must stay in the reader for the
		// next pipelined message.
		br := bufio.NewReader(strings.NewReader(
			chunked + "2\r\nab\r\n0\r\n\r\n" +
				"POST /next HTTP/1.1\r\nContent-Length: 4\r\n\r\nnext"))
		first, err := ReadRequest(br)
		if err != nil {
			t.Fatal(err)
		}
		if string(first.Body) != "ab" {
			t.Fatalf("first body = %q", first.Body)
		}
		second, err := ReadRequest(br)
		if err != nil {
			t.Fatalf("pipelined request after chunked terminator: %v", err)
		}
		if second.Path != "/next" || string(second.Body) != "next" {
			t.Fatalf("second = %s %q", second.Path, second.Body)
		}
	})

	t.Run("missing CRLF after chunk data", func(t *testing.T) {
		if _, err := read(chunked + "3\r\nabc"); err == nil {
			t.Fatal("chunk without trailing CRLF accepted")
		}
	})

	t.Run("missing final CRLF after trailer", func(t *testing.T) {
		if _, err := read(chunked + "3\r\nabc\r\n0\r\n"); err == nil {
			t.Fatal("terminator without blank line accepted")
		}
	})

	t.Run("truncated chunk data", func(t *testing.T) {
		if _, err := read(chunked + "8\r\nabc"); err == nil {
			t.Fatal("truncated chunk accepted")
		}
	})

	t.Run("extension ignored", func(t *testing.T) {
		req, err := read(chunked + "3;name=\"quoted;semi\"\r\nabc\r\n0\r\n\r\n")
		if err != nil {
			t.Fatal(err)
		}
		// The parser cuts at the first ';' — anything after is ignored,
		// including quoted semicolons (framing only needs the size).
		if string(req.Body) != "abc" {
			t.Fatalf("body = %q", req.Body)
		}
	})
}
