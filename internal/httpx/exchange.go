package httpx

import (
	"net"

	"repro/internal/xmlsoap"
)

// Exchange is one request/response cycle on a server connection, and the
// unit the Handler interface works in. The serving connection owns
// exactly one Exchange for its whole life: the embedded Request struct,
// the reply header set, and the hijack machinery are all reused across
// every request a keep-alive connection carries, so steady-state traffic
// performs zero per-request message-struct allocations — the paper's
// long-lived dispatcher conversations are many exchanges on few
// connections, which is why the connection (not the message) is the unit
// this API hands out.
//
// # Ownership
//
// Req's head fields and Body live in a pooled buffer owned by the
// connection; they are valid until the handler's reply has been written
// (Serve return for inline handlers, Finish for hijacked ones), exactly
// as under the PR 3/4 rules. A handler that needs them longer must
// detach what survives (Element.Detach, Header.Detach, strings.Clone) or
// take the buffer with TakeBody. The Exchange itself — including the
// Request struct — is reused for the connection's next request the
// moment the reply is on the wire: nothing may retain *Exchange, &ex.Req
// or &ex.Req.Header past that point. Async takers keep the parsed data
// (which aliases the buffer they now own), never the structs.
//
// # Replying
//
// Exactly one of the reply calls answers the exchange:
//
//   - Reply(status, render) renders the body into a pooled buffer the
//     connection releases after the write;
//   - ReplyBuffer(status, buf) takes ownership of an already-rendered
//     pooled buffer (the anonymous-reply hand-back shape);
//   - ReplyBytes(status, body) sends bytes that stay valid until the
//     reply is written: static slices, detached copies, or views of
//     Req.Body (a response may echo the request it answers).
//
// Header() carries the reply's headers; Defer registers a hook run after
// the reply bytes are out (a relay moves a taken body's release duty
// through it). A handler that returns without replying produces 500.
// Head and body leave in one batched Write.
type Exchange struct {
	// Req is the parsed request view. Its fields alias the connection's
	// pooled buffer; see the ownership rules above.
	Req Request

	srv        *Server
	conn       net.Conn
	remoteAddr string

	// done carries Finish's completion signal for hijacked exchanges.
	// Allocated on the first Hijack of the connection, reused after.
	done chan struct{}

	// Reply state, reset per request.
	status   int
	header   Header
	body     []byte
	buf      *xmlsoap.Buffer // owns the rendered reply body, when pooled
	after    func()          // Defer hook, run once after the reply is written
	replied  bool
	hijacked bool
}

// Header returns the reply's header set. Values the handler stores must
// stay valid until the reply is written — constants always are; strings
// aliasing a taken buffer are when the buffer's release rides Defer.
func (ex *Exchange) Header() *Header { return &ex.header }

// Reply answers the exchange with a body produced by an append-style
// render into a pooled buffer; the connection releases the buffer after
// the reply is written. On render error the buffer is released
// immediately, the exchange stays unanswered (the handler may still send
// a fault), and the error is returned.
func (ex *Exchange) Reply(status int, render func(dst []byte) ([]byte, error)) error {
	ex.checkUnreplied()
	buf := xmlsoap.GetBuffer()
	b, err := render(buf.B)
	if err != nil {
		xmlsoap.PutBuffer(buf)
		return err
	}
	buf.B = b
	ex.buf = buf
	ex.setReply(status, b)
	return nil
}

// ReplyBuffer answers the exchange with an already-rendered pooled
// buffer, taking ownership: the connection releases it after the write.
// The MSG-Dispatcher's anonymous-reply hand-back moves a reply rendered
// on another goroutine into the waiting connection this way.
func (ex *Exchange) ReplyBuffer(status int, buf *xmlsoap.Buffer) {
	ex.checkUnreplied()
	ex.buf = buf
	ex.setReply(status, buf.B)
}

// ReplyBytes answers the exchange with body bytes that remain valid
// until the reply is written: static data (fault envelopes), detached
// copies, or slices of Req.Body.
func (ex *Exchange) ReplyBytes(status int, body []byte) {
	ex.checkUnreplied()
	ex.setReply(status, body)
}

func (ex *Exchange) setReply(status int, body []byte) {
	ex.status = status
	ex.body = body
	ex.replied = true
}

func (ex *Exchange) checkUnreplied() {
	if ex.replied {
		panic("httpx: exchange already replied")
	}
}

// Replied reports whether a reply has been recorded.
func (ex *Exchange) Replied() bool { return ex.replied }

// Defer registers f to run exactly once after the reply has been
// written (or the connection failed trying). A proxy that relays a
// client response's pooled body as this reply parks the body's release
// duty here, so the bytes — and any header values copied across — stay
// alive for the write. Multiple hooks compose.
func (ex *Exchange) Defer(f func()) {
	if prev := ex.after; prev != nil {
		ex.after = func() { prev(); f() }
		return
	}
	ex.after = f
}

// TakeBody transfers ownership of the request's pooled buffer (head and
// body together) to the caller, exactly as Request.TakeBody: the
// returned function must be called once after the last use of Req.Body,
// the head fields, or anything aliasing them. The canonical taker is an
// async handler whose work outlives the exchange (echoservice.Async's
// reply leg). The Request struct itself is still reused — takers keep
// the parsed data, not &ex.Req.
func (ex *Exchange) TakeBody() func() { return ex.Req.TakeBody() }

// Hijack detaches the reply from Serve's return: the connection will not
// write anything — and will not read the next request — until Finish is
// called, from any goroutine. Between Serve returning and Finish, the
// hijacker owns the Exchange exclusively (reply calls included); after
// Finish it must not touch it. The MSG-Dispatcher hands its exchanges to
// the CxThread pool this way, which is what removed the per-request
// verdict-channel round trip: workers reply on the exchange directly and
// the connection's one reusable done channel is touched only on this
// hijacked path.
func (ex *Exchange) Hijack() {
	if ex.hijacked {
		panic("httpx: exchange already hijacked")
	}
	ex.hijacked = true
	if ex.done == nil {
		ex.done = make(chan struct{}, 1)
	}
}

// Finish completes a hijacked exchange: the connection wakes, writes the
// recorded reply (500 if none), and moves on to the next request.
func (ex *Exchange) Finish() {
	if !ex.hijacked {
		panic("httpx: Finish on a non-hijacked exchange")
	}
	ex.done <- struct{}{}
}

// RemoteAddr returns the peer address of the underlying connection.
func (ex *Exchange) RemoteAddr() string { return ex.remoteAddr }

// resetReply clears the per-request reply state. The request struct is
// reset by ReadRequestInto.
func (ex *Exchange) resetReply() {
	ex.status = 0
	ex.header.Reset()
	ex.body = nil
	ex.buf = nil
	ex.after = nil
	ex.replied = false
	ex.hijacked = false
}

// appendReply encodes the recorded reply (500 when the handler never
// answered) onto b: status line, headers, and the body when it is small
// enough to coalesce. This is how pipelined replies batch — serveConn
// accumulates consecutive appendReply outputs in one connection-scoped
// buffer and flushes them in a single write once the client's pipelined
// input drains. An oversized body is returned uncopied for the caller to
// write after b, still before the release sequence runs.
func (ex *Exchange) appendReply(b []byte) (out, bigBody []byte) {
	status := ex.status
	if !ex.replied {
		status = StatusInternalServerError
		ex.body = nil
	}
	b = append(b, "HTTP/1.1 "...)
	b = appendStatusLine(b, status)
	b = ex.header.appendWire(b, len(ex.body), "", false)
	if len(ex.body) > coalesceLimit {
		return b, ex.body
	}
	return append(b, ex.body...), nil
}

// finishRelease runs the end-of-exchange release sequence: close
// verdict, reply buffer, Defer hooks, request buffer — in that order
// (header values may alias a relayed buffer whose release rides Defer).
// The reply bytes must already be safely out of the exchange's buffers:
// appendReply copied the body into the write buffer (and an oversized
// body must have been written) before this runs, which is what makes a
// reply that echoes the request body safe to batch.
func (ex *Exchange) finishRelease() (close bool) {
	close = wantsClose("HTTP/1.1", &ex.header)
	if ex.buf != nil {
		xmlsoap.PutBuffer(ex.buf)
		ex.buf = nil
	}
	if f := ex.after; f != nil {
		ex.after = nil
		f()
	}
	ex.Req.Release()
	return close
}

// appendStatusLine appends "<code> <reason>\r\n".
func appendStatusLine(b []byte, status int) []byte {
	b = appendInt(b, status)
	b = append(b, ' ')
	b = append(b, StatusText(status)...)
	return append(b, '\r', '\n')
}

// appendInt appends the decimal form of a non-negative int.
func appendInt(b []byte, n int) []byte {
	if n >= 100 && n < 1000 {
		// Status codes are three digits; skip strconv's machinery.
		return append(b, byte('0'+n/100), byte('0'+n/10%10), byte('0'+n%10))
	}
	var scratch [20]byte
	i := len(scratch)
	if n == 0 {
		return append(b, '0')
	}
	for n > 0 {
		i--
		scratch[i] = byte('0' + n%10)
		n /= 10
	}
	return append(b, scratch[i:]...)
}
