package httpx

// Status codes used by the dispatcher stack.
const (
	StatusOK                  = 200
	StatusAccepted            = 202
	StatusBadRequest          = 400
	StatusUnauthorized        = 401
	StatusForbidden           = 403
	StatusNotFound            = 404
	StatusRequestTimeout      = 408
	StatusInternalServerError = 500
	StatusBadGateway          = 502
	StatusServiceUnavailable  = 503
	StatusGatewayTimeout      = 504
)

// StatusText returns the reason phrase for code, or "Status <code>".
func StatusText(code int) string {
	switch code {
	case StatusOK:
		return "OK"
	case StatusAccepted:
		return "Accepted"
	case StatusBadRequest:
		return "Bad Request"
	case StatusUnauthorized:
		return "Unauthorized"
	case StatusForbidden:
		return "Forbidden"
	case StatusNotFound:
		return "Not Found"
	case StatusRequestTimeout:
		return "Request Timeout"
	case StatusInternalServerError:
		return "Internal Server Error"
	case StatusBadGateway:
		return "Bad Gateway"
	case StatusServiceUnavailable:
		return "Service Unavailable"
	case StatusGatewayTimeout:
		return "Gateway Timeout"
	default:
		return "Status"
	}
}
