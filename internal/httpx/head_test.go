package httpx

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// TestExactLineTrimming pins the one-terminator rule: parsing strips
// exactly one "\r\n" (or bare "\n") per line, never data bytes. The seed
// parser's TrimRight(line, "\r\n") ate every trailing CR/LF, which
// silently altered values and turned "\r\r\n" into an end-of-head blank
// line; these cases are also pinned in the FuzzHead seed corpus.
func TestExactLineTrimming(t *testing.T) {
	// A '\r' before the terminator belongs to the line. For header
	// values it is then removed by value trimming (TrimSpace treats
	// '\r' as whitespace), so the value is unchanged...
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(
		"POST / HTTP/1.1\r\nX-A: v\r\r\n\r\n")))
	if err != nil {
		t.Fatal(err)
	}
	if got := req.Header.Get("X-A"); got != "v" {
		t.Fatalf("X-A = %q, want %q", got, "v")
	}
	// ...but for the request line it is data: the proto keeps it.
	req, err = ReadRequest(bufio.NewReader(strings.NewReader(
		"GET / HTTP/1.1\r\r\n\r\n")))
	if err != nil {
		t.Fatal(err)
	}
	if req.Proto != "HTTP/1.1\r" {
		t.Fatalf("proto = %q, want trailing CR preserved", req.Proto)
	}
	// And a lone "\r\r\n" line is a malformed header line (no colon),
	// not the blank line that ends the head.
	_, err = ReadRequest(bufio.NewReader(strings.NewReader(
		"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\r\n\r\nab")))
	if err == nil {
		t.Fatal("\\r\\r\\n accepted as end-of-head blank line")
	}
}

// TestAppendWireManyHeaders exercises the spill past the wireKeyScratch
// stack scratch: more keys than the scratch holds must still render
// sorted and complete. (Before the constant was named, >16 keys worked
// only by accident of append semantics.)
func TestAppendWireManyHeaders(t *testing.T) {
	const n = wireKeyScratch + 9
	var h Header
	for i := 0; i < n; i++ {
		h.Set(fmt.Sprintf("X-Key-%02d", i), fmt.Sprintf("v%d", i))
	}
	wire := string(h.appendWire(nil, 7, "somehost:80", false))
	lines := strings.Split(strings.TrimSuffix(wire, "\r\n\r\n"), "\r\n")
	// n stored keys + Content-Length + Host.
	if len(lines) != n+2 {
		t.Fatalf("rendered %d header lines, want %d:\n%s", len(lines), n+2, wire)
	}
	if !sort.StringsAreSorted(lines) {
		t.Fatalf("header lines not sorted:\n%s", wire)
	}
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("X-Key-%02d: v%d", i, i)
		if !strings.Contains(wire, want+"\r\n") {
			t.Fatalf("missing %q in:\n%s", want, wire)
		}
	}
	if !strings.Contains(wire, "Content-Length: 7\r\n") || !strings.Contains(wire, "Host: somehost:80\r\n") {
		t.Fatalf("synthetic headers missing:\n%s", wire)
	}
	// And a parse of the rendered section agrees field for field.
	req, err := ReadRequest(bufio.NewReader(strings.NewReader("POST / HTTP/1.1\r\n" + wire + "1234567")))
	if err != nil {
		t.Fatal(err)
	}
	if req.Header.Len() != n+2 {
		t.Fatalf("re-parse saw %d fields, want %d", req.Header.Len(), n+2)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("X-Key-%02d", i)
		if got := req.Header.Get(k); got != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s = %q after round trip", k, got)
		}
	}
}

// TestCanonicalKeyEdgeCases is the direct table for CanonicalKey /
// isCanonicalKey: empty segments, the special mixed-case spellings in
// every casing, and non-letter bytes at segment starts.
func TestCanonicalKeyEdgeCases(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"-", "-"},
		{"--", "--"},
		{"x--y", "X--Y"},
		{"-leading", "-Leading"},
		{"trailing-", "Trailing-"},
		{"content-type", "Content-Type"},
		{"Content-Type", "Content-Type"},
		{"CONTENT-TYPE", "Content-Type"},
		{"soapaction", "SOAPAction"},
		{"SOAPACTION", "SOAPAction"},
		{"sOaPaCtIoN", "SOAPAction"},
		{"SOAPAction", "SOAPAction"},
		{"www-authenticate", "WWW-Authenticate"},
		{"WWW-AUTHENTICATE", "WWW-Authenticate"},
		{"WWW-Authenticate", "WWW-Authenticate"},
		{"1-digit", "1-Digit"},
		{"x-1a", "X-1a"},
		{"x_y", "X_y"},
		{"@at", "@at"},
		{"a@B", "A@b"},
	}
	for _, c := range cases {
		if got := CanonicalKey(c.in); got != c.want {
			t.Errorf("CanonicalKey(%q) = %q, want %q", c.in, got, c.want)
		}
		// The fast-path classifier must agree with the transform: a key
		// is canonical iff the transform leaves it unchanged.
		if got := isCanonicalKey(c.in); got != (CanonicalKey(c.in) == c.in) {
			t.Errorf("isCanonicalKey(%q) = %v disagrees with CanonicalKey", c.in, got)
		}
		// Idempotence: canonicalizing a canonical key is the identity.
		if got := CanonicalKey(c.want); got != c.want {
			t.Errorf("CanonicalKey(%q) = %q, not idempotent", c.want, got)
		}
	}
}

// TestHeaderRangeAndDetach covers iteration order, spill behaviour past
// the inline capacity, and Detach's copy-out.
func TestHeaderRangeAndDetach(t *testing.T) {
	var h Header
	const n = inlineHeaderKVs + 3
	for i := 0; i < n; i++ {
		h.Set(fmt.Sprintf("K-%02d", i), fmt.Sprintf("v%d", i))
	}
	if h.Len() != n {
		t.Fatalf("Len = %d, want %d", h.Len(), n)
	}
	i := 0
	h.Range(func(k, v string) bool {
		if k != fmt.Sprintf("K-%02d", i) {
			t.Fatalf("Range out of wire order at %d: %q", i, k)
		}
		i++
		return true
	})
	h.Del("K-01")
	if h.Len() != n-1 || h.Has("K-01") {
		t.Fatal("Del failed")
	}
	last := fmt.Sprintf("K-%02d", n-1)
	if h.Get(last) != fmt.Sprintf("v%d", n-1) {
		t.Fatal("spilled field lost after Del")
	}
	c := h.Clone()
	h.Set("K-02", "mutated")
	if c.Get("K-02") != "v2" {
		t.Fatal("Clone shares storage with original")
	}
	h.Detach() // must not change observable contents
	if h.Get("K-02") != "mutated" || h.Len() != n-1 {
		t.Fatal("Detach changed contents")
	}
}

// TestWantsCloseNoAlloc pins the satellite fix: the Connection-token
// compare must not allocate, even for mixed-case values (the old path
// lowercased the value with strings.ToLower on every exchange).
func TestWantsCloseNoAlloc(t *testing.T) {
	var h Header
	h.Set("Connection", "Keep-Alive")
	sink := false
	if allocs := testing.AllocsPerRun(100, func() {
		sink = wantsClose("HTTP/1.0", &h) || sink
	}); allocs != 0 {
		t.Fatalf("wantsClose allocated %.1f times per op", allocs)
	}
	if sink {
		t.Fatal("HTTP/1.0 Keep-Alive treated as close")
	}
	h.Set("Connection", "CLOSE")
	if !wantsClose("HTTP/1.1", &h) {
		t.Fatal("case-insensitive close not honoured")
	}
}

// TestReadHeadSteadyStateAllocs is the head-parsing allocation gate,
// ratcheted for the Exchange redesign: in the steady state (pools warm),
// reading a full request or response — head and body — into a reused
// message struct allocates NOTHING. Head parsing (line splitting, header
// fields, body framing) lives entirely in the message's pooled buffer,
// and the struct is the connection's, reused across requests; this is
// exactly the read serveConn and the client's persistConn perform per
// message. The one-shot ReadRequestPooled/ReadResponsePooled wrappers
// add exactly the message struct.
func TestReadHeadSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool caching is randomized under the race detector")
	}
	rawReq := []byte("POST /msg HTTP/1.1\r\nContent-Type: text/xml; charset=utf-8\r\nContent-Length: 7\r\nHost: wsd:9100\r\n\r\n<soap/>")
	rawResp := []byte("HTTP/1.1 200 OK\r\nContent-Type: text/xml; charset=utf-8\r\nContent-Length: 6\r\n\r\nqueued")

	src := bytes.NewReader(rawReq)
	br := bufio.NewReader(src)

	// Reused-exchange read: zero allocations.
	var req Request
	readReqInto := func() {
		src.Reset(rawReq)
		br.Reset(src)
		if err := ReadRequestInto(br, &req); err != nil {
			t.Fatal(err)
		}
		if req.Method != "POST" || req.Header.Len() != 3 || len(req.Body) != 7 {
			t.Fatalf("parsed %q %d fields body %q", req.Method, req.Header.Len(), req.Body)
		}
		req.Release()
	}
	for i := 0; i < 10; i++ {
		readReqInto() // warm the buffer pool
	}
	if allocs := testing.AllocsPerRun(100, readReqInto); allocs != 0 {
		t.Errorf("reused-struct request read allocated %.1f times per op, want 0", allocs)
	}

	var resp Response
	readRespInto := func() {
		src.Reset(rawResp)
		br.Reset(src)
		if err := ReadResponseInto(br, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Status != 200 || resp.Header.Len() != 2 || len(resp.Body) != 6 {
			t.Fatalf("parsed %d, %d fields, body %q", resp.Status, resp.Header.Len(), resp.Body)
		}
		resp.Release()
	}
	for i := 0; i < 10; i++ {
		readRespInto()
	}
	if allocs := testing.AllocsPerRun(100, readRespInto); allocs != 0 {
		t.Errorf("reused-struct response read allocated %.1f times per op, want 0", allocs)
	}

	// One-shot wrappers: exactly the message struct.
	readReq := func() {
		src.Reset(rawReq)
		br.Reset(src)
		r, err := ReadRequestPooled(br)
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}
	readReq()
	if allocs := testing.AllocsPerRun(100, readReq); allocs > 1 {
		t.Errorf("request head+body read allocated %.1f times per op, want <= 1 (the *Request)", allocs)
	}
	readResp := func() {
		src.Reset(rawResp)
		br.Reset(src)
		r, err := ReadResponsePooled(br)
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}
	readResp()
	if allocs := testing.AllocsPerRun(100, readResp); allocs > 1 {
		t.Errorf("response head+body read allocated %.1f times per op, want <= 1 (the *Response)", allocs)
	}
}

// BenchmarkReadHead lives in the repository root's codec_bench_test.go:
// this package's TestMain enables the pooled-buffer lifecycle checker,
// whose poison scans would dominate a ~1 µs head parse. The allocation
// behaviour is gated here by TestReadHeadSteadyStateAllocs regardless.
