package httpx

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// FuzzHead fuzzes request/response head parsing — request lines, status
// lines, header folding, Content-Length framing, chunked bodies with
// extensions and trailers — and differentially checks the pooled body
// reader against the GC-owned one: both must reach the same
// accept/reject verdict and, on accept, produce identical messages. The
// seed corpus always runs under plain `go test`; CI adds a short engine
// run (see .github/workflows/ci.yml).
func FuzzHead(f *testing.F) {
	seeds := []string{
		// Well-formed exchanges.
		"POST /msg HTTP/1.1\r\nContent-Type: text/xml\r\nContent-Length: 7\r\n\r\n<soap/>",
		"GET /registry HTTP/1.1\r\nHost: wsd:9000\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: 6\r\n\r\nqueued",
		"HTTP/1.1 202 Accepted\r\n\r\n",
		"HTTP/1.0 204 No Content\r\nConnection: keep-alive\r\n\r\n",
		// Chunked edge cases: extensions, trailers, empty chunks, bad
		// sizes, missing terminators.
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3;ext=1\r\nabc\r\n0\r\nX-Trailer: v\r\n\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nfffffffff\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n-1\r\n\r\n",
		// Malformed request lines and headers.
		"NOT-HTTP\r\n\r\n",
		"GET /\r\n\r\n",
		"POST / HTTP/1.1\r\nNoColonHere\r\n\r\n",
		"POST / HTTP/1.1\r\n: empty-name\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1\r\n\r\n",
		// Oversized-head shapes (the engine will grow these).
		"POST /" + strings.Repeat("x", 5000) + " HTTP/1.1\r\n\r\n",
		"POST / HTTP/1.1\r\nX-Big: " + strings.Repeat("y", 9000) + "\r\n\r\n",
		"POST / HTTP/1.1\r\n" + strings.Repeat("A: b\r\n", 2000) + "\r\n",
		// Bare-LF line endings and binary noise.
		"POST / HTTP/1.1\nContent-Length: 2\n\nok",
		"\x00\x01\x02\r\n\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkHead(t, data, true)
		checkHead(t, data, false)
	})
}

// checkHead runs one parse of data as a request or response through
// both body readers and cross-checks them.
func checkHead(t *testing.T, data []byte, asRequest bool) {
	t.Helper()
	var (
		gcBody, plBody   []byte
		gcHdr, plHdr     Header
		gcErr, plErr     error
		gcLine1, plLine1 string
		release          func()
		gcResp, plResp   *Response
		gcReq, plReq     *Request
	)
	if asRequest {
		gcReq, gcErr = ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		plReq, plErr = ReadRequestPooled(bufio.NewReader(bytes.NewReader(data)))
		if gcReq != nil {
			gcBody, gcHdr, gcLine1 = gcReq.Body, gcReq.Header, gcReq.Method+" "+gcReq.Path+" "+gcReq.Proto
		}
		if plReq != nil {
			plBody, plHdr, plLine1 = plReq.Body, plReq.Header, plReq.Method+" "+plReq.Path+" "+plReq.Proto
			release = plReq.TakeBody()
		}
	} else {
		gcResp, gcErr = ReadResponse(bufio.NewReader(bytes.NewReader(data)))
		plResp, plErr = ReadResponsePooled(bufio.NewReader(bytes.NewReader(data)))
		if gcResp != nil {
			gcBody, gcHdr, gcLine1 = gcResp.Body, gcResp.Header, gcResp.Proto+" "+gcResp.Reason
		}
		if plResp != nil {
			plBody, plHdr, plLine1 = plResp.Body, plResp.Header, plResp.Proto+" "+plResp.Reason
			release = plResp.TakeBody()
		}
	}
	if (gcErr == nil) != (plErr == nil) {
		t.Fatalf("verdict divergence (request=%v): gc err=%v pooled err=%v", asRequest, gcErr, plErr)
	}
	if gcErr != nil {
		return
	}
	if gcLine1 != plLine1 {
		t.Fatalf("start-line divergence: %q vs %q", gcLine1, plLine1)
	}
	if !bytes.Equal(gcBody, plBody) {
		t.Fatalf("body divergence: %q vs %q", gcBody, plBody)
	}
	if len(gcHdr) != len(plHdr) {
		t.Fatalf("header count divergence: %v vs %v", gcHdr, plHdr)
	}
	for k, v := range gcHdr {
		if plHdr[k] != v {
			t.Fatalf("header %q divergence: %q vs %q", k, v, plHdr[k])
		}
	}
	if gcResp != nil && plResp != nil && gcResp.Status != plResp.Status {
		t.Fatalf("status divergence: %d vs %d", gcResp.Status, plResp.Status)
	}
	// A successfully parsed request must survive a re-encode/re-parse
	// round trip with its body and framing intact (responses carry
	// reason phrases that Encode may legitimately normalize, so the
	// invariant is checked on requests). Chunked requests are exempt:
	// Encode reframes with Content-Length but preserves the stored
	// Transfer-Encoding header, so the re-parse would read chunk
	// framing that is no longer there.
	if asRequest && !gcHdr.Has("Transfer-Encoding") {
		var buf bytes.Buffer
		if err := gcReq.Encode(&buf); err == nil {
			re, err := ReadRequest(bufio.NewReader(&buf))
			if err != nil {
				t.Fatalf("re-parse of encoded request failed: %v\nwire: %q", err, buf.Bytes())
			}
			if !bytes.Equal(re.Body, gcBody) {
				t.Fatalf("body changed across re-encode: %q vs %q", gcBody, re.Body)
			}
		}
	}
	if release != nil {
		release()
	}
}
