package httpx

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"repro/internal/httpx/refhead"
)

// FuzzHead fuzzes request/response head parsing — request lines, status
// lines, header shapes, Content-Length framing, chunked bodies with
// extensions and trailers — differentially against the frozen map-based
// parser (internal/httpx/refhead): the pooled in-place parser and the
// oracle must reach the same accept/reject verdict and, on accept,
// produce the same start line, the same logical header set (compared
// under canonical keys), and the same body. The detached ReadRequest/
// ReadResponse wrappers are cross-checked too. The seed corpus always
// runs under plain `go test`; CI adds a short engine run (see
// .github/workflows/ci.yml).
func FuzzHead(f *testing.F) {
	seeds := []string{
		// Well-formed exchanges.
		"POST /msg HTTP/1.1\r\nContent-Type: text/xml\r\nContent-Length: 7\r\n\r\n<soap/>",
		"GET /registry HTTP/1.1\r\nHost: wsd:9000\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: 6\r\n\r\nqueued",
		"HTTP/1.1 202 Accepted\r\n\r\n",
		"HTTP/1.0 204 No Content\r\nConnection: keep-alive\r\n\r\n",
		// Chunked edge cases: extensions, trailers, empty chunks, bad
		// sizes, missing terminators.
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3;ext=1\r\nabc\r\n0\r\nX-Trailer: v\r\n\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nfffffffff\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n-1\r\n\r\n",
		// Chunked edge cases pinned by TestChunkedEdgeCases: multi-line
		// trailers, quoted chunk extensions, the 0 terminator with
		// pipelined bytes behind it, and truncated framing.
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\nX-T1: a\r\nX-T2: b\r\n\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3;name=\"quoted;semi\"\r\nabc\r\n0\r\n\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nab\r\n0\r\n\r\ntrailing-bytes",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n8\r\nabc",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3;ext=" + strings.Repeat("e", 9000) + "\r\nabc\r\n0\r\n\r\n",
		// Malformed request lines and headers.
		"NOT-HTTP\r\n\r\n",
		"GET /\r\n\r\n",
		"POST / HTTP/1.1\r\nNoColonHere\r\n\r\n",
		"POST / HTTP/1.1\r\n: empty-name\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1\r\n\r\n",
		// Exactly-one-terminator trimming: the seed parser's
		// TrimRight(line, "\r\n") also ate data bytes, so these inputs
		// diverged from the fixed grammar and are pinned as seeds.
		"GET / HTTP/1.1\r\r\n\r\n",                       // proto keeps its trailing '\r'
		"HTTP/1.1 200 OK\r\r\n\r\n",                      // reason keeps its trailing '\r'
		"POST / HTTP/1.1\r\nX-A: v\r\r\n\r\n",            // value '\r' removed by TrimSpace, not by line trimming
		"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\r\n\r\nab", // "\r\r\n" is a malformed header line, not end of head
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\r\n\r\n", // "\r" trailer line does not end the trailer
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\r\nab\r\n0\r\n\r\n", // chunk-size line with stray '\r'
		// Header-name canonicalization territory: duplicate keys across
		// casings, non-ASCII bytes near case-mapping special cases.
		"POST / HTTP/1.1\r\ncontent-type: a\r\nCONTENT-TYPE: b\r\n\r\n",
		"POST / HTTP/1.1\r\nsoapaction: \"x\"\r\nSOAPAction: \"y\"\r\n\r\n",
		"POST / HTTP/1.1\r\nX-Key: kelvin\r\nX-Key: ascii\r\n\r\n",
		// Oversized-head shapes (the engine will grow these).
		"POST /" + strings.Repeat("x", 5000) + " HTTP/1.1\r\n\r\n",
		"POST / HTTP/1.1\r\nX-Big: " + strings.Repeat("y", 9000) + "\r\n\r\n",
		"POST / HTTP/1.1\r\n" + strings.Repeat("A: b\r\n", 2000) + "\r\n",
		// Bare-LF line endings and binary noise.
		"POST / HTTP/1.1\nContent-Length: 2\n\nok",
		"\x00\x01\x02\r\n\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkHead(t, data, true)
		checkHead(t, data, false)
	})
}

// headersMatch checks the pooled parser's header set against the
// oracle's canonical-key map.
func headersMatch(t *testing.T, ref refhead.Header, h *Header) {
	t.Helper()
	if len(ref) != h.Len() {
		t.Fatalf("header count divergence: oracle %v vs %d fields", ref, h.Len())
	}
	h.Range(func(k, v string) bool {
		want, ok := ref[CanonicalKey(k)]
		if !ok {
			t.Fatalf("header %q (canonical %q) missing from oracle %v", k, CanonicalKey(k), ref)
		}
		if want != v {
			t.Fatalf("header %q divergence: oracle %q vs %q", k, want, v)
		}
		return true
	})
}

// checkHead runs one parse of data as a request or response through the
// frozen oracle, the pooled reader, and the detached reader, and
// cross-checks all three.
func checkHead(t *testing.T, data []byte, asRequest bool) {
	t.Helper()
	if asRequest {
		ref, refErr := refhead.ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		pl, plErr := ReadRequestPooled(bufio.NewReader(bytes.NewReader(data)))
		gc, gcErr := ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		if (refErr == nil) != (plErr == nil) || (refErr == nil) != (gcErr == nil) {
			t.Fatalf("request verdict divergence: oracle err=%v pooled err=%v detached err=%v", refErr, plErr, gcErr)
		}
		if refErr != nil {
			return
		}
		defer pl.Release()
		for _, got := range []*Request{pl, gc} {
			if got.Method != ref.Method || got.Path != ref.Path || got.Proto != ref.Proto {
				t.Fatalf("request line divergence: %q %q %q vs oracle %q %q %q",
					got.Method, got.Path, got.Proto, ref.Method, ref.Path, ref.Proto)
			}
			if !bytes.Equal(got.Body, ref.Body) {
				t.Fatalf("body divergence: %q vs oracle %q", got.Body, ref.Body)
			}
			headersMatch(t, ref.Header, &got.Header)
		}
		// A successfully parsed request must survive a re-encode/
		// re-parse round trip with its body and framing intact
		// (responses carry reason phrases that Encode may legitimately
		// normalize, so the invariant is checked on requests). Chunked
		// requests are exempt: Encode reframes with Content-Length but
		// preserves the stored Transfer-Encoding header, so the
		// re-parse would read chunk framing that is no longer there.
		if !gc.Header.Has("Transfer-Encoding") {
			var buf bytes.Buffer
			if err := gc.Encode(&buf); err == nil {
				re, err := ReadRequest(bufio.NewReader(&buf))
				if err != nil {
					t.Fatalf("re-parse of encoded request failed: %v\nwire: %q", err, buf.Bytes())
				}
				if !bytes.Equal(re.Body, ref.Body) {
					t.Fatalf("body changed across re-encode: %q vs %q", ref.Body, re.Body)
				}
			}
		}
		return
	}
	ref, refErr := refhead.ReadResponse(bufio.NewReader(bytes.NewReader(data)))
	pl, plErr := ReadResponsePooled(bufio.NewReader(bytes.NewReader(data)))
	gc, gcErr := ReadResponse(bufio.NewReader(bytes.NewReader(data)))
	if (refErr == nil) != (plErr == nil) || (refErr == nil) != (gcErr == nil) {
		t.Fatalf("response verdict divergence: oracle err=%v pooled err=%v detached err=%v", refErr, plErr, gcErr)
	}
	if refErr != nil {
		return
	}
	defer pl.Release()
	for _, got := range []*Response{pl, gc} {
		if got.Proto != ref.Proto || got.Status != ref.Status || got.Reason != ref.Reason {
			t.Fatalf("status line divergence: %q %d %q vs oracle %q %d %q",
				got.Proto, got.Status, got.Reason, ref.Proto, ref.Status, ref.Reason)
		}
		if !bytes.Equal(got.Body, ref.Body) {
			t.Fatalf("body divergence: %q vs oracle %q", got.Body, ref.Body)
		}
		headersMatch(t, ref.Header, &got.Header)
	}
}
