package httpx

import (
	"fmt"
	"strings"
)

// SplitURL decomposes a service URL of the form "http://host:port/path"
// into the dial address ("host:port") and the request path ("/path",
// defaulting to "/"). Only the http scheme is supported — the paper's
// endpoints are all plain HTTP — and the scheme prefix is optional so bare
// "host:port/path" addresses from registry files also work.
func SplitURL(raw string) (addr, path string, err error) {
	s := raw
	if i := strings.Index(s, "://"); i >= 0 {
		scheme := s[:i]
		if scheme != "http" {
			return "", "", fmt.Errorf("httpx: unsupported scheme %q in %q", scheme, raw)
		}
		s = s[i+3:]
	}
	if s == "" {
		return "", "", fmt.Errorf("httpx: empty URL")
	}
	path = "/"
	if i := strings.IndexByte(s, '/'); i >= 0 {
		path = s[i:]
		s = s[:i]
	}
	if s == "" || !strings.Contains(s, ":") {
		return "", "", fmt.Errorf("httpx: URL %q missing host:port", raw)
	}
	return s, path, nil
}

// JoinURL builds "http://addr" + path.
func JoinURL(addr, path string) string {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return "http://" + addr + path
}
