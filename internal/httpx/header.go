// Package httpx is a compact HTTP/1.1 implementation — client, server, and
// message codec — written directly against net.Conn.
//
// The paper's stack (XSUL) ships its own HTTP transport rather than using a
// servlet container, because the dispatcher needs precise control over the
// connection lifecycle: the RPC-Dispatcher holds one upstream and one
// downstream connection per in-flight call, the MSG-Dispatcher keeps
// connections to destination services "open for a predefined time" to batch
// messages, and the evaluation hinges on TCP-level timeouts. Re-implementing
// HTTP/1.1 here (instead of using net/http) keeps those knobs explicit and
// lets the same code run over real TCP and over the netsim virtual network,
// whose Conn carries the bandwidth/latency model.
//
// Scope: HTTP/1.0 and 1.1, Content-Length and chunked bodies, persistent
// connections, and the handful of headers SOAP messaging needs. It is not a
// general-purpose web server.
//
// # Pooled heads
//
// The read path is fasthttp-shaped: the whole head (request/status line plus
// header section) is read into one pooled buffer owned by the message, and
// the request line, status line, and headers are parsed in place. Method,
// Path, Proto, Reason, and every Header key and value alias that buffer —
// nothing is copied and nothing per-header is allocated. Header itself is a
// small kv-span list (see Header below), not a map, and key lookups compare
// case-insensitively against the wire bytes instead of rewriting them to
// canonical case. The message body is framed into the same buffer right
// after the head, so one Release returns the whole message — head strings
// included — to the pool. The ownership rules live on Request
// (buffer-lifecycle diagram in message.go) and in ROADMAP.md's "Wire codec"
// section.
//
// # Exchanges
//
// The API is connection-scoped: the unit a Handler works in is the
// Exchange, of which each server connection owns exactly one for its whole
// life. Handlers read the parsed request from ex.Req and answer through
// the exchange's reply API (Reply / ReplyBuffer / ReplyBytes; Hijack +
// Finish for replies produced on another goroutine); the reply's head and
// body leave in a single batched write. Because the Request struct, reply
// header set, and hijack channel are all reused, a keep-alive connection
// serves steady-state traffic with zero per-request message-struct
// allocations. The client mirrors the shape: each pooled connection owns
// one reusable Response, lent to the caller until Release — which is also
// what returns the connection for reuse — and Client.Stream pins a
// connection to one destination so consecutive exchanges pipeline over it
// without re-entering the idle pool. Ownership details live on Exchange
// and Client.
//
// # Cross-message batching
//
// Both halves amortize syscalls across messages, not just within one:
//
//   - Client: Stream.DoBatch sends a burst of requests down the pinned
//     connection as ONE pipelined, vectored write (bodies under the
//     coalesce limit are gathered into a single pooled buffer; larger
//     ones join a writev chain), arms the write/read deadline once for
//     the burst, and reads the responses back in pipeline order. Each
//     response is lent to the per-response callback only for the
//     callback's duration — it is released, and the connection's
//     reusable Response recycled, before the next response is read. On
//     a mid-burst failure DoBatch reports how many responses were fully
//     handled so the caller can requeue the unanswered tail.
//   - Server: replies to pipelined requests coalesce in a
//     connection-scoped write buffer and leave in one flush covering
//     the whole burst. The flush triggers when the client's buffered
//     input drains (the fasthttp heuristic: a pipelining client keeps
//     sending before it reads), when the batch exceeds the coalesce
//     limit, or when the connection is about to close — so a
//     one-request-at-a-time client still sees a write per reply.
//
// # Body aliasing downstream
//
// Handlers increasingly route straight off views of ex.Req.Body without
// building trees: since PR 9 the dispatchers skim canonical SOAP
// envelopes into byte spans (wsa.SkimEnvelope) that alias the pooled
// request buffer. The lifetime contract is the same one parse trees
// follow — views are valid until the reply is written (or until the
// taker's release, after TakeBody), and anything retained longer must
// be detached — and the poolcheck mode polices it identically. See the
// ROADMAP "Zero-parse forward path (PR 9)" contract.
package httpx

import (
	"strconv"
	"strings"
)

// headerKV is one header field as it appeared on the wire (or as Set stored
// it): key keeps its original spelling, value is already trimmed. For parsed
// messages both strings alias the message's pooled head buffer.
type headerKV struct {
	key, value string
}

// inlineHeaderKVs is how many header fields a message carries before Header
// spills to a heap slice. SOAP traffic runs 2–3 headers per message
// (Content-Type, Content-Length, Host, sometimes SOAPAction or the auth
// token), so a small inline array makes steady-state head parsing
// allocation-free without bloating every message struct — Header is
// embedded by value in Request and Response.
const inlineHeaderKVs = 4

// Header holds HTTP headers as single-valued, case-insensitive keys stored
// in wire order. SOAP traffic never needs repeated header fields, so a flat
// list keeps the codec small; the last write wins on duplicates (matching
// the previous map-based Header, which is frozen as the refhead oracle).
//
// Keys are stored with whatever spelling they arrived with and compared
// without rewriting: two keys are the same header iff their canonical forms
// (CanonicalKey) are equal, which for ASCII keys is a plain case-insensitive
// compare. Rendering (appendWire) emits canonical-case keys in sorted
// order, so wire output is byte-identical to the map era.
//
// The zero value is an empty, ready-to-use Header. Methods take pointer
// receivers; copying a Header value gives an independent view for the
// inline fields (a shared spill slice is fine because nothing mutates
// through a copy on the paths that copy — Client.Do's shallow request
// copy never touches headers).
type Header struct {
	n      int
	inline [inlineHeaderKVs]headerKV
	spill  []headerKV // fields inline has no room for
}

// CanonicalKey converts k to HTTP canonical form (Content-Type,
// SOAPAction → Soapaction is avoided by special-casing known mixed-case
// names). Keys already in canonical form — the overwhelmingly common
// case on the wire, and every render pays this call — are returned
// unchanged without allocating.
func CanonicalKey(k string) string {
	if isCanonicalKey(k) {
		return k
	}
	// Known names whose conventional spelling is not dash-canonical.
	switch strings.ToLower(k) {
	case "soapaction":
		return "SOAPAction"
	case "www-authenticate":
		return "WWW-Authenticate"
	}
	parts := strings.Split(k, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}

// isCanonicalKey reports whether the slow path above would return k
// unchanged: segment-initial letters uppercase, all other letters
// lowercase, with the two special spellings matched exactly (any other
// casing of them must take the slow path to be rewritten).
func isCanonicalKey(k string) bool {
	if k == "SOAPAction" || k == "WWW-Authenticate" {
		return true
	}
	if strings.EqualFold(k, "SOAPAction") || strings.EqualFold(k, "WWW-Authenticate") {
		return false
	}
	segStart := true
	for i := 0; i < len(k); i++ {
		c := k[i]
		if c == '-' {
			segStart = true
			continue
		}
		if segStart {
			if 'a' <= c && c <= 'z' {
				return false
			}
			segStart = false
			continue
		}
		if 'A' <= c && c <= 'Z' {
			return false
		}
	}
	return true
}

// isASCII reports whether s contains only single-byte characters.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// asciiEqualFold reports whether a and b are equal under ASCII case
// folding only. It allocates nothing and never considers Unicode fold
// pairs (so the Kelvin sign does not match 'k', which is what HTTP wants).
func asciiEqualFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// sameKey reports whether two header-key spellings name the same header:
// equal canonical forms. The hot path — both spellings pure ASCII, which is
// every key real HTTP traffic carries — is a byte-wise case-insensitive
// compare with no allocation. Keys with non-ASCII bytes (fuzzer territory)
// fall back to comparing canonical forms, because Unicode case mapping can
// identify byte strings ASCII folding cannot (U+212A 'K' lowercases to
// 'k'), and the frozen map oracle deduplicated by exactly that relation.
func sameKey(a, b string) bool {
	if isASCII(a) && isASCII(b) {
		return asciiEqualFold(a, b)
	}
	return CanonicalKey(a) == CanonicalKey(b)
}

// at returns the i'th field.
func (h *Header) at(i int) *headerKV {
	if i < inlineHeaderKVs {
		return &h.inline[i]
	}
	return &h.spill[i-inlineHeaderKVs]
}

// Len reports the number of header fields.
func (h *Header) Len() int { return h.n }

// Range calls f for each header field in wire order, stopping early if f
// returns false. Keys are reported with their stored spelling; canonicalize
// with CanonicalKey if a stable form is needed.
func (h *Header) Range(f func(key, value string) bool) {
	for i := 0; i < h.n; i++ {
		kv := h.at(i)
		if !f(kv.key, kv.value) {
			return
		}
	}
}

// index returns the position of key's field, or -1.
func (h *Header) index(key string) int {
	for i := 0; i < h.n; i++ {
		if sameKey(h.at(i).key, key) {
			return i
		}
	}
	return -1
}

// Set stores value under key, replacing any existing spelling of it.
func (h *Header) Set(key, value string) {
	if i := h.index(key); i >= 0 {
		h.at(i).value = value
		return
	}
	h.append(key, value)
}

// append adds a field without the duplicate scan; Set (which both the
// parser and construction paths go through) does the scan first.
func (h *Header) append(key, value string) {
	if h.n < inlineHeaderKVs {
		h.inline[h.n] = headerKV{key, value}
	} else {
		h.spill = append(h.spill, headerKV{key, value})
	}
	h.n++
}

// Get returns the value stored under key, or "".
func (h *Header) Get(key string) string {
	if i := h.index(key); i >= 0 {
		return h.at(i).value
	}
	return ""
}

// Del removes key.
func (h *Header) Del(key string) {
	i := h.index(key)
	if i < 0 {
		return
	}
	for j := i; j < h.n-1; j++ {
		*h.at(j) = *h.at(j + 1)
	}
	h.n--
	if h.n >= inlineHeaderKVs {
		h.spill = h.spill[:h.n-inlineHeaderKVs]
	} else {
		h.spill = h.spill[:0]
	}
}

// Has reports whether key is present.
func (h *Header) Has(key string) bool { return h.index(key) >= 0 }

// Reset empties the header in place, keeping the spill slice's capacity
// for the next fill. Stale entries are zeroed so a reused Header (one
// embedded in a connection's Exchange) does not pin strings that alias a
// released pooled buffer.
func (h *Header) Reset() {
	n := h.n
	if n > inlineHeaderKVs {
		n = inlineHeaderKVs
	}
	for i := 0; i < n; i++ {
		h.inline[i] = headerKV{}
	}
	for i := range h.spill {
		h.spill[i] = headerKV{}
	}
	h.spill = h.spill[:0]
	h.n = 0
}

// Clone returns a deep copy whose keys and values are detached from any
// pooled head buffer the original aliased.
func (h *Header) Clone() Header {
	var c Header
	for i := 0; i < h.n; i++ {
		kv := h.at(i)
		c.append(strings.Clone(kv.key), strings.Clone(kv.value))
	}
	return c
}

// Detach copies every key and value out of the pooled head buffer in
// place. Call it on a header that must outlive its message's Release —
// the head-side twin of Element.Detach for tree strings.
func (h *Header) Detach() {
	for i := 0; i < h.n; i++ {
		kv := h.at(i)
		kv.key = strings.Clone(kv.key)
		kv.value = strings.Clone(kv.value)
	}
}

// wireKeyScratch is the stack scratch appendWire sorts header keys in. More
// keys than this simply spill the scratch slice to the heap (append grows
// it); the constant is named — and the spill tested — so the limit is a
// deliberate fast-path size, not a silent cap.
const wireKeyScratch = 16

// appendWire renders headers in sorted canonical-key order (deterministic
// wire output makes tests and traces stable) followed by the blank line,
// appending to b. Content-Length is always emitted from contentLength
// (overriding any stored value), hostIfMissing supplies Host only when
// absent, and forceClose overrides Connection with "close" — all without
// touching the stored fields, so encoding never copies them. The key
// scratch lives on the stack for the header counts SOAP traffic has.
func (h *Header) appendWire(b []byte, contentLength int, hostIfMissing string, forceClose bool) []byte {
	type wireKV struct {
		key   string // canonical form
		value string
		kind  byte // 0 stored, 1 Content-Length, 2 Host, 3 Connection: close
	}
	var arr [wireKeyScratch]wireKV
	keys := arr[:0]
	for i := 0; i < h.n; i++ {
		kv := h.at(i)
		ck := CanonicalKey(kv.key)
		if ck == "Content-Length" {
			continue
		}
		if forceClose && ck == "Connection" {
			continue
		}
		keys = append(keys, wireKV{key: ck, value: kv.value})
	}
	keys = append(keys, wireKV{key: "Content-Length", kind: 1})
	if hostIfMissing != "" && !h.Has("Host") {
		keys = append(keys, wireKV{key: "Host", kind: 2})
	}
	if forceClose {
		keys = append(keys, wireKV{key: "Connection", kind: 3})
	}
	// Insertion sort: n is tiny and this avoids sort.Slice's interface
	// machinery on the hot path.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j].key < keys[j-1].key; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, kv := range keys {
		b = append(b, kv.key...)
		b = append(b, ':', ' ')
		switch kv.kind {
		case 1:
			b = strconv.AppendInt(b, int64(contentLength), 10)
		case 2:
			b = append(b, hostIfMissing...)
		case 3:
			b = append(b, "close"...)
		default:
			b = append(b, kv.value...)
		}
		b = append(b, '\r', '\n')
	}
	return append(b, '\r', '\n')
}
