// Package httpx is a compact HTTP/1.1 implementation — client, server, and
// message codec — written directly against net.Conn.
//
// The paper's stack (XSUL) ships its own HTTP transport rather than using a
// servlet container, because the dispatcher needs precise control over the
// connection lifecycle: the RPC-Dispatcher holds one upstream and one
// downstream connection per in-flight call, the MSG-Dispatcher keeps
// connections to destination services "open for a predefined time" to batch
// messages, and the evaluation hinges on TCP-level timeouts. Re-implementing
// HTTP/1.1 here (instead of using net/http) keeps those knobs explicit and
// lets the same code run over real TCP and over the netsim virtual network,
// whose Conn carries the bandwidth/latency model.
//
// Scope: HTTP/1.0 and 1.1, Content-Length and chunked bodies, persistent
// connections, and the handful of headers SOAP messaging needs. It is not a
// general-purpose web server.
package httpx

import (
	"strconv"
	"strings"
)

// Header holds HTTP headers as single-valued canonical-case keys. SOAP
// traffic never needs repeated header fields, so a flat map keeps the codec
// small; the last write wins on duplicates.
type Header map[string]string

// CanonicalKey converts k to HTTP canonical form (Content-Type,
// SOAPAction → Soapaction is avoided by special-casing known mixed-case
// names). Keys already in canonical form — the overwhelmingly common
// case on the wire, and every header op pays this call — are returned
// unchanged without allocating.
func CanonicalKey(k string) string {
	if isCanonicalKey(k) {
		return k
	}
	// Known names whose conventional spelling is not dash-canonical.
	switch strings.ToLower(k) {
	case "soapaction":
		return "SOAPAction"
	case "www-authenticate":
		return "WWW-Authenticate"
	}
	parts := strings.Split(k, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}

// isCanonicalKey reports whether the slow path above would return k
// unchanged: segment-initial letters uppercase, all other letters
// lowercase, with the two special spellings matched exactly (any other
// casing of them must take the slow path to be rewritten).
func isCanonicalKey(k string) bool {
	if k == "SOAPAction" || k == "WWW-Authenticate" {
		return true
	}
	if strings.EqualFold(k, "SOAPAction") || strings.EqualFold(k, "WWW-Authenticate") {
		return false
	}
	segStart := true
	for i := 0; i < len(k); i++ {
		c := k[i]
		if c == '-' {
			segStart = true
			continue
		}
		if segStart {
			if 'a' <= c && c <= 'z' {
				return false
			}
			segStart = false
			continue
		}
		if 'A' <= c && c <= 'Z' {
			return false
		}
	}
	return true
}

// Set stores value under the canonical form of key.
func (h Header) Set(key, value string) { h[CanonicalKey(key)] = value }

// Get returns the value stored under the canonical form of key, or "".
func (h Header) Get(key string) string { return h[CanonicalKey(key)] }

// Del removes key.
func (h Header) Del(key string) { delete(h, CanonicalKey(key)) }

// Has reports whether key is present.
func (h Header) Has(key string) bool {
	_, ok := h[CanonicalKey(key)]
	return ok
}

// Clone returns a deep copy.
func (h Header) Clone() Header {
	c := make(Header, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// appendWire renders headers in sorted order (deterministic wire output
// makes tests and traces stable) followed by the blank line, appending to
// b. Content-Length is always emitted from contentLength (overriding any
// stored value), hostIfMissing supplies Host only when absent, and
// forceClose overrides Connection with "close" — all without touching the
// map, so encoding never clones it. The key scratch lives on the stack
// for the header counts SOAP traffic has.
func (h Header) appendWire(b []byte, contentLength int, hostIfMissing string, forceClose bool) []byte {
	var arr [16]string
	keys := arr[:0]
	for k := range h {
		if k == "Content-Length" {
			continue
		}
		if forceClose && k == "Connection" {
			continue
		}
		keys = append(keys, k)
	}
	keys = append(keys, "Content-Length")
	if hostIfMissing != "" && !h.Has("Host") {
		keys = append(keys, "Host")
	}
	if forceClose {
		keys = append(keys, "Connection")
	}
	// Insertion sort: n is tiny and this avoids sort.Strings' interface
	// machinery on the hot path.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		b = append(b, k...)
		b = append(b, ':', ' ')
		switch {
		case k == "Content-Length":
			b = strconv.AppendInt(b, int64(contentLength), 10)
		case forceClose && k == "Connection":
			b = append(b, "close"...)
		case k == "Host" && !h.Has("Host"):
			b = append(b, hostIfMissing...)
		default:
			b = append(b, h[k]...)
		}
		b = append(b, '\r', '\n')
	}
	return append(b, '\r', '\n')
}
