// Package httpx is a compact HTTP/1.1 implementation — client, server, and
// message codec — written directly against net.Conn.
//
// The paper's stack (XSUL) ships its own HTTP transport rather than using a
// servlet container, because the dispatcher needs precise control over the
// connection lifecycle: the RPC-Dispatcher holds one upstream and one
// downstream connection per in-flight call, the MSG-Dispatcher keeps
// connections to destination services "open for a predefined time" to batch
// messages, and the evaluation hinges on TCP-level timeouts. Re-implementing
// HTTP/1.1 here (instead of using net/http) keeps those knobs explicit and
// lets the same code run over real TCP and over the netsim virtual network,
// whose Conn carries the bandwidth/latency model.
//
// Scope: HTTP/1.0 and 1.1, Content-Length and chunked bodies, persistent
// connections, and the handful of headers SOAP messaging needs. It is not a
// general-purpose web server.
package httpx

import (
	"fmt"
	"sort"
	"strings"
)

// Header holds HTTP headers as single-valued canonical-case keys. SOAP
// traffic never needs repeated header fields, so a flat map keeps the codec
// small; the last write wins on duplicates.
type Header map[string]string

// CanonicalKey converts k to HTTP canonical form (Content-Type,
// SOAPAction → Soapaction is avoided by special-casing known mixed-case
// names).
func CanonicalKey(k string) string {
	// Known names whose conventional spelling is not dash-canonical.
	switch strings.ToLower(k) {
	case "soapaction":
		return "SOAPAction"
	case "www-authenticate":
		return "WWW-Authenticate"
	}
	parts := strings.Split(k, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}

// Set stores value under the canonical form of key.
func (h Header) Set(key, value string) { h[CanonicalKey(key)] = value }

// Get returns the value stored under the canonical form of key, or "".
func (h Header) Get(key string) string { return h[CanonicalKey(key)] }

// Del removes key.
func (h Header) Del(key string) { delete(h, CanonicalKey(key)) }

// Has reports whether key is present.
func (h Header) Has(key string) bool {
	_, ok := h[CanonicalKey(key)]
	return ok
}

// Clone returns a deep copy.
func (h Header) Clone() Header {
	c := make(Header, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// writeTo renders headers in sorted order (deterministic wire output makes
// tests and traces stable) followed by the blank line.
func (h Header) writeTo(b *strings.Builder) {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s: %s\r\n", k, h[k])
	}
	b.WriteString("\r\n")
}
