//go:build !race

package httpx

const raceEnabled = false
