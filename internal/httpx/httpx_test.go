package httpx

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
)

func TestCanonicalKey(t *testing.T) {
	cases := map[string]string{
		"content-type":     "Content-Type",
		"CONTENT-LENGTH":   "Content-Length",
		"soapaction":       "SOAPAction",
		"x-custom-header":  "X-Custom-Header",
		"www-authenticate": "WWW-Authenticate",
	}
	for in, want := range cases {
		if got := CanonicalKey(in); got != want {
			t.Errorf("CanonicalKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHeaderSetGetDel(t *testing.T) {
	h := Header{}
	h.Set("content-type", "text/xml")
	if got := h.Get("Content-Type"); got != "text/xml" {
		t.Fatalf("Get = %q", got)
	}
	if !h.Has("CONTENT-TYPE") {
		t.Fatal("Has failed across casing")
	}
	h.Del("Content-Type")
	if h.Has("content-type") {
		t.Fatal("Del failed")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := NewRequest("POST", "/wsd/echo", []byte("<soap/>"))
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	req.Header.Set("SOAPAction", `""`)

	var buf bytes.Buffer
	if err := req.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "POST" || got.Path != "/wsd/echo" || got.Proto != "HTTP/1.1" {
		t.Fatalf("request line = %s %s %s", got.Method, got.Path, got.Proto)
	}
	if string(got.Body) != "<soap/>" {
		t.Fatalf("body = %q", got.Body)
	}
	if got.Header.Get("SOAPAction") != `""` {
		t.Fatalf("SOAPAction = %q", got.Header.Get("SOAPAction"))
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := NewResponse(StatusAccepted, []byte("queued"))
	var buf bytes.Buffer
	if err := resp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusAccepted || got.Reason != "Accepted" {
		t.Fatalf("status = %d %q", got.Status, got.Reason)
	}
	if string(got.Body) != "queued" {
		t.Fatalf("body = %q", got.Body)
	}
}

func TestEmptyBodyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	NewResponse(StatusOK, nil).Encode(&buf)
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Body) != 0 {
		t.Fatalf("body = %q, want empty", got.Body)
	}
}

func TestReadChunkedBody(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "Wikipedia" {
		t.Fatalf("chunked body = %q", resp.Body)
	}
}

func TestReadChunkedWithExtensionAndTrailer(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"3;ext=1\r\nabc\r\n0\r\nX-Trailer: v\r\n\r\n"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "abc" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestMalformedMessages(t *testing.T) {
	bad := []string{
		"NOT-HTTP\r\n\r\n",
		"GET /\r\n\r\n",                          // missing proto
		"HTTP/1.1 abc OK\r\n\r\n",                // bad status (response)
		"POST / HTTP/1.1\r\nNoColonHere\r\n\r\n", // bad header
		"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
	}
	for _, raw := range bad {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("ReadRequest(%q) succeeded", raw)
		}
	}
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader("HTTP/1.1 abc OK\r\n\r\n"))); err == nil {
		t.Error("ReadResponse with bad status succeeded")
	}
}

func TestBodyTooBig(t *testing.T) {
	raw := "POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); !errors.Is(err, ErrBodyTooBig) {
		t.Fatalf("err = %v, want ErrBodyTooBig", err)
	}
}

// Property: any request with printable token method/path and arbitrary
// binary body survives a wire round trip bit-exactly.
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(body []byte, pathSuffix uint16) bool {
		req := NewRequest("POST", "/p"+"/"+strings.Repeat("x", int(pathSuffix%32)), body)
		req.Header.Set("Content-Type", "application/octet-stream")
		var buf bytes.Buffer
		if err := req.Encode(&buf); err != nil {
			return false
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return bytes.Equal(got.Body, body) && got.Path == req.Path
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// simEnv is a tiny client/server rig over the simulated network.
type simEnv struct {
	clk    *clock.Virtual
	nw     *netsim.Network
	server *Server
	client *Client
	addr   string
}

func newSimEnv(t *testing.T, handler Handler, scfg ServerConfig, ccfg ClientConfig) *simEnv {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	nw := netsim.New(clk, 42)
	srvHost := nw.AddHost("server", netsim.ProfileLAN())
	cliHost := nw.AddHost("client", netsim.ProfileLAN())
	ln, err := srvHost.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Clock = clk
	ccfg.Clock = clk
	srv := NewServer(handler, scfg)
	srv.Start(ln)
	t.Cleanup(func() { srv.Close() })
	cli := NewClient(cliHost, ccfg)
	t.Cleanup(cli.Close)
	return &simEnv{clk: clk, nw: nw, server: srv, client: cli, addr: "server:80"}
}

func echoHandler(ex *Exchange) {
	ex.Header().Set("Content-Type", ex.Req.Header.Get("Content-Type"))
	ex.ReplyBytes(StatusOK, ex.Req.Body)
}

func TestClientServerOverSimNetwork(t *testing.T) {
	env := newSimEnv(t, HandlerFunc(echoHandler), ServerConfig{}, ClientConfig{})
	req := NewRequest("POST", "/echo", []byte("ping"))
	resp, err := env.client.Do(env.addr, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || string(resp.Body) != "ping" {
		t.Fatalf("resp = %d %q", resp.Status, resp.Body)
	}
	resp.Release()
	if env.server.Requests.Value() != 1 {
		t.Fatalf("server requests = %d", env.server.Requests.Value())
	}
}

func TestKeepAliveReusesConnection(t *testing.T) {
	env := newSimEnv(t, HandlerFunc(echoHandler), ServerConfig{}, ClientConfig{})
	for i := 0; i < 5; i++ {
		resp, err := env.client.Do(env.addr, NewRequest("POST", "/echo", []byte("x")))
		if err != nil {
			t.Fatal(err)
		}
		// The release is what returns the connection for reuse.
		resp.Release()
	}
	// All five exchanges over one connection.
	if peak := env.server.ActiveConns.Peak(); peak != 1 {
		t.Fatalf("peak server conns = %d, want 1 (keep-alive reuse)", peak)
	}
}

func TestDisableKeepAliveOpensPerRequest(t *testing.T) {
	env := newSimEnv(t, HandlerFunc(echoHandler), ServerConfig{}, ClientConfig{DisableKeepAlive: true})
	for i := 0; i < 3; i++ {
		resp, err := env.client.Do(env.addr, NewRequest("POST", "/echo", []byte("x")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
	}
	host := env.nw.Host("server")
	if host.PeakConns() < 1 {
		t.Fatal("no connections observed")
	}
	// Each request used a fresh connection, so total accepted ≥ 3;
	// peak concurrency stays low because each closes before the next.
	if env.server.Requests.Value() != 3 {
		t.Fatalf("requests = %d", env.server.Requests.Value())
	}
}

func TestServerHandles1_0Close(t *testing.T) {
	env := newSimEnv(t, HandlerFunc(echoHandler), ServerConfig{}, ClientConfig{})
	req := NewRequest("POST", "/echo", []byte("x"))
	req.Proto = "HTTP/1.0"
	resp, err := env.client.Do(env.addr, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("status = %d", resp.Status)
	}
	resp.Release()
}

func TestSlowHandlerTimesOutClient(t *testing.T) {
	clkCh := make(chan clock.Clock, 1)
	slow := HandlerFunc(func(ex *Exchange) {
		clk := <-clkCh
		clkCh <- clk
		clk.Sleep(10 * time.Second) // longer than the client budget
		ex.ReplyBytes(StatusOK, nil)
	})
	env := newSimEnv(t, slow, ServerConfig{}, ClientConfig{RequestTimeout: 2 * time.Second})
	clkCh <- env.clk
	_, err := env.client.Do(env.addr, NewRequest("POST", "/slow", nil))
	if err == nil {
		t.Fatal("slow exchange did not time out")
	}
	var nerr interface{ Timeout() bool }
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("error = %v, want timeout", err)
	}
}

func TestPooledConnSurvivesServerIdleClose(t *testing.T) {
	env := newSimEnv(t, HandlerFunc(echoHandler),
		ServerConfig{IdleTimeout: time.Second}, ClientConfig{})
	if resp, err := env.client.Do(env.addr, NewRequest("POST", "/e", []byte("1"))); err != nil {
		t.Fatal(err)
	} else {
		resp.Release()
	}
	// Let the server's idle timeout reap the pooled connection, then
	// issue another request: the client must retry on a fresh dial.
	env.clk.Sleep(3 * time.Second)
	resp, err := env.client.Do(env.addr, NewRequest("POST", "/e", []byte("2")))
	if err != nil {
		t.Fatalf("request after idle close failed: %v", err)
	}
	if string(resp.Body) != "2" {
		t.Fatalf("body = %q", resp.Body)
	}
	resp.Release()
}

func TestPanicHandlerReturns500(t *testing.T) {
	env := newSimEnv(t, HandlerFunc(func(*Exchange) { panic("boom") }),
		ServerConfig{}, ClientConfig{})
	resp, err := env.client.Do(env.addr, NewRequest("POST", "/p", nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.Status)
	}
	resp.Release()
}

func TestMaxHandlersLimitsConcurrency(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 7)
	srvHost := nw.AddHost("s2", netsim.ProfileLAN())
	cliHost := nw.AddHost("c2", netsim.ProfileLAN())
	ln, _ := srvHost.Listen(80)

	type counter struct {
		mu     chan struct{}
		active int
		peak   int
	}
	cnt := &counter{mu: make(chan struct{}, 1)}
	cnt.mu <- struct{}{}
	handler := HandlerFunc(func(ex *Exchange) {
		<-cnt.mu
		cnt.active++
		if cnt.active > cnt.peak {
			cnt.peak = cnt.active
		}
		cnt.mu <- struct{}{}
		clk.Sleep(100 * time.Millisecond)
		<-cnt.mu
		cnt.active--
		cnt.mu <- struct{}{}
		ex.ReplyBytes(StatusOK, nil)
	})
	srv := NewServer(handler, ServerConfig{Clock: clk, MaxHandlers: 2})
	srv.Start(ln)
	defer srv.Close()

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			cli := NewClient(cliHost, ClientConfig{Clock: clk})
			resp, err := cli.Do("s2:80", NewRequest("POST", "/x", nil))
			if err == nil {
				resp.Release()
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	<-cnt.mu
	peakSeen := cnt.peak
	cnt.mu <- struct{}{}
	if peakSeen > 2 {
		t.Fatalf("peak concurrent handlers = %d, want <= 2", peakSeen)
	}
}

func TestServerCloseStopsServe(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 9)
	h := nw.AddHost("h", netsim.ProfileLAN())
	ln, _ := h.Listen(80)
	srv := NewServer(HandlerFunc(echoHandler), ServerConfig{Clock: clk})
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}
