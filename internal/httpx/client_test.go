package httpx

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
)

// countingDialer wraps a Dialer and counts dials — the "fake dialer" the
// idle-pool tests observe evictions through.
type countingDialer struct {
	inner Dialer
	dials atomic.Int64
}

func (d *countingDialer) DialTimeout(addr string, timeout time.Duration) (net.Conn, error) {
	d.dials.Add(1)
	return d.inner.DialTimeout(addr, timeout)
}

// newCountingEnv is newSimEnv with the client's dialer wrapped so tests
// can assert how many fresh connections were opened.
func newCountingEnv(t *testing.T, ccfg ClientConfig) (*simEnv, *countingDialer) {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	nw := netsim.New(clk, 42)
	srvHost := nw.AddHost("server", netsim.ProfileLAN())
	cliHost := nw.AddHost("client", netsim.ProfileLAN())
	ln, err := srvHost.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(HandlerFunc(echoHandler), ServerConfig{Clock: clk})
	srv.Start(ln)
	t.Cleanup(func() { srv.Close() })
	dialer := &countingDialer{inner: cliHost}
	ccfg.Clock = clk
	cli := NewClient(dialer, ccfg)
	t.Cleanup(cli.Close)
	return &simEnv{clk: clk, nw: nw, server: srv, client: cli, addr: "server:80"}, dialer
}

func doEcho(t *testing.T, env *simEnv, body string) {
	t.Helper()
	resp, err := env.client.Do(env.addr, NewRequest("POST", "/e", []byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != body {
		t.Fatalf("body = %q, want %q", resp.Body, body)
	}
	resp.Release()
}

// TestIdleConnTTLEvicts pins the idle-connection hygiene satellite: a
// pooled connection older than IdleConnTTL is evicted (closed) instead
// of reused, and the next exchange dials fresh. The server's idle
// timeout is set high so only the client-side TTL can explain the
// eviction.
func TestIdleConnTTLEvicts(t *testing.T) {
	env, dialer := newCountingEnv(t, ClientConfig{IdleConnTTL: 5 * time.Second})
	doEcho(t, env, "1")
	if got := env.client.IdleConns(env.addr); got != 1 {
		t.Fatalf("idle conns after release = %d, want 1", got)
	}
	if dialer.dials.Load() != 1 {
		t.Fatalf("dials = %d, want 1", dialer.dials.Load())
	}

	// Within the TTL: the pooled connection is reused.
	env.clk.Sleep(2 * time.Second)
	doEcho(t, env, "2")
	if dialer.dials.Load() != 1 {
		t.Fatalf("dials after in-TTL reuse = %d, want 1", dialer.dials.Load())
	}

	// Past the TTL: the parked connection is evicted and a fresh dial
	// carries the exchange.
	env.clk.Sleep(6 * time.Second)
	if got := env.client.IdleConns(env.addr); got != 0 {
		t.Fatalf("idle conns past TTL = %d, want 0", got)
	}
	doEcho(t, env, "3")
	if dialer.dials.Load() != 2 {
		t.Fatalf("dials after TTL eviction = %d, want 2", dialer.dials.Load())
	}
}

// TestIdleConnTTLDisabled checks a negative TTL turns expiry off: the
// stale connection stays parked indefinitely (and the usual dead-conn
// retry would cover its staleness on next use).
func TestIdleConnTTLDisabled(t *testing.T) {
	env, _ := newCountingEnv(t, ClientConfig{IdleConnTTL: -1})
	doEcho(t, env, "1")
	env.clk.Sleep(10 * time.Minute)
	if got := env.client.IdleConns(env.addr); got != 1 {
		t.Fatalf("idle conns with TTL disabled = %d, want 1", got)
	}
}

// TestMaxIdlePerHostCapEvicts checks the pool cap still closes overflow
// connections (the pre-TTL behavior, kept).
func TestMaxIdlePerHostCapEvicts(t *testing.T) {
	env, _ := newCountingEnv(t, ClientConfig{MaxIdlePerHost: 2})
	// Three concurrent exchanges force three connections; releasing all
	// three can park at most two.
	resps := make([]*Response, 3)
	for i := range resps {
		resp, err := env.client.Do(env.addr, NewRequest("POST", "/e", []byte("x")))
		if err != nil {
			t.Fatal(err)
		}
		resps[i] = resp
	}
	for _, r := range resps {
		r.Release()
	}
	if got := env.client.IdleConns(env.addr); got != 2 {
		t.Fatalf("idle conns = %d, want cap 2", got)
	}
}

// TestStreamPipelinesOneConnection pins the Stream session contract:
// consecutive exchanges ride one connection without touching the idle
// pool, and the server sees a single connection throughout.
func TestStreamPipelinesOneConnection(t *testing.T) {
	env, dialer := newCountingEnv(t, ClientConfig{})
	s := env.client.Stream(env.addr)
	defer s.Close()
	for i := 0; i < 5; i++ {
		resp, err := s.Do(NewRequest("POST", "/e", []byte("ping")))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != StatusOK || string(resp.Body) != "ping" {
			t.Fatalf("stream resp = %d %q", resp.Status, resp.Body)
		}
		if got := env.client.IdleConns(env.addr); got != 0 {
			t.Fatalf("stream leaked its connection into the idle pool (%d)", got)
		}
		resp.Release()
	}
	if dialer.dials.Load() != 1 {
		t.Fatalf("dials = %d, want 1", dialer.dials.Load())
	}
	if peak := env.server.ActiveConns.Peak(); peak != 1 {
		t.Fatalf("peak server conns = %d, want 1", peak)
	}
}

// TestStreamBusyUntilRelease pins the sequential-session rule: the next
// Do is refused until the previous response is released.
func TestStreamBusyUntilRelease(t *testing.T) {
	env, _ := newCountingEnv(t, ClientConfig{})
	s := env.client.Stream(env.addr)
	defer s.Close()
	resp, err := s.Do(NewRequest("POST", "/e", []byte("a")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do(NewRequest("POST", "/e", []byte("b"))); err != ErrStreamBusy {
		t.Fatalf("second Do before release: err = %v, want ErrStreamBusy", err)
	}
	resp.Release()
	resp2, err := s.Do(NewRequest("POST", "/e", []byte("b")))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Release()
}

// TestStreamCloseParksConnection checks the handoff between sessions:
// Close returns the healthy connection to the shared idle pool, and the
// next Stream (or Do) to the same destination adopts it instead of
// dialing.
func TestStreamCloseParksConnection(t *testing.T) {
	env, dialer := newCountingEnv(t, ClientConfig{})
	s := env.client.Stream(env.addr)
	resp, err := s.Do(NewRequest("POST", "/e", []byte("a")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Release()
	s.Close()
	if got := env.client.IdleConns(env.addr); got != 1 {
		t.Fatalf("idle conns after stream close = %d, want 1", got)
	}
	if _, err := s.Do(NewRequest("POST", "/e", []byte("x"))); err != ErrStreamClosed {
		t.Fatalf("Do on closed stream: err = %v, want ErrStreamClosed", err)
	}

	// A new binding to the same destination adopts the parked conn.
	s2 := env.client.Stream(env.addr)
	defer s2.Close()
	resp, err = s2.Do(NewRequest("POST", "/e", []byte("b")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Release()
	if dialer.dials.Load() != 1 {
		t.Fatalf("dials = %d, want 1 (second stream must adopt the parked conn)", dialer.dials.Load())
	}
}

// TestStreamCloseWhileLentHandsOff covers closing a stream while its
// response is still held: the release, not Close, parks the connection.
func TestStreamCloseWhileLentHandsOff(t *testing.T) {
	env, _ := newCountingEnv(t, ClientConfig{})
	s := env.client.Stream(env.addr)
	resp, err := s.Do(NewRequest("POST", "/e", []byte("a")))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if got := env.client.IdleConns(env.addr); got != 0 {
		t.Fatalf("connection parked while still lent out (%d idle)", got)
	}
	resp.Release()
	if got := env.client.IdleConns(env.addr); got != 1 {
		t.Fatalf("idle conns after deferred handoff = %d, want 1", got)
	}
}

// TestStreamSurvivesServerIdleClose: a stream whose pinned connection
// the server reaped redials transparently, like Client.Do.
func TestStreamSurvivesServerIdleClose(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	nw := netsim.New(clk, 7)
	srvHost := nw.AddHost("server", netsim.ProfileLAN())
	cliHost := nw.AddHost("client", netsim.ProfileLAN())
	ln, _ := srvHost.Listen(80)
	srv := NewServer(HandlerFunc(echoHandler), ServerConfig{Clock: clk, IdleTimeout: time.Second})
	srv.Start(ln)
	defer srv.Close()
	cli := NewClient(cliHost, ClientConfig{Clock: clk})
	defer cli.Close()

	s := cli.Stream("server:80")
	defer s.Close()
	resp, err := s.Do(NewRequest("POST", "/e", []byte("1")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Release()
	clk.Sleep(3 * time.Second) // server reaps the held connection
	resp, err = s.Do(NewRequest("POST", "/e", []byte("2")))
	if err != nil {
		t.Fatalf("stream Do after server idle close: %v", err)
	}
	if string(resp.Body) != "2" {
		t.Fatalf("body = %q", resp.Body)
	}
	resp.Release()
}
