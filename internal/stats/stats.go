// Package stats collects the measurements the paper's test client reports:
// calls made, packets transmitted vs. not sent (Figure 4), and messages per
// minute (Figures 5 and 6), plus latency histograms used by the ablation
// benchmarks.
//
// All types are safe for concurrent use; the load generator updates them
// from hundreds of client goroutines.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing concurrent counter.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a concurrent instantaneous value with a high-water mark.
type Gauge struct {
	mu   sync.Mutex
	v    int64
	peak int64
}

// Set assigns the gauge.
func (g *Gauge) Set(v int64) {
	g.mu.Lock()
	g.v = v
	if v > g.peak {
		g.peak = v
	}
	g.mu.Unlock()
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	g.mu.Lock()
	g.v += delta
	if g.v > g.peak {
		g.peak = g.v
	}
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Peak returns the highest value ever set.
func (g *Gauge) Peak() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// Histogram records durations and reports quantiles. It stores raw samples;
// the experiment scale (≤ a few hundred thousand samples) makes exact
// quantiles affordable and keeps the implementation obviously correct.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sum     time.Duration
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sum += d
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by nearest-rank, or 0
// with no samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() time.Duration { return h.Quantile(0) }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() time.Duration { return h.Quantile(1) }

// RunReport is the per-configuration record the paper's test client prints:
// one row of a figure. Rates are normalized to a per-minute basis from the
// virtual elapsed time so short scaled runs remain comparable to the
// paper's one-minute runs.
type RunReport struct {
	Series      string        // e.g. "Direct WS", "Dispatcher"
	Clients     int           // concurrent client connections
	Elapsed     time.Duration // virtual duration of the run
	Transmitted int64         // requests completed end-to-end
	NotSent     int64         // requests lost (refused/timed out)
	Errors      int64         // transport errors after acceptance
	MeanRTT     time.Duration
	P99RTT      time.Duration
}

// PerMinute returns Transmitted normalized to messages per minute.
func (r RunReport) PerMinute() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Transmitted) / r.Elapsed.Minutes()
}

// LossRatio returns NotSent / (Transmitted + NotSent), or 0 when nothing
// was attempted.
func (r RunReport) LossRatio() float64 {
	total := r.Transmitted + r.NotSent
	if total == 0 {
		return 0
	}
	return float64(r.NotSent) / float64(total)
}

// String renders one gnuplot-style data row matching the paper's plots.
func (r RunReport) String() string {
	return fmt.Sprintf("%-28s clients=%-5d transmitted=%-8d not_sent=%-8d msg/min=%-9.0f loss=%5.1f%% mean_rtt=%-10v p99_rtt=%v",
		r.Series, r.Clients, r.Transmitted, r.NotSent, r.PerMinute(), 100*r.LossRatio(), r.MeanRTT, r.P99RTT)
}
