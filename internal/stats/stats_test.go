package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestGaugePeak(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.Add(4)
	g.Add(-5)
	if g.Value() != 2 {
		t.Fatalf("Value = %d, want 2", g.Value())
	}
	if g.Peak() != 7 {
		t.Fatalf("Peak = %d, want 7", g.Peak())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramMeanAndQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Mean(); got != 50*time.Millisecond+500*time.Microsecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := h.Quantile(0.5); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := h.Quantile(0.99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", got)
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Millisecond)
	if h.Quantile(-1) != 5*time.Millisecond || h.Quantile(2) != 5*time.Millisecond {
		t.Fatal("out-of-range quantiles should clamp")
	}
}

// Property: quantiles are monotonically non-decreasing in q and bounded by
// observed min and max.
func TestQuickQuantileMonotonic(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		min, max := time.Duration(math.MaxInt64), time.Duration(0)
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			h.Observe(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev || v < min || v > max {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportPerMinute(t *testing.T) {
	r := RunReport{Transmitted: 300, Elapsed: 30 * time.Second}
	if got := r.PerMinute(); got != 600 {
		t.Fatalf("PerMinute = %v, want 600", got)
	}
	zero := RunReport{}
	if zero.PerMinute() != 0 {
		t.Fatal("zero report PerMinute should be 0")
	}
}

func TestRunReportLossRatio(t *testing.T) {
	r := RunReport{Transmitted: 75, NotSent: 25}
	if got := r.LossRatio(); got != 0.25 {
		t.Fatalf("LossRatio = %v, want 0.25", got)
	}
	if (RunReport{}).LossRatio() != 0 {
		t.Fatal("empty report LossRatio should be 0")
	}
}

func TestRunReportString(t *testing.T) {
	r := RunReport{Series: "Dispatcher", Clients: 100, Elapsed: time.Minute, Transmitted: 5000, NotSent: 10}
	s := r.String()
	for _, want := range []string{"Dispatcher", "clients=100", "transmitted=5000", "not_sent=10"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
