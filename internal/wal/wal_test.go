package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clock"
)

// encStr returns an encode callback appending s — the shape store uses.
func encStr(s string) func([]byte) []byte {
	return func(dst []byte) []byte { return append(dst, s...) }
}

// collect opens dir and returns every replayed record as a string.
func collect(t *testing.T, dir string, cfg Config) (*Log, []string) {
	t.Helper()
	var got []string
	l, err := Open(dir, cfg, func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, got := collect(t, dir, Config{Sync: SyncNever})
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	want := []string{"alpha", "beta", "", "gamma-with-a-longer-payload"}
	for _, s := range want {
		if err := l.Append(encStr(s)); err != nil {
			t.Fatalf("Append(%q): %v", s, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, got := collect(t, dir, Config{Sync: SyncNever})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d (%q)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if n := l2.RecoveredRecords.Value(); n != int64(len(want)) {
		t.Fatalf("RecoveredRecords = %d, want %d", n, len(want))
	}
}

func TestOpenMissingParentDirFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "no", "such", "parent")
	if _, err := Open(dir, Config{}, nil); err == nil {
		t.Fatal("Open under a missing parent succeeded; want error")
	}
}

func TestAppendTooLarge(t *testing.T) {
	l, _ := collect(t, filepath.Join(t.TempDir(), "wal"), Config{Sync: SyncNever, MaxRecord: 16})
	defer l.Close()
	err := l.Append(func(dst []byte) []byte { return append(dst, make([]byte, 17)...) })
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: err = %v, want ErrTooLarge", err)
	}
	// An oversized record must not poison the log: nothing was written.
	if err := l.Append(encStr("ok")); err != nil {
		t.Fatalf("append after ErrTooLarge: %v", err)
	}
}

func TestClosedLog(t *testing.T) {
	l, _ := collect(t, filepath.Join(t.TempDir(), "wal"), Config{})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append(encStr("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close: %v, want ErrClosed", err)
	}
}

// TestTornTailEveryByteOffset is the crash-safety sweep: a log cut at
// EVERY possible byte length must recover exactly the records whose
// frames fit whole before the cut, and the recovered log must accept
// and persist new appends.
func TestTornTailEveryByteOffset(t *testing.T) {
	base := filepath.Join(t.TempDir(), "wal")
	l, _ := collect(t, base, Config{Sync: SyncNever})
	records := []string{"first-record", "second", "third-one-is-longest-of-all", "4"}
	var boundaries []int64 // file size after each whole record
	boundaries = append(boundaries, headerSize)
	for _, s := range records {
		if err := l.Append(encStr(s)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		boundaries = append(boundaries, boundaries[len(boundaries)-1]+int64(recHeaderSize+len(s)))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segPath := filepath.Join(base, fmt.Sprintf("%012d%s", 1, segSuffix))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if int64(len(full)) != boundaries[len(boundaries)-1] {
		t.Fatalf("segment is %d bytes, want %d", len(full), boundaries[len(boundaries)-1])
	}
	// wholeBefore(cut) = count of records fully on disk at that length.
	wholeBefore := func(cut int) int {
		n := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= int64(cut) {
				n = i
			}
		}
		return n
	}
	for cut := 0; cut <= len(full); cut++ {
		dir := filepath.Join(t.TempDir(), "cut")
		if err := os.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%012d%s", 1, segSuffix)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, got := collect(t, dir, Config{Sync: SyncNever})
		want := records[:wholeBefore(cut)]
		if len(got) != len(want) {
			t.Fatalf("cut=%d: recovered %d records (%q), want %d", cut, len(got), got, len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut=%d: record %d = %q, want %q", cut, i, got[i], want[i])
			}
		}
		// The recovered log must be writable and the write durable.
		if err := l2.Append(encStr("post-crash")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		l3, got := collect(t, dir, Config{Sync: SyncNever})
		if len(got) != len(want)+1 || got[len(got)-1] != "post-crash" {
			t.Fatalf("cut=%d: second recovery got %q, want %q + post-crash", cut, got, want)
		}
		l3.Close()
	}
}

// TestCorruptTailBitFlip flips every byte of the LAST record in turn;
// recovery must drop exactly that record (checksum mismatch) and keep
// the rest.
func TestCorruptTailBitFlip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "wal")
	l, _ := collect(t, base, Config{Sync: SyncNever})
	for _, s := range []string{"keep-a", "keep-b", "doomed-tail-record"} {
		if err := l.Append(encStr(s)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segPath := filepath.Join(base, fmt.Sprintf("%012d%s", 1, segSuffix))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(full) - recHeaderSize - len("doomed-tail-record")
	for i := lastStart; i < len(full); i++ {
		dir := filepath.Join(t.TempDir(), "flip")
		if err := os.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%012d%s", 1, segSuffix)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, got := collect(t, dir, Config{Sync: SyncNever})
		// Flipping a length byte can make the frame claim more bytes
		// than remain (torn) or fewer (checksum covers wrong span) —
		// either way the tail record must vanish and the prefix hold.
		if len(got) != 2 || got[0] != "keep-a" || got[1] != "keep-b" {
			t.Fatalf("flip@%d: recovered %q, want [keep-a keep-b]", i, got)
		}
		if l2.TornTruncations.Value() == 0 {
			t.Fatalf("flip@%d: no torn truncation recorded", i)
		}
		l2.Close()
	}
}

// TestCorruptMiddleSegmentFatal: damage in a sealed (non-final) segment
// is NOT recoverable — truncating there would silently drop the
// segments after it.
func TestCorruptMiddleSegmentFatal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	// Tiny segments force a rotation per record.
	l, _ := collect(t, dir, Config{Sync: SyncNever, SegmentSize: headerSize + 1})
	for _, s := range []string{"seg-one", "seg-two", "seg-three"} {
		if err := l.Append(encStr(s)); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.Segments(); n < 3 {
		t.Fatalf("Segments() = %d, want >= 3", n)
	}
	l.Close()
	seg1 := filepath.Join(dir, fmt.Sprintf("%012d%s", 1, segSuffix))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Config{Sync: SyncNever}, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with corrupt sealed segment: %v, want ErrCorrupt", err)
	}
}

func TestRotationReplaysAcrossSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, _ := collect(t, dir, Config{Sync: SyncNever, SegmentSize: 64})
	var want []string
	for i := 0; i < 40; i++ {
		s := fmt.Sprintf("record-%03d", i)
		want = append(want, s)
		if err := l.Append(encStr(s)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Rotations.Value() == 0 {
		t.Fatal("no rotations with a 64-byte segment size")
	}
	segs := l.Segments()
	if segs < 2 {
		t.Fatalf("Segments() = %d, want >= 2", segs)
	}
	l.Close()
	l2, got := collect(t, dir, Config{Sync: SyncNever, SegmentSize: 64})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if l2.Segments() != segs {
		t.Fatalf("reopened Segments() = %d, want %d", l2.Segments(), segs)
	}
}

func TestCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, _ := collect(t, dir, Config{Sync: SyncNever, SegmentSize: 64})
	for i := 0; i < 40; i++ {
		if err := l.Append(encStr(fmt.Sprintf("retired-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := l.Size()
	live := []string{"live-a", "live-b", "live-c"}
	if err := l.Compact(func(w *Snapshot) error {
		for _, s := range live {
			if err := w.Append(encStr(s)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if l.Segments() != 1 {
		t.Fatalf("Segments() after compact = %d, want 1", l.Segments())
	}
	if l.Size() >= sizeBefore {
		t.Fatalf("Size() after compact = %d, not below %d", l.Size(), sizeBefore)
	}
	// Appends continue into the snapshot segment.
	if err := l.Append(encStr("after-compact")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, got := collect(t, dir, Config{Sync: SyncNever})
	defer l2.Close()
	want := append(append([]string(nil), live...), "after-compact")
	if len(got) != len(want) {
		t.Fatalf("replayed %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestCompactionCrashLeftovers: an interrupted compaction leaves either
// a stale .tmp (pre-rename — ignored and deleted) or a base segment
// alongside stale older segments (post-rename — older segments are
// superseded and deleted, replay starts at the base).
func TestCompactionCrashLeftovers(t *testing.T) {
	t.Run("pre-rename tmp", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "wal")
		l, _ := collect(t, dir, Config{Sync: SyncNever})
		if err := l.Append(encStr("kept")); err != nil {
			t.Fatal(err)
		}
		l.Close()
		tmp := filepath.Join(dir, "compact"+tmpSuffix)
		if err := os.WriteFile(tmp, []byte("half a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
		l2, got := collect(t, dir, Config{Sync: SyncNever})
		defer l2.Close()
		if len(got) != 1 || got[0] != "kept" {
			t.Fatalf("recovered %q, want [kept]", got)
		}
		if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("stale tmp still present: %v", err)
		}
	})
	t.Run("post-rename stale segments", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "wal")
		// Build stale pre-compaction segments 1..3.
		l, _ := collect(t, dir, Config{Sync: SyncNever, SegmentSize: headerSize + 1})
		for _, s := range []string{"stale-1", "stale-2"} {
			if err := l.Append(encStr(s)); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		// Hand-write segment 4 with the base flag: the renamed snapshot
		// of a compaction that crashed before deleting 1..3.
		var seg []byte
		var hdr [headerSize]byte
		copy(hdr[:8], magic)
		binary.LittleEndian.PutUint32(hdr[8:12], 4)
		hdr[12] = flagBase
		seg = append(seg, hdr[:]...)
		payload := []byte("snapshot-state")
		var rh [recHeaderSize]byte
		binary.LittleEndian.PutUint32(rh[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(rh[4:8], crc32Checksum(payload))
		seg = append(seg, rh[:]...)
		seg = append(seg, payload...)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%012d%s", 4, segSuffix)), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, got := collect(t, dir, Config{Sync: SyncNever})
		defer l2.Close()
		if len(got) != 1 || got[0] != "snapshot-state" {
			t.Fatalf("recovered %q, want [snapshot-state]", got)
		}
		if l2.Segments() != 1 {
			t.Fatalf("Segments() = %d, want 1 (stale ones deleted)", l2.Segments())
		}
		entries, _ := os.ReadDir(dir)
		if len(entries) != 1 {
			t.Fatalf("%d files left in dir, want 1", len(entries))
		}
	})
}

// TestTornSegmentHeaderDropped: a crash between creating a segment file
// and writing its header leaves a header-less tail segment; Open drops
// it and resumes on the previous one.
func TestTornSegmentHeaderDropped(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, _ := collect(t, dir, Config{Sync: SyncNever})
	if err := l.Append(encStr("survives")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Simulate the torn rotation: an empty segment 2.
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%012d%s", 2, segSuffix)), []byte("WSDW"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got := collect(t, dir, Config{Sync: SyncNever})
	defer l2.Close()
	if len(got) != 1 || got[0] != "survives" {
		t.Fatalf("recovered %q, want [survives]", got)
	}
	if l2.TornTruncations.Value() == 0 {
		t.Fatal("torn header drop not counted")
	}
	if err := l2.Append(encStr("again")); err != nil {
		t.Fatalf("append after torn-header drop: %v", err)
	}
}

func TestSyncPolicyAlways(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, _ := collect(t, dir, Config{Sync: SyncAlways})
	defer l.Close()
	base := l.Syncs.Value()
	for i := 0; i < 3; i++ {
		if err := l.Append(encStr("x")); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.Syncs.Value() - base; n != 3 {
		t.Fatalf("SyncAlways: %d syncs for 3 appends, want 3", n)
	}
}

// waitSyncs polls (real time) for the group-commit goroutine to bring
// the sync counter to want — AfterFunc callbacks run on their own
// goroutine even under the Virtual clock.
func waitSyncs(t *testing.T, l *Log, base, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if l.Syncs.Value()-base == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("syncs = %d, want %d", l.Syncs.Value()-base, want)
}

// TestSyncPolicyInterval drives the group-commit window on the Virtual
// clock: many appends inside one window cost one fsync, fired exactly
// when the window elapses; an idle window costs none.
func TestSyncPolicyInterval(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	dir := filepath.Join(t.TempDir(), "wal")
	l, _ := collect(t, dir, Config{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond, Clock: vc})
	defer l.Close()
	base := l.Syncs.Value()
	for i := 0; i < 10; i++ {
		if err := l.Append(encStr("batched")); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.Syncs.Value() - base; n != 0 {
		t.Fatalf("synced %d times before the window elapsed", n)
	}
	vc.Advance(5 * time.Millisecond)
	waitSyncs(t, l, base, 1) // group commit: 1 fsync for 10 appends
	// Idle window: timer is not re-armed without a dirty append.
	vc.Advance(50 * time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if n := l.Syncs.Value() - base; n != 1 {
		t.Fatalf("idle windows synced: %d total", n)
	}
	// Next append re-arms.
	if err := l.Append(encStr("later")); err != nil {
		t.Fatal(err)
	}
	vc.Advance(5 * time.Millisecond)
	waitSyncs(t, l, base, 2)
}

// TestExplicitSyncClearsWindow: Sync() mid-window flushes immediately;
// the timer firing afterwards finds nothing dirty and is a no-op.
func TestExplicitSyncClearsWindow(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	dir := filepath.Join(t.TempDir(), "wal")
	l, _ := collect(t, dir, Config{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond, Clock: vc})
	defer l.Close()
	base := l.Syncs.Value()
	if err := l.Append(encStr("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if n := l.Syncs.Value() - base; n != 1 {
		t.Fatalf("explicit Sync: %d syncs, want 1", n)
	}
	vc.Advance(5 * time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if n := l.Syncs.Value() - base; n != 1 {
		t.Fatalf("timer after explicit Sync re-synced: %d total", n)
	}
}

func crc32Checksum(b []byte) uint32 {
	return crc32.Checksum(b, crcTable)
}
