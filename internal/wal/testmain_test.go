package wal

import (
	"os"
	"strings"
	"testing"

	"repro/internal/xmlsoap"
)

// TestMain turns on the pooled-buffer lifecycle checker for this suite —
// every WAL append borrows an xmlsoap scratch buffer, so a double
// release or a stale alias in the encode path panics here instead of
// corrupting a message elsewhere. Benchmark runs measure the production
// configuration (poison/verify is O(buffer capacity) per Get/Put); the
// `poolcheck` build tag still forces checking everywhere when a checked
// benchmark is explicitly wanted. Same idiom as msgdisp's TestMain.
func TestMain(m *testing.M) {
	bench := false
	for _, arg := range os.Args {
		if strings.HasPrefix(arg, "-test.bench=") && !strings.HasSuffix(arg, "=") {
			bench = true
		}
	}
	if !bench {
		xmlsoap.EnablePoolCheck()
	}
	os.Exit(m.Run())
}
