// Package wal is the durability layer under the message store: a
// segmented, append-only write-ahead log with per-record CRC32C
// checksums and crash recovery. It implements the storage half of the
// paper's future-work item — "hold/retry on delivery ... with messages
// stored in DB with expiration time" — as an embedded log instead of the
// MySQL the authors planned, so a dispatcher restart (or kill -9) loses
// nothing that was synced and corrupts nothing that was not.
//
// # On-disk format
//
// A log is a directory of segment files named <seq>.wal (twelve decimal
// digits, strictly increasing). Each segment starts with a 16-byte
// header — 8-byte magic "WSDWAL01", the segment's sequence number
// (uint32 LE), and a flags byte whose low bit marks a snapshot base —
// followed by length-prefixed records:
//
//	uint32 LE  payload length
//	uint32 LE  CRC32C (Castagnoli) of the payload
//	payload bytes
//
// Records are opaque to the log; the store encodes its own operations
// into them. The active segment rotates once it passes
// Config.SegmentSize; completed segments are fsynced when sealed.
//
// # Recovery guarantees
//
// Open replays segments in sequence order, starting at the newest
// segment whose header carries the snapshot-base flag (older segments
// are retired state superseded by that snapshot and are deleted). A
// record is applied only if its length is plausible and its checksum
// matches. Corruption at the tail of the FINAL segment — the only place
// a crash mid-append can tear — is recovered, not fatal: the segment is
// truncated back to the last whole record and appending resumes there.
// An unreadable header on the final segment (a crash between file
// creation and the header write) drops that segment the same way.
// Corruption anywhere earlier is real damage the log cannot silently
// repair, and Open fails with ErrCorrupt.
//
// Compaction (Compact) rewrites live state through a snapshot callback
// into a fresh base segment, built under a temporary name, fsynced, and
// atomically renamed before the retired segments are deleted — a crash
// at any point leaves either the old segments or the complete snapshot,
// never a half state.
//
// # Sync policy
//
// SyncAlways fsyncs before every Append returns: a successful Put is on
// disk. SyncInterval (the default) is group commit — appends mark the
// log dirty and one fsync per Config.SyncEvery window covers every
// append in it, riding a clock.AfterFunc timer so Virtual-clock tests
// exercise the policy deterministically. SyncNever leaves flushing to
// the OS. In every mode the write itself reaches the kernel before
// Append returns; the policy only chooses when it reaches the platter.
//
// # Allocation contract
//
// Append encodes through a pooled xmlsoap.GetBuffer scratch: the record
// header and payload are assembled in the scratch and leave in one
// write, so the payload bytes are copied exactly once at the WAL
// boundary and the steady-state append path allocates nothing
// (TestWALAppendSteadyStateAllocs gates it, like the codec paths).
// Callers pass an encode func that APPENDS the payload to the slice it
// is given and returns the extended slice; the bytes handed to replay
// callbacks alias a read buffer and are valid only for the callback.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"sync"

	"repro/internal/clock"
	"repro/internal/stats"
	"repro/internal/xmlsoap"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncInterval batches fsyncs: one per Config.SyncEvery window that
	// saw an append (group commit). The default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs before every Append returns.
	SyncAlways
	// SyncNever never fsyncs explicitly; the OS flushes on its own
	// schedule. Fastest, and loses up to the OS's writeback window on
	// power failure — process crashes lose nothing in any mode.
	SyncNever
)

// Config tunes a Log.
type Config struct {
	// Clock drives the group-commit window. Default clock.Wall.
	Clock clock.Clock
	// SegmentSize is the size at which the active segment rotates.
	// Default 4 MiB.
	SegmentSize int64
	// Sync selects the fsync policy. Default SyncInterval.
	Sync SyncPolicy
	// SyncEvery is the group-commit window for SyncInterval. Default
	// 5ms.
	SyncEvery time.Duration
	// MaxRecord bounds one record's payload; larger appends fail and
	// larger on-disk lengths are treated as corruption. Default 16 MiB.
	MaxRecord int
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Wall
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 4 << 20
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 5 * time.Millisecond
	}
	if c.MaxRecord <= 0 {
		c.MaxRecord = 16 << 20
	}
	return c
}

// Errors returned by the log.
var (
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: closed")
	// ErrCorrupt marks unrecoverable damage: a bad record or header in
	// a segment that is not the writable tail, where truncation would
	// silently drop durable state.
	ErrCorrupt = errors.New("wal: corrupt segment")
	// ErrTooLarge is returned for records over Config.MaxRecord.
	ErrTooLarge = errors.New("wal: record exceeds MaxRecord")
)

const (
	magic         = "WSDWAL01"
	headerSize    = 16
	recHeaderSize = 8
	flagBase      = 0x01
	segSuffix     = ".wal"
	tmpSuffix     = ".tmp"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segFile is the surface an active segment needs from its file. Tests
// swap openSegFile to inject write and sync faults.
type segFile interface {
	io.Writer
	Sync() error
	Close() error
}

// openSegFile opens a segment file for writing; a package-level hook so
// the fault-injection tests can wrap the file with failing writers.
var openSegFile = func(path string, flag int) (segFile, error) {
	return os.OpenFile(path, flag, 0o644)
}

// segment is one on-disk segment file.
type segment struct {
	seq  uint32
	path string
	size int64
	f    segFile // non-nil only for the active (last) segment
}

// Log is a segmented write-ahead log. All methods are safe for
// concurrent use.
type Log struct {
	dir string
	cfg Config

	mu      sync.Mutex
	active  segment
	retired []segment // sealed segments, ascending seq, excluding active
	err     error     // sticky: set on a failed write/sync, poisons the log
	closed  bool
	dirty   bool // bytes written since the last fsync

	syncTimer *clock.Timer
	syncArmed bool

	// Counters for the evaluation harness and the bench snapshot.
	Appends          stats.Counter
	Syncs            stats.Counter
	Rotations        stats.Counter
	Compactions      stats.Counter
	TornTruncations  stats.Counter // recovery truncations of a torn tail
	RecoveredRecords stats.Counter // records replayed by Open
}

// Open opens (creating if needed) the log in dir and replays every
// whole record into the replay callback in append order. The record
// slice aliases a read buffer valid only for the duration of the
// callback; copy anything retained. A replay error aborts Open.
func Open(dir string, cfg Config, replay func(rec []byte) error) (*Log, error) {
	cfg = cfg.withDefaults()
	if err := os.Mkdir(dir, 0o755); err != nil && !errors.Is(err, fs.ErrExist) {
		return nil, fmt.Errorf("wal: create %s: %w", dir, err)
	}
	l := &Log{dir: dir, cfg: cfg}
	segs, err := l.scanDir()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.createSegment(1, flagBase); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Drop a torn final segment: a crash between creating the file and
	// completing its 16-byte header leaves nothing recoverable in it. At
	// most one segment can be in that state (rotation seals the previous
	// segment before creating the next), so a second bad header is real
	// corruption, caught by the full-header pass below.
	if last := &segs[len(segs)-1]; true {
		flags, err := readSegHeader(last.path, last.seq)
		switch {
		case err == nil:
			last.flags = flags
		case errors.Is(err, errTornHeader):
			l.TornTruncations.Inc()
			if rmErr := os.Remove(last.path); rmErr != nil {
				return nil, fmt.Errorf("wal: drop torn segment %s: %w", last.path, rmErr)
			}
			segs = segs[:len(segs)-1]
		default:
			return nil, err
		}
	}
	if len(segs) == 0 {
		if err := l.createSegment(1, flagBase); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Every remaining segment must carry a valid header; the one
	// legitimately torn header was handled above.
	for i := range segs {
		flags, err := readSegHeader(segs[i].path, segs[i].seq)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: bad header", ErrCorrupt, segs[i].path)
		}
		segs[i].flags = flags
	}
	// Start replay at the newest snapshot base; anything older is
	// superseded state (an interrupted compaction's leftovers).
	start := 0
	for i := range segs {
		if segs[i].flags&flagBase != 0 {
			start = i
		}
	}
	for _, s := range segs[:start] {
		if err := os.Remove(s.path); err != nil {
			return nil, fmt.Errorf("wal: remove retired %s: %w", s.path, err)
		}
	}
	segs = segs[start:]
	for i := range segs {
		size, err := l.replaySegment(segs[i].path, i == len(segs)-1, replay)
		if err != nil {
			return nil, err
		}
		segs[i].size = size
	}
	// Reopen the last segment as the writable tail.
	last := segs[len(segs)-1]
	f, err := openSegFile(last.path, os.O_WRONLY|os.O_APPEND)
	if err != nil {
		return nil, fmt.Errorf("wal: reopen %s: %w", last.path, err)
	}
	l.active = segment{seq: last.seq, path: last.path, size: last.size, f: f}
	for _, s := range segs[:len(segs)-1] {
		l.retired = append(l.retired, segment{seq: s.seq, path: s.path, size: s.size})
	}
	return l, nil
}

// scannedSeg is a directory entry during Open.
type scannedSeg struct {
	seq   uint32
	path  string
	size  int64
	flags byte
}

// scanDir lists segment files ascending by sequence, deleting leftover
// temporaries from an interrupted compaction.
func (l *Log) scanDir() ([]scannedSeg, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read %s: %w", l.dir, err)
	}
	var segs []scannedSeg
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// An interrupted compaction's half-written snapshot: the
			// rename never happened, so the old segments are still the
			// truth and the temporary is garbage.
			if err := os.Remove(filepath.Join(l.dir, name)); err != nil {
				return nil, fmt.Errorf("wal: remove stale %s: %w", name, err)
			}
			continue
		}
		seqStr, ok := strings.CutSuffix(name, segSuffix)
		if !ok {
			continue
		}
		seq, err := strconv.ParseUint(seqStr, 10, 32)
		if err != nil || seq == 0 {
			continue
		}
		segs = append(segs, scannedSeg{seq: uint32(seq), path: filepath.Join(l.dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// errTornHeader marks a final segment whose header never finished.
var errTornHeader = errors.New("wal: torn segment header")

// readSegHeader validates a segment's 16-byte header and returns its
// flags. A short or mismatched header is errTornHeader; the caller
// decides whether that is recoverable (final segment) or ErrCorrupt.
func readSegHeader(path string, wantSeq uint32) (byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, errTornHeader
	}
	if string(hdr[:8]) != magic {
		return 0, errTornHeader
	}
	if binary.LittleEndian.Uint32(hdr[8:12]) != wantSeq {
		return 0, errTornHeader
	}
	return hdr[12], nil
}

// replaySegment replays one segment's records. On the final (writable)
// segment a torn or corrupt tail is truncated away; anywhere else it is
// ErrCorrupt. Returns the segment's valid size.
func (l *Log) replaySegment(path string, isLast bool, replay func([]byte) error) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: read %s: %w", path, err)
	}
	off := headerSize
	for off < len(data) {
		rest := data[off:]
		if len(rest) < recHeaderSize {
			return l.truncateTail(path, int64(off), isLast)
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		if n > l.cfg.MaxRecord || recHeaderSize+n > len(rest) {
			return l.truncateTail(path, int64(off), isLast)
		}
		payload := rest[recHeaderSize : recHeaderSize+n]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rest[4:8]) {
			return l.truncateTail(path, int64(off), isLast)
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				return 0, fmt.Errorf("wal: replay %s at %d: %w", path, off, err)
			}
		}
		l.RecoveredRecords.Inc()
		off += recHeaderSize + n
	}
	return int64(off), nil
}

// truncateTail recovers a torn tail on the final segment by cutting the
// file back to the last whole record; on any other segment the damage
// is unrecoverable.
func (l *Log) truncateTail(path string, off int64, isLast bool) (int64, error) {
	if !isLast {
		return 0, fmt.Errorf("%w: %s at offset %d", ErrCorrupt, path, off)
	}
	if err := os.Truncate(path, off); err != nil {
		return 0, fmt.Errorf("wal: truncate %s: %w", path, err)
	}
	l.TornTruncations.Inc()
	return off, nil
}

// createSegment makes a fresh segment file (header written and synced)
// and installs it as the active tail.
func (l *Log) createSegment(seq uint32, flags byte) error {
	path := l.segPath(seq)
	f, err := openSegFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", path, err)
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:12], seq)
	hdr[12] = flags
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: write header %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync header %s: %w", path, err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.active = segment{seq: seq, path: path, size: headerSize, f: f}
	return nil
}

func (l *Log) segPath(seq uint32) string {
	return filepath.Join(l.dir, fmt.Sprintf("%012d%s", seq, segSuffix))
}

// syncDir flushes directory metadata so freshly created or renamed
// segment files survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir %s: %w", dir, err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}

// Append writes one record. The encode callback must append the record
// payload to dst and return the extended slice — the payload is
// assembled directly in the log's pooled scratch (one copy, zero
// steady-state allocations) and leaves in one write. The record is
// durable per the configured SyncPolicy when Append returns.
//
// A write or sync failure is returned AND poisons the log: the tail may
// hold a partial record, so every later Append fails with the same
// error until the log is reopened (recovery truncates the tear).
func (l *Log) Append(encode func(dst []byte) []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	buf := xmlsoap.GetBuffer()
	err := l.appendLocked(buf, encode)
	xmlsoap.PutBuffer(buf)
	if err != nil {
		return err
	}
	l.Appends.Inc()
	return l.commitLocked()
}

// appendLocked encodes into scratch and writes the framed record to the
// active segment.
func (l *Log) appendLocked(scratch *xmlsoap.Buffer, encode func(dst []byte) []byte) error {
	b := append(scratch.B, 0, 0, 0, 0, 0, 0, 0, 0)
	b = encode(b)
	scratch.B = b
	payload := b[recHeaderSize:]
	if len(payload) > l.cfg.MaxRecord {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload, crcTable))
	n, err := l.active.f.Write(b)
	l.active.size += int64(n)
	l.dirty = l.dirty || n > 0
	if err != nil {
		l.err = fmt.Errorf("wal: append %s: %w", l.active.path, err)
		return l.err
	}
	return nil
}

// commitLocked applies the sync policy and rotates a full segment.
func (l *Log) commitLocked() error {
	switch l.cfg.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return err
		}
	case SyncInterval:
		l.armSyncLocked()
	}
	if l.active.size >= l.cfg.SegmentSize {
		return l.rotateLocked()
	}
	return nil
}

// syncLocked fsyncs the active segment if it has unsynced bytes.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.active.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: sync %s: %w", l.active.path, err)
		return l.err
	}
	l.dirty = false
	l.Syncs.Inc()
	return nil
}

// armSyncLocked schedules the group-commit fsync once per window. One
// AfterFunc timer is reused via Reset for the log's lifetime.
func (l *Log) armSyncLocked() {
	if l.syncArmed {
		return
	}
	l.syncArmed = true
	if l.syncTimer == nil {
		l.syncTimer = l.cfg.Clock.AfterFunc(l.cfg.SyncEvery, l.syncWindow)
		return
	}
	l.syncTimer.Reset(l.cfg.SyncEvery)
}

// syncWindow is the group-commit timer body.
func (l *Log) syncWindow() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncArmed = false
	if l.closed || l.err != nil {
		return
	}
	l.syncLocked()
}

// rotateLocked seals the active segment (fsync + close) and opens the
// next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: close %s: %w", l.active.path, err)
		return l.err
	}
	sealed := l.active
	sealed.f = nil
	l.active.f = nil // don't double-close if the next create fails
	if err := l.createSegment(sealed.seq+1, 0); err != nil {
		l.err = err
		return err
	}
	l.retired = append(l.retired, sealed)
	l.Rotations.Inc()
	return nil
}

// Sync forces an fsync of any unsynced appends, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

// Snapshot receives the live state during Compact. Append has the same
// encode contract as Log.Append.
type Snapshot struct {
	l       *Log
	f       segFile
	path    string
	size    int64
	scratch *xmlsoap.Buffer
	err     error
}

// Append writes one snapshot record.
func (w *Snapshot) Append(encode func(dst []byte) []byte) error {
	if w.err != nil {
		return w.err
	}
	w.scratch.B = w.scratch.B[:0]
	b := append(w.scratch.B, 0, 0, 0, 0, 0, 0, 0, 0)
	b = encode(b)
	w.scratch.B = b
	payload := b[recHeaderSize:]
	if len(payload) > w.l.cfg.MaxRecord {
		w.err = fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
		return w.err
	}
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload, crcTable))
	n, err := w.f.Write(b)
	w.size += int64(n)
	if err != nil {
		w.err = fmt.Errorf("wal: snapshot write %s: %w", w.path, err)
	}
	return w.err
}

// Compact rewrites live state into a fresh snapshot-base segment and
// deletes every retired one. The snapshot callback receives a Snapshot
// writer and must append every record the recovered state needs; it
// runs with the log locked, so appends from other goroutines wait.
//
// Crash safety: the snapshot is built under a temporary name, fsynced,
// and renamed into place before old segments are removed. Recovery
// ignores temporaries and replays from the newest base segment, so a
// crash anywhere in compaction yields either the old state or the
// complete snapshot.
func (l *Log) Compact(snapshot func(w *Snapshot) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	newSeq := l.active.seq + 1
	tmpPath := filepath.Join(l.dir, "compact"+tmpSuffix)
	f, err := openSegFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", tmpPath, err)
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:12], newSeq)
	hdr[12] = flagBase
	w := &Snapshot{l: l, f: f, path: tmpPath, size: headerSize, scratch: xmlsoap.GetBuffer()}
	if _, err := f.Write(hdr[:]); err != nil {
		w.err = fmt.Errorf("wal: snapshot header: %w", err)
	}
	if w.err == nil {
		if err := snapshot(w); err != nil && w.err == nil {
			w.err = err
		}
	}
	if w.err == nil {
		if err := f.Sync(); err != nil {
			w.err = fmt.Errorf("wal: snapshot sync: %w", err)
		}
	}
	xmlsoap.PutBuffer(w.scratch)
	if cerr := f.Close(); cerr != nil && w.err == nil {
		w.err = fmt.Errorf("wal: snapshot close: %w", cerr)
	}
	if w.err != nil {
		os.Remove(tmpPath)
		return w.err
	}
	newPath := l.segPath(newSeq)
	if err := os.Rename(tmpPath, newPath); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: install snapshot: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	// The snapshot is durable and discoverable; everything older is
	// garbage now.
	old := l.active
	if err := old.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: close %s: %w", old.path, err)
		return l.err
	}
	for _, s := range l.retired {
		os.Remove(s.path)
	}
	os.Remove(old.path)
	l.retired = nil
	nf, err := openSegFile(newPath, os.O_WRONLY|os.O_APPEND)
	if err != nil {
		l.err = fmt.Errorf("wal: reopen snapshot %s: %w", newPath, err)
		return l.err
	}
	l.active = segment{seq: newSeq, path: newPath, size: w.size, f: nf}
	l.dirty = false
	l.Compactions.Inc()
	return nil
}

// Size returns the total bytes across all live segments (headers
// included).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.active.size
	for _, s := range l.retired {
		total += s.size
	}
	return total
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.retired) + 1
}

// Close syncs outstanding appends and closes the active segment. The
// log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.syncTimer != nil {
		l.syncTimer.Stop()
	}
	var err error
	if l.err == nil {
		err = l.syncLocked()
	}
	if l.active.f != nil {
		if cerr := l.active.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
