package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// The fault-injection writer behind the openSegFile hook: a shared
// byte budget (short-writes then fails once exhausted), a sync-failure
// switch, and an open-failure countdown. Setting budget to -1 and the
// switches off "heals" the fault without uninstalling the hook, so one
// test can crash the log and then recover it.
type fault struct {
	budget    int // bytes writable before failure; -1 = unlimited
	syncFails bool
	openFails bool
}

var errInjected = errors.New("injected fault")

type faultFile struct {
	f  segFile
	ft *fault
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.ft.budget < 0 || ff.ft.budget >= len(p) {
		if ff.ft.budget >= 0 {
			ff.ft.budget -= len(p)
		}
		return ff.f.Write(p)
	}
	// Short write: the torn-tail case a real crash produces.
	n := ff.ft.budget
	ff.ft.budget = 0
	if n > 0 {
		if wn, err := ff.f.Write(p[:n]); err != nil {
			return wn, err
		}
	}
	return n, errInjected
}

func (ff *faultFile) Sync() error {
	if ff.ft.syncFails {
		return errInjected
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// installFault swaps the segment-file hook for the test's lifetime.
func installFault(t *testing.T, ft *fault) {
	t.Helper()
	orig := openSegFile
	openSegFile = func(path string, flag int) (segFile, error) {
		if ft.openFails {
			return nil, errInjected
		}
		f, err := orig(path, flag)
		if err != nil {
			return nil, err
		}
		return &faultFile{f: f, ft: ft}, nil
	}
	t.Cleanup(func() { openSegFile = orig })
}

// TestFaultShortWriteRecovered: a short write mid-record surfaces the
// error, poisons the log, and leaves a torn tail that the next Open
// truncates away — the fully-written records survive.
func TestFaultShortWriteRecovered(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, _ := collect(t, dir, Config{Sync: SyncNever})
	for _, s := range []string{"whole-one", "whole-two"} {
		if err := l.Append(encStr(s)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	ft := &fault{budget: -1} // healthy while Open reopens the tail
	installFault(t, ft)
	var got []string
	l2, err := Open(dir, Config{Sync: SyncNever}, func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %q before fault", got)
	}
	ft.budget = 12 // 8-byte frame header + 4 payload bytes of the next record
	err = l2.Append(encStr("torn-in-half-by-the-crash"))
	if !errors.Is(err, errInjected) {
		t.Fatalf("short-written append: err = %v, want injected fault", err)
	}
	// The log is poisoned: the tail holds a partial record.
	if err := l2.Append(encStr("after")); !errors.Is(err, errInjected) {
		t.Fatalf("append on poisoned log: err = %v, want sticky injected fault", err)
	}
	l2.Close()

	ft.budget = -1 // heal
	l3, got := collect(t, dir, Config{Sync: SyncNever})
	if len(got) != 2 || got[0] != "whole-one" || got[1] != "whole-two" {
		t.Fatalf("recovered %q, want the two whole records", got)
	}
	if l3.TornTruncations.Value() == 0 {
		t.Fatal("torn tail not counted")
	}
	if err := l3.Append(encStr("post-recovery")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := l3.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l4, got := collect(t, dir, Config{Sync: SyncNever})
	defer l4.Close()
	if len(got) != 3 || got[2] != "post-recovery" {
		t.Fatalf("final state %q", got)
	}
}

// TestFaultSyncFailureSticky: a failed fsync under SyncAlways surfaces
// to the caller and poisons the log — "durable" cannot silently degrade
// to "maybe".
func TestFaultSyncFailureSticky(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	ft := &fault{budget: -1}
	installFault(t, ft)
	l, _ := collect(t, dir, Config{Sync: SyncAlways})
	if err := l.Append(encStr("synced-fine")); err != nil {
		t.Fatal(err)
	}
	ft.syncFails = true
	if err := l.Append(encStr("sync-fails")); !errors.Is(err, errInjected) {
		t.Fatalf("append with failing fsync: err = %v", err)
	}
	if err := l.Append(encStr("after")); !errors.Is(err, errInjected) {
		t.Fatalf("poisoned log accepted an append: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, errInjected) {
		t.Fatalf("Sync on poisoned log: %v", err)
	}
	l.Close()
	ft.syncFails = false
	// Both records' bytes reached the file (the process didn't die);
	// only the durability guarantee failed. Recovery sees them whole.
	l2, got := collect(t, dir, Config{Sync: SyncAlways})
	defer l2.Close()
	if len(got) != 2 {
		t.Fatalf("recovered %q", got)
	}
}

// TestFaultRotationOpenFails: rotation seals the old segment, then the
// new segment's create fails — the append errors, and recovery reopens
// with every sealed record intact.
func TestFaultRotationOpenFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	ft := &fault{budget: -1}
	installFault(t, ft)
	l, _ := collect(t, dir, Config{Sync: SyncNever, SegmentSize: 64})
	var want []string
	var rotErr error
	for i := 0; ; i++ {
		if i > 100 {
			t.Fatal("no rotation within 100 appends")
		}
		s := fmt.Sprintf("rec-%02d", i)
		if l.Size()+int64(recHeaderSize+len(s)) >= 64 {
			// This append will trigger the rotation; make it fail.
			ft.openFails = true
		}
		err := l.Append(encStr(s))
		if err != nil {
			rotErr = err
			break
		}
		want = append(want, s)
	}
	if !errors.Is(rotErr, errInjected) {
		t.Fatalf("rotation failure: err = %v", rotErr)
	}
	l.Close()
	ft.openFails = false
	l2, got := collect(t, dir, Config{Sync: SyncNever, SegmentSize: 64})
	defer l2.Close()
	// The record whose append triggered the failed rotation WAS written
	// and sealed before rotation started, so it survives too.
	if len(got) != len(want)+1 {
		t.Fatalf("recovered %d records %q, want %d", len(got), got, len(want)+1)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := l2.Append(encStr("onwards")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}
